// Simulate: compare every broadcast method of the paper at cluster scale on
// the flow-level simulator — a 2 GB image to 200 nodes across six switches —
// and regenerate the paper's headline result (Fig 7: only the pipelined
// methods stay at link speed), plus the Fig 10 twist (a random pipeline
// order collapses even Kascade).
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"os"

	"kascade/internal/experiments"
	"kascade/internal/simbcast"
	"kascade/internal/simnet"
	"kascade/internal/topology"
)

func main() {
	const fileBytes = 2 << 30

	// The paper's Fig 1 fat tree: 35 nodes per 1 GbE switch, 10 G uplinks.
	build := func() (*simnet.Cluster, *topology.Cluster) {
		topo := topology.FatTree("n", 6, 35, 112e6, 1.12e9)
		sim := simnet.New()
		return simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{}), topo
	}

	fmt.Println("2 GB to 200 nodes on a 1 GbE fat tree (simulated):")
	run := func(label string, f func() simbcast.Result) {
		res := f()
		fmt.Printf("  %-28s %6.1f MB/s  (%.1fs)\n", label, res.Throughput(fileBytes)/1e6, res.Duration)
	}
	run("Kascade (ordered pipeline)", func() simbcast.Result {
		w, topo := build()
		return simbcast.Kascade(w, topo.TopologyOrder(), fileBytes, simbcast.KascadeParams{}, nil)
	})
	run("Kascade (random order)", func() simbcast.Result {
		w, topo := build()
		return simbcast.Kascade(w, topo.RandomOrder(7), fileBytes, simbcast.KascadeParams{}, nil)
	})
	run("MPI bcast (pipelined chain)", func() simbcast.Result {
		w, topo := build()
		return simbcast.Tree(w, topo.TopologyOrder(), fileBytes, simbcast.TreeParams{})
	})
	run("MPI bcast (binomial tree)", func() simbcast.Result {
		w, topo := build()
		return simbcast.Tree(w, topo.TopologyOrder(), fileBytes,
			simbcast.TreeParams{Children: simbcast.BinomialChildrenFn})
	})
	run("UDPCast (synchronized)", func() simbcast.Result {
		w, topo := build()
		return simbcast.UDPCast(w, topo.TopologyOrder(), fileBytes, simbcast.UDPCastParams{})
	})

	// And one failure drill: 5 nodes die mid-transfer; the pipeline heals.
	run("Kascade (5 failures)", func() simbcast.Result {
		w, topo := build()
		var kills []simbcast.NodeFailure
		for _, pos := range []int{20, 60, 100, 140, 180} {
			kills = append(kills, simbcast.NodeFailure{Pos: pos, At: 3.0})
		}
		return simbcast.Kascade(w, topo.TopologyOrder(), fileBytes, simbcast.KascadeParams{}, kills)
	})

	fmt.Println("\nFigure 7 series (reduced scale, 2 repetitions):")
	tab := experiments.Figure7().Run(experiments.Config{Reps: 2, Scale: 0.05, Seed: 3})
	tab.Render(os.Stdout)
}
