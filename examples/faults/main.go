// Faults: demonstrate the §III-D fault-tolerance machinery through the
// deterministic chaos engine (internal/chaos). Seven nodes broadcast a
// 16 MB file over the in-memory fabric with rate-shaped links while a
// scripted fault schedule kills one pipeline member mid-transfer and
// black-holes another behind a healing partition. The engine watches the
// recovery through the protocol's trace seam — no polling, no sleeps —
// and reports detection and resume latencies per fault. The final ring
// report names exactly the injected victims; every survivor is verified
// bit-perfect against the source payload.
//
//	go run ./examples/faults
//
// Swap the schedule for chaos.Generate(seed, shape) to replay any seeded
// random scenario, or run the whole matrix with `kascade-bench -chaos`.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kascade/internal/chaos"
)

func main() {
	sc := chaos.Scenario{
		Name:         "example",
		Nodes:        7,
		PayloadSize:  16 << 20,
		ChunkSize:    256 << 10,
		WindowChunks: 16,
		LinkRate:     64 << 20, // 64 MB/s links: the kills land mid-stream
		Timeout:      60 * time.Second,
		Faults: []chaos.Fault{
			{ // crash n3 once it has relayed 2 MB
				Kind:   chaos.Crash,
				Victim: 2,
				Peer:   -1,
				When:   chaos.Mark{Node: 2, Bytes: 2 << 20},
			},
			{ // black-hole the link into n5 at 6 MB, heal 400 ms later
				Kind:   chaos.Partition,
				Victim: 4,
				Peer:   -1,
				When:   chaos.Mark{Node: 4, Bytes: 6 << 20},
				Delay:  400 * time.Millisecond,
			},
		},
	}

	fmt.Println("schedule:")
	fmt.Println(sc.Schedule())
	fmt.Println()

	res := chaos.Run(context.Background(), sc)
	if err := chaos.Check(res); err != nil {
		// This scenario is handcrafted (not a matrix cluster), so the
		// schedule above IS the reproduction recipe.
		log.Fatalf("recovery invariants violated: %v", err)
	}

	fmt.Printf("final report (ring-delivered to the sender):\n%v\n\n", res.Report)
	for _, rec := range res.Recoveries {
		fmt.Printf("  recovery of n%d: detected in %v", rec.Victim+1, rec.DetectLatency.Round(time.Millisecond))
		if rec.Resumed {
			fmt.Printf(", pipeline flowing again %v after injection", rec.ResumeLatency.Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println()
	for _, out := range res.Outcomes[1:] {
		name := fmt.Sprintf("n%d", out.Index+1)
		switch {
		case res.Report.Failed(out.Index) && !out.Complete:
			fmt.Printf("  %s: FAILED during transfer (as injected)\n", name)
		case out.Complete:
			fmt.Printf("  %s: survived, full copy verified (%d bytes)\n", name, out.ReceivedBytes)
		default:
			fmt.Printf("  %s: partial clean prefix (%d bytes)\n", name, out.ReceivedBytes)
		}
	}
	fmt.Printf("\nbroadcast of %d bytes finished in %v with %d injected fault(s)\n",
		res.Scenario.PayloadSize, res.Elapsed.Round(time.Millisecond), len(res.Injections))
}
