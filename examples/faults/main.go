// Faults: demonstrate the §III-D fault-tolerance machinery. Seven nodes
// broadcast a 16 MB file over the in-memory fabric with rate-shaped links;
// two pipeline members are killed mid-transfer. The pipeline detects the
// failures (write stall + unanswered ping), skips the dead nodes, replays
// from the in-memory window, and the final report — delivered to the sender
// over the ring-closing connection — names the victims. Every survivor
// still holds a bit-perfect copy.
//
//	go run ./examples/faults
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/transport"
)

func main() {
	const (
		nodes = 7
		size  = 16 << 20
	)
	payload := make([]byte, size)
	io.ReadFull(iolimit.NewPattern(size, 13), payload)
	want := iolimit.SumOf(payload)

	// An in-memory fabric with 8 MB/s links so the kills land mid-stream.
	fabric := transport.NewFabric(64 << 10)
	fabric.SetDefaultProfile(transport.Profile{Rate: 8 << 20})

	peers := make([]core.Peer, nodes)
	sinks := make([]*iolimit.HashWriter, nodes)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("n%d:9000", i+1)}
		sinks[i] = iolimit.NewHash()
	}
	sess, err := core.StartSession(context.Background(), core.SessionConfig{
		Peers: peers,
		Opts: core.Options{
			ChunkSize:         256 << 10,
			WindowChunks:      16,
			WriteStallTimeout: 200 * time.Millisecond,
			PingTimeout:       100 * time.Millisecond,
			DialTimeout:       300 * time.Millisecond,
		},
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  readerAt(payload),
		InputSize:  size,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Kill n3 once it is mid-stream, and n5 a little later — one replay
	// recovery and one adjacent-skip recovery.
	go func() {
		for sess.Nodes[2].BytesReceived() < 2<<20 {
			time.Sleep(5 * time.Millisecond)
		}
		fmt.Println("!! killing n3 mid-transfer")
		fabric.Kill("n3")
		time.Sleep(400 * time.Millisecond)
		fmt.Println("!! killing n5 mid-transfer")
		fabric.Kill("n5")
	}()

	res, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal report (ring-delivered to the sender):\n%v\n\n", res.Report)
	for i := 1; i < nodes; i++ {
		name := peers[i].Name
		switch {
		case res.Report.Failed(i):
			fmt.Printf("  %s: FAILED during transfer (as injected)\n", name)
		case sinks[i].Sum() == want:
			fmt.Printf("  %s: survived, full copy verified (%d bytes)\n", name, sinks[i].Count())
		default:
			fmt.Printf("  %s: survived but copy corrupt — BUG\n", name)
		}
	}
}

type readerAt []byte

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r)) {
		return 0, io.EOF
	}
	return copy(p, r[off:]), nil
}
