// Streamclone: the paper's disk-cloning use case (Fig 2),
//
//	dd if=/dev/sda2 | gzip | kascade -N ... -O 'gunzip | dd of=/dev/sda2'
//
// as a library program: the sender compresses a synthetic "partition image"
// on the fly and broadcasts the gzip stream — whose length is unknown in
// advance, exercising the protocol's chunked streaming (§III-C) — while
// every receiver decompresses on the fly and verifies the image checksum.
//
//	go run ./examples/streamclone
package main

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"log"

	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/transport"
)

const (
	nodes     = 5        // sender + 4 receivers
	imageSize = 24 << 20 // the synthetic partition image
)

func main() {
	// The "partition": a deterministic pseudo-random image, hashed for
	// the final verification.
	hasher := iolimit.NewHash()
	imageTee := io.TeeReader(iolimit.NewPattern(imageSize, 77), hasher)

	// dd | gzip: compress into a pipe; the pipe's read end is the
	// broadcast input — a stream whose total size nobody knows upfront.
	gzR, gzW := io.Pipe()
	go func() {
		zw := gzip.NewWriter(gzW)
		if _, err := io.Copy(zw, imageTee); err != nil {
			gzW.CloseWithError(err)
			return
		}
		gzW.CloseWithError(zw.Close())
	}()

	// Each receiver pipes the incoming stream through gunzip and hashes
	// the decompressed image, like `-O 'gunzip | dd of=...'`.
	peers := make([]core.Peer, nodes)
	sinkWriters := make([]io.Writer, nodes)
	imageSums := make([]*iolimit.HashWriter, nodes)
	done := make([]chan error, nodes)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
		if i == 0 {
			continue
		}
		pr, pw := io.Pipe()
		sinkWriters[i] = pw
		imageSums[i] = iolimit.NewHash()
		done[i] = make(chan error, 1)
		go func(i int, pr *io.PipeReader) {
			zr, err := gzip.NewReader(pr)
			if err != nil {
				done[i] <- err
				return
			}
			_, err = io.Copy(imageSums[i], zr)
			done[i] <- err
		}(i, pr)
	}

	res, err := core.RunSession(context.Background(), core.SessionConfig{
		Peers:      peers,
		NetworkFor: func(int) transport.Network { return transport.TCP{} },
		SinkFor:    func(i int) io.Writer { return sinkWriters[i] },
		Input:      gzR, // stream source: no size known in advance
	})
	if err != nil {
		log.Fatal(err)
	}
	// Close receiver pipes so the gunzip goroutines see EOF.
	for i := 1; i < nodes; i++ {
		sinkWriters[i].(*io.PipeWriter).Close()
	}

	fmt.Printf("compressed stream: %d bytes (image: %d bytes)\n", res.Report.TotalBytes, imageSize)
	fmt.Printf("report: %v\n", res.Report)
	want := hasher.Sum()
	for i := 1; i < nodes; i++ {
		if err := <-done[i]; err != nil {
			log.Fatalf("%s: gunzip failed: %v", peers[i].Name, err)
		}
		status := "image OK"
		if imageSums[i].Sum() != want {
			status = "IMAGE CORRUPTED"
		}
		fmt.Printf("  %s: decompressed %d bytes, %s\n", peers[i].Name, imageSums[i].Count(), status)
	}
}
