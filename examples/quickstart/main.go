// Quickstart: broadcast a generated 32 MB payload from one sender to seven
// receivers over real loopback TCP sockets using the Kascade library, then
// verify that every receiver got a bit-identical copy.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/transport"
)

func main() {
	const (
		nodes = 8 // sender + 7 receivers
		size  = 32 << 20
	)

	// Synthesize the payload (stands in for a file read with os.Open;
	// any io.ReaderAt works).
	payload := make([]byte, size)
	if _, err := io.ReadFull(iolimit.NewPattern(size, 2024), payload); err != nil {
		log.Fatal(err)
	}
	wantSum := iolimit.SumOf(payload)

	// One peer per pipeline position; the session binds the ephemeral
	// ports and completes the plan.
	peers := make([]core.Peer, nodes)
	sinks := make([]*iolimit.HashWriter, nodes)
	for i := range peers {
		peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
		sinks[i] = iolimit.NewHash()
	}

	start := time.Now()
	res, err := core.RunSession(context.Background(), core.SessionConfig{
		Peers:      peers,
		NetworkFor: func(int) transport.Network { return transport.TCP{} },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  newReaderAt(payload),
		InputSize:  size,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("broadcast report: %v\n", res.Report)
	fmt.Printf("elapsed: %v (%.1f MB/s through the pipeline)\n",
		time.Since(start).Round(time.Millisecond), res.Throughput()/1e6)
	for i := 1; i < nodes; i++ {
		status := "OK"
		if sinks[i].Sum() != wantSum {
			status = "CORRUPTED"
		}
		fmt.Printf("  %s: %d bytes, sha256 %s\n", peers[i].Name, sinks[i].Count(), status)
	}
}

type readerAt struct{ p []byte }

func newReaderAt(p []byte) readerAt { return readerAt{p} }

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.p)) {
		return 0, io.EOF
	}
	return copy(p, r.p[off:]), nil
}
