package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kascade/internal/control"
	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/transport"
)

// startTestAgent runs an in-process agent on loopback TCP and returns it
// with its control address.
func startTestAgent(t *testing.T, engineOpts core.EngineOptions, leaseTTL time.Duration) (*agent, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(transport.TCP{}, "127.0.0.1:0", engineOpts)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	a := newAgent(engine, "127.0.0.1", leaseTTL)
	go a.serve(l)
	t.Cleanup(func() { l.Close(); engine.Close() })
	return a, l.Addr().String()
}

// testProtoOptions are small, fast protocol options for loopback tests.
func testProtoOptions() core.Options {
	return core.Options{
		ChunkSize:         32 << 10,
		WindowChunks:      8,
		WriteStallTimeout: 500 * time.Millisecond,
		ReportTimeout:     5 * time.Second,
	}
}

// runSessionThrough drives one complete broadcast through an agent over an
// already-open control channel: PREPARE (admission), START, in-process
// sender node, RESULT.
func runSessionThrough(ctx context.Context, client *control.Client, sid core.SessionID, payload []byte, outPath string) error {
	opts := testProtoOptions()
	rep, err := client.Prepare(ctx, control.PrepareRequest{Session: sid, Reservation: opts.PoolReservation()})
	if err != nil {
		return fmt.Errorf("prepare: %w", err)
	}

	rootListener, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rootListener.Close()
	peers := []core.Peer{
		{Name: "sender", Addr: rootListener.Addr()},
		{Name: fmt.Sprintf("agent-%d", sid), Addr: rep.DataAddr},
	}
	pending, err := client.Start(control.StartRequest{
		Session: sid, Index: 1, Peers: peers, Opts: opts,
		Output: sinkSpec{Path: outPath},
	})
	if err != nil {
		return fmt.Errorf("start: %w", err)
	}

	node, err := core.NewNode(core.NodeConfig{
		Index:     0,
		Plan:      core.Plan{Peers: peers, Opts: opts, Session: sid},
		Network:   transport.TCP{},
		Listener:  rootListener,
		InputFile: bytes.NewReader(payload),
		InputSize: int64(len(payload)),
	})
	if err != nil {
		return err
	}
	report, err := node.Run(ctx)
	if err != nil {
		return fmt.Errorf("sender: %w", err)
	}
	if len(report.Failures) != 0 {
		return fmt.Errorf("failures: %v", report)
	}
	res, err := pending.Wait(ctx)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if res.Err != "" {
		return fmt.Errorf("agent result: %s", res.Err)
	}
	if res.Bytes != uint64(len(payload)) {
		return fmt.Errorf("agent ingested %d of %d bytes", res.Bytes, len(payload))
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("sink corrupted: %d of %d bytes", len(got), len(payload))
	}
	return nil
}

// TestControlMux16SessionsOneConnection is the multiplexing acceptance
// invariant: an agent serving 16 concurrent sessions from one sender holds
// exactly ONE control connection, with all PREPARE/START/RESULT exchanges
// interleaved on it, every payload bit-perfect.
func TestControlMux16SessionsOneConnection(t *testing.T) {
	const sessions = 16
	a, addr := startTestAgent(t, core.EngineOptions{}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		payload := make([]byte, (s+1)*64<<10+977*s+1)
		iolimit.NewPattern(int64(len(payload)), uint64(s+1)).Read(payload)
		wg.Add(1)
		go func(s int, payload []byte) {
			defer wg.Done()
			out := filepath.Join(dir, fmt.Sprintf("out-%d", s))
			errs[s] = runSessionThrough(ctx, client, core.SessionID(s+1), payload, out)
		}(s, payload)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", s+1, err)
		}
	}

	if got := a.ctrlConnsTotal.Load(); got != 1 {
		t.Fatalf("agent accepted %d control connections for %d sessions, want exactly 1", got, sessions)
	}
	// Admission bookkeeping balanced out: every grant released.
	if st := a.engine.Stats(); st.Sessions != 0 || st.PoolReserved != 0 || st.Admitted != sessions {
		t.Fatalf("engine after %d sessions: %+v", sessions, st)
	}
}

// TestControlV1DialerCompat speaks the legacy one-JSON-blob-per-session
// protocol at a framed-era agent: first-byte detection must route it to
// the v1 path and the broadcast must complete bit-perfect.
func TestControlV1DialerCompat(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{}, 0)
	payload := make([]byte, 300<<10)
	iolimit.NewPattern(int64(len(payload)), 3).Read(payload)
	out := filepath.Join(t.TempDir(), "v1-out")

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)

	if err := enc.Encode(ctrlRequest{Op: "prepare"}); err != nil {
		t.Fatal(err)
	}
	var resp ctrlResponse
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Time{})
	if resp.Op != "prepared" || resp.DataAddr == "" {
		t.Fatalf("v1 prepare response: %+v", resp)
	}

	opts := testProtoOptions()
	rootListener, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootListener.Close()
	peers := []core.Peer{
		{Name: "sender", Addr: rootListener.Addr()},
		{Name: "v1-agent", Addr: resp.DataAddr},
	}
	// A v1 sender predates session IDs: session 0 on the wire.
	if err := enc.Encode(ctrlRequest{Op: "start", Index: 1, Peers: peers, Opts: opts, Output: sinkSpec{Path: out}}); err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:     0,
		Plan:      core.Plan{Peers: peers, Opts: opts},
		Network:   transport.TCP{},
		Listener:  rootListener,
		InputFile: bytes.NewReader(payload),
		InputSize: int64(len(payload)),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := node.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("v1 broadcast failures: %v", report)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != "result" || resp.Err != "" || resp.Bytes != uint64(len(payload)) {
		t.Fatalf("v1 result: %+v", resp)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("v1 sink corrupted: %d of %d bytes", len(got), len(payload))
	}
}

// gatedReaderAt serves the source payload freely below gate and blocks
// any read touching bytes at or past it until open is closed — a
// deterministic way to hold a broadcast mid-flight while a late joiner
// grafts on.
type gatedReaderAt struct {
	r    *bytes.Reader
	gate int64
	open chan struct{}
}

func (g *gatedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > g.gate {
		<-g.open
	}
	return g.r.ReadAt(p, off)
}

// TestControlJoinLiveBroadcast grafts a second agent onto a broadcast
// already running through a first agent: JOIN on the control channel,
// graft negotiation with the in-process sender, catch-up, and a
// bit-perfect sink on both the original receiver and the late joiner.
func TestControlJoinLiveBroadcast(t *testing.T) {
	opts := testProtoOptions()
	opts.Rerank = true
	opts.RerankInterval = 50 * time.Millisecond
	opts.RerankMinInterval = 100 * time.Millisecond
	const sid = core.SessionID(77)
	const topology = "tree:2"

	_, addrA := startTestAgent(t, core.EngineOptions{}, 0)
	_, addrB := startTestAgent(t, core.EngineOptions{}, 0)
	clientA, err := control.Dial(addrA, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clientA.Close()
	clientB, err := control.Dial(addrB, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	payload := make([]byte, 2<<20)
	iolimit.NewPattern(int64(len(payload)), 77).Read(payload)
	dir := t.TempDir()
	outA := filepath.Join(dir, "receiver")
	outB := filepath.Join(dir, "joiner")

	rep, err := clientA.Prepare(ctx, control.PrepareRequest{Session: sid, Reservation: opts.PoolReservation()})
	if err != nil {
		t.Fatal(err)
	}
	rootListener, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootListener.Close()
	peers := []core.Peer{
		{Name: "sender", Addr: rootListener.Addr()},
		{Name: "agent-a", Addr: rep.DataAddr},
	}
	pendingA, err := clientA.Start(control.StartRequest{
		Session: sid, Index: 1, Peers: peers, Opts: opts,
		Topology: topology, Output: sinkSpec{Path: outA},
	})
	if err != nil {
		t.Fatal(err)
	}

	gate := &gatedReaderAt{r: bytes.NewReader(payload), gate: 1 << 20, open: make(chan struct{})}
	node, err := core.NewNode(core.NodeConfig{
		Index:     0,
		Plan:      core.Plan{Peers: peers, Opts: opts, Session: sid, Topology: topology},
		Network:   transport.TCP{},
		Listener:  rootListener,
		InputFile: gate,
		InputSize: int64(len(payload)),
	})
	if err != nil {
		t.Fatal(err)
	}
	senderDone := make(chan error, 1)
	go func() {
		report, err := node.Run(ctx)
		if err == nil && len(report.Failures) != 0 {
			err = fmt.Errorf("sender failures: %v", report)
		}
		senderDone <- err
	}()

	// The sender stalls at the gate; give the pipeline a beat to drain up
	// to it (and rate reports to flow) so the joiner has bytes to catch
	// up on, then graft through agent B.
	time.Sleep(300 * time.Millisecond)
	joined, pendingB, err := clientB.Join(ctx, control.JoinRequest{
		Session:    sid,
		SenderAddr: rootListener.Addr(),
		Name:       "late",
		Output:     sinkSpec{Path: outB},
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if joined.Index != 2 || joined.Peers != 3 {
		t.Fatalf("joined as index %d of %d members, want 2 of 3", joined.Index, joined.Peers)
	}
	close(gate.open) // graft landed: let the rest of the payload flow

	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}
	resA, err := pendingA.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Err != "" {
		t.Fatalf("receiver result: %s", resA.Err)
	}
	resB, err := pendingB.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Err != "" {
		t.Fatalf("joiner result: %s", resB.Err)
	}
	for name, path := range map[string]string{"receiver": outA, "joiner": outB} {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s sink corrupted: %d of %d bytes", name, len(got), len(payload))
		}
	}
}

// TestControlJoinDeadSessionRefused: a JOIN naming a session nobody is
// broadcasting fails with a typed error, not a hang.
func TestControlJoinDeadSessionRefused(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A listener that accepts and immediately hangs up stands in for a
	// sender whose broadcast is long gone.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	_, _, err = client.Join(ctx, control.JoinRequest{
		Session:    99,
		SenderAddr: l.Addr().String(),
		Name:       "late",
	})
	if err == nil {
		t.Fatal("join of a dead session succeeded")
	}
}

// TestControlJoinMemberAgentRefused: an agent that already carries the
// session as a member refuses to also host a joiner for it, with the
// typed refusal — before any dial toward the sender happens.
func TestControlJoinMemberAgentRefused(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const sid = core.SessionID(55)
	opts := testProtoOptions()
	if _, err := client.Prepare(ctx, control.PrepareRequest{Session: sid, Reservation: opts.PoolReservation()}); err != nil {
		t.Fatal(err)
	}

	// The joiner arrives on its own control connection (as `kascade join`
	// does); the channel-scoped duplicate-session check must not be what
	// fires. SenderAddr is deliberately unroutable: the refusal must come
	// from the agent's membership check, not from a failed dial.
	joiner, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	_, _, err = joiner.Join(ctx, control.JoinRequest{
		Session:    sid,
		SenderAddr: "127.0.0.1:1",
		Name:       "late",
	})
	var jr *core.JoinRefusedError
	if !errors.As(err, &jr) {
		t.Fatalf("join through a member agent: got %v, want *core.JoinRefusedError", err)
	}
	if !strings.Contains(jr.Reason, "already serves") {
		t.Fatalf("refusal reason %q does not name the member conflict", jr.Reason)
	}
}

// TestControlAdmissionRefusalBeforeDataDial: an overload refusal arrives
// as the typed *core.AdmissionError from PREPARE — before the sender has
// dialed (or even learned) any data address.
func TestControlAdmissionRefusalBeforeDataDial(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{MemBudget: 64 << 10}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err = client.Prepare(ctx, control.PrepareRequest{Session: 1, Reservation: 1 << 20})
	var adErr *core.AdmissionError
	if !errors.As(err, &adErr) {
		t.Fatalf("prepare error %v, want typed *core.AdmissionError", err)
	}
	if adErr.Session != 1 {
		t.Fatalf("refusal names session %d, want 1", adErr.Session)
	}
}

// TestControlAdmissionQueuedUntilRelease: a session that does not fit
// queues at PREPARE and is admitted the moment the blocking session is
// released; the queued broadcast then runs to completion.
func TestControlAdmissionQueuedUntilRelease(t *testing.T) {
	opts := testProtoOptions()
	reservation := opts.PoolReservation()
	_, addr := startTestAgent(t, core.EngineOptions{
		MemBudget:         reservation + reservation/2, // room for one session only
		AdmitQueueTimeout: 30 * time.Second,
	}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Session 1 holds the budget (prepared, never started).
	if _, err := client.Prepare(ctx, control.PrepareRequest{Session: 1, Reservation: reservation}); err != nil {
		t.Fatal(err)
	}

	// Session 2 queues...
	payload := make([]byte, 200<<10)
	iolimit.NewPattern(int64(len(payload)), 7).Read(payload)
	out := filepath.Join(t.TempDir(), "queued-out")
	done := make(chan error, 1)
	go func() { done <- runSessionThrough(ctx, client, 2, payload, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Engine.AdmitQueue == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session 2 never queued: %+v", st.Engine)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("queued session resolved early: %v", err)
	default:
	}

	// ...until session 1 is released.
	if known, err := client.Release(ctx, 1); err != nil || !known {
		t.Fatalf("release: known=%v err=%v", known, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued session after release: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued session never completed after release")
	}
}
