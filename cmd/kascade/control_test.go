package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kascade/internal/control"
	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/transport"
)

// startTestAgent runs an in-process agent on loopback TCP and returns it
// with its control address.
func startTestAgent(t *testing.T, engineOpts core.EngineOptions, leaseTTL time.Duration) (*agent, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(transport.TCP{}, "127.0.0.1:0", engineOpts)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	a := newAgent(engine, "127.0.0.1", leaseTTL)
	go a.serve(l)
	t.Cleanup(func() { l.Close(); engine.Close() })
	return a, l.Addr().String()
}

// testProtoOptions are small, fast protocol options for loopback tests.
func testProtoOptions() core.Options {
	return core.Options{
		ChunkSize:         32 << 10,
		WindowChunks:      8,
		WriteStallTimeout: 500 * time.Millisecond,
		ReportTimeout:     5 * time.Second,
	}
}

// runSessionThrough drives one complete broadcast through an agent over an
// already-open control channel: PREPARE (admission), START, in-process
// sender node, RESULT.
func runSessionThrough(ctx context.Context, client *control.Client, sid core.SessionID, payload []byte, outPath string) error {
	opts := testProtoOptions()
	rep, err := client.Prepare(ctx, control.PrepareRequest{Session: sid, Reservation: opts.PoolReservation()})
	if err != nil {
		return fmt.Errorf("prepare: %w", err)
	}

	rootListener, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rootListener.Close()
	peers := []core.Peer{
		{Name: "sender", Addr: rootListener.Addr()},
		{Name: fmt.Sprintf("agent-%d", sid), Addr: rep.DataAddr},
	}
	pending, err := client.Start(control.StartRequest{
		Session: sid, Index: 1, Peers: peers, Opts: opts,
		Output: sinkSpec{Path: outPath},
	})
	if err != nil {
		return fmt.Errorf("start: %w", err)
	}

	node, err := core.NewNode(core.NodeConfig{
		Index:     0,
		Plan:      core.Plan{Peers: peers, Opts: opts, Session: sid},
		Network:   transport.TCP{},
		Listener:  rootListener,
		InputFile: bytes.NewReader(payload),
		InputSize: int64(len(payload)),
	})
	if err != nil {
		return err
	}
	report, err := node.Run(ctx)
	if err != nil {
		return fmt.Errorf("sender: %w", err)
	}
	if len(report.Failures) != 0 {
		return fmt.Errorf("failures: %v", report)
	}
	res, err := pending.Wait(ctx)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if res.Err != "" {
		return fmt.Errorf("agent result: %s", res.Err)
	}
	if res.Bytes != uint64(len(payload)) {
		return fmt.Errorf("agent ingested %d of %d bytes", res.Bytes, len(payload))
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("sink corrupted: %d of %d bytes", len(got), len(payload))
	}
	return nil
}

// TestControlMux16SessionsOneConnection is the multiplexing acceptance
// invariant: an agent serving 16 concurrent sessions from one sender holds
// exactly ONE control connection, with all PREPARE/START/RESULT exchanges
// interleaved on it, every payload bit-perfect.
func TestControlMux16SessionsOneConnection(t *testing.T) {
	const sessions = 16
	a, addr := startTestAgent(t, core.EngineOptions{}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		payload := make([]byte, (s+1)*64<<10+977*s+1)
		iolimit.NewPattern(int64(len(payload)), uint64(s+1)).Read(payload)
		wg.Add(1)
		go func(s int, payload []byte) {
			defer wg.Done()
			out := filepath.Join(dir, fmt.Sprintf("out-%d", s))
			errs[s] = runSessionThrough(ctx, client, core.SessionID(s+1), payload, out)
		}(s, payload)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", s+1, err)
		}
	}

	if got := a.ctrlConnsTotal.Load(); got != 1 {
		t.Fatalf("agent accepted %d control connections for %d sessions, want exactly 1", got, sessions)
	}
	// Admission bookkeeping balanced out: every grant released.
	if st := a.engine.Stats(); st.Sessions != 0 || st.PoolReserved != 0 || st.Admitted != sessions {
		t.Fatalf("engine after %d sessions: %+v", sessions, st)
	}
}

// TestControlV1DialerCompat speaks the legacy one-JSON-blob-per-session
// protocol at a framed-era agent: first-byte detection must route it to
// the v1 path and the broadcast must complete bit-perfect.
func TestControlV1DialerCompat(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{}, 0)
	payload := make([]byte, 300<<10)
	iolimit.NewPattern(int64(len(payload)), 3).Read(payload)
	out := filepath.Join(t.TempDir(), "v1-out")

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)

	if err := enc.Encode(ctrlRequest{Op: "prepare"}); err != nil {
		t.Fatal(err)
	}
	var resp ctrlResponse
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Time{})
	if resp.Op != "prepared" || resp.DataAddr == "" {
		t.Fatalf("v1 prepare response: %+v", resp)
	}

	opts := testProtoOptions()
	rootListener, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootListener.Close()
	peers := []core.Peer{
		{Name: "sender", Addr: rootListener.Addr()},
		{Name: "v1-agent", Addr: resp.DataAddr},
	}
	// A v1 sender predates session IDs: session 0 on the wire.
	if err := enc.Encode(ctrlRequest{Op: "start", Index: 1, Peers: peers, Opts: opts, Output: sinkSpec{Path: out}}); err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:     0,
		Plan:      core.Plan{Peers: peers, Opts: opts},
		Network:   transport.TCP{},
		Listener:  rootListener,
		InputFile: bytes.NewReader(payload),
		InputSize: int64(len(payload)),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := node.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failures) != 0 {
		t.Fatalf("v1 broadcast failures: %v", report)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != "result" || resp.Err != "" || resp.Bytes != uint64(len(payload)) {
		t.Fatalf("v1 result: %+v", resp)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("v1 sink corrupted: %d of %d bytes", len(got), len(payload))
	}
}

// TestControlAdmissionRefusalBeforeDataDial: an overload refusal arrives
// as the typed *core.AdmissionError from PREPARE — before the sender has
// dialed (or even learned) any data address.
func TestControlAdmissionRefusalBeforeDataDial(t *testing.T) {
	_, addr := startTestAgent(t, core.EngineOptions{MemBudget: 64 << 10}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err = client.Prepare(ctx, control.PrepareRequest{Session: 1, Reservation: 1 << 20})
	var adErr *core.AdmissionError
	if !errors.As(err, &adErr) {
		t.Fatalf("prepare error %v, want typed *core.AdmissionError", err)
	}
	if adErr.Session != 1 {
		t.Fatalf("refusal names session %d, want 1", adErr.Session)
	}
}

// TestControlAdmissionQueuedUntilRelease: a session that does not fit
// queues at PREPARE and is admitted the moment the blocking session is
// released; the queued broadcast then runs to completion.
func TestControlAdmissionQueuedUntilRelease(t *testing.T) {
	opts := testProtoOptions()
	reservation := opts.PoolReservation()
	_, addr := startTestAgent(t, core.EngineOptions{
		MemBudget:         reservation + reservation/2, // room for one session only
		AdmitQueueTimeout: 30 * time.Second,
	}, 0)
	client, err := control.Dial(addr, 5*time.Second, control.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Session 1 holds the budget (prepared, never started).
	if _, err := client.Prepare(ctx, control.PrepareRequest{Session: 1, Reservation: reservation}); err != nil {
		t.Fatal(err)
	}

	// Session 2 queues...
	payload := make([]byte, 200<<10)
	iolimit.NewPattern(int64(len(payload)), 7).Read(payload)
	out := filepath.Join(t.TempDir(), "queued-out")
	done := make(chan error, 1)
	go func() { done <- runSessionThrough(ctx, client, 2, payload, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Engine.AdmitQueue == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session 2 never queued: %+v", st.Engine)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("queued session resolved early: %v", err)
	default:
	}

	// ...until session 1 is released.
	if known, err := client.Release(ctx, 1); err != nil || !known {
		t.Fatalf("release: known=%v err=%v", known, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued session after release: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued session never completed after release")
	}
}
