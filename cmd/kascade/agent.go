package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"

	"kascade/internal/core"
	"kascade/internal/transport"
)

// The control protocol between the sender and its agents is two JSON
// messages per session: "prepare" (the agent binds its data listener and
// reports the address) then "start" (full plan + this agent's index and
// sink). The agent answers "result" when its node finishes. Keeping the
// control connection open for the session doubles as a liveness signal.

type ctrlRequest struct {
	Op     string       `json:"op"` // "prepare" | "start"
	Index  int          `json:"index,omitempty"`
	Peers  []core.Peer  `json:"peers,omitempty"`
	Opts   core.Options `json:"opts,omitempty"`
	Output sinkSpec     `json:"output,omitempty"`
}

type sinkSpec struct {
	// Path writes the stream to a file; Command pipes it through a shell
	// command (`sh -c`). At most one may be set; neither discards.
	Path    string `json:"path,omitempty"`
	Command string `json:"command,omitempty"`
}

type ctrlResponse struct {
	Op       string       `json:"op"` // "prepared" | "result"
	DataAddr string       `json:"data_addr,omitempty"`
	Err      string       `json:"err,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
	Bytes    uint64       `json:"bytes,omitempty"`
}

// runAgent serves broadcast sessions forever on the control address.
func runAgent(listen, advertise string) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "kascade agent: listening on %s\n", l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveSession(conn, advertise); err != nil {
				fmt.Fprintf(os.Stderr, "kascade agent: session: %v\n", err)
			}
		}()
	}
}

// serveSession handles one prepare/start exchange on an open control
// connection and runs the node to completion.
func serveSession(conn net.Conn, advertise string) error {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)

	var req ctrlRequest
	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "prepare" {
		return fmt.Errorf("expected prepare, got %q", req.Op)
	}
	// Bind the data listener now so the sender can assemble the plan.
	dataListener, err := transport.TCP{}.Listen(bindAddr(conn, advertise))
	if err != nil {
		return enc.Encode(ctrlResponse{Op: "result", Err: err.Error()})
	}
	defer dataListener.Close()
	dataAddr := advertiseAddr(dataListener.Addr(), conn, advertise)
	if err := enc.Encode(ctrlResponse{Op: "prepared", DataAddr: dataAddr}); err != nil {
		return err
	}

	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "start" {
		return fmt.Errorf("expected start, got %q", req.Op)
	}
	sink, closeSink, err := openSink(req.Output)
	if err != nil {
		return enc.Encode(ctrlResponse{Op: "result", Err: err.Error()})
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:    req.Index,
		Plan:     core.Plan{Peers: req.Peers, Opts: req.Opts},
		Network:  transport.TCP{},
		Listener: dataListener,
		Sink:     sink,
	})
	if err != nil {
		closeSink()
		return enc.Encode(ctrlResponse{Op: "result", Err: err.Error()})
	}
	report, runErr := node.Run(context.Background())
	closeSink()
	resp := ctrlResponse{Op: "result", Report: report, Bytes: node.BytesReceived()}
	if runErr != nil {
		resp.Err = runErr.Error()
	}
	return enc.Encode(resp)
}

// bindAddr picks the data listen address: same interface as the control
// connection, ephemeral port.
func bindAddr(conn net.Conn, advertise string) string {
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil || host == "" {
		host = "0.0.0.0"
	}
	if advertise != "" {
		// Bind everywhere; the advertised host routes to us.
		host = "0.0.0.0"
	}
	return net.JoinHostPort(host, "0")
}

// advertiseAddr rewrites the bound address with the advertised host.
func advertiseAddr(bound string, conn net.Conn, advertise string) string {
	_, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	host := advertise
	if host == "" {
		if h, _, err := net.SplitHostPort(conn.LocalAddr().String()); err == nil {
			host = h
		}
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return bound
	}
	return net.JoinHostPort(host, port)
}

// openSink realises a sink spec. The returned closer flushes files and
// waits for piped commands.
func openSink(spec sinkSpec) (io.Writer, func(), error) {
	switch {
	case spec.Path != "" && spec.Command != "":
		return nil, nil, fmt.Errorf("kascade: -o and -O are mutually exclusive")
	case spec.Path != "":
		f, err := os.Create(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	case spec.Command != "":
		cmd := exec.Command("sh", "-c", spec.Command)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return stdin, func() {
			stdin.Close()
			_ = cmd.Wait()
		}, nil
	default:
		return io.Discard, func() {}, nil
	}
}
