package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync/atomic"
	"time"

	"kascade/internal/control"
	"kascade/internal/core"
	"kascade/internal/transport"
)

// The control plane between the sender and its agents is the framed,
// request-ID-multiplexed protocol of internal/control: exactly one
// long-lived control connection per sender↔agent pair, carrying
// interleaved PREPARE/START/STATUS/RELEASE frames for any number of
// concurrent broadcast sessions, with per-session liveness provided by
// HEARTBEAT leases instead of per-session connections.
//
// Every PREPARE runs engine admission before the sender dials a single
// data connection: the reservation is accepted (and debited), queued
// until budget frees on a session end, or refused with a typed error the
// sender can match on.
//
// Legacy v1 dialers — one JSON blob per message, one connection per
// session, connection-open as the liveness signal — are detected by their
// first byte ('{' versus the frame magic) and served unchanged on the
// same port.
//
// One agent process carries any number of concurrent sessions: a single
// core.Engine owns the one advertised data port, routes inbound
// connections by the session ID in their HELLO, and accounts every
// session's chunk pool against a global memory budget. v1 senders all
// share the default session 0, so a v1 sender is limited to one broadcast
// at a time per agent (the engine refuses a second session-0 registration
// with a descriptive error).

// sinkSpec is the v1 JSON name for the control sink description; the
// framed protocol carries the identical shape.
type sinkSpec = control.SinkSpec

// ctrlRequest is one legacy v1 control message (sender → agent).
type ctrlRequest struct {
	Op      string         `json:"op"` // "prepare" | "start"
	Index   int            `json:"index,omitempty"`
	Session core.SessionID `json:"session,omitempty"`
	Peers   []core.Peer    `json:"peers,omitempty"`
	Opts    core.Options   `json:"opts,omitempty"`
	Output  sinkSpec       `json:"output,omitempty"`
}

// ctrlResponse is one legacy v1 control message (agent → sender).
type ctrlResponse struct {
	Op       string       `json:"op"` // "prepared" | "result"
	DataAddr string       `json:"data_addr,omitempty"`
	Err      string       `json:"err,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
	Bytes    uint64       `json:"bytes,omitempty"`
}

// agent is one agent process's serving state: the shared data-plane
// engine and the control server in front of it.
type agent struct {
	engine    *core.Engine
	advertise string
	srv       *control.Server

	// ctrlConns counts control connections currently open, v1 and framed
	// alike — the multiplexing invariant (one per sender, however many
	// sessions) is asserted on it in tests.
	ctrlConns atomic.Int64
	// ctrlConnsTotal counts control connections ever accepted.
	ctrlConnsTotal atomic.Int64
}

// newAgent builds the serving state around an engine. leaseTTL <= 0
// selects the control server's default.
func newAgent(engine *core.Engine, advertise string, leaseTTL time.Duration) *agent {
	a := &agent{engine: engine, advertise: advertise}
	a.srv = &control.Server{
		Engine:   engine,
		DataAddr: func(conn net.Conn) string { return advertiseAddr(engine.Addr(), conn, advertise) },
		Run:      a.runSession,
		Join:     a.joinSession,
		LeaseTTL: leaseTTL,
	}
	return a
}

// serve accepts control connections until the listener closes.
func (a *agent) serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			a.ctrlConns.Add(1)
			a.ctrlConnsTotal.Add(1)
			defer a.ctrlConns.Add(-1)
			defer conn.Close()
			if err := a.serveConn(conn); err != nil {
				fmt.Fprintf(os.Stderr, "kascade agent: control: %v\n", err)
			}
		}()
	}
}

// serveConn sniffs the first byte of a fresh control connection: the
// frame magic selects the multiplexed protocol, '{' a legacy v1 dialer.
func (a *agent) serveConn(conn net.Conn) error {
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return nil // dialer went away before speaking
	}
	switch first[0] {
	case control.Magic:
		return a.srv.ServeConn(conn, br)
	case '{':
		return a.serveV1(conn, br)
	default:
		return fmt.Errorf("unknown control protocol (first byte 0x%02x)", first[0])
	}
}

// runSession executes one framed-control session to completion: realise
// the sink, attach a node to the shared engine, run it. ctx is cancelled
// by lease expiry, RELEASE, or the control channel dropping.
func (a *agent) runSession(ctx context.Context, req control.StartRequest) control.ResultReply {
	sink, closeSink, err := openSink(req.Output)
	if err != nil {
		return control.ResultReply{Err: err.Error()}
	}
	var packet transport.PacketConn
	if req.Transport == core.TransportUDP {
		// The plan advertises this agent's data port as its datagram
		// endpoint too; bind the UDP side of it on every interface.
		packet, err = bindPacket(req.Peers, req.Index)
		if err != nil {
			closeSink()
			return control.ResultReply{Err: err.Error()}
		}
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:   req.Index,
		Plan:    core.Plan{Peers: req.Peers, Opts: req.Opts, Session: req.Session, Transport: req.Transport, Topology: req.Topology},
		Network: transport.TCP{},
		Engine:  a.engine,
		Sink:    sink,
		Packet:  packet, // closed by the node's Run
	})
	if err != nil {
		if packet != nil {
			packet.Close()
		}
		closeSink()
		return control.ResultReply{Err: err.Error()}
	}
	report, runErr := node.Run(ctx)
	closeSink()
	resp := control.ResultReply{Report: report, Bytes: node.BytesReceived()}
	if runErr != nil {
		resp.Err = runErr.Error()
	}
	return resp
}

// joinSession grafts this agent onto a live broadcast as a late joiner:
// negotiate the graft with the session's sender (node 0), run engine
// admission between the two wire phases, then run the joiner node to
// completion. grafted fires once the graft has landed, before the node
// runs, so the control server can send the interim JOINED reply.
func (a *agent) joinSession(ctx context.Context, req control.JoinRequest, grafted func(control.JoinedReply)) (control.ResultReply, error) {
	if req.Session == 0 {
		return control.ResultReply{}, core.ErrJoinRefused("late join needs a real session ID (v1 session 0 cannot be joined)")
	}
	// An agent that is already a member cannot also host the joiner: the
	// engine routes data connections by session ID, so a second node of
	// the same session would be unreachable. Refuse up front with a
	// better message than the admission machinery's duplicate-session
	// error.
	if a.engine.Serves(req.Session) {
		return control.ResultReply{}, core.ErrJoinRefused(fmt.Sprintf(
			"this agent already serves session %d as a member; join through an agent that is not part of the broadcast", req.Session))
	}
	name := req.Name
	if name == "" {
		name, _ = os.Hostname()
	}
	sink, closeSink, err := openSink(req.Output)
	if err != nil {
		return control.ResultReply{}, core.ErrJoinRefused(err.Error())
	}
	peer := core.Peer{
		Name: name,
		Addr: advertiseAddr(a.engine.Addr(), nil, a.advertise),
	}
	// Engine admission runs between JOININFO and JOINGO: the sender has
	// told us the session's options (hence its memory reservation) but
	// has not yet mutated its membership, so a refusal here leaves the
	// live broadcast untouched.
	var ticket *core.Ticket
	var info *core.JoinSessionInfo
	admit := func(i *core.JoinSessionInfo) error {
		info = i
		ticket = a.engine.AdmitClass(req.Session, i.Opts.PoolReservation(), i.Opts.Class)
		_, err := ticket.Wait(ctx)
		return err
	}
	grant, _, err := core.NegotiateJoin(transport.TCP{}, req.SenderAddr, req.Session, nil, peer, admit)
	if err != nil {
		if ticket != nil {
			ticket.Cancel()
		}
		closeSink()
		return control.ResultReply{}, err
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:   grant.Index,
		Plan:    core.Plan{Peers: grant.Peers, Opts: info.Opts, Session: req.Session, Transport: info.Transport, Topology: info.Topology},
		Join:    grant,
		Network: transport.TCP{},
		Engine:  a.engine,
		Sink:    sink,
	})
	if err != nil {
		ticket.Cancel()
		closeSink()
		return control.ResultReply{}, err
	}
	grafted(control.JoinedReply{Index: grant.Index, Head: grant.Head, Peers: len(grant.Peers)})
	report, runErr := node.Run(ctx)
	closeSink()
	resp := control.ResultReply{Report: report, Bytes: node.BytesReceived()}
	if runErr != nil {
		resp.Err = runErr.Error()
	}
	return resp, nil
}

// serveV1 handles one legacy prepare/start exchange — one session per
// connection, liveness by connection-open — exactly as pre-framing
// senders expect.
func (a *agent) serveV1(conn net.Conn, br *bufio.Reader) error {
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(conn)

	var req ctrlRequest
	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "prepare" {
		return fmt.Errorf("expected prepare, got %q", req.Op)
	}
	dataAddr := advertiseAddr(a.engine.Addr(), conn, a.advertise)
	if err := enc.Encode(ctrlResponse{Op: "prepared", DataAddr: dataAddr}); err != nil {
		return err
	}

	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "start" {
		return fmt.Errorf("expected start, got %q", req.Op)
	}
	res := a.runSession(context.Background(), control.StartRequest{
		Session: req.Session,
		Index:   req.Index,
		Peers:   req.Peers,
		Opts:    req.Opts,
		Output:  req.Output,
	})
	return enc.Encode(ctrlResponse{Op: "result", Err: res.Err, Report: res.Report, Bytes: res.Bytes})
}

// bindPacket binds the UDP endpoint a udp-transport plan assigned to this
// agent's pipeline slot: the port of its own PacketAddr, on every
// interface (the advertised host may be an external address).
func bindPacket(peers []core.Peer, index int) (transport.PacketConn, error) {
	if index < 0 || index >= len(peers) {
		return nil, fmt.Errorf("kascade: pipeline index %d out of range", index)
	}
	_, port, err := net.SplitHostPort(peers[index].PacketAddr)
	if err != nil {
		return nil, fmt.Errorf("kascade: packet address %q: %w", peers[index].PacketAddr, err)
	}
	return transport.TCP{}.ListenPacket(":" + port)
}

// runAgent serves broadcast sessions forever on the control address. All
// sessions share the engine's single data port.
func runAgent(listen, dataListen, advertise string) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer l.Close()
	engine, err := core.NewEngine(transport.TCP{}, dataListen, core.EngineOptions{})
	if err != nil {
		return err
	}
	defer engine.Close()
	a := newAgent(engine, advertise, 0)
	fmt.Fprintf(os.Stderr, "kascade agent: control on %s, data on %s\n", l.Addr(), engine.Addr())
	return a.serve(l)
}

// advertiseAddr rewrites the bound address with the advertised host (or,
// absent one, the interface the control connection arrived on).
func advertiseAddr(bound string, conn net.Conn, advertise string) string {
	_, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	host := advertise
	if host == "" && conn != nil {
		if h, _, err := net.SplitHostPort(conn.LocalAddr().String()); err == nil {
			host = h
		}
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return bound
	}
	return net.JoinHostPort(host, port)
}

// openSink realises a sink spec. The returned closer flushes files and
// waits for piped commands.
func openSink(spec sinkSpec) (io.Writer, func(), error) {
	switch {
	case spec.Path != "" && spec.Command != "":
		return nil, nil, fmt.Errorf("kascade: -o and -O are mutually exclusive")
	case spec.Path != "":
		f, err := os.Create(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	case spec.Command != "":
		cmd := exec.Command("sh", "-c", spec.Command)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return stdin, func() {
			stdin.Close()
			_ = cmd.Wait()
		}, nil
	default:
		return io.Discard, func() {}, nil
	}
}
