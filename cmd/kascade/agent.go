package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"

	"kascade/internal/core"
	"kascade/internal/transport"
)

// The control protocol between the sender and its agents is two JSON
// messages per session: "prepare" (the agent reports its shared data
// address) then "start" (full plan + this agent's index, session ID and
// sink). The agent answers "result" when its node finishes. Keeping the
// control connection open for the session doubles as a liveness signal.
//
// One agent process carries any number of concurrent sessions: a single
// core.Engine owns the one advertised data port, routes inbound
// connections by the session ID in their HELLO, and accounts every
// session's chunk pool against a global memory budget. Senders that
// predate session IDs keep working — their v1 HELLOs land on session 0 —
// but since all of them share that one default session, a v1 sender is
// limited to one broadcast at a time per agent (the engine refuses a
// second session-0 registration with a descriptive error).

type ctrlRequest struct {
	Op      string         `json:"op"` // "prepare" | "start"
	Index   int            `json:"index,omitempty"`
	Session core.SessionID `json:"session,omitempty"`
	Peers   []core.Peer    `json:"peers,omitempty"`
	Opts    core.Options   `json:"opts,omitempty"`
	Output  sinkSpec       `json:"output,omitempty"`
}

type sinkSpec struct {
	// Path writes the stream to a file; Command pipes it through a shell
	// command (`sh -c`). At most one may be set; neither discards.
	Path    string `json:"path,omitempty"`
	Command string `json:"command,omitempty"`
}

type ctrlResponse struct {
	Op       string       `json:"op"` // "prepared" | "result"
	DataAddr string       `json:"data_addr,omitempty"`
	Err      string       `json:"err,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
	Bytes    uint64       `json:"bytes,omitempty"`
}

// runAgent serves broadcast sessions forever on the control address. All
// sessions share the engine's single data port.
func runAgent(listen, dataListen, advertise string) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer l.Close()
	engine, err := core.NewEngine(transport.TCP{}, dataListen, core.EngineOptions{})
	if err != nil {
		return err
	}
	defer engine.Close()
	fmt.Fprintf(os.Stderr, "kascade agent: control on %s, data on %s\n", l.Addr(), engine.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := serveSession(conn, engine, advertise); err != nil {
				fmt.Fprintf(os.Stderr, "kascade agent: session: %v\n", err)
			}
		}()
	}
}

// serveSession handles one prepare/start exchange on an open control
// connection and runs the node to completion. Any number of sessions run
// concurrently; each attaches its node to the shared engine.
func serveSession(conn net.Conn, engine *core.Engine, advertise string) error {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)

	var req ctrlRequest
	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "prepare" {
		return fmt.Errorf("expected prepare, got %q", req.Op)
	}
	dataAddr := advertiseAddr(engine.Addr(), conn, advertise)
	if err := enc.Encode(ctrlResponse{Op: "prepared", DataAddr: dataAddr}); err != nil {
		return err
	}

	if err := dec.Decode(&req); err != nil {
		return err
	}
	if req.Op != "start" {
		return fmt.Errorf("expected start, got %q", req.Op)
	}
	sink, closeSink, err := openSink(req.Output)
	if err != nil {
		return enc.Encode(ctrlResponse{Op: "result", Err: err.Error()})
	}
	node, err := core.NewNode(core.NodeConfig{
		Index:   req.Index,
		Plan:    core.Plan{Peers: req.Peers, Opts: req.Opts, Session: req.Session},
		Network: transport.TCP{},
		Engine:  engine,
		Sink:    sink,
	})
	if err != nil {
		closeSink()
		return enc.Encode(ctrlResponse{Op: "result", Err: err.Error()})
	}
	report, runErr := node.Run(context.Background())
	closeSink()
	resp := ctrlResponse{Op: "result", Report: report, Bytes: node.BytesReceived()}
	if runErr != nil {
		resp.Err = runErr.Error()
	}
	return enc.Encode(resp)
}

// advertiseAddr rewrites the bound address with the advertised host (or,
// absent one, the interface the control connection arrived on).
func advertiseAddr(bound string, conn net.Conn, advertise string) string {
	_, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	host := advertise
	if host == "" {
		if h, _, err := net.SplitHostPort(conn.LocalAddr().String()); err == nil {
			host = h
		}
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return bound
	}
	return net.JoinHostPort(host, port)
}

// openSink realises a sink spec. The returned closer flushes files and
// waits for piped commands.
func openSink(spec sinkSpec) (io.Writer, func(), error) {
	switch {
	case spec.Path != "" && spec.Command != "":
		return nil, nil, fmt.Errorf("kascade: -o and -O are mutually exclusive")
	case spec.Path != "":
		f, err := os.Create(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	case spec.Command != "":
		cmd := exec.Command("sh", "-c", spec.Command)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, nil, err
		}
		return stdin, func() {
			stdin.Close()
			_ = cmd.Wait()
		}, nil
	default:
		return io.Discard, func() {}, nil
	}
}
