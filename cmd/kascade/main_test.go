package main

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"kascade/internal/iolimit"
)

// TestLocalBroadcastEndToEnd exercises the complete CLI path — in-process
// agents over loopback TCP, control protocol, plan assembly, the real
// engine, per-node file sinks — exactly as `kascade -local 4 -i f -o out`.
func TestLocalBroadcastEndToEnd(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "payload.bin")
	payload := make([]byte, 4<<20)
	iolimit.NewPattern(int64(len(payload)), 5).Read(payload)
	if err := os.WriteFile(input, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")

	report, err := runRoot(rootOptions{
		local:    4,
		input:    input,
		outPath:  out,
		chunkKiB: 256,
		window:   16,
		listen:   "127.0.0.1:0",
		quiet:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalBytes != uint64(len(payload)) {
		t.Fatalf("report bytes %d, want %d", report.TotalBytes, len(payload))
	}
	if len(report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", report)
	}
	matches, err := filepath.Glob(out + "-*")
	if err != nil || len(matches) != 4 {
		t.Fatalf("output files: %v (%v)", matches, err)
	}
	want := sha256.Sum256(payload)
	for _, m := range matches {
		got, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if sha256.Sum256(got) != want {
			t.Errorf("%s corrupted (%d bytes)", m, len(got))
		}
	}
}

// TestLocalBroadcastUDPEndToEnd drives the full CLI path on the batched
// datagram fan-out: the plan carries every agent's UDP endpoint (same port
// as its data address), each agent binds it, and delivery stays
// bit-perfect over real loopback UDP.
func TestLocalBroadcastUDPEndToEnd(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "payload.bin")
	payload := make([]byte, 2<<20)
	iolimit.NewPattern(int64(len(payload)), 6).Read(payload)
	if err := os.WriteFile(input, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out")

	report, err := runRoot(rootOptions{
		local:     3,
		input:     input,
		outPath:   out,
		chunkKiB:  64,
		window:    16,
		transport: "udp",
		listen:    "127.0.0.1:0",
		quiet:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalBytes != uint64(len(payload)) {
		t.Fatalf("report bytes %d, want %d", report.TotalBytes, len(payload))
	}
	if len(report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", report)
	}
	matches, err := filepath.Glob(out + "-*")
	if err != nil || len(matches) != 3 {
		t.Fatalf("output files: %v (%v)", matches, err)
	}
	want := sha256.Sum256(payload)
	for _, m := range matches {
		got, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if sha256.Sum256(got) != want {
			t.Errorf("%s corrupted (%d bytes)", m, len(got))
		}
	}
}

// TestUDPRejectsStreamedInput pins the guard: the datagram fan-out cannot
// serve loss repair from an unseekable stream, so -transport udp with
// stdin input must fail up front, not hang mid-broadcast.
func TestUDPRejectsStreamedInput(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer w.Close()
	oldStdin := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldStdin }()

	_, err = runRoot(rootOptions{
		local:     2,
		input:     "-",
		chunkKiB:  64,
		window:    16,
		transport: "udp",
		listen:    "127.0.0.1:0",
		quiet:     true,
	})
	if err == nil {
		t.Fatal("udp transport with streamed input accepted")
	}
}

// TestLocalBroadcastFromStdinStream checks the unknown-length stream path
// (the dd|gzip use case) through the CLI plumbing.
func TestLocalBroadcastFromStdinStream(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 1<<20+123)
	iolimit.NewPattern(int64(len(payload)), 9).Read(payload)

	// Substitute stdin with a pipe carrying the payload.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdin := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldStdin }()
	go func() {
		w.Write(payload)
		w.Close()
	}()

	out := filepath.Join(dir, "streamed")
	report, err := runRoot(rootOptions{
		local:    3,
		input:    "-",
		outPath:  out,
		chunkKiB: 128,
		window:   16,
		listen:   "127.0.0.1:0",
		quiet:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalBytes != uint64(len(payload)) {
		t.Fatalf("streamed bytes %d, want %d", report.TotalBytes, len(payload))
	}
	matches, _ := filepath.Glob(out + "-*")
	if len(matches) != 3 {
		t.Fatalf("output files: %v", matches)
	}
	for _, m := range matches {
		got, _ := os.ReadFile(m)
		if !bytes.Equal(got, payload) {
			t.Errorf("%s corrupted", m)
		}
	}
}

func TestSinkSpecValidation(t *testing.T) {
	if _, _, err := openSink(sinkSpec{Path: "a", Command: "b"}); err == nil {
		t.Fatal("conflicting sink spec accepted")
	}
	w, closeFn, err := openSink(sinkSpec{})
	if err != nil || w == nil {
		t.Fatalf("default sink: %v", err)
	}
	closeFn()
}
