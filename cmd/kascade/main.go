// Command kascade is the command-line broadcast tool of the paper (Fig 2):
//
// Broadcast a file to remote agents (one kascade agent per node):
//
//	kascade -N host2:9430,host3:9430,host4:9430 -i myfile.tgz -o /tmp/myfile.tgz
//
// Decompress on the fly on every destination:
//
//	kascade -N host2:9430,host3:9430 -i myfile.tgz -O 'tar -xzC /opt/'
//
// Stream standard input (disk cloning à la dd | gzip | kascade):
//
//	dd if=/dev/sda2 | gzip | kascade -N host2:9430 -O 'gunzip | dd of=/dev/sda2'
//
// Start an agent on a destination node:
//
//	kascade agent -listen :9430
//
// Graft a fresh agent onto a broadcast that is already running (the
// sender prints the -sender/-session pair when started with -rerank):
//
//	kascade join -agent host5:9430 -sender host1:9431 -session 7 -o /tmp/myfile.tgz
//
// Self-contained demo: broadcast to N in-process nodes over loopback TCP:
//
//	kascade -local 5 -i myfile.tgz -o /tmp/out
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kascade/internal/core"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "agent" {
		agentMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "join" {
		joinMain(os.Args[2:])
		return
	}
	rootMain(os.Args[1:])
}

func agentMain(args []string) {
	fs := flag.NewFlagSet("kascade agent", flag.ExitOnError)
	listen := fs.String("listen", ":9430", "control address to listen on")
	dataListen := fs.String("data", ":0", "shared data address all sessions are served on")
	advertise := fs.String("advertise", "", "host to advertise for data connections (default: control host)")
	_ = fs.Parse(args)
	if err := runAgent(*listen, *dataListen, *advertise); err != nil {
		fmt.Fprintln(os.Stderr, "kascade agent:", err)
		os.Exit(1)
	}
}

// rootOptions gathers the sender-side command line.
type rootOptions struct {
	nodes    []string // agent control addresses
	local    int      // >0: self-contained demo with N in-process nodes
	input    string   // "-" = stdin
	outPath  string
	outCmd   string
	chunkKiB  int
	window    int
	class     string
	transport string // data plane: "tcp" (relay pipeline) or "udp" (fan-out)
	topology  string // dissemination shape: "chain" or "tree:<k>"
	splice    bool   // kernel pass-through on pure-relay nodes
	rerank    bool   // Snow-style mid-broadcast tree re-ranking
	noSort   bool
	listen   string
	timeout  time.Duration
	quiet    bool
}

func rootMain(args []string) {
	fs := flag.NewFlagSet("kascade", flag.ExitOnError)
	var o rootOptions
	nodeList := fs.String("N", "", "comma-separated agent addresses (host:port,...)")
	fs.IntVar(&o.local, "local", 0, "run a self-contained demo with N in-process nodes")
	fs.StringVar(&o.input, "i", "-", "input file ('-' reads standard input)")
	fs.StringVar(&o.outPath, "o", "", "output file path on every destination")
	fs.StringVar(&o.outCmd, "O", "", "shell command consuming the stream on every destination")
	fs.IntVar(&o.chunkKiB, "chunk", 1024, "chunk size in KiB")
	fs.IntVar(&o.window, "window", 64, "replay window in chunks")
	fs.StringVar(&o.class, "class", core.ClassBulk, "priority class on shared agents (bulk|interactive; drives admission order and scheduler weight)")
	fs.StringVar(&o.transport, "transport", core.TransportTCP, "data plane: tcp (chunked relay pipeline) or udp (batched datagram fan-out; needs a file input)")
	fs.StringVar(&o.topology, "topology", core.TopologyChain, "dissemination shape: chain (the paper's pipeline) or tree:<k> (k-ary tree; every relay feeds k children)")
	fs.BoolVar(&o.splice, "splice", true, "kernel splice() pass-through on pure-relay nodes (Linux + TCP; falls back transparently elsewhere)")
	fs.BoolVar(&o.rerank, "rerank", false, "self-reorganizing tree: re-rank the dissemination tree mid-broadcast by measured link rates (requires -topology tree:<k>)")
	fs.BoolVar(&o.noSort, "no-sort", false, "keep -N order instead of sorting by host number")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "sender data address to bind")
	fs.DurationVar(&o.timeout, "stall-timeout", time.Second, "write-stall failure detection timeout")
	fs.BoolVar(&o.quiet, "q", false, "only print the final report")
	_ = fs.Parse(args)

	if *nodeList != "" {
		for _, n := range strings.Split(*nodeList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				o.nodes = append(o.nodes, n)
			}
		}
	}
	if len(o.nodes) == 0 && o.local <= 0 {
		fmt.Fprintln(os.Stderr, "kascade: need -N <agents> or -local <n> (see -h)")
		os.Exit(2)
	}
	report, err := runRoot(o)
	if report != nil && !o.quiet {
		fmt.Println(report)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kascade:", err)
		os.Exit(1)
	}
}

// protocolOptions converts CLI flags into engine options.
func (o rootOptions) protocolOptions() core.Options {
	return core.Options{
		ChunkSize:         o.chunkKiB << 10,
		WindowChunks:      o.window,
		Class:             o.class,
		Splice:            o.splice,
		Rerank:            o.rerank,
		WriteStallTimeout: o.timeout,
	}
}
