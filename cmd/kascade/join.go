package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kascade/internal/control"
	"kascade/internal/core"
)

// joinMain is the `kascade join` subcommand: ask an agent to enter a
// broadcast that is already running. The agent negotiates the graft with
// the session's sender, catches up on everything it missed, and receives
// the rest live; this command just drives the agent's control channel
// and reports the outcome.
func joinMain(args []string) {
	fs := flag.NewFlagSet("kascade join", flag.ExitOnError)
	agentAddr := fs.String("agent", "", "control address of the agent that should join (host:port)")
	sender := fs.String("sender", "", "data address of the live session's sender (node 0)")
	var session uint64
	fs.Uint64Var(&session, "session", 0, "session ID of the live broadcast")
	name := fs.String("name", "", "peer name for the joiner (default: agent hostname)")
	outPath := fs.String("o", "", "output file path on the joining agent")
	outCmd := fs.String("O", "", "shell command consuming the stream on the joining agent")
	timeout := fs.Duration("dial-timeout", 5*time.Second, "control channel dial timeout")
	quiet := fs.Bool("q", false, "only print the final report")
	_ = fs.Parse(args)

	if *agentAddr == "" || *sender == "" || session == 0 {
		fmt.Fprintln(os.Stderr, "kascade join: need -agent, -sender and -session (see -h)")
		os.Exit(2)
	}
	if err := runJoin(*agentAddr, *sender, core.SessionID(session), *name, *outPath, *outCmd, *timeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "kascade join:", err)
		os.Exit(1)
	}
}

func runJoin(agentAddr, sender string, sid core.SessionID, name, outPath, outCmd string, dialTimeout time.Duration, quiet bool) error {
	c, err := control.Dial(agentAddr, dialTimeout, control.ClientOptions{})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx := context.Background()
	joined, pending, err := c.Join(ctx, control.JoinRequest{
		Session:    sid,
		SenderAddr: sender,
		Name:       name,
		Output:     control.SinkSpec{Path: outPath, Command: outCmd},
	})
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "kascade join: grafted into session %d as node %d (%d members, catching up %d bytes)\n",
			sid, joined.Index, joined.Peers, joined.Head)
	}
	res, err := pending.Wait(ctx)
	if err != nil {
		return err
	}
	if res.Err != "" {
		return fmt.Errorf("joiner failed: %s", res.Err)
	}
	if !quiet && res.Report != nil {
		fmt.Println(res.Report)
	}
	return nil
}
