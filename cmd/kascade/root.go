package main

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"kascade/internal/control"
	"kascade/internal/core"
	"kascade/internal/deploy"
	"kascade/internal/topology"
	"kascade/internal/transport"
)

// newSessionID draws a random non-zero broadcast session ID. The root
// mints one per broadcast so any number of concurrent broadcasts can share
// the same agents (each agent's engine routes by this ID on its single
// data port).
func newSessionID() core.SessionID {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("kascade: reading random session id: %v", err))
		}
		if id := core.SessionID(binary.BigEndian.Uint64(b[:])); id != 0 {
			return id
		}
	}
}

// agentHandle is one pipeline slot's view of its agent: the shared control
// channel (one per distinct agent address, however many slots and sessions
// it carries), the advertised data address, and the pending result.
type agentHandle struct {
	name     string
	client   *control.Client
	dataAddr string
	pending  *control.Pending
}

// runRoot drives a broadcast as the sending node: open one control channel
// per agent, run admission (PREPARE) for the session on each, assemble the
// pipeline plan, start every agent's node, stream the input, and gather
// the final report. An admission refusal or queue timeout surfaces as a
// typed *core.AdmissionError before any data connection is dialed.
func runRoot(o rootOptions) (*core.Report, error) {
	if o.topology == core.TopologyScatterAllgather {
		// The composite collective needs the whole payload in memory at
		// every rank and a different wire exchange; it runs in-process
		// (internal/mpibcast via kascade-bench), not over agents.
		return nil, fmt.Errorf("kascade: topology %q is only available in-process (see kascade-bench); agents run chain or tree:<k>", o.topology)
	}
	if _, err := core.TreeArity(o.topology); err != nil {
		return nil, err
	}
	nodes := o.nodes
	var stopLocal func()
	if o.local > 0 {
		var err error
		nodes, stopLocal, err = spawnLocalAgents(o.local)
		if err != nil {
			return nil, err
		}
		defer stopLocal()
	}
	if !o.noSort {
		// Kascade sorts destinations by host number so the pipeline
		// matches the physical topology (§III-A).
		sorted := append([]string(nil), nodes...)
		topology.SortByHostNumber(sorted)
		nodes = sorted
	}

	opts := o.protocolOptions()
	session := newSessionID()
	ctx := context.Background()

	// Phase 1: one control channel per distinct agent address (windowed,
	// like TakTuk's windowed connection mode, §III-B), then PREPARE the
	// session on each — engine admission runs here, before the data plane
	// exists.
	clients := newClientPool()
	defer clients.closeAll()
	handles := make([]*agentHandle, len(nodes))
	errs := deploy.ParallelWindow(len(nodes), 50, func(i int) error {
		h, err := prepareAgent(ctx, clients, nodes[i], session, opts)
		if err != nil {
			return fmt.Errorf("agent %s: %w", nodes[i], err)
		}
		handles[i] = h
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: bind the sender's own data listener and assemble the plan.
	rootListener, err := transport.TCP{}.Listen(o.listen)
	if err != nil {
		return nil, fmt.Errorf("binding sender address: %w", err)
	}
	defer rootListener.Close()
	peers := []core.Peer{{Name: "sender", Addr: rootListener.Addr()}}
	for _, h := range handles {
		peers = append(peers, core.Peer{Name: h.name, Addr: h.dataAddr})
	}
	var senderPacket transport.PacketConn
	if o.transport == core.TransportUDP {
		// The sender binds its own datagram endpoint next to the data
		// listener; every agent reuses its advertised data port on UDP, so
		// no extra address negotiation rides the control plane.
		host, _, err := net.SplitHostPort(rootListener.Addr())
		if err != nil {
			return nil, fmt.Errorf("kascade: sender address %q: %w", rootListener.Addr(), err)
		}
		senderPacket, err = transport.TCP{}.ListenPacket(net.JoinHostPort(host, "0"))
		if err != nil {
			return nil, fmt.Errorf("binding sender datagram endpoint: %w", err)
		}
		peers[0].PacketAddr = senderPacket.LocalAddr()
		for i := 1; i < len(peers); i++ {
			peers[i].PacketAddr = peers[i].Addr
		}
	}
	plan := core.Plan{Peers: peers, Opts: opts, Session: session, Transport: o.transport, Topology: o.topology}
	if err := plan.Validate(); err != nil {
		if senderPacket != nil {
			senderPacket.Close()
		}
		return nil, err
	}

	// Phase 3: start every agent. The results ride back on the same
	// channels whenever the broadcast ends.
	sinks := sinkSpec{Path: o.outPath, Command: o.outCmd}
	for i, h := range handles {
		req := control.StartRequest{Session: session, Index: i + 1, Peers: peers, Opts: plan.Opts, Output: sinks, Transport: plan.Transport, Topology: plan.Topology}
		if o.local > 0 && o.outPath != "" {
			// The demo writes per-node files side by side.
			req.Output = sinkSpec{Path: fmt.Sprintf("%s-%s", o.outPath, h.name)}
		}
		p, err := h.client.Start(req)
		if err != nil {
			return nil, fmt.Errorf("starting agent %s: %w", h.name, err)
		}
		h.pending = p
	}

	// Phase 4: run the sender node on the input.
	nc := core.NodeConfig{
		Index:    0,
		Plan:     plan,
		Network:  transport.TCP{},
		Listener: rootListener,
		Packet:   senderPacket, // closed by the node's Run
	}
	if o.input == "-" {
		nc.Input = os.Stdin
	} else {
		f, err := os.Open(o.input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		nc.InputFile = f
		nc.InputSize = st.Size()
	}
	node, err := core.NewNode(nc)
	if err != nil {
		return nil, err
	}
	if o.rerank && nc.InputFile != nil && !o.quiet {
		// Late join needs the self-reorganizing tree (the graft rides the
		// re-ranking machinery) and a file-backed sender (catch-up ranges
		// are served from it); print the coordinates joiners need.
		fmt.Fprintf(os.Stderr, "kascade: accepting late joiners: kascade join -sender %s -session %d -agent <agent:port>\n",
			rootListener.Addr(), session)
	}
	start := time.Now()
	report, runErr := node.Run(ctx)
	elapsed := time.Since(start)

	// Phase 5: gather agent results (best effort: dead agents are in the
	// report already). Each agent gets its own window, as the per-conn
	// read deadlines of the v1 protocol did — one slow agent must not
	// consume the budget of everyone behind it.
	for _, h := range handles {
		if h.pending == nil {
			continue
		}
		resCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		res, err := h.pending.Wait(resCtx)
		cancel()
		if err != nil {
			continue
		}
		if res.Err != "" && !o.quiet {
			fmt.Fprintf(os.Stderr, "kascade: node %s: %s\n", h.name, res.Err)
		}
	}
	if report != nil && !o.quiet {
		mbps := float64(report.TotalBytes) / 1e6 / elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "kascade: %d bytes to %d node(s) in %v (%.1f MB/s)\n",
			report.TotalBytes, len(peers)-1, elapsed.Round(time.Millisecond), mbps)
	}
	return report, runErr
}

// clientPool holds one control channel per distinct agent address,
// dialing each at most once even when pipeline slots prepare in parallel.
type clientPool struct {
	mu      sync.Mutex
	entries map[string]*poolEntry
}

type poolEntry struct {
	once   sync.Once
	client *control.Client
	err    error
}

func newClientPool() *clientPool {
	return &clientPool{entries: make(map[string]*poolEntry)}
}

func (p *clientPool) get(addr string) (*control.Client, error) {
	p.mu.Lock()
	e, ok := p.entries[addr]
	if !ok {
		e = &poolEntry{}
		p.entries[addr] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.client, e.err = control.Dial(addr, 10*time.Second, control.ClientOptions{})
	})
	return e.client, e.err
}

func (p *clientPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.client != nil {
			e.client.Close()
		}
	}
}

// prepareAgent runs admission for the session on one agent, reusing the
// per-address control channel (an agent appearing in several pipeline
// slots or carrying several concurrent broadcasts still holds exactly one
// control connection from this sender).
func prepareAgent(ctx context.Context, clients *clientPool, addr string, session core.SessionID, opts core.Options) (*agentHandle, error) {
	client, err := clients.get(addr)
	if err != nil {
		return nil, err
	}
	// The deadline covers dial-to-PREPARED including agent-side admission
	// queueing; the agent's own queue deadline resolves sooner and turns
	// into a typed refusal.
	prepCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	rep, err := client.Prepare(prepCtx, control.PrepareRequest{
		Session:     session,
		Reservation: opts.PoolReservation(),
		Class:       opts.Class,
	})
	if err != nil {
		return nil, err
	}
	return &agentHandle{name: addr, client: client, dataAddr: rep.DataAddr}, nil
}

// spawnLocalAgents starts n in-process agents on loopback for the
// self-contained demo and returns their control addresses. Each agent gets
// its own engine, exactly like a real agent process: one shared data port
// carrying every session routed to it.
func spawnLocalAgents(n int) ([]string, func(), error) {
	var listeners []net.Listener
	var engines []*core.Engine
	var addrs []string
	stop := func() {
		for _, l := range listeners {
			l.Close()
		}
		for _, e := range engines {
			e.Close()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		engine, err := core.NewEngine(transport.TCP{}, "127.0.0.1:0", core.EngineOptions{})
		if err != nil {
			l.Close()
			stop()
			return nil, nil, err
		}
		listeners = append(listeners, l)
		engines = append(engines, engine)
		addrs = append(addrs, l.Addr().String())
		a := newAgent(engine, "127.0.0.1", 0)
		go func(l net.Listener) { _ = a.serve(l) }(l)
	}
	return addrs, stop, nil
}
