package main

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"kascade/internal/core"
	"kascade/internal/deploy"
	"kascade/internal/topology"
	"kascade/internal/transport"
)

// newSessionID draws a random non-zero broadcast session ID. The root
// mints one per broadcast so any number of concurrent broadcasts can share
// the same agents (each agent's engine routes by this ID on its single
// data port).
func newSessionID() core.SessionID {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("kascade: reading random session id: %v", err))
		}
		if id := core.SessionID(binary.BigEndian.Uint64(b[:])); id != 0 {
			return id
		}
	}
}

// agentSession is one prepared agent: its control connection stays open for
// the duration of the broadcast.
type agentSession struct {
	ctrl     net.Conn
	enc      *json.Encoder
	dec      *json.Decoder
	name     string
	dataAddr string
}

// runRoot drives a broadcast as the sending node: contact agents (or spawn
// local ones), assemble the pipeline plan, stream the input, and gather the
// final report.
func runRoot(o rootOptions) (*core.Report, error) {
	nodes := o.nodes
	var stopLocal func()
	if o.local > 0 {
		var err error
		nodes, stopLocal, err = spawnLocalAgents(o.local)
		if err != nil {
			return nil, err
		}
		defer stopLocal()
	}
	if !o.noSort {
		// Kascade sorts destinations by host number so the pipeline
		// matches the physical topology (§III-A).
		sorted := append([]string(nil), nodes...)
		topology.SortByHostNumber(sorted)
		nodes = sorted
	}

	// Phase 1: prepare every agent (windowed, like TakTuk's windowed
	// connection mode, §III-B).
	sessions := make([]*agentSession, len(nodes))
	errs := deploy.ParallelWindow(len(nodes), 50, func(i int) error {
		s, err := prepareAgent(nodes[i])
		if err != nil {
			return fmt.Errorf("agent %s: %w", nodes[i], err)
		}
		sessions[i] = s
		return nil
	})
	defer func() {
		for _, s := range sessions {
			if s != nil {
				s.ctrl.Close()
			}
		}
	}()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: bind the sender's own data listener and assemble the plan.
	rootListener, err := transport.TCP{}.Listen(o.listen)
	if err != nil {
		return nil, fmt.Errorf("binding sender address: %w", err)
	}
	defer rootListener.Close()
	peers := []core.Peer{{Name: "sender", Addr: rootListener.Addr()}}
	for _, s := range sessions {
		peers = append(peers, core.Peer{Name: s.name, Addr: s.dataAddr})
	}
	plan := core.Plan{Peers: peers, Opts: o.protocolOptions(), Session: newSessionID()}
	if err := plan.Validate(); err != nil {
		return nil, err
	}

	// Phase 3: start every agent.
	sinks := sinkSpec{Path: o.outPath, Command: o.outCmd}
	for i, s := range sessions {
		req := ctrlRequest{Op: "start", Index: i + 1, Session: plan.Session, Peers: peers, Opts: plan.Opts, Output: sinks}
		if o.local > 0 && o.outPath != "" {
			// The demo writes per-node files side by side.
			req.Output = sinkSpec{Path: fmt.Sprintf("%s-%s", o.outPath, s.name)}
		}
		if err := s.enc.Encode(req); err != nil {
			return nil, fmt.Errorf("starting agent %s: %w", s.name, err)
		}
	}

	// Phase 4: run the sender node on the input.
	nc := core.NodeConfig{
		Index:    0,
		Plan:     plan,
		Network:  transport.TCP{},
		Listener: rootListener,
	}
	if o.input == "-" {
		nc.Input = os.Stdin
	} else {
		f, err := os.Open(o.input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		nc.InputFile = f
		nc.InputSize = st.Size()
	}
	node, err := core.NewNode(nc)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	report, runErr := node.Run(context.Background())
	elapsed := time.Since(start)

	// Phase 5: gather agent results (best effort: dead agents are in the
	// report already).
	for _, s := range sessions {
		var resp ctrlResponse
		s.ctrl.SetReadDeadline(time.Now().Add(10 * time.Second))
		if err := s.dec.Decode(&resp); err != nil {
			continue
		}
		if resp.Err != "" && !o.quiet {
			fmt.Fprintf(os.Stderr, "kascade: node %s: %s\n", s.name, resp.Err)
		}
	}
	if report != nil && !o.quiet {
		mbps := float64(report.TotalBytes) / 1e6 / elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "kascade: %d bytes to %d node(s) in %v (%.1f MB/s)\n",
			report.TotalBytes, len(peers)-1, elapsed.Round(time.Millisecond), mbps)
	}
	return report, runErr
}

// prepareAgent opens the control connection and retrieves the data address.
func prepareAgent(addr string) (*agentSession, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	s := &agentSession{
		ctrl: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
		name: addr,
	}
	if err := s.enc.Encode(ctrlRequest{Op: "prepare"}); err != nil {
		conn.Close()
		return nil, err
	}
	var resp ctrlResponse
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := s.dec.Decode(&resp); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	if resp.Op != "prepared" || resp.DataAddr == "" {
		conn.Close()
		return nil, fmt.Errorf("bad prepare response: %+v", resp)
	}
	s.dataAddr = resp.DataAddr
	return s, nil
}

// spawnLocalAgents starts n in-process agents on loopback for the
// self-contained demo and returns their control addresses. Each agent gets
// its own engine, exactly like a real agent process: one shared data port
// carrying every session routed to it.
func spawnLocalAgents(n int) ([]string, func(), error) {
	var listeners []net.Listener
	var engines []*core.Engine
	var addrs []string
	stop := func() {
		for _, l := range listeners {
			l.Close()
		}
		for _, e := range engines {
			e.Close()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		engine, err := core.NewEngine(transport.TCP{}, "127.0.0.1:0", core.EngineOptions{})
		if err != nil {
			l.Close()
			stop()
			return nil, nil, err
		}
		listeners = append(listeners, l)
		engines = append(engines, engine)
		addrs = append(addrs, l.Addr().String())
		go func(l net.Listener, engine *core.Engine) {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					_ = serveSession(conn, engine, "127.0.0.1")
				}()
			}
		}(l, engine)
	}
	return addrs, stop, nil
}
