package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kascade/internal/benchkit"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func engineFile(t *testing.T, dir, name string, mbps ...float64) string {
	rows := map[string]engineResult{}
	for i, v := range mbps {
		rows["bench/"+string(rune('a'+i))] = engineResult{MBPerSec: v, NsPerOp: 1, Iterations: 1}
	}
	return writeJSON(t, dir, name, rows)
}

// TestCompareEnginePassAndFail: the aggregate gate passes inside the
// tolerance and fails beyond it, using medians across fresh files.
func TestCompareEnginePassAndFail(t *testing.T) {
	dir := t.TempDir()
	base := engineFile(t, dir, "base.json", 100, 200)
	opts := compareOptions{Tolerance: 0.25, DetectFactor: 2}

	// Median of three runs: {90,95,100} -> 95, {180,190,200} -> 190;
	// aggregate 285 vs 300 baseline: -5%, inside 25%.
	f1 := engineFile(t, dir, "f1.json", 90, 180)
	f2 := engineFile(t, dir, "f2.json", 95, 190)
	f3 := engineFile(t, dir, "f3.json", 100, 200)
	if err := runCompare(base, []string{f1, f2, f3}, opts); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}

	// One noisy outlier run must not fail the gate: median absorbs it.
	noisy := engineFile(t, dir, "noisy.json", 10, 20)
	if err := runCompare(base, []string{f1, noisy, f3}, opts); err != nil {
		t.Fatalf("median did not absorb the outlier: %v", err)
	}

	// A real regression (aggregate 150 vs 300 = -50%) fails.
	slow := engineFile(t, dir, "slow.json", 50, 100)
	err := runCompare(base, []string{slow, slow, slow}, opts)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("50%% regression passed the 25%% gate: %v", err)
	}

	// Fresh files missing a baseline row fail loudly, not silently.
	partial := engineFile(t, dir, "partial.json", 100)
	if err := runCompare(base, []string{partial}, opts); err == nil {
		t.Fatal("missing rows passed")
	}
}

// TestCompareFreshOnlyRowsSkipWithNotice: a fresh row absent from the
// baseline (a benchmark added since the baseline was committed) must not
// fail the gate — and must not silently vanish either: the gate prints a
// skip notice naming it.
func TestCompareFreshOnlyRowsSkipWithNotice(t *testing.T) {
	dir := t.TempDir()
	base := engineFile(t, dir, "base.json", 100, 200)
	// Three rows vs the baseline's two: bench/c is fresh-only.
	fresh := engineFile(t, dir, "fresh.json", 100, 200, 300)
	opts := compareOptions{Tolerance: 0.25, DetectFactor: 2}

	out := captureStdout(t, func() {
		if err := runCompare(base, []string{fresh}, opts); err != nil {
			t.Errorf("fresh-only row failed the gate: %v", err)
		}
	})
	if !strings.Contains(out, "bench/c") || !strings.Contains(out, "skipped from the gate") {
		t.Fatalf("no skip notice for the fresh-only row:\n%s", out)
	}
	// The fresh-only row must not count toward the aggregate: identical
	// shared rows plus a huge new one still reports a 0% delta.
	if !strings.Contains(out, "compare: PASS") {
		t.Fatalf("gate verdict missing:\n%s", out)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCompareMux: mux-shaped files (arrays) gate on the summed aggregate
// MB/s across session counts.
func TestCompareMux(t *testing.T) {
	dir := t.TempDir()
	mux := func(name string, aggs ...float64) string {
		rows := make([]muxRow, len(aggs))
		for i, v := range aggs {
			rows[i] = muxRow{Sessions: 1 << (2 * i), Nodes: 5, AggregateMBPerSec: v}
		}
		return writeJSON(t, dir, name, rows)
	}
	base := mux("base.json", 700, 550, 430)
	opts := compareOptions{Tolerance: 0.25, DetectFactor: 2}
	if err := runCompare(base, []string{mux("ok.json", 650, 520, 400)}, opts); err != nil {
		t.Fatalf("mux within tolerance: %v", err)
	}
	if err := runCompare(base, []string{mux("bad.json", 300, 250, 200)}, opts); err == nil {
		t.Fatal("mux regression passed")
	}
	// Shape mismatch between baseline and fresh is an error.
	eng := engineFile(t, dir, "eng.json", 100)
	if err := runCompare(base, []string{eng}, opts); err == nil {
		t.Fatal("shape mismatch passed")
	}
}

// TestCompareChaos: any fresh scenario failure or a >2x detect-p50
// regression fails the chaos gate.
func TestCompareChaos(t *testing.T) {
	dir := t.TempDir()
	chaosFile := func(name string, failures int, detectP50 float64) string {
		rep := chaosReport{Seed: 1, DetectMs: benchkit.Quantiles{N: 30, P50: detectP50, P90: detectP50 * 2, Max: detectP50 * 3}}
		for i := 0; i < 3; i++ {
			row := chaosScenarioRow{Name: "sc", Nodes: 3, OK: i >= failures}
			if !row.OK {
				row.CheckErr = "injected"
			}
			rep.Scenarios = append(rep.Scenarios, row)
		}
		return writeJSON(t, dir, name, rep)
	}
	base := chaosFile("base.json", 0, 2.4)
	opts := compareOptions{Tolerance: 0.25, DetectFactor: 2}

	if err := runCompare(base, []string{chaosFile("ok.json", 0, 3.0)}, opts); err != nil {
		t.Fatalf("chaos within factor: %v", err)
	}
	err := runCompare(base, []string{chaosFile("failing.json", 1, 2.4)}, opts)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("fresh failure passed the gate: %v", err)
	}
	err = runCompare(base, []string{chaosFile("slow.json", 0, 6.0)}, opts)
	if err == nil || !strings.Contains(err.Error(), "detect p50") {
		t.Fatalf("2.5x detect regression passed: %v", err)
	}
}

// TestParseCompareArgs: the documented trailing-flag form parses.
func TestParseCompareArgs(t *testing.T) {
	files, opts, err := parseCompareArgs(
		[]string{"new1.json", "new2.json", "-tolerance", "0.10", "-detect-factor", "3"},
		compareOptions{Tolerance: 0.25, DetectFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "new1.json" {
		t.Fatalf("files %v", files)
	}
	if opts.Tolerance != 0.10 || opts.DetectFactor != 3 {
		t.Fatalf("opts %+v", opts)
	}
	if _, _, err := parseCompareArgs([]string{"-tolerance"}, compareOptions{}); err == nil {
		t.Fatal("dangling -tolerance accepted")
	}
}

// TestCompareMuxFairnessGate: the fairness gate fails a fresh mux run
// whose within-class min/mean drops below the floor — regardless of the
// baseline — passes fair runs, and skips cleanly when disabled.
func TestCompareMuxFairnessGate(t *testing.T) {
	dir := t.TempDir()
	muxWithClasses := func(name string, bulkMin, bulkMean float64) string {
		rows := []muxRow{{
			Sessions: 16, Nodes: 5, AggregateMBPerSec: 500,
			MeanSessionMBPerS: bulkMean, MinSessionMBPerS: bulkMin,
			PerClass: map[string]muxClassStats{
				"bulk":        {Sessions: 8, MeanMBPerS: bulkMean, MinMBPerS: bulkMin},
				"interactive": {Sessions: 8, MeanMBPerS: 120, MinMBPerS: 110},
			},
		}}
		return writeJSON(t, dir, name, rows)
	}
	base := muxWithClasses("base.json", 30, 31)
	opts := compareOptions{Tolerance: 0.25, DetectFactor: 2, Fairness: 0.8}

	if err := runCompare(base, []string{muxWithClasses("fair.json", 30, 31)}, opts); err != nil {
		t.Fatalf("fair run failed the gate: %v", err)
	}
	err := runCompare(base, []string{muxWithClasses("unfair.json", 10, 31)}, opts)
	if err == nil || !strings.Contains(err.Error(), "fairness") {
		t.Fatalf("starved class passed the fairness gate: %v", err)
	}
	// The gate is absolute: an unfair BASELINE cannot grandfather an
	// unfair fresh run in.
	unfairBase := muxWithClasses("unfair_base.json", 5, 31)
	err = runCompare(unfairBase, []string{muxWithClasses("unfair2.json", 10, 31)}, opts)
	if err == nil {
		t.Fatal("unfair baseline grandfathered an unfair fresh run")
	}
	// Disabled floor: only the aggregate gate applies.
	opts.Fairness = 0
	if err := runCompare(base, []string{muxWithClasses("unfair3.json", 10, 31)}, opts); err != nil {
		t.Fatalf("disabled fairness gate still failed: %v", err)
	}
	// Rows without per-class stats (older artifacts) fall back to the
	// row-level min/mean.
	opts.Fairness = 0.8
	legacy := writeJSON(t, dir, "legacy.json", []muxRow{{
		Sessions: 16, Nodes: 5, AggregateMBPerSec: 500,
		MeanSessionMBPerS: 31, MinSessionMBPerS: 10,
	}})
	legacyBase := writeJSON(t, dir, "legacy_base.json", []muxRow{{
		Sessions: 16, Nodes: 5, AggregateMBPerSec: 500,
		MeanSessionMBPerS: 31, MinSessionMBPerS: 30,
	}})
	if err := runCompare(legacyBase, []string{legacy}, opts); err == nil {
		t.Fatal("legacy-shape unfair run passed")
	}
}

// TestParseCompareArgsFairness: the trailing -fairness flag parses too.
func TestParseCompareArgsFairness(t *testing.T) {
	files, opts, err := parseCompareArgs(
		[]string{"new.json", "-fairness", "0.9"},
		compareOptions{Tolerance: 0.25, DetectFactor: 2, Fairness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || opts.Fairness != 0.9 {
		t.Fatalf("files %v opts %+v", files, opts)
	}
}
