package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// The -compare subcommand is the CI regression gate: it reads a committed
// baseline JSON (BENCH_1.json engine rows, BENCH_2.json mux rows, or
// CHAOS_1.json recovery report — the shape is sniffed) and one or more
// fresh result files of the same shape, reduces the fresh runs to
// per-metric medians (noise tolerance: CI runs each bench three times),
// and fails when:
//
//   - engine/mux: the aggregate MB/s across rows present in both files
//     regresses by more than the tolerance (default 25%);
//   - chaos: any fresh scenario reports a failed recovery invariant, or
//     the overall detect p50 regresses by more than the detect factor
//     (default 2x).
//
// Usage:
//
//	kascade-bench -compare BENCH_1.json fresh1.json fresh2.json fresh3.json -tolerance 0.25
//	kascade-bench -compare CHAOS_1.json fresh_chaos.json
//
// (Trailing -tolerance/-detect-factor after the file list are accepted, so
// the documented one-line form works despite flag-package ordering.)

// compareOptions tunes the gate thresholds.
type compareOptions struct {
	// Tolerance is the allowed fractional aggregate-MB/s regression for
	// engine and mux comparisons (0.25 = fail below 75% of baseline).
	Tolerance float64
	// DetectFactor is the allowed multiple of the baseline detect p50 for
	// chaos comparisons (2 = fail above 2x).
	DetectFactor float64
	// Fairness is the minimum within-class per-session min/mean
	// throughput ratio demanded of every fresh mux row (median across
	// fresh runs). It is an absolute gate on the fresh results — the
	// baseline is not consulted — so a scheduler change that starves one
	// session inside a class fails CI even if the aggregate improved.
	// 0 disables the check.
	Fairness float64
}

// median reduces a non-empty sample to its median (mean of the middle two
// on even sizes).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// fileKind sniffs which benchmark artifact a JSON file holds.
type fileKind int

const (
	kindEngine fileKind = iota + 1 // map name -> engineResult
	kindMux                        // array of muxRow
	kindChaos                      // chaosReport object
)

func sniffKind(data []byte) (fileKind, error) {
	var probe any
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, err
	}
	switch v := probe.(type) {
	case []any:
		return kindMux, nil
	case map[string]any:
		if _, ok := v["scenarios"]; ok {
			return kindChaos, nil
		}
		return kindEngine, nil
	default:
		return 0, fmt.Errorf("unrecognised benchmark file shape")
	}
}

// loadRows flattens one benchmark file into metric-name -> value rows; the
// aggregate metric used for the gate is the sum over shared rows.
//   - engine files: row per benchmark, value = MB/s
//   - mux files: row per session count (and variant label), value =
//     aggregate MB/s; the structured rows ride along for the fairness gate
func loadRows(path string) (fileKind, map[string]float64, []muxRow, *chaosReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	kind, err := sniffKind(data)
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	switch kind {
	case kindEngine:
		var rows map[string]engineResult
		if err := json.Unmarshal(data, &rows); err != nil {
			return 0, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		out := make(map[string]float64, len(rows))
		for name, r := range rows {
			out[name] = r.MBPerSec
		}
		return kind, out, nil, nil, nil
	case kindMux:
		var rows []muxRow
		if err := json.Unmarshal(data, &rows); err != nil {
			return 0, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		out := make(map[string]float64, len(rows))
		for _, r := range rows {
			out[r.key()] = r.AggregateMBPerSec
		}
		return kind, out, rows, nil, nil
	case kindChaos:
		var rep chaosReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return 0, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return kind, nil, nil, &rep, nil
	}
	return 0, nil, nil, nil, fmt.Errorf("%s: unrecognised shape", path)
}

// runCompare executes the gate: baseline vs the medians of fresh files.
func runCompare(baselinePath string, freshPaths []string, opts compareOptions) error {
	if len(freshPaths) == 0 {
		return fmt.Errorf("-compare needs at least one fresh result file")
	}
	baseKind, baseRows, _, baseChaos, err := loadRows(baselinePath)
	if err != nil {
		return err
	}

	freshRowSets := make([]map[string]float64, 0, len(freshPaths))
	freshMux := make([][]muxRow, 0, len(freshPaths))
	freshChaos := make([]*chaosReport, 0, len(freshPaths))
	for _, p := range freshPaths {
		kind, rows, muxRows, chaosRep, err := loadRows(p)
		if err != nil {
			return err
		}
		if kind != baseKind {
			return fmt.Errorf("%s: shape differs from baseline %s", p, baselinePath)
		}
		if kind == kindChaos {
			freshChaos = append(freshChaos, chaosRep)
		} else {
			freshRowSets = append(freshRowSets, rows)
			freshMux = append(freshMux, muxRows)
		}
	}

	if baseKind == kindChaos {
		return compareChaos(baselinePath, baseChaos, freshChaos, opts)
	}
	if err := compareThroughput(baselinePath, baseRows, freshRowSets, opts); err != nil {
		return err
	}
	if baseKind == kindMux {
		return compareMuxFairness(freshMux, opts)
	}
	return nil
}

// compareMuxFairness gates the fresh mux runs on within-class fairness:
// for every row and every class in it, the per-session min/mean throughput
// ratio (median across the fresh runs) must reach opts.Fairness. Rows
// without per-class stats (older artifacts) fall back to their row-level
// min/mean. The gate is absolute — a committed baseline cannot grandfather
// an unfair scheduler in.
func compareMuxFairness(fresh [][]muxRow, opts compareOptions) error {
	if opts.Fairness <= 0 {
		return nil
	}
	// (row key, class) -> per-fresh-run ratios.
	type cell struct{ key, class string }
	samples := make(map[cell][]float64)
	var order []cell
	for _, rows := range fresh {
		for _, r := range rows {
			if len(r.PerClass) == 0 {
				// Fallback: single implicit class at row level.
				ratio := 0.0
				if r.MeanSessionMBPerS > 0 {
					ratio = r.MinSessionMBPerS / r.MeanSessionMBPerS
				}
				c := cell{key: r.key(), class: "(all)"}
				if _, ok := samples[c]; !ok {
					order = append(order, c)
				}
				samples[c] = append(samples[c], ratio)
				continue
			}
			for class, cs := range r.PerClass {
				if cs.Sessions < 2 {
					continue // min/mean of one session is vacuous
				}
				c := cell{key: r.key(), class: class}
				if _, ok := samples[c]; !ok {
					order = append(order, c)
				}
				samples[c] = append(samples[c], fairnessRatio(cs))
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].key != order[j].key {
			return order[i].key < order[j].key
		}
		return order[i].class < order[j].class
	})
	failed := 0
	for _, c := range order {
		ratio := median(samples[c])
		verdict := "ok"
		if ratio < opts.Fairness {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("fairness %-26s class %-12s min/mean %.3f (floor %.2f) %s\n",
			c.key, c.class, ratio, opts.Fairness, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("%d class(es) below the within-class fairness floor of %.2f", failed, opts.Fairness)
	}
	fmt.Println("fairness: PASS")
	return nil
}

// compareThroughput gates engine and mux files on aggregate MB/s.
func compareThroughput(baselinePath string, base map[string]float64, fresh []map[string]float64, opts compareOptions) error {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var baseAgg, freshAgg float64
	var missing []string
	fmt.Printf("%-34s %12s %12s %8s\n", "benchmark", "baseline", "fresh(med)", "delta")
	for _, name := range names {
		var sample []float64
		for _, rows := range fresh {
			if v, ok := rows[name]; ok {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			missing = append(missing, name)
			continue
		}
		med := median(sample)
		baseAgg += base[name]
		freshAgg += med
		fmt.Printf("%-34s %9.1f MB/s %9.1f MB/s %+7.1f%%\n",
			name, base[name], med, (med/base[name]-1)*100)
	}
	if len(missing) > 0 {
		return fmt.Errorf("fresh results are missing baseline rows %v", missing)
	}
	// Fresh-only rows (benchmarks added since the baseline was committed)
	// cannot be gated — there is nothing to regress against — but silently
	// dropping them would hide a stale baseline. Announce each skip; the
	// next baseline refresh folds them in.
	for _, name := range freshOnlyRows(base, fresh) {
		var sample []float64
		for _, rows := range fresh {
			if v, ok := rows[name]; ok {
				sample = append(sample, v)
			}
		}
		fmt.Printf("%-34s %12s %9.1f MB/s   (new row, not in baseline: skipped from the gate)\n",
			name, "-", median(sample))
	}
	if baseAgg <= 0 {
		return fmt.Errorf("baseline %s has no throughput rows", baselinePath)
	}
	delta := freshAgg/baseAgg - 1
	floor := baseAgg * (1 - opts.Tolerance)
	fmt.Printf("%-34s %9.1f MB/s %9.1f MB/s %+7.1f%%  (floor %.1f MB/s, tolerance %.0f%%)\n",
		"AGGREGATE", baseAgg, freshAgg, delta*100, floor, opts.Tolerance*100)
	if freshAgg < floor {
		return fmt.Errorf("aggregate throughput regressed %.1f%% (%.1f -> %.1f MB/s; tolerance %.0f%%)",
			-delta*100, baseAgg, freshAgg, opts.Tolerance*100)
	}
	fmt.Println("compare: PASS")
	return nil
}

// freshOnlyRows returns the sorted row names that appear in at least one
// fresh result set but not in the baseline.
func freshOnlyRows(base map[string]float64, fresh []map[string]float64) []string {
	seen := map[string]bool{}
	var out []string
	for _, rows := range fresh {
		for name := range rows {
			if _, inBase := base[name]; !inBase && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// compareChaos gates a recovery report: zero fresh scenario failures, and
// the overall detect p50 within DetectFactor of the baseline.
func compareChaos(baselinePath string, base *chaosReport, fresh []*chaosReport, opts compareOptions) error {
	failures := 0
	var detectP50s []float64
	for _, rep := range fresh {
		for _, row := range rep.Scenarios {
			if !row.OK {
				failures++
				fmt.Printf("FAIL scenario %-28s: %s\n", row.Name, row.CheckErr)
			}
		}
		detectP50s = append(detectP50s, rep.DetectMs.P50)
	}
	freshP50 := median(detectP50s)
	limit := base.DetectMs.P50 * opts.DetectFactor
	fmt.Printf("chaos: %d fresh failure(s); detect p50 %.1f ms vs baseline %.1f ms (limit %.1f ms, factor %.1fx)\n",
		failures, freshP50, base.DetectMs.P50, limit, opts.DetectFactor)
	if failures > 0 {
		return fmt.Errorf("%d fresh chaos scenario(s) failed their recovery invariants", failures)
	}
	if base.DetectMs.P50 > 0 && freshP50 > limit {
		return fmt.Errorf("detect p50 regressed %.1fx (%.1f -> %.1f ms; limit %.1fx)",
			freshP50/base.DetectMs.P50, base.DetectMs.P50, freshP50, opts.DetectFactor)
	}
	fmt.Println("compare: PASS")
	return nil
}

// parseCompareArgs splits the post-flag argument list into fresh result
// files and trailing threshold flags, so the documented
// `kascade-bench -compare old.json new.json -tolerance 0.25` form works
// even though the flag package stops at the first positional argument.
func parseCompareArgs(args []string, opts compareOptions) ([]string, compareOptions, error) {
	var files []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-tolerance", "--tolerance":
			if i+1 >= len(args) {
				return nil, opts, fmt.Errorf("%s needs a value", args[i])
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return nil, opts, fmt.Errorf("bad tolerance %q: %w", args[i+1], err)
			}
			opts.Tolerance = v
			i++
		case "-detect-factor", "--detect-factor":
			if i+1 >= len(args) {
				return nil, opts, fmt.Errorf("%s needs a value", args[i])
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return nil, opts, fmt.Errorf("bad detect factor %q: %w", args[i+1], err)
			}
			opts.DetectFactor = v
			i++
		case "-fairness", "--fairness":
			if i+1 >= len(args) {
				return nil, opts, fmt.Errorf("%s needs a value", args[i])
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return nil, opts, fmt.Errorf("bad fairness floor %q: %w", args[i+1], err)
			}
			opts.Fairness = v
			i++
		default:
			files = append(files, args[i])
		}
	}
	return files, opts, nil
}
