// Command kascade-bench regenerates the paper's evaluation tables (§IV,
// Figures 7-15) and the design-choice ablations on the simulator, and
// benchmarks the real protocol engine.
//
//	kascade-bench -list                 # show available experiments
//	kascade-bench -run fig7             # regenerate one figure
//	kascade-bench -run all -scale 1     # everything at paper file sizes
//	kascade-bench -run fig15 -reps 10   # tighter confidence intervals
//	kascade-bench -engine -json BENCH_1.json   # engine microbenchmarks
//	kascade-bench -chaos -seed 1 -json CHAOS_1.json   # recovery benchmarks
//
// Absolute throughputs come from a calibrated simulator (see DESIGN.md §2);
// the shapes — who wins, by what factor, where the crossovers are — are the
// reproduction targets, recorded against the paper in EXPERIMENTS.md. The
// -engine mode instead runs real broadcasts over the in-memory fabric
// (the same harness as `go test -bench Engine`) and writes a
// machine-readable JSON file so successive PRs can track the hot-path
// trajectory. The -chaos mode runs the full fault-injection scenario
// matrix (internal/chaos) at bench-sized payloads and records the
// recovery-latency distributions next to the delivery verdicts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"kascade/internal/benchkit"
	"kascade/internal/chaos"
	"kascade/internal/core"
	"kascade/internal/experiments"
)

// engineResult is one row of the machine-readable engine benchmark file.
type engineResult struct {
	MBPerSec    float64 `json:"mb_per_s"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// runEngineBench benchmarks the real engine over the fabric and writes
// name → metrics JSON to path. The matrix comes from benchkit, the same
// table `go test -bench Engine` iterates.
func runEngineBench(path string) error {
	specs := benchkit.EngineBenchmarks()
	out := make(map[string]engineResult, len(specs))
	for _, spec := range specs {
		spec := spec
		var broadcastErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(spec.Size)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Broadcast(); err != nil {
					broadcastErr = err
					b.Fatal(err)
				}
			}
		})
		// testing.Benchmark swallows b.Fatal into a zero result; surface
		// it instead of writing zeroed rows with a success exit code.
		if broadcastErr != nil {
			return fmt.Errorf("%s: %w", spec.Name, broadcastErr)
		}
		if r.N == 0 || r.NsPerOp() <= 0 {
			return fmt.Errorf("%s: benchmark produced no measurements", spec.Name)
		}
		res := engineResult{
			MBPerSec:    float64(spec.Size) / 1e6 / (float64(r.NsPerOp()) / 1e9),
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		out[spec.Name] = res
		fmt.Printf("%-32s %8.2f MB/s %10d ns/op %8d allocs/op\n",
			spec.Name, res.MBPerSec, res.NsPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// muxRow is one row of the session-multiplexing benchmark: aggregate and
// per-session throughput with S overlapping broadcasts sharing one engine
// (single data listener) per pipeline host, broken down by priority class.
type muxRow struct {
	Sessions          int                      `json:"sessions"`
	Label             string                   `json:"label,omitempty"` // variant tag, e.g. "mixed" (class mix)
	Nodes             int                      `json:"nodes"`
	PayloadBytes      int64                    `json:"payload_bytes"`
	ElapsedMs         float64                  `json:"elapsed_ms"`
	AggregateMBPerSec float64                  `json:"aggregate_mb_per_s"`
	MeanSessionMBPerS float64                  `json:"mean_session_mb_per_s"`
	MinSessionMBPerS  float64                  `json:"min_session_mb_per_s"`
	PerClass          map[string]muxClassStats `json:"per_class,omitempty"`
}

// muxClassStats summarises the sessions of one priority class in a mux
// row; min/mean is the within-class fairness ratio the CI gate checks.
type muxClassStats struct {
	Sessions   int     `json:"sessions"`
	MeanMBPerS float64 `json:"mean_mb_per_s"`
	MinMBPerS  float64 `json:"min_mb_per_s"`
}

// key names the row in compare tables: variant rows carry their label.
func (r muxRow) key() string {
	if r.Label != "" {
		return fmt.Sprintf("mux/sessions=%d/%s", r.Sessions, r.Label)
	}
	return fmt.Sprintf("mux/sessions=%d", r.Sessions)
}

// muxBenchNodes/muxBenchChunk fix the pipeline shape of the mux sweep so
// rows across PRs stay comparable (depth matches the chunk-size sweep).
const (
	muxBenchNodes = 5
	muxBenchChunk = 256 << 10
)

// muxBenchReps is how many times each session count runs; the best round
// is recorded (minimum-time discipline — truly simultaneous sessions on a
// loaded builder schedule noisily).
const muxBenchReps = 3

// muxSpec is one point of the mux sweep: a session count, and optionally a
// class mix (nil = all bulk).
type muxSpec struct {
	sessions int
	label    string
	classFor func(s int) string
}

// muxSweep is the benchmark matrix: the uniform-class concurrency sweep,
// plus a mixed bulk/interactive run at the highest concurrency that
// exercises the weighted scheduler's cross-class split (within-class
// fairness must still hold; across classes the interactive sessions earn
// their weight).
func muxSweep() []muxSpec {
	specs := make([]muxSpec, 0, len(benchkit.MuxSessionCounts)+1)
	for _, sessions := range benchkit.MuxSessionCounts {
		specs = append(specs, muxSpec{sessions: sessions})
	}
	top := benchkit.MuxSessionCounts[len(benchkit.MuxSessionCounts)-1]
	specs = append(specs, muxSpec{
		sessions: top,
		label:    "mixed",
		classFor: func(s int) string {
			if s%2 == 1 {
				return core.ClassInteractive
			}
			return core.ClassBulk
		},
	})
	return specs
}

// muxClassOf mirrors a spec's class assignment for reporting.
func (sp muxSpec) classOf(s int) string {
	if sp.classFor == nil {
		return core.ClassBulk
	}
	return sp.classFor(s)
}

// runMuxBench sweeps muxSweep through shared per-host engines and writes
// the aggregate/per-session/per-class throughput table to path.
func runMuxBench(path string) error {
	specs := muxSweep()
	rows := make([]muxRow, 0, len(specs))
	size := int64(benchkit.EngineBenchSize)
	for _, sp := range specs {
		var best muxRow
		got := 0
		var lastErr error
		for rep := 0; rep < muxBenchReps; rep++ {
			results, elapsed, err := benchkit.MuxBroadcastClasses(sp.sessions, muxBenchNodes, size, muxBenchChunk, sp.classFor)
			if err != nil {
				// A rep can fail spuriously on an oversubscribed builder
				// (scheduler starvation tripping a failure detector); the
				// best-of discipline tolerates it, and only an all-reps
				// failure fails the artifact.
				lastErr = err
				fmt.Fprintf(os.Stderr, "mux sessions=%d%s rep %d/%d failed (discarded): %v\n", sp.sessions, sp.label, rep+1, muxBenchReps, err)
				continue
			}
			row := muxRow{
				Sessions:          sp.sessions,
				Label:             sp.label,
				Nodes:             muxBenchNodes,
				PayloadBytes:      size,
				ElapsedMs:         float64(elapsed) / 1e6,
				AggregateMBPerSec: float64(sp.sessions) * float64(size) / 1e6 / elapsed.Seconds(),
				PerClass:          make(map[string]muxClassStats),
			}
			min := 0.0
			for i, r := range results {
				mbps := r.Throughput() / 1e6
				row.MeanSessionMBPerS += mbps / float64(sp.sessions)
				if i == 0 || mbps < min {
					min = mbps
				}
				class := sp.classOf(i)
				cs := row.PerClass[class]
				cs.Sessions++
				cs.MeanMBPerS += mbps // sum for now; divided below
				if cs.Sessions == 1 || mbps < cs.MinMBPerS {
					cs.MinMBPerS = mbps
				}
				row.PerClass[class] = cs
			}
			for class, cs := range row.PerClass {
				cs.MeanMBPerS /= float64(cs.Sessions)
				row.PerClass[class] = cs
			}
			row.MinSessionMBPerS = min
			if got == 0 || row.AggregateMBPerSec > best.AggregateMBPerSec {
				best = row
			}
			got++
		}
		if got == 0 {
			return fmt.Errorf("mux sessions=%d%s: all %d reps failed: %w", sp.sessions, sp.label, muxBenchReps, lastErr)
		}
		rows = append(rows, best)
		fmt.Printf("%-22s nodes=%d %8.0f ms  aggregate %7.1f MB/s  per-session mean %6.1f MB/s  min %6.1f MB/s\n",
			best.key(), best.Nodes, best.ElapsedMs, best.AggregateMBPerSec, best.MeanSessionMBPerS, best.MinSessionMBPerS)
		for class, cs := range best.PerClass {
			fmt.Printf("  class %-12s sessions=%-3d mean %6.1f MB/s  min %6.1f MB/s  (min/mean %.2f)\n",
				class, cs.Sessions, cs.MeanMBPerS, cs.MinMBPerS, fairnessRatio(cs))
		}
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// fairnessRatio is a class's within-class min/mean throughput ratio (1 =
// perfectly fair; the CI gate demands ≥ 0.8 by default).
func fairnessRatio(cs muxClassStats) float64 {
	if cs.MeanMBPerS <= 0 {
		return 0
	}
	return cs.MinMBPerS / cs.MeanMBPerS
}

// chaosScenarioRow is one scenario's verdict and latency summary in the
// machine-readable chaos report.
type chaosScenarioRow struct {
	Name       string             `json:"name"`
	Nodes      int                `json:"nodes"`
	Faults     int                `json:"faults"`
	OK         bool               `json:"ok"`
	CheckErr   string             `json:"check_err,omitempty"`
	ElapsedMs  float64            `json:"elapsed_ms"`
	DetectMs   benchkit.Quantiles `json:"detect_ms"`
	ResumeMs   benchkit.Quantiles `json:"resume_ms"`
	Recoveries int                `json:"recoveries"`
}

// chaosReport is the artifact `kascade-bench -chaos -json` writes.
type chaosReport struct {
	Seed      int64              `json:"seed"`
	Scenarios []chaosScenarioRow `json:"scenarios"`
	DetectMs  benchkit.Quantiles `json:"detect_ms"`
	ResumeMs  benchkit.Quantiles `json:"resume_ms"`
}

// runChaosBench sweeps the full (bench-sized) chaos matrix and writes the
// recovery report. A failing scenario prints its reproduction recipe and
// makes the run exit non-zero.
func runChaosBench(seed int64, path string) error {
	scenarios := chaos.Matrix(seed, true)
	results := chaos.RunMatrix(context.Background(), scenarios)
	rep := chaosReport{Seed: seed}
	var allDetect, allResume []float64
	failures := 0
	for _, res := range results {
		var detect, resume []float64
		for _, rec := range res.Recoveries {
			if rec.Detected {
				detect = append(detect, float64(rec.DetectLatency)/1e6)
			}
			if rec.Resumed {
				resume = append(resume, float64(rec.ResumeLatency)/1e6)
			}
		}
		allDetect = append(allDetect, detect...)
		allResume = append(allResume, resume...)
		row := chaosScenarioRow{
			Name:       res.Scenario.Name,
			Nodes:      res.Scenario.Nodes,
			Faults:     len(res.Scenario.Faults),
			OK:         true,
			ElapsedMs:  float64(res.Elapsed) / 1e6,
			DetectMs:   benchkit.Summarize(detect),
			ResumeMs:   benchkit.Summarize(resume),
			Recoveries: len(res.Recoveries),
		}
		if err := chaos.Check(res); err != nil {
			row.OK = false
			row.CheckErr = err.Error()
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n%s\n", res.Scenario.Name, err, res.Scenario.Repro(seed))
		}
		fmt.Printf("%-28s nodes=%-3d faults=%d ok=%-5v %8.0f ms  detect p50 %6.1f ms  resume p50 %6.1f ms\n",
			row.Name, row.Nodes, row.Faults, row.OK, row.ElapsedMs, row.DetectMs.P50, row.ResumeMs.P50)
		rep.Scenarios = append(rep.Scenarios, row)
	}
	rep.DetectMs = benchkit.Summarize(allDetect)
	rep.ResumeMs = benchkit.Summarize(allResume)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("overall: %d scenarios, detect p50/p90/max %.1f/%.1f/%.1f ms, resume p50/p90/max %.1f/%.1f/%.1f ms\nwrote %s\n",
		len(rep.Scenarios),
		rep.DetectMs.P50, rep.DetectMs.P90, rep.DetectMs.Max,
		rep.ResumeMs.P50, rep.ResumeMs.P90, rep.ResumeMs.Max, path)
	if failures > 0 {
		return fmt.Errorf("%d scenario(s) failed their recovery invariants", failures)
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment id to run (or 'all' / 'figures')")
	reps := flag.Int("reps", 3, "repetitions per data point")
	scale := flag.Float64("scale", 0.25, "file-size scale factor (1 = paper sizes)")
	seed := flag.Int64("seed", 1, "jitter seed")
	engine := flag.Bool("engine", false, "benchmark the real protocol engine instead of the simulator")
	mux := flag.Bool("mux", false, "benchmark concurrent broadcasts multiplexed through shared engines")
	chaosRun := flag.Bool("chaos", false, "run the fault-injection scenario matrix and record recovery latencies")
	jsonPath := flag.String("json", "BENCH_1.json", "output path for -engine / -mux / -chaos results")
	compare := flag.String("compare", "", "baseline JSON; compare the fresh result files given as arguments against it (CI regression gate)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional aggregate-MB/s regression for -compare")
	detectFactor := flag.Float64("detect-factor", 2.0, "allowed multiple of the baseline detect p50 for chaos -compare")
	fairness := flag.Float64("fairness", 0.8, "minimum within-class per-session min/mean ratio for mux -compare (0 disables)")
	flag.Parse()

	if *compare != "" {
		files, opts, err := parseCompareArgs(flag.Args(), compareOptions{Tolerance: *tolerance, DetectFactor: *detectFactor, Fairness: *fairness})
		if err == nil {
			err = runCompare(*compare, files, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kascade-bench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *engine {
		if err := runEngineBench(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "kascade-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mux {
		if err := runMuxBench(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "kascade-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosRun {
		if err := runChaosBench(*seed, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "kascade-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Reps: *reps, Scale: *scale, Seed: *seed}
	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "figures":
		for _, e := range experiments.All() {
			if len(e.ID) > 3 && e.ID[:3] == "fig" {
				selected = append(selected, e)
			}
		}
	default:
		e, ok := experiments.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "kascade-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run(cfg)
		table.Render(os.Stdout)
		fmt.Printf("[%s: %d reps, scale %.2g, %v]\n\n", e.ID, cfg.Reps, cfg.Scale, time.Since(start).Round(time.Millisecond))
	}
}
