// Command kascade-bench regenerates the paper's evaluation tables (§IV,
// Figures 7-15) and the design-choice ablations on the simulator.
//
//	kascade-bench -list                 # show available experiments
//	kascade-bench -run fig7             # regenerate one figure
//	kascade-bench -run all -scale 1     # everything at paper file sizes
//	kascade-bench -run fig15 -reps 10   # tighter confidence intervals
//
// Absolute throughputs come from a calibrated simulator (see DESIGN.md §2);
// the shapes — who wins, by what factor, where the crossovers are — are the
// reproduction targets, recorded against the paper in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kascade/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment id to run (or 'all' / 'figures')")
	reps := flag.Int("reps", 3, "repetitions per data point")
	scale := flag.Float64("scale", 0.25, "file-size scale factor (1 = paper sizes)")
	seed := flag.Int64("seed", 1, "jitter seed")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Reps: *reps, Scale: *scale, Seed: *seed}
	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "figures":
		for _, e := range experiments.All() {
			if len(e.ID) > 3 && e.ID[:3] == "fig" {
				selected = append(selected, e)
			}
		}
	default:
		e, ok := experiments.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "kascade-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run(cfg)
		table.Render(os.Stdout)
		fmt.Printf("[%s: %d reps, scale %.2g, %v]\n\n", e.ID, cfg.Reps, cfg.Scale, time.Since(start).Round(time.Millisecond))
	}
}
