module kascade

go 1.24
