package topology

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

func TestHostNumber(t *testing.T) {
	cases := map[string]int{
		"n1":           1,
		"n042":         42,
		"graphene-107": 107,
		"node":         -1,
		"":             -1,
		"12":           12,
		// Overflow regression: a digit run that cannot be represented as
		// an int must read as "no usable number" (-1), not silently wrap
		// into an arbitrary — possibly colliding — value.
		"n99999999999999999999":                      -1,
		"n" + strconv.Itoa(math.MaxInt):              math.MaxInt, // exactly MaxInt still parses
		"n0000" + strconv.Itoa(math.MaxInt):          math.MaxInt, // leading zeros don't shift the bound
		"n" + strconv.Itoa(math.MaxInt)[:18] + "999": -1,          // past MaxInt overflows
	}
	for name, want := range cases {
		if got := HostNumber(name); got != want {
			t.Errorf("HostNumber(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestSortByHostNumberOverflow pins that overflowing numeric suffixes fall
// back to a stable lexicographic order instead of sorting by a wrapped
// (potentially negative or colliding) accumulator.
func TestSortByHostNumberOverflow(t *testing.T) {
	names := []string{
		"n99999999999999999999", // overflow -> lexicographic bucket
		"n2",
		"n18446744073709551617", // also overflow (2^64+1 wraps to 1 unguarded)
		"n1",
	}
	SortByHostNumber(names)
	want := []string{"n1", "n2", "n18446744073709551617", "n99999999999999999999"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("got %v, want %v", names, want)
	}
}

func TestSortByHostNumber(t *testing.T) {
	names := []string{"n10", "n2", "n1", "zeta", "n30", "alpha"}
	SortByHostNumber(names)
	want := []string{"n1", "n2", "n10", "n30", "alpha", "zeta"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("got %v, want %v", names, want)
	}
}

func TestFatTreeShape(t *testing.T) {
	c := FatTree("n", 4, 30, Gigabit, TenGigabit)
	if len(c.Nodes) != 120 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if c.Nodes[0].Name != "n1" || c.Nodes[119].Name != "n120" {
		t.Fatalf("naming: %s .. %s", c.Nodes[0].Name, c.Nodes[119].Name)
	}
	// Node 30 (0-based 29) is the last of switch 0, node 31 first of switch 1.
	if c.Nodes[29].Switch != 0 || c.Nodes[30].Switch != 1 {
		t.Fatalf("switch assignment: %d, %d", c.Nodes[29].Switch, c.Nodes[30].Switch)
	}
}

func TestTopologyOrderCrossesEachUplinkOnce(t *testing.T) {
	c := FatTree("n", 7, 30, Gigabit, TenGigabit)
	o := c.TopologyOrder()
	if err := c.Validate(o); err != nil {
		t.Fatal(err)
	}
	if got := c.UplinkCrossings(o); got != 6 {
		t.Fatalf("ordered crossings = %d, want switches-1 = 6", got)
	}
	if got := c.MaxUplinkLoad(o); got != 1 {
		t.Fatalf("ordered max uplink load = %d, want 1", got)
	}
}

func TestRandomOrderKeepsSenderAndIsPermutation(t *testing.T) {
	c := FatTree("n", 6, 33, Gigabit, TenGigabit)
	o := c.RandomOrder(42)
	if err := c.Validate(o); err != nil {
		t.Fatal(err)
	}
	if o[0] != c.TopologyOrder()[0] {
		t.Fatal("random order moved the sender")
	}
	if got := c.UplinkCrossings(o); got < 20 {
		t.Fatalf("random order crossings = %d, expected heavy crossing", got)
	}
	if got := c.MaxUplinkLoad(o); got < 4 {
		t.Fatalf("random order max uplink load = %d, expected contention", got)
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	c := FatTree("n", 2, 3, Gigabit, TenGigabit)
	if err := c.Validate(Order{0, 1, 2}); err == nil {
		t.Error("short order accepted")
	}
	if err := c.Validate(Order{0, 1, 2, 3, 4, 4}); err == nil {
		t.Error("repeated entry accepted")
	}
	if err := c.Validate(Order{0, 1, 2, 3, 4, 9}); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestMultiSite(t *testing.T) {
	sites := []SiteSpec{{Name: "nancy", Nodes: 2}, {Name: "lille", Nodes: 1}, {Name: "lyon", Nodes: 1, LatencySec: 0.012}}
	c := MultiSite(sites, Gigabit, TenGigabit, 0.008)
	if len(c.Nodes) != 4 || c.Sites != 3 {
		t.Fatalf("shape: %d nodes, %d sites", len(c.Nodes), c.Sites)
	}
	if c.Nodes[0].Site != 0 || c.Nodes[3].Site != 2 {
		t.Fatalf("site assignment wrong")
	}
	if c.Nodes[0].Name != "nancy-1" {
		t.Fatalf("name %q", c.Nodes[0].Name)
	}
	// Explicit per-site latency is kept; default is half the inter-site one.
	if c.SiteLatency(2) != 0.012 {
		t.Fatalf("lyon latency %v", c.SiteLatency(2))
	}
	if c.SiteLatency(0) != 0.004 {
		t.Fatalf("default latency %v", c.SiteLatency(0))
	}
}

// TestMultiSiteUplinkCapacity is the regression test for the uplink/WAN
// conflation: a site's switch->core uplink must default to the edge
// capacity (not the WAN backbone rate), honour an explicit per-site
// override, and leave the backbone rate on InterSiteCapacity.
func TestMultiSiteUplinkCapacity(t *testing.T) {
	sites := []SiteSpec{
		{Name: "nancy", Nodes: 2},
		{Name: "lille", Nodes: 1, UplinkCapacity: TenGigabit},
	}
	c := MultiSite(sites, Gigabit, HundredMBps, 0.008)
	if got := c.SwitchUplink(0); got != Gigabit {
		t.Errorf("default site uplink = %v, want edge capacity %v", got, float64(Gigabit))
	}
	if got := c.SwitchUplink(1); got != TenGigabit {
		t.Errorf("explicit site uplink = %v, want %v", got, float64(TenGigabit))
	}
	if c.InterSiteCapacity != HundredMBps {
		t.Errorf("WAN backbone = %v, want %v", c.InterSiteCapacity, float64(HundredMBps))
	}
	// The old bug: the WAN rate leaked into every site uplink. With a WAN
	// slower than the edge, no uplink may be constrained to the WAN rate.
	for s := 0; s < c.Switches; s++ {
		if c.SwitchUplink(s) == HundredMBps {
			t.Errorf("site %d uplink took the WAN backbone rate", s)
		}
	}
	// Out-of-range switches fall back to the topology-wide default.
	if got := c.SwitchUplink(99); got != c.UplinkCapacity {
		t.Errorf("fallback uplink = %v, want %v", got, c.UplinkCapacity)
	}
}

// TestDegeneratePlans pins the degenerate shapes the chaos matrix drives
// the engine through: a lone sender, a two-node pipeline, and the
// "all dead but the sender" outcome where the effective order collapses to
// a single survivor. The ordering helpers must stay total (no panics, no
// off-by-ones) at these edges.
func TestDegeneratePlans(t *testing.T) {
	cases := []struct {
		name          string
		switches, per int
		wantNodes     int
		wantCrossings int
		wantMaxLoad   int
	}{
		{"one-node", 1, 1, 1, 0, 0},
		{"two-nodes-one-switch", 1, 2, 2, 0, 0},
		{"two-nodes-two-switches", 2, 1, 2, 1, 1},
		{"three-nodes", 1, 3, 3, 0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := FatTree("n", tc.switches, tc.per, Gigabit, TenGigabit)
			if len(c.Nodes) != tc.wantNodes {
				t.Fatalf("nodes = %d, want %d", len(c.Nodes), tc.wantNodes)
			}
			o := c.TopologyOrder()
			if err := c.Validate(o); err != nil {
				t.Fatal(err)
			}
			if got := c.UplinkCrossings(o); got != tc.wantCrossings {
				t.Errorf("crossings = %d, want %d", got, tc.wantCrossings)
			}
			if got := c.MaxUplinkLoad(o); got != tc.wantMaxLoad {
				t.Errorf("max uplink load = %d, want %d", got, tc.wantMaxLoad)
			}
			// RandomOrder of a degenerate cluster is still a permutation
			// with the sender fixed (a 1-node shuffle must not panic).
			ro := c.RandomOrder(7)
			if err := c.Validate(ro); err != nil {
				t.Fatal(err)
			}
			if ro[0] != o[0] {
				t.Error("random order moved the sender")
			}
			if names := c.Names(o); len(names) != tc.wantNodes || names[0] != "n1" {
				t.Errorf("names: %v", names)
			}
		})
	}
}

// TestAllDeadButSender: when every receiver dies, the surviving "order" is
// the sender alone. A single-element order is only valid for a
// single-node cluster — on a larger cluster Validate must reject it (the
// plan describes the full pipeline; survivorship is the engine's runtime
// concern, not a shorter permutation).
func TestAllDeadButSender(t *testing.T) {
	c := FatTree("n", 2, 3, Gigabit, TenGigabit)
	if err := c.Validate(Order{0}); err == nil {
		t.Error("truncated survivor order accepted as a plan for 6 nodes")
	}
	solo := FatTree("n", 1, 1, Gigabit, TenGigabit)
	if err := solo.Validate(Order{0}); err != nil {
		t.Errorf("single-node order rejected: %v", err)
	}
	if got := solo.UplinkCrossings(Order{0}); got != 0 {
		t.Errorf("lone sender crossings = %d", got)
	}
	if got := solo.MaxUplinkLoad(Order{0}); got != 0 {
		t.Errorf("lone sender uplink load = %d", got)
	}
	// Empty orders are never valid, even for an empty cluster query.
	if err := c.Validate(Order{}); err == nil {
		t.Error("empty order accepted")
	}
}

// Property: RandomOrder always yields a valid permutation with the sender
// fixed, for any cluster shape and seed.
func TestRandomOrderQuick(t *testing.T) {
	f := func(seed int64, sw, per uint8) bool {
		switches := int(sw)%6 + 1
		perSwitch := int(per)%20 + 1
		c := FatTree("n", switches, perSwitch, Gigabit, TenGigabit)
		o := c.RandomOrder(seed)
		return c.Validate(o) == nil && o[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting by host number is idempotent and a permutation.
func TestSortByHostNumberQuick(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := rnd.Intn(40) + 1
		names := make([]string, n)
		for i := range names {
			names[i] = "n" + string(rune('0'+rnd.Intn(10))) + string(rune('0'+rnd.Intn(10)))
		}
		a := append([]string(nil), names...)
		SortByHostNumber(a)
		b := append([]string(nil), a...)
		SortByHostNumber(b)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		// Same multiset.
		count := map[string]int{}
		for _, s := range names {
			count[s]++
		}
		for _, s := range a {
			count[s]--
		}
		for _, v := range count {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
