// Package topology describes cluster and grid network topologies and the
// node orderings that the broadcast methods depend on.
//
// The paper's key observation (§II-A2, §III-A) is that most cluster networks
// are hierarchical fat trees whose core links are under-provisioned, so a
// pipelined broadcast must order nodes to match the physical topology: with
// the right order each link is crossed once per direction; with a random
// order the chain bounces across the inter-switch links and saturates them
// (Fig 10).
//
// This package is pure description — it has no simulation or networking
// code. internal/simnet consumes a Cluster to build its link graph, and the
// real engine uses the ordering helpers to sort destination nodes.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Node is one machine in a cluster.
type Node struct {
	// Name is the host name, e.g. "n42". Kascade assumes the number in
	// the host name reflects the physical topology (§III-A).
	Name string
	// Switch is the index of the top-of-the-rack switch the node hangs
	// off. Nodes with equal Switch share an edge switch.
	Switch int
	// Site is the geographical site for multi-site (WAN) topologies;
	// single-cluster topologies use site 0.
	Site int
}

// Cluster is a set of nodes plus the shape of the network between them.
type Cluster struct {
	Nodes    []Node
	Switches int
	Sites    int

	// EdgeCapacity is the node<->switch link capacity in bytes/s.
	EdgeCapacity float64
	// UplinkCapacity is the switch<->core capacity in bytes/s.
	UplinkCapacity float64
	// SwitchUplinkCapacities optionally overrides UplinkCapacity per
	// switch (indexed by switch number; zero or missing entries fall back
	// to UplinkCapacity). Multi-site topologies use it so each site's
	// switch->core uplink is described separately from the WAN backbone.
	SwitchUplinkCapacities []float64
	// EdgeLatency is the one-way latency of a node<->switch hop.
	EdgeLatencySec float64
	// InterSiteCapacity and InterSiteLatencySec describe the WAN links
	// between site cores; unused when Sites <= 1.
	InterSiteCapacity   float64
	InterSiteLatencySec float64
	// SiteLatenciesSec holds each site's one-way latency to the backbone
	// core; the latency between two sites is the sum of their entries.
	// When empty, InterSiteLatencySec/2 applies to every site.
	SiteLatenciesSec []float64
}

// SwitchUplink returns the switch->core uplink capacity of switch s,
// falling back to the topology-wide UplinkCapacity when no per-switch
// override is set.
func (c *Cluster) SwitchUplink(s int) float64 {
	if s >= 0 && s < len(c.SwitchUplinkCapacities) && c.SwitchUplinkCapacities[s] > 0 {
		return c.SwitchUplinkCapacities[s]
	}
	return c.UplinkCapacity
}

// SiteLatency returns the one-way backbone latency of site s.
func (c *Cluster) SiteLatency(s int) float64 {
	if s < len(c.SiteLatenciesSec) {
		return c.SiteLatenciesSec[s]
	}
	return c.InterSiteLatencySec / 2
}

// Gigabit and related constants express link speeds in bytes per second.
const (
	Gigabit     = 1e9 / 8 // 125 MB/s
	TenGigabit  = 10 * Gigabit
	TwentyGigE  = 20 * Gigabit // the paper's IP-over-InfiniBand rate
	HundredMBps = 100e6
)

// FatTree builds the paper's experimental shape (Fig 1): `switches`
// top-of-the-rack switches with nodesPerSwitch nodes each, every node on an
// edge link of edgeCap bytes/s, every switch connected to a single core
// switch by an uplink of uplinkCap bytes/s. Host names are prefix+1-based
// index, assigned switch-major so that host numbering matches the topology,
// exactly the assumption Kascade's default ordering makes.
func FatTree(prefix string, switches, nodesPerSwitch int, edgeCap, uplinkCap float64) *Cluster {
	c := &Cluster{
		Switches:       switches,
		Sites:          1,
		EdgeCapacity:   edgeCap,
		UplinkCapacity: uplinkCap,
		EdgeLatencySec: 0.0001, // 0.1 ms intra-cluster, per the paper's <0.2 ms ping
	}
	for s := 0; s < switches; s++ {
		for i := 0; i < nodesPerSwitch; i++ {
			c.Nodes = append(c.Nodes, Node{
				Name:   fmt.Sprintf("%s%d", prefix, len(c.Nodes)+1),
				Switch: s,
			})
		}
	}
	return c
}

// SiteSpec describes one site of a multi-site (Grid'5000-like) topology.
type SiteSpec struct {
	Name  string
	Nodes int
	// LatencySec is the site's one-way latency to the backbone core
	// (0 = use the topology-wide default).
	LatencySec float64
	// UplinkCapacity is the site's switch->core uplink in bytes/s
	// (0 = the topology's edge capacity). This is deliberately distinct
	// from the WAN backbone capacity between the site cores: a site's
	// local uplink is provisioned like its edge, not like the routed
	// long-distance backbone.
	UplinkCapacity float64
}

// MultiSite builds the Fig 12 shape: each site is a small cluster (one
// switch), every site core reaches the routed backbone over its own uplink
// (SiteSpec.UplinkCapacity, defaulting to edgeCap), and the backbone itself
// carries interCap bytes/s with interLatencySec one-way latency (the paper
// measures ~16 ms RTT between sites, i.e. 8 ms one way).
func MultiSite(sites []SiteSpec, edgeCap, interCap, interLatencySec float64) *Cluster {
	c := &Cluster{
		Switches:            len(sites),
		Sites:               len(sites),
		EdgeCapacity:        edgeCap,
		UplinkCapacity:      edgeCap,
		EdgeLatencySec:      0.0001,
		InterSiteCapacity:   interCap,
		InterSiteLatencySec: interLatencySec,
	}
	for s, site := range sites {
		lat := site.LatencySec
		if lat <= 0 {
			lat = interLatencySec / 2
		}
		up := site.UplinkCapacity
		if up <= 0 {
			up = edgeCap
		}
		c.SwitchUplinkCapacities = append(c.SwitchUplinkCapacities, up)
		c.SiteLatenciesSec = append(c.SiteLatenciesSec, lat)
		for i := 0; i < site.Nodes; i++ {
			c.Nodes = append(c.Nodes, Node{
				Name:   fmt.Sprintf("%s-%d", site.Name, i+1),
				Switch: s,
				Site:   s,
			})
		}
	}
	return c
}

// HostNumber extracts the trailing integer of a host name ("graphene-42"
// -> 42). It returns -1 when the name has no trailing digits, or when the
// digit run overflows int — a wrapped accumulator would silently mis-sort
// or collide orderings, so an unrepresentable number is treated the same
// as no number at all (lexicographic fallback). Kascade sorts destination
// nodes by this number by default (§III-A).
func HostNumber(name string) int {
	end := len(name)
	start := end
	for start > 0 && name[start-1] >= '0' && name[start-1] <= '9' {
		start--
	}
	if start == end {
		return -1
	}
	n := 0
	for _, ch := range name[start:end] {
		d := int(ch - '0')
		if n > (math.MaxInt-d)/10 {
			return -1
		}
		n = n*10 + d
	}
	return n
}

// SortByHostNumber orders host names by their trailing number, falling back
// to lexicographic order for names without one. The sort is stable so equal
// numbers keep their input order.
func SortByHostNumber(names []string) {
	sort.SliceStable(names, func(i, j int) bool {
		ni, nj := HostNumber(names[i]), HostNumber(names[j])
		switch {
		case ni >= 0 && nj >= 0 && ni != nj:
			return ni < nj
		case ni >= 0 && nj < 0:
			return true
		case ni < 0 && nj >= 0:
			return false
		default:
			return names[i] < names[j]
		}
	})
}

// Order is a pipeline order: a permutation of node indices into
// Cluster.Nodes. Element 0 is the sending node.
type Order []int

// TopologyOrder returns the optimal pipeline order: nodes sorted by
// (switch, index), so each edge link is used once per direction and the
// chain crosses every uplink exactly once in each direction (Fig 3).
func (c *Cluster) TopologyOrder() Order {
	o := make(Order, len(c.Nodes))
	for i := range o {
		o[i] = i
	}
	sort.SliceStable(o, func(a, b int) bool {
		na, nb := c.Nodes[o[a]], c.Nodes[o[b]]
		if na.Switch != nb.Switch {
			return na.Switch < nb.Switch
		}
		return o[a] < o[b]
	})
	return o
}

// RandomOrder returns a seeded random permutation, keeping element 0 (the
// sender) fixed — this is the Fig 10 scenario where the logical order no
// longer matches the topology.
func (c *Cluster) RandomOrder(seed int64) Order {
	o := c.TopologyOrder()
	rnd := rand.New(rand.NewSource(seed))
	rnd.Shuffle(len(o)-1, func(i, j int) {
		o[i+1], o[j+1] = o[j+1], o[i+1]
	})
	return o
}

// Validate checks that o is a permutation of the cluster's node indices.
func (c *Cluster) Validate(o Order) error {
	if len(o) != len(c.Nodes) {
		return fmt.Errorf("topology: order has %d entries for %d nodes", len(o), len(c.Nodes))
	}
	seen := make([]bool, len(c.Nodes))
	for _, idx := range o {
		if idx < 0 || idx >= len(c.Nodes) {
			return fmt.Errorf("topology: order entry %d out of range", idx)
		}
		if seen[idx] {
			return fmt.Errorf("topology: order repeats node %d", idx)
		}
		seen[idx] = true
	}
	return nil
}

// UplinkCrossings counts how many consecutive pipeline hops cross a
// switch boundary under order o. The topology order of a k-switch cluster
// crosses k-1 times; a random order crosses ~(1-1/k) of all hops, which is
// what saturates the core (Fig 10).
func (c *Cluster) UplinkCrossings(o Order) int {
	crossings := 0
	for i := 1; i < len(o); i++ {
		if c.Nodes[o[i-1]].Switch != c.Nodes[o[i]].Switch {
			crossings++
		}
	}
	return crossings
}

// MaxUplinkLoad returns, for the pipeline order o, the maximum number of
// hops that traverse any single switch uplink (in one direction). The
// sustainable pipeline throughput is roughly
// min(edgeCap, uplinkCap/MaxUplinkLoad).
func (c *Cluster) MaxUplinkLoad(o Order) int {
	up := make(map[int]int)   // switch -> hops leaving it via core
	down := make(map[int]int) // switch -> hops entering it via core
	for i := 1; i < len(o); i++ {
		a, b := c.Nodes[o[i-1]], c.Nodes[o[i]]
		if a.Switch != b.Switch {
			up[a.Switch]++
			down[b.Switch]++
		}
	}
	maxLoad := 0
	for _, v := range up {
		if v > maxLoad {
			maxLoad = v
		}
	}
	for _, v := range down {
		if v > maxLoad {
			maxLoad = v
		}
	}
	return maxLoad
}

// Names returns the node names in order o.
func (c *Cluster) Names(o Order) []string {
	out := make([]string, len(o))
	for i, idx := range o {
		out[i] = c.Nodes[idx].Name
	}
	return out
}
