// Package udpcast reimplements the UDPCast-style synchronized broadcast the
// paper evaluates as a baseline (§IV): the sender transmits a slice of the
// file to all receivers "at once" and collects per-slice acknowledgements
// before moving on — the feedback-coordinated default mode of the real tool.
//
// The real tool rides IP multicast, which the paper itself notes is often
// disabled on switches and unusable in hosted environments; this
// implementation preserves the protocol structure (slice transmission, ACK
// collection, sender-side synchronization) over unicast fanout. The
// performance consequence of the design — ACK collection cost growing with
// the receiver count until it dominates past ~100 nodes (Fig 7) — is
// modelled in internal/simbcast; this package provides the functional
// engine for tests, examples, and the CLI.
package udpcast

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"kascade/internal/blockio"
	"kascade/internal/transport"
)

// Config describes one synchronized multicast-style broadcast.
type Config struct {
	// Names and Addrs list the participants; index 0 is the sender.
	Names []string
	Addrs []string
	// SliceSize is the synchronization granularity: the sender waits for
	// every receiver's ACK after each slice (default 16 MiB, UDPCast's
	// default slice ballpark).
	SliceSize int
	// BlockSize is the write granularity within a slice (default 64 KiB).
	BlockSize int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration

	NetworkFor func(i int) transport.Network
	Input      io.Reader
	SinkFor    func(i int) io.Writer
}

func (c *Config) withDefaults() error {
	if len(c.Names) == 0 || len(c.Names) != len(c.Addrs) {
		return fmt.Errorf("udpcast: need matching Names and Addrs")
	}
	if c.SliceSize <= 0 {
		c.SliceSize = 16 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 10
	}
	if c.BlockSize > c.SliceSize {
		c.BlockSize = c.SliceSize
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.NetworkFor == nil {
		return fmt.Errorf("udpcast: NetworkFor is required")
	}
	if c.Input == nil {
		return fmt.Errorf("udpcast: sender needs an Input")
	}
	return nil
}

// Result summarises one broadcast.
type Result struct {
	Total   uint64
	Elapsed time.Duration
	Slices  int
}

// Broadcast runs the synchronized broadcast in-process.
func Broadcast(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return Result{}, err
	}
	n := len(cfg.Names)
	if n == 1 {
		return Result{}, fmt.Errorf("udpcast: no receivers")
	}

	listeners := make([]transport.Listener, n)
	addrs := make([]string, n)
	for i := 1; i < n; i++ {
		l, err := cfg.NetworkFor(i).Listen(cfg.Addrs[i])
		if err != nil {
			for _, b := range listeners[:i] {
				if b != nil {
					b.Close()
				}
			}
			return Result{}, fmt.Errorf("udpcast: binding %s: %w", cfg.Addrs[i], err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	defer func() {
		for _, l := range listeners[1:] {
			l.Close()
		}
	}()

	start := time.Now()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runReceiver(ctx, &cfg, listeners[i], i)
		}(i)
	}
	res, senderErr := runSender(ctx, &cfg, addrs)
	wg.Wait()
	if senderErr != nil {
		return res, fmt.Errorf("udpcast: sender: %w", senderErr)
	}
	for i := 1; i < n; i++ {
		if errs[i] != nil {
			return res, fmt.Errorf("udpcast: receiver %s: %w", cfg.Names[i], errs[i])
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func runSender(ctx context.Context, cfg *Config, addrs []string) (Result, error) {
	var res Result
	conns := make([]transport.Conn, 0, len(addrs)-1)
	readers := make([]*bufio.Reader, 0, len(addrs)-1)
	for i := 1; i < len(addrs); i++ {
		c, err := cfg.NetworkFor(0).Dial(addrs[i], cfg.DialTimeout)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return res, fmt.Errorf("dialing %s: %w", addrs[i], err)
		}
		conns = append(conns, c)
		readers = append(readers, bufio.NewReader(c))
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	buf := make([]byte, cfg.BlockSize)
	var total uint64
	sliceRemaining := cfg.SliceSize
	eof := false
	for !eof {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		nr, rerr := io.ReadFull(cfg.Input, buf)
		if nr > 0 {
			// "Multicast" the block: one copy per receiver.
			for _, c := range conns {
				if err := blockio.WriteBlock(c, buf[:nr]); err != nil {
					return res, err
				}
			}
			total += uint64(nr)
			sliceRemaining -= nr
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			eof = true
		} else if rerr != nil {
			return res, rerr
		}
		if sliceRemaining <= 0 || eof {
			// Slice boundary: synchronize with every receiver. This
			// is the feedback round whose cost grows with N.
			for _, c := range conns {
				if err := blockio.WriteAck(c, total); err != nil {
					return res, err
				}
			}
			for i, r := range readers {
				f, err := blockio.Read(r, nil)
				if err != nil {
					return res, fmt.Errorf("ack from receiver %d: %w", i+1, err)
				}
				if f.Type != blockio.TypeAck || f.Offset != total {
					return res, fmt.Errorf("bad ack from receiver %d: type %d offset %d (want %d)", i+1, f.Type, f.Offset, total)
				}
			}
			res.Slices++
			sliceRemaining = cfg.SliceSize
		}
	}
	for _, c := range conns {
		if err := blockio.WriteEnd(c, total); err != nil {
			return res, err
		}
	}
	res.Total = total
	return res, nil
}

func runReceiver(ctx context.Context, cfg *Config, l transport.Listener, i int) error {
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	var sink io.Writer
	if cfg.SinkFor != nil {
		sink = cfg.SinkFor(i)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, cfg.BlockSize)
	var got uint64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := blockio.Read(br, buf)
		if err != nil {
			return err
		}
		switch f.Type {
		case blockio.TypeData:
			if sink != nil {
				if _, err := sink.Write(f.Payload); err != nil {
					return err
				}
			}
			got += uint64(len(f.Payload))
		case blockio.TypeAck:
			// Slice boundary: confirm receipt up to the offset.
			if f.Offset != got {
				return fmt.Errorf("lost data: have %d, sender at %d", got, f.Offset)
			}
			if err := blockio.WriteAck(conn, got); err != nil {
				return err
			}
		case blockio.TypeEnd:
			if f.Offset != got {
				return fmt.Errorf("truncated stream: have %d of %d", got, f.Offset)
			}
			return nil
		default:
			return fmt.Errorf("unexpected frame %d", f.Type)
		}
	}
}
