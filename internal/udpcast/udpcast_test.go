package udpcast

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"kascade/internal/transport"
)

type safeBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *safeBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func runBroadcast(t *testing.T, n, size, slice int) Result {
	t.Helper()
	fabric := transport.NewFabric(0)
	names := make([]string, n)
	addrs := make([]string, n)
	sinks := make([]*safeBuf, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		addrs[i] = names[i] + ":8100"
		sinks[i] = &safeBuf{}
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(int64(size + n))).Read(data)
	res, err := Broadcast(context.Background(), Config{
		Names:      names,
		Addrs:      addrs,
		SliceSize:  slice,
		BlockSize:  4 << 10,
		NetworkFor: func(i int) transport.Network { return fabric.Host(names[i]) },
		Input:      bytes.NewReader(data),
		SinkFor:    func(i int) io.Writer { return sinks[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != uint64(size) {
		t.Fatalf("total %d, want %d", res.Total, size)
	}
	for i := 1; i < n; i++ {
		if sha256.Sum256(sinks[i].Bytes()) != sha256.Sum256(data) {
			t.Errorf("receiver %d corrupted payload", i)
		}
	}
	return res
}

func TestSynchronizedBroadcast(t *testing.T) {
	res := runBroadcast(t, 6, 200<<10, 32<<10)
	// 200 KiB in 32 KiB slices: at least 6 synchronization rounds.
	if res.Slices < 6 {
		t.Fatalf("slices = %d, synchronization not exercised", res.Slices)
	}
}

func TestSingleSlice(t *testing.T) {
	res := runBroadcast(t, 4, 10<<10, 1<<20)
	if res.Slices != 1 {
		t.Fatalf("slices = %d, want 1", res.Slices)
	}
}

func TestManyReceivers(t *testing.T)    { runBroadcast(t, 20, 64<<10, 16<<10) }
func TestUnalignedSlices(t *testing.T)  { runBroadcast(t, 3, 50<<10+7, 12<<10) }
func TestEmptyPayloadCast(t *testing.T) { runBroadcast(t, 3, 0, 16<<10) }

func TestNoReceiversRejected(t *testing.T) {
	fabric := transport.NewFabric(0)
	_, err := Broadcast(context.Background(), Config{
		Names:      []string{"n1"},
		Addrs:      []string{"n1:8100"},
		NetworkFor: func(int) transport.Network { return fabric.Host("n1") },
		Input:      bytes.NewReader(nil),
	})
	if err == nil {
		t.Fatal("sender-only broadcast accepted")
	}
}
