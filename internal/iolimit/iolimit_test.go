package iolimit

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestRateLimitedWriterThrottles(t *testing.T) {
	w := NewRateLimited(io.Discard, 1<<20) // 1 MiB/s
	start := time.Now()
	if _, err := w.Write(make([]byte, 100<<10)); err != nil { // ~98 ms
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("no throttling: %v", elapsed)
	}
}

func TestRateLimitedWriterPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateLimited(io.Discard, 0)
}

func TestCountingWriter(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounting(&buf)
	c.Write([]byte("hello"))
	c.Write([]byte(" world"))
	if c.Count() != 11 {
		t.Fatalf("count %d", c.Count())
	}
	if buf.String() != "hello world" {
		t.Fatalf("passthrough broken: %q", buf.String())
	}
	d := NewCounting(nil)
	d.Write(make([]byte, 7))
	if d.Count() != 7 {
		t.Fatalf("discard count %d", d.Count())
	}
}

func TestHashWriterMatchesDirectSum(t *testing.T) {
	payload := []byte("the quick brown fox")
	hw := NewHash()
	hw.Write(payload[:5])
	hw.Write(payload[5:])
	if hw.Sum() != SumOf(payload) {
		t.Fatal("incremental hash differs from direct hash")
	}
	if hw.Count() != uint64(len(payload)) {
		t.Fatalf("count %d", hw.Count())
	}
}

func TestPatternReaderDeterministicAndSized(t *testing.T) {
	a, err := io.ReadAll(NewPattern(10_000, 42))
	if err != nil || len(a) != 10_000 {
		t.Fatalf("read: %d bytes, %v", len(a), err)
	}
	b, _ := io.ReadAll(NewPattern(10_000, 42))
	if !bytes.Equal(a, b) {
		t.Fatal("pattern not deterministic")
	}
	c, _ := io.ReadAll(NewPattern(10_000, 43))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must differ")
	}
	// Crude entropy check: all 256 byte values should appear.
	seen := map[byte]bool{}
	for _, v := range a {
		seen[v] = true
	}
	if len(seen) < 200 {
		t.Fatalf("pattern too repetitive: %d distinct bytes", len(seen))
	}
}

func TestPatternReaderEOF(t *testing.T) {
	r := NewPattern(3, 1)
	buf := make([]byte, 8)
	n, err := r.Read(buf)
	if n != 3 || err != nil {
		t.Fatalf("first read: %d %v", n, err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
