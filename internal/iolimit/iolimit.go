// Package iolimit provides the I/O plumbing the examples, CLI and tests
// hang off broadcast endpoints: throughput-limited writers (standing in
// for the paper's 83.5 MB/s disks, §IV-D), byte counters, and hashing
// sinks for end-to-end integrity checks.
package iolimit

import (
	"crypto/sha256"
	"hash"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RateLimitedWriter throttles writes to a fixed number of bytes per second
// using a pacing clock: it models a device with a hard sequential
// throughput (disk, tape, slow uplink).
type RateLimitedWriter struct {
	w       io.Writer
	perByte time.Duration
	mu      sync.Mutex
	drainAt time.Time
}

// NewRateLimited wraps w so sustained throughput does not exceed
// bytesPerSec. It panics on a non-positive rate (a zero rate would mean
// "never", which is a configuration error, not a runtime state).
func NewRateLimited(w io.Writer, bytesPerSec float64) *RateLimitedWriter {
	if bytesPerSec <= 0 {
		panic("iolimit: rate must be positive")
	}
	return &RateLimitedWriter{
		w:       w,
		perByte: time.Duration(float64(time.Second) / bytesPerSec),
	}
}

func (r *RateLimitedWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	now := time.Now()
	if r.drainAt.Before(now) {
		r.drainAt = now
	}
	r.drainAt = r.drainAt.Add(time.Duration(len(p)) * r.perByte)
	wait := r.drainAt.Sub(now)
	r.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
	return r.w.Write(p)
}

// CountingWriter counts bytes on their way to an underlying writer
// (io.Discard by default). The count is safe to read concurrently.
type CountingWriter struct {
	w io.Writer
	n atomic.Uint64
}

// NewCounting wraps w (nil means discard).
func NewCounting(w io.Writer) *CountingWriter {
	if w == nil {
		w = io.Discard
	}
	return &CountingWriter{w: w}
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

// Count returns the bytes written so far.
func (c *CountingWriter) Count() uint64 { return c.n.Load() }

// HashWriter hashes everything written through it (SHA-256), for
// end-to-end payload integrity checks.
type HashWriter struct {
	mu sync.Mutex
	h  hash.Hash
	n  uint64
}

// NewHash returns an empty hashing sink.
func NewHash() *HashWriter {
	return &HashWriter{h: sha256.New()}
}

func (hw *HashWriter) Write(p []byte) (int, error) {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	hw.n += uint64(len(p))
	return hw.h.Write(p)
}

// Sum returns the digest of everything written so far.
func (hw *HashWriter) Sum() [32]byte {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	var out [32]byte
	copy(out[:], hw.h.Sum(nil))
	return out
}

// Count returns the bytes hashed so far.
func (hw *HashWriter) Count() uint64 {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return hw.n
}

// SumOf is a convenience: the SHA-256 of a byte slice.
func SumOf(p []byte) [32]byte { return sha256.Sum256(p) }

// PatternReader generates a deterministic pseudo-random payload of the
// given size without allocating it: the standard way the examples and
// benchmarks synthesize the paper's multi-gigabyte files.
type PatternReader struct {
	remaining int64
	state     uint64
}

// NewPattern returns a reader producing size bytes derived from seed.
func NewPattern(size int64, seed uint64) *PatternReader {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &PatternReader{remaining: size, state: seed}
}

func (g *PatternReader) Read(p []byte) (int, error) {
	if g.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > g.remaining {
		n = int(g.remaining)
	}
	for i := 0; i < n; i++ {
		// xorshift64*: cheap, deterministic, well distributed.
		g.state ^= g.state >> 12
		g.state ^= g.state << 25
		g.state ^= g.state >> 27
		p[i] = byte((g.state * 0x2545F4914F6CDD1D) >> 56)
	}
	g.remaining -= int64(n)
	return n, nil
}
