package deploy

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestWindowedStartupScalesWithRounds(t *testing.T) {
	p := Params{Window: 50, ConnectTime: 0.4, SelfCopyTime: 0.5}
	if got := StartupTime(Windowed, 50, p); got != 0.9 {
		t.Fatalf("one round: %v", got)
	}
	if got := StartupTime(Windowed, 51, p); got != 1.3 {
		t.Fatalf("two rounds: %v", got)
	}
	if got := StartupTime(Windowed, 200, p); got != 0.5+4*0.4 {
		t.Fatalf("four rounds: %v", got)
	}
}

func TestAdaptiveTreeIsLogarithmic(t *testing.T) {
	p := Params{Arity: 2, ConnectTime: 0.3}
	small := StartupTime(AdaptiveTree, 8, p)
	big := StartupTime(AdaptiveTree, 512, p)
	if big >= StartupTime(Windowed, 512, Params{Window: 50, ConnectTime: 0.3}) {
		t.Fatalf("adaptive tree (%v) should beat windowed at scale", big)
	}
	if big <= small {
		t.Fatal("startup must grow with n")
	}
}

func TestStartupTimeDegenerate(t *testing.T) {
	p := Params{SelfCopyTime: 0.5}
	if got := StartupTime(Windowed, 0, p); got != 0.5 {
		t.Fatalf("zero nodes: %v", got)
	}
}

func TestStrategyString(t *testing.T) {
	if Windowed.String() != "windowed" || AdaptiveTree.String() != "adaptive-tree" {
		t.Fatal("strategy names")
	}
	if Strategy(7).String() == "" {
		t.Fatal("unknown strategy must format")
	}
}

func TestParallelWindowRunsAllAndBoundsConcurrency(t *testing.T) {
	const n, window = 40, 4
	var running, peak, total atomic.Int64
	errs := ParallelWindow(n, window, func(i int) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		total.Add(1)
		running.Add(-1)
		if i == 7 {
			return errors.New("boom")
		}
		return nil
	})
	if total.Load() != n {
		t.Fatalf("ran %d of %d", total.Load(), n)
	}
	if peak.Load() > window {
		t.Fatalf("concurrency %d exceeded window %d", peak.Load(), window)
	}
	if errs[7] == nil {
		t.Fatal("error not propagated")
	}
	for i, err := range errs {
		if i != 7 && err != nil {
			t.Fatalf("unexpected error at %d: %v", i, err)
		}
	}
}
