// Package deploy models the node startup phase the paper attributes to
// TakTuk/ClusterShell (§III-B): before any data flows, Kascade copies
// itself and the node list to every destination and starts itself there.
// That cost is what separates the methods on small files (Fig 14), where
// transmission finishes in under a second and "methods that have efficient
// start-up are clearly better".
//
// Two connection strategies are modelled: the windowed mode (the root opens
// at most Window concurrent connections; Kascade's default, because the
// adaptive tree cannot survive mid-tree failures) and the adaptive tree
// (already-reached nodes connect onward; faster, not fault-tolerant). The
// package also provides the windowed concurrency primitive itself, which
// the CLI uses to contact its agents.
package deploy

import (
	"fmt"
	"math"
	"sync"
)

// Strategy selects a connection fan-out discipline.
type Strategy int

const (
	// Windowed: the root connects to every node itself, at most Window
	// in flight (TakTuk's windowed mode, Kascade's default §III-B).
	Windowed Strategy = iota
	// AdaptiveTree: nodes already reached connect to further nodes
	// (TakTuk's adaptive tree; faster, but a mid-tree failure orphans a
	// subtree, which is why Kascade avoids it).
	AdaptiveTree
)

func (s Strategy) String() string {
	switch s {
	case Windowed:
		return "windowed"
	case AdaptiveTree:
		return "adaptive-tree"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Params tunes the startup cost model.
type Params struct {
	// Window bounds concurrent connections in Windowed mode (default 50).
	Window int
	// Arity is the adaptive tree fan-out (default 2).
	Arity int
	// ConnectTime is the cost of reaching and starting one node
	// (ssh handshake + remote spawn; default 0.35 s).
	ConnectTime float64
	// SelfCopyTime is the one-off cost of shipping the tool and node
	// list before starting (Kascade copies itself; default 0.5 s).
	SelfCopyTime float64
}

func (p Params) withDefaults() Params {
	if p.Window <= 0 {
		p.Window = 50
	}
	if p.Arity <= 0 {
		p.Arity = 2
	}
	if p.ConnectTime <= 0 {
		p.ConnectTime = 0.35
	}
	return p
}

// StartupTime estimates the seconds needed to reach and start n nodes.
func StartupTime(s Strategy, n int, p Params) float64 {
	p = p.withDefaults()
	if n <= 0 {
		return p.SelfCopyTime
	}
	switch s {
	case Windowed:
		rounds := math.Ceil(float64(n) / float64(p.Window))
		return p.SelfCopyTime + rounds*p.ConnectTime
	case AdaptiveTree:
		// Reached nodes recruit arity more each round: coverage grows
		// by a factor of (arity+1) per round.
		rounds := math.Ceil(math.Log(float64(n+1)) / math.Log(float64(p.Arity+1)))
		return p.SelfCopyTime + rounds*p.ConnectTime
	default:
		return p.SelfCopyTime
	}
}

// ParallelWindow runs fn(0..n-1) with at most window concurrent calls —
// the execution primitive behind Windowed startup. It returns the per-index
// errors.
func ParallelWindow(n, window int, fn func(i int) error) []error {
	if window <= 0 {
		window = 1
	}
	errs := make([]error, n)
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}
