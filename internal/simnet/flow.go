package simnet

import (
	"fmt"
	"math"
)

// epsilon below which a flow's remaining bytes count as delivered.
const epsilon = 1e-6

// Link is a directional capacity: one side of a full-duplex cable, a
// switch uplink, or a per-node stage (memory-copy ceiling, disk).
type Link struct {
	Name     string
	Capacity float64 // bytes per second

	flows map[*Flow]struct{}

	// computeRates scratch state, validated by generation counter.
	gen      uint64
	residual float64
	count    int
}

// Flow is one in-flight transfer over a fixed path of links.
type Flow struct {
	Path []*Link
	Meta any // caller tag, untouched by the engine
	// MaxRate caps the flow's allocation in bytes/s regardless of link
	// shares (0 = unlimited). It models end-to-end limits that are not a
	// shared resource, chiefly the TCP window over high-latency WAN paths
	// (rate <= window/RTT), which drives Fig 13.
	MaxRate float64
	onDone  func(*Flow)

	remaining float64
	rate      float64
	settledAt float64
	active    bool
	ended     bool
	frozenGen uint64 // computeRates scratch
}

// Remaining returns the bytes not yet delivered.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current max-min allocation in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Network owns links and flows and keeps the allocation max-min fair.
type Network struct {
	Sim *Sim

	links  []*Link
	flows  map[*Flow]struct{}
	nextup *Timer // pending earliest-completion event

	gen     uint64  // computeRates generation
	touched []*Link // computeRates scratch: links carrying flows
}

// NewNetwork returns an empty network bound to sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{Sim: sim, flows: make(map[*Flow]struct{})}
}

// NewLink creates a directional link with the given capacity in bytes/s.
func (n *Network) NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: link %q must have positive capacity", name))
	}
	l := &Link{Name: name, Capacity: capacity, flows: make(map[*Flow]struct{})}
	n.links = append(n.links, l)
	return l
}

// Start launches a transfer of the given size over path, first waiting
// latency seconds (propagation + connection establishment). onDone fires
// when the last byte is delivered. A zero-byte flow completes after the
// latency alone.
func (n *Network) Start(bytes, latency float64, path []*Link, onDone func(*Flow)) *Flow {
	if len(path) == 0 {
		panic("simnet: flow needs at least one link")
	}
	f := &Flow{Path: path, onDone: onDone, remaining: bytes}
	activate := func() {
		if f.ended {
			return
		}
		if f.remaining <= epsilon {
			f.ended = true
			if f.onDone != nil {
				f.onDone(f)
			}
			return
		}
		f.active = true
		f.settledAt = n.Sim.Now()
		n.flows[f] = struct{}{}
		for _, l := range f.Path {
			l.flows[f] = struct{}{}
		}
		n.rebalance()
	}
	if latency > 0 {
		n.Sim.After(latency, activate)
	} else {
		activate()
	}
	return f
}

// Cancel aborts a flow (node death, user interruption).
func (n *Network) Cancel(f *Flow) {
	if f == nil || f.ended {
		return
	}
	f.ended = true
	if f.active {
		n.detach(f)
		n.rebalance()
	}
}

func (n *Network) detach(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.Path {
		delete(l.flows, f)
	}
	f.active = false
}

// settle charges elapsed time against every active flow at its current rate.
func (n *Network) settle() {
	now := n.Sim.Now()
	for f := range n.flows {
		if dt := now - f.settledAt; dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.settledAt = now
	}
}

// rebalance recomputes the max-min fair allocation and re-arms the
// earliest-completion event.
func (n *Network) rebalance() {
	n.settle()
	n.computeRates()

	if n.nextup != nil {
		n.nextup.Cancel()
		n.nextup = nil
	}
	soonest := math.Inf(1)
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	n.nextup = n.Sim.After(soonest, n.completeDue)
}

// completeDue finishes every flow that has drained and rebalances.
func (n *Network) completeDue() {
	n.nextup = nil
	n.settle()
	var done []*Flow
	for f := range n.flows {
		if f.remaining <= epsilon {
			done = append(done, f)
		}
	}
	for _, f := range done {
		f.ended = true
		n.detach(f)
	}
	n.rebalance()
	for _, f := range done {
		if f.onDone != nil {
			f.onDone(f)
		}
	}
}

// computeRates performs progressive filling (water-filling): repeatedly
// find the most contended link, give its flows their fair share, freeze
// them, and continue with the residual capacities. Links tied with the
// bottleneck (within a relative epsilon) freeze in the same round, which
// collapses the homogeneous-pipeline case to a single round. Scratch state
// lives on the links themselves (validated by a generation counter) so the
// hot path allocates nothing.
func (n *Network) computeRates() {
	if len(n.flows) == 0 {
		return
	}
	n.gen++
	n.touched = n.touched[:0]
	unfrozen := 0
	for f := range n.flows {
		f.frozenGen = 0
		unfrozen++
		for _, l := range f.Path {
			if l.gen != n.gen {
				l.gen = n.gen
				l.residual = l.Capacity
				l.count = 0
				n.touched = append(n.touched, l)
			}
			l.count++
		}
	}
	freeze := func(f *Flow, rate float64) {
		f.rate = rate
		f.frozenGen = n.gen
		unfrozen--
		for _, pl := range f.Path {
			pl.residual -= rate
			if pl.residual < 0 {
				pl.residual = 0
			}
			pl.count--
		}
	}
	for unfrozen > 0 {
		best := math.Inf(1)
		for _, l := range n.touched {
			if l.count <= 0 {
				continue
			}
			if share := l.residual / float64(l.count); share < best {
				best = share
			}
		}
		if math.IsInf(best, 1) {
			// No constraining link left (should not happen: every
			// flow traverses at least one link).
			for f := range n.flows {
				if f.frozenGen != n.gen {
					f.rate = math.Inf(1)
					f.frozenGen = n.gen
				}
			}
			return
		}
		if best < 0 {
			best = 0
		}
		threshold := best * (1 + 1e-9)
		// Rate-capped flows that cannot even use the fair share freeze
		// first at their own cap, releasing capacity for the rest.
		capped := false
		for f := range n.flows {
			if f.frozenGen != n.gen && f.MaxRate > 0 && f.MaxRate <= threshold {
				freeze(f, f.MaxRate)
				capped = true
			}
		}
		if capped {
			continue
		}
		frozeAny := false
		for _, l := range n.touched {
			if l.count <= 0 || l.residual/float64(l.count) > threshold {
				continue
			}
			for f := range l.flows {
				if f.frozenGen == n.gen {
					continue
				}
				freeze(f, best)
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical corner: freeze everything at best.
			for f := range n.flows {
				if f.frozenGen != n.gen {
					freeze(f, best)
				}
			}
		}
	}
}

// TotalCapacity reports the sum of link capacities (diagnostics).
func (n *Network) TotalCapacity() float64 {
	var sum float64
	for _, l := range n.links {
		sum += l.Capacity
	}
	return sum
}

// ActiveFlows reports how many flows are currently consuming bandwidth.
func (n *Network) ActiveFlows() int { return len(n.flows) }
