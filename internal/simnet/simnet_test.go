package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kascade/internal/topology"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 11) }) // FIFO at equal times
	s.At(3, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(1, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var seen []float64
	s.At(1, func() {
		s.After(1.5, func() { seen = append(seen, s.Now()) })
	})
	s.Run()
	if len(seen) != 1 || math.Abs(seen[0]-2.5) > 1e-12 {
		t.Fatalf("nested scheduling: %v", seen)
	}
}

func TestSingleFlowDuration(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wire", 100) // 100 B/s
	var doneAt float64
	n.Start(1000, 0.5, []*Link{l}, func(*Flow) { doneAt = s.Now() })
	s.Run()
	// 0.5s latency + 1000B / 100B/s = 10.5s
	if math.Abs(doneAt-10.5) > 1e-6 {
		t.Fatalf("done at %v, want 10.5", doneAt)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wire", 100)
	var d1, d2 float64
	n.Start(500, 0, []*Link{l}, func(*Flow) { d1 = s.Now() })
	n.Start(500, 0, []*Link{l}, func(*Flow) { d2 = s.Now() })
	s.Run()
	// Fair share 50 B/s each: both finish at t=10.
	if math.Abs(d1-10) > 1e-6 || math.Abs(d2-10) > 1e-6 {
		t.Fatalf("finished at %v and %v, want 10", d1, d2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wire", 100)
	var dLong float64
	n.Start(1000, 0, []*Link{l}, func(*Flow) { dLong = s.Now() })
	n.Start(100, 0, []*Link{l}, nil)
	s.Run()
	// Short flow: 100B at 50B/s = 2s. Long: 1000 = 2s*50 + rest at 100
	// -> 2 + 900/100 = 11s.
	if math.Abs(dLong-11) > 1e-6 {
		t.Fatalf("long flow finished at %v, want 11", dLong)
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Flow A crosses both links, flow B only the second. Link1 = 100,
	// Link2 = 60: fair share on link2 is 30 each; A is then bottlenecked
	// at 30 by link2, B gets 30. Classic max-min: both 30.
	s := New()
	n := NewNetwork(s)
	l1 := n.NewLink("l1", 100)
	l2 := n.NewLink("l2", 60)
	fa := n.Start(300, 0, []*Link{l1, l2}, nil)
	fb := n.Start(300, 0, []*Link{l2}, nil)
	if math.Abs(fa.Rate()-30) > 1e-6 || math.Abs(fb.Rate()-30) > 1e-6 {
		t.Fatalf("rates %v %v, want 30 30", fa.Rate(), fb.Rate())
	}
	s.Run()
}

func TestMaxMinBottleneckFreesElsewhere(t *testing.T) {
	// l1=100 carries A and B; l2=10 also carries B. B freezes at 5? No:
	// progressive filling: l2 share = 10 (1 flow... careful: B alone on
	// l2 -> share 10; l1 share = 50. Bottleneck l2: B=10. Then A gets
	// remaining l1: 90.
	s := New()
	n := NewNetwork(s)
	l1 := n.NewLink("l1", 100)
	l2 := n.NewLink("l2", 10)
	fa := n.Start(900, 0, []*Link{l1}, nil)
	fb := n.Start(100, 0, []*Link{l1, l2}, nil)
	if math.Abs(fb.Rate()-10) > 1e-6 {
		t.Fatalf("capped flow rate %v, want 10", fb.Rate())
	}
	if math.Abs(fa.Rate()-90) > 1e-6 {
		t.Fatalf("free flow rate %v, want 90", fa.Rate())
	}
	s.Run()
}

func TestFlowMaxRateCap(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wan", 1000)
	f := &Flow{}
	_ = f
	fa := n.Start(100, 0, []*Link{l}, nil)
	fa.MaxRate = 0 // uncapped
	var done float64
	fb := n.Start(100, 0, []*Link{l}, func(*Flow) { done = s.Now() })
	fb.MaxRate = 10
	n.rebalance()
	if math.Abs(fb.Rate()-10) > 1e-6 {
		t.Fatalf("capped rate %v, want 10", fb.Rate())
	}
	if fa.Rate() < 500 {
		t.Fatalf("uncapped flow should take the slack, got %v", fa.Rate())
	}
	s.Run()
	if math.Abs(done-10) > 1e-4 {
		t.Fatalf("capped flow finished at %v, want 10", done)
	}
}

func TestCancelFlowReleasesCapacity(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wire", 100)
	var dLong float64
	n.Start(1000, 0, []*Link{l}, func(*Flow) { dLong = s.Now() })
	victim := n.Start(1e9, 0, []*Link{l}, func(*Flow) { t.Error("cancelled flow completed") })
	s.At(2, func() { n.Cancel(victim) })
	s.Run()
	// 2s at 50 B/s = 100B, then 900B at 100 B/s = 9s -> 11s.
	if math.Abs(dLong-11) > 1e-6 {
		t.Fatalf("long flow finished at %v, want 11", dLong)
	}
}

func TestZeroByteFlowCompletesAfterLatency(t *testing.T) {
	s := New()
	n := NewNetwork(s)
	l := n.NewLink("wire", 100)
	var done float64
	n.Start(0, 0.25, []*Link{l}, func(*Flow) { done = s.Now() })
	s.Run()
	if math.Abs(done-0.25) > 1e-9 {
		t.Fatalf("zero flow at %v", done)
	}
}

// Property: max-min allocation never oversubscribes a link, and is
// Pareto-maximal in the single-bottleneck sense (equal shares on the
// bottleneck).
func TestMaxMinPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		n := NewNetwork(s)
		nLinks := rnd.Intn(6) + 1
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = n.NewLink("l", float64(rnd.Intn(900)+100))
		}
		nFlows := rnd.Intn(8) + 1
		flows := make([]*Flow, nFlows)
		for i := range flows {
			// Random nonempty subset as path.
			var path []*Link
			for _, l := range links {
				if rnd.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = append(path, links[rnd.Intn(nLinks)])
			}
			flows[i] = n.Start(1e12, 0, path, nil)
		}
		// Check no link oversubscribed.
		usage := map[*Link]float64{}
		for _, f := range flows {
			for _, l := range f.Path {
				usage[l] += f.Rate()
			}
		}
		for l, u := range usage {
			if u > l.Capacity*(1+1e-6) {
				return false
			}
		}
		// Every flow should have a saturated link (Pareto-optimality:
		// no flow can be increased without decreasing another).
		for _, f := range flows {
			saturated := false
			for _, l := range f.Path {
				if usage[l] >= l.Capacity*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		// Drain the sim so huge flows do not linger (cancel them).
		for _, f := range flows {
			n.Cancel(f)
		}
		s.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildClusterPaths(t *testing.T) {
	topo := topology.FatTree("n", 2, 3, topology.Gigabit, topology.TenGigabit)
	s := New()
	net := NewNetwork(s)
	c := BuildCluster(net, topo, NodeRates{RelayRate: 200e6, DiskRate: 80e6})
	if c.Nodes() != 6 {
		t.Fatalf("nodes %d", c.Nodes())
	}
	// Same switch: relay + up + down = 3 links.
	links, lat, _ := c.Path(0, 1)
	if len(links) != 3 {
		t.Fatalf("intra-switch path: %d links", len(links))
	}
	if lat <= 0 {
		t.Fatal("latency must be positive")
	}
	// Cross switch: adds both tor links.
	links, _, _ = c.Path(0, 3)
	if len(links) != 5 {
		t.Fatalf("cross-switch path: %d links", len(links))
	}
	if c.Disk(2) == nil {
		t.Fatal("disk link missing")
	}
	// Pipeline through the ordered chain saturates no uplink: simulate
	// hops 0->1->2->3->4->5 concurrently and check cross-switch hops get
	// the full edge rate (only one crossing in each direction).
	order := topo.TopologyOrder()
	var flows []*Flow
	for i := 1; i < len(order); i++ {
		p, l, _ := c.Path(order[i-1], order[i])
		flows = append(flows, net.Start(1e9, l, p, nil))
	}
	for i, f := range flows {
		if f.Rate() > 0 && f.Rate() < 100e6 {
			t.Fatalf("hop %d rate %v: ordered pipeline should be edge-limited (relay 200e6, edge 125e6)", i, f.Rate())
		}
	}
	for _, f := range flows {
		net.Cancel(f)
	}
	s.Run()
}

func TestWANPathTCPWindowCap(t *testing.T) {
	topo := topology.MultiSite([]topology.SiteSpec{{Name: "a", Nodes: 1}, {Name: "b", Nodes: 1}},
		topology.Gigabit, topology.TenGigabit, 0.008)
	s := New()
	net := NewNetwork(s)
	c := BuildCluster(net, topo, NodeRates{TCPWindow: 1 << 20})
	_, lat, maxRate := c.Path(0, 1)
	if lat < 0.008 {
		t.Fatalf("WAN latency %v", lat)
	}
	// window/RTT with RTT ~16ms and 1MiB window: ~65 MB/s.
	if maxRate < 40e6 || maxRate > 90e6 {
		t.Fatalf("TCP window cap %v out of expected band", maxRate)
	}
}

// TestWANBackbonePath is the simnet half of the MultiSite uplink/WAN
// regression: the site switch->core uplinks carry the (per-site) local
// capacity, and a cross-site path additionally crosses the WAN backbone
// links at InterSiteCapacity — so a slow backbone, not a mislabelled
// uplink, is what constrains inter-site flows.
func TestWANBackbonePath(t *testing.T) {
	topo := topology.MultiSite([]topology.SiteSpec{{Name: "a", Nodes: 2}, {Name: "b", Nodes: 1}},
		topology.Gigabit, topology.HundredMBps, 0.008)
	s := New()
	net := NewNetwork(s)
	c := BuildCluster(net, topo, NodeRates{})
	if c.WanUp == nil || c.WanDown == nil {
		t.Fatal("multi-site cluster built no WAN backbone links")
	}
	// Intra-site hop: edge links only, no uplink or WAN stage.
	links, _, _ := c.Path(0, 1)
	if len(links) != 2 {
		t.Fatalf("intra-site path has %d links, want 2 (edges only): %v", len(links), links)
	}
	// Cross-site hop: the flow rate must collapse to the 100 MB/s
	// backbone even though every uplink runs at the gigabit edge rate.
	links, lat, _ := c.Path(1, 2)
	if lat < 0.008 {
		t.Fatalf("cross-site latency %v, want >= 8 ms", lat)
	}
	// Zero start latency so the flow activates (and its rate settles)
	// immediately rather than after simulated propagation.
	flow := net.Start(1e9, 0, links, nil)
	if r := flow.Rate(); r > topology.HundredMBps*1.01 || r < topology.HundredMBps*0.99 {
		t.Fatalf("cross-site rate %v, want WAN backbone %v", r, float64(topology.HundredMBps))
	}
	net.Cancel(flow)
	s.Run()
}
