// Package simnet is a flow-level discrete-event network simulator: the
// substrate standing in for the paper's Grid'5000 testbed (see DESIGN.md §2).
//
// Byte streams are modelled as fluid flows over directional links;
// concurrent flows share link capacity max–min fairly, which reproduces the
// contention effects the paper's evaluation hinges on: saturated inter-
// switch uplinks under topology-unaware orders (Fig 9, Fig 10), full-duplex
// pipelines that cross each link once per direction (Fig 3/7), per-node
// memory-copy ceilings on 10 GbE (Fig 8) and disk-bound pipelines (Fig 11).
//
// The engine is deliberately simple: a virtual clock, an event heap, and a
// progressive-filling bandwidth allocator re-run whenever the flow set
// changes. internal/simbcast builds the per-algorithm broadcast models on
// top of it.
package simnet

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	at    float64
	seq   int64
	fn    func()
	index int // heap index; -1 when popped/cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	sim *Sim
	ev  *event
}

// Cancel prevents the timer from firing (no-op if it already fired).
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	if t.ev.index >= 0 {
		heap.Remove(&t.sim.pq, t.ev.index)
	}
	t.ev.fn = nil
}

// Sim is the virtual-time event engine.
type Sim struct {
	now float64
	seq int64
	pq  eventHeap
}

// New returns an empty simulation at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (>= now).
func (s *Sim) At(t float64, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.pq, ev)
	return &Timer{sim: s, ev: ev}
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Run executes events until the queue is empty. It panics if the event
// count exceeds a safety bound (runaway model bug) rather than spinning
// forever.
func (s *Sim) Run() {
	const maxEvents = 200_000_000
	for n := 0; len(s.pq) > 0; n++ {
		if n > maxEvents {
			panic(fmt.Sprintf("simnet: more than %d events; model livelock?", maxEvents))
		}
		ev := heap.Pop(&s.pq).(*event)
		s.now = ev.at
		if ev.fn != nil {
			ev.fn()
		}
	}
}
