package simnet

import (
	"fmt"

	"kascade/internal/topology"
)

// NodeRates tunes the per-node stages of a simulated cluster.
type NodeRates struct {
	// RelayRate is the per-node forwarding ceiling in bytes/s (memory
	// copies, protocol CPU). 0 means unlimited. This is what keeps any
	// single-threaded tool below 10 GbE line rate in Fig 8, and what
	// models TakTuk's perl command-channel encoding cost.
	RelayRate float64
	// DiskRate is the local storage write throughput in bytes/s
	// (0 = payload discarded, the paper's /dev/null runs).
	DiskRate float64
	// TCPWindow is the per-connection window in bytes; over a path with
	// RTT, a single connection cannot exceed TCPWindow/RTT (Fig 13).
	// 0 disables the cap.
	TCPWindow float64
}

// Cluster is a topology.Cluster realised as simulator links.
type Cluster struct {
	Network *Network
	Topo    *topology.Cluster
	Rates   NodeRates

	Up, Down []*Link // per-node edge links (egress, ingress)
	Relay    []*Link // per-node forwarding ceiling (nil entries = unlimited)
	DiskL    []*Link // per-node disk stage (nil entries = discard)
	TorUp    []*Link // per-switch uplink toward the core
	TorDown  []*Link // per-switch downlink from the core
	WanUp    []*Link // per-site egress onto the WAN backbone
	WanDown  []*Link // per-site ingress from the WAN backbone
}

// BuildCluster realises topo on net with the given per-node rates.
func BuildCluster(net *Network, topo *topology.Cluster, rates NodeRates) *Cluster {
	c := &Cluster{Network: net, Topo: topo, Rates: rates}
	n := len(topo.Nodes)
	c.Up = make([]*Link, n)
	c.Down = make([]*Link, n)
	c.Relay = make([]*Link, n)
	c.DiskL = make([]*Link, n)
	for i, node := range topo.Nodes {
		c.Up[i] = net.NewLink(fmt.Sprintf("%s/up", node.Name), topo.EdgeCapacity)
		c.Down[i] = net.NewLink(fmt.Sprintf("%s/down", node.Name), topo.EdgeCapacity)
		if rates.RelayRate > 0 {
			c.Relay[i] = net.NewLink(fmt.Sprintf("%s/relay", node.Name), rates.RelayRate)
		}
		if rates.DiskRate > 0 {
			c.DiskL[i] = net.NewLink(fmt.Sprintf("%s/disk", node.Name), rates.DiskRate)
		}
	}
	if topo.Switches > 1 {
		c.TorUp = make([]*Link, topo.Switches)
		c.TorDown = make([]*Link, topo.Switches)
		for s := 0; s < topo.Switches; s++ {
			up := topo.SwitchUplink(s)
			c.TorUp[s] = net.NewLink(fmt.Sprintf("tor%d/up", s), up)
			c.TorDown[s] = net.NewLink(fmt.Sprintf("tor%d/down", s), up)
		}
	}
	// The WAN backbone between site cores is its own stage: a site's
	// switch->core uplink (above) is provisioned like the local network,
	// while cross-site traffic additionally squeezes through the routed
	// backbone at InterSiteCapacity.
	if topo.Sites > 1 && topo.InterSiteCapacity > 0 {
		c.WanUp = make([]*Link, topo.Sites)
		c.WanDown = make([]*Link, topo.Sites)
		for s := 0; s < topo.Sites; s++ {
			c.WanUp[s] = net.NewLink(fmt.Sprintf("wan%d/up", s), topo.InterSiteCapacity)
			c.WanDown[s] = net.NewLink(fmt.Sprintf("wan%d/down", s), topo.InterSiteCapacity)
		}
	}
	return c
}

// Path returns the link sequence, one-way latency, and per-connection rate
// cap for a transfer from node i to node j. Within a switch the path is
// egress edge + ingress edge; across switches it adds both uplinks; across
// sites it also crosses the WAN backbone links, adds WAN latency, and the
// TCP-window cap bites.
//
// The per-node relay ceiling sits on the receiver side: a relaying process
// pays its CPU/memory cost once per byte it ingests, independently of how
// many children it later forwards to. This is what keeps TakTuk's chain
// and arity-2 tree at the same plateau in Fig 7, and what caps Kascade and
// MPI below line rate on 10 GbE in Fig 8.
func (c *Cluster) Path(i, j int) (links []*Link, latency, maxRate float64) {
	if i == j {
		panic(fmt.Sprintf("simnet: self-path for node %d", i))
	}
	links = append(links, c.Up[i])
	latency = 2 * c.Topo.EdgeLatencySec
	ni, nj := c.Topo.Nodes[i], c.Topo.Nodes[j]
	if ni.Switch != nj.Switch && c.TorUp != nil {
		links = append(links, c.TorUp[ni.Switch], c.TorDown[nj.Switch])
		latency += c.Topo.EdgeLatencySec
	}
	if ni.Site != nj.Site {
		if c.WanUp != nil {
			links = append(links, c.WanUp[ni.Site], c.WanDown[nj.Site])
		}
		latency += c.Topo.SiteLatency(ni.Site) + c.Topo.SiteLatency(nj.Site)
	}
	links = append(links, c.Down[j])
	if c.Relay[j] != nil {
		links = append(links, c.Relay[j])
	}
	if c.Rates.TCPWindow > 0 {
		rtt := 2 * latency
		if rtt > 0 {
			maxRate = c.Rates.TCPWindow / rtt
		}
	}
	return links, latency, maxRate
}

// Disk returns node i's disk stage link (nil when payloads are discarded).
func (c *Cluster) Disk(i int) *Link { return c.DiskL[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.Topo.Nodes) }

// Net returns the underlying flow network.
func (c *Cluster) Net() *Network { return c.Network }
