package simnet

import (
	"fmt"
	"testing"

	"kascade/internal/topology"
)

// BenchmarkRebalance measures the max-min allocator on a loaded pipeline:
// the hot path of every figure regeneration.
func BenchmarkRebalance(b *testing.B) {
	for _, hops := range []int{20, 100, 200} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			topo := topology.FatTree("n", (hops+34)/35, 35, topology.Gigabit, topology.TenGigabit)
			s := New()
			n := NewNetwork(s)
			c := BuildCluster(n, topo, NodeRates{})
			order := topo.TopologyOrder()
			var flows []*Flow
			for i := 1; i <= hops && i < len(order); i++ {
				p, _, _ := c.Path(order[i-1], order[i])
				// Zero latency: flows activate synchronously so the
				// benchmark measures a loaded allocator.
				flows = append(flows, n.Start(1e12, 0, p, nil))
			}
			if n.ActiveFlows() != len(flows) {
				b.Fatalf("flows not active: %d of %d", n.ActiveFlows(), len(flows))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.rebalance()
			}
			b.StopTimer()
			for _, f := range flows {
				n.Cancel(f)
			}
			s.Run()
		})
	}
}

// BenchmarkFullBroadcastSim measures a complete 200-node figure-7-style
// broadcast end to end in the simulator.
func BenchmarkFullBroadcastSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := topology.FatTree("n", 6, 35, topology.Gigabit, topology.TenGigabit)
		s := New()
		n := NewNetwork(s)
		c := BuildCluster(n, topo, NodeRates{})
		order := topo.TopologyOrder()
		// Chunked chain: 64 chunks of 8 MB through 209 hops.
		const chunks = 64
		received := make([]int, len(order))
		inFlight := make([]int, len(order))
		received[0] = chunks
		var pump func()
		pump = func() {
			for k := 0; k+1 < len(order); k++ {
				succ := k + 1
				for inFlight[succ] < 2 {
					next := received[succ] + inFlight[succ]
					if next >= chunks || next >= received[k]+inFlight[k] {
						break
					}
					p, lat, _ := c.Path(order[k], order[succ])
					inFlight[succ]++
					n.Start(8<<20, lat, p, func(*Flow) {
						inFlight[succ]--
						received[succ]++
						pump()
					})
				}
			}
		}
		pump()
		s.Run()
		if received[len(order)-1] != chunks {
			b.Fatal("broadcast incomplete")
		}
	}
}
