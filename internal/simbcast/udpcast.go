package simbcast

import (
	"kascade/internal/simnet"
)

// UDPCastParams tunes the synchronized-multicast model. The sender
// multicasts one slice (one copy crosses each link of the distribution
// tree, so the transmission itself scales perfectly), then collects an
// acknowledgement from every receiver before the next slice. That
// synchronization is "costly" in the paper's words: its duration grows with
// the receiver count — roughly linearly from per-receiver processing, plus
// a superlinear term from retransmission rounds as the probability that
// some receiver lost a packet grows — which is what degrades UDPCast past
// ~100 clients in Fig 7.
type UDPCastParams struct {
	// SliceSize is the synchronization granularity (default 16 MiB).
	SliceSize int64
	// AckBase is the fixed per-slice synchronization cost in seconds.
	AckBase float64
	// AckPerNode is the per-receiver per-slice cost (serialized ACK
	// processing at the sender).
	AckPerNode float64
	// AckPerNode2 is the superlinear component (retransmission rounds).
	AckPerNode2 float64
	// StartupTime is the deployment cost added before data flows.
	StartupTime float64
}

func (p UDPCastParams) withDefaults() UDPCastParams {
	if p.SliceSize <= 0 {
		p.SliceSize = 16 << 20
	}
	if p.AckBase <= 0 {
		p.AckBase = 0.002
	}
	if p.AckPerNode <= 0 {
		p.AckPerNode = 0.0001
	}
	if p.AckPerNode2 <= 0 {
		p.AckPerNode2 = 0.0000016
	}
	return p
}

// UDPCast simulates one synchronized multicast broadcast. The multicast
// slice is modelled as one flow through the sender's egress path and one
// representative receiver ingress (all receivers take the same copy
// concurrently on an L2 network); per-receiver disks drain in parallel and
// the slowest gate completion.
func UDPCast(w World, order []int, bytes int64, p UDPCastParams) Result {
	validateOrder(w, order)
	p = p.withDefaults()
	n := len(order)
	res := Result{Completed: make([]bool, n)}
	if n < 2 || bytes <= 0 {
		for i := range res.Completed {
			res.Completed[i] = true
		}
		res.Duration = p.StartupTime
		return res
	}
	receivers := float64(n - 1)
	syncCost := p.AckBase + receivers*p.AckPerNode + receivers*receivers*p.AckPerNode2

	sim := w.Net().Sim
	slices := int((bytes + p.SliceSize - 1) / p.SliceSize)
	lastSlice := bytes - int64(slices-1)*p.SliceSize

	// Disk model: one representative receiver's disk (all identical and
	// drain in parallel); slices queue behind it.
	disk := w.Disk(order[1])
	diskBacklog := 0
	diskBusy := false
	var done float64
	sent := 0
	finishedNet := false

	var startDisk func()
	checkAllDone := func() {
		if finishedNet && !diskBusy && diskBacklog == 0 && done == 0 {
			done = sim.Now()
		}
	}
	startDisk = func() {
		if disk == nil || diskBusy || diskBacklog == 0 {
			checkAllDone()
			return
		}
		diskBusy = true
		size := float64(p.SliceSize)
		if diskBacklog == 1 && finishedNet {
			size = float64(lastSlice)
		}
		w.Net().Start(size, 0, []*simnet.Link{disk}, func(*simnet.Flow) {
			diskBusy = false
			diskBacklog--
			startDisk()
		})
	}

	var sendSlice func()
	sendSlice = func() {
		if sent >= slices {
			finishedNet = true
			checkAllDone()
			return
		}
		size := float64(p.SliceSize)
		if sent == slices-1 {
			size = float64(lastSlice)
		}
		links, lat, maxRate := w.Path(order[0], order[1])
		sent++
		fl := w.Net().Start(size, lat, links, func(*simnet.Flow) {
			if disk != nil {
				diskBacklog++
				startDisk()
			}
			// Synchronization round, then the next slice.
			sim.After(syncCost, sendSlice)
		})
		fl.MaxRate = maxRate
	}
	sim.At(p.StartupTime, sendSlice)
	sim.Run()

	if done == 0 {
		done = sim.Now()
	}
	res.Duration = done
	for i := range res.Completed {
		res.Completed[i] = true
	}
	return res
}
