package simbcast

import (
	"sort"

	"kascade/internal/simnet"
)

// KascadeParams tunes the Kascade pipeline model.
type KascadeParams struct {
	// ChunkSize is the simulation granularity in bytes (default 8 MiB;
	// the real protocol chunk is 1 MiB but fluid chunks this size keep
	// event counts manageable without changing steady-state results).
	ChunkSize int64
	// Depth is the number of chunks in flight per hop (TCP streaming
	// depth; default 2).
	Depth int
	// WindowChunks is the per-node replay window in chunks (default 8).
	WindowChunks int
	// DetectTimeout is the §III-D1 stalled-write timer (default 1 s —
	// "every time a timeout is reached, one second is lost", §IV-G).
	DetectTimeout float64
	// DialFailCost is the cost of skipping one additional already-dead
	// successor (a refused dial; default 5 ms).
	DialFailCost float64
	// StartupTime is the deployment cost added before data flows
	// (TakTuk windowed startup; §III-B, Fig 14).
	StartupTime float64
}

func (p KascadeParams) withDefaults() KascadeParams {
	if p.ChunkSize <= 0 {
		p.ChunkSize = 8 << 20
	}
	if p.Depth <= 0 {
		p.Depth = 2
	}
	if p.WindowChunks <= 0 {
		p.WindowChunks = 8
	}
	if p.DetectTimeout <= 0 {
		p.DetectTimeout = 1.0
	}
	if p.DialFailCost <= 0 {
		p.DialFailCost = 0.005
	}
	return p
}

// NodeFailure kills the node at pipeline position Pos at time At seconds
// (relative to transfer start, matching the paper's §IV-G scenarios).
type NodeFailure struct {
	Pos int
	At  float64
}

type flowKind int

const (
	flowData flowKind = iota
	flowFetch
)

type flowMeta struct {
	kind  flowKind
	from  int // pipeline position of the sender
	to    int // pipeline position of the receiver
	chunk int
}

// kascadeSim carries the model state.
type kascadeSim struct {
	w      World
	order  []int
	p      KascadeParams
	nTotal int
	chunks int
	last   int64

	alive    []bool
	received []int // chunks fully received (source: all)
	written  []int // chunks on disk
	inFlight []int // data chunks flying into this position
	fetching []bool
	fetchEnd []int // exclusive upper chunk of the running gap fetch
	diskBusy []bool
	succ     []int // pipeline successor position (-1 = tail)
	pred     []int // pipeline predecessor position

	flows map[*simnet.Flow]flowMeta

	res      Result
	finished bool
	doneAt   float64
}

// Kascade simulates one broadcast over the pipeline `order` (element 0 is
// the sender) with the given failures injected. The source is file-backed
// (any offset can be re-served, as in all of the paper's experiments), so
// gap fetches always succeed; the streamed-source abandon cascade is
// exercised by the real engine's tests instead.
func Kascade(w World, order []int, bytes int64, p KascadeParams, failures []NodeFailure) Result {
	validateOrder(w, order)
	p = p.withDefaults()
	n := len(order)
	ks := &kascadeSim{
		w: w, order: order, p: p, nTotal: n,
		alive:    make([]bool, n),
		received: make([]int, n),
		written:  make([]int, n),
		inFlight: make([]int, n),
		fetching: make([]bool, n),
		fetchEnd: make([]int, n),
		diskBusy: make([]bool, n),
		succ:     make([]int, n),
		pred:     make([]int, n),
		flows:    make(map[*simnet.Flow]flowMeta),
	}
	ks.chunks, ks.last = chunkCount(bytes, p.ChunkSize)
	for i := 0; i < n; i++ {
		ks.alive[i] = true
		ks.succ[i] = i + 1
		ks.pred[i] = i - 1
	}
	ks.succ[n-1] = -1
	ks.received[0] = ks.chunks // file-backed source

	sim := w.Net().Sim
	sorted := append([]NodeFailure(nil), failures...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, f := range sorted {
		f := f
		sim.At(p.StartupTime+f.At, func() { ks.kill(f.Pos) })
	}
	sim.At(p.StartupTime, func() { ks.pumpAll() })
	sim.Run()
	ks.checkDone() // covers degenerate zero-byte / single-node cases

	ks.res.Completed = make([]bool, n)
	for i := 0; i < n; i++ {
		ks.res.Completed[i] = ks.alive[i] && ks.nodeDone(i)
	}
	if !ks.finished {
		ks.doneAt = sim.Now()
	}
	ks.res.Duration = ks.doneAt
	return ks.res
}

// disk returns node k's disk stage; the sender (position 0) never writes.
func (ks *kascadeSim) disk(k int) *simnet.Link {
	if k == 0 {
		return nil
	}
	return ks.w.Disk(ks.order[k])
}

// availTo returns the highest chunk node k can start forwarding. Relays
// forward cut-through: a chunk may leave while it is still arriving (the
// real engine streams bytes as they come; at fluid granularity this keeps
// pipeline fill time proportional to latency, not to chunk time x hops).
func (ks *kascadeSim) availTo(k int) int {
	if k == 0 {
		return ks.received[0]
	}
	return ks.received[k] + ks.inFlight[k]
}

// bufBase returns the oldest chunk still in node k's replay window. The
// file-backed source retains everything.
func (ks *kascadeSim) bufBase(k int) int {
	if k == 0 {
		return 0
	}
	base := ks.received[k] - ks.p.WindowChunks
	if base < 0 {
		base = 0
	}
	return base
}

// freed returns how many chunks node k has released from its buffer (sent
// to the successor and written to disk, whichever is later).
func (ks *kascadeSim) freed(k int) int {
	sent := ks.received[k]
	if s := ks.succ[k]; s >= 0 && ks.alive[s] {
		sent = ks.received[s]
	}
	out := sent
	if ks.disk(k) != nil && ks.written[k] < out {
		out = ks.written[k]
	}
	return out
}

func (ks *kascadeSim) nodeDone(k int) bool {
	if ks.received[k] < ks.chunks {
		return false
	}
	if ks.disk(k) != nil && ks.written[k] < ks.chunks {
		return false
	}
	return true
}

func (ks *kascadeSim) checkDone() {
	if ks.finished {
		return
	}
	for i := 0; i < ks.nTotal; i++ {
		if ks.alive[i] && !ks.nodeDone(i) {
			return
		}
	}
	ks.finished = true
	ks.doneAt = ks.w.Net().Sim.Now()
}

// pumpAll lets every alive sender push as much as its successor can take.
func (ks *kascadeSim) pumpAll() {
	for k := 0; k < ks.nTotal; k++ {
		if ks.alive[k] {
			ks.pump(k)
		}
	}
	ks.checkDone()
}

func (ks *kascadeSim) pump(k int) {
	s := ks.succ[k]
	if s < 0 || !ks.alive[s] || ks.fetching[s] {
		return
	}
	for ks.inFlight[s] < ks.p.Depth {
		next := ks.received[s] + ks.inFlight[s]
		if next >= ks.chunks || next >= ks.availTo(k) {
			return
		}
		if next < ks.bufBase(k) {
			// The window no longer holds the successor's next chunk
			// (fresh rewire onto a lagging node): FORGET -> PGET.
			ks.startGapFetch(s, ks.bufBase(k))
			return
		}
		// Receiver buffer back-pressure (replay window bound).
		if ks.received[s]-ks.freed(s)+ks.inFlight[s] >= ks.p.WindowChunks {
			return
		}
		links, lat, maxRate := ks.w.Path(ks.order[k], ks.order[s])
		size := chunkBytes(next, ks.chunks, ks.p.ChunkSize, ks.last)
		ks.inFlight[s]++
		meta := flowMeta{kind: flowData, from: k, to: s, chunk: next}
		var fl *simnet.Flow
		fl = ks.w.Net().Start(size, lat, links, func(*simnet.Flow) {
			delete(ks.flows, fl)
			ks.arriveData(meta)
		})
		fl.MaxRate = maxRate
		fl.Meta = meta
		ks.flows[fl] = meta
	}
}

func (ks *kascadeSim) arriveData(m flowMeta) {
	if !ks.alive[m.to] {
		return
	}
	ks.inFlight[m.to]--
	ks.received[m.to]++
	ks.enqueueDisk(m.to)
	ks.pumpAll()
}

// enqueueDisk keeps the node's sequential disk writer busy.
func (ks *kascadeSim) enqueueDisk(k int) {
	disk := ks.disk(k)
	if disk == nil || ks.diskBusy[k] || ks.written[k] >= ks.received[k] {
		return
	}
	ks.diskBusy[k] = true
	idx := ks.written[k]
	size := chunkBytes(idx, ks.chunks, ks.p.ChunkSize, ks.last)
	ks.w.Net().Start(size, 0, []*simnet.Link{disk}, func(*simnet.Flow) {
		ks.diskBusy[k] = false
		if !ks.alive[k] {
			return
		}
		ks.written[k]++
		ks.enqueueDisk(k)
		ks.pumpAll()
	})
}

// startGapFetch pulls chunks [received[s], end) for node s straight from
// node 0 (the paper's PGET path).
func (ks *kascadeSim) startGapFetch(s, end int) {
	if ks.fetching[s] || ks.received[s] >= end {
		return
	}
	ks.fetching[s] = true
	ks.fetchEnd[s] = end
	ks.res.GapFetches++
	ks.fetchNext(s)
}

func (ks *kascadeSim) fetchNext(s int) {
	if !ks.alive[s] {
		return
	}
	if ks.received[s] >= ks.fetchEnd[s] {
		ks.fetching[s] = false
		ks.pumpAll()
		return
	}
	idx := ks.received[s]
	links, lat, maxRate := ks.w.Path(ks.order[0], ks.order[s])
	size := chunkBytes(idx, ks.chunks, ks.p.ChunkSize, ks.last)
	meta := flowMeta{kind: flowFetch, from: 0, to: s, chunk: idx}
	var fl *simnet.Flow
	fl = ks.w.Net().Start(size, lat, links, func(*simnet.Flow) {
		delete(ks.flows, fl)
		if !ks.alive[s] {
			return
		}
		ks.received[s]++
		ks.enqueueDisk(s)
		ks.fetchNext(s)
	})
	fl.MaxRate = maxRate
	fl.Meta = meta
	ks.flows[fl] = meta
}

// kill marks a node dead, cancels its traffic, and schedules the
// predecessor's recovery after the detection timeout (§III-D1).
func (ks *kascadeSim) kill(pos int) {
	if !ks.alive[pos] {
		return
	}
	ks.alive[pos] = false
	for fl, m := range ks.flows {
		if m.from != pos && m.to != pos {
			continue
		}
		ks.w.Net().Cancel(fl)
		delete(ks.flows, fl)
		// A canceled chunk into a surviving node frees its in-flight
		// slot (the dead sender's partial transfer is discarded and
		// replayed after recovery).
		if m.to != pos && ks.alive[m.to] && m.kind == flowData && ks.inFlight[m.to] > 0 {
			ks.inFlight[m.to]--
		}
	}
	ks.inFlight[pos] = 0
	// The alive predecessor whose successor just died detects the
	// failure one timeout later.
	p := ks.pred[pos]
	for p >= 0 && !ks.alive[p] {
		p = ks.pred[p]
	}
	if p >= 0 {
		deadPred := p
		ks.w.Net().Sim.After(ks.p.DetectTimeout, func() { ks.rewire(deadPred) })
	}
	ks.checkDone()
}

// rewire points node p at its next alive successor, charging a refused-
// dial cost per extra dead node skipped, then resumes the stream (replay
// from the new successor's offset, or a gap fetch when the window moved
// past it).
func (ks *kascadeSim) rewire(p int) {
	if !ks.alive[p] {
		return
	}
	s := ks.succ[p]
	skipped := 0
	for s >= 0 && !ks.alive[s] {
		s = ks.succ[s]
		skipped++
	}
	if skipped == 0 {
		return // already rewired by an earlier recovery
	}
	ks.res.Recoveries++
	ks.succ[p] = s
	if s >= 0 {
		ks.pred[s] = p
	}
	extra := float64(skipped-1) * ks.p.DialFailCost
	if extra > 0 {
		ks.w.Net().Sim.After(extra, func() { ks.pumpAll() })
		return
	}
	ks.pumpAll()
}
