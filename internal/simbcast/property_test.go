package simbcast

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"kascade/internal/chaos"
	"kascade/internal/simnet"
	"kascade/internal/topology"
)

// Property: for any random set of receiver failures at any times, the
// Kascade model completes every survivor, the sender included, with no
// livelock — the model-level counterpart of the paper's "in all the cases,
// the file was transferred correctly" (§IV-G).
func TestKascadeAnyFailureSetCompletesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := rng.Intn(30) + 5
		switches := rng.Intn(3) + 1
		perSwitch := (nodes + switches - 1) / switches
		topo := topology.FatTree("n", switches, perSwitch, gig, topology.TenGigabit)
		topo.Nodes = topo.Nodes[:nodes]
		sim := simnet.New()
		w := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{})

		bytes := int64(rng.Intn(192)+64) << 20
		// Kill up to a third of the receivers at random times within
		// the plausible transfer window.
		var failures []NodeFailure
		dead := map[int]bool{}
		for i := 0; i < rng.Intn(nodes/3+1); i++ {
			pos := rng.Intn(nodes-1) + 1 // never the sender
			if dead[pos] {
				continue
			}
			dead[pos] = true
			failures = append(failures, NodeFailure{
				Pos: pos,
				At:  rng.Float64() * float64(bytes) / gig,
			})
		}
		params := KascadeParams{
			WindowChunks:  rng.Intn(14) + 2,
			Depth:         rng.Intn(3) + 1,
			DetectTimeout: 0.2,
		}
		res := Kascade(w, topo.TopologyOrder(), bytes, params, failures)
		if res.Duration <= 0 {
			return false
		}
		for pos, ok := range res.Completed {
			if dead[pos] && ok {
				return false // dead nodes must not be marked complete
			}
			if !dead[pos] && !ok {
				return false // survivors must complete
			}
		}
		// Sanity: the transfer cannot beat the link speed.
		if res.Throughput(bytes) > gig*1.02 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: churn on the REAL engine — for any chaos-generated fault
// schedule (crashes, restarts, partitions, rate collapses, stalls, slow
// sinks at seeded byte marks), every non-abandoned node's received bytes
// equal the source payload: no sink ever diverges from the source prefix,
// and every survivor holds the complete copy. This is the engine-level
// counterpart of the model property above, closing the loop between the
// simulator's claim and the implementation's behaviour.
func TestEngineChurnDeliveryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine churn property is not short")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := chaos.DefaultShape(rng.Intn(6) + 3)
		shape.Stream = rng.Intn(4) == 0
		sc := chaos.Generate(seed, shape)
		res := chaos.Run(context.Background(), sc)
		if err := chaos.Check(res); err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, sc.Repro(seed))
			return false
		}
		// The stated property, asserted directly on top of Check: a node
		// that did not abandon and did not die must hold the full payload
		// bit-for-bit; any node, dead or alive, must hold a clean prefix.
		for _, out := range res.Outcomes[1:] {
			if out.Corrupt {
				t.Logf("seed %d: node %d corrupt", seed, out.Index)
				return false
			}
			if !out.Abandoned && out.Err == "" && !res.Report.Failed(out.Index) && !out.Complete {
				t.Logf("seed %d: survivor %d incomplete", seed, out.Index)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree model completes everyone for any arity and shape.
func TestTreeAnyShapeCompletesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := rng.Intn(40) + 2
		topo := topology.FatTree("n", 1, nodes, gig, topology.TenGigabit)
		sim := simnet.New()
		w := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{})
		var children func(int, int) []int
		switch rng.Intn(3) {
		case 0:
			children = ChainChildren
		case 1:
			children = HeapChildren(rng.Intn(4) + 1)
		default:
			children = BinomialChildrenFn
		}
		bytes := int64(rng.Intn(128)+32) << 20
		res := Tree(w, topo.TopologyOrder(), bytes, TreeParams{
			Children: children,
			Depth:    rng.Intn(3) + 1,
		})
		for _, ok := range res.Completed {
			if !ok {
				return false
			}
		}
		return res.Duration > 0 && res.Throughput(bytes) <= gig*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
