package simbcast

import (
	"kascade/internal/simnet"
)

// TreeParams tunes the generic store-and-forward tree model, which covers
// the TakTuk baselines (arity-1 chain and arity-2 tree, §IV) and the MPI
// segmented collectives (pipelined chain and binomial tree).
type TreeParams struct {
	// ChunkSize is the simulation granularity in bytes.
	ChunkSize int64
	// Depth is the number of chunks in flight per tree edge.
	Depth int
	// PerChunkAck adds a full path round trip to every chunk (TakTuk's
	// windowed command-channel forwarding waits for acknowledgements;
	// MPI's segmented collectives do not).
	PerChunkAck bool
	// StartupTime is the deployment cost added before data flows.
	StartupTime float64
	// Children maps a pipeline position to its children positions.
	Children func(pos, n int) []int
}

func (p TreeParams) withDefaults() TreeParams {
	if p.ChunkSize <= 0 {
		p.ChunkSize = 8 << 20
	}
	if p.Depth <= 0 {
		p.Depth = 2
	}
	return p
}

// ChainChildren is the arity-1 tree (the pipelined chain).
func ChainChildren(pos, n int) []int {
	if pos+1 < n {
		return []int{pos + 1}
	}
	return nil
}

// HeapChildren returns the arity-k heap layout used by TakTuk.
func HeapChildren(k int) func(pos, n int) []int {
	return func(pos, n int) []int {
		var out []int
		for c := pos*k + 1; c <= pos*k+k && c < n; c++ {
			out = append(out, c)
		}
		return out
	}
}

// LocalityHeapChildren builds TakTuk's adaptive-tree shape: TakTuk reaches
// nearby nodes first, so its tree is largely topology-local — an arity-k
// heap inside each node group (switch), with group roots chained. Each
// switch uplink then carries the stream once, like Kascade's ordered chain,
// which is why the paper's TakTuk/tree stays flat with node count (Fig 7).
// groupOf maps a pipeline position to its group id; positions of one group
// must be contiguous and groups ascending (the topology order guarantees
// this).
func LocalityHeapChildren(k int, groupOf func(pos int) int) func(pos, n int) []int {
	return func(pos, n int) []int {
		g := groupOf(pos)
		// Find the group's contiguous span [lo, hi).
		lo := pos
		for lo > 0 && groupOf(lo-1) == g {
			lo--
		}
		hi := pos + 1
		for hi < n && groupOf(hi) == g {
			hi++
		}
		// Heap children within the group.
		rel := pos - lo
		var out []int
		for c := rel*k + 1; c <= rel*k+k && lo+c < hi; c++ {
			out = append(out, lo+c)
		}
		// The group root also feeds the next group's root.
		if rel == 0 && hi < n {
			out = append(out, hi)
		}
		return out
	}
}

// BinomialChildrenFn returns the binomial-tree layout used by MPI bcast.
func BinomialChildrenFn(pos, n int) []int {
	if n <= 1 {
		return nil
	}
	k := 0
	for 1<<k <= pos {
		k++
	}
	var out []int
	for ; 1<<k < n; k++ {
		c := pos | 1<<k
		if c < n && c != pos {
			out = append(out, c)
		}
	}
	return out
}

type treeSim struct {
	w      World
	order  []int
	p      TreeParams
	nTotal int
	chunks int
	last   int64

	received []int
	written  []int
	inFlight []int
	diskBusy []bool
	children [][]int
	parent   []int

	finished bool
	doneAt   float64
}

// Tree simulates one store-and-forward tree broadcast (no failures: the
// paper's baselines have no fault tolerance to exercise).
func Tree(w World, order []int, bytes int64, p TreeParams) Result {
	validateOrder(w, order)
	p = p.withDefaults()
	if p.Children == nil {
		p.Children = ChainChildren
	}
	n := len(order)
	ts := &treeSim{
		w: w, order: order, p: p, nTotal: n,
		received: make([]int, n),
		written:  make([]int, n),
		inFlight: make([]int, n),
		diskBusy: make([]bool, n),
		children: make([][]int, n),
		parent:   make([]int, n),
	}
	ts.chunks, ts.last = chunkCount(bytes, p.ChunkSize)
	for i := 0; i < n; i++ {
		ts.children[i] = p.Children(i, n)
		for _, c := range ts.children[i] {
			ts.parent[c] = i
		}
	}
	ts.received[0] = ts.chunks

	sim := w.Net().Sim
	sim.At(p.StartupTime, func() { ts.pumpAll() })
	sim.Run()
	ts.checkDone()

	res := Result{Duration: ts.doneAt, Completed: make([]bool, n)}
	for i := range res.Completed {
		res.Completed[i] = ts.nodeDone(i)
	}
	if !ts.finished {
		res.Duration = sim.Now()
	}
	return res
}

// disk returns node k's disk stage; the root (position 0) never writes.
func (ts *treeSim) disk(k int) *simnet.Link {
	if k == 0 {
		return nil
	}
	return ts.w.Disk(ts.order[k])
}

// availTo returns the highest chunk node k can start forwarding
// (cut-through; see the Kascade model for rationale).
func (ts *treeSim) availTo(k int) int {
	if k == 0 {
		return ts.received[0]
	}
	return ts.received[k] + ts.inFlight[k]
}

func (ts *treeSim) nodeDone(k int) bool {
	if ts.received[k] < ts.chunks {
		return false
	}
	if ts.disk(k) != nil && ts.written[k] < ts.chunks {
		return false
	}
	return true
}

func (ts *treeSim) checkDone() {
	if ts.finished {
		return
	}
	for i := 0; i < ts.nTotal; i++ {
		if !ts.nodeDone(i) {
			return
		}
	}
	ts.finished = true
	ts.doneAt = ts.w.Net().Sim.Now()
}

func (ts *treeSim) pumpAll() {
	for k := 0; k < ts.nTotal; k++ {
		ts.pump(k)
	}
	ts.checkDone()
}

func (ts *treeSim) pump(k int) {
	for _, c := range ts.children[k] {
		for ts.inFlight[c] < ts.p.Depth {
			next := ts.received[c] + ts.inFlight[c]
			if next >= ts.chunks || next >= ts.availTo(k) {
				break
			}
			links, lat, maxRate := ts.w.Path(ts.order[k], ts.order[c])
			if ts.p.PerChunkAck {
				// Windowed store-and-forward: each chunk costs an
				// extra round trip before the next may start.
				lat += 2 * lat
			}
			size := chunkBytes(next, ts.chunks, ts.p.ChunkSize, ts.last)
			ts.inFlight[c]++
			child := c
			fl := ts.w.Net().Start(size, lat, links, func(*simnet.Flow) {
				ts.inFlight[child]--
				ts.received[child]++
				ts.enqueueDisk(child)
				ts.pumpAll()
			})
			fl.MaxRate = maxRate
		}
	}
}

func (ts *treeSim) enqueueDisk(k int) {
	disk := ts.disk(k)
	if disk == nil || ts.diskBusy[k] || ts.written[k] >= ts.received[k] {
		return
	}
	ts.diskBusy[k] = true
	idx := ts.written[k]
	size := chunkBytes(idx, ts.chunks, ts.p.ChunkSize, ts.last)
	ts.w.Net().Start(size, 0, []*simnet.Link{disk}, func(*simnet.Flow) {
		ts.diskBusy[k] = false
		ts.written[k]++
		ts.enqueueDisk(k)
		ts.pumpAll()
	})
}
