// Package simbcast models each broadcast method of the paper's evaluation
// on the simulator (internal/simnet), at chunk granularity:
//
//   - Kascade: the topology-ordered pipeline with the full §III-D recovery
//     machinery (detection timeout, successor skipping, window replay, gap
//     fetch from node 0).
//   - Tree: the generic store-and-forward tree used for TakTuk (arity 1 or
//     2, with its relay-processing ceiling and per-block ack round trip)
//     and for MPI's segmented collectives (pipelined chain and binomial).
//   - UDPCast: sender-synchronized slices with an ACK-collection cost that
//     grows with the receiver count.
//
// Each model consumes a World (a simulated cluster) and a pipeline order,
// and reports the broadcast duration exactly the way the paper measures it:
// file size divided by completion time.
package simbcast

import (
	"fmt"

	"kascade/internal/simnet"
)

// World abstracts the simulated cluster the models run on.
type World interface {
	// Nodes returns the number of physical nodes.
	Nodes() int
	// Path returns links, one-way latency and per-connection rate cap
	// for a transfer between physical nodes i and j.
	Path(i, j int) (links []*simnet.Link, latency, maxRate float64)
	// Disk returns node i's disk stage (nil = payload discarded).
	Disk(i int) *simnet.Link
	// Net returns the flow network.
	Net() *simnet.Network
}

// Result summarises one simulated broadcast.
type Result struct {
	// Duration is the wall-clock completion time in seconds, including
	// the startup cost.
	Duration float64
	// Completed flags, per pipeline position, whether the node holds the
	// full payload at the end.
	Completed []bool
	// Recoveries counts successor rewires (Kascade only).
	Recoveries int
	// GapFetches counts PGET gap fetches from node 0 (Kascade only).
	GapFetches int
}

// Throughput returns the paper's metric: payload bytes over completion
// time, in bytes/second.
func (r Result) Throughput(bytes int64) float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(bytes) / r.Duration
}

// chunkCount returns the number of chunks and the size of the last one.
func chunkCount(bytes, chunkSize int64) (n int, last int64) {
	if bytes <= 0 {
		return 0, 0
	}
	n = int((bytes + chunkSize - 1) / chunkSize)
	last = bytes - int64(n-1)*chunkSize
	return n, last
}

func chunkBytes(idx, total int, chunkSize, last int64) float64 {
	if idx == total-1 {
		return float64(last)
	}
	return float64(chunkSize)
}

// validateOrder panics on malformed pipeline orders (programming errors in
// experiment definitions, not runtime conditions).
func validateOrder(w World, order []int) {
	if len(order) == 0 {
		panic("simbcast: empty pipeline order")
	}
	seen := make(map[int]bool, len(order))
	for _, p := range order {
		if p < 0 || p >= w.Nodes() {
			panic(fmt.Sprintf("simbcast: order entry %d out of range", p))
		}
		if seen[p] {
			panic(fmt.Sprintf("simbcast: order repeats node %d", p))
		}
		seen[p] = true
	}
}
