package simbcast

import (
	"testing"

	"kascade/internal/simnet"
	"kascade/internal/topology"
)

// world builds a simulated fat tree with the given rates.
func world(switches, perSwitch int, edgeCap float64, rates simnet.NodeRates) (*simnet.Cluster, *topology.Cluster) {
	topo := topology.FatTree("n", switches, perSwitch, edgeCap, topology.TenGigabit)
	sim := simnet.New()
	net := simnet.NewNetwork(sim)
	return simnet.BuildCluster(net, topo, rates), topo
}

const gig = 112e6 // calibrated effective 1 GbE payload rate (bytes/s)

func TestKascadePipelineSaturatesLink(t *testing.T) {
	w, topo := world(2, 10, gig, simnet.NodeRates{})
	order := topo.TopologyOrder()
	bytes := int64(512 << 20)
	res := Kascade(w, order, bytes, KascadeParams{}, nil)
	tput := res.Throughput(bytes)
	// A well-ordered pipeline should deliver close to the edge rate
	// regardless of node count (Fig 7's key property).
	if tput < 0.85*gig || tput > gig*1.01 {
		t.Fatalf("pipeline throughput %.1f MB/s, want near %.1f", tput/1e6, gig/1e6)
	}
	for i, ok := range res.Completed {
		if !ok {
			t.Fatalf("node %d incomplete", i)
		}
	}
}

func TestKascadeScalesFlatWithNodes(t *testing.T) {
	bytes := int64(256 << 20)
	var t20, t200 float64
	for _, n := range []int{20, 200} {
		w, topo := world(n/10, 10, gig, simnet.NodeRates{})
		res := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)
		if n == 20 {
			t20 = res.Throughput(bytes)
		} else {
			t200 = res.Throughput(bytes)
		}
	}
	if t200 < 0.9*t20 {
		t.Fatalf("throughput degraded with scale: %v -> %v MB/s", t20/1e6, t200/1e6)
	}
}

func TestKascadeRandomOrderCollapses(t *testing.T) {
	// Fig 10: a random order crosses the uplinks many times and the
	// pipeline collapses to uplink/(crossings) territory.
	bytes := int64(256 << 20)
	w, topo := world(7, 30, gig, simnet.NodeRates{})
	ordered := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)

	w2, topo2 := world(7, 30, gig, simnet.NodeRates{})
	random := Kascade(w2, topo2.RandomOrder(1), bytes, KascadeParams{}, nil)

	to, tr := ordered.Throughput(bytes), random.Throughput(bytes)
	if tr > 0.6*to {
		t.Fatalf("random order should collapse: ordered %.1f vs random %.1f MB/s", to/1e6, tr/1e6)
	}
}

func TestKascadeRelayCeiling(t *testing.T) {
	// Fig 8: on 10 GbE the per-node copy rate is the ceiling.
	relay := 280e6
	w, topo := world(1, 14, 10*gig, simnet.NodeRates{RelayRate: relay})
	bytes := int64(1 << 30)
	res := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)
	tput := res.Throughput(bytes)
	if tput < 0.85*relay || tput > relay*1.01 {
		t.Fatalf("throughput %.1f MB/s, want near relay cap %.1f", tput/1e6, relay/1e6)
	}
}

func TestKascadeDiskBound(t *testing.T) {
	// Fig 11: with disks in the path, the pipeline runs at disk speed.
	disk := 45e6
	w, topo := world(1, 10, gig, simnet.NodeRates{DiskRate: disk})
	bytes := int64(256 << 20)
	res := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)
	tput := res.Throughput(bytes)
	if tput < 0.8*disk || tput > disk*1.01 {
		t.Fatalf("throughput %.1f MB/s, want near disk rate %.1f", tput/1e6, disk/1e6)
	}
}

func TestKascadeSingleFailureCostsOneTimeout(t *testing.T) {
	bytes := int64(512 << 20)
	w, topo := world(2, 10, gig, simnet.NodeRates{})
	base := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)

	w2, topo2 := world(2, 10, gig, simnet.NodeRates{})
	failed := Kascade(w2, topo2.TopologyOrder(), bytes, KascadeParams{}, []NodeFailure{{Pos: 5, At: 1.0}})

	if failed.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", failed.Recoveries)
	}
	delta := failed.Duration - base.Duration
	// One detection timeout (1 s) plus modest replay; the transfer must
	// still complete for every survivor.
	if delta < 0.5 || delta > 3.0 {
		t.Fatalf("failure cost %.2f s, want ~1s", delta)
	}
	for i, ok := range failed.Completed {
		if i != 5 && !ok {
			t.Fatalf("survivor %d incomplete", i)
		}
	}
	if failed.Completed[5] {
		t.Fatal("dead node marked complete")
	}
}

func TestKascadeSequentialCostsMoreThanSimultaneous(t *testing.T) {
	// Fig 15's headline: simultaneous failures pipeline their detection,
	// sequential ones pay one timeout each.
	bytes := int64(1 << 30)
	positions := []int{9, 19, 29, 39, 49}

	var sim []NodeFailure
	for _, p := range positions {
		sim = append(sim, NodeFailure{Pos: p, At: 2.0})
	}
	w1, topo1 := world(10, 10, gig, simnet.NodeRates{})
	simRes := Kascade(w1, topo1.TopologyOrder(), bytes, KascadeParams{}, sim)

	var seq []NodeFailure
	for i, p := range positions {
		seq = append(seq, NodeFailure{Pos: p, At: 2.0 + float64(i)*1.5})
	}
	w2, topo2 := world(10, 10, gig, simnet.NodeRates{})
	seqRes := Kascade(w2, topo2.TopologyOrder(), bytes, KascadeParams{}, seq)

	if !(seqRes.Duration > simRes.Duration) {
		t.Fatalf("sequential (%.2fs) should cost more than simultaneous (%.2fs)",
			seqRes.Duration, simRes.Duration)
	}
}

func TestKascadeAdjacentSimultaneousFailures(t *testing.T) {
	bytes := int64(256 << 20)
	w, topo := world(2, 10, gig, simnet.NodeRates{})
	res := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{},
		[]NodeFailure{{Pos: 7, At: 0.5}, {Pos: 8, At: 0.5}})
	for i, ok := range res.Completed {
		if i != 7 && i != 8 && !ok {
			t.Fatalf("survivor %d incomplete", i)
		}
	}
	if res.Recoveries != 1 {
		t.Fatalf("adjacent simultaneous failures should rewire once, got %d", res.Recoveries)
	}
}

func TestKascadeGapFetchAfterLaggingRewire(t *testing.T) {
	// A tiny window plus a failure forces the new successor below the
	// predecessor's window: the model must take the PGET path and still
	// complete everyone.
	bytes := int64(256 << 20)
	w, topo := world(1, 8, gig, simnet.NodeRates{DiskRate: 20e6}) // slow disks build lag
	res := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{WindowChunks: 2},
		[]NodeFailure{{Pos: 3, At: 3.0}})
	for i, ok := range res.Completed {
		if i != 3 && !ok {
			t.Fatalf("survivor %d incomplete", i)
		}
	}
	if res.GapFetches == 0 {
		t.Fatal("expected at least one gap fetch with a 2-chunk window")
	}
}

func TestTreeChainMatchesKascadeThroughput(t *testing.T) {
	bytes := int64(256 << 20)
	w, topo := world(2, 10, gig, simnet.NodeRates{})
	k := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)
	w2, topo2 := world(2, 10, gig, simnet.NodeRates{})
	c := Tree(w2, topo2.TopologyOrder(), bytes, TreeParams{Children: ChainChildren})
	rk, rc := k.Throughput(bytes), c.Throughput(bytes)
	if rc < 0.9*rk || rc > 1.1*rk {
		t.Fatalf("chain tree %.1f vs kascade %.1f MB/s should be close", rc/1e6, rk/1e6)
	}
}

func TestTreeRelayCapDominates(t *testing.T) {
	// TakTuk's perl relay cap makes arity irrelevant on 1 GbE (Fig 7:
	// chain and tree both flat around 35 MB/s).
	relay := 38e6
	bytes := int64(256 << 20)
	var rates [2]float64
	for i, children := range []func(int, int) []int{ChainChildren, HeapChildren(2)} {
		w, topo := world(2, 10, gig, simnet.NodeRates{RelayRate: relay})
		res := Tree(w, topo.TopologyOrder(), bytes, TreeParams{Children: children, PerChunkAck: true})
		rates[i] = res.Throughput(bytes)
	}
	for i, r := range rates {
		if r < 0.7*relay || r > relay*1.01 {
			t.Fatalf("variant %d: %.1f MB/s, want near relay cap %.1f", i, r/1e6, relay/1e6)
		}
	}
}

func TestBinomialRootDividesBandwidth(t *testing.T) {
	// A binomial root feeds ~log2(N) children through one NIC: per-child
	// rate divides, so the pipelined throughput falls well below a chain.
	bytes := int64(256 << 20)
	w, topo := world(2, 32, gig, simnet.NodeRates{})
	b := Tree(w, topo.TopologyOrder(), bytes, TreeParams{Children: BinomialChildrenFn})
	w2, topo2 := world(2, 32, gig, simnet.NodeRates{})
	c := Tree(w2, topo2.TopologyOrder(), bytes, TreeParams{Children: ChainChildren})
	rb, rc := b.Throughput(bytes), c.Throughput(bytes)
	if rb > 0.5*rc {
		t.Fatalf("binomial %.1f vs chain %.1f MB/s: root NIC division missing", rb/1e6, rc/1e6)
	}
}

func TestBinomialChildrenLayoutMatchesMPI(t *testing.T) {
	got := BinomialChildrenFn(0, 8)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("root children %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("root children %v, want %v", got, want)
		}
	}
}

func TestUDPCastSyncCostGrowsWithReceivers(t *testing.T) {
	bytes := int64(512 << 20)
	var small, large float64
	for _, n := range []int{20, 200} {
		w, topo := world(n/10, 10, gig, simnet.NodeRates{})
		res := UDPCast(w, topo.TopologyOrder(), bytes, UDPCastParams{})
		if n == 20 {
			small = res.Throughput(bytes)
		} else {
			large = res.Throughput(bytes)
		}
	}
	if large > 0.85*small {
		t.Fatalf("ACK implosion missing: %.1f MB/s at 20 nodes vs %.1f at 200", small/1e6, large/1e6)
	}
	if small < 0.7*gig {
		t.Fatalf("small-N UDPCast too slow: %.1f MB/s", small/1e6)
	}
}

func TestStartupTimeDominatesSmallFiles(t *testing.T) {
	// Fig 14's mechanism: 50 MB at wire speed takes ~0.45 s; a 2 s
	// startup must roughly quarter the effective throughput.
	bytes := int64(50e6)
	w, topo := world(2, 10, gig, simnet.NodeRates{})
	fast := Kascade(w, topo.TopologyOrder(), bytes, KascadeParams{}, nil)
	w2, topo2 := world(2, 10, gig, simnet.NodeRates{})
	slow := Kascade(w2, topo2.TopologyOrder(), bytes, KascadeParams{StartupTime: 2.0}, nil)
	if slow.Duration-fast.Duration < 1.9 {
		t.Fatalf("startup not charged: %.2f vs %.2f", slow.Duration, fast.Duration)
	}
}

func TestZeroByteBroadcasts(t *testing.T) {
	w, topo := world(1, 4, gig, simnet.NodeRates{})
	res := Kascade(w, topo.TopologyOrder(), 0, KascadeParams{}, nil)
	if res.Duration != 0 {
		t.Fatalf("zero-byte kascade took %v", res.Duration)
	}
	w2, topo2 := world(1, 4, gig, simnet.NodeRates{})
	if res := Tree(w2, topo2.TopologyOrder(), 0, TreeParams{}); res.Duration != 0 {
		t.Fatalf("zero-byte tree took %v", res.Duration)
	}
}
