package benchkit

import "testing"

// BenchmarkMux16 drives the 16-session multiplexed broadcast shape of
// `kascade-bench -mux`, so the convoy behaviour can be profiled with the
// standard -cpuprofile/-benchtime machinery.
func BenchmarkMux16(b *testing.B) {
	b.SetBytes(16 * EngineBenchSize)
	for i := 0; i < b.N; i++ {
		if _, _, err := MuxBroadcast(16, 5, EngineBenchSize, 256<<10); err != nil {
			b.Fatal(err)
		}
	}
}
