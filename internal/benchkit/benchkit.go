// Package benchkit is the shared harness behind the engine
// microbenchmarks: the top-level bench_test.go and cmd/kascade-bench both
// push real broadcasts through it, so the numbers in BENCH_1.json and the
// numbers `go test -bench` prints come from the same code path.
package benchkit

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kascade/internal/core"
	"kascade/internal/iolimit"
	"kascade/internal/mpibcast"
	"kascade/internal/transport"
)

// ReaderAt adapts an in-memory payload to io.ReaderAt with the full
// contract: a short read at the tail carries io.EOF, as io.SectionReader
// does.
type ReaderAt struct{ p []byte }

// NewReaderAt wraps p.
func NewReaderAt(p []byte) *ReaderAt { return &ReaderAt{p} }

func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(r.p)) {
		return 0, io.EOF
	}
	n := copy(p, r.p[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Payload generates size deterministic pattern bytes.
func Payload(size int64, seed uint64) []byte {
	p := make([]byte, size)
	iolimit.NewPattern(size, seed).Read(p)
	return p
}

// Spec is one engine microbenchmark: a pipeline shape to push Size bytes
// through. The single source of truth for the benchmark matrix — the
// top-level `go test -bench Engine` benchmarks and the BENCH_1.json rows
// written by `kascade-bench -engine` both iterate this table, so their
// names and parameters cannot drift apart.
type Spec struct {
	Name  string
	Nodes int
	Chunk int
	Size  int64
	// Transport selects the data plane ("" = chunked TCP pipeline,
	// core.TransportUDP = batched datagram fan-out).
	Transport string
	// Topology selects the dissemination shape ("" = chain,
	// core.TopologyTree(k) = k-ary tree, core.TopologyScatterAllgather =
	// the van de Geijn composite, dispatched to internal/mpibcast).
	Topology string
	// Splice enables the kernel pass-through fast path on relay nodes; it
	// only engages over real sockets, so splice specs set Loopback too.
	Splice bool
	// Loopback runs over real 127.0.0.1 sockets instead of the in-memory
	// fabric (required for the splice and sendmmsg kernel paths to bite).
	Loopback bool
	// LinkRate rate-shapes every fabric link to this many bytes per
	// second (0 = unshaped; fabric runs only).
	LinkRate float64
	// SlowNode, when > 0 alongside LinkRate, pins that node's outbound
	// links to LinkRate/10: the heterogeneous-bandwidth scenario the
	// re-ranking rows measure.
	SlowNode int
	// Rerank enables mid-broadcast self-reorganization (tree topologies).
	Rerank bool
	// JoinAt, when > 0, grafts one late joiner onto the live broadcast
	// once any receiver has ingested this fraction of the payload
	// (dynamic membership; requires Rerank + a tree Topology, fabric runs
	// only). The measured session then also carries the join negotiation,
	// the joiner's range catch-up from the sender, and the epilogue
	// waiting on its sink parity.
	JoinAt float64
}

// EngineBenchSize is the per-iteration payload of every engine benchmark.
const EngineBenchSize = 16 << 20

// EngineBenchmarks returns the benchmark matrix: pipeline-length sweep at
// a fixed chunk, a chunk-size sweep at a fixed depth, the splice() relay
// ablation over real loopback sockets, and the batched UDP fan-out.
func EngineBenchmarks() []Spec {
	var specs []Spec
	for _, nodes := range []int{2, 4, 8, 16} {
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("EnginePipeline/nodes=%d", nodes),
			Nodes: nodes, Chunk: 256 << 10, Size: EngineBenchSize,
		})
	}
	for _, chunk := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("EngineChunkSize/chunk=%dKiB", chunk>>10),
			Nodes: 5, Chunk: chunk, Size: EngineBenchSize,
		})
	}
	// Kernel-relay ablation: the same loopback pipeline with the splice()
	// pass-through off and on — the on/off delta is the copy cost the
	// relay's user space no longer pays. The chain is deep (6 relays) and
	// the chunks large so relay copies, not endpoint work, bound the
	// pipeline: that is the regime the fast path exists for, and on a
	// CPU-bound builder the delta is large (+69% on the 1-core CI class).
	for _, on := range []bool{false, true} {
		state := "off"
		if on {
			state = "on"
		}
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("EngineSplice/splice=%s", state),
			Nodes: 8, Chunk: 1 << 20, Size: EngineBenchSize,
			Splice: on, Loopback: true,
		})
	}
	// Batched datagram fan-out over real loopback UDP (sendmmsg/recvmmsg
	// on Linux): the sender feeds every receiver directly.
	specs = append(specs, Spec{
		Name:  "EngineUDP/nodes=4",
		Nodes: 4, Chunk: 64 << 10, Size: EngineBenchSize,
		Transport: core.TransportUDP, Loopback: true,
	})
	// Tree dissemination: the 16-node binary tree halves no link's load
	// (every relay still uploads twice) but cuts the hop depth from 15 to
	// 4, trading per-relay fan-out for pipeline latency.
	specs = append(specs, Spec{
		Name:  "EngineTree/nodes=16,k=2",
		Nodes: 16, Chunk: 256 << 10, Size: EngineBenchSize,
		Topology: core.TopologyTree(2),
	})
	// Self-reorganization ablation: the same binary tree on a rate-shaped
	// fabric (64 MiB/s links) with node 1's outbound links at one tenth of
	// that — a root child whose subtree drains through a 6.4 MiB/s relay.
	// The off/on delta is the throughput mid-broadcast re-ranking recovers
	// by demoting the slow relay to a leaf and re-grafting its subtree
	// onto a full-rate peer.
	for _, on := range []bool{false, true} {
		state := "off"
		if on {
			state = "on"
		}
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("EngineTreeRerank/nodes=16,k=2,slow=1,rerank=%s", state),
			Nodes: 16, Chunk: 256 << 10, Size: EngineBenchSize,
			Topology: core.TopologyTree(2),
			LinkRate: 64 << 20, SlowNode: 1, Rerank: on,
		})
	}
	// Dynamic membership: the same 16-node rerank tree with one late
	// joiner grafted at half transfer. The row prices the whole join path
	// against EngineTreeRerank's rerank=on baseline: graft negotiation,
	// the joiner's windowed range catch-up streamed from the sender
	// alongside the live broadcast, and the completion wave waiting for
	// the joiner's sink to reach parity.
	specs = append(specs, Spec{
		Name:  "EngineLateJoin/nodes=16,k=2,join=50%",
		Nodes: 16, Chunk: 256 << 10, Size: EngineBenchSize,
		Topology: core.TopologyTree(2),
		LinkRate: 64 << 20, Rerank: true, JoinAt: 0.5,
	})
	return specs
}

// Broadcast runs one benchmark iteration of the spec: fresh listeners,
// nodes and pipes, honouring the spec's transport, splice and loopback
// dimensions, with every sink discarded.
func (spec Spec) Broadcast() (*core.SessionResult, error) {
	opts := EngineOptions(spec.Chunk)
	opts.Splice = spec.Splice
	if spec.Rerank {
		opts.Rerank = true
		// Bench-speed cadence: at these link rates the 16 MiB transfer
		// lasts a couple of seconds, so the 500 ms production cadence
		// would spend most of the run before the first migration.
		opts.RerankInterval = 150 * time.Millisecond
		opts.RerankMinInterval = 300 * time.Millisecond
	}
	if spec.Transport == core.TransportUDP {
		// The stall budget doubles as the datagram plane's loss-repair
		// trigger; keep it tight so a dropped burst costs a prompt PGET,
		// not three idle seconds.
		opts.WriteStallTimeout = time.Second
	}
	payload := Payload(spec.Size, 99)
	if spec.Topology == core.TopologyScatterAllgather {
		return spec.broadcastScatterAllgather(payload)
	}
	peers := make([]core.Peer, spec.Nodes)
	cfg := core.SessionConfig{
		Opts:      opts,
		Transport: spec.Transport,
		Topology:  spec.Topology,
		SinkFor:   func(int) io.Writer { return io.Discard },
		InputFile: NewReaderAt(payload),
		InputSize: spec.Size,
	}
	var fabric *transport.Fabric
	if spec.Loopback {
		for i := range peers {
			peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
		}
		cfg.NetworkFor = func(int) transport.Network { return transport.TCP{} }
	} else {
		fabric = transport.NewFabric(1 << 20)
		for i := range peers {
			peers[i] = core.Peer{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("n%d:7000", i+1)}
		}
		if spec.LinkRate > 0 {
			fabric.SetDefaultProfile(transport.Profile{Rate: spec.LinkRate})
			if spec.SlowNode > 0 && spec.SlowNode < len(peers) {
				slow := transport.Profile{Rate: spec.LinkRate / 10}
				for i := range peers {
					if i != spec.SlowNode {
						fabric.SetLinkProfile(peers[spec.SlowNode].Name, peers[i].Name, slow)
					}
				}
			}
		}
		cfg.NetworkFor = func(i int) transport.Network { return fabric.Host(peers[i].Name) }
	}
	cfg.Peers = peers
	if spec.JoinAt > 0 {
		if fabric == nil {
			return nil, fmt.Errorf("benchkit: JoinAt requires a fabric run")
		}
		return spec.broadcastLateJoin(cfg, fabric)
	}
	res, err := core.RunSession(context.Background(), cfg)
	if err != nil {
		return res, err
	}
	if len(res.Report.Failures) != 0 {
		return res, fmt.Errorf("benchkit: failures during broadcast: %v", res.Report)
	}
	return res, nil
}

// broadcastLateJoin runs one iteration of a JoinAt spec: the broadcast
// starts normally, and once any receiver's ingestion crosses the JoinAt
// mark (observed through the trace seam, not by sleeping) a fresh host is
// grafted onto the live tree. The session's elapsed time covers the whole
// dynamic-membership path, since the completion wave waits for the
// joiner's catch-up parity.
func (spec Spec) broadcastLateJoin(cfg core.SessionConfig, fabric *transport.Fabric) (*core.SessionResult, error) {
	ctx := context.Background()
	joinMark := uint64(float64(spec.Size) * spec.JoinAt)
	type joinRes struct {
		h   *core.JoinHandle
		err error
	}
	sessCh := make(chan *core.Session, 1)
	joinCh := make(chan joinRes, 1)
	var once sync.Once
	cfg.Trace = func(ev core.TraceEvent) {
		if ev.Kind == core.TraceChunk && ev.Node > 0 && ev.Offset >= joinMark {
			once.Do(func() {
				go func() {
					s := <-sessCh
					h, err := s.Join(ctx, core.JoinConfig{
						Peer:    core.Peer{Name: "j1", Addr: "j1:7000"},
						Network: fabric.Host("j1"),
					})
					joinCh <- joinRes{h, err}
				}()
			})
		}
	}
	sess, err := core.StartSession(ctx, cfg)
	if err != nil {
		return nil, err
	}
	sessCh <- sess
	res, err := sess.Wait()
	if err != nil {
		return res, err
	}
	jr := <-joinCh
	if jr.err != nil {
		return res, fmt.Errorf("benchkit: late join: %w", jr.err)
	}
	if _, werr := jr.h.Wait(); werr != nil {
		return res, fmt.Errorf("benchkit: joiner: %w", werr)
	}
	if len(res.Report.Failures) != 0 {
		return res, fmt.Errorf("benchkit: failures during broadcast: %v", res.Report)
	}
	return res, nil
}

// broadcastScatterAllgather dispatches the composite collective to
// internal/mpibcast — core.Node cannot run it — and adapts the outcome to
// the SessionResult shape the harness reports everywhere else.
func (spec Spec) broadcastScatterAllgather(payload []byte) (*core.SessionResult, error) {
	names := make([]string, spec.Nodes)
	addrs := make([]string, spec.Nodes)
	cfg := mpibcast.ScatterAllgatherConfig{Payload: payload}
	if spec.Loopback {
		for i := range names {
			names[i] = fmt.Sprintf("n%d", i+1)
			addrs[i] = "127.0.0.1:0"
		}
		cfg.NetworkFor = func(int) transport.Network { return transport.TCP{} }
	} else {
		fabric := transport.NewFabric(1 << 20)
		for i := range names {
			names[i] = fmt.Sprintf("n%d", i+1)
			addrs[i] = names[i] + ":7000"
		}
		cfg.NetworkFor = func(i int) transport.Network { return fabric.Host(names[i]) }
	}
	cfg.Names, cfg.Addrs = names, addrs
	start := time.Now()
	total, err := mpibcast.BroadcastScatterAllgather(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return &core.SessionResult{
		Report:  &core.Report{TotalBytes: total},
		Elapsed: time.Since(start),
	}, nil
}

// EngineOptions are the protocol options every engine benchmark runs with
// (fabric and TCP loopback alike), sized for fast in-memory iteration.
// Failure detection is deliberately slackened, exactly as in MuxOptions:
// a deep pipeline on a small builder can starve a PONG past the 500 ms
// production default and a perfectly healthy node gets declared dead,
// aborting the artifact. The benches measure throughput, not detection
// latency — the detectors exist here only as a safety net.
func EngineOptions(chunk int) core.Options {
	return core.Options{
		ChunkSize:         chunk,
		WindowChunks:      32,
		WriteStallTimeout: 3 * time.Second,
		PingTimeout:       2 * time.Second,
	}
}

// MuxOptions are the protocol options of the session-multiplexing bench
// (one name per bench family; both slacken detection identically).
func MuxOptions(chunk int) core.Options {
	return EngineOptions(chunk)
}

// Quantiles summarises a latency sample for machine-readable reports
// (recovery-latency distributions in the chaos bench, hot-path latencies
// elsewhere). All values carry the caller's unit.
type Quantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	Max float64 `json:"max"`
}

// Summarize computes Quantiles over an unsorted sample (nearest-rank
// percentiles); a nil or empty sample yields the zero value.
func Summarize(sample []float64) Quantiles {
	if len(sample) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		i := int(q*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{
		N:   len(s),
		P50: rank(0.50),
		P90: rank(0.90),
		Max: s[len(s)-1],
	}
}

// MuxSessionCounts is the concurrency sweep of the session-multiplexing
// benchmark: how many overlapping broadcasts one set of engine processes
// carries. Shared by `kascade-bench -mux` so the BENCH_2.json rows cannot
// drift from the documented matrix.
var MuxSessionCounts = []int{1, 4, 16}

// MuxBroadcast pushes `sessions` concurrent broadcasts of size bytes each
// through one shared Engine per fabric host, all under the default bulk
// class. See MuxBroadcastClasses.
func MuxBroadcast(sessions, nodes int, size int64, chunk int) ([]*core.SessionResult, time.Duration, error) {
	return MuxBroadcastClasses(sessions, nodes, size, chunk, nil)
}

// MuxBroadcastClasses pushes `sessions` concurrent broadcasts of size
// bytes each through one shared Engine per fabric host: every host runs a
// single data listener and the overlapping sessions are routed by their
// session IDs, exactly as a production agent carries overlapping
// broadcasts on one advertised port. classFor assigns each session its
// priority class (nil runs everything as core.ClassBulk), exercising the
// engines' weighted scheduler and class-ordered admission. It returns the
// per-session results (every session verified failure-free and
// byte-complete) and the wall-clock time of the broadcast phase alone
// (setup and payload generation excluded).
func MuxBroadcastClasses(sessions, nodes int, size int64, chunk int, classFor func(s int) string) ([]*core.SessionResult, time.Duration, error) {
	fabric := transport.NewFabric(1 << 20)
	peers := make([]core.Peer, nodes)
	engines := make([]*core.Engine, nodes)
	for i := range peers {
		name := fmt.Sprintf("n%d", i+1)
		peers[i] = core.Peer{Name: name, Addr: name + ":7000"}
		e, err := core.NewEngine(fabric.Host(name), peers[i].Addr, core.EngineOptions{})
		if err != nil {
			return nil, 0, err
		}
		engines[i] = e
		defer e.Close()
	}

	configs := make([]core.SessionConfig, sessions)
	for s := 0; s < sessions; s++ {
		payload := Payload(size, 100+uint64(s))
		opts := MuxOptions(chunk)
		opts.Class = core.ClassBulk
		if classFor != nil {
			opts.Class = classFor(s)
		}
		configs[s] = core.SessionConfig{
			Peers:      peers,
			Opts:       opts,
			Session:    core.SessionID(s + 1),
			NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
			EngineFor:  func(i int) *core.Engine { return engines[i] },
			SinkFor:    func(int) io.Writer { return io.Discard },
			InputFile:  NewReaderAt(payload),
			InputSize:  size,
		}
	}

	results := make([]*core.SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = core.RunSession(context.Background(), configs[s])
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for s := 0; s < sessions; s++ {
		switch {
		case errs[s] != nil:
			return results, elapsed, fmt.Errorf("benchkit: session %d: %w", s+1, errs[s])
		case len(results[s].Report.Failures) != 0:
			return results, elapsed, fmt.Errorf("benchkit: session %d failures: %v", s+1, results[s].Report)
		case results[s].Report.TotalBytes != uint64(size):
			return results, elapsed, fmt.Errorf("benchkit: session %d delivered %d of %d bytes", s+1, results[s].Report.TotalBytes, size)
		}
	}
	return results, elapsed, nil
}

// EngineBroadcast pushes size bytes through a real nodes-long pipeline
// over an in-memory fabric with the given chunk size, discarding sinks. It
// is one benchmark iteration: all listeners, nodes and pipes are fresh.
func EngineBroadcast(nodes int, size int64, chunk int) (*core.SessionResult, error) {
	return Spec{Nodes: nodes, Size: size, Chunk: chunk}.Broadcast()
}
