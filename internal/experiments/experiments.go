// Package experiments defines one reproducible experiment per table/figure
// of the paper's evaluation (§IV), mapping each onto the simulator models
// (internal/simbcast) over calibrated topologies (internal/simnet,
// internal/topology, internal/distem).
//
// Absolute numbers are calibrated to the paper's measured plateaus (see the
// constants below and EXPERIMENTS.md); the point of each experiment is the
// *shape*: who wins, by what factor, and where the crossovers are.
//
// All experiments are deterministic given Config.Seed: run-to-run variance
// (the paper's 95% confidence intervals) comes from seeded jitter applied
// to link and relay rates, standing in for the real testbed's noise.
package experiments

import (
	"fmt"
	"math/rand"

	"kascade/internal/simbcast"
	"kascade/internal/simnet"
	"kascade/internal/stats"
	"kascade/internal/topology"
)

// Config tunes an experiment run.
type Config struct {
	// Reps is the number of repetitions per data point (default 3; the
	// paper uses up to 50 for Fig 15).
	Reps int
	// Seed drives all jitter; equal seeds give identical tables.
	Seed int64
	// Scale multiplies the paper's file sizes (1.0 = paper sizes;
	// benchmarks use smaller scales to keep iterations fast). Steady-
	// state throughput is nearly scale-invariant, so shapes survive.
	Scale float64
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig7".
	ID string
	// Title describes the experiment.
	Title string
	// Run produces the table.
	Run func(Config) *stats.Table
}

// Calibration constants (bytes/s): effective payload rates measured against
// the paper's plateaus rather than theoretical line rates.
const (
	eth1G       = 112e6  // 1 GbE effective TCP payload (paper Fig 7 plateau)
	eth1GUp     = 1.12e9 // 10 Gbit ToR uplinks of the Fig 1 fat tree
	eth10G      = 1.12e9 // 10 GbE effective payload (Fig 8)
	ipoib       = 2.2e9  // IP over InfiniBand, 20 Gbit (Fig 9)
	ibNative    = 2.4e9  // native InfiniBand for MPI/IB (Fig 9)
	relayKas10G = 280e6  // Kascade single-thread copy ceiling on 10 GbE (Fig 8)
	relayKasIB  = 300e6  // ... and on IPoIB (Fig 9)
	relayMPI10G = 450e6  // MPI broadcast ceiling on 10 GbE (Fig 8)
	relayMPIIB  = 700e6  // MPI over native IB (Fig 9, small node counts)
	relayUDP10G = 330e6  // UDPCast sender ceiling on 10 GbE (Fig 8)
	relayTakTuk = 38e6   // TakTuk's perl command-channel encoding (Fig 7)

	// Effective sequential write rates by access pattern (§II-A1: write
	// patterns matter more than raw disk speed; raw disk is 83.5 MB/s,
	// Fig 11). Kascade writes large sequential chunks; MPI writes 1 MB
	// segments; UDPCast writes slice bursts; TakTuk small blocks.
	diskKascade = 48e6
	diskMPI     = 42e6
	diskUDPCast = 38e6
	diskTakTuk  = 30e6

	tcpWindow = 1.5e6 // per-connection TCP window for WAN paths (Fig 13)
)

// jitter returns v scattered by ±frac, seeded by rng.
func jitter(rng *rand.Rand, v, frac float64) float64 {
	if v == 0 {
		return 0
	}
	return v * (1 + frac*(rng.Float64()*2-1))
}

// fatTreeN builds a fat tree with exactly n nodes, perSwitch per switch.
func fatTreeN(n, perSwitch int, edge, uplink float64) *topology.Cluster {
	switches := (n + perSwitch - 1) / perSwitch
	if switches < 1 {
		switches = 1
	}
	ft := topology.FatTree("n", switches, perSwitch, edge, uplink)
	ft.Nodes = ft.Nodes[:n]
	return ft
}

// method tags the broadcast implementations under evaluation.
type method string

const (
	mKascade    method = "Kascade"
	mKascadeOrd method = "Kascade/ordered"
	mTakTukCh   method = "TakTuk/chain"
	mTakTukTr   method = "TakTuk/tree"
	mUDPCast    method = "UDPCast"
	mMPIEth     method = "MPI/Eth"
	mMPIIB      method = "MPI/IB"
)

// relayFor returns the per-node forwarding ceiling of a method on a given
// network generation ("1g", "10g", "ib").
func relayFor(m method, network string) float64 {
	switch m {
	case mKascade, mKascadeOrd:
		switch network {
		case "10g":
			return relayKas10G
		case "ib":
			return relayKasIB
		}
		return 0
	case mTakTukCh, mTakTukTr:
		return relayTakTuk
	case mUDPCast:
		if network == "10g" {
			return relayUDP10G
		}
		return 0
	case mMPIEth, mMPIIB:
		switch network {
		case "10g":
			return relayMPI10G
		case "ib":
			return relayMPIIB
		}
		return 0
	}
	return 0
}

// diskFor returns a method's effective write rate when sinks are disks.
func diskFor(m method) float64 {
	switch m {
	case mKascade, mKascadeOrd:
		return diskKascade
	case mTakTukCh, mTakTukTr:
		return diskTakTuk
	case mUDPCast:
		return diskUDPCast
	default:
		return diskMPI
	}
}

// runPoint executes one (method, topology, order) simulation and returns
// throughput in MB/s.
type pointSpec struct {
	method   method
	topo     *topology.Cluster
	order    topology.Order
	bytes    int64
	rates    simnet.NodeRates
	startup  float64
	chunk    int64
	failures []simbcast.NodeFailure
	// mpiSync makes the MPI model synchronize per segment (WAN runs:
	// MPI_Bcast of each 1 MB fragment completes before the next starts,
	// which is what makes MPI latency-bound in Fig 13).
	mpiSync bool
}

func runPoint(p pointSpec) float64 {
	sim := simnet.New()
	net := simnet.NewNetwork(sim)
	cluster := simnet.BuildCluster(net, p.topo, p.rates)
	var res simbcast.Result
	switch p.method {
	case mKascade, mKascadeOrd:
		res = simbcast.Kascade(cluster, p.order, p.bytes, simbcast.KascadeParams{
			ChunkSize: p.chunk, StartupTime: p.startup,
		}, p.failures)
	case mTakTukCh:
		res = simbcast.Tree(cluster, p.order, p.bytes, simbcast.TreeParams{
			ChunkSize: p.chunk, Children: simbcast.ChainChildren,
			PerChunkAck: true, StartupTime: p.startup,
		})
	case mTakTukTr:
		// TakTuk's adaptive tree reaches nearby nodes first, so its
		// shape follows the topology (see LocalityHeapChildren).
		groupOf := func(pos int) int { return p.topo.Nodes[p.order[pos]].Switch }
		res = simbcast.Tree(cluster, p.order, p.bytes, simbcast.TreeParams{
			ChunkSize: p.chunk, Children: simbcast.LocalityHeapChildren(2, groupOf),
			PerChunkAck: true, StartupTime: p.startup,
		})
	case mUDPCast:
		res = simbcast.UDPCast(cluster, p.order, p.bytes, simbcast.UDPCastParams{
			StartupTime: p.startup,
		})
	case mMPIEth:
		children := simbcast.ChainChildren
		depth := 0 // default
		if p.mpiSync {
			// WAN: the home-made loop broadcasts fragment k+1 only
			// after MPI_Bcast of fragment k returned — binomial
			// shape, one segment in flight, per-segment sync.
			children = simbcast.BinomialChildrenFn
			depth = 1
		}
		res = simbcast.Tree(cluster, p.order, p.bytes, simbcast.TreeParams{
			ChunkSize: p.chunk, Children: children, Depth: depth,
			PerChunkAck: p.mpiSync, StartupTime: p.startup,
		})
	case mMPIIB:
		res = simbcast.Tree(cluster, p.order, p.bytes, simbcast.TreeParams{
			ChunkSize: p.chunk, Children: simbcast.BinomialChildrenFn,
			StartupTime: p.startup,
		})
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", p.method))
	}
	return res.Throughput(p.bytes) / 1e6
}

// scaleBytes applies Config.Scale with a sane floor.
func scaleBytes(c Config, bytes int64) int64 {
	scaled := int64(float64(bytes) * c.Scale)
	if scaled < 32<<20 {
		scaled = 32 << 20
	}
	return scaled
}

// All returns every experiment, figures first, ablations after.
func All() []Experiment {
	return []Experiment{
		Figure7(), Figure8(), Figure9(), Figure10(), Figure11(),
		Figure13(), Figure14(), Figure15(),
		AblationTimeout(), AblationWindow(), AblationArity(),
		AblationStartup(), AblationDepth(),
	}
}

// Find looks an experiment up by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
