package experiments

import (
	"fmt"
	"math/rand"

	"kascade/internal/deploy"
	"kascade/internal/distem"
	"kascade/internal/simbcast"
	"kascade/internal/simnet"
	"kascade/internal/stats"
	"kascade/internal/topology"
)

// Ablations probe the design choices DESIGN.md calls out, beyond what the
// paper itself measured. They use the same calibrated worlds as the
// figures, so numbers are directly comparable.

// AblationTimeout sweeps the §III-D1 detection timeout under the paper's
// worst fault scenario (10% sequential failures). The paper's conclusion —
// "Kascade ... could be tuned according to the network used in order to
// reduce timeouts" — predicts throughput recovering as the timer shrinks.
func AblationTimeout() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 5<<30)
		timeouts := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
		table := &stats.Table{
			Title:   "Ablation: detection timeout under 10% sequential failures",
			XLabel:  "timeout (s)",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"Kascade"},
		}
		var scenario distem.Scenario
		for _, sc := range distem.Scenarios() {
			if sc.Name == "10% seq. failures" {
				scenario = sc
			}
		}
		order := make([]int, 100)
		for i := range order {
			order[i] = i
		}
		for ti, d := range timeouts {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(ti)*104729))
				params := distem.DefaultPlatform()
				params.VnodeRelayRate = jitter(rng, params.VnodeRelayRate, 0.03)
				sim := simnet.New()
				pl := distem.NewPlatform(simnet.NewNetwork(sim), params)
				res := simbcast.Kascade(pl, order, bytes, simbcast.KascadeParams{
					ChunkSize: 32 << 20, DetectTimeout: d,
				}, scenario.Failures)
				sample.Add(res.Throughput(bytes) / 1e6)
			}
			table.AddRow(fmt.Sprintf("%.2f", d), stats.FromSample(&sample))
		}
		return table
	}
	return Experiment{ID: "abl-timeout", Title: "Detection timeout sweep", Run: run}
}

// AblationWindow sweeps the replay window (§III-D2): a small window forces
// recovering successors onto the PGET path; throughput should be nearly
// window-independent (recovery is rare) while the gap-fetch count falls as
// the window grows.
func AblationWindow() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 2<<30)
		windows := []int{2, 4, 8, 16, 32}
		table := &stats.Table{
			Title:   "Ablation: replay window under one mid-transfer failure",
			XLabel:  "window (chunks)",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"Kascade", "gap fetches"},
		}
		for wi, wch := range windows {
			var tput, fetches stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(wi)*104729))
				topo := fatTreeN(51, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				sim := simnet.New()
				cluster := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{
					DiskRate: jitter(rng, diskKascade, 0.05), // disks build pipeline lag
				})
				res := simbcast.Kascade(cluster, topo.TopologyOrder(), bytes, simbcast.KascadeParams{
					WindowChunks: wch,
				}, []simbcast.NodeFailure{{Pos: 25, At: 2.0}})
				tput.Add(res.Throughput(bytes) / 1e6)
				fetches.Add(float64(res.GapFetches))
			}
			table.AddRow(fmt.Sprintf("%d", wch), stats.FromSample(&tput), stats.FromSample(&fetches))
		}
		return table
	}
	return Experiment{ID: "abl-window", Title: "Replay window sweep", Run: run}
}

// AblationArity sweeps the arity of a *naive* (topology-unaware) heap tree
// on the Fig 7 setup. Unlike TakTuk's adaptive tree — which stays topology-
// local and therefore flat (Fig 7) — a naive heap crosses more switch
// uplinks as arity grows, so throughput falls with arity: a quantified
// argument for why tree shape must follow the topology (§II-A2).
func AblationArity() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 2<<30)
		arities := []int{1, 2, 4, 8}
		table := &stats.Table{
			Title:   "Ablation: TakTuk tree arity (Fig 7 setup, 100 clients)",
			XLabel:  "arity",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"TakTuk"},
		}
		for ai, k := range arities {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(ai)*104729))
				topo := fatTreeN(101, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				sim := simnet.New()
				cluster := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{
					RelayRate: jitter(rng, relayTakTuk, 0.03),
				})
				res := simbcast.Tree(cluster, topo.TopologyOrder(), bytes, simbcast.TreeParams{
					Children: simbcast.HeapChildren(k), PerChunkAck: true,
				})
				sample.Add(res.Throughput(bytes) / 1e6)
			}
			table.AddRow(fmt.Sprintf("%d", k), stats.FromSample(&sample))
		}
		return table
	}
	return Experiment{ID: "abl-arity", Title: "TakTuk arity sweep", Run: run}
}

// AblationStartup sweeps the windowed-startup window (§III-B) on the small-
// file experiment: larger windows amortize the connection rounds, which is
// the lever behind Kascade's Fig 14 deficit.
func AblationStartup() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := int64(50e6)
		windows := []int{10, 25, 50, 100, 200}
		table := &stats.Table{
			Title:   "Ablation: startup window (50 MB, 200 clients)",
			XLabel:  "window",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"Kascade"},
		}
		for wi, w := range windows {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(wi)*104729))
				topo := fatTreeN(201, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				sim := simnet.New()
				cluster := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{})
				startup := deploy.StartupTime(deploy.Windowed, 200, deploy.Params{
					Window: w, ConnectTime: 0.45, SelfCopyTime: 0.8,
				})
				res := simbcast.Kascade(cluster, topo.TopologyOrder(), bytes, simbcast.KascadeParams{
					StartupTime: jitter(rng, startup, 0.05),
				}, nil)
				sample.Add(res.Throughput(bytes) / 1e6)
			}
			table.AddRow(fmt.Sprintf("%d", w), stats.FromSample(&sample))
		}
		return table
	}
	return Experiment{ID: "abl-startup", Title: "Startup window sweep", Run: run}
}

// AblationDepth sweeps the per-hop pipelining depth on the Fig 13 WAN
// chain: with 16 ms hops, depth 1 serializes chunk round trips while
// deeper pipelines hide the latency until the TCP-window cap takes over.
func AblationDepth() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 1<<30)
		depths := []int{1, 2, 4, 8}
		table := &stats.Table{
			Title:   "Ablation: pipeline depth on the 6-site WAN chain",
			XLabel:  "depth (chunks in flight)",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"Kascade"},
		}
		for di, d := range depths {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(di)*104729))
				sample.Add(runWANDepth(rng, bytes, d))
			}
			table.AddRow(fmt.Sprintf("%d", d), stats.FromSample(&sample))
		}
		return table
	}
	return Experiment{ID: "abl-depth", Title: "WAN pipeline depth sweep", Run: run}
}

// runWANDepth runs one Kascade broadcast over the full Fig 13 chain with
// the given pipelining depth and returns MB/s.
func runWANDepth(rng *rand.Rand, bytes int64, depth int) float64 {
	specs := []topology.SiteSpec{fig13Nancy()}
	specs = append(specs, fig13Sites...)
	topo := topology.MultiSite(specs, jitter(rng, eth1G, 0.02), eth1GUp, 0.008)
	sim := simnet.New()
	cluster := simnet.BuildCluster(simnet.NewNetwork(sim), topo, simnet.NodeRates{
		TCPWindow: tcpWindow,
	})
	res := simbcast.Kascade(cluster, topo.TopologyOrder(), bytes, simbcast.KascadeParams{
		ChunkSize: 1 << 20, Depth: depth,
	}, nil)
	return res.Throughput(bytes) / 1e6
}
