package experiments

import (
	"fmt"
	"math/rand"

	"kascade/internal/deploy"
	"kascade/internal/distem"
	"kascade/internal/simbcast"
	"kascade/internal/simnet"
	"kascade/internal/stats"
	"kascade/internal/topology"
)

// fig7Clients is the client sweep used by Figures 7, 10 and 14.
var fig7Clients = []int{1, 25, 50, 75, 100, 125, 150, 175, 200}

// sweep runs methods over x-axis points into a table. build must return a
// fully parameterised pointSpec for (method, x, rep-seeded rng).
func sweep(cfg Config, title, xlabel string, methods []method, xs []int,
	build func(m method, x int, rng *rand.Rand) pointSpec) *stats.Table {

	cfg = cfg.withDefaults()
	cols := make([]string, len(methods))
	for i, m := range methods {
		cols[i] = string(m)
	}
	table := &stats.Table{
		Title:   title,
		XLabel:  xlabel,
		YLabel:  "Throughput (MB/s)",
		Columns: cols,
	}
	for _, x := range xs {
		cells := make([]stats.Cell, len(methods))
		for mi, m := range methods {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(x)*104729 + int64(mi)*1299709))
				sample.Add(runPoint(build(m, x, rng)))
			}
			cells[mi] = stats.FromSample(&sample)
		}
		table.AddRow(fmt.Sprintf("%d", x), cells...)
	}
	return table
}

// Figure7 reproduces Fig 7: raw performance and scalability on 1 GbE, a
// 2 GB file from RAM to /dev/null, up to 200 clients. Expected shape:
// Kascade and MPI/Eth flat near link speed; UDPCast similar until ~100
// clients then degrading; both TakTuk variants flat and low.
func Figure7() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 2<<30)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mUDPCast, mMPIEth}
		return sweep(cfg, "Figure 7: 1 GbE scalability (2 GB, RAM to /dev/null)",
			"clients", methods, fig7Clients,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				topo := fatTreeN(clients+1, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes: bytes,
					rates: simnet.NodeRates{RelayRate: jitter(rng, relayFor(m, "1g"), 0.03)},
				}
			})
	}
	return Experiment{ID: "fig7", Title: "Raw performance and scalability (1 GbE)", Run: run}
}

// Figure8 reproduces Fig 8: 14 nodes on 10 GbE, 5 GB file. Nobody
// saturates; per-node memory-copy ceilings dominate: MPI > UDPCast >
// Kascade > TakTuk.
func Figure8() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 5<<30)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mUDPCast, mMPIEth}
		xs := []int{1, 3, 5, 7, 9, 11, 13}
		return sweep(cfg, "Figure 8: 10 GbE performance (5 GB, 14 nodes)",
			"clients", methods, xs,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				topo := fatTreeN(clients+1, 14, jitter(rng, eth10G, 0.03), 10*eth10G)
				// The paper observes MPI fluctuating wildly on 10 GbE
				// (3-5 Gbit/s): widen its jitter.
				frac := 0.05
				if m == mMPIEth {
					frac = 0.2
				}
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes: bytes,
					rates: simnet.NodeRates{RelayRate: jitter(rng, relayFor(m, "10g"), frac)},
				}
			})
	}
	return Experiment{ID: "fig8", Title: "High-performance networks: 10 GbE", Run: run}
}

// Figure9 reproduces Fig 9: IP over InfiniBand (20 Gbit), 5 GB, two
// switches with 120 nodes on the first. MPI/IB (native IB, segmented
// binomial) is fastest at small scale but collapses past 120 nodes when
// its topology-unaware tree saturates the inter-switch link; Kascade is
// slower but flat.
func Figure9() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 5<<30)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mMPIIB}
		xs := []int{1, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
		return sweep(cfg, "Figure 9: IP over InfiniBand (5 GB, 2 switches x 120)",
			"clients", methods, xs,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				edge, uplink := ipoib, ipoib
				if m == mMPIIB {
					edge, uplink = ibNative, ibNative
				}
				topo := fatTreeN(clients+1, 120, jitter(rng, edge, 0.03), uplink)
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes: bytes,
					rates: simnet.NodeRates{RelayRate: jitter(rng, relayFor(m, "ib"), 0.05)},
				}
			})
	}
	return Experiment{ID: "fig9", Title: "High-performance networks: IP over InfiniBand", Run: run}
}

// Figure10 reproduces Fig 10: the Fig 7 experiment with the node order
// randomized (single L2 network). Kascade and MPI (both chains) collapse;
// the Kascade/ordered reference stays at link speed.
func Figure10() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 2<<30)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mMPIEth, mKascadeOrd}
		return sweep(cfg, "Figure 10: random node ordering (2 GB, 1 GbE)",
			"clients", methods, fig7Clients,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				topo := fatTreeN(clients+1, 30, jitter(rng, eth1G, 0.02), eth1GUp)
				order := topo.RandomOrder(rng.Int63())
				if m == mKascadeOrd {
					order = topo.TopologyOrder()
				}
				return pointSpec{
					method: m, topo: topo, order: order, bytes: bytes,
					rates: simnet.NodeRates{RelayRate: jitter(rng, relayFor(m, "1g"), 0.03)},
				}
			})
	}
	return Experiment{ID: "fig10", Title: "Impact of topology and ordering", Run: run}
}

// Figure11 reproduces Fig 11: the 2 GB broadcast written to 83.5 MB/s
// disks, up to 30 clients. Everyone is disk-bound; Kascade's sequential
// large-chunk writes give it the best effective rate (~45 MB/s).
func Figure11() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 2<<30)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mUDPCast, mMPIEth}
		xs := []int{1, 5, 10, 15, 20, 25, 30}
		return sweep(cfg, "Figure 11: disk-bound broadcast (2 GB to disk, 1 GbE)",
			"clients", methods, xs,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				topo := fatTreeN(clients+1, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes: bytes,
					rates: simnet.NodeRates{
						RelayRate: jitter(rng, relayFor(m, "1g"), 0.03),
						DiskRate:  jitter(rng, diskFor(m), 0.05),
					},
				}
			})
	}
	return Experiment{ID: "fig11", Title: "Impact of disk I/O", Run: run}
}

// fig13Sites lists the remote sites in the paper's order, with one-way
// backbone latencies calibrated to Grid'5000's geography (~16 ms inter-site
// RTT on average, growing with distance). Each site states its own 10 GbE
// switch->core uplink explicitly — MultiSite no longer conflates the site
// uplink with the WAN backbone rate (it defaults site uplinks to edgeCap).
var fig13Sites = []topology.SiteSpec{
	{Name: "lille", Nodes: 1, LatencySec: 0.005, UplinkCapacity: eth1GUp},
	{Name: "grenoble", Nodes: 1, LatencySec: 0.007, UplinkCapacity: eth1GUp},
	{Name: "luxembourg", Nodes: 1, LatencySec: 0.008, UplinkCapacity: eth1GUp},
	{Name: "lyon", Nodes: 1, LatencySec: 0.009, UplinkCapacity: eth1GUp},
	{Name: "rennes", Nodes: 1, LatencySec: 0.011, UplinkCapacity: eth1GUp},
	{Name: "sophia", Nodes: 1, LatencySec: 0.013, UplinkCapacity: eth1GUp},
}

// fig13Nancy is the sender's site (two nodes, closest to the backbone).
func fig13Nancy() topology.SiteSpec {
	return topology.SiteSpec{Name: "nancy", Nodes: 2, LatencySec: 0.002, UplinkCapacity: eth1GUp}
}

// Figure13 reproduces Fig 13: routed, heterogeneous, long-distance
// broadcast over up to 6 Grid'5000 sites, 1 GB file (MPI: 100 MB as in the
// paper). Kascade degrades gracefully with the per-connection TCP window;
// MPI suffers so badly from latency that TakTuk overtakes it.
func Figure13() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 1<<30)
		mpiBytes := scaleBytes(cfg, 100<<20)
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mMPIEth}
		xs := []int{0, 1, 2, 3, 4, 5, 6}
		return sweep(cfg, "Figure 13: multi-site WAN (1 GB; MPI: 100 MB)",
			"sites", methods, xs,
			func(m method, sites int, rng *rand.Rand) pointSpec {
				specs := []topology.SiteSpec{fig13Nancy()}
				specs = append(specs, fig13Sites[:sites]...)
				topo := topology.MultiSite(specs, jitter(rng, eth1G, 0.02), eth1GUp, 0.008)
				b := bytes
				if m == mMPIEth {
					b = mpiBytes
				}
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes:   b,
					chunk:   1 << 20, // latency must bite per chunk on WAN
					mpiSync: true,
					rates: simnet.NodeRates{
						RelayRate: jitter(rng, relayFor(m, "1g"), 0.03),
						TCPWindow: tcpWindow,
					},
				}
			})
	}
	return Experiment{ID: "fig13", Title: "Internet-like heterogeneous networks", Run: run}
}

// startupFor models each method's deployment cost for n clients (§III-B,
// Fig 14): Kascade pays TakTuk's windowed startup plus copying itself;
// TakTuk itself uses its adaptive tree; MPI and UDPCast have efficient
// native launchers.
func startupFor(m method, n int) float64 {
	switch m {
	case mKascade, mKascadeOrd:
		return deploy.StartupTime(deploy.Windowed, n, deploy.Params{
			Window: 50, ConnectTime: 0.45, SelfCopyTime: 0.8,
		})
	case mTakTukCh, mTakTukTr:
		return deploy.StartupTime(deploy.AdaptiveTree, n, deploy.Params{
			Arity: 2, ConnectTime: 0.45,
		})
	case mUDPCast:
		return 0.5 + 0.002*float64(n)
	default: // MPI's mpirun
		return 0.3 + 0.0015*float64(n)
	}
}

// Figure14 reproduces Fig 14: a small 50 MB file, where setup time
// dominates and the methods with efficient startup (MPI, UDPCast) win.
func Figure14() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := int64(50e6) // small by construction; Scale does not apply
		methods := []method{mKascade, mTakTukCh, mTakTukTr, mUDPCast, mMPIEth}
		return sweep(cfg, "Figure 14: small file (50 MB, 1 GbE, including startup)",
			"clients", methods, fig7Clients,
			func(m method, clients int, rng *rand.Rand) pointSpec {
				topo := fatTreeN(clients+1, 35, jitter(rng, eth1G, 0.02), eth1GUp)
				return pointSpec{
					method: m, topo: topo, order: topo.TopologyOrder(),
					bytes:   bytes,
					startup: jitter(rng, startupFor(m, clients), 0.1),
					rates:   simnet.NodeRates{RelayRate: jitter(rng, relayFor(m, "1g"), 0.03)},
				}
			})
	}
	return Experiment{ID: "fig14", Title: "Overhead on small files", Run: run}
}

// Figure15 reproduces Fig 15: Kascade under injected failures on the
// Distem platform (100 vnodes folded onto 20 physical 1 GbE nodes, 5 GB
// file). The transfer always completes; simultaneous failures cost about
// one detection timeout, sequential ones cost one timeout each.
func Figure15() Experiment {
	run := func(cfg Config) *stats.Table {
		cfg = cfg.withDefaults()
		bytes := scaleBytes(cfg, 5<<30)
		table := &stats.Table{
			Title:   "Figure 15: fault tolerance under Distem (5 GB, 100 vnodes)",
			XLabel:  "scenario",
			YLabel:  "Throughput (MB/s)",
			Columns: []string{"Kascade"},
		}
		order := make([]int, 100)
		for i := range order {
			order[i] = i
		}
		for si, sc := range distem.Scenarios() {
			var sample stats.Sample
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7919 + int64(si)*104729))
				params := distem.DefaultPlatform()
				params.VnodeRelayRate = jitter(rng, params.VnodeRelayRate, 0.03)
				sim := simnet.New()
				pl := distem.NewPlatform(simnet.NewNetwork(sim), params)
				res := simbcast.Kascade(pl, order, bytes, simbcast.KascadeParams{
					ChunkSize: 32 << 20,
				}, sc.Failures)
				sample.Add(res.Throughput(bytes) / 1e6)
			}
			table.AddRow(sc.Name, stats.FromSample(&sample))
		}
		return table
	}
	return Experiment{ID: "fig15", Title: "Fault tolerance (Distem)", Run: run}
}
