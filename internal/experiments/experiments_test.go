package experiments

import (
	"strings"
	"testing"

	"kascade/internal/stats"
)

// quickCfg keeps the shape tests fast: small files, 2 repetitions.
func quickCfg() Config { return Config{Reps: 2, Seed: 42, Scale: 0.05} }

// cell fetches the mean of (xLabel, column) from a table.
func cell(t *testing.T, tab *stats.Table, x, col string) float64 {
	t.Helper()
	ci := -1
	for i, c := range tab.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not in %v", col, tab.Columns)
	}
	for _, r := range tab.Rows {
		if r.X == x {
			return r.Cells[ci].Mean
		}
	}
	t.Fatalf("row %q not found", x)
	return 0
}

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "fig15"} {
		if _, ok := Find(id); !ok {
			t.Errorf("figure %s missing", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestFigure7Shape(t *testing.T) {
	tab := Figure7().Run(quickCfg())
	// Kascade nearly saturates and stays flat to 200 clients.
	k1, k200 := cell(t, tab, "1", "Kascade"), cell(t, tab, "200", "Kascade")
	if k200 < 95 || k200 > 118 {
		t.Errorf("Kascade at 200 clients: %.1f MB/s, want near link speed", k200)
	}
	if k200 < 0.9*k1 {
		t.Errorf("Kascade degrades with scale: %.1f -> %.1f", k1, k200)
	}
	// MPI/Eth matches Kascade (both pipelined chains).
	m200 := cell(t, tab, "200", "MPI/Eth")
	if m200 < 0.9*k200 || m200 > 1.1*k200 {
		t.Errorf("MPI/Eth at 200: %.1f vs Kascade %.1f", m200, k200)
	}
	// UDPCast degrades past 100 clients.
	u50, u200 := cell(t, tab, "50", "UDPCast"), cell(t, tab, "200", "UDPCast")
	if u200 > 0.85*u50 {
		t.Errorf("UDPCast should degrade: %.1f at 50 vs %.1f at 200", u50, u200)
	}
	// Both TakTuk variants are flat and low (about a third of the link).
	for _, col := range []string{"TakTuk/chain", "TakTuk/tree"} {
		v := cell(t, tab, "100", col)
		if v < 25 || v > 45 {
			t.Errorf("%s at 100 clients: %.1f MB/s, want ~35", col, v)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	tab := Figure8().Run(quickCfg())
	k, m := cell(t, tab, "13", "Kascade"), cell(t, tab, "13", "MPI/Eth")
	u, tt := cell(t, tab, "13", "UDPCast"), cell(t, tab, "13", "TakTuk/chain")
	// Nobody saturates 10 GbE (1120 MB/s)...
	for _, v := range []float64{k, m, u, tt} {
		if v > 700 {
			t.Errorf("method exceeds the paper's 10 GbE ceiling: %.1f", v)
		}
	}
	// ...and the ranking is MPI > UDPCast > Kascade > TakTuk.
	if !(m > u && u > k && k > tt) {
		t.Errorf("ranking broken: MPI %.1f, UDPCast %.1f, Kascade %.1f, TakTuk %.1f", m, u, k, tt)
	}
}

func TestFigure9Shape(t *testing.T) {
	tab := Figure9().Run(quickCfg())
	// MPI/IB is fastest at small scale...
	m40, k40 := cell(t, tab, "40", "MPI/IB"), cell(t, tab, "40", "Kascade")
	if m40 < k40 {
		t.Errorf("MPI/IB should win at 40 nodes: %.1f vs %.1f", m40, k40)
	}
	// ...but collapses once two switches are involved (>120 clients).
	m100, m200 := cell(t, tab, "100", "MPI/IB"), cell(t, tab, "200", "MPI/IB")
	if m200 > 0.5*m100 {
		t.Errorf("MPI/IB should collapse past 120 nodes: %.1f at 100 vs %.1f at 200", m100, m200)
	}
	// Kascade stays flat across the switch boundary.
	k200 := cell(t, tab, "200", "Kascade")
	if k200 < 0.85*k40 {
		t.Errorf("Kascade should scale: %.1f at 40 vs %.1f at 200", k40, k200)
	}
	// And past the boundary Kascade beats MPI.
	if k200 < m200 {
		t.Errorf("Kascade (%.1f) should beat MPI/IB (%.1f) at 200", k200, m200)
	}
}

func TestFigure10Shape(t *testing.T) {
	tab := Figure10().Run(quickCfg())
	krand, kord := cell(t, tab, "150", "Kascade"), cell(t, tab, "150", "Kascade/ordered")
	if krand > 0.6*kord {
		t.Errorf("random order should hurt Kascade: %.1f vs ordered %.1f", krand, kord)
	}
	if kord < 95 {
		t.Errorf("ordered reference fell: %.1f", kord)
	}
	// MPI's chain suffers the same way.
	mrand := cell(t, tab, "150", "MPI/Eth")
	if mrand > 0.6*kord {
		t.Errorf("random order should hurt MPI too: %.1f", mrand)
	}
}

func TestFigure11Shape(t *testing.T) {
	tab := Figure11().Run(quickCfg())
	k := cell(t, tab, "30", "Kascade")
	if k < 38 || k > 55 {
		t.Errorf("disk-bound Kascade: %.1f MB/s, want ~45", k)
	}
	// Kascade leads every other method.
	for _, col := range []string{"TakTuk/chain", "TakTuk/tree", "UDPCast", "MPI/Eth"} {
		if v := cell(t, tab, "30", col); v >= k {
			t.Errorf("%s (%.1f) should trail Kascade (%.1f) on disks", col, v, k)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	tab := Figure13().Run(quickCfg())
	k0, k6 := cell(t, tab, "0", "Kascade"), cell(t, tab, "6", "Kascade")
	if k6 >= k0 {
		t.Errorf("WAN hops must cost Kascade something: %.1f -> %.1f", k0, k6)
	}
	if k6 < 30 {
		t.Errorf("Kascade over 6 sites too slow: %.1f", k6)
	}
	// Kascade offers the best overall WAN performance; MPI is overtaken
	// by TakTuk (the paper's headline for this figure).
	m6, t6 := cell(t, tab, "6", "MPI/Eth"), cell(t, tab, "6", "TakTuk/chain")
	if k6 <= m6 || k6 <= t6 {
		t.Errorf("Kascade should lead on WAN: K %.1f, MPI %.1f, TakTuk %.1f", k6, m6, t6)
	}
	if m6 >= t6 {
		t.Errorf("MPI (%.1f) should fall below TakTuk (%.1f) on WAN", m6, t6)
	}
}

func TestFigure14Shape(t *testing.T) {
	tab := Figure14().Run(quickCfg())
	k, m := cell(t, tab, "200", "Kascade"), cell(t, tab, "200", "MPI/Eth")
	u := cell(t, tab, "200", "UDPCast")
	// Efficient-startup methods win on small files.
	if m <= k || u <= k {
		t.Errorf("MPI (%.1f) and UDPCast (%.1f) should beat Kascade (%.1f) on 50 MB", m, u, k)
	}
	// Everyone is far below link speed (startup dominates).
	if k > 60 || m > 90 {
		t.Errorf("small-file throughputs too high: K %.1f, MPI %.1f", k, m)
	}
}

func TestFigure15Shape(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 0.6 // the latest failure (t=28s) must land mid-transfer
	tab := Figure15().Run(cfg)
	ref := cell(t, tab, "no failure", "Kascade")
	if ref < 70 || ref > 90 {
		t.Errorf("no-failure reference %.1f MB/s, want ~80", ref)
	}
	for _, pct := range []string{"2%", "5%", "10%"} {
		sim := cell(t, tab, pct+" sim. failures", "Kascade")
		seq := cell(t, tab, pct+" seq. failures", "Kascade")
		if sim >= ref || seq >= ref {
			t.Errorf("%s: failures must cost throughput (ref %.1f, sim %.1f, seq %.1f)", pct, ref, sim, seq)
		}
		if seq >= sim {
			t.Errorf("%s: sequential (%.1f) should cost more than simultaneous (%.1f)", pct, seq, sim)
		}
	}
}

func TestAblationsProduceTables(t *testing.T) {
	cfg := quickCfg()
	for _, e := range []Experiment{AblationTimeout(), AblationWindow(), AblationArity(), AblationStartup(), AblationDepth()} {
		tab := e.Run(cfg)
		if len(tab.Rows) < 2 {
			t.Errorf("%s: too few rows", e.ID)
		}
		var sb strings.Builder
		tab.Render(&sb)
		if !strings.Contains(sb.String(), tab.Columns[0]) {
			t.Errorf("%s: render missing columns", e.ID)
		}
	}
}

func TestAblationTimeoutMonotone(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 0.6
	tab := AblationTimeout().Run(cfg)
	// Shorter detection timeouts recover more throughput under the 10%
	// sequential scenario.
	fast := cell(t, tab, "0.25", "Kascade")
	slow := cell(t, tab, "4.00", "Kascade")
	if fast <= slow {
		t.Errorf("shrinking the timeout should help: 0.25s %.1f vs 4s %.1f", fast, slow)
	}
}
