package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %g", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, sd=2: half-width = t(4)*2/sqrt(5) = 2.776*0.8944 = 2.4829
	var s Sample
	for _, v := range []float64{8, 9, 10, 11, 12} {
		s.Add(v)
	}
	want := 2.776 * s.StdDev() / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Fatalf("ci = %g, want %g", s.CI95(), want)
	}
}

func TestCI95DegenerateSamples(t *testing.T) {
	var s Sample
	if s.CI95() != 0 {
		t.Fatal("empty sample should have 0 CI")
	}
	s.Add(3)
	if s.CI95() != 0 {
		t.Fatal("singleton sample should have 0 CI")
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestTValue95TableAndInterpolation(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {5, 2.571}, {30, 2.042}, {120, 1.980}, {10000, 1.960},
	}
	for _, c := range cases {
		if got := TValue95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TValue95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
	// Interpolated value sits strictly between neighbours.
	if v := TValue95(35); v >= TValue95(30) || v <= TValue95(40) {
		t.Errorf("TValue95(35) = %g not between table neighbours", v)
	}
	if !math.IsInf(TValue95(0), 1) {
		t.Error("df=0 should be +Inf")
	}
}

// Property: TValue95 is monotonically non-increasing in df and bounded
// below by the normal critical value.
func TestTValueMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		d1, d2 := int(a)%500+1, int(b)%500+1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		v1, v2 := TValue95(d1), TValue95(d2)
		return v1 >= v2-1e-12 && v2 >= 1.960-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford accumulation matches the two-pass formulas.
func TestWelfordMatchesTwoPassQuick(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := rnd.Intn(50) + 2
		vals := make([]float64, n)
		var s Sample
		for i := range vals {
			vals[i] = rnd.NormFloat64()*10 + 50
			s.Add(vals[i])
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(n)
		var m2 float64
		for _, v := range vals {
			m2 += (v - mean) * (v - mean)
		}
		variance := m2 / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "Figure X",
		XLabel:  "clients",
		YLabel:  "Throughput (MB/s)",
		Columns: []string{"kascade", "taktuk"},
	}
	var a, b Sample
	for _, v := range []float64{110, 112, 111} {
		a.Add(v)
	}
	for _, v := range []float64{34, 36, 35} {
		b.Add(v)
	}
	tab.AddRow("50", FromSample(&a), FromSample(&b))
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure X", "clients", "kascade", "taktuk", "111.0", "35.0", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cell/column mismatch")
		}
	}()
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("x", Cell{})
}

func TestMBps(t *testing.T) {
	if got := MBps(2e9, 20); math.Abs(got-100) > 1e-9 {
		t.Fatalf("MBps = %g", got)
	}
	if MBps(100, 0) != 0 {
		t.Fatal("zero duration must give 0")
	}
}
