// Package stats provides the statistical helpers the paper's evaluation
// methodology calls for: sample means with 95% confidence intervals from
// the Student t-distribution (§IV: "results are presented with their
// respective 95% confidence intervals according to the Student's
// t-distribution"), plus the table/series containers the experiment
// harness renders.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of one measured quantity.
type Sample struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min and Max return the observed extremes.
func (s *Sample) Min() float64 { return s.min }
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the Student t-distribution with n-1 degrees of freedom.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TValue95(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
}

// String formats the sample as "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean(), s.CI95())
}

// tTable95 holds two-sided 95% critical values (0.975 quantile) of the
// Student t-distribution indexed by degrees of freedom.
var tTable95 = []struct {
	df int
	t  float64
}{
	{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
	{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
	{11, 2.201}, {12, 2.179}, {13, 2.160}, {14, 2.145}, {15, 2.131},
	{16, 2.120}, {17, 2.110}, {18, 2.101}, {19, 2.093}, {20, 2.086},
	{21, 2.080}, {22, 2.074}, {23, 2.069}, {24, 2.064}, {25, 2.060},
	{26, 2.056}, {27, 2.052}, {28, 2.048}, {29, 2.045}, {30, 2.042},
	{40, 2.021}, {50, 2.009}, {60, 2.000}, {80, 1.990}, {100, 1.984},
	{120, 1.980},
}

// TValue95 returns the two-sided 95% Student-t critical value for the given
// degrees of freedom, interpolating between tabulated values and converging
// to the normal quantile 1.960 for large df.
func TValue95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	i := sort.Search(len(tTable95), func(i int) bool { return tTable95[i].df >= df })
	if i < len(tTable95) && tTable95[i].df == df {
		return tTable95[i].t
	}
	if i >= len(tTable95) {
		return 1.960
	}
	if i == 0 {
		return tTable95[0].t
	}
	lo, hi := tTable95[i-1], tTable95[i]
	frac := float64(df-lo.df) / float64(hi.df-lo.df)
	return lo.t + frac*(hi.t-lo.t)
}

// Cell is one table entry: an aggregated measurement.
type Cell struct {
	Mean float64
	CI   float64
	N    int
}

// FromSample converts a Sample into a Cell.
func FromSample(s *Sample) Cell {
	return Cell{Mean: s.Mean(), CI: s.CI95(), N: s.N()}
}

// Row is one x-axis point of a figure: the x label plus one cell per series.
type Row struct {
	X     string
	Cells []Cell
}

// Table is a rendered figure: one column per method (series), one row per
// x-axis point. It is the textual equivalent of the paper's plots.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
}

// AddRow appends a row; the number of cells must match Columns.
func (t *Table) AddRow(x string, cells ...Cell) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d cells for %d columns", x, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(w, "y: %s\n", t.YLabel)
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	cellText := func(c Cell) string {
		if c.N > 1 && c.CI > 0 {
			return fmt.Sprintf("%.1f ±%.1f", c.Mean, c.CI)
		}
		return fmt.Sprintf("%.1f", c.Mean)
	}
	for i, col := range t.Columns {
		widths[i+1] = len(col)
	}
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
		for i, c := range r.Cells {
			if n := len(cellText(c)); n > widths[i+1] {
				widths[i+1] = n
			}
		}
	}
	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}
	header := pad(t.XLabel, widths[0])
	for i, col := range t.Columns {
		header += "  " + pad(col, widths[i+1])
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, r := range t.Rows {
		line := pad(r.X, widths[0])
		for i, c := range r.Cells {
			line += "  " + pad(cellText(c), widths[i+1])
		}
		fmt.Fprintln(w, line)
	}
}

// MBps converts bytes and seconds into the paper's throughput unit
// (megabytes per second, SI: 1 MB = 1e6 bytes).
func MBps(bytes float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bytes / 1e6 / seconds
}
