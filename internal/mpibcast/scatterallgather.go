package mpibcast

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"kascade/internal/blockio"
	"kascade/internal/transport"
)

// Connection tag bytes: every dialer announces what the connection carries,
// so accepting ranks never have to guess.
const (
	tagScatter byte = 'S' // root -> rank: that rank's part, then close
	tagRing    byte = 'R' // left ring neighbour -> rank: allgather parts
)

// ScatterAllgatherConfig describes the third classic large-message
// broadcast (van de Geijn): the root scatters one part of the file to each
// rank, then a ring allgather circulates the parts until everyone holds the
// whole file. Open MPI's tuned collective selects it for very large
// messages on fully connected networks; it moves ~2x the bytes of a
// pipelined chain but spreads the load across every link, which is why it
// shines on non-blocking fabrics and suffers on oversubscribed ones.
//
// Unlike Chain/Binomial this needs the payload size upfront (parts are
// size/N), so the configuration takes the full payload instead of a reader.
type ScatterAllgatherConfig struct {
	Names []string
	Addrs []string
	// Payload is the full broadcast content, available at the root.
	Payload []byte
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration

	NetworkFor func(i int) transport.Network
	// SinkFor receives each rank's assembled copy, in order, at the end
	// (the allgather delivers parts out of order, so assembly is in
	// memory).
	SinkFor func(i int) io.Writer
}

// partRange returns the [lo,hi) byte range of part p among n parts.
func partRange(total, n, p int) (lo, hi int) {
	base := total / n
	rem := total % n
	lo = p * base
	if p < rem {
		lo += p
	} else {
		lo += rem
	}
	size := base
	if p < rem {
		size++
	}
	return lo, lo + size
}

// BroadcastScatterAllgather runs the collective in-process and returns the
// bytes delivered to every rank.
func BroadcastScatterAllgather(ctx context.Context, cfg ScatterAllgatherConfig) (uint64, error) {
	n := len(cfg.Names)
	if n == 0 || n != len(cfg.Addrs) {
		return 0, fmt.Errorf("mpibcast: need matching Names and Addrs")
	}
	if cfg.NetworkFor == nil {
		return 0, fmt.Errorf("mpibcast: NetworkFor is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if n == 1 {
		return uint64(len(cfg.Payload)), nil
	}

	listeners := make([]transport.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := cfg.NetworkFor(i).Listen(cfg.Addrs[i])
		if err != nil {
			for _, b := range listeners[:i] {
				if b != nil {
					b.Close()
				}
			}
			return 0, fmt.Errorf("mpibcast: binding %s: %w", cfg.Addrs[i], err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = runSAGRank(ctx, &cfg, listeners[r], addrs, r)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("mpibcast: rank %d: %w", r, err)
		}
	}
	return uint64(len(cfg.Payload)), nil
}

// runSAGRank executes one rank: scatter phase, then N-1 ring rounds where
// round k sends part (r-k mod n) rightward and receives part (r-1-k mod n)
// from the left.
func runSAGRank(ctx context.Context, cfg *ScatterAllgatherConfig, l transport.Listener, addrs []string, r int) error {
	n := len(addrs)
	total := len(cfg.Payload)
	parts := make([][]byte, n)
	mod := func(x int) int { return ((x % n) + n) % n }

	// Accept inbound connections (tagged) until we have the ring conn
	// and, on non-root ranks, the scatter part.
	type tagged struct {
		conn transport.Conn
		br   *bufio.Reader
		tag  byte
	}
	expect := 1
	if r != 0 {
		expect++
	}
	acceptC := make(chan tagged, 2)
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < expect; i++ {
			c, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			br := bufio.NewReaderSize(c, 64<<10)
			tag, err := br.ReadByte()
			if err != nil {
				acceptErr <- err
				return
			}
			acceptC <- tagged{conn: c, br: br, tag: tag}
		}
	}()

	// Dial the right ring neighbour.
	right, err := cfg.NetworkFor(r).Dial(addrs[mod(r+1)], cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("dialing ring successor: %w", err)
	}
	defer right.Close()
	if _, err := right.Write([]byte{tagRing}); err != nil {
		return err
	}

	// Root: scatter every part.
	if r == 0 {
		lo, hi := partRange(total, n, 0)
		parts[0] = cfg.Payload[lo:hi]
		for dst := 1; dst < n; dst++ {
			c, err := cfg.NetworkFor(0).Dial(addrs[dst], cfg.DialTimeout)
			if err != nil {
				return fmt.Errorf("scatter dial %d: %w", dst, err)
			}
			lo, hi := partRange(total, n, dst)
			_, werr := c.Write([]byte{tagScatter})
			if werr == nil {
				werr = blockio.WriteBlock(c, cfg.Payload[lo:hi])
			}
			c.Close()
			if werr != nil {
				return fmt.Errorf("scatter to %d: %w", dst, werr)
			}
		}
	}

	var leftReader *bufio.Reader
	for got := 0; got < expect; got++ {
		select {
		case err := <-acceptErr:
			return err
		case tc := <-acceptC:
			switch tc.tag {
			case tagScatter:
				f, err := blockio.Read(tc.br, nil)
				if err != nil {
					return fmt.Errorf("receiving scatter part: %w", err)
				}
				parts[r] = append([]byte(nil), f.Payload...)
				tc.conn.Close()
			case tagRing:
				leftReader = tc.br
				defer tc.conn.Close()
			default:
				return fmt.Errorf("unknown connection tag %q", tc.tag)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if leftReader == nil {
		return fmt.Errorf("ring predecessor never connected")
	}
	if parts[r] == nil && r != 0 {
		return fmt.Errorf("scatter part never arrived")
	}

	// Ring allgather.
	for k := 0; k < n-1; k++ {
		sendIdx := mod(r - k)
		var payload []byte
		if r == 0 {
			lo, hi := partRange(total, n, sendIdx)
			payload = cfg.Payload[lo:hi]
		} else {
			payload = parts[sendIdx]
			if payload == nil {
				return fmt.Errorf("round %d: part %d not yet received", k, sendIdx)
			}
		}
		if err := blockio.WriteBlock(right, payload); err != nil {
			return fmt.Errorf("ring send round %d: %w", k, err)
		}
		f, err := blockio.Read(leftReader, nil)
		if err != nil {
			return fmt.Errorf("ring recv round %d: %w", k, err)
		}
		if r != 0 {
			parts[mod(r-1-k)] = append([]byte(nil), f.Payload...)
		}
	}

	// Assemble in order into the sink.
	if cfg.SinkFor != nil && r != 0 {
		if sink := cfg.SinkFor(r); sink != nil {
			for p := 0; p < n; p++ {
				if parts[p] == nil {
					return fmt.Errorf("part %d missing after allgather", p)
				}
				if _, err := sink.Write(parts[p]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
