package mpibcast

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"kascade/internal/transport"
)

type safeBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *safeBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func TestBinomialTreeShape(t *testing.T) {
	// Classic 8-rank binomial tree rooted at 0.
	want := map[int][]int{
		0: {1, 2, 4},
		1: {3, 5},
		2: {6},
		3: {7},
		4: nil, 5: nil, 6: nil, 7: nil,
	}
	for r, w := range want {
		if got := BinomialChildren(r, 8); !reflect.DeepEqual(got, w) {
			t.Errorf("children(%d) = %v, want %v", r, got, w)
		}
	}
	for r, w := range map[int]int{1: 0, 2: 0, 3: 1, 4: 0, 5: 1, 6: 2, 7: 3} {
		if got := BinomialParent(r); got != w {
			t.Errorf("parent(%d) = %d, want %d", r, got, w)
		}
	}
	if BinomialParent(0) != -1 {
		t.Error("root must have no parent")
	}
}

// Property: the binomial parent/children relations are mutually consistent
// and every non-root rank has exactly one parent that lists it as a child.
func TestBinomialTreeConsistencyQuick(t *testing.T) {
	f := func(szRaw uint8) bool {
		n := int(szRaw)%60 + 2
		seen := make(map[int]int)
		for r := 0; r < n; r++ {
			for _, c := range BinomialChildren(r, n) {
				if c <= r || c >= n {
					return false
				}
				seen[c]++
				if BinomialParent(c) != r {
					return false
				}
			}
		}
		for r := 1; r < n; r++ {
			if seen[r] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func runBcast(t *testing.T, n, size int, algo Algorithm) {
	t.Helper()
	fabric := transport.NewFabric(0)
	names := make([]string, n)
	addrs := make([]string, n)
	sinks := make([]*safeBuf, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		addrs[i] = names[i] + ":8200"
		sinks[i] = &safeBuf{}
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(int64(size + n))).Read(data)
	res, err := Broadcast(context.Background(), Config{
		Names:       names,
		Addrs:       addrs,
		Algorithm:   algo,
		SegmentSize: 8 << 10,
		NetworkFor:  func(i int) transport.Network { return fabric.Host(names[i]) },
		Input:       bytes.NewReader(data),
		SinkFor:     func(i int) io.Writer { return sinks[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != uint64(size) {
		t.Fatalf("total %d, want %d", res.Total, size)
	}
	for i := 1; i < n; i++ {
		if sha256.Sum256(sinks[i].Bytes()) != sha256.Sum256(data) {
			t.Errorf("rank %d corrupted payload (algo %v)", i, algo)
		}
	}
}

func TestChainBcast(t *testing.T)        { runBcast(t, 7, 120<<10, Chain) }
func TestBinomialBcast(t *testing.T)     { runBcast(t, 12, 120<<10, Binomial) }
func TestBinomialNonPow2(t *testing.T)   { runBcast(t, 11, 64<<10, Binomial) }
func TestTwoRanks(t *testing.T)          { runBcast(t, 2, 20<<10, Binomial) }
func TestUnalignedSegments(t *testing.T) { runBcast(t, 5, 24<<10+99, Chain) }
func TestAlgorithmString(t *testing.T) {
	if Chain.String() != "chain" || Binomial.String() != "binomial" {
		t.Fatal("algorithm names")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm must format")
	}
}
