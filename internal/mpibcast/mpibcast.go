// Package mpibcast reimplements the paper's "MPI Broadcast" baseline: a
// home-made distribution loop that calls a segmented broadcast collective
// per 1 MB fragment (§IV). Open MPI's tuned collective component selects
// its algorithm by message size; at these sizes the relevant ones are the
// pipelined chain (which is why MPI/Eth saturates a 1 GbE network in Fig 7
// and degrades under random node orders in Fig 10 exactly like Kascade)
// and the segmented binomial tree (the topology-unaware shape whose
// inter-switch crossings collapse MPI/IB past 120 nodes in Fig 9).
//
// Both algorithms are implemented here over the shared transport; their
// performance models live in internal/simbcast.
package mpibcast

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"kascade/internal/blockio"
	"kascade/internal/transport"
)

// Algorithm selects the collective shape.
type Algorithm int

const (
	// Chain is the pipelined chain: rank i forwards each segment to rank
	// i+1. Open MPI tuned uses it for large messages.
	Chain Algorithm = iota
	// Binomial is the segmented binomial tree: rank 0 is the root; the
	// children of rank r are r | 1<<k for k above r's highest set bit.
	Binomial
)

func (a Algorithm) String() string {
	switch a {
	case Chain:
		return "chain"
	case Binomial:
		return "binomial"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config describes one MPI-style broadcast.
type Config struct {
	// Names and Addrs list the ranks; rank 0 is the root.
	Names []string
	Addrs []string
	// Algorithm selects chain or binomial (default Chain).
	Algorithm Algorithm
	// SegmentSize is the collective's segment granularity (default 1 MiB,
	// matching the paper's home-made loop buffer).
	SegmentSize int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration

	NetworkFor func(i int) transport.Network
	Input      io.Reader
	SinkFor    func(i int) io.Writer
}

func (c *Config) withDefaults() error {
	if len(c.Names) == 0 || len(c.Names) != len(c.Addrs) {
		return fmt.Errorf("mpibcast: need matching Names and Addrs")
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 1 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.NetworkFor == nil {
		return fmt.Errorf("mpibcast: NetworkFor is required")
	}
	if c.Input == nil {
		return fmt.Errorf("mpibcast: root needs an Input")
	}
	return nil
}

// BinomialChildren returns rank r's children in an n-rank binomial tree
// rooted at 0: r | 1<<k for every k at or above r's highest set bit,
// ordered largest-subtree-first (the standard MPI ordering).
func BinomialChildren(r, n int) []int {
	if n <= 1 {
		return nil
	}
	// Find the lowest k with 1<<k > r (i.e. above r's highest set bit;
	// k = 0 for the root).
	k := 0
	for 1<<k <= r {
		k++
	}
	var out []int
	for ; 1<<k < n; k++ {
		c := r | 1<<k
		if c < n && c != r {
			out = append(out, c)
		}
	}
	return out
}

// BinomialParent returns rank r's parent (clear the highest set bit).
func BinomialParent(r int) int {
	if r == 0 {
		return -1
	}
	k := 0
	for 1<<(k+1) <= r {
		k++
	}
	return r &^ (1 << k)
}

// Result summarises one broadcast.
type Result struct {
	Total   uint64
	Elapsed time.Duration
}

// Broadcast runs the collective in-process.
func Broadcast(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return Result{}, err
	}
	n := len(cfg.Names)

	listeners := make([]transport.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := cfg.NetworkFor(i).Listen(cfg.Addrs[i])
		if err != nil {
			for _, b := range listeners[:i] {
				if b != nil {
					b.Close()
				}
			}
			return Result{}, fmt.Errorf("mpibcast: binding %s: %w", cfg.Addrs[i], err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	children := func(r int) []int {
		if cfg.Algorithm == Binomial {
			return BinomialChildren(r, n)
		}
		if r+1 < n {
			return []int{r + 1}
		}
		return nil
	}

	start := time.Now()
	errs := make([]error, n)
	var total uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				total, errs[0] = runRoot(ctx, &cfg, addrs, children(0))
			} else {
				errs[i] = runRank(ctx, &cfg, addrs, listeners[i], i, children(i))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("mpibcast: rank %d (%s): %w", i, cfg.Names[i], err)
		}
	}
	return Result{Total: total, Elapsed: time.Since(start)}, nil
}

func dialRanks(cfg *Config, addrs []string, self int, ranks []int) ([]transport.Conn, error) {
	var conns []transport.Conn
	for _, r := range ranks {
		c, err := cfg.NetworkFor(self).Dial(addrs[r], cfg.DialTimeout)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, fmt.Errorf("dialing rank %d: %w", r, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

func runRoot(ctx context.Context, cfg *Config, addrs []string, childRanks []int) (uint64, error) {
	conns, err := dialRanks(cfg, addrs, 0, childRanks)
	if err != nil {
		return 0, err
	}
	defer closeAll(conns)
	buf := make([]byte, cfg.SegmentSize)
	var total uint64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		nr, rerr := io.ReadFull(cfg.Input, buf)
		if nr > 0 {
			for _, c := range conns {
				if err := blockio.WriteBlock(c, buf[:nr]); err != nil {
					return total, err
				}
			}
			total += uint64(nr)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			return total, rerr
		}
	}
	for _, c := range conns {
		if err := blockio.WriteEnd(c, total); err != nil {
			return total, err
		}
	}
	for _, c := range conns {
		if err := awaitDone(c); err != nil {
			return total, err
		}
	}
	return total, nil
}

func runRank(ctx context.Context, cfg *Config, addrs []string, l transport.Listener, rank int, childRanks []int) error {
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	conns, err := dialRanks(cfg, addrs, rank, childRanks)
	if err != nil {
		return err
	}
	defer closeAll(conns)
	var sink io.Writer
	if cfg.SinkFor != nil {
		sink = cfg.SinkFor(rank)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, cfg.SegmentSize)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := blockio.Read(br, buf)
		if err != nil {
			return err
		}
		switch f.Type {
		case blockio.TypeData:
			// Forward first (largest subtree first keeps the
			// pipeline moving), then deliver locally.
			for _, c := range conns {
				if err := blockio.WriteBlock(c, f.Payload); err != nil {
					return err
				}
			}
			if sink != nil {
				if _, err := sink.Write(f.Payload); err != nil {
					return err
				}
			}
		case blockio.TypeEnd:
			for _, c := range conns {
				if err := blockio.WriteEnd(c, f.Offset); err != nil {
					return err
				}
			}
			for _, c := range conns {
				if err := awaitDone(c); err != nil {
					return err
				}
			}
			return blockio.WriteDone(conn)
		default:
			return fmt.Errorf("unexpected frame %d", f.Type)
		}
	}
}

func awaitDone(c transport.Conn) error {
	br := bufio.NewReader(c)
	f, err := blockio.Read(br, nil)
	if err != nil {
		return err
	}
	if f.Type != blockio.TypeDone {
		return fmt.Errorf("expected DONE, got frame %d", f.Type)
	}
	return nil
}

func closeAll(conns []transport.Conn) {
	for _, c := range conns {
		c.Close()
	}
}
