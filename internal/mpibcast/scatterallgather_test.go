package mpibcast

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"kascade/internal/transport"
)

func TestPartRangeCoversPayloadExactly(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{100, 4}, {101, 4}, {7, 3}, {5, 8}, {0, 3}, {1, 1},
	} {
		prevHi := 0
		for p := 0; p < tc.n; p++ {
			lo, hi := partRange(tc.total, tc.n, p)
			if lo != prevHi {
				t.Fatalf("total=%d n=%d part %d: gap/overlap at %d (want %d)", tc.total, tc.n, p, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("negative part size")
			}
			prevHi = hi
		}
		if prevHi != tc.total {
			t.Fatalf("total=%d n=%d: parts cover %d", tc.total, tc.n, prevHi)
		}
	}
}

// Property: parts partition any payload for any rank count.
func TestPartRangePartitionQuick(t *testing.T) {
	f := func(totalRaw uint16, nRaw uint8) bool {
		total := int(totalRaw)
		n := int(nRaw)%32 + 1
		prevHi := 0
		for p := 0; p < n; p++ {
			lo, hi := partRange(total, n, p)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func runSAG(t *testing.T, n, size int) {
	t.Helper()
	fabric := transport.NewFabric(0)
	names := make([]string, n)
	addrs := make([]string, n)
	sinks := make([]*safeBuf, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		addrs[i] = names[i] + ":8300"
		sinks[i] = &safeBuf{}
	}
	payload := make([]byte, size)
	rand.New(rand.NewSource(int64(n*size + 1))).Read(payload)
	total, err := BroadcastScatterAllgather(context.Background(), ScatterAllgatherConfig{
		Names:      names,
		Addrs:      addrs,
		Payload:    payload,
		NetworkFor: func(i int) transport.Network { return fabric.Host(names[i]) },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != uint64(size) {
		t.Fatalf("total %d, want %d", total, size)
	}
	want := sha256.Sum256(payload)
	for i := 1; i < n; i++ {
		if sha256.Sum256(sinks[i].Bytes()) != want {
			t.Errorf("rank %d assembled a corrupt copy (%d bytes)", i, len(sinks[i].Bytes()))
		}
	}
}

func TestScatterAllgatherSmallRing(t *testing.T)   { runSAG(t, 3, 90<<10) }
func TestScatterAllgatherLargerRing(t *testing.T)  { runSAG(t, 8, 200<<10) }
func TestScatterAllgatherUnevenParts(t *testing.T) { runSAG(t, 7, 100<<10+13) }
func TestScatterAllgatherTwoRanks(t *testing.T)    { runSAG(t, 2, 64<<10) }

func TestScatterAllgatherValidation(t *testing.T) {
	if _, err := BroadcastScatterAllgather(context.Background(), ScatterAllgatherConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	// Single rank degenerates to a no-op.
	fabric := transport.NewFabric(0)
	total, err := BroadcastScatterAllgather(context.Background(), ScatterAllgatherConfig{
		Names:      []string{"a"},
		Addrs:      []string{"a:1"},
		Payload:    []byte("xyz"),
		NetworkFor: func(int) transport.Network { return fabric.Host("a") },
	})
	if err != nil || total != 3 {
		t.Fatalf("single rank: %d %v", total, err)
	}
}
