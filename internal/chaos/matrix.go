package chaos

import (
	"context"
	"fmt"
	"time"

	"kascade/internal/core"
)

// MatrixNodeCounts are the pipeline lengths every fault kind is swept
// across.
var MatrixNodeCounts = []int{3, 7, 16}

// Matrix builds the scenario matrix: every fault kind × every node count,
// plus the compound clusters (adjacent double crash, tail crash, §V
// exclusion, streamed-source abandon cascade) and one seeded random
// schedule per node count. `full` selects bench-sized payloads; CI and
// `go test` run the shrunk shape.
func Matrix(seed int64, full bool) []Scenario {
	shapeFor := func(nodes int) Shape {
		s := DefaultShape(nodes)
		if full {
			s.PayloadSize = 2 << 20
			s.ChunkSize = 32 << 10
			s.LinkRate = 16 << 20
		}
		return s
	}

	var out []Scenario
	add := func(name string, shape Shape, mut func(*Scenario)) {
		sc := Scenario{
			Name:         name,
			Nodes:        shape.Nodes,
			PayloadSize:  shape.PayloadSize,
			ChunkSize:    shape.ChunkSize,
			WindowChunks: shape.WindowChunks,
			LinkRate:     shape.LinkRate,
			Stream:       shape.Stream,
			Timeout:      20 * time.Second,
		}
		mut(&sc)
		out = append(out, sc)
	}

	for _, n := range MatrixNodeCounts {
		n := n
		shape := shapeFor(n)
		victim := n / 2
		mark := Mark{Node: victim, Bytes: uint64(shape.PayloadSize / 4)}

		add(fmt.Sprintf("crash/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: Crash, Victim: victim, Peer: -1, When: mark}}
		})
		add(fmt.Sprintf("restart/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: Restart, Victim: victim, Peer: -1, When: mark, Delay: 120 * time.Millisecond}}
		})
		add(fmt.Sprintf("partition/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: Partition, Victim: victim, Peer: -1, When: mark, Delay: 400 * time.Millisecond}}
		})
		add(fmt.Sprintf("asym-partition/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: AsymPartition, Victim: victim, Peer: -1, When: mark, Delay: 400 * time.Millisecond}}
		})
		add(fmt.Sprintf("rate-collapse/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: RateCollapse, Victim: victim, Peer: -1, When: mark, Delay: 300 * time.Millisecond, Rate: 8 << 10}}
		})
		add(fmt.Sprintf("write-stall/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: WriteStall, Victim: victim, Peer: -1, When: mark, Delay: 250 * time.Millisecond}}
		})
		add(fmt.Sprintf("slow-sink/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: SlowSink, Victim: victim, Peer: -1, When: mark, Delay: 300 * time.Millisecond, Rate: 192 << 10}}
		})
	}

	// Adjacent double crash: one replay recovery plus one skip-over-two.
	for _, n := range []int{7, 16} {
		shape := shapeFor(n)
		v := n / 2
		add(fmt.Sprintf("double-crash/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{
				{Kind: Crash, Victim: v, Peer: -1, When: Mark{Node: v, Bytes: uint64(shape.PayloadSize / 4)}},
				{Kind: Crash, Victim: v + 1, Peer: -1, When: Mark{Node: v + 1, Bytes: uint64(shape.PayloadSize / 4)}},
			}
		})
	}

	// Tail crash: the predecessor becomes the tail and must still close
	// the report ring.
	{
		shape := shapeFor(7)
		add("tail-crash/n=7", shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: Crash, Victim: 6, Peer: -1, When: Mark{Node: 6, Bytes: uint64(shape.PayloadSize / 4)}}}
		})
	}

	// §V exclusion: a permanent rate collapse below MinThroughput gets the
	// victim excluded (named in the report with an "excluded" reason)
	// instead of stalling the whole pipeline.
	{
		shape := shapeFor(7)
		add("rate-exclusion/n=7", shape, func(sc *Scenario) {
			sc.MinThroughput = 64 << 10
			sc.Faults = []Fault{{Kind: RateCollapse, Victim: 3, Peer: -1,
				When: Mark{Node: 3, Bytes: uint64(shape.PayloadSize / 4)}, Rate: 16 << 10}}
		})
	}

	// Cross-session isolation: every host runs one shared engine (single
	// data port) carrying three overlapping sessions; session 1 loses its
	// middle node to a sink crash — a session-scoped death that must leave
	// the sibling sessions' delivery and latency undisturbed.
	{
		shape := shapeFor(5)
		add("cross-session/n=5", shape, func(sc *Scenario) {
			sc.Sessions = 3
			sc.Faults = []Fault{{Kind: SinkCrash, Victim: 2, Peer: -1,
				When: Mark{Node: 2, Bytes: uint64(shape.PayloadSize / 3)}}}
		})
	}

	// Streamed source + crash with a tiny replay window: the gap can
	// outgrow every window, forcing the FORGET → abandon cascade.
	for _, n := range []int{3, 7} {
		shape := shapeFor(n)
		shape.Stream = true
		shape.WindowChunks = 4
		v := n / 2
		add(fmt.Sprintf("stream-crash/n=%d", n), shape, func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: Crash, Victim: v, Peer: -1, When: Mark{Node: v, Bytes: uint64(shape.PayloadSize / 3)}}}
		})
	}

	// Datagram fan-out under loss: the sender→victim packet plane drops 1%
	// or 5% of datagrams for the whole run; the TCP PGET side channel must
	// repair every hole, so delivery stays bit-perfect and the ring report
	// stays empty (Check's PacketLoss invariant).
	for _, n := range []int{3, 7} {
		shape := shapeFor(n)
		for _, rate := range []float64{0.01, 0.05} {
			rate := rate
			v := n / 2
			add(fmt.Sprintf("udp-loss/n=%d/p=%d", n, int(rate*100)), shape, func(sc *Scenario) {
				sc.Transport = core.TransportUDP
				sc.Faults = []Fault{{Kind: PacketLoss, Victim: v, Peer: 0, Rate: rate}}
			})
		}
	}

	// Tree fan-out recovery: a tree:2 plan runs the same §III-D machinery
	// on every parent→child link. Each cluster kills a structurally
	// different node — a root child (its whole subtree re-grafts onto the
	// sender), an interior node (its children re-graft onto their
	// grandparent), a leaf (pure spoke loss), and a second crash landing
	// mid-recovery on the first victim's own child.
	for _, n := range MatrixNodeCounts {
		n := n
		shape := shapeFor(n)
		quarter := uint64(shape.PayloadSize / 4)
		half := uint64(shape.PayloadSize / 2)
		tree := func(name string, faults ...Fault) {
			add(fmt.Sprintf("tree-%s/n=%d", name, n), shape, func(sc *Scenario) {
				sc.Topology = core.TopologyTree(2)
				sc.Faults = faults
			})
		}

		tree("root-child-crash",
			Fault{Kind: Crash, Victim: 1, Peer: -1, When: Mark{Node: 1, Bytes: quarter}})

		interior := 1 // n=3: both receivers are leaves; fall back to a root child
		switch {
		case n >= 9:
			interior = 3 // depth 2 with the full child set {7, 8}
		case n >= 6:
			interior = 2 // depth 1, children {5, 6}
		}
		tree("interior-crash",
			Fault{Kind: Crash, Victim: interior, Peer: -1, When: Mark{Node: interior, Bytes: quarter}})

		tree("leaf-crash",
			Fault{Kind: Crash, Victim: n - 1, Peer: -1, When: Mark{Node: n - 1, Bytes: quarter}})

		// Mid-recovery second crash: the second victim is the first
		// victim's own child, killed after it re-grafted onto its
		// grandparent. n=3 has no grandchildren, so both root children die
		// — only the sender survives and still closes the (empty) ring.
		first, second := 1, 2
		if n >= 6 {
			first = interior
			second = 2*interior + 1
		}
		tree("second-crash",
			Fault{Kind: Crash, Victim: first, Peer: -1, When: Mark{Node: first, Bytes: quarter}},
			Fault{Kind: Crash, Victim: second, Peer: -1, When: Mark{Node: second, Bytes: half}})
	}

	// Self-reorganizing trees (Rerank): collapsing the link that feeds an
	// interior node makes it the rank-worst bottleneck, and the planner
	// must demote it to a leaf (MinMigrations floor) without thrashing
	// (MaxMigrations ceiling). The two crash clusters land exactly
	// mid-graft — on the first TraceReorg — killing the migrating node
	// itself, then its children's freshly promoted new parent: the §III-D
	// recovery machinery running against a tree that is deliberately being
	// rewired at the moment of death. The collapse heals after 3s so a
	// victim re-grafted back onto the shaped link cannot drag the run past
	// its budget; by then the migration floor has long been met.
	for _, n := range []int{7, 16} {
		n := n
		shape := shapeFor(n)
		slow := Fault{Kind: RateCollapse, Victim: 1, Peer: 0,
			Delay: 3 * time.Second, Rate: 48 << 10}
		rerank := func(name string, maxMig int, extra ...Fault) {
			add(fmt.Sprintf("rerank-%s/n=%d", name, n), shape, func(sc *Scenario) {
				sc.Topology = core.TopologyTree(2)
				sc.Rerank = true
				sc.MinMigrations = 1
				sc.MaxMigrations = maxMig
				sc.Faults = append([]Fault{slow}, extra...)
			})
		}
		// The ceiling is deliberately loose: cadence pacing alone would
		// allow ~30 migrations over these runs, so staying under 9 is the
		// hysteresis claim, while scheduler jitter in the post-heal EWMA
		// transients keeps the exact count from being pinnable — on a
		// starved runner (tier-1 runs this matrix with every other
		// package in parallel) the transients stretch and a couple of
		// extra paced migrations land before the estimates settle.
		rerank("slow-interior", 9)
		rerank("crash-migrating", 9,
			Fault{Kind: Crash, Victim: ReorgDemoted, Peer: -1, When: Mark{Reorg: true}})
		rerank("crash-new-parent", 9,
			Fault{Kind: Crash, Victim: ReorgPromoted, Peer: -1, When: Mark{Reorg: true}})
	}

	// Dynamic membership: late joiners grafted onto a live rerank tree.
	// The links are paced down so the marks land well before the
	// completion wave (a join racing the EOF slack would be refused and
	// trip the MinGrafted floor). Three structurally different clusters:
	// a two-joiner wave at 1/8 and 1/4 of the transfer; a join fired on
	// the first re-ranking migration (the graft and an unrelated
	// REORG-path rewiring of the same tree version sequence interleave);
	// and a joiner crashed mid-catch-up, which must be detected and named
	// under its granted index like any other crash.
	for _, n := range []int{7, 16} {
		n := n
		shape := shapeFor(n)
		eighth := uint64(shape.PayloadSize / 8)
		quarter := uint64(shape.PayloadSize / 4)
		half := uint64(shape.PayloadSize / 2)
		join := func(name string, mut func(*Scenario)) {
			add(fmt.Sprintf("join-%s/n=%d", name, n), shape, func(sc *Scenario) {
				sc.Topology = core.TopologyTree(2)
				sc.Rerank = true
				sc.LinkRate = 1 << 20
				mut(sc)
			})
		}

		join("wave", func(sc *Scenario) {
			sc.Joins = []JoinSpec{
				{When: Mark{Node: 1, Bytes: eighth}},
				{When: Mark{Node: 1, Bytes: quarter}},
			}
			sc.MinGrafted = 2
		})

		join("during-reorg", func(sc *Scenario) {
			// The collapsed root-child link provokes a demotion; the join
			// fires on that exact migration, mid-rewire by construction.
			// The payload is 8× the cluster default so the broadcast
			// still has ~half a second of runway after the migration —
			// the join negotiation runs on its own goroutine, and on a
			// loaded machine it must not lose a race against the freed
			// tree finishing (which would turn the graft into a
			// legitimate "broadcast is completing" refusal and trip
			// MinGrafted). The links stay at the shape rate rather than
			// the paced-down join rate: post-demotion rate estimates
			// must re-converge fast, or the planner rotates stale-slow
			// interiors and busts MaxMigrations. The migration ceiling
			// is looser than the pure rerank clusters' for the same
			// reason: on a starved runner the convergence window
			// stretches and a couple of extra paced migrations land
			// before the estimates settle.
			sc.PayloadSize = shape.PayloadSize * 8
			sc.LinkRate = shape.LinkRate
			sc.MinMigrations = 1
			sc.MaxMigrations = 12
			sc.Faults = []Fault{{Kind: RateCollapse, Victim: 1, Peer: 0,
				Delay: 3 * time.Second, Rate: 48 << 10}}
			sc.Joins = []JoinSpec{{When: Mark{Reorg: true}}}
			sc.MinGrafted = 1
		})

		join("crash-catchup", func(sc *Scenario) {
			sc.Joins = []JoinSpec{{When: Mark{Node: 1, Bytes: eighth}, CrashAt: half}}
			sc.MinGrafted = 1
		})
	}

	// Seeded random schedules: the generator's scenario diversity, pinned
	// by -chaos.seed.
	for _, n := range MatrixNodeCounts {
		out = append(out, Generate(seed+int64(n), shapeFor(n)))
	}
	for _, n := range []int{7, 16} {
		out = append(out, GenerateJoins(seed+1000+int64(n), shapeFor(n)))
	}

	return out
}

// RunMatrix executes every scenario in order and returns the results;
// scenarios run sequentially so their timing assertions do not disturb
// each other.
func RunMatrix(ctx context.Context, scenarios []Scenario) []*Result {
	out := make([]*Result, 0, len(scenarios))
	for _, sc := range scenarios {
		if ctx.Err() != nil {
			break
		}
		out = append(out, Run(ctx, sc))
	}
	return out
}
