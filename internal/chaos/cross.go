package chaos

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"kascade/internal/benchkit"
	"kascade/internal/core"
	"kascade/internal/transport"
)

// This file is the cross-session harness: Scenario.Sessions > 1 runs one
// shared core.Engine per host — a single data port carrying every session,
// exactly as a production agent does — and applies the fault schedule to
// session 1 only. The claim under test is isolation: a session-scoped
// fault (SinkCrash is the canonical one: the node dies, the host and
// engine live on) must leave the sibling sessions' delivery bit-perfect
// and their latency undisturbed.
//
// Latency needs a reference, so a cross-session run has two phases on
// identical fresh fabrics: a healthy baseline (all sessions, no faults)
// and the faulted run. Check compares the slowest sibling across phases
// with a generous noise bound — the point is catching systemic disturbance
// (a faulted session wedging the shared engine, poisoning a park queue,
// or starving the budget), not micro-benchmarking.

// crossPhase runs all of a scenario's sessions over fresh shared engines,
// faulting session 1 when `faulted` is set. It returns the per-session
// results, the per-session per-node sinks, the faulted session's victim
// node (for outcome assembly), and the phase wall clock.
func crossPhase(ctx context.Context, sc Scenario, clk core.Clock, faulted bool, rec *crossRecorder) ([]*core.SessionResult, [][]*prefixSink, []error, time.Duration, error) {
	fabric := transport.NewFabric(sc.ChunkSize)
	if sc.LinkRate > 0 {
		fabric.SetDefaultProfile(transport.Profile{Rate: sc.LinkRate})
	}
	peers := make([]core.Peer, sc.Nodes)
	engines := make([]*core.Engine, sc.Nodes)
	for i := range peers {
		name := fmt.Sprintf("n%d", i+1)
		peers[i] = core.Peer{Name: name, Addr: name + ":7000"}
		e, err := core.NewEngine(fabric.Host(name), peers[i].Addr, core.EngineOptions{Clock: clk})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		defer e.Close()
		engines[i] = e
	}

	payloads := make([][]byte, sc.Sessions)
	sinks := make([][]*prefixSink, sc.Sessions)
	for s := 0; s < sc.Sessions; s++ {
		payloads[s] = benchkit.Payload(sc.PayloadSize, 42+uint64(s))
		sinks[s] = make([]*prefixSink, sc.Nodes)
		for i := range sinks[s] {
			sinks[s][i] = newPrefixSink(payloads[s], clk)
		}
	}
	if faulted {
		for _, f := range sc.Faults {
			f := f
			// Only session-scoped faults make sense here: host-level kinds
			// (crash, partition, …) would hit every session sharing the
			// host, so a schedule carrying one is a scenario bug — error
			// out rather than silently running the phase fault-free and
			// letting the isolation claim pass vacuously.
			if f.Kind != SinkCrash {
				return nil, nil, nil, 0, fmt.Errorf("cross-session scenarios support only %s faults, got %s", SinkCrash, f.Kind)
			}
			if f.Victim <= 0 || f.Victim >= sc.Nodes {
				return nil, nil, nil, 0, fmt.Errorf("cross-session fault victim %d out of range (1..%d)", f.Victim, sc.Nodes-1)
			}
			sink := sinks[0][f.Victim]
			sink.failAt = int(f.When.Bytes)
			sink.onFail = func() { rec.note(f) }
		}
	}

	opts := sc.options()
	opts.Clock = clk
	results := make([]*core.SessionResult, sc.Sessions)
	errs := make([]error, sc.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < sc.Sessions; s++ {
		cfg := core.SessionConfig{
			Peers:      peers,
			Opts:       opts,
			Session:    core.SessionID(s + 1),
			NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
			EngineFor:  func(i int) *core.Engine { return engines[i] },
			SinkFor: func(s int) func(i int) io.Writer {
				return func(i int) io.Writer { return sinks[s][i] }
			}(s),
			InputFile: benchkit.NewReaderAt(payloads[s]),
			InputSize: sc.PayloadSize,
		}
		wg.Add(1)
		go func(s int, cfg core.SessionConfig) {
			defer wg.Done()
			results[s], errs[s] = core.RunSession(ctx, cfg)
		}(s, cfg)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(sc.Timeout):
		return nil, nil, nil, 0, fmt.Errorf("cross-session phase exceeded its %v budget", sc.Timeout)
	}
	return results, sinks, errs, time.Since(start), nil
}

// crossRecorder timestamps fault injections relative to the faulted
// phase's start.
type crossRecorder struct {
	mu         sync.Mutex
	start      time.Time
	injections []Injection
}

func (r *crossRecorder) note(f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.injections = append(r.injections, Injection{Fault: f, At: time.Since(r.start)})
}

// runCross executes a cross-session scenario: healthy baseline phase, then
// the faulted phase, folding the faulted session into the usual Result
// fields and the siblings into Result.Sibling.
func runCross(ctx context.Context, sc Scenario, clk core.Clock) *Result {
	res := &Result{Scenario: sc}

	// Phase 1: healthy baseline for the latency reference.
	baseResults, _, baseErrs, baseElapsed, err := crossPhase(ctx, sc, clk, false, nil)
	if err != nil {
		res.Err = fmt.Sprintf("baseline: %v", err)
		return res
	}
	for s, e := range baseErrs {
		if e != nil {
			res.Err = fmt.Sprintf("baseline session %d: %v", s+1, e)
			return res
		}
	}
	// The latency reference is the slowest SIBLING in the healthy phase
	// (the faulted slot's baseline run is excluded, mirroring the faulted
	// phase's measurement); fall back to the phase wall clock.
	baseSiblingMs := 0.0
	for s := 1; s < sc.Sessions; s++ {
		if ms := float64(baseResults[s].Elapsed) / 1e6; ms > baseSiblingMs {
			baseSiblingMs = ms
		}
	}
	if baseSiblingMs <= 0 {
		baseSiblingMs = float64(baseElapsed) / 1e6
	}

	// Phase 2: the faulted run.
	rec := &crossRecorder{start: time.Now()}
	results, sinks, errs, elapsed, err := crossPhase(ctx, sc, clk, true, rec)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Elapsed = elapsed
	rec.mu.Lock()
	res.Injections = append([]Injection(nil), rec.injections...)
	rec.mu.Unlock()

	// The faulted session fills the single-session Result fields.
	if errs[0] != nil {
		res.Err = fmt.Sprintf("faulted session sender: %v", errs[0])
	}
	if results[0] != nil {
		res.Report = results[0].Report
	}
	res.Outcomes = make([]NodeOutcome, sc.Nodes)
	for i := 0; i < sc.Nodes; i++ {
		out := NodeOutcome{Index: i}
		received, corrupt := sinks[0][i].state()
		out.ReceivedBytes = uint64(received)
		out.Corrupt = corrupt
		out.Complete = !corrupt && int64(received) == sc.PayloadSize
		if results[0] != nil && results[0].NodeErrs[i] != nil {
			out.Err = results[0].NodeErrs[i].Error()
		}
		// The sink-crash victim abandons: its write error ends the node.
		for _, f := range sc.Faults {
			if f.Kind == SinkCrash && f.Victim == i && out.Err != "" {
				out.Abandoned = true
				out.AbandonReason = out.Err
			}
		}
		res.Outcomes[i] = out
	}

	// Siblings: every session but the faulted one, aggregated.
	sib := &SiblingOutcome{
		Sessions:   sc.Sessions - 1,
		Complete:   true,
		BaselineMs: baseSiblingMs,
	}
	for s := 1; s < sc.Sessions; s++ {
		if errs[s] != nil {
			sib.Complete = false
			if res.Err == "" {
				res.Err = fmt.Sprintf("sibling session %d: %v", s+1, errs[s])
			}
			continue
		}
		sib.Failures += len(results[s].Report.Failures)
		if ms := float64(results[s].Elapsed) / 1e6; ms > sib.ElapsedMs {
			sib.ElapsedMs = ms
		}
		for i := 1; i < sc.Nodes; i++ {
			received, corrupt := sinks[s][i].state()
			if corrupt {
				sib.Corrupt = true
			}
			if int64(received) != sc.PayloadSize {
				sib.Complete = false
			}
		}
	}
	res.Sibling = sib
	return res
}
