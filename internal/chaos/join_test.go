package chaos

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"kascade/internal/core"
)

// joinShape is the default shape slowed enough that join marks land well
// inside the transfer.
func joinShape(nodes int) Shape {
	s := DefaultShape(nodes)
	s.LinkRate = 1 << 20
	return s
}

// TestJoinWaveDirect drives the dynamic-membership harness directly: two
// joiners grafted mid-broadcast must both complete bit-perfect, under
// fresh pipeline indices, without being named in the ring report.
func TestJoinWaveDirect(t *testing.T) {
	shape := joinShape(7)
	sc := Scenario{
		Name:         "join-wave-direct",
		Nodes:        shape.Nodes,
		PayloadSize:  shape.PayloadSize,
		ChunkSize:    shape.ChunkSize,
		WindowChunks: shape.WindowChunks,
		LinkRate:     shape.LinkRate,
		Topology:     core.TopologyTree(2),
		Rerank:       true,
		Timeout:      20 * time.Second,
		Joins: []JoinSpec{
			{When: Mark{Node: 1, Bytes: uint64(shape.PayloadSize / 8)}},
			{When: Mark{Node: 2, Bytes: uint64(shape.PayloadSize / 4)}},
		},
		MinGrafted: 2,
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatalf("%v\n%s", err, sc.Repro(0))
	}
	if len(res.Joins) != 2 {
		t.Fatalf("want 2 join outcomes, got %+v", res.Joins)
	}
	seen := map[int]bool{}
	for i, j := range res.Joins {
		if !j.Grafted || !j.Complete || j.Corrupt {
			t.Fatalf("join %d not clean: %+v", i, j)
		}
		if j.Index < sc.Nodes {
			t.Fatalf("join %d granted base index %d, want >= %d", i, j.Index, sc.Nodes)
		}
		if seen[j.Index] {
			t.Fatalf("two joiners share index %d", j.Index)
		}
		seen[j.Index] = true
	}
}

// TestJoinCrashMidCatchUp: a joiner killed while it is still catching up
// must be detected and named in the ring report under its granted index —
// the victim-naming invariant extended to dynamic members.
func TestJoinCrashMidCatchUp(t *testing.T) {
	shape := joinShape(7)
	sc := Scenario{
		Name:         "join-crash-direct",
		Nodes:        shape.Nodes,
		PayloadSize:  shape.PayloadSize,
		ChunkSize:    shape.ChunkSize,
		WindowChunks: shape.WindowChunks,
		LinkRate:     shape.LinkRate,
		Topology:     core.TopologyTree(2),
		Rerank:       true,
		Timeout:      20 * time.Second,
		Joins: []JoinSpec{{
			When:    Mark{Node: 1, Bytes: uint64(shape.PayloadSize / 8)},
			CrashAt: uint64(shape.PayloadSize / 2),
		}},
		MinGrafted: 1,
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatalf("%v\n%s", err, sc.Repro(0))
	}
	j := res.Joins[0]
	if !j.Grafted {
		t.Fatalf("join never grafted: %+v", j)
	}
	if !j.Crashed {
		t.Fatalf("scheduled joiner crash never fired: %+v", j)
	}
	// The crash was recorded as an injection under the granted index.
	found := false
	for _, inj := range res.Injections {
		if inj.Fault.Kind == Crash && inj.Fault.Victim == j.Index {
			found = true
		}
	}
	if !found {
		t.Fatalf("joiner crash not in the injection log: %+v", res.Injections)
	}
}

// TestGenerateJoinsIsDeterministic pins the reproduction contract for the
// join generator, mirroring TestGenerateIsDeterministic.
func TestGenerateJoinsIsDeterministic(t *testing.T) {
	a := GenerateJoins(4321, joinShape(7))
	b := GenerateJoins(4321, joinShape(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different join schedules:\n%s\nvs\n%s", a.Schedule(), b.Schedule())
	}
	c := GenerateJoins(4322, joinShape(7))
	if reflect.DeepEqual(a.Joins, c.Joins) {
		t.Fatal("different seeds produced identical join schedules")
	}
	if !a.Rerank || a.Topology == "" {
		t.Fatalf("generated join scenario lacks the rerank-tree preconditions: %+v", a)
	}
	if len(a.Joins) < 1 || len(a.Joins) > 3 {
		t.Fatalf("generated %d joins, want 1..3", len(a.Joins))
	}
}

// TestJoinScheduleProperty sweeps random join schedules against random
// tree shapes, all derived from the pinned -chaos.seed: whatever the
// schedule, every graft ends bit-perfect or correctly named, and every
// non-graft is a typed refusal.
func TestJoinScheduleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	rng := rand.New(rand.NewSource(*chaosSeed * 7919))
	for i := 0; i < 4; i++ {
		n := 5 + rng.Intn(8) // 5..12 nodes, arity drawn inside the generator
		seed := rng.Int63()
		sc := GenerateJoins(seed, joinShape(n))
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(context.Background(), sc)
			if err := Check(res); err != nil {
				t.Fatalf("%v\nreproduce with -chaos.seed=%d\nschedule:\n%s",
					err, *chaosSeed, sc.Schedule())
			}
		})
	}
}
