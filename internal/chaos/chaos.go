// Package chaos is a deterministic fault-injection engine for the Kascade
// protocol (§III-D of the paper): it executes scripted or seeded fault
// schedules — node crash, restart, symmetric and asymmetric partitions,
// rate collapse, write stall, slow receiver — against a real broadcast
// running over transport.Fabric, and asserts the recovery invariants the
// paper claims: bit-perfect delivery on every survivor, correct victim
// naming in the ring report, and bounded recovery time.
//
// Faults fire at byte-offset marks (observed through the engine's trace
// seam, core.Tracer, never by sleeping) or at wall-clock marks. A schedule
// is reproducible from a single seed: chaos.Generate derives randomized
// schedules, chaos.Matrix sweeps {node count × fault kind} clusters, and a
// failing scenario prints the exact `-chaos.seed` command that replays it.
package chaos

import (
	"fmt"
	"strings"
	"time"
)

// FaultKind enumerates the injectable faults.
type FaultKind string

const (
	// Crash kills the victim host permanently: listeners close, live
	// connections reset, dials refused (transport.Fabric.Kill).
	Crash FaultKind = "crash"
	// Restart crashes the victim and revives it Delay later: the fabric
	// host comes back and a fresh node with the same pipeline index
	// re-runs. Depending on how fast the predecessor's detector fired,
	// the reborn node is either re-adopted (resuming via FORGET/PGET at
	// a file-backed source) or stays routed around.
	Restart FaultKind = "restart"
	// Partition cuts both directions between the victim and Peer; bytes
	// stall and dials are refused until Delay heals it (0 = permanent).
	Partition FaultKind = "partition"
	// AsymPartition cuts only the Peer->victim direction: the victim
	// falls silent downstream while its own frames still flow upstream.
	AsymPartition FaultKind = "asym-partition"
	// RateCollapse reshapes the Peer->victim link to Rate bytes/s on the
	// LIVE connection, restoring the scenario link rate after Delay.
	RateCollapse FaultKind = "rate-collapse"
	// WriteStall pauses existing Peer->victim connections (no bytes move,
	// no error) for Delay; fresh dials — liveness probes — still succeed,
	// exercising the §III-D1 slow-but-alive discipline.
	WriteStall FaultKind = "write-stall"
	// SlowSink throttles the victim's local sink to Rate bytes/s for
	// Delay (0 = rest of the run): the slow-receiver case.
	SlowSink FaultKind = "slow-sink"
	// SinkCrash makes the victim's local sink fail the write that crosses
	// the byte mark: the node abandons and detaches, a session-scoped
	// death. Unlike Crash it kills one session's node, not the host — on
	// shared engines the host keeps serving its other sessions, which is
	// what the cross-session scenarios (Sessions > 1) exercise.
	SinkCrash FaultKind = "sink-crash"
	// PacketLoss drops a fraction (Rate ∈ [0,1]) of the datagrams flowing
	// Peer→victim, healed after Delay (0 = the whole run). It only bites on
	// Transport "udp" scenarios: the victim must repair every hole over the
	// TCP PGET side channel, so a lossy link is an invariant-preserving
	// fault, not a death — Check demands the victim completes bit-perfect
	// and is never named in the ring report.
	PacketLoss FaultKind = "packet-loss"
)

// Mark is a fault trigger: a byte-offset watch on one node's ingested
// bytes, a re-ranking migration watch, a wall-clock delay from transfer
// start, or (zero value) right at start. Byte and reorg marks are observed
// through the trace seam, so they fire on the exact chunk boundary or
// migration that crosses them.
type Mark struct {
	// Node is the pipeline index whose ingress is watched (byte marks).
	Node int `json:"node,omitempty"`
	// Bytes triggers once Node has ingested at least this many bytes.
	Bytes uint64 `json:"bytes,omitempty"`
	// Reorg triggers on the first re-ranking migration (the sender's
	// TraceReorg event) — mid-graft by construction: the new parent has
	// not yet adopted the re-homed children when the fault lands.
	Reorg bool `json:"reorg,omitempty"`
	// After triggers this long after the session starts (used when
	// Bytes is 0).
	After time.Duration `json:"after,omitempty"`
}

func (m Mark) String() string {
	if m.Reorg {
		return "on the first re-ranking migration"
	}
	if m.Bytes > 0 {
		return fmt.Sprintf("when node %d reached %d B", m.Node, m.Bytes)
	}
	if m.After > 0 {
		return fmt.Sprintf("at t+%v", m.After)
	}
	return "at start"
}

// Victim sentinels for reorg-mark faults: the concrete pipeline index is
// only known when the migration fires, so the schedule names a role and
// the runner resolves it from the TraceReorg event at injection time.
const (
	// ReorgDemoted targets the node being demoted to a leaf slot — the
	// migrating node, killed while its children re-graft away from it.
	ReorgDemoted = -2
	// ReorgPromoted targets the node promoted into the vacated interior
	// slot — the re-homed children's new parent, killed mid-adoption.
	ReorgPromoted = -3
)

// Fault is one scheduled injection.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// Victim is the pipeline index the fault targets (never 0).
	Victim int `json:"victim"`
	// Peer is the other endpoint for link faults; -1 selects the victim's
	// schedule-time upstream neighbour (Victim-1).
	Peer int `json:"peer,omitempty"`
	// When triggers the injection.
	When Mark `json:"when"`
	// Delay is the heal/revive/resume delay after injection; 0 means the
	// fault is permanent (or, for SlowSink, lasts the whole run).
	Delay time.Duration `json:"delay,omitempty"`
	// Rate parameterises RateCollapse and SlowSink, in bytes/second.
	Rate float64 `json:"rate,omitempty"`
}

// peerIndex resolves the link-fault counterpart.
func (f Fault) peerIndex() int {
	if f.Peer >= 0 {
		return f.Peer
	}
	return f.Victim - 1
}

func (f Fault) String() string {
	var b strings.Builder
	switch f.Victim {
	case ReorgDemoted:
		fmt.Fprintf(&b, "%s on the demoted node", f.Kind)
	case ReorgPromoted:
		fmt.Fprintf(&b, "%s on the promoted node", f.Kind)
	default:
		fmt.Fprintf(&b, "%s on node %d", f.Kind, f.Victim)
	}
	switch f.Kind {
	case Partition, AsymPartition, RateCollapse, WriteStall:
		fmt.Fprintf(&b, " (link from node %d)", f.peerIndex())
	case PacketLoss:
		fmt.Fprintf(&b, " (datagrams from node %d, %.0f%% drop)", f.peerIndex(), f.Rate*100)
	}
	fmt.Fprintf(&b, " %s", f.When)
	if f.Delay > 0 {
		fmt.Fprintf(&b, ", healed after %v", f.Delay)
	}
	if f.Rate > 0 && f.Kind != PacketLoss {
		fmt.Fprintf(&b, ", rate %.0f B/s", f.Rate)
	}
	return b.String()
}

// JoinSpec schedules one late joiner: a fresh host grafted onto the
// live broadcast through the session's Join verb when the mark fires.
// Join scenarios need Rerank, a tree Topology and a file-backed source
// (Stream false) — the preconditions of the dynamic-membership protocol;
// a join landing after the broadcast ended is a refusal, not a crash,
// and Check accepts it unless the scenario demands a MinGrafted floor.
type JoinSpec struct {
	// When triggers the join (byte-offset or reorg marks, observed
	// through the trace seam like fault marks).
	When Mark `json:"when"`
	// CrashAt kills the joiner's host once the joiner has ingested this
	// many bytes (catch-up backfill and live chunks both count); 0 lets
	// it live to completion. A crashed joiner must be named in the ring
	// report unless it finished first — the same invariant as Crash.
	CrashAt uint64 `json:"crash_at,omitempty"`
}

func (j JoinSpec) String() string {
	s := fmt.Sprintf("late join %s", j.When)
	if j.CrashAt > 0 {
		s += fmt.Sprintf(", joiner crashed at %d B ingested", j.CrashAt)
	}
	return s
}

// Scenario is one self-contained chaos run: pipeline shape, payload,
// pacing and fault schedule. Scenarios are plain data so a failing one can
// be printed and replayed verbatim.
type Scenario struct {
	Name string `json:"name"`
	// Seed is the generator seed that produced the schedule (0 for the
	// handcrafted matrix clusters).
	Seed  int64 `json:"seed,omitempty"`
	Nodes int   `json:"nodes"`
	// PayloadSize is the broadcast size in bytes.
	PayloadSize int64 `json:"payload_size"`
	ChunkSize   int   `json:"chunk_size"`
	// WindowChunks is the per-node replay window.
	WindowChunks int `json:"window_chunks"`
	// Stream selects the streamed source (abandon cascade on FORGET)
	// instead of the file-backed one (gap fetches always succeed).
	Stream bool `json:"stream,omitempty"`
	// Sessions > 1 selects the cross-session harness: every host runs one
	// shared core.Engine (single data port) carrying this many overlapping
	// broadcasts; faults apply to session 1 only, and Check additionally
	// demands the sibling sessions' delivery and latency are undisturbed.
	Sessions int `json:"sessions,omitempty"`
	// LinkRate paces every fabric link (bytes/s) so byte marks land
	// mid-transfer; 0 leaves links unshaped.
	LinkRate float64 `json:"link_rate,omitempty"`
	// MinThroughput enables the §V exclusion extension in the engine.
	MinThroughput float64 `json:"min_throughput,omitempty"`
	// Transport selects the data plane (core.SessionConfig.Transport):
	// "" / "tcp" for the chunked relay pipeline, "udp" for the batched
	// datagram fan-out (required by PacketLoss faults to bite).
	Transport string `json:"transport,omitempty"`
	// Topology selects the dissemination shape (core.Plan.Topology): "" /
	// "chain" for the linear pipeline, "tree:<k>" for the k-ary BFS tree.
	// Tree scenarios exercise the parent/children generalisation of the
	// §III-D recovery path: a crashed interior node's children re-graft
	// onto its parent.
	Topology string `json:"topology,omitempty"`
	// Rerank enables Snow-style self-reorganization (core Options.Rerank)
	// at chaos-speed cadence; requires a tree Topology. Faults may then
	// use reorg marks and the ReorgDemoted/ReorgPromoted sentinels.
	Rerank bool `json:"rerank,omitempty"`
	// MinMigrations / MaxMigrations bound the executed migration count
	// Check accepts on a Rerank run: the floor proves the scenario's slow
	// link actually provoked a re-ranking (a reorg-mark fault that never
	// fires would otherwise pass vacuously), the ceiling proves hysteresis
	// kept the tree from thrashing. Zero leaves the respective side open.
	MinMigrations int `json:"min_migrations,omitempty"`
	MaxMigrations int `json:"max_migrations,omitempty"`
	// Joins schedules late joiners (dynamic membership); requires Rerank,
	// a tree Topology and a file-backed source. Single-session only.
	Joins []JoinSpec `json:"joins,omitempty"`
	// MinGrafted is the minimum number of Joins that must actually graft
	// (a refusal-only run would otherwise pass the join invariants
	// vacuously). Zero leaves the floor open — generated schedules use
	// that, since a randomly late mark may legitimately be refused.
	MinGrafted int `json:"min_grafted,omitempty"`
	// Timeout is the hard scenario budget (bounded-recovery assertion);
	// defaulted by Run when 0.
	Timeout time.Duration `json:"timeout,omitempty"`
	Faults  []Fault       `json:"faults"`
}

// Schedule renders the fault and join schedule, one line per entry.
func (sc Scenario) Schedule() string {
	if len(sc.Faults) == 0 && len(sc.Joins) == 0 {
		return "  (no faults)"
	}
	var lines []string
	for _, f := range sc.Faults {
		lines = append(lines, "  "+f.String())
	}
	for _, j := range sc.Joins {
		lines = append(lines, "  "+j.String())
	}
	return strings.Join(lines, "\n")
}

// Repro returns the one-command reproduction recipe plus the schedule, for
// failure messages.
func (sc Scenario) Repro(seed int64) string {
	return fmt.Sprintf(
		"reproduce: go test ./internal/chaos -race -run 'TestChaosMatrix/%s' -chaos.seed=%d\nschedule (%d nodes, %d B payload, %d B chunks, window %d, stream=%v):\n%s",
		sc.Name, seed, sc.Nodes, sc.PayloadSize, sc.ChunkSize, sc.WindowChunks, sc.Stream, sc.Schedule())
}

// victims returns the distinct fault targets, in schedule order.
// PacketLoss targets are excluded: a lossy datagram link is repaired, not
// fatal, so its victim must NOT be an acceptable name in the ring report.
// Reorg sentinels are excluded too — their concrete index is only known
// at injection time, so Check folds them in from the recorded injections.
func (sc Scenario) victims() []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range sc.Faults {
		if f.Kind == PacketLoss || f.Victim < 0 {
			continue
		}
		if !seen[f.Victim] {
			seen[f.Victim] = true
			out = append(out, f.Victim)
		}
	}
	return out
}
