package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kascade/internal/benchkit"
	"kascade/internal/core"
	"kascade/internal/transport"
)

// Injection records one applied fault and when it landed.
type Injection struct {
	Fault Fault         `json:"fault"`
	At    time.Duration `json:"at"` // since session start
}

// Recovery measures the engine's reaction to one injected fault:
// DetectLatency is injection → the victim's failure being recorded by some
// survivor; ResumeLatency is injection → the first chunk ingested by the
// victim's nearest surviving downstream node after detection (the pipeline
// flowing again past the hole).
type Recovery struct {
	Victim        int           `json:"victim"`
	Detected      bool          `json:"detected"`
	DetectLatency time.Duration `json:"detect_latency"`
	Resumed       bool          `json:"resumed"`
	ResumeLatency time.Duration `json:"resume_latency"`
}

// NodeOutcome is the terminal state of one pipeline slot.
type NodeOutcome struct {
	Index         int    `json:"index"`
	Err           string `json:"err,omitempty"`
	Abandoned     bool   `json:"abandoned,omitempty"`
	AbandonReason string `json:"abandon_reason,omitempty"`
	ReceivedBytes uint64 `json:"received_bytes"`
	// Complete means the sink holds exactly the source payload.
	Complete bool `json:"complete"`
	// Corrupt means the sink diverged from the source prefix — always a
	// bug, even on a node that later died.
	Corrupt bool `json:"corrupt,omitempty"`
	// Reborn marks a slot whose outcome is the restarted node's.
	Reborn bool `json:"reborn,omitempty"`
}

// SiblingOutcome summarises the sibling sessions of a cross-session run
// (Scenario.Sessions > 1): broadcasts sharing every engine and data port
// with the faulted session, which must be completely undisturbed by its
// fault — bit-perfect, failure-free, and no slower than the same sessions
// in the healthy baseline phase of the same run (within a generous noise
// bound; Check enforces it).
type SiblingOutcome struct {
	// Sessions is the sibling session count (faulted session excluded).
	Sessions int `json:"sessions"`
	// Failures is the total failure count across every sibling's report.
	Failures int `json:"failures"`
	// Complete and Corrupt aggregate every sibling sink on every node.
	Complete bool `json:"complete"`
	Corrupt  bool `json:"corrupt,omitempty"`
	// ElapsedMs is the slowest sibling's wall clock in the faulted phase;
	// BaselineMs the slowest sibling's in the healthy baseline phase.
	ElapsedMs  float64 `json:"elapsed_ms"`
	BaselineMs float64 `json:"baseline_ms"`
}

// JoinOutcome is the terminal state of one scheduled late joiner.
type JoinOutcome struct {
	// Index is the pipeline index the planner granted (-1 if the join
	// never grafted).
	Index int `json:"index"`
	// Grafted means the join negotiation succeeded and a joiner node ran.
	Grafted bool `json:"grafted"`
	// RefuseReason is the typed refusal when the graft was declined
	// (session ended, broadcast completing, …) — an acceptable outcome
	// for a late mark, counted against the scenario's MinGrafted floor.
	RefuseReason string `json:"refuse_reason,omitempty"`
	// Head is the granted catch-up boundary: bytes the joiner had to
	// backfill from the sender.
	Head uint64 `json:"head,omitempty"`
	// Crashed means the schedule killed the joiner's host (CrashAt).
	Crashed       bool   `json:"crashed,omitempty"`
	Err           string `json:"err,omitempty"`
	ReceivedBytes uint64 `json:"received_bytes"`
	Complete      bool   `json:"complete"`
	Corrupt       bool   `json:"corrupt,omitempty"`
}

// Result is everything one chaos run produced.
type Result struct {
	Scenario   Scenario      `json:"scenario"`
	Report     *core.Report  `json:"report,omitempty"`
	Elapsed    time.Duration `json:"elapsed"`
	Outcomes   []NodeOutcome `json:"outcomes"`
	Injections []Injection   `json:"injections"`
	Recoveries []Recovery    `json:"recoveries"`
	// Joins records every scheduled late joiner's outcome, in schedule
	// order; Check asserts the dynamic-membership invariants over them.
	Joins []JoinOutcome `json:"joins,omitempty"`
	// Migrations counts executed re-ranking migrations (TraceReorg
	// events); Check bounds it by the scenario's Min/MaxMigrations.
	Migrations int `json:"migrations,omitempty"`
	// FinalView is the sender's final view occupancy (slot → pipeline
	// index) on Rerank runs: where every node ended up after re-ranking.
	FinalView []int `json:"final_view,omitempty"`
	// Sibling is set on cross-session runs (Scenario.Sessions > 1).
	Sibling *SiblingOutcome `json:"sibling,omitempty"`
	// Err is a harness-level failure: sender error, or the scenario
	// blowing its Timeout budget (the bounded-recovery bound).
	Err string `json:"err,omitempty"`
}

// chaosOptions are the engine options every scenario runs with: timeouts
// scaled for fast in-memory iteration, batching disabled so byte-offset
// marks trigger on chunk boundaries.
func (sc Scenario) options() core.Options {
	o := core.Options{
		ChunkSize:           sc.ChunkSize,
		WindowChunks:        sc.WindowChunks,
		MaxBatchBytes:       1, // below ChunkSize: one chunk per write
		WriteStallTimeout:   100 * time.Millisecond,
		PingTimeout:         60 * time.Millisecond,
		DialTimeout:         250 * time.Millisecond,
		DialRetries:         2,
		GetTimeout:          time.Second,
		FetchTimeout:        3 * time.Second,
		ReportTimeout:       3 * time.Second,
		UpstreamIdleTimeout: 1500 * time.Millisecond,
		MinThroughput:       sc.MinThroughput,
		SlowNodeGrace:       300 * time.Millisecond,
	}
	if sc.Rerank {
		// Chaos-speed re-ranking: rate spokes every 80ms so a collapsed
		// link is visible (and a migration plannable) well inside the
		// shrunk payload's transfer time.
		o.Rerank = true
		o.RerankInterval = 80 * time.Millisecond
		o.RerankMinInterval = 160 * time.Millisecond
	}
	return o
}

// DetectBudget bounds how long the engine may take to record an injected
// failure under the scenario options; Check enforces it per recovery.
const DetectBudget = 3 * time.Second

// prefixSink verifies bytes against the expected payload as they arrive
// and optionally throttles (the slow-receiver fault) or fails outright at
// a byte offset (the sink-crash fault). Any divergence is remembered as
// corruption; a prefix is always acceptable (aborted nodes legitimately
// hold partial data).
type prefixSink struct {
	want   []byte
	clk    core.Clock    // throttle pacing: the scenario's clock, not raw time.Sleep
	rate   atomic.Uint64 // bytes/s; 0 = full speed
	failAt int           // fail the write crossing this offset (0 = never)
	onFail func()        // observed exactly once, when the failure fires

	mu      sync.Mutex
	off     int
	corrupt bool
	failed  bool
}

func newPrefixSink(want []byte, clk core.Clock) *prefixSink {
	return &prefixSink{want: want, clk: clk}
}

func (s *prefixSink) Write(p []byte) (int, error) {
	if r := s.rate.Load(); r > 0 {
		s.clk.Sleep(time.Duration(float64(len(p)) / float64(r) * float64(time.Second)))
	}
	s.mu.Lock()
	end := s.off + len(p)
	if end > len(s.want) || !bytes.Equal(p, s.want[s.off:end]) {
		s.corrupt = true
	}
	if s.failAt > 0 && end >= s.failAt && !s.failed {
		s.failed = true
		onFail := s.onFail
		off := s.off
		s.mu.Unlock()
		if onFail != nil {
			onFail()
		}
		return 0, fmt.Errorf("chaos: injected sink crash at offset %d", off)
	}
	s.off = end
	s.mu.Unlock()
	return len(p), nil
}

func (s *prefixSink) state() (received int, corrupt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off, s.corrupt
}

// runner drives one scenario.
type runner struct {
	sc      Scenario
	fabric  *transport.Fabric
	payload []byte
	clk     core.Clock // scenario time source, shared with every sink
	sinks   []*prefixSink
	sess    *core.Session
	start   time.Time

	runCtx context.Context // bounds late-joiner admissions

	mu           sync.Mutex
	ingested     []uint64 // per-index high-water of TraceChunk
	pending      []Fault  // byte-mark faults not yet applied
	pendingJoins []*joinerRun
	joiners      []*joinerRun // schedule order, fired or not
	injections   []Injection
	events       []core.TraceEvent

	rebornMu sync.Mutex
	reborn   map[int]*rebornNode
	rebornWG sync.WaitGroup
	joinWG   sync.WaitGroup

	timers   []*time.Timer
	timersMu sync.Mutex
}

// joinerRun tracks one scheduled late joiner from mark to terminal state.
type joinerRun struct {
	spec JoinSpec
	name string // fabric host
	sink *prefixSink

	// Guarded by runner.mu.
	idx     int // granted pipeline index; -1 until grafted
	head    uint64
	crashed bool
	refused string
	err     error
}

type rebornNode struct {
	sink *prefixSink
	node *core.Node
	err  error
	done chan struct{}
}

// Run executes one scenario end-to-end and returns its Result. The context
// bounds the whole run on top of the scenario's own Timeout budget.
func Run(ctx context.Context, sc Scenario) *Result {
	return RunWithClock(ctx, sc, core.SystemClock())
}

// RunWithClock executes one scenario with an injected time source: the
// engine options and the throttled sinks share clk, so a harness that
// controls it can pace slow-sink throttles and protocol timers without
// burning wall-clock time. (The fault schedule's own timers still run on
// wall clock; only engine-side and sink-side time goes through clk.)
func RunWithClock(ctx context.Context, sc Scenario, clk core.Clock) *Result {
	if sc.Timeout <= 0 {
		sc.Timeout = 30 * time.Second
	}
	if sc.Sessions > 1 {
		return runCross(ctx, sc, clk)
	}
	r := &runner{
		sc:       sc,
		fabric:   transport.NewFabric(sc.ChunkSize),
		payload:  benchkit.Payload(sc.PayloadSize, 42),
		clk:      clk,
		ingested: make([]uint64, sc.Nodes),
		reborn:   make(map[int]*rebornNode),
	}
	defer r.stopTimers()
	if sc.LinkRate > 0 {
		r.fabric.SetDefaultProfile(transport.Profile{Rate: sc.LinkRate})
	}
	// Pin the packet-drop coin flips so a udp-loss scenario replays the
	// same drop pattern from its seed (handcrafted clusters: seed 0).
	r.fabric.SeedPacketLoss(sc.Seed + 0x9e3779b9)

	peers := make([]core.Peer, sc.Nodes)
	r.sinks = make([]*prefixSink, sc.Nodes)
	for i := range peers {
		peers[i] = core.Peer{Name: r.host(i), Addr: r.host(i) + ":7000"}
		r.sinks[i] = newPrefixSink(r.payload, r.clk)
	}
	for i, js := range sc.Joins {
		r.joiners = append(r.joiners, &joinerRun{
			spec: js,
			name: fmt.Sprintf("j%d", i+1),
			sink: newPrefixSink(r.payload, r.clk),
			idx:  -1,
		})
	}

	// One time source for the whole scenario: the nodes' protocol timers
	// (Options.Clock) and the throttled sinks tick together.
	opts := sc.options()
	opts.Clock = r.clk
	cfg := core.SessionConfig{
		Peers:      peers,
		Opts:       opts,
		Transport:  sc.Transport,
		Topology:   sc.Topology,
		NetworkFor: func(i int) transport.Network { return r.fabric.Host(peers[i].Name) },
		SinkFor:    func(i int) io.Writer { return r.sinks[i] },
		Trace:      r.onTrace,
	}
	if sc.Stream {
		cfg.Input = bytes.NewReader(r.payload)
	} else {
		cfg.InputFile = benchkit.NewReaderAt(r.payload)
		cfg.InputSize = sc.PayloadSize
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sess, err := core.StartSession(runCtx, cfg)
	if err != nil {
		return &Result{Scenario: sc, Err: fmt.Sprintf("start: %v", err)}
	}
	r.sess = sess
	r.runCtx = runCtx
	r.start = time.Now()
	r.armSchedule()

	res := &Result{Scenario: sc}
	done := make(chan *core.SessionResult, 1)
	go func() {
		sres, _ := sess.Wait()
		done <- sres
	}()
	var sres *core.SessionResult
	select {
	case sres = <-done:
	case <-time.After(sc.Timeout):
		// Bounded recovery violated: ask for a graceful QUIT, then give
		// the epilogue a short grace before declaring the run hung.
		res.Err = fmt.Sprintf("scenario exceeded its %v budget", sc.Timeout)
		cancel()
		select {
		case sres = <-done:
		case <-time.After(10 * time.Second):
			res.Err = "scenario hung past budget + grace; nodes leaked"
			return res
		}
	}
	res.Elapsed = time.Since(r.start)

	// Wait for restarted nodes and late joiners to settle.
	rebornDone := make(chan struct{})
	go func() { r.rebornWG.Wait(); r.joinWG.Wait(); close(rebornDone) }()
	select {
	case <-rebornDone:
	case <-time.After(10 * time.Second):
		if res.Err == "" {
			res.Err = "restarted or joined node never finished"
		}
	}

	r.assemble(res, sres)
	return res
}

func (r *runner) host(i int) string { return fmt.Sprintf("n%d", i+1) }

// armSchedule starts wall-clock faults and registers byte-mark faults
// and joins.
func (r *runner) armSchedule() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sc.Faults {
		f := f
		if f.When.Bytes > 0 || f.When.Reorg {
			r.pending = append(r.pending, f)
			continue
		}
		r.afterFunc(f.When.After, func() { r.inject(f) })
	}
	for _, jr := range r.joiners {
		jr := jr
		if jr.spec.When.Bytes > 0 || jr.spec.When.Reorg {
			r.pendingJoins = append(r.pendingJoins, jr)
			continue
		}
		r.afterFunc(jr.spec.When.After, func() { r.launchJoin(jr) })
	}
}

// afterFunc is time.AfterFunc with shutdown tracking.
func (r *runner) afterFunc(d time.Duration, fn func()) {
	r.timersMu.Lock()
	defer r.timersMu.Unlock()
	r.timers = append(r.timers, time.AfterFunc(d, fn))
}

func (r *runner) stopTimers() {
	r.timersMu.Lock()
	defer r.timersMu.Unlock()
	for _, t := range r.timers {
		t.Stop()
	}
}

// onTrace is the core.Tracer: it records every event and fires byte-mark
// faults synchronously at the chunk boundary that crossed them, which is
// what makes a seeded schedule reproduce the same interleaving class run
// after run (no polling, no sleeps).
func (r *runner) onTrace(ev core.TraceEvent) {
	var due []Fault
	var launches, kills []*joinerRun
	r.mu.Lock()
	r.events = append(r.events, ev)
	if ev.Kind == core.TraceChunk && ev.Node < len(r.ingested) {
		if ev.Offset > r.ingested[ev.Node] {
			r.ingested[ev.Node] = ev.Offset
		}
		keep := r.pending[:0]
		for _, f := range r.pending {
			if !f.When.Reorg && f.When.Node == ev.Node && r.ingested[ev.Node] >= f.When.Bytes {
				due = append(due, f)
			} else {
				keep = append(keep, f)
			}
		}
		r.pending = keep
		keepJ := r.pendingJoins[:0]
		for _, jr := range r.pendingJoins {
			if !jr.spec.When.Reorg && jr.spec.When.Node == ev.Node && r.ingested[ev.Node] >= jr.spec.When.Bytes {
				launches = append(launches, jr)
			} else {
				keepJ = append(keepJ, jr)
			}
		}
		r.pendingJoins = keepJ
	}
	if ev.Kind == core.TraceChunk && ev.Node >= len(r.ingested) {
		// A late joiner's ingestion (catch-up backfill and live chunks
		// alike): fire its scheduled crash once it crosses the mark.
		for _, jr := range r.joiners {
			if jr.idx == ev.Node && jr.spec.CrashAt > 0 && !jr.crashed && ev.Offset >= jr.spec.CrashAt {
				jr.crashed = true
				kills = append(kills, jr)
			}
		}
	}
	if ev.Kind == core.TraceReorg {
		// A migration fired: release reorg-mark faults, resolving the
		// role sentinels against this event — the demoted node rides in
		// Peer, the promoted partner in the Detail annotation.
		keep := r.pending[:0]
		for _, f := range r.pending {
			if !f.When.Reorg {
				keep = append(keep, f)
				continue
			}
			switch f.Victim {
			case ReorgDemoted:
				f.Victim = ev.Peer
			case ReorgPromoted:
				p, ok := ev.ReorgPartner()
				if !ok {
					keep = append(keep, f)
					continue
				}
				f.Victim = p
			}
			due = append(due, f)
		}
		r.pending = keep
		keepJ := r.pendingJoins[:0]
		for _, jr := range r.pendingJoins {
			if jr.spec.When.Reorg {
				launches = append(launches, jr)
			} else {
				keepJ = append(keepJ, jr)
			}
		}
		r.pendingJoins = keepJ
	}
	r.mu.Unlock()
	for _, f := range due {
		r.inject(f)
	}
	for _, jr := range launches {
		r.launchJoin(jr)
	}
	for _, jr := range kills {
		r.killJoiner(jr)
	}
}

// launchJoin grafts one scheduled joiner in the background: the join
// negotiation does real protocol I/O against the live session, so it
// must not run on the trace callback.
func (r *runner) launchJoin(jr *joinerRun) {
	r.joinWG.Add(1)
	go func() {
		defer r.joinWG.Done()
		h, err := r.sess.Join(r.runCtx, core.JoinConfig{
			Peer:    core.Peer{Name: jr.name, Addr: jr.name + ":7000"},
			Network: r.fabric.Host(jr.name),
			Sink:    jr.sink,
			Trace:   r.onTrace,
		})
		if err != nil {
			r.mu.Lock()
			jr.refused = err.Error()
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		jr.idx = h.Grant.Index
		jr.head = h.Grant.Head
		r.mu.Unlock()
		_, werr := h.Wait()
		r.mu.Lock()
		jr.err = werr
		r.mu.Unlock()
	}()
}

// killJoiner crashes a grafted joiner's host mid-run and records the
// injection under the joiner's granted pipeline index, so Check can hold
// the ring report to the same victim-naming bar as a scheduled Crash.
func (r *runner) killJoiner(jr *joinerRun) {
	at := time.Since(r.start)
	r.fabric.Kill(jr.name)
	r.mu.Lock()
	r.injections = append(r.injections, Injection{
		Fault: Fault{Kind: Crash, Victim: jr.idx, Peer: -1, When: jr.spec.When},
		At:    at,
	})
	r.mu.Unlock()
}

// inject applies one fault now and schedules its heal, if any.
func (r *runner) inject(f Fault) {
	victim := r.host(f.Victim)
	peer := r.host(f.peerIndex())
	// Timestamp before applying: a crash resets pipes synchronously, so
	// the first TraceFailureDetected can land before this function
	// returns and must not predate the recorded injection time.
	at := time.Since(r.start)
	switch f.Kind {
	case Crash:
		r.fabric.Kill(victim)
	case Restart:
		r.fabric.Kill(victim)
		d := f.Delay
		if d <= 0 {
			d = 100 * time.Millisecond
		}
		r.afterFunc(d, func() { r.revive(f.Victim) })
	case Partition:
		r.fabric.Partition(peer, victim)
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() { r.fabric.Heal(peer, victim) })
		}
	case AsymPartition:
		r.fabric.PartitionOneWay(peer, victim)
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() { r.fabric.HealOneWay(peer, victim) })
		}
	case RateCollapse:
		r.fabric.SetLiveProfile(peer, victim, transport.Profile{Rate: f.Rate})
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() {
				r.fabric.SetLiveProfile(peer, victim, transport.Profile{Rate: r.sc.LinkRate})
			})
		}
	case WriteStall:
		r.fabric.StallLink(peer, victim)
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() { r.fabric.ResumeLink(peer, victim) })
		}
	case SlowSink:
		r.sinks[f.Victim].rate.Store(uint64(f.Rate))
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() { r.sinks[f.Victim].rate.Store(0) })
		}
	case PacketLoss:
		r.fabric.SetPacketLoss(peer, victim, f.Rate)
		if f.Delay > 0 {
			r.afterFunc(f.Delay, func() { r.fabric.SetPacketLoss(peer, victim, 0) })
		}
	}
	r.mu.Lock()
	r.injections = append(r.injections, Injection{Fault: f, At: at})
	r.mu.Unlock()
}

// revive brings a crashed host back as a fresh node in the same pipeline
// slot: the fabric host returns, a new listener binds the old address, and
// a brand-new engine instance re-runs index Victim. Whether the pipeline
// re-adopts it (FORGET → gap fetch from the sender) or turns it away with
// QUIT(excluded) depends on how far detection got — both are valid
// recoveries that Check accepts.
func (r *runner) revive(idx int) {
	host := r.host(idx)
	r.fabric.Revive(host)
	network := r.fabric.Host(host)
	l, err := network.Listen(r.sess.Plan.Peers[idx].Addr)
	if err != nil {
		return // e.g. the scenario ended and the address namespace is gone
	}
	rb := &rebornNode{sink: newPrefixSink(r.payload, r.clk), done: make(chan struct{})}
	node, err := core.NewNode(core.NodeConfig{
		Index:    idx,
		Plan:     r.sess.Plan,
		Network:  network,
		Listener: l,
		Sink:     rb.sink,
		Trace:    r.onTrace,
	})
	if err != nil {
		l.Close()
		return
	}
	rb.node = node
	r.rebornMu.Lock()
	r.reborn[idx] = rb
	r.rebornMu.Unlock()
	r.rebornWG.Add(1)
	go func() {
		defer r.rebornWG.Done()
		_, rerr := node.Run(context.Background())
		rb.err = rerr
		close(rb.done)
	}()
}

// assemble folds session results, reborn outcomes and trace events into
// the Result.
func (r *runner) assemble(res *Result, sres *core.SessionResult) {
	r.mu.Lock()
	res.Injections = append([]Injection(nil), r.injections...)
	events := append([]core.TraceEvent(nil), r.events...)
	for _, jr := range r.joiners {
		out := JoinOutcome{
			Index:        jr.idx,
			Grafted:      jr.idx >= 0,
			RefuseReason: jr.refused,
			Head:         jr.head,
			Crashed:      jr.crashed,
		}
		if jr.err != nil {
			out.Err = jr.err.Error()
		}
		received, corrupt := jr.sink.state()
		out.ReceivedBytes = uint64(received)
		out.Corrupt = corrupt
		out.Complete = !corrupt && int64(received) == r.sc.PayloadSize
		res.Joins = append(res.Joins, out)
	}
	r.mu.Unlock()

	for _, ev := range events {
		if ev.Kind == core.TraceReorg {
			res.Migrations++
		}
	}
	if r.sc.Rerank && len(r.sess.Nodes) > 0 {
		_, occupants, _, _ := r.sess.Nodes[0].ReorgState()
		res.FinalView = occupants
	}

	if sres != nil {
		res.Report = sres.Report
		if res.Report == nil && len(r.sess.Nodes) > 0 {
			// Sender failed; keep whatever its merged view was.
			res.Report = &core.Report{}
		}
		if res.Err == "" && sres.NodeErrs[0] != nil {
			res.Err = fmt.Sprintf("sender: %v", sres.NodeErrs[0])
		}
	}

	res.Outcomes = make([]NodeOutcome, r.sc.Nodes)
	for i := 0; i < r.sc.Nodes; i++ {
		out := NodeOutcome{Index: i}
		node := r.sess.Nodes[i]
		sink := r.sinks[i]
		var nerr error
		if sres != nil {
			nerr = sres.NodeErrs[i]
		}
		r.rebornMu.Lock()
		rb := r.reborn[i]
		r.rebornMu.Unlock()
		if rb != nil {
			// The slot's terminal state is the restarted node's.
			out.Reborn = true
			sink = rb.sink
			nerr = rb.err
			node = rb.node
		}
		if nerr != nil {
			out.Err = nerr.Error()
		}
		out.Abandoned = node.Abandoned()
		out.AbandonReason = node.AbandonReason()
		received, corrupt := sink.state()
		out.ReceivedBytes = uint64(received)
		out.Corrupt = corrupt
		out.Complete = !corrupt && int64(received) == r.sc.PayloadSize
		res.Outcomes[i] = out
	}

	res.Recoveries = r.extractRecoveries(res, events)
}

// extractRecoveries computes per-injection detection and resume latencies
// from the trace events.
func (r *runner) extractRecoveries(res *Result, events []core.TraceEvent) []Recovery {
	crashed := map[int]bool{}
	for _, inj := range res.Injections {
		if inj.Fault.Kind == Crash {
			crashed[inj.Fault.Victim] = true
		}
	}
	var out []Recovery
	for _, inj := range res.Injections {
		switch inj.Fault.Kind {
		case Crash, Restart, Partition, AsymPartition:
		default:
			continue // healed-in-place faults need not be "detected"
		}
		injAt := r.start.Add(inj.At)
		rec := Recovery{Victim: inj.Fault.Victim}
		var detectedAt time.Time
		for _, ev := range events {
			if ev.Kind == core.TraceFailureDetected && ev.Peer == inj.Fault.Victim && !ev.At.Before(injAt) {
				if !rec.Detected || ev.At.Before(detectedAt) {
					rec.Detected = true
					detectedAt = ev.At
				}
			}
		}
		if rec.Detected {
			rec.DetectLatency = detectedAt.Sub(injAt)
			// First chunk at the nearest surviving downstream node after
			// detection: the dissemination flows again past the hole.
			succ := r.resumeProbe(inj.Fault.Victim, crashed)
			if succ > 0 {
				var resumedAt time.Time
				for _, ev := range events {
					if ev.Kind == core.TraceChunk && ev.Node == succ && !ev.At.Before(detectedAt) {
						if !rec.Resumed || ev.At.Before(resumedAt) {
							rec.Resumed = true
							resumedAt = ev.At
						}
					}
				}
				if rec.Resumed {
					rec.ResumeLatency = resumedAt.Sub(injAt)
				}
			}
		}
		out = append(out, rec)
	}
	return out
}

// resumeProbe picks the node whose post-detection chunk ingestion proves
// the dissemination flows again past the victim: the nearest surviving
// successor on a chain, the first surviving descendant (BFS order) of the
// victim on a tree — that is where the re-grafted subtree resumes.
func (r *runner) resumeProbe(victim int, crashed map[int]bool) int {
	k, err := core.TreeArity(r.sc.Topology)
	if err != nil || k <= 1 {
		for s := victim + 1; s < r.sc.Nodes; s++ {
			if !crashed[s] {
				return s
			}
		}
		return -1
	}
	queue := treeKids(victim, k, r.sc.Nodes)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if !crashed[s] {
			return s
		}
		queue = append(queue, treeKids(s, k, r.sc.Nodes)...)
	}
	return -1
}

// treeKids mirrors the BFS k-ary child rule of core's tree plans
// (core/treeplan.go) for the resume probe.
func treeKids(i, k, n int) []int {
	lo := k*i + 1
	if lo >= n {
		return nil
	}
	hi := lo + k
	if hi > n {
		hi = n
	}
	kids := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		kids = append(kids, c)
	}
	return kids
}
