package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kascade/internal/core"
)

// TestTreeCrashProperty is the seeded property check behind the tree
// recovery claim: for ANY BFS k-ary tree plan (random node count and
// arity) and ANY single non-root crash victim, every survivor receives
// the payload bit-perfect and the ring report names exactly the victim —
// whether the victim was a root child, an interior node whose children
// must re-graft onto their grandparent, or a leaf. Shapes and victims
// derive from -chaos.seed, so a failing case prints a replayable seed.
func TestTreeCrashProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep runs mid-size pipelines")
	}
	rng := rand.New(rand.NewSource(*chaosSeed))
	const cases = 10
	for i := 0; i < cases; i++ {
		n := 3 + rng.Intn(14)      // [3, 16]
		k := 2 + rng.Intn(3)       // [2, 4]
		victim := 1 + rng.Intn(n-1) // any non-root node
		shape := DefaultShape(n)
		sc := Scenario{
			Name:         fmt.Sprintf("tree-prop/n=%d/k=%d/victim=%d", n, k, victim),
			Seed:         *chaosSeed,
			Nodes:        n,
			PayloadSize:  shape.PayloadSize,
			ChunkSize:    shape.ChunkSize,
			WindowChunks: shape.WindowChunks,
			LinkRate:     shape.LinkRate,
			Topology:     core.TopologyTree(k),
			Timeout:      20 * time.Second,
			Faults: []Fault{{
				Kind: Crash, Victim: victim, Peer: -1,
				When: Mark{Node: victim, Bytes: uint64(shape.PayloadSize / 4)},
			}},
		}
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(context.Background(), sc)
			if err := Check(res); err != nil {
				t.Fatalf("%v\n%s", err, sc.Repro(*chaosSeed))
			}
			if !res.Report.Failed(victim) {
				t.Fatalf("report does not name the victim %d: %v\n%s", victim, res.Report, sc.Repro(*chaosSeed))
			}
			for _, out := range res.Outcomes {
				if out.Index == 0 || out.Index == victim {
					continue
				}
				if !out.Complete {
					t.Fatalf("survivor %d incomplete: %+v\n%s", out.Index, out, sc.Repro(*chaosSeed))
				}
			}
		})
	}
}
