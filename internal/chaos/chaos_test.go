package chaos

import (
	"context"
	"flag"
	"reflect"
	"strings"
	"testing"
	"time"
)

// chaosSeed pins the generated part of the scenario matrix; a failing
// scenario prints the exact command (including this seed) that replays it.
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for generated chaos schedules")

// TestChaosMatrix sweeps the full shrunk scenario matrix: every fault kind
// × node counts {3,7,16} plus compound clusters and seeded random
// schedules, asserting bit-perfect delivery, correct victim naming and
// bounded recovery on each.
func TestChaosMatrix(t *testing.T) {
	scenarios := Matrix(*chaosSeed, false)
	if len(scenarios) < 20 {
		t.Fatalf("matrix has %d scenario clusters, want >= 20", len(scenarios))
	}
	for _, sc := range scenarios {
		sc := sc
		if testing.Short() && sc.Nodes > 3 {
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(context.Background(), sc)
			if err := Check(res); err != nil {
				t.Fatalf("%v\n%s", err, sc.Repro(*chaosSeed))
			}
		})
	}
}

// TestGenerateIsDeterministic pins the reproduction contract: the same
// seed and shape must produce byte-identical schedules.
func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(1234, DefaultShape(7))
	b := Generate(1234, DefaultShape(7))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Schedule(), b.Schedule())
	}
	c := Generate(1235, DefaultShape(7))
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical schedules (generator ignores the seed?)")
	}
	for _, f := range a.Faults {
		if f.Victim <= 0 || f.Victim >= 7 {
			t.Fatalf("generated fault targets node %d of a 7-node pipeline", f.Victim)
		}
	}
}

// TestGenerateVictimsDistinct: a generated schedule never targets the same
// victim twice (each slot fails one way per run).
func TestGenerateVictimsDistinct(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed, DefaultShape(7))
		seen := map[int]bool{}
		for _, f := range sc.Faults {
			if seen[f.Victim] {
				t.Fatalf("seed %d targets node %d twice:\n%s", seed, f.Victim, sc.Schedule())
			}
			seen[f.Victim] = true
		}
	}
}

// TestHealthyScenarioBaseline: no faults means no failures, every node
// complete — the engine itself must not perturb a clean run.
func TestHealthyScenarioBaseline(t *testing.T) {
	sc := Scenario{
		Name:         "baseline",
		Nodes:        5,
		PayloadSize:  128 << 10,
		ChunkSize:    8 << 10,
		WindowChunks: 8,
		LinkRate:     8 << 20,
		Timeout:      20 * time.Second,
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("clean run reported failures: %v", res.Report)
	}
	for _, out := range res.Outcomes[1:] {
		if !out.Complete {
			t.Fatalf("node %d incomplete in a clean run: %+v", out.Index, out)
		}
	}
}

// TestCrashRecoveryLatencyMeasured: a mid-pipeline crash must yield a
// detection and a resume measurement, both within budget.
func TestCrashRecoveryLatencyMeasured(t *testing.T) {
	sc := Scenario{
		Name:         "crash-latency",
		Nodes:        5,
		PayloadSize:  256 << 10,
		ChunkSize:    8 << 10,
		WindowChunks: 8,
		LinkRate:     2 << 20,
		Timeout:      20 * time.Second,
		Faults: []Fault{{
			Kind: Crash, Victim: 2, Peer: -1,
			When: Mark{Node: 2, Bytes: 64 << 10},
		}},
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 1 {
		t.Fatalf("fault did not fire: %+v", res.Injections)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("want one recovery record, got %+v", res.Recoveries)
	}
	rec := res.Recoveries[0]
	if !rec.Detected {
		t.Fatal("crash was never detected")
	}
	if rec.DetectLatency <= 0 || rec.DetectLatency > DetectBudget {
		t.Fatalf("detect latency %v out of (0, %v]", rec.DetectLatency, DetectBudget)
	}
	if !rec.Resumed {
		t.Fatal("pipeline never resumed past the victim")
	}
	if !res.Report.Failed(2) {
		t.Fatalf("report must name the victim: %v", res.Report)
	}
	if reason := failureReason(res, 2); !strings.Contains(reason, "dead") && !strings.Contains(reason, "failed") && !strings.Contains(reason, "reconnect") {
		t.Logf("victim reason: %q", reason) // informative, not asserted
	}
}

func failureReason(res *Result, idx int) string {
	for _, f := range res.Report.Failures {
		if f.Index == idx {
			return f.Reason
		}
	}
	return ""
}

// TestCrossSessionIsolation drives the cross-session harness directly: the
// sink-crash must actually fire (injection recorded, victim named in the
// faulted session's report) and the sibling outcome must show clean,
// complete delivery over the shared engines.
func TestCrossSessionIsolation(t *testing.T) {
	sc := Scenario{
		Name:         "cross-session-direct",
		Nodes:        4,
		Sessions:     3,
		PayloadSize:  256 << 10,
		ChunkSize:    8 << 10,
		WindowChunks: 8,
		LinkRate:     4 << 20,
		Timeout:      20 * time.Second,
		Faults: []Fault{{
			Kind: SinkCrash, Victim: 2, Peer: -1,
			When: Mark{Node: 2, Bytes: 96 << 10},
		}},
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 1 {
		t.Fatalf("sink crash never fired: %+v", res.Injections)
	}
	if !res.Report.Failed(2) {
		t.Fatalf("faulted session's report does not name the victim: %v", res.Report)
	}
	if !res.Outcomes[2].Abandoned {
		t.Fatalf("victim outcome not abandoned: %+v", res.Outcomes[2])
	}
	sib := res.Sibling
	if sib == nil || sib.Sessions != 2 {
		t.Fatalf("sibling outcome missing: %+v", sib)
	}
	if sib.Failures != 0 || sib.Corrupt || !sib.Complete {
		t.Fatalf("siblings disturbed: %+v", sib)
	}
	if sib.BaselineMs <= 0 || sib.ElapsedMs <= 0 {
		t.Fatalf("latency measurements missing: %+v", sib)
	}
}

// TestByteMarkFires: a byte-offset trigger on a mid-transfer mark must
// actually inject (the fault fires on the chunk boundary crossing the
// mark), and a short healed write-stall must leave the broadcast clean.
func TestByteMarkFires(t *testing.T) {
	sc := Scenario{
		Name:         "mark-precision",
		Nodes:        3,
		PayloadSize:  256 << 10,
		ChunkSize:    8 << 10,
		WindowChunks: 8,
		LinkRate:     4 << 20,
		Timeout:      20 * time.Second,
		Faults: []Fault{{
			Kind: WriteStall, Victim: 1, Peer: -1,
			When:  Mark{Node: 1, Bytes: 96 << 10},
			Delay: 100 * time.Millisecond,
		}},
	}
	res := Run(context.Background(), sc)
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 1 {
		t.Fatalf("byte-mark fault never fired: %+v", res.Injections)
	}
	if got := res.Injections[0].Fault.When.Bytes; got != 96<<10 {
		t.Fatalf("wrong fault fired: mark %d", got)
	}
}
