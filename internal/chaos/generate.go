package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"kascade/internal/core"
)

// Shape fixes the non-fault dimensions of generated scenarios.
type Shape struct {
	Nodes        int
	PayloadSize  int64
	ChunkSize    int
	WindowChunks int
	LinkRate     float64
	Stream       bool
}

// DefaultShape is the CI-sized scenario shape: small enough that a full
// matrix runs in seconds, paced so byte marks land mid-transfer.
func DefaultShape(nodes int) Shape {
	return Shape{
		Nodes:        nodes,
		PayloadSize:  256 << 10,
		ChunkSize:    8 << 10,
		WindowChunks: 8,
		LinkRate:     4 << 20,
	}
}

// Generate derives one randomized scenario from a seed: 1–3 faults of
// random kinds on distinct victims, triggered at random byte marks in the
// first half of the transfer. The same (seed, shape) always yields the
// same schedule — the reproduction contract behind `-chaos.seed`.
func Generate(seed int64, shape Shape) Scenario {
	rng := rand.New(rand.NewSource(seed))
	kinds := []FaultKind{Crash, Restart, Partition, AsymPartition, RateCollapse, WriteStall, SlowSink}

	maxFaults := 3
	if shape.Nodes-1 < maxFaults {
		maxFaults = shape.Nodes - 1
	}
	nf := rng.Intn(maxFaults) + 1
	perm := rng.Perm(shape.Nodes - 1) // victims drawn without replacement
	sc := Scenario{
		Name:         fmt.Sprintf("gen/n=%d/seed=%d", shape.Nodes, seed),
		Seed:         seed,
		Nodes:        shape.Nodes,
		PayloadSize:  shape.PayloadSize,
		ChunkSize:    shape.ChunkSize,
		WindowChunks: shape.WindowChunks,
		LinkRate:     shape.LinkRate,
		Stream:       shape.Stream,
	}
	for i := 0; i < nf; i++ {
		victim := perm[i] + 1
		kind := kinds[rng.Intn(len(kinds))]
		f := Fault{
			Kind:   kind,
			Victim: victim,
			Peer:   -1,
			When: Mark{
				Node:  victim,
				Bytes: uint64(shape.PayloadSize/8) + uint64(rng.Int63n(shape.PayloadSize/2)),
			},
		}
		switch kind {
		case Crash:
			// Permanent.
		case Restart:
			f.Delay = time.Duration(80+rng.Intn(220)) * time.Millisecond
		case Partition, AsymPartition:
			// Always heal: a black-holed link with nobody reconnecting
			// would park the victim until its idle timeout anyway; the
			// heal keeps scenario wall time bounded.
			f.Delay = time.Duration(200+rng.Intn(400)) * time.Millisecond
		case RateCollapse:
			f.Delay = time.Duration(200+rng.Intn(300)) * time.Millisecond
			f.Rate = float64(2<<10) * float64(1+rng.Intn(4))
		case WriteStall:
			f.Delay = time.Duration(150+rng.Intn(250)) * time.Millisecond
		case SlowSink:
			f.Delay = time.Duration(200+rng.Intn(300)) * time.Millisecond
			f.Rate = float64(64<<10) * float64(1+rng.Intn(4))
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// GenerateJoins derives one randomized dynamic-membership scenario from a
// seed: a fault-free rerank tree of random arity with 1–3 late joiners at
// random byte marks, some of which crash mid-catch-up. The same (seed,
// shape) always yields the same schedule. No MinGrafted floor is set: a
// randomly late mark may legitimately be refused ("broadcast is
// completing"), and Check accepts either outcome — the handcrafted matrix
// clusters carry the must-graft assertions.
func GenerateJoins(seed int64, shape Shape) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name:         fmt.Sprintf("gen-join/n=%d/seed=%d", shape.Nodes, seed),
		Seed:         seed,
		Nodes:        shape.Nodes,
		PayloadSize:  shape.PayloadSize,
		ChunkSize:    shape.ChunkSize,
		WindowChunks: shape.WindowChunks,
		LinkRate:     shape.LinkRate,
		Topology:     core.TopologyTree(2 + rng.Intn(2)),
		Rerank:       true,
	}
	nj := 1 + rng.Intn(3)
	for i := 0; i < nj; i++ {
		watch := 1 + rng.Intn(shape.Nodes-1)
		j := JoinSpec{When: Mark{
			Node:  watch,
			Bytes: uint64(shape.PayloadSize/8) + uint64(rng.Int63n(shape.PayloadSize/2)),
		}}
		if rng.Intn(3) == 0 {
			j.CrashAt = uint64(shape.PayloadSize/4) + uint64(rng.Int63n(shape.PayloadSize/2))
		}
		sc.Joins = append(sc.Joins, j)
	}
	return sc
}
