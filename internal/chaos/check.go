package chaos

import (
	"fmt"
	"strings"
)

// Check asserts the paper's recovery invariants over one Result:
//
//  1. the sender completed inside the scenario's time budget (bounded
//     recovery: a hung pipeline is the worst failure mode);
//  2. no sink ever diverged from the source prefix — bit-perfect bytes,
//     even on nodes that later died;
//  3. every survivor (not reported failed, not abandoned, no terminal
//     error) holds the complete payload;
//  4. victim naming is correct: the ring report only names nodes that were
//     actually faulted, abandoned, or died — a healthy node must never be
//     reported;
//  5. every permanently crashed victim is accounted for: named in the ring
//     report unless it finished its copy before the crash landed;
//  6. each detected failure was detected within DetectBudget.
//
// It returns nil when every invariant holds, or an error listing every
// violation.
func Check(res *Result) error {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	if res.Err != "" {
		fail("harness: %s", res.Err)
	}
	if res.Report == nil {
		fail("no ring report reached the sender")
		return fmt.Errorf("chaos: %s", strings.Join(bad, "; "))
	}

	victims := map[int]bool{}
	for _, v := range res.Scenario.victims() {
		victims[v] = true
	}

	for _, out := range res.Outcomes {
		if out.Index == 0 {
			continue
		}
		if out.Corrupt {
			fail("node %d sink diverged from the source prefix", out.Index)
		}
		reported := res.Report.Failed(out.Index)
		survivor := !reported && !out.Abandoned && out.Err == ""
		if survivor && !out.Complete {
			fail("survivor node %d incomplete: %d of %d bytes",
				out.Index, out.ReceivedBytes, res.Scenario.PayloadSize)
		}
		if reported && !victims[out.Index] && !out.Abandoned && out.Err == "" {
			fail("healthy node %d named in the ring report", out.Index)
		}
	}

	for _, inj := range res.Injections {
		if inj.Fault.Kind != Crash {
			continue
		}
		out := res.Outcomes[inj.Fault.Victim]
		if !res.Report.Failed(inj.Fault.Victim) && !out.Complete {
			fail("crashed node %d neither reported nor complete", inj.Fault.Victim)
		}
	}

	for _, rec := range res.Recoveries {
		if rec.Detected && rec.DetectLatency > DetectBudget {
			fail("failure of node %d took %v to detect (budget %v)",
				rec.Victim, rec.DetectLatency, DetectBudget)
		}
	}

	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: %s", strings.Join(bad, "; "))
}
