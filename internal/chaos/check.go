package chaos

import (
	"fmt"
	"strings"
)

// Check asserts the paper's recovery invariants over one Result:
//
//  1. the sender completed inside the scenario's time budget (bounded
//     recovery: a hung pipeline is the worst failure mode);
//  2. no sink ever diverged from the source prefix — bit-perfect bytes,
//     even on nodes that later died;
//  3. every survivor (not reported failed, not abandoned, no terminal
//     error) holds the complete payload;
//  4. victim naming is correct: the ring report only names nodes that were
//     actually faulted, abandoned, or died — a healthy node must never be
//     reported;
//  5. every permanently crashed victim is accounted for: named in the ring
//     report unless it finished its copy before the crash landed;
//  6. each detected failure was detected within DetectBudget;
//  7. packet loss is repaired, never fatal: a PacketLoss victim must hold
//     the complete payload and must not be named in the ring report;
//  8. re-ranking is bounded: on a Rerank scenario the executed migration
//     count stays within [MinMigrations, MaxMigrations] (the floor proves
//     the slow link actually provoked a re-ranking, the ceiling proves
//     hysteresis prevented thrash), and a non-Rerank run never migrates.
//
// It returns nil when every invariant holds, or an error listing every
// violation.
func Check(res *Result) error {
	var bad []string
	fail := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	if res.Err != "" {
		fail("harness: %s", res.Err)
	}
	if res.Report == nil {
		fail("no ring report reached the sender")
		return fmt.Errorf("chaos: %s", strings.Join(bad, "; "))
	}

	victims := map[int]bool{}
	for _, v := range res.Scenario.victims() {
		victims[v] = true
	}
	// Reorg-sentinel faults name a role, not an index; the runner records
	// the resolved victim in the injection log, so fold those in too.
	for _, inj := range res.Injections {
		if inj.Fault.Kind != PacketLoss && inj.Fault.Victim >= 0 {
			victims[inj.Fault.Victim] = true
		}
	}

	for _, out := range res.Outcomes {
		if out.Index == 0 {
			continue
		}
		if out.Corrupt {
			fail("node %d sink diverged from the source prefix", out.Index)
		}
		reported := res.Report.Failed(out.Index)
		survivor := !reported && !out.Abandoned && out.Err == ""
		if survivor && !out.Complete {
			fail("survivor node %d incomplete: %d of %d bytes",
				out.Index, out.ReceivedBytes, res.Scenario.PayloadSize)
		}
		if reported && !victims[out.Index] && !out.Abandoned && out.Err == "" {
			fail("healthy node %d named in the ring report", out.Index)
		}
	}

	for _, inj := range res.Injections {
		if inj.Fault.Victim >= len(res.Outcomes) {
			continue // a crashed late joiner; the join invariants cover it
		}
		switch inj.Fault.Kind {
		case Crash:
			out := res.Outcomes[inj.Fault.Victim]
			if !res.Report.Failed(inj.Fault.Victim) && !out.Complete {
				fail("crashed node %d neither reported nor complete", inj.Fault.Victim)
			}
		case PacketLoss:
			out := res.Outcomes[inj.Fault.Victim]
			if !out.Complete {
				fail("lossy node %d not repaired to completion: %d of %d bytes",
					inj.Fault.Victim, out.ReceivedBytes, res.Scenario.PayloadSize)
			}
			if res.Report.Failed(inj.Fault.Victim) {
				fail("repaired node %d named in the ring report", inj.Fault.Victim)
			}
		}
	}

	if sc := res.Scenario; sc.Rerank {
		if res.Migrations < sc.MinMigrations {
			fail("only %d migration(s) executed, scenario demands >= %d",
				res.Migrations, sc.MinMigrations)
		}
		if sc.MaxMigrations > 0 && res.Migrations > sc.MaxMigrations {
			fail("%d migrations executed, hysteresis bound is %d",
				res.Migrations, sc.MaxMigrations)
		}
	} else if res.Migrations > 0 {
		fail("%d migration(s) executed without Rerank enabled", res.Migrations)
	}

	// Dynamic membership (Scenario.Joins): every scheduled join either
	// grafted or was refused with a typed reason; a grafted joiner's sink
	// never diverges, reaches the full payload unless the schedule
	// crashed it, and stays out of the ring report when healthy; a
	// crashed joiner is named in the report unless it finished first
	// (the Crash invariant, under the joiner's granted index); and at
	// least MinGrafted joins actually landed.
	grafted := 0
	for i, j := range res.Joins {
		if j.Corrupt {
			fail("joiner %d sink diverged from the source prefix", i)
		}
		if !j.Grafted {
			if j.RefuseReason == "" {
				fail("join %d neither grafted nor refused", i)
			}
			continue
		}
		grafted++
		if j.Crashed {
			if !res.Report.Failed(j.Index) && !j.Complete {
				fail("crashed joiner (node %d) neither reported nor complete", j.Index)
			}
			continue
		}
		if j.Err != "" {
			fail("joiner (node %d) failed: %s", j.Index, j.Err)
		}
		if !j.Complete {
			fail("joiner (node %d) incomplete: %d of %d bytes",
				j.Index, j.ReceivedBytes, res.Scenario.PayloadSize)
		}
		if res.Report.Failed(j.Index) {
			fail("healthy joiner (node %d) named in the ring report", j.Index)
		}
	}
	if grafted < res.Scenario.MinGrafted {
		var refusals []string
		for _, j := range res.Joins {
			if !j.Grafted && j.RefuseReason != "" {
				refusals = append(refusals, j.RefuseReason)
			}
		}
		fail("only %d of %d scheduled joins grafted, scenario demands >= %d (refusals: %s)",
			grafted, len(res.Joins), res.Scenario.MinGrafted, strings.Join(refusals, "; "))
	}

	for _, rec := range res.Recoveries {
		if rec.Detected && rec.DetectLatency > DetectBudget {
			fail("failure of node %d took %v to detect (budget %v)",
				rec.Victim, rec.DetectLatency, DetectBudget)
		}
	}

	// Cross-session isolation (Sessions > 1): the sibling sessions sharing
	// the faulted session's engines must be completely undisturbed —
	// failure-free, bit-perfect, and no slower than the healthy baseline
	// phase within a generous noise bound.
	if sib := res.Sibling; sib != nil {
		if sib.Failures > 0 {
			fail("sibling sessions reported %d failure(s)", sib.Failures)
		}
		if sib.Corrupt {
			fail("a sibling session's sink diverged from its source prefix")
		}
		if !sib.Complete {
			fail("a sibling session did not deliver its full payload")
		}
		if limit := sib.BaselineMs*siblingLatencyFactor + siblingLatencySlackMs; sib.ElapsedMs > limit {
			fail("sibling latency disturbed: %.0f ms vs %.0f ms baseline (limit %.0f ms)",
				sib.ElapsedMs, sib.BaselineMs, limit)
		}
	}

	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("chaos: %s", strings.Join(bad, "; "))
}

// siblingLatencyFactor and siblingLatencySlackMs bound how much slower the
// slowest sibling session may run in the faulted phase versus the healthy
// baseline. The bound catches systemic disturbance (a wedged shared
// engine, a poisoned park queue, budget starvation) while absorbing
// scheduler noise on loaded CI runners — note the faulted session usually
// LIGHTENS the load mid-run, so a healthy engine sits far below it.
const (
	siblingLatencyFactor  = 3.0
	siblingLatencySlackMs = 1000.0
)
