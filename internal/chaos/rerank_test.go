package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kascade/internal/core"
)

// TestRerankDemotionProperty is the seeded property check behind the
// self-reorganization claim: for ANY BFS k-ary tree (random node count and
// arity) with ANY single interior node fed through a collapsed link, the
// re-ranking planner demotes exactly that node out of the interior — it
// ends the run in a leaf slot of the final view — while every node still
// receives the payload bit-perfect and the ring report stays empty (a slow
// node is re-ranked, never declared failed). Shapes and victims derive
// from -chaos.seed, so a failing case prints a replayable seed.
func TestRerankDemotionProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep runs mid-size pipelines")
	}
	rng := rand.New(rand.NewSource(*chaosSeed))
	const cases = 6
	for i := 0; i < cases; i++ {
		n := 6 + rng.Intn(11) // [6, 16]
		k := 2 + rng.Intn(2)  // {2, 3}
		var interiors []int   // non-root slots that have children
		for v := 1; v < n; v++ {
			if k*v+1 < n {
				interiors = append(interiors, v)
			}
		}
		if len(interiors) == 0 {
			continue // k=3 trees shorter than 5 nodes have no interior
		}
		victim := interiors[rng.Intn(len(interiors))]
		parent := (victim - 1) / k
		shape := DefaultShape(n)
		sc := Scenario{
			Name:          fmt.Sprintf("rerank-prop/n=%d/k=%d/victim=%d", n, k, victim),
			Seed:          *chaosSeed,
			Nodes:         n,
			PayloadSize:   shape.PayloadSize,
			ChunkSize:     shape.ChunkSize,
			WindowChunks:  shape.WindowChunks,
			LinkRate:      shape.LinkRate,
			Topology:      core.TopologyTree(k),
			Rerank:        true,
			MinMigrations: 1,
			MaxMigrations: 6,
			Timeout:       20 * time.Second,
			Faults: []Fault{{Kind: RateCollapse, Victim: victim, Peer: parent,
				Delay: 3 * time.Second, Rate: 48 << 10}},
		}
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(context.Background(), sc)
			if err := Check(res); err != nil {
				t.Fatalf("%v\n%s", err, sc.Repro(*chaosSeed))
			}
			if len(res.Report.Failures) != 0 {
				t.Fatalf("a throttled node must be re-ranked, not failed: %v\n%s",
					res.Report, sc.Repro(*chaosSeed))
			}
			slot := -1
			for s, occ := range res.FinalView {
				if occ == victim {
					slot = s
				}
			}
			if slot < 0 {
				t.Fatalf("victim %d missing from the final view %v\n%s",
					victim, res.FinalView, sc.Repro(*chaosSeed))
			}
			if k*slot+1 < n {
				t.Fatalf("victim %d still interior at slot %d of the final view %v (%d migrations)\n%s",
					victim, slot, res.FinalView, res.Migrations, sc.Repro(*chaosSeed))
			}
		})
	}
}
