// Package distem rebuilds the paper's fault-tolerance testbed (§IV-G): the
// Distem emulator folding 100 virtual nodes onto 20 physical machines of a
// 1 GbE cluster, five vnodes per physical node, with failures injected at
// scheduled instants.
//
// The folding is what pushes the no-failure reference down to ~80 MB/s
// (instead of the 112 MB/s a physical pipeline reaches): each vnode pays a
// virtualization overhead, and five pipeline positions share each physical
// NIC. Both effects are modelled directly as simulator links.
package distem

import (
	"fmt"

	"kascade/internal/simbcast"
	"kascade/internal/simnet"
)

// PlatformParams sizes the emulated platform.
type PlatformParams struct {
	// PhysNodes is the number of physical machines (paper: 20).
	PhysNodes int
	// Fold is the number of virtual nodes per physical one (paper: 5).
	Fold int
	// PhysCapacity is the physical NIC rate in bytes/s (1 GbE payload).
	PhysCapacity float64
	// LoopCapacity is the intra-host vnode-to-vnode rate.
	LoopCapacity float64
	// VnodeRelayRate is the per-vnode forwarding ceiling (virtualization
	// overhead; calibrated to the paper's 80 MB/s reference).
	VnodeRelayRate float64
	// EdgeLatencySec is the per-hop latency.
	EdgeLatencySec float64
}

// DefaultPlatform returns the paper's setup.
func DefaultPlatform() PlatformParams {
	return PlatformParams{
		PhysNodes:      20,
		Fold:           5,
		PhysCapacity:   112e6,
		LoopCapacity:   400e6,
		VnodeRelayRate: 84e6,
		EdgeLatencySec: 0.0002,
	}
}

// Platform is the folded virtual cluster; it implements simbcast.World
// over virtual node indices 0..PhysNodes*Fold-1. Virtual node v runs on
// physical node v/Fold, so consecutive pipeline positions mostly talk over
// loopback and each physical NIC carries exactly one inbound and one
// outbound pipeline stream — the layout Distem uses in the paper.
type Platform struct {
	params   PlatformParams
	network  *simnet.Network
	physUp   []*simnet.Link
	physDown []*simnet.Link
	loop     []*simnet.Link
	relay    []*simnet.Link // per vnode
}

// NewPlatform builds the folded platform on a fresh simulation.
func NewPlatform(net *simnet.Network, p PlatformParams) *Platform {
	if p.PhysNodes <= 0 || p.Fold <= 0 {
		panic("distem: platform needs positive sizes")
	}
	pl := &Platform{params: p, network: net}
	for i := 0; i < p.PhysNodes; i++ {
		pl.physUp = append(pl.physUp, net.NewLink(fmt.Sprintf("p%d/up", i+1), p.PhysCapacity))
		pl.physDown = append(pl.physDown, net.NewLink(fmt.Sprintf("p%d/down", i+1), p.PhysCapacity))
		pl.loop = append(pl.loop, net.NewLink(fmt.Sprintf("p%d/lo", i+1), p.LoopCapacity))
	}
	for v := 0; v < p.PhysNodes*p.Fold; v++ {
		pl.relay = append(pl.relay, net.NewLink(fmt.Sprintf("v%d/relay", v+1), p.VnodeRelayRate))
	}
	return pl
}

// Nodes returns the virtual node count.
func (pl *Platform) Nodes() int { return pl.params.PhysNodes * pl.params.Fold }

// Net returns the flow network.
func (pl *Platform) Net() *simnet.Network { return pl.network }

// Disk returns nil: the paper's Distem experiment measures the transfer
// itself (the folded nodes share disks, so payloads go to memory).
func (pl *Platform) Disk(int) *simnet.Link { return nil }

// Phys returns the physical host of virtual node v.
func (pl *Platform) Phys(v int) int { return v / pl.params.Fold }

// Path routes vnode i to vnode j: over the host loopback when co-located,
// through both physical NICs otherwise, always paying the receiving
// vnode's virtualization ceiling.
func (pl *Platform) Path(i, j int) (links []*simnet.Link, latency, maxRate float64) {
	if i == j {
		panic(fmt.Sprintf("distem: self-path for vnode %d", i))
	}
	pi, pj := pl.Phys(i), pl.Phys(j)
	if pi == pj {
		links = append(links, pl.loop[pi])
		latency = pl.params.EdgeLatencySec / 4
	} else {
		links = append(links, pl.physUp[pi], pl.physDown[pj])
		latency = 2 * pl.params.EdgeLatencySec
	}
	links = append(links, pl.relay[j])
	return links, latency, 0
}

// Scenario is one of the paper's §IV-G fault-injection cases: a named set
// of timed kills over the 100-vnode pipeline (vnode n1 is the sender).
type Scenario struct {
	Name     string
	Failures []simbcast.NodeFailure
}

// Scenarios returns the paper's seven cases verbatim. Failure positions
// are pipeline indices of the paper's n<k> names (n1 = position 0), and
// times are seconds after transfer start.
func Scenarios() []Scenario {
	pos := func(n int) int { return n - 1 }
	at := func(t float64, nodes ...int) []simbcast.NodeFailure {
		var out []simbcast.NodeFailure
		for _, n := range nodes {
			out = append(out, simbcast.NodeFailure{Pos: pos(n), At: t})
		}
		return out
	}
	seq := func(start, step float64, nodes ...int) []simbcast.NodeFailure {
		var out []simbcast.NodeFailure
		for i, n := range nodes {
			out = append(out, simbcast.NodeFailure{Pos: pos(n), At: start + float64(i)*step})
		}
		return out
	}
	return []Scenario{
		{Name: "no failure"},
		{Name: "2% sim. failures", Failures: at(10, 29, 69)},
		{Name: "5% sim. failures", Failures: at(10, 9, 29, 49, 69, 89)},
		{Name: "10% sim. failures", Failures: at(10, 9, 19, 29, 39, 49, 59, 69, 79, 89, 99)},
		{Name: "2% seq. failures", Failures: seq(10, 10, 29, 69)},
		{Name: "5% seq. failures", Failures: seq(10, 4, 9, 29, 49, 69, 89)},
		{Name: "10% seq. failures", Failures: seq(10, 2, 9, 19, 29, 39, 49, 59, 69, 79, 89, 99)},
	}
}
