package distem

import (
	"testing"

	"kascade/internal/simbcast"
	"kascade/internal/simnet"
)

func newWorld() *Platform {
	sim := simnet.New()
	net := simnet.NewNetwork(sim)
	return NewPlatform(net, DefaultPlatform())
}

func TestPlatformShape(t *testing.T) {
	pl := newWorld()
	if pl.Nodes() != 100 {
		t.Fatalf("vnodes = %d", pl.Nodes())
	}
	if pl.Phys(0) != 0 || pl.Phys(4) != 0 || pl.Phys(5) != 1 || pl.Phys(99) != 19 {
		t.Fatal("folding layout wrong")
	}
	// Co-located vnodes ride loopback (2 links incl. relay).
	links, _, _ := pl.Path(0, 1)
	if len(links) != 2 {
		t.Fatalf("loopback path: %d links", len(links))
	}
	// Cross-host vnodes ride both NICs (3 links incl. relay).
	links, _, _ = pl.Path(4, 5)
	if len(links) != 3 {
		t.Fatalf("cross-host path: %d links", len(links))
	}
}

func identityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func TestNoFailureReferenceNear80(t *testing.T) {
	pl := newWorld()
	bytes := int64(5 << 30)
	res := simbcast.Kascade(pl, identityOrder(100), bytes, simbcast.KascadeParams{ChunkSize: 64 << 20}, nil)
	tput := res.Throughput(bytes) / 1e6
	// The paper's reference value is ~80 MB/s (folding + virtualization
	// overhead, §IV-G).
	if tput < 70 || tput > 90 {
		t.Fatalf("no-failure reference %.1f MB/s, want ~80", tput)
	}
}

func TestScenariosMatchPaper(t *testing.T) {
	sc := Scenarios()
	if len(sc) != 7 {
		t.Fatalf("%d scenarios, want 7", len(sc))
	}
	counts := map[string]int{
		"no failure": 0, "2% sim. failures": 2, "5% sim. failures": 5,
		"10% sim. failures": 10, "2% seq. failures": 2,
		"5% seq. failures": 5, "10% seq. failures": 10,
	}
	for _, s := range sc {
		want, ok := counts[s.Name]
		if !ok {
			t.Fatalf("unexpected scenario %q", s.Name)
		}
		if len(s.Failures) != want {
			t.Fatalf("%s: %d failures, want %d", s.Name, len(s.Failures), want)
		}
	}
	// The 10% sequential case kills n9..n99 every 2 s from t=10 (§IV-G).
	var seq10 Scenario
	for _, s := range sc {
		if s.Name == "10% seq. failures" {
			seq10 = s
		}
	}
	if seq10.Failures[0].Pos != 8 || seq10.Failures[0].At != 10 {
		t.Fatalf("first failure: %+v", seq10.Failures[0])
	}
	if seq10.Failures[9].Pos != 98 || seq10.Failures[9].At != 28 {
		t.Fatalf("last failure: %+v", seq10.Failures[9])
	}
}

func TestFailureScenariosCompleteAndRank(t *testing.T) {
	bytes := int64(5 << 30)
	results := map[string]float64{}
	for _, sc := range Scenarios() {
		pl := newWorld()
		res := simbcast.Kascade(pl, identityOrder(100), bytes, simbcast.KascadeParams{ChunkSize: 64 << 20}, sc.Failures)
		// Every survivor holds the file (the paper: "in all the cases,
		// the file was transferred correctly").
		dead := map[int]bool{}
		for _, f := range sc.Failures {
			dead[f.Pos] = true
		}
		for i, ok := range res.Completed {
			if !dead[i] && !ok {
				t.Fatalf("%s: survivor %d incomplete", sc.Name, i)
			}
		}
		results[sc.Name] = res.Throughput(bytes)
	}
	ref := results["no failure"]
	// Failures always cost something.
	for name, tput := range results {
		if name != "no failure" && tput >= ref {
			t.Errorf("%s (%.1f MB/s) should be below the reference (%.1f)", name, tput/1e6, ref/1e6)
		}
	}
	// Sequential failures cost more than the same number of simultaneous
	// ones (detection is pipelined when failures are simultaneous, §IV-G).
	for _, pct := range []string{"2%", "5%", "10%"} {
		if results[pct+" seq. failures"] >= results[pct+" sim. failures"] {
			t.Errorf("%s: sequential (%.1f) should cost more than simultaneous (%.1f)",
				pct, results[pct+" seq. failures"]/1e6, results[pct+" sim. failures"]/1e6)
		}
	}
	// More failures cost more, within each mode.
	if results["10% seq. failures"] >= results["2% seq. failures"] {
		t.Error("10% sequential should be slower than 2% sequential")
	}
}
