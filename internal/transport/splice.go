package transport

// Splicer is an optional Conn capability: moving payload bytes from another
// connection into this one without copying them through user space. On
// Linux the TCP backend implements it with splice(2) (socket → pipe →
// socket); every other backend — and every platform without the kernel
// primitive — simply does not implement the interface, so callers fall back
// to their buffered path. Discover the capability with CanSplice, never by
// asserting the interface alone: an implementation may still decline a
// specific source (e.g. a TLS-wrapped or in-memory peer).
type Splicer interface {
	// SpliceFrom moves exactly n bytes from src into this connection
	// kernel-side, honouring src's read deadline and this connection's
	// write deadline. It returns the bytes moved and an error when fewer
	// than n could be transferred. After a mid-transfer error the byte
	// streams of BOTH connections must be considered corrupt (bytes may
	// be stranded in the kernel pipe): the caller re-synchronises by
	// reconnecting, not by resuming.
	SpliceFrom(src Conn, n int64) (int64, error)
	// CanSpliceFrom reports whether SpliceFrom(src, …) would take the
	// kernel path for this particular source connection.
	CanSpliceFrom(src Conn) bool
}

// CanSplice reports whether payload bytes can move from src to dst without
// crossing user space. False on non-Linux builds, on the in-memory fabric,
// and whenever either endpoint is not a plain TCP connection.
func CanSplice(src, dst Conn) bool {
	s, ok := dst.(Splicer)
	return ok && s.CanSpliceFrom(src)
}
