package transport

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 0)
	msg := []byte("hello, pipeline")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestPipeLargeTransferWrapsRing(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 1024)
	src := make([]byte, 64<<10)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(src)
	go func() {
		if _, err := a.Write(src); err != nil {
			t.Errorf("write: %v", err)
		}
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read all: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("corrupted transfer: %d bytes vs %d", len(got), len(src))
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 0)
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("expected drained EOF, got %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("got %q", got)
	}
	if _, err := b.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("second read: want io.EOF, got %v", err)
	}
}

func TestPipeWriteAfterPeerCloseFails(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 0)
	b.Close()
	if _, err := a.Write([]byte("x")); !IsReset(err) && !IsClosed(err) {
		t.Fatalf("want reset/closed error, got %v", err)
	}
}

func TestPipeReadDeadline(t *testing.T) {
	_, b := newPipePair("a:0", "b:1", 0)
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := b.Read(make([]byte, 1))
	if !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not honoured: waited %v", elapsed)
	}
}

func TestPipeWriteDeadlineOnFullBuffer(t *testing.T) {
	a, _ := newPipePair("a:0", "b:1", 128)
	a.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	_, err := a.Write(make([]byte, 4096)) // nobody reads; must time out
	if !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestPipeDeadlineClearedByZero(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 0)
	b.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	b.SetReadDeadline(time.Time{}) // clear
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("read after cleared deadline: %v", err)
	}
}

func TestPipeBreakPoisonsBothDirections(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 0)
	a.breakConn(ErrReset)
	if _, err := a.Write([]byte("x")); !IsReset(err) {
		t.Fatalf("local write after break: %v", err)
	}
	if _, err := b.Read(make([]byte, 1)); !IsReset(err) {
		t.Fatalf("remote read after break: %v", err)
	}
	if _, err := b.Write([]byte("x")); !IsReset(err) {
		t.Fatalf("remote write after break: %v", err)
	}
}

// Property: any sequence of chunk sizes written through the pipe is read
// back as the identical byte stream (ring-buffer wrap correctness).
func TestPipeStreamIntegrityQuick(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		a, b := newPipePair("a:0", "b:1", 777) // odd size to force wrapping
		rnd := rand.New(rand.NewSource(seed))
		var want []byte
		go func() {
			for _, s := range sizes {
				chunk := make([]byte, int(s)%4096)
				rnd.Read(chunk)
				want = append(want, chunk...)
				if _, err := a.Write(chunk); err != nil {
					return
				}
			}
			a.Close()
		}()
		got, err := io.ReadAll(b)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShaperRateLimitsThroughput(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 1<<20)
	a.writeShape.Store(newShaper(Profile{Rate: 1 << 20})) // 1 MiB/s
	go io.Copy(io.Discard, b)
	start := time.Now()
	payload := make([]byte, 128<<10) // 128 KiB at 1 MiB/s ≈ 125 ms
	if _, err := a.Write(payload); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("shaper did not throttle: %v for 128KiB at 1MiB/s", elapsed)
	}
}

func TestShaperHonoursWriteDeadline(t *testing.T) {
	a, b := newPipePair("a:0", "b:1", 1<<20)
	a.writeShape.Store(newShaper(Profile{Rate: 1024})) // 1 KiB/s: hopelessly slow
	go io.Copy(io.Discard, b)
	a.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	_, err := a.Write(make([]byte, 1<<20))
	if !IsTimeout(err) {
		t.Fatalf("want timeout from paced write, got %v", err)
	}
}
