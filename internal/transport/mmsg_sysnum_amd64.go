//go:build linux && amd64

package transport

// Raw syscall numbers for linux/amd64 (absent from package syscall).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
