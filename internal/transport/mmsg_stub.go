//go:build !linux || !(amd64 || arm64)

package transport

// mmsgConn is empty where sendmmsg/recvmmsg are unavailable: the UDP
// backend then never implements BatchPacketConn and the package helpers'
// single-datagram fallback carries the traffic.
type mmsgConn struct{}

func (u *udpConn) initBatch() {}
