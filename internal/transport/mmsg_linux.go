//go:build linux && (amd64 || arm64)

package transport

import (
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// Syscall batching for the UDP fan-out path: sendmmsg(2) hands the kernel a
// whole burst of datagrams in one crossing, recvmmsg(2) drains everything
// queued on the socket in one crossing. The standard syscall package
// exposes neither the syscall numbers nor struct mmsghdr, so both are
// declared here for the two Linux architectures this repository targets
// (the numbers live in mmsg_sysnum_*.go); every other platform compiles the
// stub in mmsg_stub.go and the portable single-datagram path takes over.

// mmsgBatch caps the datagrams submitted per sendmmsg/recvmmsg call.
const mmsgBatch = 128

// mmsghdr mirrors struct mmsghdr: a plain msghdr plus the kernel-filled
// per-message byte count, padded to 8-byte alignment on 64-bit Linux.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgConn is the batching state of one UDP socket: the raw fd access, a
// destination sockaddr cache, and reusable header/iovec scratch.
type mmsgConn struct {
	rc syscall.RawConn

	mu    sync.Mutex // guards the write-side scratch and the sockaddr cache
	sa    map[string]*syscall.RawSockaddrInet4
	whdrs []mmsghdr
	wiov  []syscall.Iovec

	rmu   sync.Mutex // guards the read-side scratch
	rhdrs []mmsghdr
	riov  []syscall.Iovec
}

func (u *udpConn) initBatch() {
	rc, err := u.c.SyscallConn()
	if err != nil {
		return
	}
	u.mm = &mmsgConn{rc: rc, sa: make(map[string]*syscall.RawSockaddrInet4)}
}

// htons16 stores a port number in network byte order inside the
// native-endian uint16 field of a raw sockaddr (Linux amd64/arm64 are
// little-endian).
func htons16(port int) uint16 {
	p := uint16(port)
	return p<<8 | p>>8
}

// sockaddr4 resolves addr to a cached IPv4 raw sockaddr. The second result
// is false for addresses the batch path cannot express (IPv6, resolution
// failure); the caller falls back to the portable path. Caller holds m.mu.
func (m *mmsgConn) sockaddr4(u *udpConn, addr string) (*syscall.RawSockaddrInet4, bool) {
	if sa, ok := m.sa[addr]; ok {
		return sa, sa != nil
	}
	var out *syscall.RawSockaddrInet4
	if ua, err := u.resolve(addr); err == nil {
		if ip4 := ua.IP.To4(); ip4 != nil {
			out = &syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: htons16(ua.Port)}
			copy(out.Addr[:], ip4)
		}
	}
	m.sa[addr] = out // negative results cached too
	return out, out != nil
}

// WriteBatch implements transport.BatchPacketConn with sendmmsg.
func (u *udpConn) WriteBatch(msgs []PacketMsg) (int, error) {
	m := u.mm
	if m == nil {
		return u.writeBatchFallback(msgs)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	sent := 0
	for sent < len(msgs) {
		batch := msgs[sent:]
		if len(batch) > mmsgBatch {
			batch = batch[:mmsgBatch]
		}
		if cap(m.whdrs) < len(batch) {
			m.whdrs = make([]mmsghdr, len(batch))
			m.wiov = make([]syscall.Iovec, 2*len(batch))
		}
		hs := m.whdrs[:len(batch)]
		iov := m.wiov[:2*len(batch)]
		for i := range batch {
			msg := &batch[i]
			sa, ok := m.sockaddr4(u, msg.Addr)
			if !ok {
				// Unbatchable destination: flush what is built, then
				// let the portable path carry the rest.
				if i > 0 {
					n, err := m.flush(hs[:i])
					sent += n
					if err != nil {
						return sent, err
					}
				}
				m.mu.Unlock()
				n, err := u.writeBatchFallback(msgs[sent:])
				m.mu.Lock()
				return sent + n, err
			}
			iov[2*i] = iovec(msg.Head)
			iov[2*i+1] = iovec(msg.Body)
			hs[i] = mmsghdr{}
			hs[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
			hs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
			hs[i].hdr.Iov = &iov[2*i]
			hs[i].hdr.Iovlen = 2
		}
		n, err := m.flush(hs)
		sent += n
		if err != nil {
			return sent, err
		}
	}
	runtime.KeepAlive(msgs)
	return sent, nil
}

// flush submits built headers until all are sent or an error occurs.
// Caller holds m.mu.
func (m *mmsgConn) flush(hs []mmsghdr) (int, error) {
	done := 0
	for done < len(hs) {
		rem := hs[done:]
		var n uintptr
		var errno syscall.Errno
		werr := m.rc.Write(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&rem[0])), uintptr(len(rem)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			return errno != syscall.EAGAIN // false parks in the netpoller
		})
		if werr != nil {
			return done, werr
		}
		if errno != 0 {
			return done, errno
		}
		done += int(n)
	}
	return done, nil
}

// RecvBatch implements transport.BatchPacketConn with recvmmsg: it blocks
// (honouring the read deadline) until the socket is readable, then drains
// up to len(bufs) datagrams in one syscall. Source addresses are not
// collected — peers identify themselves in the datagram header.
func (u *udpConn) RecvBatch(bufs [][]byte, sizes []int) (int, error) {
	m := u.mm
	if m == nil || len(bufs) == 0 {
		return u.recvBatchFallback(bufs, sizes)
	}
	m.rmu.Lock()
	defer m.rmu.Unlock()

	want := len(bufs)
	if want > mmsgBatch {
		want = mmsgBatch
	}
	if cap(m.rhdrs) < want {
		m.rhdrs = make([]mmsghdr, want)
		m.riov = make([]syscall.Iovec, want)
	}
	hs := m.rhdrs[:want]
	iov := m.riov[:want]
	for i := 0; i < want; i++ {
		iov[i] = iovec(bufs[i])
		hs[i] = mmsghdr{}
		hs[i].hdr.Iov = &iov[i]
		hs[i].hdr.Iovlen = 1
	}
	var n uintptr
	var errno syscall.Errno
	rerr := m.rc.Read(func(fd uintptr) bool {
		n, _, errno = syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&hs[0])), uintptr(want),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		return errno != syscall.EAGAIN
	})
	if rerr != nil {
		return 0, rerr
	}
	if errno != 0 {
		return 0, errno
	}
	got := int(n)
	for i := 0; i < got; i++ {
		sizes[i] = int(hs[i].n)
	}
	runtime.KeepAlive(bufs)
	return got, nil
}

func iovec(p []byte) syscall.Iovec {
	var v syscall.Iovec
	if len(p) > 0 {
		v.Base = &p[0]
		v.SetLen(len(p))
	}
	return v
}
