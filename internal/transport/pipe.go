package transport

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// defaultPipeBuffer is the per-direction buffer of an in-memory connection.
// It plays the role of the kernel socket buffer: writers block once it is
// full, which is what propagates back-pressure through a broadcast pipeline.
const defaultPipeBuffer = 256 << 10

// halfPipe is one direction of an in-memory connection: a ring buffer with
// blocking reads and writes, deadline support, and two failure modes
// (graceful close-of-write and hard reset).
type halfPipe struct {
	mu       sync.Mutex
	canRead  *sync.Cond // signalled when data arrives or state changes
	canWrite *sync.Cond // signalled when space frees or state changes

	buf  []byte // ring storage
	r, w int    // read/write cursors
	n    int    // bytes currently buffered

	wClosed bool  // write end closed: drain then EOF
	rClosed bool  // read end closed: writes fail immediately
	hardErr error // reset/kill: both directions fail immediately
	paused  bool  // fault injection: direction stalled, no bytes flow

	readDeadline  time.Time
	writeDeadline time.Time
}

func newHalfPipe(size int) *halfPipe {
	if size <= 0 {
		size = defaultPipeBuffer
	}
	h := &halfPipe{buf: make([]byte, size)}
	h.canRead = sync.NewCond(&h.mu)
	h.canWrite = sync.NewCond(&h.mu)
	return h
}

// waitWithDeadline blocks on cond until broadcast, honouring the deadline.
// It returns false when the deadline has already expired. The caller must
// hold h.mu and re-check its predicate afterwards.
func (h *halfPipe) waitWithDeadline(cond *sync.Cond, deadline time.Time, op string) error {
	if deadline.IsZero() {
		cond.Wait()
		return nil
	}
	now := time.Now()
	if !now.Before(deadline) {
		return &timeoutError{op}
	}
	timer := time.AfterFunc(deadline.Sub(now), cond.Broadcast)
	cond.Wait()
	timer.Stop()
	return nil
}

func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.hardErr != nil {
			return 0, h.hardErr
		}
		if h.rClosed {
			return 0, ErrClosed
		}
		if h.paused {
			if err := h.waitWithDeadline(h.canRead, h.readDeadline, "read"); err != nil {
				return 0, err
			}
			continue
		}
		if h.n > 0 {
			n := copy(p, h.contiguousRead())
			h.advanceRead(n)
			h.canWrite.Broadcast()
			return n, nil
		}
		if h.wClosed {
			return 0, io.EOF
		}
		if len(p) == 0 {
			return 0, nil
		}
		if err := h.waitWithDeadline(h.canRead, h.readDeadline, "read"); err != nil {
			return 0, err
		}
	}
}

func (h *halfPipe) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for len(p) > 0 {
		if h.hardErr != nil {
			return total, h.hardErr
		}
		if h.wClosed {
			return total, ErrClosed
		}
		if h.rClosed {
			// Peer closed its read side: behave like a TCP RST.
			return total, ErrReset
		}
		if h.paused {
			if err := h.waitWithDeadline(h.canWrite, h.writeDeadline, "write"); err != nil {
				return total, err
			}
			continue
		}
		if space := len(h.buf) - h.n; space > 0 {
			n := copy(h.contiguousWrite(), p)
			h.advanceWrite(n)
			p = p[n:]
			total += n
			h.canRead.Broadcast()
			continue
		}
		if err := h.waitWithDeadline(h.canWrite, h.writeDeadline, "write"); err != nil {
			return total, err
		}
	}
	return total, nil
}

// writev copies every slice of bufs into the ring under a single lock
// acquisition: the in-memory analogue of a vectored socket write. Like the
// TCP path it consumes bufs as it goes, so a caller interrupted by a
// deadline can resume from the returned byte count.
func (h *halfPipe) writev(bufs [][]byte) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total int64
	for len(bufs) > 0 {
		if len(bufs[0]) == 0 {
			bufs = bufs[1:]
			continue
		}
		if h.hardErr != nil {
			return total, h.hardErr
		}
		if h.wClosed {
			return total, ErrClosed
		}
		if h.rClosed {
			return total, ErrReset
		}
		if h.paused {
			if err := h.waitWithDeadline(h.canWrite, h.writeDeadline, "write"); err != nil {
				return total, err
			}
			continue
		}
		if space := len(h.buf) - h.n; space > 0 {
			n := copy(h.contiguousWrite(), bufs[0])
			h.advanceWrite(n)
			bufs[0] = bufs[0][n:]
			total += int64(n)
			h.canRead.Broadcast()
			continue
		}
		if err := h.waitWithDeadline(h.canWrite, h.writeDeadline, "write"); err != nil {
			return total, err
		}
	}
	return total, nil
}

// contiguousRead returns the largest readable span without wrapping.
func (h *halfPipe) contiguousRead() []byte {
	if h.r+h.n <= len(h.buf) {
		return h.buf[h.r : h.r+h.n]
	}
	return h.buf[h.r:]
}

// contiguousWrite returns the largest writable span without wrapping.
func (h *halfPipe) contiguousWrite() []byte {
	space := len(h.buf) - h.n
	if h.w+space <= len(h.buf) {
		return h.buf[h.w : h.w+space]
	}
	return h.buf[h.w:]
}

func (h *halfPipe) advanceRead(n int) {
	h.r = (h.r + n) % len(h.buf)
	h.n -= n
}

func (h *halfPipe) advanceWrite(n int) {
	h.w = (h.w + n) % len(h.buf)
	h.n += n
}

// closeWrite marks the writer side done: the reader drains buffered bytes
// and then sees EOF (graceful FIN).
func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	h.wClosed = true
	h.mu.Unlock()
	h.canRead.Broadcast()
	h.canWrite.Broadcast()
}

// closeRead marks the reader side done: subsequent peer writes fail.
func (h *halfPipe) closeRead() {
	h.mu.Lock()
	h.rClosed = true
	h.mu.Unlock()
	h.canRead.Broadcast()
	h.canWrite.Broadcast()
}

// setPaused stalls or resumes the direction: while paused no byte moves in
// either role (writers block without buffering, readers block even on
// buffered data), but deadlines still fire — exactly how a black-holed TCP
// direction behaves before the retransmission timer gives up.
func (h *halfPipe) setPaused(v bool) {
	h.mu.Lock()
	h.paused = v
	h.mu.Unlock()
	h.canRead.Broadcast()
	h.canWrite.Broadcast()
}

// breakWith poisons both directions with err (connection reset / host kill).
func (h *halfPipe) breakWith(err error) {
	h.mu.Lock()
	if h.hardErr == nil {
		h.hardErr = err
	}
	h.mu.Unlock()
	h.canRead.Broadcast()
	h.canWrite.Broadcast()
}

func (h *halfPipe) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.readDeadline = t
	h.mu.Unlock()
	h.canRead.Broadcast()
}

func (h *halfPipe) setWriteDeadline(t time.Time) {
	h.mu.Lock()
	h.writeDeadline = t
	h.mu.Unlock()
	h.canWrite.Broadcast()
}

// pipeConn is one endpoint of an in-memory connection: it reads from rx and
// writes to tx. Two pipeConns sharing swapped halves form a full-duplex link.
type pipeConn struct {
	rx, tx    *halfPipe
	local     string
	remote    string
	closeOnce sync.Once
	onClose   func()
	// writeShape is the optional egress shaping (latency/rate). It is an
	// atomic pointer so the fabric can swap profiles on a live connection
	// (the rate-collapse fault) while writes are in flight.
	writeShape atomic.Pointer[shaper]
}

func newPipePair(a, b string, bufSize int) (*pipeConn, *pipeConn) {
	ab := newHalfPipe(bufSize) // a -> b
	ba := newHalfPipe(bufSize) // b -> a
	ca := &pipeConn{rx: ba, tx: ab, local: a, remote: b}
	cb := &pipeConn{rx: ab, tx: ba, local: b, remote: a}
	return ca, cb
}

func (c *pipeConn) Read(p []byte) (int, error) {
	return c.rx.read(p)
}

func (c *pipeConn) Write(p []byte) (int, error) {
	if s := c.writeShape.Load(); s != nil {
		return s.write(c.tx, p)
	}
	return c.tx.write(p)
}

// WriteBuffers implements transport.BuffersWriter. Unshaped links take the
// single-lock writev fast path; shaped links hand each slice to the shaper
// so pacing and first-byte latency stay byte-accurate.
func (c *pipeConn) WriteBuffers(bufs [][]byte) (int64, error) {
	if s := c.writeShape.Load(); s != nil {
		var total int64
		for i := range bufs {
			n, err := s.write(c.tx, bufs[i])
			bufs[i] = bufs[i][n:]
			total += int64(n)
			if err != nil {
				return total, err
			}
			bufs[i] = nil
		}
		return total, nil
	}
	return c.tx.writev(bufs)
}

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() {
		c.tx.closeWrite()
		c.rx.closeRead()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// breakConn hard-kills both directions, as seen from both endpoints.
func (c *pipeConn) breakConn(err error) {
	c.rx.breakWith(err)
	c.tx.breakWith(err)
}

func (c *pipeConn) SetDeadline(t time.Time) error {
	c.rx.setReadDeadline(t)
	c.tx.setWriteDeadline(t)
	return nil
}

func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.rx.setReadDeadline(t)
	return nil
}

func (c *pipeConn) SetWriteDeadline(t time.Time) error {
	c.tx.setWriteDeadline(t)
	return nil
}

func (c *pipeConn) LocalAddr() string  { return c.local }
func (c *pipeConn) RemoteAddr() string { return c.remote }
