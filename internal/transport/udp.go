package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ListenPacket gives the real-network backend its datagram surface: a UDP
// socket bound on addr. The returned connection implements the syscall
// batching capability on Linux (mmsg_linux.go) and the portable
// one-datagram-per-syscall path everywhere else.
func (TCP) ListenPacket(addr string) (PacketConn, error) {
	c, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	uc, ok := c.(*net.UDPConn)
	if !ok {
		_ = c.Close()
		return nil, fmt.Errorf("transport: %s did not bind a UDP socket", addr)
	}
	// A fan-out receiver drains bursts of ~1200 B datagrams; a roomy
	// receive buffer absorbs scheduling hiccups before the kernel drops.
	// Best effort: the kernel clamps to rmem_max.
	_ = uc.SetReadBuffer(8 << 20)
	_ = uc.SetWriteBuffer(8 << 20)
	u := &udpConn{c: uc, addrs: make(map[string]*net.UDPAddr)}
	u.initBatch()
	return u, nil
}

// udpConn adapts *net.UDPConn to PacketConn. Destination addresses are
// resolved once and cached: a broadcast sends millions of datagrams to a
// handful of fixed peers.
type udpConn struct {
	c  *net.UDPConn
	mm *mmsgConn // Linux syscall-batching state; nil elsewhere

	mu    sync.Mutex
	addrs map[string]*net.UDPAddr

	smu     sync.Mutex
	scratch []byte // concatenation buffer for the non-batched send path
}

// writeBatchFallback is the one-datagram-per-syscall path, used when the
// batching syscalls are unavailable for this socket or a destination cannot
// be expressed as an IPv4 sockaddr.
func (u *udpConn) writeBatchFallback(msgs []PacketMsg) (int, error) {
	u.smu.Lock()
	defer u.smu.Unlock()
	for i, m := range msgs {
		p := m.Head
		if len(m.Body) > 0 {
			if len(m.Head) > 0 {
				u.scratch = append(u.scratch[:0], m.Head...)
				u.scratch = append(u.scratch, m.Body...)
				p = u.scratch
			} else {
				p = m.Body
			}
		}
		if _, err := u.Send(p, m.Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// recvBatchFallback delivers a single datagram per call.
func (u *udpConn) recvBatchFallback(bufs [][]byte, sizes []int) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	n, err := u.Recv(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

func (u *udpConn) resolve(addr string) (*net.UDPAddr, error) {
	u.mu.Lock()
	a, ok := u.addrs[addr]
	u.mu.Unlock()
	if ok {
		return a, nil
	}
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	u.mu.Lock()
	u.addrs[addr] = a
	u.mu.Unlock()
	return a, nil
}

func (u *udpConn) Recv(p []byte) (int, error) {
	// Read (not ReadFrom) skips the per-packet source-address allocation;
	// on an unconnected UDP socket it still accepts any source.
	return u.c.Read(p)
}

func (u *udpConn) Send(p []byte, addr string) (int, error) {
	a, err := u.resolve(addr)
	if err != nil {
		return 0, err
	}
	return u.c.WriteToUDP(p, a)
}

func (u *udpConn) SetReadDeadline(t time.Time) error { return u.c.SetReadDeadline(t) }
func (u *udpConn) Close() error                      { return u.c.Close() }
func (u *udpConn) LocalAddr() string                 { return u.c.LocalAddr().String() }
