package transport

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Fabric is an in-memory network of named hosts. It exists so that the
// protocol engines can be exercised — including their failure handling —
// without real sockets: tests script node kills, connection resets and
// link profiles while the engines run unmodified.
//
// A Fabric hands out one Network per host via Host. Connections between
// hosts are buffered full-duplex pipes (pipe.go) with optional per-link
// shaping (shaper.go).
type Fabric struct {
	mu        sync.Mutex
	listeners map[string]*memListener // bound address -> listener
	down      map[string]bool         // hosts that were killed
	conns     map[*pipeConn]string    // open endpoints -> owning host
	profiles  map[string]Profile      // "src->dst" host pair -> shaping
	cut       map[string]bool         // "src->dst" partitioned directions
	stalled   map[string][]*halfPipe  // "src->dst" -> pipes paused by a fault
	bufSize   int

	// Datagram plane (memnet_packet.go).
	packets map[string]*memPacketConn // bound address -> packet endpoint
	ploss   map[string]float64        // "src->dst" -> datagram drop rate
	prng    *rand.Rand                // seeded; guarded by mu
	pport   int                       // ephemeral packet port counter
}

// NewFabric returns an empty fabric. bufSize is the per-direction pipe
// buffer in bytes; 0 selects the default (256 KiB).
func NewFabric(bufSize int) *Fabric {
	return &Fabric{
		listeners: make(map[string]*memListener),
		down:      make(map[string]bool),
		conns:     make(map[*pipeConn]string),
		profiles:  make(map[string]Profile),
		cut:       make(map[string]bool),
		stalled:   make(map[string][]*halfPipe),
		bufSize:   bufSize,
		packets:   make(map[string]*memPacketConn),
		ploss:     make(map[string]float64),
		prng:      rand.New(rand.NewSource(1)),
		pport:     40000,
	}
}

// SetLinkProfile shapes traffic flowing from host src to host dst.
// Direction matters: shape both directions with two calls.
func (f *Fabric) SetLinkProfile(src, dst string, p Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profiles[src+"->"+dst] = p
}

// SetDefaultProfile shapes all links that have no specific profile.
func (f *Fabric) SetDefaultProfile(p Profile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.profiles["*->*"] = p
}

// Host returns the Network as seen from the named host.
func (f *Fabric) Host(name string) Network {
	return &hostNet{fabric: f, host: name}
}

// Kill abruptly removes a host: its listeners stop accepting, every open
// connection touching it is reset (both endpoints observe ErrReset), and
// future dials to it are refused. This models a node crash as the paper's
// fault-injection experiments require.
func (f *Fabric) Kill(host string) {
	f.mu.Lock()
	f.down[host] = true
	var toBreak []*pipeConn
	for c, owner := range f.conns {
		if owner == host || c.remote == host || hostOf(c.remote) == host || hostOf(c.local) == host {
			toBreak = append(toBreak, c)
		}
	}
	var toClose []*memListener
	for addr, l := range f.listeners {
		if hostOf(addr) == host {
			toClose = append(toClose, l)
			delete(f.listeners, addr)
		}
	}
	pcs := f.dropPacketHostLocked(host)
	f.mu.Unlock()
	for _, c := range toBreak {
		c.breakConn(ErrReset)
	}
	for _, l := range toClose {
		l.close()
	}
	for _, pc := range pcs {
		pc.closeLocal()
	}
}

// Revive clears the killed flag so the host may listen and dial again
// (used by tests that model node reboot).
func (f *Fabric) Revive(host string) {
	f.mu.Lock()
	delete(f.down, host)
	f.mu.Unlock()
}

// dirConns returns the open endpoints whose egress direction is src->dst.
// Caller holds f.mu. Each logical connection appears exactly once: the
// endpoint living on src that writes towards dst.
func (f *Fabric) dirConns(src, dst string) []*pipeConn {
	var out []*pipeConn
	for c := range f.conns {
		if hostOf(c.local) == src && hostOf(c.remote) == dst {
			out = append(out, c)
		}
	}
	return out
}

// pauseDir stalls the src->dst direction of every open connection and
// remembers the affected pipes, so a later resume reaches them even after
// one endpoint closed its handle (a predecessor that declared the victim
// dead and hung up mid-partition). cut additionally blocks new dials.
func (f *Fabric) pauseDir(src, dst string, cut bool) {
	key := src + "->" + dst
	f.mu.Lock()
	if cut {
		f.cut[key] = true
	}
	var pipes []*halfPipe
	for _, c := range f.dirConns(src, dst) {
		pipes = append(pipes, c.tx)
	}
	f.stalled[key] = append(f.stalled[key], pipes...)
	f.mu.Unlock()
	for _, p := range pipes {
		p.setPaused(true)
	}
}

// resumeDir resumes every pipe paused in the src->dst direction; heal also
// lifts the dial block.
func (f *Fabric) resumeDir(src, dst string, heal bool) {
	key := src + "->" + dst
	f.mu.Lock()
	if heal {
		delete(f.cut, key)
	}
	pipes := f.stalled[key]
	delete(f.stalled, key)
	f.mu.Unlock()
	for _, p := range pipes {
		p.setPaused(false)
	}
}

// Partition cuts both directions between hosts a and b: bytes in flight
// stall (they do not error — a routing black hole, not a reset) and new
// dials between the two hosts are refused, since a TCP handshake needs both
// directions. Heal undoes it. Liveness probes between the two hosts fail,
// so the §III-D1 detector classifies the far side as dead.
func (f *Fabric) Partition(a, b string) {
	f.pauseDir(a, b, true)
	f.pauseDir(b, a, true)
}

// Heal lifts a Partition between a and b: stalled connections resume
// byte-exactly and dials succeed again.
func (f *Fabric) Heal(a, b string) {
	f.resumeDir(a, b, true)
	f.resumeDir(b, a, true)
}

// PartitionOneWay cuts only the src->dst direction: src's writes towards
// dst stall while dst->src traffic keeps flowing. New dials between the two
// hosts are still refused in both directions (the handshake crosses the cut
// direction either way).
func (f *Fabric) PartitionOneWay(src, dst string) { f.pauseDir(src, dst, true) }

// HealOneWay lifts a PartitionOneWay.
func (f *Fabric) HealOneWay(src, dst string) { f.resumeDir(src, dst, true) }

// Partitioned reports whether the src->dst direction is currently cut.
func (f *Fabric) Partitioned(src, dst string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cut[src+"->"+dst]
}

// cutBetween reports whether any direction between two hosts is cut.
// Caller holds f.mu.
func (f *Fabric) cutBetween(a, b string) bool {
	return f.cut[a+"->"+b] || f.cut[b+"->"+a]
}

// SetLiveProfile reshapes the src->dst direction of every open connection
// AND future dials — the rate-collapse fault. Unlike SetLinkProfile (which
// only affects connections dialed afterwards), the new profile takes effect
// on in-flight transfers at their next write.
func (f *Fabric) SetLiveProfile(src, dst string, p Profile) {
	f.mu.Lock()
	f.profiles[src+"->"+dst] = p
	conns := f.dirConns(src, dst)
	f.mu.Unlock()
	sh := newShaper(p)
	if p.Rate <= 0 && p.Latency <= 0 {
		sh = nil // unshaped: restore the fast path
	}
	for _, c := range conns {
		c.writeShape.Store(sh)
	}
}

// StallLink pauses the src->dst direction of every open connection without
// touching future dials: in-flight writes stall (the §III-D1 write-stall
// case) but a fresh liveness probe still connects and answers, so the far
// host is correctly classified as slow-but-alive. ResumeLink resumes the
// stalled bytes exactly where they stopped.
func (f *Fabric) StallLink(src, dst string) { f.pauseDir(src, dst, false) }

// ResumeLink resumes connections stalled by StallLink.
func (f *Fabric) ResumeLink(src, dst string) { f.resumeDir(src, dst, false) }

// Down reports whether the host has been killed.
func (f *Fabric) Down(host string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[host]
}

// hostOf extracts the host component of "host:port".
func hostOf(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

func (f *Fabric) profileFor(src, dst string) (Profile, bool) {
	if p, ok := f.profiles[src+"->"+dst]; ok {
		return p, true
	}
	p, ok := f.profiles["*->*"]
	return p, ok
}

type hostNet struct {
	fabric *Fabric
	host   string
}

func (hn *hostNet) Listen(addr string) (Listener, error) {
	full := hn.qualify(addr)
	f := hn.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[hn.host] {
		return nil, fmt.Errorf("memnet listen %s: host %s is down: %w", full, hn.host, ErrRefused)
	}
	if _, exists := f.listeners[full]; exists {
		return nil, fmt.Errorf("memnet listen %s: address in use", full)
	}
	l := &memListener{
		fabric:  f,
		addr:    full,
		pending: make(chan *pipeConn, 64),
		done:    make(chan struct{}),
	}
	f.listeners[full] = l
	return l, nil
}

func (hn *hostNet) Dial(addr string, timeout time.Duration) (Conn, error) {
	f := hn.fabric
	f.mu.Lock()
	if f.down[hn.host] {
		f.mu.Unlock()
		return nil, fmt.Errorf("memnet dial from dead host %s: %w", hn.host, ErrRefused)
	}
	target, ok := f.listeners[addr]
	if !ok || f.down[hostOf(addr)] {
		f.mu.Unlock()
		return nil, fmt.Errorf("memnet dial %s: %w", addr, ErrRefused)
	}
	if f.cutBetween(hn.host, hostOf(addr)) {
		f.mu.Unlock()
		return nil, fmt.Errorf("memnet dial %s: partitioned: %w", addr, ErrRefused)
	}
	localAddr := hn.host + ":0"
	cLocal, cRemote := newPipePair(localAddr, addr, f.bufSize)
	if p, ok := f.profileFor(hn.host, hostOf(addr)); ok {
		cLocal.writeShape.Store(newShaper(p))
	}
	if p, ok := f.profileFor(hostOf(addr), hn.host); ok {
		cRemote.writeShape.Store(newShaper(p))
	}
	f.conns[cLocal] = hn.host
	f.conns[cRemote] = hostOf(addr)
	cLocal.onClose = func() { f.forget(cLocal) }
	cRemote.onClose = func() { f.forget(cRemote) }
	f.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case target.pending <- cRemote:
		return cLocal, nil
	case <-target.done:
		return nil, fmt.Errorf("memnet dial %s: %w", addr, ErrRefused)
	case <-timer:
		return nil, &timeoutError{"dial " + addr}
	}
}

func (hn *hostNet) qualify(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return hn.host + addr
	}
	return addr
}

func (f *Fabric) forget(c *pipeConn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

type memListener struct {
	fabric    *Fabric
	addr      string
	pending   chan *pipeConn
	done      chan struct{}
	closeOnce sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("memnet accept %s: %w", l.addr, ErrClosed)
	}
}

func (l *memListener) Close() error {
	l.fabric.mu.Lock()
	if l.fabric.listeners[l.addr] == l {
		delete(l.fabric.listeners, l.addr)
	}
	l.fabric.mu.Unlock()
	l.close()
	return nil
}

func (l *memListener) close() {
	l.closeOnce.Do(func() { close(l.done) })
}

func (l *memListener) Addr() string { return l.addr }
