package transport

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// fabricPair dials b from a and returns both connection ends.
func fabricPair(t *testing.T, f *Fabric) (dialer, accepted Conn) {
	t.Helper()
	l, err := f.Host("b").Listen(":1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	c, err := f.Host("a").Dial("b:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestPartitionStallsAndRefusesDials(t *testing.T) {
	f := NewFabric(0)
	c, s := fabricPair(t, f)

	// Pre-partition traffic flows.
	if _, err := c.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}

	f.Partition("a", "b")
	if !f.Partitioned("a", "b") || !f.Partitioned("b", "a") {
		t.Fatal("partition state not recorded")
	}

	// Writes stall (deadline fires, no reset), both directions.
	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Write([]byte("x")); !IsTimeout(err) {
		t.Fatalf("a->b write through partition: %v", err)
	}
	s.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := s.Write([]byte("y")); !IsTimeout(err) {
		t.Fatalf("b->a write through partition: %v", err)
	}

	// Dials are refused in both directions.
	if _, err := f.Host("a").Dial("b:1", 100*time.Millisecond); !IsReset(err) && !IsTimeout(err) && err == nil {
		t.Fatal("dial through partition succeeded")
	}

	// Heal: the stalled bytes arrive, nothing was lost.
	f.Heal("a", "b")
	c.SetWriteDeadline(time.Time{})
	if _, err := c.Write([]byte("post")); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 6) // "x" retried by caller is gone; only "post" plus the stalled "x"?
	// The timed-out 1-byte write never entered the buffer (pause blocks
	// before buffering), so exactly "post" arrives.
	buf = buf[:4]
	if _, err := io.ReadFull(s, buf); err != nil || !bytes.Equal(buf, []byte("post")) {
		t.Fatalf("after heal got %q, %v", buf, err)
	}
	if _, err := f.Host("a").Dial("b:1", time.Second); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestPartitionOneWayLeavesReverseFlowing(t *testing.T) {
	f := NewFabric(0)
	c, s := fabricPair(t, f)
	f.PartitionOneWay("a", "b")

	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Write([]byte("x")); !IsTimeout(err) {
		t.Fatalf("cut direction should stall: %v", err)
	}
	// Reverse direction still delivers.
	if _, err := s.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || !bytes.Equal(buf, []byte("ok")) {
		t.Fatalf("reverse read: %q, %v", buf, err)
	}
	// Dials are refused either way (the handshake crosses the cut).
	if _, err := f.Host("b").Dial("a:9", 50*time.Millisecond); err == nil {
		t.Fatal("reverse dial should fail: no listener AND partition")
	}
	f.HealOneWay("a", "b")
	c.SetWriteDeadline(time.Time{})
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestStallLinkKeepsDialsAlive(t *testing.T) {
	f := NewFabric(0)
	c, s := fabricPair(t, f)
	f.StallLink("a", "b")

	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := c.Write([]byte("x")); !IsTimeout(err) {
		t.Fatalf("stalled link should time out writes: %v", err)
	}
	// Unlike a partition, fresh dials succeed: the host is slow, not gone.
	c2, err := f.Host("a").Dial("b:1", time.Second)
	if err != nil {
		t.Fatalf("dial during stall: %v", err)
	}
	c2.Close()

	f.ResumeLink("a", "b")
	c.SetWriteDeadline(time.Time{})
	if _, err := c.Write([]byte("go")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(s, buf); err != nil || !bytes.Equal(buf, []byte("go")) {
		t.Fatalf("after resume: %q, %v", buf, err)
	}
}

func TestSetLiveProfileCollapsesAndRestoresRate(t *testing.T) {
	f := NewFabric(1 << 20)
	c, s := fabricPair(t, f)
	go io.Copy(io.Discard, s)

	// Unshaped: 256 KiB goes out almost instantly.
	start := time.Now()
	if _, err := c.Write(make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("unshaped write took %v", d)
	}

	// Collapse to 256 KiB/s: the same write now takes ~1 s; give up via
	// deadline to keep the test fast, proving the collapse took effect on
	// the LIVE connection.
	f.SetLiveProfile("a", "b", Profile{Rate: 256 << 10})
	c.SetWriteDeadline(time.Now().Add(80 * time.Millisecond))
	n, err := c.Write(make([]byte, 256<<10))
	if !IsTimeout(err) {
		t.Fatalf("collapsed write finished too fast: n=%d err=%v", n, err)
	}

	// Restore: full speed again.
	f.SetLiveProfile("a", "b", Profile{})
	c.SetWriteDeadline(time.Time{})
	start = time.Now()
	if _, err := c.Write(make([]byte, 256<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("restored write took %v", d)
	}
}
