//go:build linux && arm64

package transport

// Raw syscall numbers for linux/arm64 (absent from package syscall).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
