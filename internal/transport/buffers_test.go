package transport

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestPipeWriteBuffersRoundTrip checks the writev fast path of the
// in-memory pipe: interleaved header/payload slices arrive as one
// contiguous byte stream.
func TestPipeWriteBuffersRoundTrip(t *testing.T) {
	a, b := newPipePair("a:0", "b:0", 0)
	want := []byte("hdr1payload-onehdr2payload-two")
	bufs := [][]byte{
		[]byte("hdr1"), []byte("payload-one"),
		[]byte("hdr2"), []byte("payload-two"),
	}
	done := make(chan error, 1)
	go func() {
		n, err := a.WriteBuffers(bufs)
		if err == nil && n != int64(len(want)) {
			err = io.ErrShortWrite
		}
		done <- err
	}()
	got := make([]byte, len(want))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	for i, buf := range bufs {
		if len(buf) != 0 {
			t.Fatalf("entry %d not consumed: %q", i, buf)
		}
	}
}

// TestWriteBuffersPartialResume fills the pipe so a vectored write times
// out mid-batch, then resumes it with the same slice: the consumption
// contract must leave exactly the unwritten suffix behind.
func TestWriteBuffersPartialResume(t *testing.T) {
	a, b := newPipePair("a:0", "b:0", 8)
	bufs := [][]byte{[]byte("123456"), []byte("abcdef")}
	_ = a.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	n, err := a.WriteBuffers(bufs)
	if !IsTimeout(err) {
		t.Fatalf("want timeout after filling the pipe, got n=%d err=%v", n, err)
	}
	if n != 8 {
		t.Fatalf("wrote %d bytes into an 8-byte pipe", n)
	}
	head := make([]byte, 8)
	if _, err := io.ReadFull(b, head); err != nil {
		t.Fatal(err)
	}
	_ = a.SetWriteDeadline(time.Time{})
	if n, err := a.WriteBuffers(bufs); err != nil || n != 4 {
		t.Fatalf("resume wrote %d, err %v", n, err)
	}
	tail := make([]byte, 4)
	if _, err := io.ReadFull(b, tail); err != nil {
		t.Fatal(err)
	}
	if got := string(head) + string(tail); got != "123456abcdef" {
		t.Fatalf("stream reassembled as %q", got)
	}
}

// sink is a plain io.Writer without the BuffersWriter capability.
type sink struct{ got bytes.Buffer }

func (s *sink) Write(p []byte) (int, error) { return s.got.Write(p) }

// TestWriteBuffersFallback checks the sequential fallback used by conns
// (and test doubles) that do not implement BuffersWriter, including the
// in-place consumption contract.
func TestWriteBuffersFallback(t *testing.T) {
	var s sink
	bufs := [][]byte{[]byte("ab"), nil, []byte("cd")}
	n, err := WriteBuffers(&s, bufs)
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if s.got.String() != "abcd" {
		t.Fatalf("wrote %q", s.got.String())
	}
	for i, buf := range bufs {
		if len(buf) != 0 {
			t.Fatalf("entry %d not consumed", i)
		}
	}
}

// TestShapedWriteBuffersPacing checks that vectored writes on a shaped
// link still pay the rate cap: the batch as a whole must take at least the
// time its byte count implies.
func TestShapedWriteBuffersPacing(t *testing.T) {
	f := NewFabric(1 << 20)
	f.SetDefaultProfile(Profile{Rate: 64 << 10}) // 64 KiB/s
	l, err := f.Host("dst").Listen(":1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := f.Host("src").Dial("dst:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, c)
	}()

	bw, ok := conn.(BuffersWriter)
	if !ok {
		t.Fatal("fabric conn lost the BuffersWriter capability")
	}
	payload := make([]byte, 24<<10)
	start := time.Now()
	if _, err := bw.WriteBuffers([][]byte{payload[:8<<10], payload[8<<10 : 16<<10], payload[16<<10:]}); err != nil {
		t.Fatal(err)
	}
	// The shaper charges each slice's drain time after writing it, so a
	// 3×8 KiB batch at 64 KiB/s waits out the first two charges ≈ 250 ms
	// before the final slice goes out; allow generous scheduling slack.
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Fatalf("shaped vectored write finished in %v, pacing bypassed", elapsed)
	}
}
