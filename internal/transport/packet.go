package transport

import "time"

// This file defines the unreliable-datagram surface of the transport layer,
// used by the UDP fan-out data plane (internal/core/udp.go). It mirrors the
// stream side's shape: small portable interfaces, an optional batching
// capability discovered by assertion, and package helpers that fall back to
// the single-datagram path when the capability is absent.

// PacketConn is one unreliable datagram endpoint. Unlike net.PacketConn it
// does not surface source addresses: the broadcast datagram header carries
// the session ID and the sender's pipeline index, so peers are identified
// in-band and the batching backends can skip per-packet sockaddr decoding.
type PacketConn interface {
	// Recv reads one datagram into p, honouring the read deadline.
	Recv(p []byte) (int, error)
	// Send transmits p as one datagram to addr ("host:port"). Sends are
	// blind: delivery failures are invisible, exactly like UDP.
	Send(p []byte, addr string) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
	// LocalAddr reports the bound address as "host:port".
	LocalAddr() string
}

// PacketNetwork is the optional datagram capability of a Network: backends
// that can carry datagrams (the TCP/UDP stack, the in-memory fabric)
// implement it; callers discover it by type assertion on their Network.
type PacketNetwork interface {
	// ListenPacket binds a datagram socket on addr (port 0 picks an
	// ephemeral port).
	ListenPacket(addr string) (PacketConn, error)
}

// PacketMsg is one outbound datagram, split into a header and a payload
// slice so batching backends can submit both as a two-entry iovec without
// concatenating them in user space. Either slice may be empty.
type PacketMsg struct {
	Addr string
	Head []byte
	Body []byte
}

// BatchPacketConn is the optional syscall-batching capability of a
// PacketConn: one WriteBatch reaches the kernel once for many datagrams
// (sendmmsg on Linux) and one RecvBatch drains everything already queued
// (recvmmsg). Callers use the package helpers below, which probe and fall
// back to the single-datagram path.
type BatchPacketConn interface {
	PacketConn
	// WriteBatch transmits the messages in order and returns how many were
	// fully handed to the kernel before an error.
	WriteBatch(msgs []PacketMsg) (int, error)
	// RecvBatch blocks (under the read deadline) until at least one
	// datagram is available, then fills bufs with every datagram already
	// queued, recording each length in sizes. It returns the number of
	// datagrams received.
	RecvBatch(bufs [][]byte, sizes []int) (int, error)
}

// PacketWriter sends datagram batches through pc, using the batching
// capability when present and a per-datagram loop otherwise. The zero-value
// scratch buffer is reused across calls, so the fallback path does not
// allocate per batch.
type PacketWriter struct {
	pc      PacketConn
	batch   BatchPacketConn // nil when pc cannot batch
	scratch []byte
}

// NewPacketWriter probes pc for the batching capability.
func NewPacketWriter(pc PacketConn) *PacketWriter {
	w := &PacketWriter{pc: pc}
	if b, ok := pc.(BatchPacketConn); ok {
		w.batch = b
	}
	return w
}

// Batched reports whether writes go through the kernel batching path.
func (w *PacketWriter) Batched() bool { return w.batch != nil }

// WriteBatch transmits msgs, returning how many datagrams were sent.
func (w *PacketWriter) WriteBatch(msgs []PacketMsg) (int, error) {
	if w.batch != nil {
		return w.batch.WriteBatch(msgs)
	}
	for i, m := range msgs {
		p := m.Head
		if len(m.Body) > 0 {
			if len(m.Head) > 0 {
				w.scratch = append(w.scratch[:0], m.Head...)
				w.scratch = append(w.scratch, m.Body...)
				p = w.scratch
			} else {
				p = m.Body
			}
		}
		if _, err := w.pc.Send(p, m.Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// RecvPacketBatch fills bufs with available datagrams: the batching path
// drains the queue in one syscall, the fallback delivers a single datagram
// per call. Returns the number of datagrams received; sizes[i] is the
// length of the i-th.
func RecvPacketBatch(pc PacketConn, bufs [][]byte, sizes []int) (int, error) {
	if b, ok := pc.(BatchPacketConn); ok {
		return b.RecvBatch(bufs, sizes)
	}
	if len(bufs) == 0 {
		return 0, nil
	}
	n, err := pc.Recv(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}
