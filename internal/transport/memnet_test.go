package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestFabricDialListen(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Host("n1").Listen(":9000")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "n1:9000" {
		t.Fatalf("listener addr %q", l.Addr())
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		c.Write([]byte("pong:"))
		c.Write(buf)
	}()

	c, err := f.Host("n2").Dial("n1:9000", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping!"))
	reply := make([]byte, 10)
	if _, err := io.ReadFull(c, reply); err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong:ping!" {
		t.Fatalf("reply %q", reply)
	}
	wg.Wait()
}

func TestFabricDialRefusedWhenNoListener(t *testing.T) {
	f := NewFabric(0)
	if _, err := f.Host("n2").Dial("n1:9000", time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestFabricKillResetsConnsAndRefusesDials(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Host("n1").Listen(":9000")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := f.Host("n2").Dial("n1:9000", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted

	f.Kill("n1")

	if _, err := c.Read(make([]byte, 1)); !IsReset(err) {
		t.Fatalf("surviving peer read: want reset, got %v", err)
	}
	if _, err := server.Write([]byte("x")); !IsReset(err) {
		t.Fatalf("dead host write: want reset, got %v", err)
	}
	if _, err := f.Host("n2").Dial("n1:9000", 100*time.Millisecond); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to dead host: want refused, got %v", err)
	}
	if !f.Down("n1") {
		t.Fatal("n1 should be down")
	}

	f.Revive("n1")
	if f.Down("n1") {
		t.Fatal("n1 should be up after revive")
	}
	if _, err := f.Host("n1").Listen(":9000"); err != nil {
		t.Fatalf("listen after revive: %v", err)
	}
}

func TestFabricKillSeveredBothDirections(t *testing.T) {
	// A connection dialed *from* the killed host must break too.
	f := NewFabric(0)
	l, _ := f.Host("n2").Listen(":9000")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	if _, err := f.Host("n1").Dial("n2:9000", time.Second); err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	f.Kill("n1")
	if _, err := server.Read(make([]byte, 1)); !IsReset(err) {
		t.Fatalf("want reset on conn dialed from killed host, got %v", err)
	}
}

func TestFabricListenerCloseUnblocksAccept(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Host("n1").Listen(":9000")
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("accept after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("accept did not unblock")
	}
	// Address is free again.
	if _, err := f.Host("n1").Listen(":9000"); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
}

func TestFabricDuplicateListenRejected(t *testing.T) {
	f := NewFabric(0)
	if _, err := f.Host("n1").Listen(":9000"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Host("n1").Listen(":9000"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestFabricLinkProfileAddsLatency(t *testing.T) {
	f := NewFabric(0)
	f.SetLinkProfile("n2", "n1", Profile{Latency: 50 * time.Millisecond})
	l, _ := f.Host("n1").Listen(":9000")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1)
		io.ReadFull(c, buf)
		c.Write(buf)
	}()
	c, err := f.Host("n2").Dial("n1:9000", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Fatalf("latency profile not applied: RTT %v", rtt)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"n1:9000": "n1",
		"n1":      "n1",
		"a:b:c":   "a:b",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTCPLoopback(t *testing.T) {
	var network TCP
	l, err := network.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
		c.Close()
	}()
	c, err := network.Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("over real sockets")
	c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestTCPDialRefused(t *testing.T) {
	var network TCP
	// Port 1 on loopback is almost certainly closed.
	_, err := network.Dial("127.0.0.1:1", 500*time.Millisecond)
	if err == nil {
		t.Skip("something listens on 127.0.0.1:1")
	}
	if !errors.Is(err, ErrRefused) && !IsTimeout(err) {
		t.Fatalf("want refused/timeout classification, got %v", err)
	}
}
