package transport

import (
	"time"
)

// Profile describes the behaviour of a fabric link between two hosts:
// one-way latency added before the first byte of every Write, and a rate
// cap in bytes per second (0 means unlimited). Shaping is applied on the
// sender side, which preserves blocking semantics and back-pressure.
type Profile struct {
	Latency time.Duration
	Rate    float64 // bytes per second; 0 = unlimited
}

// shaper throttles writes into a halfPipe according to a Profile. It is a
// token-bucket pacer: each write "spends" len(p)/Rate seconds, sleeping when
// the sender runs ahead of the virtual drain time. Latency is charged once
// per burst (an idle period longer than the latency resets the charge),
// approximating the first-byte delay of a fresh TCP exchange.
type shaper struct {
	profile Profile

	// drainAt is the time the previously written bytes will have fully
	// left the shaped link; guarded by the pipe lock ordering being
	// irrelevant here because each conn has exactly one logical writer
	// in the protocols of this repository. A coarse mutex keeps it safe
	// regardless.
	mu      chan struct{} // 1-slot semaphore as a context-free mutex
	drainAt time.Time
}

func newShaper(p Profile) *shaper {
	s := &shaper{profile: p, mu: make(chan struct{}, 1)}
	s.mu <- struct{}{}
	return s
}

// write pushes p into tx, pacing according to the profile. The pacing sleep
// happens before delivering each slice so a rate-limited connection exhibits
// genuine write stalls (used by the failure-detector tests to exercise the
// "slow but alive" case).
func (s *shaper) write(tx *halfPipe, p []byte) (int, error) {
	<-s.mu
	defer func() { s.mu <- struct{}{} }()

	now := time.Now()
	if s.drainAt.Before(now) {
		// Link went idle: next byte pays the propagation latency.
		s.drainAt = now.Add(s.profile.Latency)
	}
	total := 0
	const sliceSize = 32 << 10
	for len(p) > 0 {
		// Wait for previously charged bytes to drain; the charge for
		// this slice happens only after it is actually written, so a
		// timed-out attempt can be retried without double-paying.
		if wait := time.Until(s.drainAt); wait > 0 {
			// Honour the connection's write deadline while pacing, so a
			// throttled write still times out instead of sleeping past
			// its deadline.
			tx.mu.Lock()
			deadline := tx.writeDeadline
			tx.mu.Unlock()
			if !deadline.IsZero() {
				if remain := time.Until(deadline); remain < wait {
					if remain > 0 {
						time.Sleep(remain)
					}
					return total, &timeoutError{"write"}
				}
			}
			time.Sleep(wait)
		}
		n := len(p)
		if n > sliceSize {
			n = sliceSize
		}
		w, err := tx.write(p[:n])
		if w > 0 && s.profile.Rate > 0 {
			s.drainAt = s.drainAt.Add(time.Duration(float64(w) / s.profile.Rate * float64(time.Second)))
		}
		total += w
		p = p[w:]
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
