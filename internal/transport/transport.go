// Package transport defines the byte-stream network abstraction shared by
// every broadcast implementation in this repository.
//
// The Kascade protocol engine (internal/core) and the baselines
// (internal/taktuk, internal/udpcast, internal/mpibcast) are written against
// the Network/Listener/Conn interfaces below, never against package net
// directly. Two backends are provided:
//
//   - TCP (tcp.go): thin wrappers over the standard library's net package,
//     used by the CLI, the examples, and the loopback integration tests.
//   - Fabric (memnet.go): an in-memory network with named hosts, buffered
//     full-duplex pipes, deadline support, per-link latency/rate shaping,
//     and fault injection (node kill, connection reset). The protocol test
//     suite runs on the fabric so failures can be scripted precisely.
//
// Addresses are plain strings of the form "host:port". The fabric resolves
// them in its own namespace; the TCP backend passes them to net.Dial.
package transport

import (
	"errors"
	"io"
	"time"
)

// Conn is a reliable, ordered, full-duplex byte stream between two nodes.
// It is a subset of net.Conn with string addresses, so both real TCP
// connections and in-memory pipes satisfy it.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer

	// SetDeadline sets both the read and the write deadline.
	SetDeadline(t time.Time) error
	// SetReadDeadline sets the deadline for future Read calls. A zero
	// value means Reads will not time out.
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline sets the deadline for future Write calls.
	SetWriteDeadline(t time.Time) error

	// LocalAddr and RemoteAddr report the endpoints as "host:port".
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections on one address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr reports the bound address as "host:port".
	Addr() string
}

// Network is the dialing and listening surface a single node sees.
type Network interface {
	// Listen binds addr and starts accepting connections.
	Listen(addr string) (Listener, error)
	// Dial connects to addr, failing after timeout (0 means no timeout).
	Dial(addr string, timeout time.Duration) (Conn, error)
}

// Sentinel errors shared by all backends. Backends may wrap these; use
// errors.Is for classification.
var (
	// ErrClosed is returned by operations on a connection or listener
	// that was closed locally.
	ErrClosed = errors.New("transport: use of closed connection")
	// ErrReset is returned when the peer vanished abruptly (node killed,
	// connection reset).
	ErrReset = errors.New("transport: connection reset by peer")
	// ErrRefused is returned by Dial when nothing listens on the address
	// or the target host is down.
	ErrRefused = errors.New("transport: connection refused")
)

// timeoutError is the deadline-exceeded error for the in-memory backend.
// It implements the Timeout() bool contract shared with net.Error so that
// callers can classify it with IsTimeout.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "transport: " + e.op + " deadline exceeded" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// IsTimeout reports whether err is a deadline-exceeded condition, from
// either backend (net.Error or the in-memory pipe).
func IsTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// IsClosed reports whether err indicates the local end was closed.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }

// IsReset reports whether err indicates the remote end vanished.
func IsReset(err error) bool { return errors.Is(err, ErrReset) }
