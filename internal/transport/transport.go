// Package transport defines the byte-stream network abstraction shared by
// every broadcast implementation in this repository.
//
// The Kascade protocol engine (internal/core) and the baselines
// (internal/taktuk, internal/udpcast, internal/mpibcast) are written against
// the Network/Listener/Conn interfaces below, never against package net
// directly. Two backends are provided:
//
//   - TCP (tcp.go): thin wrappers over the standard library's net package,
//     used by the CLI, the examples, and the loopback integration tests.
//   - Fabric (memnet.go): an in-memory network with named hosts, buffered
//     full-duplex pipes, deadline support, per-link latency/rate shaping,
//     and fault injection (node kill, connection reset). The protocol test
//     suite runs on the fabric so failures can be scripted precisely.
//
// Addresses are plain strings of the form "host:port". The fabric resolves
// them in its own namespace; the TCP backend passes them to net.Dial.
package transport

import (
	"errors"
	"io"
	"time"
)

// Conn is a reliable, ordered, full-duplex byte stream between two nodes.
// It is a subset of net.Conn with string addresses, so both real TCP
// connections and in-memory pipes satisfy it.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer

	// SetDeadline sets both the read and the write deadline.
	SetDeadline(t time.Time) error
	// SetReadDeadline sets the deadline for future Read calls. A zero
	// value means Reads will not time out.
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline sets the deadline for future Write calls.
	SetWriteDeadline(t time.Time) error

	// LocalAddr and RemoteAddr report the endpoints as "host:port".
	LocalAddr() string
	RemoteAddr() string
}

// BuffersWriter is an optional Conn capability: WriteBuffers writes every
// byte of every slice in order, as one vectored operation when the backend
// supports it (writev on TCP). Callers discover it by type assertion, or
// simply call the package-level WriteBuffers which probes and falls back.
//
// Contract (matching net.Buffers): implementations consume written bytes
// from bufs in place — a fully written entry is set to nil or zero length,
// a partially written head entry is trimmed past the written prefix. After
// a partial result (write deadline mid-batch), the caller resumes by
// calling again with the same slice. Callers that need bufs intact must
// pass a copy; the payload bytes themselves are never modified.
type BuffersWriter interface {
	WriteBuffers(bufs [][]byte) (int64, error)
}

// WriteBuffers writes all slices in bufs to w, using the vectored path when
// w implements BuffersWriter and falling back to sequential writes
// otherwise. Both paths honour the in-place consumption contract of
// BuffersWriter, so callers can resume after a partial write.
func WriteBuffers(w io.Writer, bufs [][]byte) (int64, error) {
	if bw, ok := w.(BuffersWriter); ok {
		return bw.WriteBuffers(bufs)
	}
	var total int64
	for i := range bufs {
		for len(bufs[i]) > 0 {
			n, err := w.Write(bufs[i])
			bufs[i] = bufs[i][n:]
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		bufs[i] = nil
	}
	return total, nil
}

// Listener accepts inbound connections on one address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr reports the bound address as "host:port".
	Addr() string
}

// Network is the dialing and listening surface a single node sees.
type Network interface {
	// Listen binds addr and starts accepting connections.
	Listen(addr string) (Listener, error)
	// Dial connects to addr, failing after timeout (0 means no timeout).
	Dial(addr string, timeout time.Duration) (Conn, error)
}

// Sentinel errors shared by all backends. Backends may wrap these; use
// errors.Is for classification.
var (
	// ErrClosed is returned by operations on a connection or listener
	// that was closed locally.
	ErrClosed = errors.New("transport: use of closed connection")
	// ErrReset is returned when the peer vanished abruptly (node killed,
	// connection reset).
	ErrReset = errors.New("transport: connection reset by peer")
	// ErrRefused is returned by Dial when nothing listens on the address
	// or the target host is down.
	ErrRefused = errors.New("transport: connection refused")
)

// timeoutError is the deadline-exceeded error for the in-memory backend.
// It implements the Timeout() bool contract shared with net.Error so that
// callers can classify it with IsTimeout.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "transport: " + e.op + " deadline exceeded" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// IsTimeout reports whether err is a deadline-exceeded condition, from
// either backend (net.Error or the in-memory pipe).
func IsTimeout(err error) bool {
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// IsClosed reports whether err indicates the local end was closed.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }

// IsReset reports whether err indicates the remote end vanished.
func IsReset(err error) bool { return errors.Is(err, ErrReset) }
