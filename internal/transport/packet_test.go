package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestUDPPacketRoundtrip exercises the real UDP backend end to end: a burst
// of two-part datagrams written through PacketWriter (the sendmmsg path on
// Linux) must arrive intact and in recognisable form via RecvPacketBatch.
func TestUDPPacketRoundtrip(t *testing.T) {
	var nw TCP
	rx, err := nw.ListenPacket("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen rx: %v", err)
	}
	defer rx.Close()
	tx, err := nw.ListenPacket("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen tx: %v", err)
	}
	defer tx.Close()

	const burst = 40
	msgs := make([]PacketMsg, burst)
	for i := range msgs {
		head := []byte{0xA7, byte(i)}
		body := bytes.Repeat([]byte{byte('a' + i%26)}, 100+i)
		msgs[i] = PacketMsg{Addr: rx.LocalAddr(), Head: head, Body: body}
	}
	w := NewPacketWriter(tx)
	n, err := w.WriteBatch(msgs)
	if err != nil || n != burst {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", n, err, burst)
	}

	bufs := make([][]byte, burst)
	sizes := make([]int, burst)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	seen := make(map[byte][]byte)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < burst && time.Now().Before(deadline) {
		_ = rx.SetReadDeadline(time.Now().Add(time.Second))
		got, err := RecvPacketBatch(rx, bufs, sizes)
		if err != nil {
			if IsTimeout(err) {
				continue
			}
			t.Fatalf("RecvPacketBatch: %v", err)
		}
		for i := 0; i < got; i++ {
			p := bufs[i][:sizes[i]]
			if len(p) < 2 || p[0] != 0xA7 {
				t.Fatalf("malformed datagram %x", p)
			}
			seen[p[1]] = append([]byte(nil), p[2:]...)
		}
	}
	// UDP is lossy in principle, but loopback bursts of this size do not
	// drop; treat any loss as a failure so a broken syscall path is loud.
	if len(seen) != burst {
		t.Fatalf("received %d/%d datagrams", len(seen), burst)
	}
	for i := 0; i < burst; i++ {
		want := bytes.Repeat([]byte{byte('a' + i%26)}, 100+i)
		if !bytes.Equal(seen[byte(i)], want) {
			t.Fatalf("datagram %d payload mismatch: got %d bytes, want %d", i, len(seen[byte(i)]), len(want))
		}
	}
}

// TestUDPRecvDeadline verifies that a blocked batch receive honours the read
// deadline and surfaces a timeout the rest of the stack recognises.
func TestUDPRecvDeadline(t *testing.T) {
	var nw TCP
	rx, err := nw.ListenPacket("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer rx.Close()
	bufs := [][]byte{make([]byte, 64)}
	sizes := make([]int, 1)
	_ = rx.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = RecvPacketBatch(rx, bufs, sizes)
	if err == nil || !IsTimeout(err) {
		t.Fatalf("RecvPacketBatch err = %v; want timeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("deadline not honoured (took %v)", time.Since(start))
	}
}

// TestPacketWriterFallback drives the scratch-concatenation path through a
// stub conn with no batching capability.
func TestPacketWriterFallback(t *testing.T) {
	fc := &funcPacketConn{}
	w := NewPacketWriter(fc)
	if w.Batched() {
		t.Fatal("stub conn must not report batching")
	}
	msgs := []PacketMsg{
		{Addr: "a", Head: []byte{1, 2}, Body: []byte{3, 4, 5}},
		{Addr: "b", Head: []byte{9}},
		{Addr: "c", Body: []byte{7, 7}},
	}
	if n, err := w.WriteBatch(msgs); n != 3 || err != nil {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	want := [][]byte{{1, 2, 3, 4, 5}, {9}, {7, 7}}
	if len(fc.sent) != len(want) {
		t.Fatalf("sent %d datagrams, want %d", len(fc.sent), len(want))
	}
	for i := range want {
		if !bytes.Equal(fc.sent[i], want[i]) {
			t.Fatalf("datagram %d = %v, want %v", i, fc.sent[i], want[i])
		}
	}
}

type funcPacketConn struct {
	sent [][]byte
}

func (f *funcPacketConn) Recv(p []byte) (int, error) { return 0, fmt.Errorf("no recv") }
func (f *funcPacketConn) Send(p []byte, addr string) (int, error) {
	f.sent = append(f.sent, append([]byte(nil), p...))
	return len(p), nil
}
func (f *funcPacketConn) SetReadDeadline(time.Time) error { return nil }
func (f *funcPacketConn) Close() error                    { return nil }
func (f *funcPacketConn) LocalAddr() string               { return "stub" }
