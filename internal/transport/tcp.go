package transport

import (
	"errors"
	"io"
	"net"
	"syscall"
	"time"
)

// TCP is the real-network backend: Dial and Listen map directly to the
// standard library's TCP stack. The CLI and the loopback integration tests
// use it; the protocol engines stay byte-for-byte identical between TCP
// and the in-memory fabric.
type TCP struct{}

func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l}, nil
}

func (TCP) Dial(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) {
			return nil, errRefusedTCP{err}
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// The pipeline forwards small protocol frames interleaved with
		// bulk data; disabling Nagle keeps control latency low.
		_ = tc.SetNoDelay(true)
	}
	return tcpConn{c}, nil
}

// errRefusedTCP lets errors.Is(err, ErrRefused) hold for TCP refusals.
type errRefusedTCP struct{ err error }

func (e errRefusedTCP) Error() string        { return e.err.Error() }
func (e errRefusedTCP) Unwrap() error        { return e.err }
func (e errRefusedTCP) Is(target error) bool { return target == ErrRefused }

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return tcpConn{c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

type tcpConn struct{ c net.Conn }

func (t tcpConn) Read(p []byte) (int, error) {
	n, err := t.c.Read(p)
	return n, mapTCPErr(err)
}

func (t tcpConn) Write(p []byte) (int, error) {
	n, err := t.c.Write(p)
	return n, mapTCPErr(err)
}

// WriteBuffers sends all slices with a single writev when the kernel path
// allows it, collapsing the frame-header + payload pairs of the broadcast
// hot path into one syscall. net.Buffers consumes its receiver, so bufs is
// modified as documented on transport.BuffersWriter.
func (t tcpConn) WriteBuffers(bufs [][]byte) (int64, error) {
	nb := net.Buffers(bufs)
	n, err := nb.WriteTo(t.c)
	return n, mapTCPErr(err)
}

func (t tcpConn) Close() error                        { return t.c.Close() }
func (t tcpConn) SetDeadline(tm time.Time) error      { return t.c.SetDeadline(tm) }
func (t tcpConn) SetReadDeadline(tm time.Time) error  { return t.c.SetReadDeadline(tm) }
func (t tcpConn) SetWriteDeadline(tm time.Time) error { return t.c.SetWriteDeadline(tm) }
func (t tcpConn) LocalAddr() string                   { return t.c.LocalAddr().String() }
func (t tcpConn) RemoteAddr() string                  { return t.c.RemoteAddr().String() }

// mapTCPErr folds the platform error zoo into the transport sentinels while
// preserving the original error text via wrapping.
func mapTCPErr(err error) error {
	switch {
	case err == nil, err == io.EOF:
		return err
	case errors.Is(err, net.ErrClosed):
		return wrapped{err, ErrClosed}
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return wrapped{err, ErrReset}
	default:
		return err
	}
}

type wrapped struct {
	err error
	as  error
}

func (w wrapped) Error() string        { return w.err.Error() }
func (w wrapped) Unwrap() error        { return w.err }
func (w wrapped) Is(target error) bool { return target == w.as }
