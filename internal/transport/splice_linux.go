//go:build linux

package transport

import (
	"fmt"
	"io"
	"net"
)

// CanSpliceFrom reports whether the kernel pass-through engages for src:
// both endpoints must unwrap to plain *net.TCPConn. The check matters —
// net.TCPConn.ReadFrom silently falls back to a user-space copy loop for
// any other reader, which would defeat the point while looking identical.
func (t tcpConn) CanSpliceFrom(src Conn) bool {
	if _, ok := t.c.(*net.TCPConn); !ok {
		return false
	}
	sc, ok := src.(tcpConn)
	if !ok {
		return false
	}
	_, ok = sc.c.(*net.TCPConn)
	return ok
}

// SpliceFrom moves exactly n bytes from src into this connection with
// splice(2): the standard library routes TCPConn.ReadFrom through its
// pooled splice pipes when the source is a *net.TCPConn wrapped in an
// *io.LimitedReader. Deadlines on both sockets are honoured by the
// netpoller mid-transfer. A short transfer (source EOF) is reported as
// io.ErrUnexpectedEOF so the caller never mistakes a truncated frame for
// success.
func (t tcpConn) SpliceFrom(src Conn, n int64) (int64, error) {
	dst, ok := t.c.(*net.TCPConn)
	if !ok {
		return 0, fmt.Errorf("transport: splice target is not a TCP connection")
	}
	sc, ok := src.(tcpConn)
	if !ok {
		return 0, fmt.Errorf("transport: splice source is not a TCP connection")
	}
	s, ok := sc.c.(*net.TCPConn)
	if !ok {
		return 0, fmt.Errorf("transport: splice source is not a TCP connection")
	}
	written, err := dst.ReadFrom(&io.LimitedReader{R: s, N: n})
	if err == nil && written < n {
		err = io.ErrUnexpectedEOF
	}
	return written, mapTCPErr(err)
}
