package transport

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Datagram plane of the in-memory fabric. It models UDP faithfully enough
// for the protocol tests: delivery is unordered only across hosts (per-link
// it is a FIFO queue, like loopback), sends are blind, and datagrams are
// silently dropped when the destination is unbound, the link is cut, the
// bounded receive queue is full, or a scripted loss rate says so.

// memPacketQueue bounds a receiver's backlog, mimicking a kernel socket
// buffer: a fan-out burst that outruns the receiver drops on the floor.
const memPacketQueue = 1024

// SetPacketLoss makes the fabric drop the given fraction [0,1] of datagrams
// flowing from host src to host dst. Direction matters; 0 heals the link.
// Drops are driven by the fabric's seeded generator (SeedPacketLoss), so a
// pinned seed reproduces the exact same loss pattern.
func (f *Fabric) SetPacketLoss(src, dst string, rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rate <= 0 {
		delete(f.ploss, src+"->"+dst)
		return
	}
	f.ploss[src+"->"+dst] = rate
}

// SeedPacketLoss reseeds the generator behind SetPacketLoss drops.
func (f *Fabric) SeedPacketLoss(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prng.Seed(seed)
}

// dropPacketHostLocked unregisters every packet endpoint of a killed host.
// Caller holds f.mu and closes the returned endpoints after unlocking.
func (f *Fabric) dropPacketHostLocked(host string) []*memPacketConn {
	var out []*memPacketConn
	for addr, pc := range f.packets {
		if hostOf(addr) == host {
			out = append(out, pc)
			delete(f.packets, addr)
		}
	}
	return out
}

// ListenPacket implements PacketNetwork for a fabric host.
func (hn *hostNet) ListenPacket(addr string) (PacketConn, error) {
	full := hn.qualify(addr)
	f := hn.fabric
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[hn.host] {
		return nil, fmt.Errorf("memnet listen-packet %s: host %s is down: %w", full, hn.host, ErrRefused)
	}
	if host, port := hostOf(full), full[len(hostOf(full)):]; port == ":0" {
		f.pport++
		full = host + ":" + strconv.Itoa(f.pport)
	}
	if _, exists := f.packets[full]; exists {
		return nil, fmt.Errorf("memnet listen-packet %s: address in use", full)
	}
	pc := &memPacketConn{
		fabric: f,
		host:   hn.host,
		addr:   full,
		queue:  make(chan []byte, memPacketQueue),
		done:   make(chan struct{}),
	}
	f.packets[full] = pc
	return pc, nil
}

// memPacketConn is one bound datagram endpoint on a fabric host.
type memPacketConn struct {
	fabric *Fabric
	host   string
	addr   string
	queue  chan []byte
	done   chan struct{}

	dmu       sync.Mutex
	deadline  time.Time
	closeOnce sync.Once
}

func (c *memPacketConn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.deadline = t
	c.dmu.Unlock()
	return nil
}

func (c *memPacketConn) Recv(p []byte) (int, error) {
	c.dmu.Lock()
	dl := c.deadline
	c.dmu.Unlock()
	var timer <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			// Expired deadline still delivers already-queued datagrams.
			select {
			case b := <-c.queue:
				return copy(p, b), nil
			default:
				return 0, &timeoutError{"recv " + c.addr}
			}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timer = t.C
	}
	select {
	case b := <-c.queue:
		return copy(p, b), nil
	case <-c.done:
		return 0, fmt.Errorf("memnet recv %s: %w", c.addr, ErrClosed)
	case <-timer:
		return 0, &timeoutError{"recv " + c.addr}
	}
}

// Send delivers p to the endpoint bound at addr, or silently drops it —
// unbound destination, killed host, partitioned link, scripted loss, or a
// full receive queue all look identical to the sender, exactly like UDP.
func (c *memPacketConn) Send(p []byte, addr string) (int, error) {
	f := c.fabric
	f.mu.Lock()
	select {
	case <-c.done:
		f.mu.Unlock()
		return 0, fmt.Errorf("memnet send %s: %w", c.addr, ErrClosed)
	default:
	}
	dst, ok := f.packets[addr]
	drop := !ok || f.down[c.host] || f.cutBetween(c.host, hostOf(addr))
	if !drop {
		if rate, lossy := f.ploss[c.host+"->"+hostOf(addr)]; lossy {
			drop = f.prng.Float64() < rate
		}
	}
	f.mu.Unlock()
	if drop {
		return len(p), nil
	}
	b := append([]byte(nil), p...) // the caller reuses p immediately
	select {
	case dst.queue <- b:
	default: // receiver backlog full: kernel-buffer overflow, drop
	}
	return len(p), nil
}

func (c *memPacketConn) Close() error {
	f := c.fabric
	f.mu.Lock()
	if f.packets[c.addr] == c {
		delete(f.packets, c.addr)
	}
	f.mu.Unlock()
	c.closeLocal()
	return nil
}

// closeLocal unblocks receivers without touching the fabric registry (the
// caller already holds or handled it).
func (c *memPacketConn) closeLocal() {
	c.closeOnce.Do(func() { close(c.done) })
}

func (c *memPacketConn) LocalAddr() string { return c.addr }
