// Package blockio provides the minimal block framing shared by the baseline
// broadcast implementations (internal/taktuk, internal/udpcast,
// internal/mpibcast): typed frames carrying data blocks, end-of-stream
// markers, and acknowledgements.
//
// The Kascade engine (internal/core) deliberately does not use this package:
// its richer protocol (GET/PGET/FORGET/REPORT/...) is defined in its own
// wire format.
package blockio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types.
const (
	TypeData byte = iota + 1 // u32 length + payload
	TypeEnd                  // u64 total stream length
	TypeAck                  // u64 acknowledged offset
	TypeDone                 // subtree finished
)

// MaxBlock bounds accepted block lengths, protecting against corrupt frames.
const MaxBlock = 1 << 28

// WriteBlock frames one data block.
func WriteBlock(w io.Writer, payload []byte) error {
	var hdr [5]byte
	hdr[0] = TypeData
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteEnd frames the end-of-stream marker.
func WriteEnd(w io.Writer, total uint64) error {
	var hdr [9]byte
	hdr[0] = TypeEnd
	binary.BigEndian.PutUint64(hdr[1:], total)
	_, err := w.Write(hdr[:])
	return err
}

// WriteAck frames an acknowledgement up to offset.
func WriteAck(w io.Writer, offset uint64) error {
	var hdr [9]byte
	hdr[0] = TypeAck
	binary.BigEndian.PutUint64(hdr[1:], offset)
	_, err := w.Write(hdr[:])
	return err
}

// WriteDone frames a subtree-completion marker.
func WriteDone(w io.Writer) error {
	_, err := w.Write([]byte{TypeDone})
	return err
}

// Frame is one decoded frame. Payload aliases the buffer passed to Read.
type Frame struct {
	Type    byte
	Payload []byte // TypeData only
	Offset  uint64 // TypeEnd: total length; TypeAck: acknowledged offset
}

// Read decodes the next frame, reading payload bytes into buf (growing it
// when needed).
func Read(r *bufio.Reader, buf []byte) (Frame, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	switch typ {
	case TypeData:
		var lenb [4]byte
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			return Frame{}, err
		}
		size := binary.BigEndian.Uint32(lenb[:])
		if size > MaxBlock {
			return Frame{}, fmt.Errorf("blockio: block of %d bytes exceeds limit", size)
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, err
		}
		return Frame{Type: TypeData, Payload: buf}, nil
	case TypeEnd, TypeAck:
		var ob [8]byte
		if _, err := io.ReadFull(r, ob[:]); err != nil {
			return Frame{}, err
		}
		return Frame{Type: typ, Offset: binary.BigEndian.Uint64(ob[:])}, nil
	case TypeDone:
		return Frame{Type: TypeDone}, nil
	default:
		return Frame{}, fmt.Errorf("blockio: unknown frame type %d", typ)
	}
}
