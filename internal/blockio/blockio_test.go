package blockio

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlock(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAck(&buf, 777); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnd(&buf, 12345); err != nil {
		t.Fatal(err)
	}
	if err := WriteDone(&buf); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	f, err := Read(r, nil)
	if err != nil || f.Type != TypeData || string(f.Payload) != "payload" {
		t.Fatalf("data frame: %+v %v", f, err)
	}
	f, err = Read(r, nil)
	if err != nil || f.Type != TypeAck || f.Offset != 777 {
		t.Fatalf("ack frame: %+v %v", f, err)
	}
	f, err = Read(r, nil)
	if err != nil || f.Type != TypeEnd || f.Offset != 12345 {
		t.Fatalf("end frame: %+v %v", f, err)
	}
	f, err = Read(r, nil)
	if err != nil || f.Type != TypeDone {
		t.Fatalf("done frame: %+v %v", f, err)
	}
}

func TestUnknownFrameRejected(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0x7F}))
	if _, err := Read(r, nil); err == nil {
		t.Fatal("unknown frame accepted")
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{TypeData, 0xFF, 0xFF, 0xFF, 0xFF}))
	if _, err := Read(r, nil); err == nil {
		t.Fatal("oversized block accepted")
	}
}

// Property: any sequence of blocks framed and decoded reproduces the
// payloads in order.
func TestBlockSequenceQuick(t *testing.T) {
	f := func(blocks [][]byte) bool {
		var buf bytes.Buffer
		for _, b := range blocks {
			if err := WriteBlock(&buf, b); err != nil {
				return false
			}
		}
		r := bufio.NewReader(&buf)
		for _, want := range blocks {
			f, err := Read(r, nil)
			if err != nil || f.Type != TypeData || !bytes.Equal(f.Payload, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
