package taktuk

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"kascade/internal/transport"
)

type safeBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *safeBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func TestTreeShapeHelpers(t *testing.T) {
	// Arity 1 degrades into a chain.
	if got := Children(0, 5, 1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("chain children of 0: %v", got)
	}
	if got := Children(4, 5, 1); got != nil {
		t.Fatalf("chain tail children: %v", got)
	}
	// Arity 2 heap.
	if got := Children(0, 7, 2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("root children: %v", got)
	}
	if got := Children(2, 7, 2); !reflect.DeepEqual(got, []int{5, 6}) {
		t.Fatalf("node 2 children: %v", got)
	}
	if Parent(5, 2) != 2 || Parent(1, 2) != 0 {
		t.Fatal("parent computation wrong")
	}
	if Depth(0, 2) != 0 || Depth(6, 2) != 2 || Depth(4, 1) != 4 {
		t.Fatal("depth computation wrong")
	}
}

func runTree(t *testing.T, n, arity, size int) {
	t.Helper()
	fabric := transport.NewFabric(0)
	names := make([]string, n)
	addrs := make([]string, n)
	sinks := make([]*safeBuf, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i+1)
		addrs[i] = names[i] + ":8000"
		sinks[i] = &safeBuf{}
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(int64(n*arity + size))).Read(data)
	res, err := Broadcast(context.Background(), Config{
		Names:      names,
		Addrs:      addrs,
		Arity:      arity,
		BlockSize:  4 << 10,
		NetworkFor: func(i int) transport.Network { return fabric.Host(names[i]) },
		Input:      bytes.NewReader(data),
		SinkFor:    func(i int) io.Writer { return sinks[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != uint64(size) {
		t.Fatalf("total %d, want %d", res.Total, size)
	}
	for i := 1; i < n; i++ {
		if sha256.Sum256(sinks[i].Bytes()) != sha256.Sum256(data) {
			t.Errorf("node %d corrupted payload", i)
		}
	}
}

func TestChainBroadcast(t *testing.T)      { runTree(t, 6, 1, 100<<10) }
func TestBinaryTreeBroadcast(t *testing.T) { runTree(t, 9, 2, 100<<10) }
func TestWideTreeBroadcast(t *testing.T)   { runTree(t, 13, 4, 64<<10) }
func TestTwoNodeTree(t *testing.T)         { runTree(t, 2, 2, 10<<10) }
func TestUnalignedPayload(t *testing.T)    { runTree(t, 5, 2, 4<<10+37) }
func TestEmptyPayload(t *testing.T)        { runTree(t, 4, 2, 0) }

func TestConfigValidation(t *testing.T) {
	if _, err := Broadcast(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Broadcast(context.Background(), Config{Names: []string{"a"}, Addrs: []string{"a:1", "b:1"}}); err == nil {
		t.Error("mismatched names/addrs accepted")
	}
	fabric := transport.NewFabric(0)
	if _, err := Broadcast(context.Background(), Config{
		Names:      []string{"a"},
		Addrs:      []string{"a:1"},
		NetworkFor: func(int) transport.Network { return fabric.Host("a") },
	}); err == nil {
		t.Error("missing input accepted")
	}
}
