// Package taktuk reimplements the TakTuk-style tree broadcast the paper
// evaluates as a baseline (§IV: TakTuk/chain is a tree of arity 1,
// TakTuk/tree a tree of arity 2).
//
// TakTuk distributes files through its remote-execution command channel:
// each node receives blocks from its parent and forwards them to its
// children, store-and-forward, in heap order over the node list. The real
// tool's throughput is capped by its perl encoding pipeline rather than the
// network — that cost is modelled in the simulator (internal/simbcast); this
// package provides the functionally equivalent overlay used by tests,
// examples, and the CLI.
package taktuk

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"kascade/internal/blockio"
	"kascade/internal/transport"
)

// Config describes one tree broadcast.
type Config struct {
	// Names and Addrs list the participants; index 0 is the root
	// (sender). Children of node i are i*Arity+1 .. i*Arity+Arity.
	Names []string
	Addrs []string
	// Arity is the tree fan-out: 1 gives the chain variant, 2 the tree
	// variant of the paper.
	Arity int
	// BlockSize is the store-and-forward granularity (default 64 KiB —
	// TakTuk forwards small command-channel buffers).
	BlockSize int
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration

	// NetworkFor returns node i's network surface.
	NetworkFor func(i int) transport.Network
	// Input is the root's payload.
	Input io.Reader
	// SinkFor returns node i's local sink (nil discards).
	SinkFor func(i int) io.Writer
}

func (c *Config) withDefaults() error {
	if len(c.Names) == 0 || len(c.Names) != len(c.Addrs) {
		return fmt.Errorf("taktuk: need matching Names and Addrs")
	}
	if c.Arity <= 0 {
		c.Arity = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 10
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.NetworkFor == nil {
		return fmt.Errorf("taktuk: NetworkFor is required")
	}
	if c.Input == nil {
		return fmt.Errorf("taktuk: root needs an Input")
	}
	return nil
}

// Children returns the child indices of node i in an n-node, arity-k heap.
func Children(i, n, k int) []int {
	var out []int
	for c := i*k + 1; c <= i*k+k && c < n; c++ {
		out = append(out, c)
	}
	return out
}

// Parent returns the parent index of node i (i>0) in an arity-k heap.
func Parent(i, k int) int { return (i - 1) / k }

// Depth returns the depth of node i in an arity-k heap (root = 0).
func Depth(i, k int) int {
	d := 0
	for i > 0 {
		i = Parent(i, k)
		d++
	}
	return d
}

// Result summarises one broadcast.
type Result struct {
	Total   uint64
	Elapsed time.Duration
}

// Broadcast runs the full tree broadcast in-process: one goroutine per
// node, connected through cfg.NetworkFor. It returns once every node has
// confirmed completion up the tree.
func Broadcast(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return Result{}, err
	}
	n := len(cfg.Names)

	listeners := make([]transport.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := cfg.NetworkFor(i).Listen(cfg.Addrs[i])
		if err != nil {
			for _, b := range listeners[:i] {
				if b != nil {
					b.Close()
				}
			}
			return Result{}, fmt.Errorf("taktuk: binding %s: %w", cfg.Addrs[i], err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	start := time.Now()
	errs := make([]error, n)
	var total uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				total, errs[0] = runRoot(ctx, &cfg, addrs)
			} else {
				errs[i] = runRelay(ctx, &cfg, addrs, listeners[i], i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("taktuk: node %s: %w", cfg.Names[i], err)
		}
	}
	return Result{Total: total, Elapsed: time.Since(start)}, nil
}

// dialChildren connects node i to each of its children.
func dialChildren(cfg *Config, addrs []string, i int) ([]transport.Conn, error) {
	var conns []transport.Conn
	for _, c := range Children(i, len(addrs), cfg.Arity) {
		conn, err := cfg.NetworkFor(i).Dial(addrs[c], cfg.DialTimeout)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, fmt.Errorf("dialing child %d: %w", c, err)
		}
		conns = append(conns, conn)
	}
	return conns, nil
}

func runRoot(ctx context.Context, cfg *Config, addrs []string) (uint64, error) {
	children, err := dialChildren(cfg, addrs, 0)
	if err != nil {
		return 0, err
	}
	defer closeAll(children)

	buf := make([]byte, cfg.BlockSize)
	var total uint64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		nr, rerr := io.ReadFull(cfg.Input, buf)
		if nr > 0 {
			for _, c := range children {
				if err := blockio.WriteBlock(c, buf[:nr]); err != nil {
					return total, err
				}
			}
			total += uint64(nr)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			return total, rerr
		}
	}
	for _, c := range children {
		if err := blockio.WriteEnd(c, total); err != nil {
			return total, err
		}
	}
	// Wait for every subtree to finish.
	for _, c := range children {
		if err := awaitDone(c); err != nil {
			return total, err
		}
	}
	return total, nil
}

func runRelay(ctx context.Context, cfg *Config, addrs []string, l transport.Listener, i int) error {
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	children, err := dialChildren(cfg, addrs, i)
	if err != nil {
		return err
	}
	defer closeAll(children)

	var sink io.Writer
	if cfg.SinkFor != nil {
		sink = cfg.SinkFor(i)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, cfg.BlockSize)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := blockio.Read(br, buf)
		if err != nil {
			return err
		}
		switch f.Type {
		case blockio.TypeData:
			if sink != nil {
				if _, err := sink.Write(f.Payload); err != nil {
					return err
				}
			}
			for _, c := range children {
				if err := blockio.WriteBlock(c, f.Payload); err != nil {
					return err
				}
			}
		case blockio.TypeEnd:
			for _, c := range children {
				if err := blockio.WriteEnd(c, f.Offset); err != nil {
					return err
				}
			}
			for _, c := range children {
				if err := awaitDone(c); err != nil {
					return err
				}
			}
			return blockio.WriteDone(conn)
		default:
			return fmt.Errorf("unexpected frame %d", f.Type)
		}
	}
}

func awaitDone(c transport.Conn) error {
	br := bufio.NewReader(c)
	f, err := blockio.Read(br, nil)
	if err != nil {
		return err
	}
	if f.Type != blockio.TypeDone {
		return fmt.Errorf("expected DONE, got frame %d", f.Type)
	}
	return nil
}

func closeAll(conns []transport.Conn) {
	for _, c := range conns {
		c.Close()
	}
}
