package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"kascade/internal/transport"
)

// admitTestEngine builds an engine with a small budget for admission tests.
func admitTestEngine(t *testing.T, budget int64, opts EngineOptions) *Engine {
	t.Helper()
	fabric := transport.NewFabric(64 << 10)
	opts.MemBudget = budget
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestAdmitAcceptRefuse covers the immediate decisions: a fitting
// reservation is accepted and debited; an impossible one (larger than the
// whole budget) and a duplicate are refused with reasons.
func TestAdmitAcceptRefuse(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})

	tk := e.Admit(1, 8<<10)
	if tk.Decision() != AdmitAccepted {
		t.Fatalf("fitting reservation: %v (%v)", tk.Decision(), tk.Err())
	}
	if st := e.Stats(); st.PoolReserved != 8<<10 || st.Admitted != 1 {
		t.Fatalf("accepted reservation not debited: %+v", st)
	}

	// Impossible: larger than the entire budget — refused, never queued.
	tk = e.Admit(2, 11<<10)
	if tk.Decision() != AdmitRefused {
		t.Fatalf("impossible reservation: %v", tk.Decision())
	}
	var adErr *AdmissionError
	if err := tk.Err(); !errors.As(err, &adErr) || adErr.Session != 2 || adErr.Queued {
		t.Fatalf("refusal error: %v", err)
	}

	// Duplicate of an admitted session.
	if tk := e.Admit(1, 1<<10); tk.Decision() != AdmitRefused {
		t.Fatalf("duplicate admit: %v", tk.Decision())
	}
	// The default v1 session may not be admitted explicitly.
	if tk := e.Admit(0, 1<<10); tk.Decision() != AdmitRefused {
		t.Fatalf("session-0 admit: %v", tk.Decision())
	}
	if st := e.Stats(); st.Refused != 3 {
		t.Fatalf("refused counter %d, want 3", st.Refused)
	}
}

// TestAdmitQueueReleasedOnSessionEnd: a reservation that does not fit now
// queues, is observable in EngineStats, and is admitted the moment a
// running session's release frees the budget.
func TestAdmitQueueReleasedOnSessionEnd(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()

	tkA := e.Admit(1, 8<<10)
	if tkA.Decision() != AdmitAccepted {
		t.Fatalf("session 1: %v", tkA.Decision())
	}
	if _, err := e.register(1, h, 1<<10, 8); err != nil { // adopt the grant
		t.Fatal(err)
	}
	e.attach(1, h)

	tkB := e.Admit(2, 6<<10) // does not fit until session 1 ends
	if tkB.Decision() != AdmitQueued {
		t.Fatalf("session 2: %v, want queued", tkB.Decision())
	}
	if st := e.Stats(); st.AdmitQueue != 1 || st.Queued != 1 {
		t.Fatalf("queue not observable: %+v", st)
	}

	waitDone := make(chan AdmitDecision, 1)
	go func() {
		d, _ := tkB.Wait(context.Background())
		waitDone <- d
	}()
	select {
	case d := <-waitDone:
		t.Fatalf("queued ticket resolved early: %v", d)
	case <-time.After(50 * time.Millisecond):
	}

	e.unregister(1, h) // release hook: budget frees, the queue pumps
	select {
	case d := <-waitDone:
		if d != AdmitAccepted {
			t.Fatalf("after release: %v (%v)", d, tkB.Err())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued admission never resolved after budget freed")
	}
	st := e.Stats()
	if st.AdmitQueue != 0 || st.PoolReserved != 6<<10 {
		t.Fatalf("post-release stats: %+v", st)
	}

	// The admitted-but-unregistered grant is cancellable (lease expiry).
	tkB.Cancel()
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("cancel left %d B reserved", st.PoolReserved)
	}
}

// TestAdmitQueueFIFONoStarvation: the queue resolves strictly FIFO — a
// large reservation at the head is not starved by a small one behind it.
func TestAdmitQueueFIFONoStarvation(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 9); err != nil {
		t.Fatal(err)
	}
	e.attach(1, h)

	big := e.Admit(2, 8<<10)   // queued first
	small := e.Admit(3, 1<<10) // would fit right now, but must wait its turn
	if big.Decision() != AdmitQueued || small.Decision() != AdmitQueued {
		t.Fatalf("decisions: big=%v small=%v", big.Decision(), small.Decision())
	}

	e.unregister(1, h) // frees 9 KiB: head (8 KiB) fits, then small (1 KiB)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := big.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("big: %v (%v)", d, err)
	}
	if d, err := small.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("small: %v (%v)", d, err)
	}
}

// TestAdmitQueueTimeout: a queued session whose deadline passes without
// budget freeing resolves to a typed, queue-flagged refusal.
func TestAdmitQueueTimeout(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 5 * time.Second, Clock: clk})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 8); err != nil {
		t.Fatal(err)
	}

	tk := e.Admit(2, 8<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("decision %v, want queued", tk.Decision())
	}
	clk.Advance(6 * time.Second)
	d, err := tk.Wait(context.Background())
	if d != AdmitRefused {
		t.Fatalf("after deadline: %v", d)
	}
	var adErr *AdmissionError
	if !errors.As(err, &adErr) || !adErr.Queued {
		t.Fatalf("timeout error not typed/queued: %v", err)
	}
	if st := e.Stats(); st.QueueTimeouts != 1 || st.AdmitQueue != 0 {
		t.Fatalf("timeout stats: %+v", st)
	}
}

// TestAdmitMaxSessionsCap: the session cap queues sessions even when the
// byte budget would fit them, and frees on session end.
func TestAdmitMaxSessionsCap(t *testing.T) {
	e := admitTestEngine(t, 1<<20, EngineOptions{MaxSessions: 1, AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 4); err != nil {
		t.Fatal(err)
	}
	tk := e.Admit(2, 4<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("over session cap: %v, want queued", tk.Decision())
	}
	e.unregister(1, h)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := tk.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("after cap freed: %v (%v)", d, err)
	}
}

// TestAdmittedReservationAdoptedByRegister: register adopts the admitted
// byte grant instead of re-reserving, so admission and registration never
// double-count.
func TestAdmittedReservationAdoptedByRegister(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})
	opts := Options{ChunkSize: 1 << 10, PoolChunks: 6, WindowChunks: 4}
	if tk := e.Admit(4, opts.PoolReservation()); tk.Decision() != AdmitAccepted {
		t.Fatalf("admit: %v", tk.Decision())
	}
	h := newFakeHandler()
	if _, err := e.register(4, h, opts.ChunkSize, opts.PoolChunks); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PoolReserved != 6<<10 || len(st.PerSession) != 1 {
		t.Fatalf("double-counted adoption: %+v", st)
	}
	// Now owned: a second register of the same sid is a duplicate.
	if _, err := e.register(4, newFakeHandler(), 1<<10, 2); err == nil {
		t.Fatal("duplicate register after adoption accepted")
	}
	e.unregister(4, h)
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("release after adoption leaked: %+v", st)
	}
}

// TestStaleCancelCannotRevokeNewerGrant: a Cancel from an old ticket must
// not revoke a NEWER admission that reused the same session ID (the
// agent's post-run cleanup races re-prepares of recycled IDs).
func TestStaleCancelCannotRevokeNewerGrant(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})
	h := newFakeHandler()

	old := e.Admit(1, 2<<10)
	if old.Decision() != AdmitAccepted {
		t.Fatalf("first admit: %v", old.Decision())
	}
	if _, err := e.register(1, h, 1<<10, 2); err != nil {
		t.Fatal(err)
	}
	e.unregister(1, h) // session 1's first run ends; the ID is free again

	fresh := e.Admit(1, 3<<10) // a new broadcast reuses the ID
	if fresh.Decision() != AdmitAccepted {
		t.Fatalf("re-admit: %v", fresh.Decision())
	}
	old.Cancel() // the first run's cleanup fires late
	if st := e.Stats(); st.PoolReserved != 3<<10 {
		t.Fatalf("stale cancel revoked the new grant: %+v", st)
	}
	fresh.Cancel()
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("owning cancel failed: %+v", st)
	}
}

// TestAdmitEngineCloseResolvesQueue: closing the engine refuses every
// queued admission instead of leaving waiters hung.
func TestAdmitEngineCloseResolvesQueue(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: time.Hour})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 8); err != nil {
		t.Fatal(err)
	}
	tk := e.Admit(2, 8<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("decision %v", tk.Decision())
	}
	e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := tk.Wait(ctx); d != AdmitRefused || err == nil {
		t.Fatalf("after close: %v (%v)", d, err)
	}
}
