package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"kascade/internal/transport"
)

// admitTestEngine builds an engine with a small budget for admission tests.
func admitTestEngine(t *testing.T, budget int64, opts EngineOptions) *Engine {
	t.Helper()
	fabric := transport.NewFabric(64 << 10)
	opts.MemBudget = budget
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestAdmitAcceptRefuse covers the immediate decisions: a fitting
// reservation is accepted and debited; an impossible one (larger than the
// whole budget) and a duplicate are refused with reasons.
func TestAdmitAcceptRefuse(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})

	tk := e.Admit(1, 8<<10)
	if tk.Decision() != AdmitAccepted {
		t.Fatalf("fitting reservation: %v (%v)", tk.Decision(), tk.Err())
	}
	if st := e.Stats(); st.PoolReserved != 8<<10 || st.Admitted != 1 {
		t.Fatalf("accepted reservation not debited: %+v", st)
	}

	// Impossible: larger than the entire budget — refused, never queued.
	tk = e.Admit(2, 11<<10)
	if tk.Decision() != AdmitRefused {
		t.Fatalf("impossible reservation: %v", tk.Decision())
	}
	var adErr *AdmissionError
	if err := tk.Err(); !errors.As(err, &adErr) || adErr.Session != 2 || adErr.Queued {
		t.Fatalf("refusal error: %v", err)
	}

	// Duplicate of an admitted session.
	if tk := e.Admit(1, 1<<10); tk.Decision() != AdmitRefused {
		t.Fatalf("duplicate admit: %v", tk.Decision())
	}
	// The default v1 session may not be admitted explicitly.
	if tk := e.Admit(0, 1<<10); tk.Decision() != AdmitRefused {
		t.Fatalf("session-0 admit: %v", tk.Decision())
	}
	if st := e.Stats(); st.Refused != 3 {
		t.Fatalf("refused counter %d, want 3", st.Refused)
	}
}

// TestAdmitQueueReleasedOnSessionEnd: a reservation that does not fit now
// queues, is observable in EngineStats, and is admitted the moment a
// running session's release frees the budget.
func TestAdmitQueueReleasedOnSessionEnd(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()

	tkA := e.Admit(1, 8<<10)
	if tkA.Decision() != AdmitAccepted {
		t.Fatalf("session 1: %v", tkA.Decision())
	}
	if _, err := e.register(1, h, 1<<10, 8, ""); err != nil { // adopt the grant
		t.Fatal(err)
	}
	e.attach(1, h)

	tkB := e.Admit(2, 6<<10) // does not fit until session 1 ends
	if tkB.Decision() != AdmitQueued {
		t.Fatalf("session 2: %v, want queued", tkB.Decision())
	}
	if st := e.Stats(); st.AdmitQueue != 1 || st.Queued != 1 {
		t.Fatalf("queue not observable: %+v", st)
	}

	waitDone := make(chan AdmitDecision, 1)
	go func() {
		d, _ := tkB.Wait(context.Background())
		waitDone <- d
	}()
	select {
	case d := <-waitDone:
		t.Fatalf("queued ticket resolved early: %v", d)
	case <-time.After(50 * time.Millisecond):
	}

	e.unregister(1, h) // release hook: budget frees, the queue pumps
	select {
	case d := <-waitDone:
		if d != AdmitAccepted {
			t.Fatalf("after release: %v (%v)", d, tkB.Err())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued admission never resolved after budget freed")
	}
	st := e.Stats()
	if st.AdmitQueue != 0 || st.PoolReserved != 6<<10 {
		t.Fatalf("post-release stats: %+v", st)
	}

	// The admitted-but-unregistered grant is cancellable (lease expiry).
	tkB.Cancel()
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("cancel left %d B reserved", st.PoolReserved)
	}
}

// TestAdmitQueueFIFONoStarvation: the queue resolves strictly FIFO — a
// large reservation at the head is not starved by a small one behind it.
func TestAdmitQueueFIFONoStarvation(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 9, ""); err != nil {
		t.Fatal(err)
	}
	e.attach(1, h)

	big := e.Admit(2, 8<<10)   // queued first
	small := e.Admit(3, 1<<10) // would fit right now, but must wait its turn
	if big.Decision() != AdmitQueued || small.Decision() != AdmitQueued {
		t.Fatalf("decisions: big=%v small=%v", big.Decision(), small.Decision())
	}

	e.unregister(1, h) // frees 9 KiB: head (8 KiB) fits, then small (1 KiB)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := big.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("big: %v (%v)", d, err)
	}
	if d, err := small.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("small: %v (%v)", d, err)
	}
}

// TestAdmitQueueTimeout: a queued session whose deadline passes without
// budget freeing resolves to a typed, queue-flagged refusal.
func TestAdmitQueueTimeout(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: 5 * time.Second, Clock: clk})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 8, ""); err != nil {
		t.Fatal(err)
	}

	tk := e.Admit(2, 8<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("decision %v, want queued", tk.Decision())
	}
	clk.Advance(6 * time.Second)
	d, err := tk.Wait(context.Background())
	if d != AdmitRefused {
		t.Fatalf("after deadline: %v", d)
	}
	var adErr *AdmissionError
	if !errors.As(err, &adErr) || !adErr.Queued {
		t.Fatalf("timeout error not typed/queued: %v", err)
	}
	if st := e.Stats(); st.QueueTimeouts != 1 || st.AdmitQueue != 0 {
		t.Fatalf("timeout stats: %+v", st)
	}
}

// TestAdmitMaxSessionsCap: the session cap queues sessions even when the
// byte budget would fit them, and frees on session end.
func TestAdmitMaxSessionsCap(t *testing.T) {
	e := admitTestEngine(t, 1<<20, EngineOptions{MaxSessions: 1, AdmitQueueTimeout: 30 * time.Second})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 4, ""); err != nil {
		t.Fatal(err)
	}
	tk := e.Admit(2, 4<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("over session cap: %v, want queued", tk.Decision())
	}
	e.unregister(1, h)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := tk.Wait(ctx); d != AdmitAccepted {
		t.Fatalf("after cap freed: %v (%v)", d, err)
	}
}

// TestAdmittedReservationAdoptedByRegister: register adopts the admitted
// byte grant instead of re-reserving, so admission and registration never
// double-count.
func TestAdmittedReservationAdoptedByRegister(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})
	opts := Options{ChunkSize: 1 << 10, PoolChunks: 6, WindowChunks: 4}
	if tk := e.Admit(4, opts.PoolReservation()); tk.Decision() != AdmitAccepted {
		t.Fatalf("admit: %v", tk.Decision())
	}
	h := newFakeHandler()
	if _, err := e.register(4, h, opts.ChunkSize, opts.PoolChunks, ""); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PoolReserved != 6<<10 || len(st.PerSession) != 1 {
		t.Fatalf("double-counted adoption: %+v", st)
	}
	// Now owned: a second register of the same sid is a duplicate.
	if _, err := e.register(4, newFakeHandler(), 1<<10, 2, ""); err == nil {
		t.Fatal("duplicate register after adoption accepted")
	}
	e.unregister(4, h)
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("release after adoption leaked: %+v", st)
	}
}

// TestStaleCancelCannotRevokeNewerGrant: a Cancel from an old ticket must
// not revoke a NEWER admission that reused the same session ID (the
// agent's post-run cleanup races re-prepares of recycled IDs).
func TestStaleCancelCannotRevokeNewerGrant(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})
	h := newFakeHandler()

	old := e.Admit(1, 2<<10)
	if old.Decision() != AdmitAccepted {
		t.Fatalf("first admit: %v", old.Decision())
	}
	if _, err := e.register(1, h, 1<<10, 2, ""); err != nil {
		t.Fatal(err)
	}
	e.unregister(1, h) // session 1's first run ends; the ID is free again

	fresh := e.Admit(1, 3<<10) // a new broadcast reuses the ID
	if fresh.Decision() != AdmitAccepted {
		t.Fatalf("re-admit: %v", fresh.Decision())
	}
	old.Cancel() // the first run's cleanup fires late
	if st := e.Stats(); st.PoolReserved != 3<<10 {
		t.Fatalf("stale cancel revoked the new grant: %+v", st)
	}
	fresh.Cancel()
	if st := e.Stats(); st.PoolReserved != 0 {
		t.Fatalf("owning cancel failed: %+v", st)
	}
}

// TestAdmitEngineCloseResolvesQueue: closing the engine refuses every
// queued admission instead of leaving waiters hung.
func TestAdmitEngineCloseResolvesQueue(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{AdmitQueueTimeout: time.Hour})
	h := newFakeHandler()
	if _, err := e.register(1, h, 1<<10, 8, ""); err != nil {
		t.Fatal(err)
	}
	tk := e.Admit(2, 8<<10)
	if tk.Decision() != AdmitQueued {
		t.Fatalf("decision %v", tk.Decision())
	}
	e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if d, err := tk.Wait(ctx); d != AdmitRefused || err == nil {
		t.Fatalf("after close: %v (%v)", d, err)
	}
}

// admittedClassOrder drives the weighted admit pump one slot at a time:
// with exactly one reservation's worth of budget freeing per round, each
// round admits exactly one waiter (whose ticket is then cancelled to free
// the slot again), so the pump's class ordering becomes observable.
func admittedClassOrder(t *testing.T, e *Engine, tickets []*Ticket, rounds int) []string {
	t.Helper()
	var order []string
	admitted := make(map[*Ticket]bool)
	for r := 0; r < rounds; r++ {
		var winner *Ticket
		for _, tk := range tickets {
			if !admitted[tk] && tk.Decision() == AdmitAccepted {
				if winner != nil {
					t.Fatalf("round %d admitted two waiters at once", r)
				}
				winner = tk
			}
		}
		if winner == nil {
			t.Fatalf("round %d admitted nobody (order so far %v)", r, order)
		}
		admitted[winner] = true
		// Recover the class from the grant the admission debited.
		e.mu.Lock()
		class := e.reserved[winner.Session].class
		e.mu.Unlock()
		order = append(order, class)
		winner.Cancel() // frees the slot: the pump admits the next pick
	}
	return order
}

// TestAdmitClassOrderedPump: the admission queue resolves by weighted
// round-robin across classes — interactive (weight 4) waiters are admitted
// more often than bulk (weight 1) ones, FIFO within each class, and no
// class is starved.
func TestAdmitClassOrderedPump(t *testing.T) {
	const slot = 1 << 10
	e := admitTestEngine(t, slot, EngineOptions{AdmitQueueTimeout: time.Hour})
	h := newFakeHandler()
	if _, err := e.register(99, h, slot, 1, ""); err != nil { // consume the whole budget
		t.Fatal(err)
	}

	var tickets []*Ticket
	classes := []string{
		ClassBulk, ClassBulk, // B1 B2 queued first...
		ClassInteractive, ClassInteractive, ClassInteractive, ClassInteractive, // ...I1-I4 behind them
	}
	for i, class := range classes {
		tk := e.AdmitClass(SessionID(i+1), slot, class)
		if tk.Decision() != AdmitQueued {
			t.Fatalf("waiter %d (%s): %v, want queued", i, class, tk.Decision())
		}
		tickets = append(tickets, tk)
	}
	if st := e.Stats(); st.Classes[ClassBulk].Queued != 2 || st.Classes[ClassInteractive].Queued != 4 {
		t.Fatalf("per-class queue counters: %+v", st.Classes)
	}

	e.unregister(99, h) // frees exactly one slot; each Cancel frees the next
	order := admittedClassOrder(t, e, tickets, len(tickets))

	// Interactive outranks bulk on the first pick despite queueing later,
	// and bulk is not starved: both bulk waiters land within the first
	// five admissions (weight ratio 4:1 admits ≥1 bulk per 5 picks).
	if order[0] != ClassInteractive {
		t.Fatalf("first admission went to %q, want interactive: %v", order[0], order)
	}
	bulkSeen := 0
	for i, class := range order {
		if class == ClassBulk {
			bulkSeen++
			if i >= 5 && bulkSeen == 1 {
				t.Fatalf("first bulk admission only at position %d: %v", i, order)
			}
		}
	}
	if bulkSeen != 2 {
		t.Fatalf("admitted %d bulk waiters, want 2: %v", bulkSeen, order)
	}
}

// TestAdmitLowWeightClassNotStarved: a continuous arrival stream of
// high-weight admissions cannot starve a queued low-weight waiter — the
// weighted round-robin guarantees bulk its share of picks.
func TestAdmitLowWeightClassNotStarved(t *testing.T) {
	const slot = 1 << 10
	e := admitTestEngine(t, slot, EngineOptions{AdmitQueueTimeout: time.Hour})
	h := newFakeHandler()
	if _, err := e.register(99, h, slot, 1, ""); err != nil {
		t.Fatal(err)
	}

	bulk := e.AdmitClass(1, slot, ClassBulk)
	next := SessionID(1000)
	interactive := []*Ticket{}
	for i := 0; i < 4; i++ {
		interactive = append(interactive, e.AdmitClass(next, slot, ClassInteractive))
		next++
	}

	e.unregister(99, h)
	for round := 0; round < 12; round++ {
		if bulk.Decision() == AdmitAccepted {
			if st := e.Stats(); st.Classes[ClassBulk].Admitted != 1 {
				t.Fatalf("bulk admitted but not counted: %+v", st.Classes)
			}
			return
		}
		// Keep the pressure on: every freed slot is contested by a fresh
		// interactive arrival queued behind the existing ones.
		interactive = append(interactive, e.AdmitClass(next, slot, ClassInteractive))
		next++
		freed := false
		for i, tk := range interactive {
			if tk != nil && tk.Decision() == AdmitAccepted {
				tk.Cancel()
				interactive[i] = nil
				freed = true
				break
			}
		}
		if !freed {
			t.Fatalf("round %d: nothing admitted at all", round)
		}
	}
	t.Fatalf("bulk waiter starved behind interactive arrivals: %v", bulk.Decision())
}

// TestAdmitUnknownClassFolded: class names outside the configured table
// are folded into the default class — an untrusted control client
// inventing fresh names per PREPARE must not grow the per-class maps.
func TestAdmitUnknownClassFolded(t *testing.T) {
	e := admitTestEngine(t, 10<<10, EngineOptions{})
	for i := 0; i < 5; i++ {
		tk := e.AdmitClass(SessionID(i+1), 1<<10, fmt.Sprintf("invented-%d", i))
		if tk.Decision() != AdmitAccepted {
			t.Fatalf("admit %d: %v", i, tk.Decision())
		}
	}
	st := e.Stats()
	for class := range st.Classes {
		if class != "" && class != ClassBulk && class != ClassInteractive {
			t.Fatalf("invented class %q leaked into stats: %+v", class, st.Classes)
		}
	}
	if st.Classes[""].Admitted != 5 || st.Classes[""].Sessions != 5 {
		t.Fatalf("folded class accounting wrong: %+v", st.Classes[""])
	}
}

// TestAdmitLargeReservationNotStarvedAcrossClasses: the sticky head-of-line
// claim carries the old strict-FIFO guarantee across classes — a large
// bulk reservation accumulates every byte of freed budget instead of
// watching a churn of small high-weight sessions consume it forever.
func TestAdmitLargeReservationNotStarvedAcrossClasses(t *testing.T) {
	const slot = 1 << 10
	e := admitTestEngine(t, 8*slot, EngineOptions{AdmitQueueTimeout: time.Hour})
	// Eight small interactive sessions hold the whole budget.
	var running []*Ticket
	for i := 0; i < 8; i++ {
		tk := e.AdmitClass(SessionID(100+i), slot, ClassInteractive)
		if tk.Decision() != AdmitAccepted {
			t.Fatalf("filler %d: %v", i, tk.Decision())
		}
		running = append(running, tk)
	}

	big := e.AdmitClass(1, 6*slot, ClassBulk) // needs most of the budget
	if big.Decision() != AdmitQueued {
		t.Fatalf("big: %v, want queued", big.Decision())
	}

	// Churn: one running session ends per round and a fresh interactive
	// immediately queues for its slot. Without the sticky claim, the
	// freed slot goes to an interactive pick 4 rounds in 5 and the 6-slot
	// reservation never fits.
	next := SessionID(1000)
	for round := 0; round < 16 && big.Decision() != AdmitAccepted; round++ {
		e.AdmitClass(next, slot, ClassInteractive)
		next++
		running[0].Cancel()
		running = running[1:]
		if len(running) == 0 {
			break
		}
	}
	if big.Decision() != AdmitAccepted {
		t.Fatalf("big bulk reservation starved across classes: %v (stats %+v)", big.Decision(), e.Stats())
	}

	// With the claimant admitted (and gone), the pump resumes for the
	// interactive waiters that queued behind it.
	queuedBefore := e.Stats().AdmitQueue
	big.Cancel()
	st := e.Stats()
	if st.AdmitQueue >= queuedBefore {
		t.Fatalf("queue did not pump after the claimant left: %d -> %d waiters", queuedBefore, st.AdmitQueue)
	}
	if st.PoolReserved > st.PoolBudget {
		t.Fatalf("budget over-committed: %+v", st)
	}
}
