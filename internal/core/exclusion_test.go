package core

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestSlowNodeExclusion exercises the paper's §V future-work extension: a
// node whose drain rate stays below MinThroughput is excluded from the
// transfer, the pipeline routes around it, and everyone else still gets a
// full copy.
func TestSlowNodeExclusion(t *testing.T) {
	env := newTestEnv(5, 4<<10)
	env.sinks[2] = &slowSink{bytesPerSec: 24 << 10} // n3 drains at ~24 KiB/s
	data := testPayload(192<<10, 21)
	cfg := env.config(data, false)
	opts := testOpts()
	opts.MinThroughput = 128 << 10 // n3 is far below this
	opts.SlowNodeGrace = 300 * time.Millisecond
	cfg.Opts = opts

	sess, err := StartSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(2) {
		t.Fatalf("report must list the excluded node: %v", res.Report)
	}
	var excluded Failure
	for _, f := range res.Report.Failures {
		if f.Index == 2 {
			excluded = f
		}
	}
	if !strings.Contains(excluded.Reason, "excluded") {
		t.Fatalf("failure reason should mark exclusion: %q", excluded.Reason)
	}
	// The survivors get the complete payload at full speed.
	checkSink(t, env, 1, data)
	checkSink(t, env, 3, data)
	checkSink(t, env, 4, data)
	// The excluded node stepped aside (did not cascade a QUIT to n4).
	if sess.Nodes[3].Abandoned() {
		t.Fatal("n4 must not abandon when its predecessor was merely excluded")
	}
	if !sess.Nodes[2].Abandoned() {
		t.Fatal("excluded node should have stepped aside")
	}
}

// TestNoExclusionWithoutThreshold is the control: the same slow node is
// tolerated (the §III-D1 ping discipline) when MinThroughput is unset.
func TestNoExclusionWithoutThreshold(t *testing.T) {
	env := newTestEnv(4, 4<<10)
	env.sinks[2] = &slowSink{bytesPerSec: 48 << 10}
	data := testPayload(24<<10, 22)
	res, err := RunSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("no exclusion threshold set, yet: %v", res.Report)
	}
	checkSink(t, env, 2, data)
}

// TestHealthyPipelineNeverExcludes: a fast pipeline with the threshold set
// must never trip the detector (time is only charged while writing).
func TestHealthyPipelineNeverExcludes(t *testing.T) {
	env := newTestEnv(5, 0)
	data := testPayload(256<<10, 23)
	cfg := env.config(data, false)
	opts := testOpts()
	opts.MinThroughput = 64 << 10 // far below in-memory speed
	opts.SlowNodeGrace = 50 * time.Millisecond
	cfg.Opts = opts
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("healthy pipeline excluded someone: %v", res.Report)
	}
	for i := 1; i < 5; i++ {
		checkSink(t, env, i, data)
	}
}

// TestSlowSourceDoesNotTriggerExclusion: a data-starved pipeline (slow
// streamed source) spends no time writing, so the rate monitor must not
// misfire even with an aggressive threshold.
func TestSlowSourceDoesNotTriggerExclusion(t *testing.T) {
	env := newTestEnv(3, 0)
	data := testPayload(32<<10, 24)
	cfg := env.config(nil, false)
	// Drip-feed the input at ~64 KiB/s via a shaped reader.
	cfg.InputFile = nil
	cfg.Input = &pacedReader{data: data, bytesPerSec: 64 << 10}
	opts := testOpts()
	opts.MinThroughput = 512 << 10 // would exclude anything this slow...
	opts.SlowNodeGrace = 100 * time.Millisecond
	cfg.Opts = opts
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("starved pipeline misdiagnosed as slow nodes: %v", res.Report)
	}
	checkSink(t, env, 1, data)
	checkSink(t, env, 2, data)
}

// pacedReader drips its payload at a fixed rate.
type pacedReader struct {
	data        []byte
	off         int
	bytesPerSec float64
}

func (p *pacedReader) Read(buf []byte) (int, error) {
	if p.off >= len(p.data) {
		return 0, io.EOF
	}
	n := 2 << 10
	if n > len(buf) {
		n = len(buf)
	}
	if n > len(p.data)-p.off {
		n = len(p.data) - p.off
	}
	time.Sleep(time.Duration(float64(n) / p.bytesPerSec * float64(time.Second)))
	copy(buf, p.data[p.off:p.off+n])
	p.off += n
	return n, nil
}

// TestAcceptReplacementPolicy pins the predecessor-priority rule: on the
// chain, depth is the pipeline index, so "at least as close to the sender"
// wins; on trees, only a predecessor no deeper than the current one does.
func TestAcceptReplacementPolicy(t *testing.T) {
	mk := func(from int) *upstreamConn { return &upstreamConn{from: from} }
	chain := &Node{treeK: 1}
	if !chain.acceptReplacement(mk(3), mk(1)) {
		t.Error("closer predecessor must win")
	}
	if !chain.acceptReplacement(mk(2), mk(2)) {
		t.Error("same predecessor reconnecting must win")
	}
	if chain.acceptReplacement(mk(1), mk(4)) {
		t.Error("farther predecessor must not steal the connection")
	}
	// Binary tree: node 4's parent is 1 (depth 1); 1's parent is 0.
	tree := &Node{treeK: 2}
	if !tree.acceptReplacement(mk(1), mk(0)) {
		t.Error("grandparent adopting after the parent died must win")
	}
	if tree.acceptReplacement(mk(0), mk(1)) {
		t.Error("restarted parent must not steal the child back from the root")
	}
	if !tree.acceptReplacement(mk(1), mk(2)) {
		t.Error("equal-depth predecessor (reconnect-level) must win")
	}
	if tree.acceptReplacement(mk(1), mk(4)) {
		t.Error("deeper node must not steal a child from its parent")
	}
}

// Property: options round-trip through JSON (the CLI control protocol
// serialises them into agent start messages).
func TestOptionsJSONRoundTripQuick(t *testing.T) {
	f := func(chunkKiB uint8, window uint8, stallMs uint16) bool {
		in := Options{
			ChunkSize:         (int(chunkKiB)%64 + 1) << 10,
			WindowChunks:      int(window)%62 + 2,
			WriteStallTimeout: time.Duration(stallMs) * time.Millisecond,
		}
		payload, err := json.Marshal(in)
		if err != nil {
			return false
		}
		var out Options
		if err := json.Unmarshal(payload, &out); err != nil {
			return false
		}
		return out.ChunkSize == in.ChunkSize &&
			out.WindowChunks == in.WindowChunks &&
			out.WriteStallTimeout == in.WriteStallTimeout
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
