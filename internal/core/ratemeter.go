package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Per-link drain-rate estimation. Every downstream link (the chain
// successor, or each tree child cursor) owns one rateMeter, sampled by the
// serving goroutine on the allocation-free hot path: bytes written and the
// time actually spent inside writes, so a data-starved pipeline is never
// mistaken for a slow link. The folded EWMA is published through one
// atomic word, readable by the reorganizer and the stats path without
// touching the writer's cache line contention-wise.

const (
	// rateFoldWindow is the minimum busy time accumulated before a fold:
	// sub-window samples are batched so the EWMA sees stable instantaneous
	// rates instead of per-write jitter.
	rateFoldWindow = 50 * time.Millisecond
	// rateAlpha is the EWMA smoothing factor per folded window.
	rateAlpha = 0.3
)

// rateMeter is a single-writer EWMA of one link's drain rate in bytes/s.
// sample() is called only by the goroutine serving the link; rate() is
// safe from anywhere.
type rateMeter struct {
	bits atomic.Uint64 // math.Float64bits of the current EWMA

	// accumulator, owned by the sampling goroutine
	bytes float64
	busy  time.Duration
}

// sample adds one write's outcome and folds the accumulator into the
// EWMA once enough busy time is banked.
func (m *rateMeter) sample(n int, busy time.Duration) {
	if m == nil {
		return
	}
	m.bytes += float64(n)
	if busy > 0 {
		m.busy += busy
	}
	if m.busy < rateFoldWindow {
		// Publish a provisional estimate until the first full fold: a
		// link faster than payload/rateFoldWindow would otherwise finish
		// the whole stream invisible, and the reorganizer's reference
		// rate is exactly the fastest link anywhere.
		if m.bits.Load() == 0 && m.busy > 0 {
			m.bits.Store(math.Float64bits(m.bytes / m.busy.Seconds()))
		}
		return
	}
	inst := m.bytes / m.busy.Seconds()
	next := inst
	if prev := m.rate(); prev > 0 {
		next = rateAlpha*inst + (1-rateAlpha)*prev
	}
	m.bits.Store(math.Float64bits(next))
	m.bytes, m.busy = 0, 0
}

// rate returns the current EWMA estimate in bytes/s (0 until the first
// fold).
func (m *rateMeter) rate() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// linkRates is a node's registry of downstream link meters, keyed by the
// peer's pipeline index. Workers register on first serve; the reorg spoke
// and the stats path snapshot it.
type linkRates struct {
	mu sync.Mutex
	m  map[int]*rateMeter
}

// meter returns (creating if needed) the meter for one downstream peer.
func (r *linkRates) meter(peer int) *rateMeter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[int]*rateMeter)
	}
	mt := r.m[peer]
	if mt == nil {
		mt = &rateMeter{}
		r.m[peer] = mt
	}
	return mt
}

// snapshot returns the current rate of every registered link. Links that
// have not folded a single window yet (rate 0) are skipped.
func (r *linkRates) snapshot() map[int]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.m) == 0 {
		return nil
	}
	out := make(map[int]float64, len(r.m))
	for peer, mt := range r.m {
		if v := mt.rate(); v > 0 {
			out[peer] = v
		}
	}
	return out
}

// rateOutlierFactor bounds how large a single write's measured duration
// may be, relative to the whole observation window, before it is treated
// as a clock seam rather than a drain measurement. A manual test clock
// stepped mid-write (the clock-seam harness) can attribute an arbitrarily
// large duration to one sample; dividing through it yields an absurdly
// low rate that false-triggers §V exclusion.
const rateOutlierFactor = 10

// rateWindow is the §V slow-node observation window: it accumulates drain
// evidence and decides exclusion once enough busy time is banked. It
// replaces the raw `drained / writing.Seconds()` division with two
// guards: a non-positive elapsed window never divides, and a single
// sample spanning rateOutlierFactor× the whole grace window is discarded
// as a clock-seam artefact instead of being averaged in.
type rateWindow struct {
	drained float64
	busy    time.Duration
	samples int
}

// observe adds one write's outcome to the window.
func (w *rateWindow) observe(n int, busy time.Duration, grace time.Duration) {
	if grace > 0 && busy > time.Duration(rateOutlierFactor)*grace {
		// Clock-seam artefact: one write claims to have taken an order
		// of magnitude longer than the entire observation window. Real
		// collapse produces many grace-scale samples; drop this one.
		return
	}
	w.drained += float64(n)
	w.busy += busy
	w.samples++
}

// cull evaluates the window once busy time crosses grace: it returns the
// measured rate and whether it falls below min. A completed window resets
// either way (the healthy case slides the observation window). Windows
// with non-positive elapsed time never exclude.
func (w *rateWindow) cull(grace time.Duration, min float64) (rate float64, exclude bool) {
	if min <= 0 || w.busy < grace {
		return 0, false
	}
	drained, sec := w.drained, w.busy.Seconds()
	w.drained, w.busy, w.samples = 0, 0, 0
	if sec <= 0 {
		return 0, false
	}
	rate = drained / sec
	return rate, rate < min
}
