package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"kascade/internal/transport"
)

// countingClock wraps a Clock and counts how often its Now is consulted,
// proving a code path really runs on the injected seam.
type countingClock struct {
	Clock
	nows atomic.Int64
}

func (c *countingClock) Now() time.Time {
	c.nows.Add(1)
	return c.Clock.Now()
}

// deadlineConn records the absolute deadlines set on it.
type deadlineConn struct {
	loopConn
	read, write time.Time
}

func (d *deadlineConn) SetReadDeadline(t time.Time) error  { d.read = t; return nil }
func (d *deadlineConn) SetWriteDeadline(t time.Time) error { d.write = t; return nil }

// TestWireDeadlinesUseInjectedClock is the regression test for the wire
// half of the clock seam: a wire built on a fake clock must base its
// connection deadlines on that clock, never on the system time. (The bug:
// newWire silently defaulted to time.Now, so any constructor that forgot
// to overwrite wire.now escaped the chaos harness's fake clock.)
func TestWireDeadlinesUseInjectedClock(t *testing.T) {
	base := time.Date(2200, 1, 1, 0, 0, 0, 0, time.UTC) // unmistakably not wall time
	clk := NewFakeClock(base)
	conn := &deadlineConn{}
	w := newWire(conn, clk)

	w.setReadDeadlineIn(5 * time.Second)
	if want := base.Add(5 * time.Second); !conn.read.Equal(want) {
		t.Fatalf("read deadline %v, want fake-clock %v", conn.read, want)
	}
	w.setWriteDeadlineIn(3 * time.Second)
	if want := base.Add(3 * time.Second); !conn.write.Equal(want) {
		t.Fatalf("write deadline %v, want fake-clock %v", conn.write, want)
	}
	clk.Advance(time.Minute)
	w.setReadDeadlineIn(time.Second)
	if want := base.Add(time.Minute + time.Second); !conn.read.Equal(want) {
		t.Fatalf("read deadline after advance %v, want %v", conn.read, want)
	}
}

// TestFakeClockSessionNeverReadsSystemClock is the regression test for the
// session half of the seam: with Options.Clock injected, the session's
// start stamp and Elapsed must come from that clock. The fake clock never
// advances here, so any time.Now/time.Since leak in the session timing
// shows up as a non-zero Elapsed (real wall time passes while the
// broadcast runs).
func TestFakeClockSessionNeverReadsSystemClock(t *testing.T) {
	clk := &countingClock{Clock: NewFakeClock(time.Now())}
	fabric := transport.NewFabric(1 << 20)
	const nodes, size = 3, 64 << 10
	peers := make([]Peer, nodes)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("n%d:7000", i+1)}
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	res, err := RunSession(context.Background(), SessionConfig{
		Peers: peers,
		Opts: Options{
			Clock:        clk,
			ChunkSize:    8 << 10,
			WindowChunks: 4,
		},
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor:    func(int) io.Writer { return io.Discard },
		InputFile:  bytes.NewReader(payload),
		InputSize:  size,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TotalBytes != size {
		t.Fatalf("delivered %d of %d bytes", res.Report.TotalBytes, size)
	}
	if res.Elapsed != 0 {
		t.Fatalf("Elapsed = %v on a never-advancing fake clock: session timing leaked to the system clock", res.Elapsed)
	}
	if clk.nows.Load() == 0 {
		t.Fatal("injected clock was never consulted: the seam is not wired through")
	}
}
