package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"
	"time"

	"kascade/internal/transport"
)

// TestReplacementMidChunkDoesNotCorruptWindow is the §III-D replay-window
// integrity regression test: a replacement predecessor connection arrives
// while the current predecessor is stalled MID-CHUNK (frame header plus a
// partial payload on the wire), then the current predecessor dies. The
// receiver must discard the torn chunk, resume from its last complete
// offset on the replacement connection (the GET it sends proves the
// window head), and deliver a bit-perfect payload. Run under -race, it
// also pins the accept-goroutine/upstream-loop handoff as data-race-free.
func TestReplacementMidChunkDoesNotCorruptWindow(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	opts := testOpts()
	peers := []Peer{{Name: "n1", Addr: "n1:7000"}, {Name: "n2", Addr: "n2:7000"}}
	plan := Plan{Peers: peers, Opts: opts}
	data := testPayload(8*opts.ChunkSize, 41)
	cs := opts.ChunkSize

	// The test plays node 0: bind its listener to answer the receiver's
	// ring-closing report delivery.
	senderNet := fabric.Host("n1")
	senderL, err := senderNet.Listen(peers[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer senderL.Close()
	go func() {
		for {
			c, aerr := senderL.Accept()
			if aerr != nil {
				return
			}
			go func(c transport.Conn) {
				w := newWire(c, SystemClock())
				defer w.close()
				w.setReadDeadlineIn(5 * time.Second)
				if typ, err := w.readType(); err != nil || typ != MsgHello {
					return
				}
				role, _, err := w.readHello()
				if err != nil || role != RoleReport {
					return
				}
				if typ, err := w.readType(); err != nil || typ != MsgReport {
					return
				}
				if _, err := w.readReport(); err != nil {
					return
				}
				_ = c.SetWriteDeadline(time.Now().Add(time.Second))
				_ = w.writePassed()
			}(c)
		}
	}()

	recvNet := fabric.Host("n2")
	recvL, err := recvNet.Listen(peers[1].Addr)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	node, err := NewNode(NodeConfig{
		Index: 1, Plan: plan, Network: recvNet, Listener: recvL, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	var report *Report
	go func() {
		rep, rerr := node.Run(context.Background())
		report = rep
		runDone <- rerr
	}()

	// Predecessor A: handshake, GET(0), three complete chunks.
	connA, err := senderNet.Dial(peers[1].Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wA := newWire(connA, SystemClock())
	if err := wA.writeHello(RoleData, 0); err != nil {
		t.Fatal(err)
	}
	wA.setReadDeadlineIn(2 * time.Second)
	if typ, err := wA.readType(); err != nil || typ != MsgGet {
		t.Fatalf("A: want GET, got %v %v", typ, err)
	}
	if off, err := wA.readUint64(); err != nil || off != 0 {
		t.Fatalf("A: initial GET offset %d %v", off, err)
	}
	for i := 0; i < 3; i++ {
		if err := wA.writeData(data[i*cs : (i+1)*cs]); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 2*time.Second, func() bool { return node.BytesReceived() == uint64(3*cs) })

	// Now stall A mid-chunk: a DATA header promising a full chunk, but
	// only half the payload — the receiver blocks inside readData.
	var hdr [5]byte
	hdr[0] = byte(MsgData)
	binary.BigEndian.PutUint32(hdr[1:], uint32(cs))
	if _, err := connA.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := connA.Write(data[3*cs : 3*cs+cs/2]); err != nil {
		t.Fatal(err)
	}

	// Replacement B arrives WHILE the torn chunk is in flight.
	connB, err := senderNet.Dial(peers[1].Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wB := newWire(connB, SystemClock())
	if err := wB.writeHello(RoleData, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let B enter the queue mid-read
	// A dies with its chunk torn.
	_ = wA.close()

	// The receiver must ask B for the first byte after its last COMPLETE
	// chunk: the half chunk from A never entered the window.
	wB.setReadDeadlineIn(3 * time.Second)
	if typ, err := wB.readType(); err != nil || typ != MsgGet {
		t.Fatalf("B: want GET, got %v %v", typ, err)
	}
	off, err := wB.readUint64()
	if err != nil {
		t.Fatal(err)
	}
	if off != uint64(3*cs) {
		t.Fatalf("window corrupted: replacement GET at %d, want %d", off, 3*cs)
	}

	// A late, farther predecessor must be turned away with QUIT(excluded)
	// while B keeps the connection.
	connC, err := senderNet.Dial(peers[1].Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wC := newWire(connC, SystemClock())
	if err := wC.writeHello(RoleData, 1); err != nil {
		t.Fatal(err)
	}
	wC.setReadDeadlineIn(2 * time.Second)
	if typ, err := wC.readType(); err != nil || typ != MsgQuit {
		t.Fatalf("C: want QUIT, got %v %v", typ, err)
	}
	if reason, err := wC.readQuit(); err != nil || reason != QuitExcluded {
		t.Fatalf("C: want QUIT(excluded), got %v %v", reason, err)
	}
	_ = wC.close()

	// B finishes the stream and runs the epilogue.
	for i := 3; i < 8; i++ {
		if err := wB.writeData(data[i*cs : (i+1)*cs]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wB.writeEnd(uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	if err := wB.writeReport(&Report{TotalBytes: uint64(len(data))}); err != nil {
		t.Fatal(err)
	}
	wB.setReadDeadlineIn(5 * time.Second)
	if typ, err := wB.readType(); err != nil || typ != MsgPassed {
		t.Fatalf("B: want PASSED, got %v %v", typ, err)
	}
	_ = wB.close()

	select {
	case rerr := <-runDone:
		if rerr != nil {
			t.Fatalf("receiver: %v", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never finished")
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatalf("sink corrupt: %d bytes", len(sink.Bytes()))
	}
	if report == nil || len(report.Failures) != 0 {
		t.Fatalf("report: %v", report)
	}
}
