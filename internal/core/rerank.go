package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// Snow-style self-reorganization (Options.Rerank, tree topologies only):
// instead of freezing the dissemination tree at START, the session
// continuously re-ranks it mid-broadcast. Every node measures its
// downstream link rates (ratemeter.go) and its own ingest rate, reports
// them to node 0 over periodic RATE spokes, and node 0 folds the reports
// into rank-ordered re-grafting plans: a slow interior node swaps places
// with the fastest occupant of the deepest leaf slot in its subtree, so
// fast nodes migrate toward the root and slow nodes sink to the leaves.
//
// A plan is a treeView — an immutable slot-occupant permutation over the
// BFS k-ary shape (treeplan.go); the shape never changes, only who sits
// where. Views propagate three ways: piggybacked REORG frames on live
// data connections (a parent pushes the new version before its next
// batch), a REORG reply on every rate spoke, and a proof frame every
// re-ranking dialer sends right after HELLO — so a child judging a
// would-be replacement parent (acceptReplacement, recovery.go) always
// judges against the view that motivated the dial. Migration itself is
// executed by the same probe/replacement/GET machinery tree recovery
// uses: the new parent dials, the child adopts it and closes the old
// connection, and the old parent's redial is turned away with
// QUIT(excluded), which re-ranking nodes read as "superseded", not as an
// exclusion of themselves.

// treeView is one generation of the re-ranked tree: slot s of the BFS
// shape is held by the node with original pipeline index occupant[s];
// slotOf is the inverse permutation. Views are immutable — a new plan is
// a new treeView with a higher version. Version 1 is the identity (the
// START-time tree).
type treeView struct {
	version  uint64
	occupant []int32
	slotOf   []int32
}

func identityView(np int) *treeView {
	v := &treeView{
		version:  1,
		occupant: make([]int32, np),
		slotOf:   make([]int32, np),
	}
	for i := range v.occupant {
		v.occupant[i] = int32(i)
		v.slotOf[i] = int32(i)
	}
	return v
}

// viewFromOccupants builds an immutable view from an occupant table
// (callers own occ; it is not copied).
func viewFromOccupants(version uint64, occ []int32) *treeView {
	v := &treeView{version: version, occupant: occ, slotOf: make([]int32, len(occ))}
	for s, o := range occ {
		v.slotOf[o] = int32(s)
	}
	return v
}

// unknownDepth is reported for a node a view has no slot for (a joiner
// admitted after the view was cut): deeper than anything real, so depth
// comparisons treat the unknown node as the least-attractive parent.
const unknownDepth = 1 << 30

// knows reports whether the view has a slot for node. Views and the
// member table can briefly disagree while a membership extension
// propagates, so every slot lookup is bounds-checked through here.
func (v *treeView) knows(node int) bool {
	return node >= 0 && node < len(v.slotOf)
}

// parentOf returns the node currently feeding `node` (-1 for the root or
// a node this view has no slot for).
func (v *treeView) parentOf(node, k int) int {
	if !v.knows(node) {
		return -1
	}
	ps := treeParent(int(v.slotOf[node]), k)
	if ps < 0 {
		return -1
	}
	return int(v.occupant[ps])
}

// childrenOf returns the nodes `node` currently feeds. The tree shape is
// the view's own slot count — membership may already be larger.
func (v *treeView) childrenOf(node, k int) []int {
	if !v.knows(node) {
		return nil
	}
	slots := treeChildren(int(v.slotOf[node]), k, len(v.occupant))
	if len(slots) == 0 {
		return nil
	}
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = int(v.occupant[s])
	}
	return out
}

// depthOf returns `node`'s current distance from the root.
func (v *treeView) depthOf(node, k int) int {
	if !v.knows(node) {
		return unknownDepth
	}
	return treeDepth(int(v.slotOf[node]), k)
}

// curView returns the node's current view (non-nil iff rerank is on).
func (n *Node) curView() *treeView { return n.view.Load() }

// installView publishes v if it is newer than the current view and wakes
// the re-graft manager. Reports whether v was installed.
func (n *Node) installView(v *treeView) bool {
	for {
		cur := n.view.Load()
		if cur != nil && cur.version >= v.version {
			return false
		}
		if n.view.CompareAndSwap(cur, v) {
			n.kickRerank()
			return true
		}
	}
}

// installWireView validates and installs a view received off the wire.
// Anything that is not a permutation keeping node 0 in slot 0 is dropped.
// The slot count may exceed the start plan (late joiners) but never the
// member table — REORG2 installs the members first.
func (n *Node) installWireView(version uint64, occ []int32) bool {
	if !n.rerank {
		return false
	}
	if len(occ) < n.basePeers || len(occ) > len(n.peers()) {
		return false
	}
	if len(occ) == 0 || occ[0] != 0 {
		return false
	}
	seen := make([]bool, len(occ))
	for _, o := range occ {
		if o < 0 || int(o) >= len(occ) || seen[o] {
			return false
		}
		seen[o] = true
	}
	return n.installView(viewFromOccupants(version, occ))
}

// writeView frames the view for the wire: a plain REORG while the view
// fits the start plan (byte-identical to the pre-JOIN protocol), REORG2
// carrying the member table once late joiners hold slots beyond it.
func (n *Node) writeView(w *wire, v *treeView) error {
	if len(v.occupant) <= n.basePeers {
		return w.writeReorg(v.version, v.occupant)
	}
	peers := n.peers()
	members := make([]wireMember, 0, len(v.occupant)-n.basePeers)
	for i := n.basePeers; i < len(v.occupant) && i < len(peers); i++ {
		members = append(members, wireMember{Index: i, Name: peers[i].Name, Addr: peers[i].Addr})
	}
	return w.writeReorg2(v.version, v.occupant, members)
}

// readViewFrame absorbs the body of a REORG or REORG2 frame (typ, already
// read) and installs the view it carries; REORG2 extends the member table
// first so the view never references an unknown peer.
func (n *Node) readViewFrame(w *wire, typ MsgType) error {
	switch typ {
	case MsgReorg:
		version, occ, err := w.readReorg()
		if err != nil {
			return err
		}
		n.installWireView(version, occ)
	case MsgReorg2:
		version, occ, members, err := w.readReorg2()
		if err != nil {
			return err
		}
		if err := n.addMembers(members); err != nil {
			return err
		}
		n.installWireView(version, occ)
	default:
		return &errProtocol{want: MsgReorg, got: typ}
	}
	return nil
}

// kickRerank nudges the re-graft manager to reconcile against the
// current view (non-blocking; coalesces).
func (n *Node) kickRerank() {
	if n.viewKick == nil {
		return
	}
	select {
	case n.viewKick <- struct{}{}:
	default:
	}
}

// ReorgState reports the node's re-ranking state for tests and tooling:
// the current view version, the slot-occupant assignment, and (meaningful
// at node 0) the migration counters. Zero values when rerank is off.
func (n *Node) ReorgState() (version uint64, occupants []int, migrations, suppressed uint64) {
	if !n.rerank {
		return 0, nil, 0, 0
	}
	v := n.curView()
	occ := make([]int, len(v.occupant))
	for i, o := range v.occupant {
		occ[i] = int(o)
	}
	if n.reorg != nil {
		migrations, suppressed = n.reorg.counters()
	}
	return v.version, occ, migrations, suppressed
}

// linkStats implements the engine's linkStatsProvider seam: the node's
// measured downstream link rates plus its re-ranking position. Sessions
// with neither a folded rate nor re-ranking enabled report nothing.
func (n *Node) linkStats() (SessionLinkStats, bool) {
	rates := n.rates.snapshot()
	if len(rates) == 0 && !n.rerank {
		return SessionLinkStats{}, false
	}
	st := SessionLinkStats{Links: len(rates)}
	var sum float64
	first := true
	for _, r := range rates {
		if first || r < st.MinRate {
			st.MinRate = r
			first = false
		}
		sum += r
	}
	if len(rates) > 0 {
		st.MeanRate = sum / float64(len(rates))
	}
	if n.rerank {
		v := n.curView()
		st.ReorgVersion = v.version
		st.Depth = v.depthOf(n.cfg.Index, n.treeK)
		if n.reorg != nil {
			st.Migrations, st.Suppressed = n.reorg.counters()
		}
	} else if n.treeK > 1 {
		st.Depth = treeDepth(n.cfg.Index, n.treeK)
	} else {
		st.Depth = n.cfg.Index
	}
	return st, true
}

// rateReport is the RATE spoke payload: one node's self-measured ingest
// rate and per-downstream-link drain rates, in bytes/second.
type rateReport struct {
	From    int        `json:"from"`
	Version uint64     `json:"version"`
	Ingest  float64    `json:"ingest,omitempty"`
	Have    uint64     `json:"have,omitempty"` // payload bytes ingested so far
	Links   []linkRate `json:"links,omitempty"`
}

type linkRate struct {
	Peer int     `json:"peer"`
	Rate float64 `json:"rate"`
}

// runRateSpoke periodically reports this node's measured rates to node 0
// and absorbs the view the reply carries — the convergence path for nodes
// whose data connection has gone quiet. Receivers only.
func (n *Node) runRateSpoke(ctx context.Context) {
	var ingest rateMeter
	lastBytes := n.bytesIn.Load()
	lastAt := n.clk.Now()
	for {
		t := n.clk.NewTimer(n.opts.RerankInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-n.passedC:
			t.Stop()
			return
		case <-t.C():
		}
		if n.Abandoned() {
			return
		}
		now := n.clk.Now()
		bytes := n.bytesIn.Load()
		ingest.sample(int(bytes-lastBytes), now.Sub(lastAt))
		lastBytes, lastAt = bytes, now
		n.sendRateReport(ingest.rate())
	}
}

// sendRateReport plays one RATE spoke exchange against node 0. Failures
// are silent: the next tick retries, and the data-plane piggyback keeps
// views flowing regardless.
func (n *Node) sendRateReport(ingest float64) {
	c, err := n.cfg.Network.Dial(n.peers()[0].Addr, n.opts.DialTimeout)
	if err != nil {
		return
	}
	w := n.newWire(c)
	defer w.close()
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	if err := w.writeHelloFor(RoleRate, n.cfg.Index, n.sid); err != nil {
		return
	}
	v := n.curView()
	rep := &rateReport{From: n.cfg.Index, Version: v.version, Ingest: ingest, Have: n.bytesIn.Load()}
	for peer, r := range n.rates.snapshot() {
		rep.Links = append(rep.Links, linkRate{Peer: peer, Rate: r})
	}
	if err := w.writeRateReport(rep); err != nil {
		return
	}
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil {
		return
	}
	_ = n.readViewFrame(w, typ)
}

// serveRateSpoke is node 0's side of one RATE spoke connection: fold the
// report, maybe replan, and answer with the current view.
func (n *Node) serveRateSpoke(w *wire) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgRate {
		return
	}
	rep, err := w.readRateReport()
	if err != nil {
		return
	}
	n.reorg.fold(rep)
	v := n.curView()
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = n.writeView(w, v)
}

// reorganizer is node 0's planning state: the latest rate report per
// node, the migration pacing clocks, and the executed/suppressed
// counters. Planning is driven by incoming spokes — no timer of its own.
type reorganizer struct {
	n *Node

	mu        sync.Mutex
	reports   map[int]*rateReport
	spoked    map[int]bool
	lastMoved map[int]time.Time
	lastPlan  time.Time
	migrated  uint64
	held      uint64
}

func newReorganizer(n *Node) *reorganizer {
	return &reorganizer{
		n:         n,
		reports:   make(map[int]*rateReport),
		spoked:    make(map[int]bool),
		lastMoved: make(map[int]time.Time),
	}
}

// noteSpoke records that a ring-report spoke arrived from peer: definitive
// proof the peer holds the whole payload and is winding down. Rate reports
// stop when a node finishes, so without this signal the planner would keep
// judging finished nodes by their last (forever-stale, mid-stream) report
// and could promote one whose listener is already gone.
func (g *reorganizer) noteSpoke(peer int) {
	g.mu.Lock()
	g.spoked[peer] = true
	g.mu.Unlock()
}

// hasSpoke reports whether peer delivered a ring spoke (finished its copy).
func (g *reorganizer) hasSpoke(peer int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spoked[peer]
}

func (g *reorganizer) counters() (migrations, suppressed uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.migrated, g.held
}

// fold absorbs one rate report and re-evaluates the plan.
func (g *reorganizer) fold(rep *rateReport) {
	if rep.From <= 0 || rep.From >= len(g.n.peers()) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reports[rep.From] = rep
	g.replanLocked()
}

// inRates folds the session's link measurements — node 0's own meters
// plus all reported links — into the measured rate INTO each node, but
// only along the link from its CURRENT view parent. Measurements from
// former parents are discarded: after a migration they echo the old
// topology's starvation, and acting on them re-demotes nodes the last
// plan just fixed.
func (g *reorganizer) inRates(v *treeView) map[int]float64 {
	n := g.n
	in := make(map[int]float64)
	for peer, r := range n.rates.snapshot() {
		if v.parentOf(peer, n.treeK) == 0 && r > in[peer] {
			in[peer] = r
		}
	}
	for _, rep := range g.reports {
		for _, l := range rep.Links {
			if v.parentOf(l.Peer, n.treeK) == rep.From && l.Rate > in[l.Peer] {
				in[l.Peer] = l.Rate
			}
		}
	}
	return in
}

// bottleneck estimates how fast node x can feed a subtree: the smaller of
// its best measured incoming link and its best reported outgoing link.
// Only busy-time link meters participate — wall-clock ingest rates
// confuse a starved (or finished) node with a slow one, because idle
// time counts against them. +Inf while unmeasured: an unknown node is
// never demoted on no evidence.
func (g *reorganizer) bottleneck(x int, in map[int]float64) float64 {
	if x == 0 {
		return math.Inf(1)
	}
	var maxOut float64
	if rep := g.reports[x]; rep != nil {
		for _, l := range rep.Links {
			if l.Rate > maxOut {
				maxOut = l.Rate
			}
		}
	}
	inRate := in[x]
	switch {
	case inRate > 0 && maxOut > 0:
		return math.Min(inRate, maxOut)
	case inRate > 0:
		return inRate
	case maxOut > 0:
		return maxOut
	}
	return math.Inf(1)
}

// rerankTieBand is the relative band within which two bottleneck
// estimates are considered equal; the shallower slot then wins, so the
// ancestor of a slow chain is demoted rather than its starved
// descendants (everything below a slow interior measures the same rate).
const rerankTieBand = 0.8

// rerankEndSlack divides the remaining stream length below which
// planning freezes: migrations this close to EOF cannot pay for
// themselves and would race the report/PASSED epilogue.
const rerankEndSlack = 8

// replanLocked computes and executes at most one migration: demote the
// slowest interior occupant (hysteresis: only when RerankBoost× its
// bottleneck still trails the fastest link anywhere) by swapping it with
// the best occupant of the deepest leaf slot in its subtree. Pacing —
// a global minimum interval plus a per-node cooldown — bounds migration
// churn; blocked candidates count as suppressed.
func (g *reorganizer) replanLocked() {
	n := g.n
	v := n.curView()
	// The tree shape is the view's slot count, not the member table's:
	// a just-admitted joiner may already be a member while this plan
	// generation predates its slot.
	np := len(v.occupant)

	// Freeze near EOF: node 0 knows the stream end, and the spokes carry
	// each reporter's ingest progress. Once even the laggard is within
	// the slack of the end, a migration cannot pay for itself and would
	// only race the report/PASSED epilogue. (Sender-side child cursors
	// are useless for this — transport buffering lets node 0 run
	// arbitrarily far ahead of what any subtree has actually received.)
	end, endKnown := n.st.End()
	if endKnown && len(g.reports) > 0 {
		minHave := uint64(math.MaxUint64)
		for _, rep := range g.reports {
			if rep.Have < minHave {
				minHave = rep.Have
			}
		}
		if end-minHave <= end/rerankEndSlack {
			return
		}
	}
	// finished reports whether x is known to hold the entire stream: its
	// lifecycle may already be over (REPORT sent, listener closed), so it
	// must be left exactly where it is — demoting it buys nothing, and
	// promoting it hands children to a peer that may be gone.
	finished := func(x int) bool {
		if g.spoked[x] {
			return true
		}
		rep := g.reports[x]
		return endKnown && rep != nil && rep.Have >= end
	}

	// ref is the fastest link rate observed anywhere in the session —
	// current or historical — the evidence that demotion can actually
	// buy throughput.
	in := g.inRates(v)
	var ref float64
	for _, r := range n.rates.snapshot() {
		if r > ref {
			ref = r
		}
	}
	for _, rep := range g.reports {
		for _, l := range rep.Links {
			if l.Rate > ref {
				ref = l.Rate
			}
		}
	}
	if ref <= 0 {
		return
	}

	// Slowest interior occupant, shallowest-first on near-ties: every
	// descendant of a slow interior is starved down to the same measured
	// rate, and demoting the ancestor is what fixes the subtree.
	worst, worstB := -1, math.Inf(1)
	for slot := 1; slot < np; slot++ {
		if len(treeChildren(slot, n.treeK, np)) == 0 {
			continue
		}
		x := int(v.occupant[slot])
		if n.isFailedPeer(x) {
			continue // crash recovery owns dead nodes
		}
		if x >= n.basePeers {
			continue // late joiners are leaf-pinned: never demoted or promoted
		}
		if finished(x) {
			continue
		}
		if b := g.bottleneck(x, in); b < worstB*rerankTieBand {
			worst, worstB = x, b
		}
	}
	if worst < 0 || math.IsInf(worstB, 1) {
		return
	}
	if worstB*n.opts.RerankBoost > ref {
		return // ranking is already (close enough to) correct
	}

	now := n.clk.Now()
	if now.Sub(g.lastPlan) < n.opts.RerankMinInterval {
		g.held++
		return
	}
	if t, ok := g.lastMoved[worst]; ok && now.Sub(t) < 2*n.opts.RerankMinInterval {
		g.held++
		return
	}

	// Partner: the best-measured occupant of the deepest leaf slot in the
	// demoted node's subtree — it rises to the interior seat, the slow
	// node sinks to the leaf.
	xslot := int(v.slotOf[worst])
	partnerSlot, partnerDepth, partnerB := -1, -1, -1.0
	var walk func(slot int)
	walk = func(slot int) {
		kids := treeChildren(slot, n.treeK, np)
		if len(kids) == 0 {
			occ := int(v.occupant[slot])
			if occ == worst || occ == 0 || occ >= n.basePeers || n.isFailedPeer(occ) {
				return
			}
			// A partner takes on children: require a live mid-stream
			// report as evidence it is still there to serve them.
			if g.reports[occ] == nil || finished(occ) {
				return
			}
			d := treeDepth(slot, n.treeK)
			b := g.bottleneck(occ, in)
			if math.IsInf(b, 1) {
				b = 0
			}
			if d > partnerDepth || (d == partnerDepth && b > partnerB) {
				partnerSlot, partnerDepth, partnerB = slot, d, b
			}
			return
		}
		for _, c := range kids {
			walk(c)
		}
	}
	walk(xslot)
	if partnerSlot < 0 {
		return
	}
	partner := int(v.occupant[partnerSlot])
	if t, ok := g.lastMoved[partner]; ok && now.Sub(t) < 2*n.opts.RerankMinInterval {
		g.held++
		return
	}

	next := &treeView{
		version:  v.version + 1,
		occupant: append([]int32(nil), v.occupant...),
		slotOf:   append([]int32(nil), v.slotOf...),
	}
	next.occupant[xslot], next.occupant[partnerSlot] = int32(partner), int32(worst)
	next.slotOf[worst], next.slotOf[partner] = int32(partnerSlot), int32(xslot)

	g.lastPlan = now
	g.lastMoved[worst] = now
	g.lastMoved[partner] = now
	g.migrated++
	n.installView(next)
	n.emit(TraceReorg, worst, next.version,
		fmt.Sprintf(reorgDetailFormat, partnerSlot, int64(worstB), partner, xslot))
}

// rerankServes reports whether target is still this node's to serve under
// the current view: a view child, or reachable from here through failed
// peers only (the §III-D subtree adoption, generalised to the re-ranked
// tree). Workers re-check it before every (re)dial so a migrated-away
// child is released instead of being chased.
func (n *Node) rerankServes(target int) bool {
	v := n.curView()
	var walk func(node int) bool
	walk = func(node int) bool {
		for _, c := range v.childrenOf(node, n.treeK) {
			if c == target {
				return true
			}
			if n.isFailedPeer(c) && walk(c) {
				return true
			}
		}
		return false
	}
	return walk(n.cfg.Index)
}

// rerankFinished reports whether peer provably finished its copy: only
// node 0 can know (it terminates the ring spokes), everyone else reads
// false. Serving paths consult it before naming a failure — a refused
// dial to a node whose spoke already landed is a closed listener after a
// completed lifecycle, not a death.
func (n *Node) rerankFinished(peer int) bool {
	return n.reorg != nil && n.reorg.hasSpoke(peer)
}

// desiredRerankTargets is the manager-side reconciliation set: the view
// children (expanded through failed peers), minus completed lifecycles
// and targets deferred until a newer view.
func (n *Node) desiredRerankTargets(completed map[int]bool, deferred map[int]uint64) []int {
	v := n.curView()
	var out []int
	seen := make(map[int]bool)
	var expand func(target int)
	expand = func(target int) {
		if seen[target] {
			return
		}
		seen[target] = true
		if n.isFailedPeer(target) {
			for _, g := range v.childrenOf(target, n.treeK) {
				expand(g)
			}
			return
		}
		if completed[target] {
			return
		}
		if dv, ok := deferred[target]; ok && dv >= v.version {
			return
		}
		out = append(out, target)
	}
	for _, c := range v.childrenOf(n.cfg.Index, n.treeK) {
		expand(c)
	}
	return out
}

// runRerankManager is the downstream side of a re-ranking tree node: the
// static tree manager's worker-per-child loop turned into a reconciler
// over the live view. Reconciliation only ADDS workers (for newly desired
// targets); it never cancels one — displacement is child-driven. A child
// that adopted a better parent closes the old connection, the old
// worker's redial comes back QUIT(excluded), and the worker retires with
// outcomeSuperseded, deferring the target until the view moves again.
func (n *Node) runRerankManager(ctx context.Context) error {
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tr := newChildCursors(n.st)

	type exit struct {
		target  int
		outcome serveOutcome
		err     error
	}
	// Late joiners can grow the worker set past the start membership, so
	// worker exits must never rely on buffer capacity: sends block until
	// the manager (which drains continuously) takes them, and a sentinel
	// releases stragglers once the manager has returned.
	exitc := make(chan exit, len(n.peers()))
	mgrDone := make(chan struct{})
	defer close(mgrDone)
	post := func(ex exit) {
		select {
		case exitc <- ex:
		case <-mgrDone:
		}
	}
	running := make(map[int]bool)
	completed := make(map[int]bool)
	deferred := make(map[int]uint64)
	done := 0
	var firstErr error

	reportSeen := func() bool {
		select {
		case <-n.reportC:
			return true
		default:
			return false
		}
	}

	spawn := func(target int) {
		running[target] = true
		go func() {
			cur := tr.cursor()
			defer cur.close()
			retries := 0
			for {
				if err := tctx.Err(); err != nil {
					post(exit{target, outcomeTerminal, err})
					return
				}
				if n.isFailedPeer(target) {
					post(exit{target, outcomeDead, nil})
					return
				}
				if !n.rerankServes(target) {
					post(exit{target, outcomeSuperseded, nil})
					return
				}
				// Report-phase adoptive dials are quiet: a child that
				// finished its lifecycle and detached must not be named a
				// failure just because the view handed it to us late.
				quiet := n.cfg.Index > 0 && reportSeen()
				outcome, err := n.serveSuccessor(tctx, target, cur, quiet)
				switch outcome {
				case outcomeDone, outcomeDead, outcomeSuperseded:
					post(exit{target, outcome, nil})
					return
				case outcomeRetry:
					retries++
					if retries >= maxRetriesPerSuccessor {
						n.recordFailure(target, fmt.Sprintf("gave up after %d reconnects", retries), n.st.Head())
						retries = 0
					}
				case outcomeTerminal:
					post(exit{target, outcomeTerminal, err})
					return
				default:
					post(exit{target, outcomeTerminal, fmt.Errorf("kascade: internal: unexpected outcome %d", outcome)})
					return
				}
			}
		}()
	}

	for {
		desired := n.desiredRerankTargets(completed, deferred)
		if firstErr == nil && tctx.Err() == nil {
			for _, t := range desired {
				if !running[t] {
					spawn(t)
				}
			}
		}
		if len(running) == 0 && len(desired) == 0 {
			// Currently a view leaf: stop pinning the replay window, or
			// this node's own ingest stalls against a ring nobody reads.
			tr.idle()
		}
		if len(running) == 0 {
			if firstErr != nil {
				return firstErr
			}
			// A childless node may yet be promoted; it settles only once
			// the report phase began (planning is frozen by then).
			if reportSeen() && len(desired) == 0 {
				// Bar further joins before committing to settle, then
				// re-check once: a joiner grafted between the desired
				// computation and here must be served, not starved.
				n.mu.Lock()
				n.closing = true
				n.mu.Unlock()
				if len(n.desiredRerankTargets(completed, deferred)) == 0 {
					break
				}
				continue
			}
		}
		timer := n.clk.NewTimer(n.opts.RerankInterval)
		select {
		case ex := <-exitc:
			delete(running, ex.target)
			switch ex.outcome {
			case outcomeDone:
				completed[ex.target] = true
				done++
			case outcomeDead:
				if !n.isFailedPeer(ex.target) {
					// Quiet dial on a finished, detached peer: settled.
					completed[ex.target] = true
				}
			case outcomeSuperseded:
				deferred[ex.target] = n.curView().version
			case outcomeTerminal:
				if firstErr == nil {
					firstErr = ex.err
				}
				cancel()
			}
		case <-n.viewKick:
		case <-timer.C():
		case <-tctx.Done():
			if firstErr == nil {
				firstErr = tctx.Err()
			}
		}
		timer.Stop()
	}

	// A late joiner must not certify the broadcast until its catch-up
	// backfill reached parity: its PASSED (and hence the session end)
	// waits here. Node 0's manager is still live meanwhile, so catch-up
	// fetches keep being served. No-op for everyone else.
	if err := n.awaitCatchUp(ctx); err != nil {
		return err
	}

	if done == 0 {
		// Every (remaining) child subtree died or this node ended up a
		// leaf: close its own ring spoke.
		return n.finishAsTail(ctx)
	}
	if n.cfg.Index == 0 {
		rep, _ := n.mergedReport()
		n.setRingReport(rep)
		n.markPassed()
		return nil
	}
	n.mu.Lock()
	detected := len(n.detected) > 0
	n.mu.Unlock()
	if detected {
		// Same supplementary-spoke rule as the static tree manager: late
		// detections may be missing from every surviving leaf report.
		rep, _ := n.mergedReport()
		for attempt := 0; attempt < n.opts.DialRetries; attempt++ {
			if n.deliverRingReport(rep) == nil {
				break
			}
		}
	}
	n.markPassed()
	return nil
}
