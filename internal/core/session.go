package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"kascade/internal/transport"
)

// SessionConfig describes an in-process broadcast: every pipeline member
// runs as a goroutine inside this process, each with its own Network view
// (distinct fabric hosts, or the shared TCP stack for loopback runs).
type SessionConfig struct {
	// Peers is the ordered pipeline; Peers[0] is the sender. When a
	// peer's Addr is empty, the session binds an ephemeral address and
	// fills it in (supported by the TCP backend via "127.0.0.1:0").
	Peers []Peer
	Opts  Options

	// Session identifies this broadcast on shared engines. Required
	// (non-zero) when EngineFor is set; 0 keeps the v1 wire format.
	Session SessionID

	// Transport selects the data plane (Plan.Transport): "" or
	// TransportTCP for the chunked relay pipeline, TransportUDP for the
	// batched datagram fan-out. With TransportUDP every peer's network
	// must implement transport.PacketNetwork; the session binds a
	// datagram endpoint per peer (peers with an empty PacketAddr get an
	// ephemeral port on their stream-address host).
	Transport string

	// Topology selects the dissemination shape (Plan.Topology): "" or
	// TopologyChain for the paper's linear pipeline, TopologyTree(k) for
	// the k-ary BFS tree. TopologyScatterAllgather is a composite plan
	// core.Node cannot run — dispatch it to internal/mpibcast instead.
	Topology string

	// NetworkFor returns the network surface of pipeline member i.
	NetworkFor func(i int) transport.Network

	// EngineFor, when set, attaches pipeline member i to a shared
	// per-process Engine instead of binding a dedicated listener: the
	// peer's address becomes the engine's shared data address and its
	// connections are routed by Session. This is how many overlapping
	// broadcasts run through the same set of processes.
	EngineFor func(i int) *Engine

	// Input is the streamed source payload; InputFile/InputSize take
	// precedence when InputFile is non-nil (random-access source).
	Input     io.Reader
	InputFile io.ReaderAt
	InputSize int64

	// SinkFor returns receiver i's local sink (nil to discard).
	SinkFor func(i int) io.Writer

	// Trace observes every node's recovery-path transitions (each event
	// carries the emitting node's index). Nil disables tracing.
	Trace Tracer
}

// Validate checks the session configuration before any listener binds.
// It is the lifecycle API's single validation front door: the structural
// wiring (peers, network/engine hooks) and the transport × topology ×
// options shape that Options.Validate and Plan.Validate used to split
// between them. Address checks are deliberately absent — peers may carry
// empty or duplicate addresses until StartSession resolves ephemeral
// binds, after which the derived Plan re-validates with addresses.
func (cfg *SessionConfig) Validate() error {
	if len(cfg.Peers) == 0 {
		return fmt.Errorf("kascade: session needs at least the sender")
	}
	if cfg.NetworkFor == nil {
		return fmt.Errorf("kascade: session needs a NetworkFor function")
	}
	if cfg.EngineFor != nil && cfg.Session == 0 {
		return fmt.Errorf("kascade: engine-attached sessions need a non-zero session ID")
	}
	return validateShape(cfg.Transport, cfg.Topology, cfg.Opts)
}

// SessionResult aggregates the outcome of an in-process broadcast.
type SessionResult struct {
	// Report is the sender's final ring report.
	Report *Report
	// Elapsed is the sender-observed wall-clock duration.
	Elapsed time.Duration
	// NodeErrs holds each receiver's terminal error (nil on success),
	// indexed by pipeline position; entry 0 is the sender's.
	NodeErrs []error
	// Received holds the payload byte count each node ingested.
	Received []uint64
}

// Throughput returns the broadcast throughput in bytes/second as the paper
// computes it: transmitted size divided by completion time.
func (r *SessionResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Report.TotalBytes) / r.Elapsed.Seconds()
}

// Session is a broadcast in flight. Nodes exposes the live pipeline members
// (useful to observe progress or to coordinate fault injection in tests);
// Wait blocks until the sender has its final report and every surviving
// receiver finished its protocol epilogue.
type Session struct {
	Nodes []*Node
	Plan  Plan

	clk    Clock
	start  time.Time
	wg     *sync.WaitGroup
	res    *SessionResult
	sender struct {
		report *Report
		err    error
	}
}

// RunSession executes a complete broadcast in-process and returns once the
// sender has its final report and all surviving receivers finished their
// protocol epilogue. Receivers that die mid-transfer (fabric kills) report
// their own errors in NodeErrs without failing the session.
func RunSession(ctx context.Context, cfg SessionConfig) (*SessionResult, error) {
	s, err := StartSession(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return s.Wait()
}

// StartSession binds listeners, builds the nodes and launches them, then
// returns immediately with the live session.
func StartSession(ctx context.Context, cfg SessionConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	peers := append([]Peer(nil), cfg.Peers...)

	// Bind every listener up front so no dial can race a listen. On
	// shared engines there is nothing to bind: each member's address is
	// its engine's (already listening) data address, and connections
	// arriving before the member registers are parked by the engine.
	listeners := make([]transport.Listener, len(peers))
	packets := make([]transport.PacketConn, len(peers))
	closeListeners := func() {
		for _, l := range listeners {
			if l != nil {
				l.Close()
			}
		}
		for _, pc := range packets {
			if pc != nil {
				pc.Close()
			}
		}
	}
	for i := range peers {
		if cfg.EngineFor != nil {
			peers[i].Addr = cfg.EngineFor(i).Addr()
			continue
		}
		l, err := cfg.NetworkFor(i).Listen(peers[i].Addr)
		if err != nil {
			closeListeners()
			return nil, fmt.Errorf("kascade: binding %s: %w", peers[i].Addr, err)
		}
		listeners[i] = l
		peers[i].Addr = l.Addr() // resolve ephemeral ports
	}
	if cfg.Transport == TransportUDP {
		// The datagram endpoints are bound up front too, so every peer's
		// resolved PacketAddr travels in the shared plan before any node
		// starts.
		for i := range peers {
			pn, ok := cfg.NetworkFor(i).(transport.PacketNetwork)
			if !ok {
				closeListeners()
				return nil, fmt.Errorf("kascade: peer %d's network cannot carry datagrams", i)
			}
			addr := peers[i].PacketAddr
			if addr == "" {
				addr = packetBindAddr(peers[i].Addr)
			}
			pc, err := pn.ListenPacket(addr)
			if err != nil {
				closeListeners()
				return nil, fmt.Errorf("kascade: binding packet %s: %w", addr, err)
			}
			packets[i] = pc
			peers[i].PacketAddr = pc.LocalAddr()
		}
	}

	plan := Plan{Peers: peers, Opts: cfg.Opts, Session: cfg.Session, Transport: cfg.Transport, Topology: cfg.Topology}
	if err := plan.Validate(); err != nil {
		closeListeners()
		return nil, err
	}

	nodes := make([]*Node, len(peers))
	for i := range peers {
		nc := NodeConfig{
			Index:    i,
			Plan:     plan,
			Network:  cfg.NetworkFor(i),
			Listener: listeners[i],
			Packet:   packets[i],
			Trace:    cfg.Trace,
		}
		if cfg.EngineFor != nil {
			nc.Engine = cfg.EngineFor(i)
		}
		if i == 0 {
			nc.InputFile = cfg.InputFile
			nc.InputSize = cfg.InputSize
			if cfg.InputFile == nil {
				nc.Input = cfg.Input
			}
		} else if cfg.SinkFor != nil {
			nc.Sink = cfg.SinkFor(i)
		}
		n, err := NewNode(nc)
		if err != nil {
			closeListeners()
			return nil, err
		}
		nodes[i] = n
	}

	// Session timing runs on the same injectable clock as the nodes: a
	// fake-clock session (the chaos harness) must never consult the
	// system clock, or Elapsed drifts from the simulated timeline.
	clk := cfg.Opts.withDefaults().Clock
	s := &Session{
		Nodes: nodes,
		Plan:  plan,
		clk:   clk,
		wg:    &sync.WaitGroup{},
		res: &SessionResult{
			NodeErrs: make([]error, len(peers)),
			Received: make([]uint64, len(peers)),
		},
		start: clk.Now(),
	}
	for i := range nodes {
		s.wg.Add(1)
		go func(i int) {
			defer s.wg.Done()
			rep, err := nodes[i].Run(ctx)
			s.res.NodeErrs[i] = err
			if i == 0 {
				s.sender.report, s.sender.err = rep, err
				s.res.Elapsed = s.clk.Now().Sub(s.start)
			}
		}(i)
	}
	return s, nil
}

// packetBindAddr derives the default datagram bind address from a resolved
// stream address: same host, ephemeral port.
func packetBindAddr(streamAddr string) string {
	if i := strings.LastIndexByte(streamAddr, ':'); i >= 0 {
		return streamAddr[:i+1] + "0"
	}
	return streamAddr + ":0"
}

// JoinConfig describes one late joiner of an in-process session: the
// same lifecycle surface as SessionConfig, scoped to a single peer.
type JoinConfig struct {
	// Peer names the joiner; its Addr may be empty or ephemeral and is
	// resolved at bind time (ignored when Engine is set — the engine's
	// shared data address is used).
	Peer Peer
	// Network is the joiner's network view.
	Network transport.Network
	// Engine, when set, attaches the joiner to a shared per-process
	// engine: its admission (accept/queue/refuse, typed *AdmissionError)
	// runs before the graft, and the engine's listener carries the
	// joiner's connections.
	Engine *Engine
	// Sink receives the complete payload (catch-up bytes first, in
	// order); nil discards.
	Sink io.Writer
	// Trace observes the joiner's recovery-path transitions; nil falls
	// back to untraced.
	Trace Tracer
}

// JoinHandle tracks one admitted late joiner to completion.
type JoinHandle struct {
	// Node is the joiner's live pipeline member.
	Node *Node
	// Grant is the planner's admission ticket (index, membership,
	// catch-up boundary).
	Grant *JoinGrant

	done chan struct{}
	rep  *Report
	err  error
}

// Wait blocks until the joiner finished its protocol epilogue (which
// includes catch-up parity: a joiner never certifies a partial sink).
func (h *JoinHandle) Wait() (*Report, error) {
	<-h.done
	return h.rep, h.err
}

// Err returns the joiner's terminal error once finished; nil before.
func (h *JoinHandle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Join admits a late joiner into the live broadcast and runs it to
// completion in the background. The admission reuses the engine's
// accept/queue/refuse semantics when the joiner is engine-attached
// (typed *AdmissionError on refusal), then grafts the joiner onto the
// dissemination tree via the planner on node 0 — typed failures:
// *JoinRefusedError when the session cannot take joiners,
// ErrSessionEnded once the broadcast closed its ring. The session's
// Wait is unaffected: joiner outcomes live on the returned handle.
func (s *Session) Join(ctx context.Context, jc JoinConfig) (*JoinHandle, error) {
	if jc.Network == nil && jc.Engine == nil {
		return nil, fmt.Errorf("kascade: join needs a Network or an Engine")
	}
	if len(s.Nodes) == 0 {
		return nil, ErrSessionEnded
	}
	opts := s.Plan.Opts

	// Local resource admission first (accept/queue/refuse), so a joiner
	// the host cannot carry never perturbs the session.
	var ticket *Ticket
	if jc.Engine != nil {
		ticket = jc.Engine.AdmitClass(s.Plan.Session, opts.PoolReservation(), opts.Class)
		if _, err := ticket.Wait(ctx); err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*JoinHandle, error) {
		if ticket != nil {
			ticket.Cancel()
		}
		return nil, err
	}

	// Resolve the joiner's address before the graft: it enters the
	// member table with the grant.
	peer := jc.Peer
	var lst transport.Listener
	if jc.Engine != nil {
		peer.Addr = jc.Engine.Addr()
	} else {
		l, err := jc.Network.Listen(peer.Addr)
		if err != nil {
			return fail(fmt.Errorf("kascade: binding joiner %s: %w", peer.Addr, err))
		}
		lst = l
		peer.Addr = l.Addr()
	}
	cleanup := func(err error) (*JoinHandle, error) {
		if lst != nil {
			lst.Close()
		}
		return fail(err)
	}

	grant, err := s.Nodes[0].AdmitJoiner(peer)
	if err != nil {
		return cleanup(err)
	}

	plan := s.Plan
	plan.Peers = grant.Peers
	nc := NodeConfig{
		Index:    grant.Index,
		Plan:     plan,
		Join:     grant,
		Network:  jc.Network,
		Listener: lst,
		Engine:   jc.Engine,
		Sink:     jc.Sink,
		Trace:    jc.Trace,
	}
	n, err := NewNode(nc)
	if err != nil {
		return cleanup(err)
	}
	h := &JoinHandle{Node: n, Grant: grant, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.rep, h.err = n.Run(ctx)
	}()
	return h, nil
}

// Wait blocks until every node finished and returns the aggregate result.
func (s *Session) Wait() (*SessionResult, error) {
	s.wg.Wait()
	for i, n := range s.Nodes {
		s.res.Received[i] = n.BytesReceived()
	}
	s.res.Report = s.sender.report
	if s.sender.err != nil {
		return s.res, fmt.Errorf("kascade: sender failed: %w", s.sender.err)
	}
	if s.sender.report == nil {
		return s.res, errors.New("kascade: sender produced no report")
	}
	return s.res, nil
}
