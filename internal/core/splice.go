package core

import (
	"context"
	"encoding/binary"
	"io"
	"sync"

	"kascade/internal/transport"
)

// Kernel pass-through for pure relays (Options.Splice). A relay that keeps
// no local copy of the stream — no sink, retention satisfied by node 0's
// file store — does not need the payload in user space at all: frame
// headers stay in user space, frame payloads move upstream-socket →
// downstream-socket through the kernel (splice(2), reached via the
// runtime's TCP ReadFrom path; see transport/splice_linux.go).
//
// The handoff between the two per-connection goroutines is a rendezvous
// gate owned by the node:
//
//   - The downstream sender, on finding itself fully caught up (its send
//     offset == the store head), posts a spliceOffer carrying its offset
//     and its connection, then parks until the offer resolves.
//   - The upstream receiver, on the next DATA frame, claims the offer. If
//     the connections cannot splice (in-memory fabric, non-TCP) it declines
//     permanently — the sender never offers again on this connection; if
//     the offsets mismatch it declines transiently; otherwise it engages:
//     it owns the downstream connection and relays whole frames through the
//     kernel until a non-DATA frame (or an error) ends the span, then
//     closes the offer's done channel with the byte count moved.
//
// Every frame crosses atomically: the span only ever ends on a frame
// boundary, so both byte streams stay parseable and the pooled path resumes
// seamlessly — recovery, replay and END handling are untouched. A mid-frame
// splice error is the one exception: both streams are then corrupt mid-
// frame, so both connections are killed and the node falls back to the
// pooled path permanently (spliceBroken); the existing reconnect/FORGET/
// PGET machinery re-synchronises both sides without data loss.

// spliceResult is the gate's answer to one offer.
type spliceResult struct {
	engaged bool
	// noRetry marks a permanent decline: this successor connection will
	// never splice (incapable transport, broken splice, stream over), so
	// the sender stops offering on it.
	noRetry bool
}

// spliceOffer is one parked downstream sender: its catch-up offset, the
// connection to splice into, and the channels resolving its fate.
type spliceOffer struct {
	off  uint64
	conn transport.Conn
	resp chan spliceResult // buffered(1): claim or decline
	done chan struct{}     // engaged only: closed when the span ends

	// Written by the engaging side strictly before close(done).
	moved uint64
	err   error // non-nil: both connections died mid-frame
}

// finish ends an engaged span.
func (o *spliceOffer) finish() { close(o.done) }

// spliceGate is the node-level rendezvous point. It outlives individual
// connections on both sides: a pending offer survives an upstream
// reconnect and is claimed by the replacement predecessor.
type spliceGate struct {
	mu        sync.Mutex
	pending   *spliceOffer
	suspended bool // offers bounce (transient) while a gap fetch ingests
	closed    bool // offers bounce (permanent) once the stream is over
}

// post submits an offer. ok reports whether it was accepted; on false,
// noRetry distinguishes a closed gate from a transient bounce.
func (g *spliceGate) post(o *spliceOffer) (ok, noRetry bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false, true
	}
	if g.suspended || g.pending != nil {
		return false, false
	}
	g.pending = o
	return true, false
}

// take claims the pending offer, if any.
func (g *spliceGate) take() *spliceOffer {
	g.mu.Lock()
	defer g.mu.Unlock()
	o := g.pending
	g.pending = nil
	return o
}

// withdraw removes o if it is still pending; false means a claim raced the
// withdrawal and the offerer must wait for the resolution instead.
func (g *spliceGate) withdraw(o *spliceOffer) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pending == o {
		g.pending = nil
		return true
	}
	return false
}

// suspend bounces offers while the upstream goroutine ingests a gap fetch
// through the pooled path — a parked successor would deadlock the window's
// back-pressure. resume re-opens the gate.
func (g *spliceGate) suspend() { g.setSuspended(true) }
func (g *spliceGate) resume()  { g.setSuspended(false) }

func (g *spliceGate) setSuspended(v bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.suspended = v
}

// close declines the pending offer (permanently) and every future one: the
// stream is over, or the upstream lifecycle ended.
func (g *spliceGate) close() {
	g.mu.Lock()
	o := g.pending
	g.pending = nil
	g.closed = true
	g.mu.Unlock()
	if o != nil {
		o.resp <- spliceResult{noRetry: true}
	}
}

// resolveTransient declines the pending offer without closing the gate
// (used before a gap fetch: the successor drains pooled, then offers again).
func (g *spliceGate) resolveTransient() {
	g.mu.Lock()
	o := g.pending
	g.pending = nil
	g.mu.Unlock()
	if o != nil {
		o.resp <- spliceResult{}
	}
}

// spliceEligible decides at construction time whether this node may ever
// relay through the kernel: an opted-in pure relay — not the sender, no
// local consumer, and no §V drain-rate measurement (exclusion times
// user-space writes, which a spliced span bypasses).
func spliceEligible(cfg *NodeConfig, opts *Options) bool {
	noSink := cfg.Sink == nil || cfg.Sink == io.Discard
	k, kerr := TreeArity(cfg.Plan.Topology)
	return opts.Splice && cfg.Index > 0 && noSink && opts.MinThroughput == 0 &&
		cfg.Plan.Transport != TransportUDP && // no relay chain to splice on UDP
		kerr == nil && k == 1 // a tree relay feeds k children from its window; it must retain
}

// closeSpliceGate shuts the gate down, if the node has one.
func (n *Node) closeSpliceGate() {
	if n.splice != nil {
		n.splice.close()
	}
}

// offerSplice posts an offer at off on conn and parks until it resolves.
// It returns the bytes moved through the kernel (0 on a decline), the
// resolution, and a connection-level error: a non-nil error means conn is
// corrupt mid-frame and must be classified like any failed write.
func (n *Node) offerSplice(ctx context.Context, off uint64, conn transport.Conn) (uint64, spliceResult, error) {
	o := &spliceOffer{off: off, conn: conn, resp: make(chan spliceResult, 1), done: make(chan struct{})}
	if ok, noRetry := n.splice.post(o); !ok {
		return 0, spliceResult{noRetry: noRetry}, nil
	}
	select {
	case res := <-o.resp:
		if !res.engaged {
			return 0, res, nil
		}
	case <-ctx.Done():
		if n.splice.withdraw(o) {
			return 0, spliceResult{}, nil // caller re-checks ctx
		}
		// A claim raced the withdrawal: the resolution is owed and, if
		// engaged, the upstream side owns conn until the span ends.
		if res := <-o.resp; !res.engaged {
			return 0, res, nil
		}
	}
	<-o.done
	return o.moved, spliceResult{engaged: true}, o.err
}

// spliceFrame relays one DATA frame of the given payload size from the
// upstream wire to dst: the 5-byte header is written from user space, any
// payload prefix already sitting in the read buffer is flushed, and the
// remainder crosses through the kernel. The caller set the upstream read
// deadline; the write deadline covers the whole frame — the pooled path's
// stall-probe machinery cannot see into a kernel transfer, so a stuck
// successor surfaces as a deadline error here and is classified by the
// offerer like any failed write.
func (n *Node) spliceFrame(w *wire, dst transport.Conn, size int) error {
	var hdr [dataFrameHeader]byte
	hdr[0] = byte(MsgData)
	binary.BigEndian.PutUint32(hdr[1:], uint32(size))
	_ = dst.SetWriteDeadline(n.clk.Now().Add(n.opts.FetchTimeout))
	if _, err := dst.Write(hdr[:]); err != nil {
		return err
	}
	remaining := size
	for remaining > 0 && w.br.Buffered() > 0 {
		k := w.br.Buffered()
		if k > remaining {
			k = remaining
		}
		p, err := w.br.Peek(k)
		if err != nil {
			return err
		}
		if _, err := dst.Write(p); err != nil {
			return err
		}
		if _, err := w.br.Discard(len(p)); err != nil {
			return err
		}
		remaining -= len(p)
	}
	if remaining == 0 {
		return nil
	}
	_, err := dst.(transport.Splicer).SpliceFrom(w.conn, int64(remaining))
	return err
}
