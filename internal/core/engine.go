package core

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kascade/internal/transport"
)

// Engine is the per-process accept layer of a long-lived broadcast agent:
// one shared data listener whose connections are routed to the broadcast
// session named in their opening HELLO, a registry of the sessions in
// flight, an admission policy deciding which new sessions may run (see
// admission.go), and a global memory budget that the per-session chunk
// pools are accounted against.
//
// The single-broadcast tools (the CLI sender, the protocol tests) keep
// giving each Node its own listener; an agent that must carry many
// overlapping broadcasts on one advertised port instead creates one Engine
// and attaches every session's Node to it (NodeConfig.Engine). Connections
// for sessions that have not registered yet — the prepare/start race, a
// predecessor dialing a successor whose start message is still in flight —
// are parked briefly instead of refused, preserving the listener-backlog
// semantics of the one-listener-per-node design. A parked connection is
// watched for remote close, so a dialer that gives up frees its park slot
// immediately instead of pinning it until ParkTimeout.
type Engine struct {
	opts  EngineOptions
	clk   Clock
	lst   transport.Listener
	sched *scheduler // the weighted data-plane scheduler (sched.go)

	mu       sync.Mutex
	sessions map[SessionID]connHandler // attached (routable) sessions
	reserved map[SessionID]*grant      // budget accounting, admission to unregister
	used     int64                     // sum of reserved bytes
	admitQ   []*admitWaiter            // queued admissions: FIFO per class, weighted RR across classes
	admitRR  map[string]int            // smooth-WRR credit per class for the admit pump
	admitHol *admitWaiter              // blocked head-of-line: freed budget accumulates for it
	parked   map[SessionID][]*parkedConn
	parkedIP map[string]int // parked connections per remote IP
	nParked  int
	closed   bool

	// Monotonic admission / park counters (EngineStats).
	admittedTotal uint64
	queuedTotal   uint64
	refusedTotal  uint64
	queueTimeouts uint64
	parkExpired   uint64
	parkReaped    uint64
	parkSessOver  uint64 // refused at the per-session park cap
	parkIPOver    uint64 // refused at the per-IP park cap
	classAdmit    map[string]*classCounter

	// Transport data-plane counters, bumped from per-connection hot paths
	// by the engine's attached nodes — atomics, not e.mu, so a relay moving
	// gigabytes never contends with the control plane.
	splicedBytes   atomic.Uint64
	splicedChunks  atomic.Uint64
	udpBatchesSent atomic.Uint64
	udpBatchesRecv atomic.Uint64
	repairFetches  atomic.Uint64
}

// classCounter accumulates per-class admission outcomes.
type classCounter struct {
	admitted uint64
	queued   uint64
	refused  uint64
}

// grant is one session's claim on the pool budget. It exists from admission
// (or register, for sessions that skip explicit admission) until
// unregister, so a node mid-prepare cannot lose its session ID to a racing
// duplicate. owner is nil while the grant is admitted but not yet adopted
// by a running node; ticket then records which admission created it, so a
// stale Cancel from an earlier ticket for the same (since recycled)
// session ID cannot revoke a newer admission's grant.
type grant struct {
	owner  connHandler
	bytes  int64
	ticket *Ticket
	class  string // priority class fixed at admission (or first register)
}

// EngineOptions tunes the shared accept layer. The zero value selects
// production defaults.
type EngineOptions struct {
	// Clock is the engine's time source (HELLO deadlines, park expiry,
	// admission queue deadlines), the same seam Options.Clock gives the
	// per-session nodes, so deterministic harnesses can fake engine time
	// too. Nil selects the system clock.
	Clock Clock
	// MemBudget bounds the total bytes of pooled payload buffers reserved
	// across all sessions. A session whose reservation does not fit is no
	// longer silently granted a floor-sized pool: Admit queues or refuses
	// it, and a direct register without prior admission is refused with a
	// typed *AdmissionError. Defaults to 256 MiB.
	MemBudget int64
	// MaxSessions caps the number of concurrently admitted sessions
	// (registered plus admitted-but-not-yet-started). 0 means no cap
	// beyond the memory budget.
	MaxSessions int
	// AdmitQueueTimeout is how long a session that does not fit right now
	// may wait in the admission queue for budget to free. Defaults to 30 s.
	AdmitQueueTimeout time.Duration
	// MaxAdmitQueue caps the admission queue length; admissions beyond it
	// are refused outright. Defaults to 64.
	MaxAdmitQueue int
	// HelloTimeout bounds reading the opening HELLO frame of an accepted
	// connection. Defaults to 10 s.
	HelloTimeout time.Duration
	// ParkTimeout is how long a connection for a not-yet-registered
	// session waits before being dropped. Defaults to 10 s.
	ParkTimeout time.Duration
	// MaxParked caps the connections parked across all sessions.
	// Defaults to 64.
	MaxParked int
	// MaxParkedPerSession caps how many of the parked connections may
	// wait for the same (unregistered) session ID, so a flood of dials
	// naming one bogus session cannot consume the whole shared park.
	// Defaults to 8.
	MaxParkedPerSession int
	// MaxParkedPerIP caps the parked connections per remote IP, bounding
	// what one untrusted dialer can pin regardless of how many session
	// IDs it invents. Defaults to 16.
	MaxParkedPerIP int

	// Workers sizes the data-plane scheduler's worker pool: the
	// goroutines pulling ready-session work items (forwardable chunk
	// batches) off the weighted round-robin run queue. Defaults to
	// GOMAXPROCS.
	Workers int
	// Quantum is the per-turn byte budget CEILING of a weight-1 session; a
	// class of weight w may claim up to w×Quantum bytes per scheduled turn
	// (capped by the session's MaxBatchBytes — one turn is one vectored
	// write). Sessions with a measured drain rate get adaptively smaller
	// turns: see QuantumLatency. Defaults to 2 MiB.
	Quantum int
	// QuantumLatency is the target per-turn drain latency for adaptive
	// quanta: a session's effective turn is what its measured downstream
	// drain rate moves in this long (floored at one chunk, ceilinged by
	// Quantum×weight), so a slow-WAN successor takes many small
	// low-latency turns instead of monopolising a full quantum it cannot
	// drain. Sessions without a rate measurement yet use the full
	// ceiling. Defaults to 30 ms; negative disables adaptation.
	QuantumLatency time.Duration
	// Classes maps priority-class names to scheduling weights. The same
	// weights order the admission-queue pump (weighted round-robin
	// across classes, FIFO within one) and size the run-queue quanta.
	// Nil selects DefaultClasses. The empty class weighs 1, and names
	// outside the table are folded into it — class strings arrive from
	// untrusted control clients and must not grow per-class state.
	Classes map[string]int
}

// Priority-class names understood out of the box (any other name is legal
// too, at weight 1 unless EngineOptions.Classes says otherwise).
const (
	// ClassBulk is the steady background-transfer class (weight 1).
	ClassBulk = "bulk"
	// ClassInteractive is the latency-sensitive class: weight 4, so its
	// sessions get 4× bulk's admission share and up to 4× its per-turn
	// byte budget — the budget is still capped by the session's
	// MaxBatchBytes, since one turn is one vectored write (with the
	// defaults, 4 MiB against bulk's 2 MiB).
	ClassInteractive = "interactive"
)

// DefaultClasses is the default priority-class weight table.
func DefaultClasses() map[string]int {
	return map[string]int{ClassBulk: 1, ClassInteractive: 4}
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.MemBudget <= 0 {
		o.MemBudget = 256 << 20
	}
	if o.AdmitQueueTimeout <= 0 {
		o.AdmitQueueTimeout = 30 * time.Second
	}
	if o.MaxAdmitQueue <= 0 {
		o.MaxAdmitQueue = 64
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 10 * time.Second
	}
	if o.ParkTimeout <= 0 {
		o.ParkTimeout = 10 * time.Second
	}
	if o.MaxParked <= 0 {
		o.MaxParked = 64
	}
	if o.MaxParkedPerSession <= 0 {
		o.MaxParkedPerSession = 8
	}
	if o.MaxParkedPerIP <= 0 {
		o.MaxParkedPerIP = 16
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Quantum <= 0 {
		o.Quantum = 2 << 20
	}
	if o.QuantumLatency == 0 {
		o.QuantumLatency = 30 * time.Millisecond
	}
	if o.Classes == nil {
		o.Classes = DefaultClasses()
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
	return o
}

// connHandler is the narrow interface the engine needs from a registered
// session: take over one accepted connection whose HELLO is already
// parsed, and learn that the shared listener died.
type connHandler interface {
	// handleWire adopts one inbound connection. role and from come from
	// the HELLO frame; the handler owns w from here on.
	handleWire(w *wire, role Role, from int)
	// listenerFailed reports that the shared accept path is gone: no
	// further connections will ever arrive for this session.
	listenerFailed(err error)
}

// parkedConn is a routed connection waiting for its session to attach.
// Exactly one resolution is ever sent: attach hands it to the session,
// expiry/reaping/engine-close drop it (nil handler). The park watcher
// goroutine (watchParked) is the only code touching the connection while
// parked, which keeps the remote-close Peek and the session's own reads
// from ever running concurrently.
type parkedConn struct {
	w       *wire
	role    Role
	from    int
	ip      string              // remote IP, for the per-IP park cap accounting
	resolve chan parkResolution // buffered 1; sent by whoever unparks it
}

// parkResolution is the single outcome of a parked connection: adopt into
// handler h, or (nil h) close and drop.
type parkResolution struct {
	h connHandler
}

// NewEngine binds addr on network and starts the shared accept loop.
func NewEngine(network transport.Network, addr string, opts EngineOptions) (*Engine, error) {
	if network == nil {
		return nil, fmt.Errorf("kascade: engine needs a network")
	}
	l, err := network.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("kascade: engine binding %s: %w", addr, err)
	}
	o := opts.withDefaults()
	e := &Engine{
		opts:       o,
		clk:        o.Clock,
		lst:        l,
		sched:      newScheduler(o.Workers, o.Quantum, o.QuantumLatency, o.Classes, o.Clock),
		sessions:   make(map[SessionID]connHandler),
		reserved:   make(map[SessionID]*grant),
		admitRR:    make(map[string]int),
		parked:     make(map[SessionID][]*parkedConn),
		parkedIP:   make(map[string]int),
		classAdmit: make(map[string]*classCounter),
	}
	go e.acceptLoop()
	return e, nil
}

// Addr reports the shared data listener's bound address.
func (e *Engine) Addr() string { return e.lst.Addr() }

// Close shuts the shared listener down, refuses every queued admission and
// notifies every registered session that no further connections can arrive.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	handlers := e.allHandlersLocked()
	e.dropParkedLocked()
	resolved := e.pumpAdmitQueueLocked() // closed: refuses every waiter
	e.mu.Unlock()

	closeTickets(resolved)
	e.sched.close()
	err := e.lst.Close()
	for _, h := range handlers {
		h.listenerFailed(transport.ErrClosed)
	}
	return err
}

// allHandlersLocked snapshots every attached session for listener-death
// notification. Sessions still mid-prepare (reserved but not attached)
// are deliberately excluded: their node's store may not exist yet, and
// they learn the engine is gone from their own attach call, which checks
// e.closed after the store is built. Caller holds e.mu.
func (e *Engine) allHandlersLocked() []connHandler {
	handlers := make([]connHandler, 0, len(e.sessions))
	for _, h := range e.sessions {
		handlers = append(handlers, h)
	}
	return handlers
}

// EngineStats is a snapshot of the registry, the pooled-memory accounting
// and the admission/park counters, for tests and operational introspection.
type EngineStats struct {
	// Sessions is the number of registered broadcasts.
	Sessions int `json:"sessions"`
	// PoolBudget and PoolReserved are the configured global budget and
	// the bytes currently accounted to sessions (including admitted
	// sessions that have not registered yet).
	PoolBudget   int64 `json:"pool_budget"`
	PoolReserved int64 `json:"pool_reserved"`
	// PerSession maps each admitted or registered session to its reserved
	// bytes.
	PerSession map[SessionID]int64 `json:"per_session,omitempty"`
	// Parked is the number of connections waiting for their session.
	Parked int `json:"parked"`

	// AdmitQueue is the current admission queue depth: sessions parked
	// until budget frees.
	AdmitQueue int `json:"admit_queue"`
	// Admitted/Queued/Refused count admission outcomes since the engine
	// started (a queued session that is later accepted counts in both
	// Queued and Admitted; one that times out counts in Queued, Refused
	// and QueueTimeouts).
	Admitted      uint64 `json:"admitted"`
	Queued        uint64 `json:"queued"`
	Refused       uint64 `json:"refused"`
	QueueTimeouts uint64 `json:"queue_timeouts"`

	// ParkExpired counts parked connections dropped at ParkTimeout;
	// ParkReaped counts those reclaimed early because the remote end
	// closed while parked.
	ParkExpired uint64 `json:"park_expired"`
	ParkReaped  uint64 `json:"park_reaped"`
	// ParkSessionOverflow / ParkIPOverflow count connections refused at
	// the per-session and per-remote-IP park caps (the global MaxParked
	// refusals are not counted separately).
	ParkSessionOverflow uint64 `json:"park_session_overflow"`
	ParkIPOverflow      uint64 `json:"park_ip_overflow"`

	// SplicedBytes / SplicedChunks count payload moved through the kernel
	// pass-through (splice) by this engine's relay sessions.
	SplicedBytes  uint64 `json:"spliced_bytes"`
	SplicedChunks uint64 `json:"spliced_chunks"`
	// UDPBatchesSent / UDPBatchesRecv count datagram batches crossing the
	// kernel boundary on the UDP fan-out transport (one sendmmsg/recvmmsg
	// crossing each, or one datagram on the portable fallback).
	UDPBatchesSent uint64 `json:"udp_batches_sent"`
	UDPBatchesRecv uint64 `json:"udp_batches_recv"`
	// RepairFetches counts PGET range fetches against node 0: §III-D2 gap
	// fetches on the TCP pipeline plus loss repair on the UDP transport.
	RepairFetches uint64 `json:"repair_fetches"`

	// Classes breaks admissions and scheduling down by priority class.
	Classes map[string]ClassStats `json:"classes,omitempty"`

	// SessionLinks maps each registered session with link measurements to
	// its downstream rate and re-ranking snapshot: what the rate meters
	// see, and what the reorganizer did about it.
	SessionLinks map[SessionID]SessionLinkStats `json:"session_links,omitempty"`
}

// SessionLinkStats is one session's link-rate and reorg observability
// surface (the rerank planner's evidence, exported).
type SessionLinkStats struct {
	// Links is the number of downstream links with a folded rate estimate.
	Links int `json:"links"`
	// MinRate and MeanRate summarise the measured link rates in bytes/s.
	MinRate  float64 `json:"min_rate,omitempty"`
	MeanRate float64 `json:"mean_rate,omitempty"`
	// Depth is this node's current distance from the root (under the live
	// view when re-ranking, the static tree otherwise).
	Depth int `json:"depth"`
	// ReorgVersion is the current view generation (0 when rerank is off).
	ReorgVersion uint64 `json:"reorg_version,omitempty"`
	// Migrations / Suppressed count re-ranking swaps executed and
	// candidates blocked by hysteresis pacing (meaningful at node 0).
	Migrations uint64 `json:"migrations,omitempty"`
	Suppressed uint64 `json:"suppressed,omitempty"`
}

// linkStatsProvider is the optional interface a registered session
// implements to surface SessionLinkStats; Stats type-asserts it so the
// connHandler seam stays narrow.
type linkStatsProvider interface {
	linkStats() (SessionLinkStats, bool)
}

// ClassStats is one priority class's slice of the engine counters.
type ClassStats struct {
	// Weight is the class's configured scheduling weight.
	Weight int `json:"weight"`
	// Sessions counts currently admitted or registered sessions.
	Sessions int `json:"sessions"`
	// Admitted/Queued/Refused count admission outcomes for this class.
	Admitted uint64 `json:"admitted"`
	Queued   uint64 `json:"queued"`
	Refused  uint64 `json:"refused"`
	// Turns and ScheduledBytes count the data-plane scheduler's granted
	// turns and the payload bytes claimed through them.
	Turns          uint64 `json:"turns"`
	ScheduledBytes uint64 `json:"scheduled_bytes"`
}

// Stats snapshots the engine's accounting.
func (e *Engine) Stats() EngineStats {
	sched := e.sched.classStats()
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineStats{
		SplicedBytes:        e.splicedBytes.Load(),
		SplicedChunks:       e.splicedChunks.Load(),
		UDPBatchesSent:      e.udpBatchesSent.Load(),
		UDPBatchesRecv:      e.udpBatchesRecv.Load(),
		RepairFetches:       e.repairFetches.Load(),
		Sessions:            len(e.sessions),
		PoolBudget:          e.opts.MemBudget,
		PoolReserved:        e.used,
		PerSession:          make(map[SessionID]int64, len(e.reserved)),
		Parked:              e.nParked,
		AdmitQueue:          len(e.admitQ),
		Admitted:            e.admittedTotal,
		Queued:              e.queuedTotal,
		Refused:             e.refusedTotal,
		QueueTimeouts:       e.queueTimeouts,
		ParkExpired:         e.parkExpired,
		ParkReaped:          e.parkReaped,
		ParkSessionOverflow: e.parkSessOver,
		ParkIPOverflow:      e.parkIPOver,
		Classes:             make(map[string]ClassStats),
	}
	for sid, r := range e.reserved {
		st.PerSession[sid] = r.bytes
	}
	classRow := func(class string) ClassStats {
		row, ok := st.Classes[class]
		if !ok {
			row.Weight = e.sched.weightFor(class)
		}
		return row
	}
	for _, r := range e.reserved {
		row := classRow(r.class)
		row.Sessions++
		st.Classes[r.class] = row
	}
	for class, c := range e.classAdmit {
		row := classRow(class)
		row.Admitted, row.Queued, row.Refused = c.admitted, c.queued, c.refused
		st.Classes[class] = row
	}
	for class, cs := range sched {
		row := classRow(class)
		row.Turns, row.ScheduledBytes = cs.turns, cs.bytes
		st.Classes[class] = row
	}
	for sid, h := range e.sessions {
		if p, ok := h.(linkStatsProvider); ok {
			if ls, ok := p.linkStats(); ok {
				if st.SessionLinks == nil {
					st.SessionLinks = make(map[SessionID]SessionLinkStats)
				}
				st.SessionLinks[sid] = ls
			}
		}
	}
	return st
}

// register claims a session ID and its chunk-pool grant. A session that
// went through Admit adopts its admitted reservation; one that registers
// directly (in-process sessions, v1 dialers on the default session) gets
// an implicit immediate admission — accepted if the reservation fits,
// refused with a typed *AdmissionError otherwise. register never queues:
// a node inside Run must not block on other sessions, so callers that
// want queue-with-deadline semantics call Admit first and register only
// after the ticket resolves.
//
// The session is NOT routable yet: the caller finishes building its stores
// first and then calls attach, so a connection can never be routed into a
// half-constructed node. The returned pool stays valid until unregister
// releases the grant.
func (e *Engine) register(sid SessionID, h connHandler, chunkSize, poolChunks int, class string) (*chunkPool, error) {
	class = e.canonicalClass(class)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("kascade: engine is closed")
	}
	if r, ok := e.reserved[sid]; ok {
		if r.owner == nil {
			// Adopt the admitted reservation (and its class: the class
			// named at PREPARE admission is authoritative).
			r.owner = h
			capacity := int(r.bytes / int64(chunkSize))
			if capacity < 1 {
				capacity = 1
			}
			return newChunkPool(chunkSize, capacity), nil
		}
		if sid == 0 {
			// Two concurrent v1 (pre-session-ID) broadcasts: the shared
			// data port can only carry one default session at a time.
			return nil, fmt.Errorf("kascade: a pre-session-ID broadcast is already in flight on this engine (v1 senders are limited to one at a time)")
		}
		return nil, fmt.Errorf("kascade: session %d already registered on this engine", sid)
	}

	// Implicit admission: accept immediately or refuse — never the silent
	// floor-sized pool of old (admission made that fallback obsolete), and
	// never ahead of sessions already queued (their freed-budget claim is
	// strictly FIFO; a register may not take the bytes the queue head is
	// waiting for). The pool parks exactly the debited capacity: budget
	// accounting and parkable bytes can never diverge.
	capacity := poolChunks
	if capacity < 1 {
		capacity = 1
	}
	want := int64(chunkSize) * int64(capacity)
	if len(e.admitQ) > 0 || !e.fitsLocked(want) {
		e.refusedTotal++
		reason := fmt.Sprintf("pool reservation of %d B does not fit (%d of %d B budget in use across %d sessions)",
			want, e.used, e.opts.MemBudget, len(e.reserved))
		switch {
		case len(e.admitQ) > 0:
			reason = fmt.Sprintf("%d session(s) queued ahead (admission is FIFO; use Admit to wait)", len(e.admitQ))
		case e.opts.MaxSessions > 0 && len(e.reserved) >= e.opts.MaxSessions:
			reason = fmt.Sprintf("engine at its session cap (%d)", e.opts.MaxSessions)
		}
		return nil, &AdmissionError{Session: sid, Reason: reason}
	}
	e.reserved[sid] = &grant{owner: h, bytes: want, class: class}
	e.used += want
	e.admittedTotal++
	e.classCounterLocked(class).admitted++
	return newChunkPool(chunkSize, capacity), nil
}

// classCounterLocked returns (allocating on demand) the admission counter
// bucket of one class. Caller holds e.mu.
func (e *Engine) classCounterLocked(class string) *classCounter {
	c := e.classAdmit[class]
	if c == nil {
		c = &classCounter{}
		e.classAdmit[class] = c
	}
	return c
}

// canonicalClass folds class names outside the configured table into the
// default class. Class strings arrive from untrusted control clients
// (PREPARE payloads); without the fold, a dialer inventing a fresh name
// per request would grow the per-class counter and round-robin maps — and
// every Stats() snapshot — without bound.
func (e *Engine) canonicalClass(class string) string {
	if _, ok := e.opts.Classes[class]; ok {
		return class
	}
	return ""
}

// attachSched seats a registering session in the data-plane scheduler:
// batches for st are claimed under the session's admitted class (falling
// back to the class the node carries in its options for direct registers).
// The caller owns the returned entry and must sched-detach it when the
// session ends.
func (e *Engine) attachSched(sid SessionID, st store, fallbackClass string, maxBatch, chunkSize int) *schedEntry {
	class := e.canonicalClass(fallbackClass)
	e.mu.Lock()
	if r, ok := e.reserved[sid]; ok && r.class != "" {
		class = r.class
	}
	e.mu.Unlock()
	return e.sched.register(st, class, maxBatch, chunkSize)
}

// detachSched retires a session's scheduler seat (nil-safe).
func (e *Engine) detachSched(entry *schedEntry) {
	e.sched.detach(entry)
}

// attach publishes a registered session: the registry routes its
// connections from now on and parked connections are flushed to it. The
// caller must hold the sid grant from a successful register. If the
// engine died in between, the handler is told immediately.
func (e *Engine) attach(sid SessionID, h connHandler) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		h.listenerFailed(transport.ErrClosed)
		return
	}
	e.sessions[sid] = h
	flush := e.parked[sid]
	delete(e.parked, sid)
	e.nParked -= len(flush)
	for _, pc := range flush {
		e.dropParkIPLocked(pc)
	}
	e.mu.Unlock()

	for _, pc := range flush {
		pc.resolve <- parkResolution{h: h} // the park watcher hands it over
	}
}

// unregister detaches a session: its connections are refused from now on
// (inbound pings go unanswered, so predecessors route around it, exactly
// as if a dedicated listener had closed) and its pool grant returns to the
// global budget, which is the admission queue's release hook — freed
// budget immediately admits as many queued sessions as now fit. Only the
// owning handler may detach its session; stale calls are no-ops, so
// abandon paths and the Run epilogue can both call it safely.
func (e *Engine) unregister(sid SessionID, h connHandler) {
	e.mu.Lock()
	r, ok := e.reserved[sid]
	if !ok || r.owner != h {
		e.mu.Unlock()
		return
	}
	delete(e.sessions, sid)
	e.used -= r.bytes
	delete(e.reserved, sid)
	resolved := e.pumpAdmitQueueLocked()
	e.mu.Unlock()
	closeTickets(resolved)
}

func (e *Engine) acceptLoop() {
	for {
		c, err := e.lst.Accept()
		if err != nil {
			e.mu.Lock()
			wasClosed := e.closed
			e.closed = true
			handlers := e.allHandlersLocked()
			e.dropParkedLocked()
			resolved := e.pumpAdmitQueueLocked()
			e.mu.Unlock()
			closeTickets(resolved)
			if !wasClosed {
				// The listener died underneath running sessions (host
				// killed, fd exhaustion): release the socket and let
				// each session decide whether that is fatal.
				e.sched.close()
				_ = e.lst.Close()
				for _, h := range handlers {
					h.listenerFailed(err)
				}
			}
			return
		}
		go e.route(c)
	}
}

// route reads the opening HELLO (either version) and hands the connection
// to its session, or parks it until the session attaches. Liveness probes
// for unknown sessions are answered by silence, not parked: a detached
// (abandoned, finished) session must read as dead to its prober, and the
// prober's own deadline is far shorter than any park would last.
func (e *Engine) route(c transport.Conn) {
	w := newWire(c, e.clk)
	w.setReadDeadlineIn(e.opts.HelloTimeout)
	role, from, sid, err := w.readHelloAny()
	if err != nil {
		_ = w.close()
		return
	}
	ip := remoteIP(c.RemoteAddr())
	e.mu.Lock()
	if h, ok := e.sessions[sid]; ok {
		e.mu.Unlock()
		h.handleWire(w, role, from)
		return
	}
	if e.closed || role == RolePing || e.nParked >= e.opts.MaxParked {
		e.mu.Unlock()
		_ = w.close()
		return
	}
	// The shared park is further subdivided so no single bogus session ID
	// and no single remote dialer can pin the whole MaxParked budget.
	if len(e.parked[sid]) >= e.opts.MaxParkedPerSession {
		e.parkSessOver++
		e.mu.Unlock()
		_ = w.close()
		return
	}
	if ip != "" && e.parkedIP[ip] >= e.opts.MaxParkedPerIP {
		e.parkIPOver++
		e.mu.Unlock()
		_ = w.close()
		return
	}
	pc := &parkedConn{w: w, role: role, from: from, ip: ip, resolve: make(chan parkResolution, 1)}
	e.parked[sid] = append(e.parked[sid], pc)
	if ip != "" {
		e.parkedIP[ip]++
	}
	e.nParked++
	e.mu.Unlock()

	// Clear the HELLO deadline before the watcher starts: the peek must
	// wait as long as the park does, and only the adoption path may arm a
	// (wake-up) deadline from here on.
	_ = w.conn.SetReadDeadline(time.Time{})
	go e.watchParked(sid, pc)
}

// watchParked owns a parked connection until exactly one of three things
// happens: the session attaches (adopt), the park deadline passes (drop),
// or the remote end closes while parked (reap — the leak fix: a dialer
// that gave up must not pin a park slot until ParkTimeout). Remote close
// is observed with a blocking Peek on the connection's buffered reader,
// which never consumes protocol bytes — a fetch dialer's early PGET stays
// intact for the adopting session.
func (e *Engine) watchParked(sid SessionID, pc *parkedConn) {
	peeked := make(chan error, 1)
	go func() {
		_, err := pc.w.br.Peek(1)
		peeked <- err
	}()

	timer := e.clk.NewTimer(e.opts.ParkTimeout)
	defer timer.Stop()

	var res parkResolution
	peekDone := false
	select {
	case res = <-pc.resolve:
	case <-timer.C():
		e.unpark(sid, pc, &e.parkExpired)
		res = <-pc.resolve
	case err := <-peeked:
		peekDone = true
		if err == nil || transport.IsTimeout(err) {
			// Bytes are waiting (or a stray deadline fired): the remote is
			// alive; park on until adoption or expiry.
			select {
			case res = <-pc.resolve:
			case <-timer.C():
				e.unpark(sid, pc, &e.parkExpired)
				res = <-pc.resolve
			}
		} else {
			// Remote closed while parked: reap the slot immediately.
			e.unpark(sid, pc, &e.parkReaped)
			res = <-pc.resolve
		}
	}

	if res.h == nil {
		_ = pc.w.close()
		return
	}
	// Adopted: stop the peeker before the session touches the reader (the
	// bufio.Reader must never be shared), then clear the wake-up deadline.
	if !peekDone {
		_ = pc.w.conn.SetReadDeadline(time.Unix(1, 0))
		<-peeked
	}
	_ = pc.w.conn.SetReadDeadline(time.Time{})
	res.h.handleWire(pc.w, pc.role, pc.from)
}

// unpark removes pc from the park (if something else has not already) and
// resolves it as dropped, bumping counter when this call did the removal.
// Exactly one resolution is ever sent per parked connection: if attach or
// dropParkedLocked got there first, their resolution is already in flight
// and this call is a no-op.
func (e *Engine) unpark(sid SessionID, pc *parkedConn, counter *uint64) {
	e.mu.Lock()
	found := false
	queue := e.parked[sid]
	for i, q := range queue {
		if q == pc {
			queue = append(queue[:i], queue[i+1:]...)
			e.nParked--
			e.dropParkIPLocked(pc)
			found = true
			break
		}
	}
	if len(queue) == 0 {
		delete(e.parked, sid)
	} else {
		e.parked[sid] = queue
	}
	if found && counter != nil {
		*counter++
	}
	e.mu.Unlock()
	if found {
		pc.resolve <- parkResolution{}
	}
}

// dropParkedLocked resolves every parked connection as dropped; their
// watchers do the closing. Caller holds e.mu.
func (e *Engine) dropParkedLocked() {
	for sid, queue := range e.parked {
		for _, pc := range queue {
			e.dropParkIPLocked(pc)
			pc.resolve <- parkResolution{}
		}
		delete(e.parked, sid)
	}
	e.nParked = 0
}

// dropParkIPLocked releases one parked connection's per-IP accounting.
// Caller holds e.mu.
func (e *Engine) dropParkIPLocked(pc *parkedConn) {
	if pc.ip == "" {
		return
	}
	if n := e.parkedIP[pc.ip] - 1; n > 0 {
		e.parkedIP[pc.ip] = n
	} else {
		delete(e.parkedIP, pc.ip)
	}
}

// remoteIP extracts the host part of a "host:port" remote address (fabric
// host names count as the IP for park accounting purposes).
func remoteIP(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}
