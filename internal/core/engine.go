package core

import (
	"fmt"
	"sync"
	"time"

	"kascade/internal/transport"
)

// Engine is the per-process accept layer of a long-lived broadcast agent:
// one shared data listener whose connections are routed to the broadcast
// session named in their opening HELLO, a registry of the sessions in
// flight, and a global memory budget that the per-session chunk pools are
// accounted against.
//
// The single-broadcast tools (the CLI sender, the protocol tests) keep
// giving each Node its own listener; an agent that must carry many
// overlapping broadcasts on one advertised port instead creates one Engine
// and attaches every session's Node to it (NodeConfig.Engine). Connections
// for sessions that have not registered yet — the prepare/start race, a
// predecessor dialing a successor whose start message is still in flight —
// are parked briefly instead of refused, preserving the listener-backlog
// semantics of the one-listener-per-node design.
type Engine struct {
	opts EngineOptions
	clk  Clock
	lst  transport.Listener

	mu       sync.Mutex
	sessions map[SessionID]connHandler  // attached (routable) sessions
	reserved map[SessionID]*reservation // budget accounting, from register to unregister
	used     int64                      // sum of reserved bytes
	parked   map[SessionID][]*parkedConn
	nParked  int
	closed   bool
}

// reservation is one session's claim on the pool budget. It exists from
// register (before the session is routable) until unregister, so a node
// mid-prepare cannot lose its session ID to a racing duplicate.
type reservation struct {
	owner connHandler
	bytes int64
}

// EngineOptions tunes the shared accept layer. The zero value selects
// production defaults.
type EngineOptions struct {
	// Clock is the engine's time source (HELLO deadlines, park expiry),
	// the same seam Options.Clock gives the per-session nodes, so
	// deterministic harnesses can fake engine time too. Nil selects the
	// system clock.
	Clock Clock
	// MemBudget bounds the total bytes of pooled payload buffers parked
	// across all sessions. A session asking for more than the remaining
	// budget gets a trimmed pool (never below a small floor): correctness
	// is unaffected — a pool is a free list, not an allocator — the
	// session merely recycles less and leans on the GC more.
	// Defaults to 256 MiB.
	MemBudget int64
	// HelloTimeout bounds reading the opening HELLO frame of an accepted
	// connection. Defaults to 10 s.
	HelloTimeout time.Duration
	// ParkTimeout is how long a connection for a not-yet-registered
	// session waits before being dropped. Defaults to 10 s.
	ParkTimeout time.Duration
	// MaxParked caps the connections parked across all sessions.
	// Defaults to 64.
	MaxParked int
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.MemBudget <= 0 {
		o.MemBudget = 256 << 20
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 10 * time.Second
	}
	if o.ParkTimeout <= 0 {
		o.ParkTimeout = 10 * time.Second
	}
	if o.MaxParked <= 0 {
		o.MaxParked = 64
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
	return o
}

// connHandler is the narrow interface the engine needs from a registered
// session: take over one accepted connection whose HELLO is already
// parsed, and learn that the shared listener died.
type connHandler interface {
	// handleWire adopts one inbound connection. role and from come from
	// the HELLO frame; the handler owns w from here on.
	handleWire(w *wire, role Role, from int)
	// listenerFailed reports that the shared accept path is gone: no
	// further connections will ever arrive for this session.
	listenerFailed(err error)
}

// parkedConn is a routed connection waiting for its session to attach.
// Exactly one of two things happens to it: attach removes it from the
// park and hands it to the session (stop releases the expiry watcher), or
// the expiry watcher removes it and closes it.
type parkedConn struct {
	w    *wire
	role Role
	from int
	stop chan struct{}
}

// NewEngine binds addr on network and starts the shared accept loop.
func NewEngine(network transport.Network, addr string, opts EngineOptions) (*Engine, error) {
	if network == nil {
		return nil, fmt.Errorf("kascade: engine needs a network")
	}
	l, err := network.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("kascade: engine binding %s: %w", addr, err)
	}
	o := opts.withDefaults()
	e := &Engine{
		opts:     o,
		clk:      o.Clock,
		lst:      l,
		sessions: make(map[SessionID]connHandler),
		reserved: make(map[SessionID]*reservation),
		parked:   make(map[SessionID][]*parkedConn),
	}
	go e.acceptLoop()
	return e, nil
}

// Addr reports the shared data listener's bound address.
func (e *Engine) Addr() string { return e.lst.Addr() }

// Close shuts the shared listener down and notifies every registered
// session that no further connections can arrive.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	handlers := e.allHandlersLocked()
	e.dropParkedLocked()
	e.mu.Unlock()

	err := e.lst.Close()
	for _, h := range handlers {
		h.listenerFailed(transport.ErrClosed)
	}
	return err
}

// allHandlersLocked snapshots every attached session for listener-death
// notification. Sessions still mid-prepare (reserved but not attached)
// are deliberately excluded: their node's store may not exist yet, and
// they learn the engine is gone from their own attach call, which checks
// e.closed after the store is built. Caller holds e.mu.
func (e *Engine) allHandlersLocked() []connHandler {
	handlers := make([]connHandler, 0, len(e.sessions))
	for _, h := range e.sessions {
		handlers = append(handlers, h)
	}
	return handlers
}

// EngineStats is a snapshot of the registry and the pooled-memory
// accounting, for tests and operational introspection.
type EngineStats struct {
	// Sessions is the number of registered broadcasts.
	Sessions int
	// PoolBudget and PoolReserved are the configured global budget and
	// the bytes currently accounted to sessions.
	PoolBudget   int64
	PoolReserved int64
	// PerSession maps each registered session to its reserved bytes.
	PerSession map[SessionID]int64
	// Parked is the number of connections waiting for their session.
	Parked int
}

// Stats snapshots the engine's accounting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineStats{
		Sessions:     len(e.sessions),
		PoolBudget:   e.opts.MemBudget,
		PoolReserved: e.used,
		PerSession:   make(map[SessionID]int64, len(e.reserved)),
		Parked:       e.nParked,
	}
	for sid, r := range e.reserved {
		st.PerSession[sid] = r.bytes
	}
	return st
}

// minPoolChunks is the pool-capacity floor every session is granted even
// when the global budget is exhausted: enough parked buffers to keep the
// frame-in-flight churn off the allocator.
const minPoolChunks = 4

// register claims a session ID and reserves its chunk pool against the
// remaining global budget. The session is NOT routable yet: the caller
// finishes building its stores first and then calls attach, so a
// connection can never be routed into a half-constructed node. The
// returned pool stays valid until unregister releases the reservation.
func (e *Engine) register(sid SessionID, h connHandler, chunkSize, poolChunks int) (*chunkPool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("kascade: engine is closed")
	}
	if _, dup := e.reserved[sid]; dup {
		if sid == 0 {
			// Two concurrent v1 (pre-session-ID) broadcasts: the shared
			// data port can only carry one default session at a time.
			return nil, fmt.Errorf("kascade: a pre-session-ID broadcast is already in flight on this engine (v1 senders are limited to one at a time)")
		}
		return nil, fmt.Errorf("kascade: session %d already registered on this engine", sid)
	}

	// Per-session accounting against the global budget: grant what fits,
	// never less than the floor.
	want := int64(chunkSize) * int64(poolChunks)
	grant := e.opts.MemBudget - e.used
	if grant > want {
		grant = want
	}
	if floor := int64(chunkSize) * minPoolChunks; grant < floor {
		grant = floor
	}
	e.reserved[sid] = &reservation{owner: h, bytes: grant}
	e.used += grant
	return newChunkPool(chunkSize, int(grant/int64(chunkSize))), nil
}

// attach publishes a registered session: the registry routes its
// connections from now on and parked connections are flushed to it. The
// caller must hold the sid reservation from a successful register. If the
// engine died in between, the handler is told immediately.
func (e *Engine) attach(sid SessionID, h connHandler) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		h.listenerFailed(transport.ErrClosed)
		return
	}
	e.sessions[sid] = h
	flush := e.parked[sid]
	delete(e.parked, sid)
	e.nParked -= len(flush)
	e.mu.Unlock()

	for _, pc := range flush {
		close(pc.stop) // release the expiry watcher; it can no longer win
		go h.handleWire(pc.w, pc.role, pc.from)
	}
}

// unregister detaches a session: its connections are refused from now on
// (inbound pings go unanswered, so predecessors route around it, exactly
// as if a dedicated listener had closed) and its pool reservation returns
// to the global budget. Only the owning handler may detach its session;
// stale calls are no-ops, so abandon paths and the Run epilogue can both
// call it safely.
func (e *Engine) unregister(sid SessionID, h connHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.reserved[sid]
	if !ok || r.owner != h {
		return
	}
	delete(e.sessions, sid)
	e.used -= r.bytes
	delete(e.reserved, sid)
}

func (e *Engine) acceptLoop() {
	for {
		c, err := e.lst.Accept()
		if err != nil {
			e.mu.Lock()
			wasClosed := e.closed
			e.closed = true
			handlers := e.allHandlersLocked()
			e.dropParkedLocked()
			e.mu.Unlock()
			if !wasClosed {
				// The listener died underneath running sessions (host
				// killed, fd exhaustion): release the socket and let
				// each session decide whether that is fatal.
				_ = e.lst.Close()
				for _, h := range handlers {
					h.listenerFailed(err)
				}
			}
			return
		}
		go e.route(c)
	}
}

// route reads the opening HELLO (either version) and hands the connection
// to its session, or parks it until the session attaches. Liveness probes
// for unknown sessions are answered by silence, not parked: a detached
// (abandoned, finished) session must read as dead to its prober, and the
// prober's own deadline is far shorter than any park would last.
func (e *Engine) route(c transport.Conn) {
	w := newWire(c)
	w.now = e.clk.Now
	w.setReadDeadlineIn(e.opts.HelloTimeout)
	role, from, sid, err := w.readHelloAny()
	if err != nil {
		_ = w.close()
		return
	}
	e.mu.Lock()
	if h, ok := e.sessions[sid]; ok {
		e.mu.Unlock()
		h.handleWire(w, role, from)
		return
	}
	if e.closed || role == RolePing || e.nParked >= e.opts.MaxParked {
		e.mu.Unlock()
		_ = w.close()
		return
	}
	pc := &parkedConn{w: w, role: role, from: from, stop: make(chan struct{})}
	e.parked[sid] = append(e.parked[sid], pc)
	e.nParked++
	e.mu.Unlock()

	timer := e.clk.NewTimer(e.opts.ParkTimeout)
	go func() {
		defer timer.Stop()
		select {
		case <-timer.C():
			e.expire(sid, pc)
		case <-pc.stop:
		}
	}()
}

// expire drops one parked connection whose session never attached. The
// connection is only closed if this call actually removed it from the
// park — attach may have already handed it to the session.
func (e *Engine) expire(sid SessionID, pc *parkedConn) {
	e.mu.Lock()
	found := false
	queue := e.parked[sid]
	for i, q := range queue {
		if q == pc {
			queue = append(queue[:i], queue[i+1:]...)
			e.nParked--
			found = true
			break
		}
	}
	if len(queue) == 0 {
		delete(e.parked, sid)
	} else {
		e.parked[sid] = queue
	}
	e.mu.Unlock()
	if found {
		_ = pc.w.close()
	}
}

// dropParkedLocked closes every parked connection. Caller holds e.mu.
func (e *Engine) dropParkedLocked() {
	for sid, queue := range e.parked {
		for _, pc := range queue {
			close(pc.stop)
			_ = pc.w.close()
		}
		delete(e.parked, sid)
	}
	e.nParked = 0
}
