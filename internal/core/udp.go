package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"kascade/internal/transport"
)

// This file is the "udp" data plane (Plan.Transport == TransportUDP): instead
// of the chunked relay pipeline, node 0 fans the payload out to every receiver
// directly as sequenced datagrams, batched through sendmmsg/recvmmsg where the
// platform has them (internal/transport). Datagrams are unreliable, so the
// plane is built from three loops:
//
//   - the sender slices each chunk into DatagramBytes payloads and blasts the
//     batch to every alive receiver, pacing itself against the slowest alive
//     receiver's PROGRESS reports (the same WindowChunks back-pressure the
//     stream pipeline gets from TCP);
//   - each receiver reassembles chunks from whatever datagrams arrive, using
//     a per-chunk bitmap, and ingests completed chunks in order through the
//     exact same path as the TCP plane (window append + sink + trace);
//   - losses are repaired out-of-band: a receiver whose frontier chunk stays
//     incomplete fetches the missing range from node 0 over the reliable
//     stream transport with PGET — the §III-D2 gap-fetch machinery reused as
//     a retransmission protocol.
//
// Control traffic (the completion ring report, PGET repair) always runs over
// the stream transport; only payload, END/QUIT markers and PROGRESS ride on
// datagrams.

// Datagram header layout (udpHeaderLen bytes, big endian):
//
//	[0]     magic (udpMagic)
//	[1]     flags (exactly one of DATA / END / PROGRESS / QUIT)
//	[2:4]   sender's pipeline index (in-band identification: no source
//	        addresses are read off the socket, which keeps the mmsg batching
//	        path free of per-packet sockaddr decoding)
//	[4:12]  broadcast session ID
//	[8:20]  byte offset: DATA carries the payload's stream offset, END and
//	        QUIT carry the total stream length, PROGRESS carries the
//	        receiver's contiguous-bytes-ingested mark
const (
	udpMagic     = 0xA7
	udpHeaderLen = 20

	udpFlagData     = 0x01
	udpFlagEnd      = 0x02
	udpFlagProgress = 0x04
	udpFlagQuit     = 0x08
)

// putUDPHeader encodes one datagram header into b (len >= udpHeaderLen).
func putUDPHeader(b []byte, flags byte, index int, sid SessionID, off uint64) {
	b[0] = udpMagic
	b[1] = flags
	binary.BigEndian.PutUint16(b[2:4], uint16(index))
	binary.BigEndian.PutUint64(b[4:12], uint64(sid))
	binary.BigEndian.PutUint64(b[12:20], off)
}

// parseUDPHeader decodes a datagram header; ok is false for foreign traffic
// (wrong magic or too short to carry a header).
func parseUDPHeader(b []byte) (flags byte, index int, sid SessionID, off uint64, ok bool) {
	if len(b) < udpHeaderLen || b[0] != udpMagic {
		return 0, 0, 0, 0, false
	}
	return b[1], int(binary.BigEndian.Uint16(b[2:4])),
		SessionID(binary.BigEndian.Uint64(b[4:12])),
		binary.BigEndian.Uint64(b[12:20]), true
}

// udpEndResend is the cadence at which the sender re-broadcasts the END (or
// QUIT) marker until every receiver confirmed or died: the marker is a single
// datagram, so it must survive loss by repetition.
const udpEndResend = 20 * time.Millisecond

// ---------------------------------------------------------------------------
// Sender (node 0).

// udpPeer is the sender's view of one receiver.
type udpPeer struct {
	progress uint64    // highest PROGRESS offset reported
	heard    time.Time // when that report arrived
	heard0   bool      // at least one PROGRESS has arrived (endpoint is bound)
	dead     bool
}

// udpSender fans the stream out to every receiver and returns once each one
// completed, died, or the epilogue budget ran out. Detected deaths land in
// n.detected exactly like the stream plane's failures.
func (n *Node) udpSender(ctx context.Context) error {
	pc := n.cfg.Packet
	pw := transport.NewPacketWriter(pc)
	total, _ := n.st.End() // file-backed source: length known up front
	window := uint64(n.opts.WindowChunks) * uint64(n.opts.ChunkSize)
	poll := n.opts.pollInterval()

	var mu sync.Mutex
	peers := n.peers()
	states := make([]*udpPeer, len(peers)) // [1..N) used
	now := n.clk.Now()
	for i := 1; i < len(peers); i++ {
		states[i] = &udpPeer{heard: now}
	}

	// Drain PROGRESS reports concurrently with the send loop; the reader
	// exits when the packet conn closes (node shutdown) or readerDone asks.
	readerDone := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		bufs, sizes := packetBufs(udpHeaderLen + n.opts.DatagramBytes)
		for {
			select {
			case <-readerDone:
				return
			default:
			}
			_ = pc.SetReadDeadline(n.clk.Now().Add(poll))
			cnt, err := transport.RecvPacketBatch(pc, bufs, sizes)
			if err != nil {
				if transport.IsTimeout(err) {
					continue
				}
				return // conn closed
			}
			n.countUDPBatchRecv()
			at := n.clk.Now()
			mu.Lock()
			for i := 0; i < cnt; i++ {
				flags, idx, sid, off, ok := parseUDPHeader(bufs[i][:sizes[i]])
				if !ok || sid != n.sid || flags != udpFlagProgress ||
					idx <= 0 || idx >= len(states) {
					continue
				}
				st := states[idx]
				st.heard = at
				st.heard0 = true
				if off > st.progress {
					st.progress = off
				}
			}
			mu.Unlock()
		}
	}()
	defer func() {
		close(readerDone)
		readerWG.Wait()
	}()

	// survey snapshots the fleet: the slowest alive receiver's progress and
	// whether anyone is still worth sending to. Receivers silent for
	// GetTimeout are declared dead (and recorded as failures) on the way.
	survey := func(doneAt uint64) (minProgress uint64, alive, pending bool) {
		at := n.clk.Now()
		minProgress = ^uint64(0)
		mu.Lock()
		defer mu.Unlock()
		for i := 1; i < len(states); i++ {
			st := states[i]
			if st.dead || st.progress >= doneAt {
				continue
			}
			if at.Sub(st.heard) > n.opts.GetTimeout {
				st.dead = true
				n.recordFailure(i, fmt.Sprintf("no datagram progress within %v", n.opts.GetTimeout), st.progress)
				continue
			}
			pending = true
			if st.progress < minProgress {
				minProgress = st.progress
			}
		}
		for i := 1; i < len(states); i++ {
			if !states[i].dead {
				alive = true
				break
			}
		}
		return minProgress, alive, pending
	}

	// aliveAddrs lists the packet addresses still worth fanning out to.
	aliveAddrs := func(doneAt uint64) []string {
		mu.Lock()
		defer mu.Unlock()
		addrs := make([]string, 0, len(peers)-1)
		for i := 1; i < len(peers); i++ {
			if !states[i].dead && states[i].progress < doneAt {
				addrs = append(addrs, peers[i].PacketAddr)
			}
		}
		return addrs
	}

	// Scratch reused across chunks: one header per datagram slot, one
	// PacketMsg per (receiver, datagram).
	dg := n.opts.DatagramBytes
	perChunk := (n.opts.ChunkSize + dg - 1) / dg
	hdrs := make([]byte, perChunk*udpHeaderLen)
	msgs := make([]transport.PacketMsg, 0, perChunk*(len(peers)-1))

	// blast fans one chunk's datagrams out to addrs.
	blast := func(base uint64, payload []byte, addrs []string) {
		msgs = msgs[:0]
		for d := 0; d*dg < len(payload); d++ {
			h := hdrs[d*udpHeaderLen : (d+1)*udpHeaderLen]
			lo, hi := d*dg, (d+1)*dg
			if hi > len(payload) {
				hi = len(payload)
			}
			putUDPHeader(h, udpFlagData, 0, n.sid, base+uint64(lo))
			for _, addr := range addrs {
				msgs = append(msgs, transport.PacketMsg{Addr: addr, Head: h, Body: payload[lo:hi]})
			}
		}
		if len(msgs) > 0 {
			// Send errors are treated like loss: the repair path owns
			// reliability, so a transient ENOBUFS only costs a PGET.
			_, _ = pw.WriteBatch(msgs)
			n.countUDPBatchSent()
		}
	}

	// Rendezvous: hold the first datagram until every receiver's opening
	// PROGRESS heartbeat has arrived (or it is declared dead). Receivers
	// bind their endpoints asynchronously — an agent binds only after its
	// START frame lands — and a receiver that misses the entire opening
	// window has no later datagram to prove the gap exists, so its PGET
	// repair would never trigger. survey's GetTimeout bounds the wait.
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, alive, _ := survey(total)
		if !alive {
			break
		}
		mu.Lock()
		waiting := false
		for i := 1; i < len(states); i++ {
			if !states[i].dead && !states[i].heard0 {
				waiting = true
				break
			}
		}
		mu.Unlock()
		if !waiting {
			break
		}
		n.clk.Sleep(udpEndResend)
	}

	// resendFrontier re-delivers the chunk at the slowest receiver's
	// frontier. It is the backstop for a window lost in its entirety
	// (burst outage): the receiver saw nothing past its head, so it has no
	// evidence to repair from, and the stalled sender would otherwise
	// never send again — a deadlock the chaos random-loss matrix can't
	// produce but a real network can.
	resendFrontier := func(minP uint64) {
		if minP >= total {
			return
		}
		c, err := n.st.ChunkAt(minP)
		if err != nil {
			return // quit/abort: the main loop notices on its next pass
		}
		blast(minP, c.bytes(), aliveAddrs(minP+uint64(len(c.bytes()))))
		c.release()
	}

	marker := udpFlagEnd
	var off uint64
	var stallSince time.Time // zero when not window-stalled
	var stallMin uint64
sendLoop:
	for off < total {
		if err := ctx.Err(); err != nil {
			return err
		}
		minP, alive, pending := survey(total)
		if !alive {
			break // every receiver died; close the ring from our own view
		}
		if pending && off >= minP+window {
			// The slowest alive receiver is a full window behind: stall
			// exactly like the stream plane's ring back-pressure. If its
			// frontier refuses to move, re-send that chunk on a half
			// stall-budget cadence (see resendFrontier).
			now := n.clk.Now()
			if stallSince.IsZero() || minP != stallMin {
				stallSince, stallMin = now, minP
			} else if now.Sub(stallSince) > n.opts.WriteStallTimeout/2 {
				resendFrontier(minP)
				stallSince = now
			}
			n.clk.Sleep(poll)
			continue
		}
		stallSince = time.Time{}
		c, err := n.st.ChunkAt(off)
		if err == ErrQuit || n.st.AbortCause() == ErrQuit {
			marker = udpFlagQuit
			total = off
			break sendLoop
		}
		if err != nil {
			return err
		}
		payload := c.bytes()
		blast(off, payload, aliveAddrs(total))
		off += uint64(len(payload))
		c.release()
	}

	// Marker phase: repeat END (or QUIT) until every receiver confirmed
	// (PROGRESS >= total) or died, bounded by the report budget.
	var hdr [udpHeaderLen]byte
	putUDPHeader(hdr[:], byte(marker), 0, n.sid, total)
	deadline := n.clk.Now().Add(n.opts.ReportTimeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, _, pending := survey(total)
		if !pending {
			break
		}
		if n.clk.Now().After(deadline) {
			mu.Lock()
			for i := 1; i < len(states); i++ {
				if !states[i].dead && states[i].progress < total {
					states[i].dead = true
					n.recordFailure(i, "never confirmed stream end", states[i].progress)
				}
			}
			mu.Unlock()
			break
		}
		for _, addr := range aliveAddrs(total) {
			_, _ = pc.Send(hdr[:], addr)
		}
		n.clk.Sleep(udpEndResend)
	}
	return nil
}

// packetBufs builds a receive scratch set sized for the plane's datagrams.
func packetBufs(size int) ([][]byte, []int) {
	const slots = 64
	backing := make([]byte, slots*size)
	bufs := make([][]byte, slots)
	for i := range bufs {
		bufs[i] = backing[i*size : (i+1)*size]
	}
	return bufs, make([]int, slots)
}

// ---------------------------------------------------------------------------
// Receiver.

// udpSlot reassembles one chunk from its datagrams.
type udpSlot struct {
	c     *chunk   // pooled buffer, ChunkSize capacity
	have  []uint64 // bitmap: datagram d received
	bytes int      // distinct payload bytes landed
	size  int      // chunk length; 0 until known (tail chunk before END)
}

// udpReceiver ingests the fan-out: reassemble chunks, repair losses with PGET
// against node 0, report progress, and deliver the ring report on completion.
func (n *Node) udpReceiver(ctx context.Context) error {
	pc := n.cfg.Packet
	chunkSize := uint64(n.opts.ChunkSize)
	dg := uint64(n.opts.DatagramBytes)
	perChunk := int((chunkSize + dg - 1) / dg)
	poll := n.opts.pollInterval()
	senderAddr := n.peers()[0].PacketAddr

	// No successor replays from this node's window: ingest must never block
	// on the ring, exactly like the stream plane's pipeline tail.
	n.ws.ReleaseAll()

	slots := make(map[uint64]*udpSlot) // chunk base offset -> slot
	dropSlots := func() {
		for base, s := range slots {
			s.c.release()
			delete(slots, base)
		}
	}
	defer dropSlots()

	var (
		total     uint64 // stream length once END seen
		haveTotal bool
		quit      bool
		highSeen  uint64 // highest byte offset any datagram reached
	)

	// ingestReady drains completed chunks at the frontier, in order.
	ingestReady := func() error {
		for {
			head := n.st.Head()
			s, ok := slots[head]
			if !ok || s.size == 0 || s.bytes < s.size {
				return nil
			}
			delete(slots, head)
			s.c.truncate(s.size)
			if err := n.ingest(s.c); err != nil {
				return err
			}
		}
	}

	// slotFor returns (building if needed) the reassembly slot at base.
	slotFor := func(base uint64) *udpSlot {
		if s, ok := slots[base]; ok {
			return s
		}
		s := &udpSlot{c: n.pool.get(int(chunkSize)), have: make([]uint64, (perChunk+63)/64)}
		if haveTotal && base+chunkSize > total {
			s.size = int(total - base)
		}
		slots[base] = s
		return s
	}

	// sizeTailSlots resolves tail-chunk sizes once the total is known.
	sizeTailSlots := func() {
		for base, s := range slots {
			if s.size == 0 && base+chunkSize > total {
				s.size = int(total - base)
			}
		}
	}

	var prog [udpHeaderLen]byte
	lastProg := uint64(^uint64(0)) // force the first PROGRESS out
	sendProgress := func() {
		putUDPHeader(prog[:], udpFlagProgress, n.cfg.Index, n.sid, n.st.Head())
		_, _ = pc.Send(prog[:], senderAddr)
		lastProg = n.st.Head()
	}

	repair := func() error {
		head := n.st.Head()
		end := head + chunkSize
		if haveTotal && end > total {
			end = total
		}
		if end <= head || (!haveTotal && highSeen < end) {
			return nil // no evidence the range exists yet
		}
		// Refetch the whole frontier chunk over the stream transport; any
		// partial slot for it is superseded by the fetch.
		if s, ok := slots[head]; ok {
			s.c.release()
			delete(slots, head)
		}
		if err := n.fetchGap(ctx, head, end); err != nil {
			return err
		}
		sendProgress()
		return ingestReady()
	}

	bufs, sizes := packetBufs(udpHeaderLen + n.opts.DatagramBytes)
	lastData := n.clk.Now()
	lastAdvance := lastData
	lastHead := n.st.Head()

	// Announce the bound endpoint before the first read: the sender
	// rendezvouses on every receiver's opening PROGRESS before it lets the
	// first data datagram loose (agents bind asynchronously to the START
	// frame, and the opening window is unrepeatable without evidence).
	sendProgress()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Complete?
		if haveTotal && n.st.Head() >= total {
			break
		}
		_ = pc.SetReadDeadline(n.clk.Now().Add(poll))
		cnt, err := transport.RecvPacketBatch(pc, bufs, sizes)
		if err != nil && !transport.IsTimeout(err) {
			return fmt.Errorf("kascade: udp receive: %w", err)
		}
		if cnt > 0 {
			n.countUDPBatchRecv()
			lastData = n.clk.Now()
		}
		for i := 0; i < cnt; i++ {
			flags, idx, sid, off, ok := parseUDPHeader(bufs[i][:sizes[i]])
			if !ok || sid != n.sid || idx != 0 {
				continue
			}
			switch flags {
			case udpFlagData:
				payload := bufs[i][udpHeaderLen:sizes[i]]
				if len(payload) == 0 {
					continue
				}
				if seen := off + uint64(len(payload)); seen > highSeen {
					highSeen = seen
				}
				head := n.st.Head()
				if off+uint64(len(payload)) <= head {
					continue // already ingested
				}
				base := off - off%chunkSize
				if base >= head+chunkSize*uint64(n.opts.WindowChunks)+chunkSize {
					continue // absurdly far ahead: bound the slot map
				}
				d := int((off - base) / dg)
				if d >= perChunk || (off-base)%dg != 0 {
					continue // malformed offset
				}
				s := slotFor(base)
				if s.have[d/64]&(1<<(d%64)) != 0 {
					continue // duplicate
				}
				s.have[d/64] |= 1 << (d % 64)
				copy(s.c.bytes()[off-base:], payload)
				s.bytes += len(payload)
				if uint64(len(payload)) < dg && s.size == 0 {
					// A short datagram is the chunk's last: its size is
					// now known even before END arrives.
					s.size = int(off + uint64(len(payload)) - base)
				}
				if s.size == 0 && s.bytes == int(chunkSize) {
					s.size = int(chunkSize)
				}
			case udpFlagEnd, udpFlagQuit:
				if !haveTotal {
					total, haveTotal = off, true
					quit = flags == udpFlagQuit
					sizeTailSlots()
				}
			}
		}
		if err := ingestReady(); err != nil {
			return err
		}
		head := n.st.Head()
		if head != lastHead {
			lastHead = head
			lastAdvance = n.clk.Now()
		}
		// Progress report: on every advance, and as a heartbeat so the
		// sender's liveness tracking never mistakes a stalled window (or a
		// long repair) for a death.
		if head != lastProg || cnt == 0 {
			sendProgress()
		}
		// Repair: the frontier stayed put past the stall budget while later
		// data (or the END marker) proves the gap exists.
		stalled := n.clk.Now().Sub(lastAdvance) > n.opts.WriteStallTimeout
		if stalled && (highSeen > head || (haveTotal && total > head)) {
			if err := repair(); err != nil {
				n.abandon(fmt.Sprintf("udp repair at %d failed: %v", head, err))
				return ErrAbandoned
			}
			lastAdvance = n.clk.Now()
			lastHead = n.st.Head()
		}
		if n.clk.Now().Sub(lastData) > n.opts.UpstreamIdleTimeout {
			return fmt.Errorf("kascade: no sender traffic within %v", n.opts.UpstreamIdleTimeout)
		}
	}

	// Complete: finish the store, burst a few PROGRESS confirmations (the
	// sender stops resending END once one lands), then close our part of the
	// ring over the reliable transport.
	dropSlots()
	if quit {
		n.st.Abort(ErrQuit)
	} else {
		n.ws.Finish(total)
	}
	for i := 0; i < 3; i++ {
		sendProgress()
	}
	n.setUpReport(&Report{})
	rep, err := n.mergedReport()
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < n.opts.DialRetries; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if lastErr = n.deliverRingReport(rep); lastErr == nil {
			return nil
		}
		n.clk.Sleep(poll)
	}
	return fmt.Errorf("kascade: delivering udp completion report: %w", lastErr)
}
