package core

import (
	"runtime"
	"testing"
	"time"
)

// vecConn is a discarding transport.Conn that records vectored writes, so
// tests can drive the relay's forwarding path without a real peer.
type vecConn struct {
	writes   int
	vecCalls int
	bytes    int64
}

func (v *vecConn) Read(p []byte) (int, error) { return 0, nil }
func (v *vecConn) Write(p []byte) (int, error) {
	v.writes++
	v.bytes += int64(len(p))
	return len(p), nil
}
func (v *vecConn) WriteBuffers(bufs [][]byte) (int64, error) {
	v.vecCalls++
	var total int64
	for i := range bufs {
		total += int64(len(bufs[i]))
		bufs[i] = nil
	}
	v.bytes += total
	return total, nil
}
func (v *vecConn) Close() error                     { return nil }
func (v *vecConn) SetDeadline(time.Time) error      { return nil }
func (v *vecConn) SetReadDeadline(time.Time) error  { return nil }
func (v *vecConn) SetWriteDeadline(time.Time) error { return nil }
func (v *vecConn) LocalAddr() string                { return "a:0" }
func (v *vecConn) RemoteAddr() string               { return "b:0" }

func TestChunkPoolRecyclesBuffers(t *testing.T) {
	pool := newChunkPool(64, 2)
	a := pool.get(64)
	buf := &a.buf[0]
	a.release()
	b := pool.get(32)
	if &b.buf[0] != buf {
		t.Fatal("released buffer was not recycled")
	}
	if len(b.bytes()) != 32 {
		t.Fatalf("recycled chunk length %d, want 32", len(b.bytes()))
	}
	b.release()

	// Oversize requests bypass the pool entirely.
	big := pool.get(128)
	if big.pool != nil {
		t.Fatal("oversize chunk must not be pooled")
	}
	big.release()
}

func TestChunkReleasePanicsOnDoubleRelease(t *testing.T) {
	pool := newChunkPool(8, 1)
	c := pool.get(8)
	c.retain()
	c.release()
	c.release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	c.release()
}

// TestRelayPathAllocs is the allocation regression guard for the hot path:
// receive a chunk into a pooled buffer, append it to the ring (ownership
// move, no copy), read it back for forwarding, and emit it as one vectored
// DATA write. Steady state must not allocate — the ≤1 budget absorbs
// runtime noise only.
func TestRelayPathAllocs(t *testing.T) {
	const chunkSize = 4 << 10
	pool := newChunkPool(chunkSize, 40)
	ws := newWindowStore(chunkSize, 32, pool)
	conn := &vecConn{}
	w := newWire(conn, SystemClock())
	batch := make([]*chunk, 1)
	var off uint64

	allocs := testing.AllocsPerRun(300, func() {
		// Upstream side: one DATA payload lands in a pooled buffer.
		c := pool.get(chunkSize)
		if err := ws.Append(c); err != nil {
			t.Fatal(err)
		}
		// Downstream side: forward it with a vectored write.
		got, err := ws.ChunkAt(off)
		if err != nil {
			t.Fatal(err)
		}
		batch[0] = got
		if err := w.writeDataBatch(batch); err != nil {
			t.Fatal(err)
		}
		got.release()
		batch[0] = nil
		off += chunkSize
		ws.SetLowWater(off)
	})
	if allocs > 1 {
		t.Errorf("relay path allocates %.1f times per chunk, want <= 1", allocs)
	}
	if conn.vecCalls == 0 {
		t.Fatal("vectored write path was never taken")
	}
}

// TestWindowStoreReplayHoldsRefAcrossEviction drives the exact hazard the
// reference counts exist for: a slow replay to a recovering successor holds
// a chunk while the appender evicts it and the pool recycles buffers. Run
// under -race, a premature recycle shows up as a data race on the payload;
// without -race the content check catches corruption.
func TestWindowStoreReplayHoldsRefAcrossEviction(t *testing.T) {
	const chunkSize = 64
	pool := newChunkPool(chunkSize, 4)
	ws := newWindowStore(chunkSize, 2, pool)
	// Tail semantics: full ring evicts the oldest chunk instead of
	// blocking, so the appender below churns the pool as fast as it can.
	ws.ReleaseAll()

	first := pool.get(chunkSize)
	for i := range first.bytes() {
		first.bytes()[i] = 0xAA
	}
	if err := ws.Append(first); err != nil {
		t.Fatal(err)
	}
	held, err := ws.ChunkAt(0) // the slow replay's reference
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c := pool.get(chunkSize)
			for j := range c.bytes() {
				c.bytes()[j] = byte(i)
			}
			if ws.Append(c) != nil {
				return
			}
		}
	}()

	// Read the held payload concurrently with the churn above.
	for i := 0; i < 200; i++ {
		for _, b := range held.bytes() {
			if b != 0xAA {
				t.Fatalf("replayed chunk corrupted: buffer recycled while referenced (byte %#x)", b)
			}
		}
		runtime.Gosched()
	}
	<-done
	for _, b := range held.bytes() {
		if b != 0xAA {
			t.Fatalf("replayed chunk corrupted after churn (byte %#x)", b)
		}
	}
	held.release()
}

// TestWindowStoreTryChunkAt pins the non-blocking contract the batching
// sender relies on.
func TestWindowStoreTryChunkAt(t *testing.T) {
	ws := newWindowStore(4, 4, nil)
	if _, ok := ws.TryChunkAt(0); ok {
		t.Fatal("TryChunkAt must miss on an empty store")
	}
	if err := ws.AppendBytes([]byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	c, ok := ws.TryChunkAt(0)
	if !ok || c.bytes()[0] != 1 {
		t.Fatalf("TryChunkAt(0) = %v, %v", c, ok)
	}
	c.release()
	if _, ok := ws.TryChunkAt(4); ok {
		t.Fatal("TryChunkAt must miss past head")
	}
	ws.Abort(ErrQuit)
	if _, ok := ws.TryChunkAt(0); ok {
		t.Fatal("TryChunkAt must miss after abort")
	}
}
