package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"kascade/internal/transport"
)

// --- live late-join, end to end -------------------------------------------

// TestSessionLateJoin runs a rerank-enabled tree broadcast over throttled
// links, grafts a ninth peer in mid-flight via Session.Join, and checks
// the joiner ends with the bit-perfect payload (catch-up backfill plus
// live stream, serialized in order) while the original session is
// untouched.
func TestSessionLateJoin(t *testing.T) {
	const (
		n    = 8
		k    = 2
		size = 1 << 20
	)
	fabric := transport.NewFabric(1 << 22)
	peers := make([]Peer, n)
	sinks := make([]*collectSink, n)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("n%d:7000", i)}
		sinks[i] = &collectSink{}
	}
	// Throttle the sender's links so the broadcast lasts long enough to
	// join mid-flight (~0.5 s for 1 MiB at 2 MiB/s per link).
	for i := 1; i < n; i++ {
		fabric.SetLinkProfile("n0", fmt.Sprintf("n%d", i), transport.Profile{Rate: 2 << 20})
	}
	payload := testPayload(size, 0x10ad)

	// Fire the join once some receiver passed an eighth of the payload.
	joinC := make(chan struct{})
	var once sync.Once
	trace := func(ev TraceEvent) {
		if ev.Kind == TraceChunk && ev.Node != 0 && ev.Offset >= size/8 {
			once.Do(func() { close(joinC) })
		}
	}

	sess, err := StartSession(context.Background(), SessionConfig{
		Peers:      peers,
		Opts:       rerankOpts(),
		Topology:   TopologyTree(k),
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  bytes.NewReader(payload),
		InputSize:  int64(size),
		Trace:      trace,
	})
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	<-joinC

	joinSink := &collectSink{}
	h, err := sess.Join(context.Background(), JoinConfig{
		Peer:    Peer{Name: "j1", Addr: "j1:7000"},
		Network: fabric.Host("j1"),
		Sink:    joinSink,
	})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if h.Grant.Index != n {
		t.Fatalf("joiner index = %d, want %d", h.Grant.Index, n)
	}
	if h.Grant.BasePeers != n {
		t.Fatalf("grant base plan size = %d, want %d", h.Grant.BasePeers, n)
	}

	if _, err := h.Wait(); err != nil {
		t.Fatalf("joiner: %v", err)
	}
	res, err := sess.Wait()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Report.TotalBytes != uint64(size) {
		t.Fatalf("TotalBytes = %d, want %d", res.Report.TotalBytes, size)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", res.Report.Failures)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(sinks[i].Bytes(), payload) {
			t.Fatalf("node %d payload mismatch: got %d bytes", i, len(sinks[i].Bytes()))
		}
	}
	if !bytes.Equal(joinSink.Bytes(), payload) {
		t.Fatalf("joiner payload mismatch: got %d bytes, want %d", len(joinSink.Bytes()), size)
	}
}

// TestJoinRefusedWithoutRerank checks the typed refusal when the session
// cannot graft anyone (chain topology, no planner).
func TestJoinRefusedWithoutRerank(t *testing.T) {
	fabric := transport.NewFabric(1 << 20)
	peers := []Peer{
		{Name: "n0", Addr: "n0:7000"},
		{Name: "n1", Addr: "n1:7000"},
	}
	payload := testPayload(64<<10, 0x77)
	sess, err := StartSession(context.Background(), SessionConfig{
		Peers:      peers,
		Opts:       Options{ChunkSize: 8 << 10, WindowChunks: 4},
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		InputFile:  bytes.NewReader(payload),
		InputSize:  int64(len(payload)),
	})
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	_, jerr := sess.Join(context.Background(), JoinConfig{
		Peer:    Peer{Name: "j1", Addr: "j1:7000"},
		Network: fabric.Host("j1"),
	})
	var refused *JoinRefusedError
	if !errors.As(jerr, &refused) {
		t.Fatalf("Join on a chain session = %v, want *JoinRefusedError", jerr)
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatalf("session: %v", err)
	}
}

// TestJoinAfterSessionEnded checks that joining a finished broadcast
// fails with ErrSessionEnded.
func TestJoinAfterSessionEnded(t *testing.T) {
	res, _, _, _, _, _ := runRerankSession(t, 4, 2, 128<<10, nil)
	_ = res
	// A fresh session that is immediately completed, then joined.
	fabric := transport.NewFabric(1 << 20)
	peers := make([]Peer, 4)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("n%d:7000", i)}
	}
	payload := testPayload(64<<10, 0x88)
	sess, err := StartSession(context.Background(), SessionConfig{
		Peers:      peers,
		Opts:       rerankOpts(),
		Topology:   TopologyTree(2),
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		InputFile:  bytes.NewReader(payload),
		InputSize:  int64(len(payload)),
	})
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatalf("session: %v", err)
	}
	_, jerr := sess.Join(context.Background(), JoinConfig{
		Peer:    Peer{Name: "j1", Addr: "j1:7000"},
		Network: fabric.Host("j1"),
	})
	if !errors.Is(jerr, ErrSessionEnded) {
		t.Fatalf("Join after end = %v, want ErrSessionEnded", jerr)
	}
}

// --- typed errors and the control-plane code bridge -----------------------

func TestMembershipErrorCodes(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{ErrSessionEnded, "session-ended"},
		{ErrJoinRefused("no room"), "join-refused"},
		{ErrCatchUpEvicted, "catch-up-evicted"},
		{fmt.Errorf("wrapped: %w", ErrSessionEnded), "session-ended"},
		{errors.New("unrelated"), ""},
	}
	for _, c := range cases {
		if got := MembershipErrorCode(c.err); got != c.code {
			t.Fatalf("MembershipErrorCode(%v) = %q, want %q", c.err, got, c.code)
		}
	}
	// Round trip: code → typed error → same code. No string matching.
	for _, code := range []string{"session-ended", "join-refused", "catch-up-evicted"} {
		err, ok := MembershipErrorFromCode(code, "detail")
		if !ok {
			t.Fatalf("MembershipErrorFromCode(%q) not recognized", code)
		}
		if got := MembershipErrorCode(err); got != code {
			t.Fatalf("round trip of %q came back as %q", code, got)
		}
	}
	if _, ok := MembershipErrorFromCode("admission-refused", ""); ok {
		t.Fatalf("non-membership code must not map to a membership error")
	}
	var refused *JoinRefusedError
	err, _ := MembershipErrorFromCode("join-refused", "busy")
	if !errors.As(err, &refused) || refused.Reason != "busy" {
		t.Fatalf("join-refused code did not rebuild *JoinRefusedError: %v", err)
	}
}

// --- catch-up spill buffer -------------------------------------------------

// TestJoinStateSpill drives the backlog over its memory budget and checks
// the spill engages, order is preserved across the memory/disk seam, and
// every pooled buffer goes back through the recycling seam.
func TestJoinStateSpill(t *testing.T) {
	const (
		chunk  = 8
		head   = 4 * chunk
		budget = 2 * chunk // two chunks in memory, then spill
	)
	sink := &collectSink{}
	js := newJoinState(sink, head, budget, chunk)
	var gets, puts int
	js.getBuf = func(n int) []byte { gets++; return make([]byte, n) }
	js.putBuf = func(b []byte) { puts++ }

	mk := func(b byte) []byte { return bytes.Repeat([]byte{b}, chunk) }
	// Live chunks A..D arrive while the backfill is still running: A and
	// B fit the budget, C forces the spill, D must follow it to disk even
	// though the memory budget has room again conceptually.
	for _, b := range []byte{'A', 'B', 'C', 'D'} {
		if err := js.live(mk(b)); err != nil {
			t.Fatalf("live(%c): %v", b, err)
		}
	}
	js.mu.Lock()
	memChunks, spilled := len(js.mem), js.spillW
	js.mu.Unlock()
	if memChunks != 2 {
		t.Fatalf("backlog holds %d chunks in memory, want 2", memChunks)
	}
	if spilled != 2*chunk {
		t.Fatalf("spill holds %d bytes, want %d", spilled, 2*chunk)
	}
	if gets != 2 {
		t.Fatalf("backlog took %d pooled buffers, want 2", gets)
	}

	// Backfill [0, head) in order, then drain.
	for i := 0; i < head/chunk; i++ {
		if err := js.backfill(mk('0' + byte(i))); err != nil {
			t.Fatalf("backfill %d: %v", i, err)
		}
	}
	if err := js.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if puts != gets {
		t.Fatalf("%d of %d pooled buffers returned to the arena", puts, gets)
	}

	want := append([]byte{}, mk('0')...)
	for i, b := range []byte{'1', '2', '3', 'A', 'B', 'C', 'D'} {
		_ = i
		want = append(want, mk(b)...)
	}
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("sink got %q, want %q", sink.Bytes(), want)
	}

	// Write-through after parity.
	if err := js.live(mk('E')); err != nil {
		t.Fatalf("live after parity: %v", err)
	}
	if got := sink.Bytes(); !bytes.Equal(got[len(got)-chunk:], mk('E')) {
		t.Fatalf("post-parity chunk did not write through")
	}
	select {
	case <-js.done:
	default:
		t.Fatalf("done not closed after finish")
	}
}

// TestJoinStateFailReleasesBacklog checks fail() returns the in-memory
// backlog to the arena and closes the spill.
func TestJoinStateFailReleasesBacklog(t *testing.T) {
	js := newJoinState(&collectSink{}, 64, 1024, 8)
	var puts int
	js.putBuf = func(b []byte) { puts++ }
	for i := 0; i < 3; i++ {
		if err := js.live(bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatalf("live: %v", err)
		}
	}
	js.fail(errors.New("boom"))
	if puts != 3 {
		t.Fatalf("fail returned %d buffers, want 3", puts)
	}
	if err := js.live([]byte{1}); err == nil {
		t.Fatalf("live after fail must report the recorded error")
	}
	if js.failure() == nil {
		t.Fatalf("failure() lost the recorded error")
	}
}

// --- range catch-up against a scripted source ------------------------------

// joinTestNode builds an unstarted joiner node whose plan points at addr
// as node 0, prepared far enough to run the catch-up machinery directly.
func joinTestNode(t *testing.T, fab *transport.Fabric, srvAddr string, head uint64, sink io.Writer) *Node {
	t.Helper()
	peers := []Peer{
		{Name: "srv", Addr: srvAddr},
		{Name: "x", Addr: "x:7000"},
		{Name: "j", Addr: "j:7000"},
	}
	lst, err := fab.Host("j").Listen("j:7000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lst.Close() })
	grant := &JoinGrant{
		Index:     2,
		Peers:     peers,
		BasePeers: 2,
		Head:      head,
		Version:   1,
		Occupants: []int32{0, 1, 2},
	}
	n, err := NewNode(NodeConfig{
		Index: 2,
		Plan: Plan{
			Peers:    peers,
			Opts:     Options{ChunkSize: 1024, WindowChunks: 2, Rerank: true, DialRetries: 2},
			Topology: TopologyTree(2),
		},
		Join:     grant,
		Network:  fab.Host("j"),
		Listener: lst,
		Sink:     sink,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := n.prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return n
}

// serveCatchUpSource answers RoleFetch PGETs from payload; decide(conn)
// returns a FORGET base to reply with instead of data (0 serves data).
func serveCatchUpSource(t *testing.T, lst transport.Listener, payload []byte, chunk int, decide func(conn int) uint64) {
	t.Helper()
	go func() {
		for connNo := 0; ; connNo++ {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			w := newWire(c, SystemClock())
			if _, _, _, err := w.readHelloAny(); err != nil {
				_ = w.close()
				continue
			}
			typ, err := w.readType()
			if err != nil || typ != MsgPGet {
				_ = w.close()
				continue
			}
			lo, hi, err := w.readPGet()
			if err != nil {
				_ = w.close()
				continue
			}
			if base := decide(connNo); base > 0 {
				_ = w.writeForget(base)
				_ = w.close()
				continue
			}
			for off := lo; off < hi; {
				end := off + uint64(chunk)
				if end > hi {
					end = hi
				}
				if err := w.writeData(payload[off:end]); err != nil {
					break
				}
				off = end
			}
			_ = w.writeEnd(hi)
			_ = w.close()
		}
	}()
}

// TestCatchUpForgetRefetch scripts one FORGET and checks the catch-up
// redials and refetches the same window instead of dying: the FORGET →
// refetch path the spill satellite requires.
func TestCatchUpForgetRefetch(t *testing.T) {
	const (
		chunk = 1024
		head  = 4 * chunk
	)
	fab := transport.NewFabric(1 << 20)
	srvLst, err := fab.Host("srv").Listen("srv:7000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srvLst.Close()
	payload := testPayload(head, 0x3c)
	serveCatchUpSource(t, srvLst, payload, chunk, func(conn int) uint64 {
		if conn == 0 {
			return chunk // pretend the window moved; the range is still there on retry
		}
		return 0
	})

	sink := &collectSink{}
	n := joinTestNode(t, fab, "srv:7000", head, sink)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.catchUp(ctx); err != nil {
		t.Fatalf("catchUp: %v", err)
	}
	if err := n.joinSt.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !bytes.Equal(sink.Bytes(), payload) {
		t.Fatalf("catch-up sink mismatch: got %d bytes, want %d", len(sink.Bytes()), head)
	}
}

// TestCatchUpEvicted scripts persistent FORGETs: two consecutive refusals
// with no progress must surface the typed ErrCatchUpEvicted.
func TestCatchUpEvicted(t *testing.T) {
	const (
		chunk = 1024
		head  = 4 * chunk
	)
	fab := transport.NewFabric(1 << 20)
	srvLst, err := fab.Host("srv").Listen("srv:7000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srvLst.Close()
	payload := testPayload(head, 0x3d)
	serveCatchUpSource(t, srvLst, payload, chunk, func(conn int) uint64 {
		return 2 * chunk // the range below is gone, every time
	})

	n := joinTestNode(t, fab, "srv:7000", head, &collectSink{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = n.catchUp(ctx)
	if !errors.Is(err, ErrCatchUpEvicted) {
		t.Fatalf("catchUp with persistent FORGET = %v, want ErrCatchUpEvicted", err)
	}
}

// --- wire compatibility ----------------------------------------------------

// TestWireCompatPinnedValues pins every frame-type and role constant to
// its wire value: the JOIN/REORG2 additions must only ever append. A
// failure here is a protocol break for pre-JOIN peers.
func TestWireCompatPinnedValues(t *testing.T) {
	msgs := map[MsgType]byte{
		MsgHello: 1, MsgGet: 2, MsgPGet: 3, MsgForget: 4, MsgData: 5,
		MsgEnd: 6, MsgQuit: 7, MsgReport: 8, MsgPassed: 9, MsgPing: 10,
		MsgPong: 11, MsgHello2: 12, MsgReorg: 13, MsgRate: 14,
		MsgReorg2: 15, MsgJoin: 16, MsgJoinInfo: 17, MsgJoinGo: 18, MsgJoinOK: 19,
	}
	for m, v := range msgs {
		if byte(m) != v {
			t.Fatalf("%v = %d, want pinned wire value %d", m, byte(m), v)
		}
	}
	roles := map[Role]byte{
		RoleData: 1, RolePing: 2, RoleFetch: 3, RoleReport: 4, RoleRate: 5, RoleJoin: 6,
	}
	for r, v := range roles {
		if byte(r) != v {
			t.Fatalf("%v = %d, want pinned wire value %d", r, byte(r), v)
		}
	}
}

// pipeConn is an in-memory one-way capture of what a dialer writes.
type captureConn struct {
	bytes.Buffer
}

func (c *captureConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c *captureConn) Close() error                     { return nil }
func (c *captureConn) SetDeadline(time.Time) error      { return nil }
func (c *captureConn) SetReadDeadline(time.Time) error  { return nil }
func (c *captureConn) SetWriteDeadline(time.Time) error { return nil }
func (c *captureConn) LocalAddr() string                { return "cap:0" }
func (c *captureConn) RemoteAddr() string               { return "cap:1" }

// TestHelloGoldenBytes pins the exact v1 and v2 HELLO encodings: a
// pre-JOIN agent must keep parsing post-JOIN dialers unchanged.
func TestHelloGoldenBytes(t *testing.T) {
	var c captureConn
	w := newWire(&c, SystemClock())
	if err := w.writeHelloFor(RoleData, 3, 0); err != nil {
		t.Fatalf("writeHelloFor v1: %v", err)
	}
	v1 := []byte{1 /*HELLO*/, 1 /*data*/, 0, 0, 0, 3}
	if !bytes.Equal(c.Bytes(), v1) {
		t.Fatalf("v1 HELLO = %x, want %x", c.Bytes(), v1)
	}
	c.Reset()
	if err := w.writeHelloFor(RoleFetch, 2, 0x0102030405060708); err != nil {
		t.Fatalf("writeHelloFor v2: %v", err)
	}
	v2 := []byte{12 /*HELLO2*/, 3 /*fetch*/, 0, 0, 0, 2, 1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(c.Bytes(), v2) {
		t.Fatalf("v2 HELLO = %x, want %x", c.Bytes(), v2)
	}
}

// TestHelloDialerMatrix proves both HELLO generations parse identically
// through the shared accept path, for every role including the new JOIN:
// pre-JOIN senders and agents interoperate with post-JOIN peers unchanged.
func TestHelloDialerMatrix(t *testing.T) {
	roles := []Role{RoleData, RolePing, RoleFetch, RoleReport, RoleRate, RoleJoin}
	for _, sid := range []SessionID{0, 42} {
		for _, role := range roles {
			var c captureConn
			w := newWire(&c, SystemClock())
			if err := w.writeHelloFor(role, 7, sid); err != nil {
				t.Fatalf("writeHelloFor(%v, sid=%d): %v", role, sid, err)
			}
			r := newWire(readerConn{bytes.NewReader(c.Bytes())}, SystemClock())
			gotRole, gotFrom, gotSid, err := r.readHelloAny()
			if err != nil {
				t.Fatalf("readHelloAny(%v, sid=%d): %v", role, sid, err)
			}
			if gotRole != role || gotFrom != 7 || gotSid != sid {
				t.Fatalf("HELLO round trip (%v, sid=%d) = (%v, %d, %d)", role, sid, gotRole, gotFrom, gotSid)
			}
		}
	}
}

type readerConn struct{ r io.Reader }

func (c readerConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c readerConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c readerConn) Close() error                     { return nil }
func (c readerConn) SetDeadline(time.Time) error      { return nil }
func (c readerConn) SetReadDeadline(time.Time) error  { return nil }
func (c readerConn) SetWriteDeadline(time.Time) error { return nil }
func (c readerConn) LocalAddr() string                { return "r:0" }
func (c readerConn) RemoteAddr() string               { return "r:1" }

// TestPGetSingleChunkByteIdentity captures the raw request bytes of the
// legacy single-gap fetch and of a one-chunk catch-up window against the
// same source and checks they are byte-identical: the range catch-up is
// the §III-D2 PGET, not a new verb.
func TestPGetSingleChunkByteIdentity(t *testing.T) {
	const chunk = 1024
	fab := transport.NewFabric(1 << 20)
	srvLst, err := fab.Host("srv").Listen("srv:7000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srvLst.Close()

	// The capture server reads exactly HELLO v1 (6 B) + PGET (17 B), then
	// hangs up; both dialers error out after the request is on the wire.
	reqs := make(chan []byte, 4)
	go func() {
		for {
			c, err := srvLst.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 23)
			if _, err := io.ReadFull(c, buf); err == nil {
				reqs <- buf
			}
			_ = c.Close()
		}
	}()

	n := joinTestNode(t, fab, "srv:7000", 4*chunk, &collectSink{})
	ctx := context.Background()
	_ = n.fetchRange(ctx, 0, chunk) // errors on the hang-up; the request is out
	_ = n.fetchGapOnce(0, chunk)

	rangeReq := <-reqs
	legacyReq := <-reqs
	if !bytes.Equal(rangeReq, legacyReq) {
		t.Fatalf("catch-up PGET request %x differs from legacy gap fetch %x", rangeReq, legacyReq)
	}
}

// --- lifecycle validation ---------------------------------------------------

// TestSessionConfigValidate exercises the consolidated front-door
// validation: structural wiring plus the transport × topology × options
// shape, without address checks.
func TestSessionConfigValidate(t *testing.T) {
	fab := transport.NewFabric(1 << 20)
	net := func(int) transport.Network { return fab.Host("h") }
	ok := SessionConfig{
		Peers:      []Peer{{Name: "a"}, {Name: "b"}}, // addresses unresolved: fine pre-bind
		NetworkFor: net,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SessionConfig)
	}{
		{"no peers", func(c *SessionConfig) { c.Peers = nil }},
		{"no network", func(c *SessionConfig) { c.NetworkFor = nil }},
		{"engine without session", func(c *SessionConfig) { c.EngineFor = func(int) *Engine { return nil } }},
		{"bad transport", func(c *SessionConfig) { c.Transport = "smoke-signals" }},
		{"bad topology", func(c *SessionConfig) { c.Topology = "pentagram" }},
		{"rerank on a chain", func(c *SessionConfig) { c.Opts.Rerank = true }},
		{"udp tree", func(c *SessionConfig) { c.Transport = TransportUDP; c.Topology = TopologyTree(2) }},
		{"tiny window", func(c *SessionConfig) { c.Opts.ChunkSize = 1 << 10; c.Opts.WindowChunks = 1 }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: invalid config accepted", tc.name)
		}
	}
}
