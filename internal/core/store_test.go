package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowStoreSequentialReadBack(t *testing.T) {
	s := newWindowStore(4, 8, nil)
	var want []byte
	for i := 0; i < 5; i++ {
		chunk := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}
		want = append(want, chunk...)
		if err := s.AppendBytes(chunk); err != nil {
			t.Fatal(err)
		}
	}
	s.Finish(20)
	var got []byte
	off := uint64(0)
	for {
		c, err := s.ChunkAt(off)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c.bytes()...)
		off += uint64(len(c.bytes()))
		c.release()
		s.SetLowWater(off)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestWindowStoreBackPressureAndEviction(t *testing.T) {
	s := newWindowStore(4, 2, nil) // capacity: 2 slots of 4 bytes
	mustAppend := func(b []byte) {
		t.Helper()
		if err := s.AppendBytes(b); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend([]byte{1, 1, 1, 1})
	mustAppend([]byte{2, 2, 2, 2})

	// Third append must block until the consumer confirms the first chunk.
	done := make(chan error, 1)
	go func() { done <- s.AppendBytes([]byte{3, 3, 3, 3}) }()
	select {
	case <-done:
		t.Fatal("append should have blocked on full window")
	case <-time.After(50 * time.Millisecond):
	}
	s.SetLowWater(4) // first chunk consumed
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("append did not unblock after low-water rise")
	}
	// Offset 0 is now evicted.
	_, err := s.ChunkAt(0)
	var fe *ForgetError
	if !errors.As(err, &fe) || fe.Base != 4 {
		t.Fatalf("want ForgetError{4}, got %v", err)
	}
	// Offset 4 still readable.
	c, err2 := s.ChunkAt(4)
	if err2 != nil || c.bytes()[0] != 2 {
		t.Fatalf("chunk at 4: %v %v", c, err2)
	}
	c.release()
}

func TestWindowStoreReleaseAllLiftsBackPressure(t *testing.T) {
	s := newWindowStore(4, 2, nil)
	for i := 0; i < 2; i++ {
		if err := s.AppendBytes([]byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.AppendBytes([]byte{9, 9, 9, 9}) }()
	time.Sleep(20 * time.Millisecond)
	s.ReleaseAll()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("ReleaseAll did not unblock append")
	}
}

func TestWindowStoreResetLowWaterProtectsReplay(t *testing.T) {
	s := newWindowStore(4, 4, nil) // 4 slots
	for i := 0; i < 4; i++ {
		if err := s.AppendBytes([]byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	s.SetLowWater(16) // old successor consumed everything
	// New successor resumes at 4: protect [4,16) from eviction.
	s.ResetLowWater(4)
	done := make(chan error, 1)
	go func() { done <- s.AppendBytes([]byte{8, 0, 0, 0}) }()
	// Only chunk [0,4) is evictable; the append fits after one eviction.
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("append blocked despite evictable head chunk")
	}
	if c, err := s.ChunkAt(4); err != nil {
		t.Fatalf("replay chunk at 4 evicted: %v", err)
	} else {
		c.release()
	}
}

func TestWindowStoreAbortWakesWaiters(t *testing.T) {
	s := newWindowStore(4, 2, nil)
	got := make(chan error, 1)
	go func() {
		_, err := s.ChunkAt(0) // nothing appended: blocks
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Abort(ErrQuit)
	select {
	case err := <-got:
		if !errors.Is(err, ErrQuit) {
			t.Fatalf("want ErrQuit, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("abort did not wake reader")
	}
	if s.AbortCause() != ErrQuit {
		t.Fatal("abort cause lost")
	}
	// First cause sticks.
	s.Abort(ErrAbandoned)
	if s.AbortCause() != ErrQuit {
		t.Fatal("abort cause overwritten")
	}
}

func TestWindowStoreEOFSemantics(t *testing.T) {
	s := newWindowStore(4, 4, nil)
	if err := s.AppendBytes([]byte{1, 2}); err != nil { // short final chunk
		t.Fatal(err)
	}
	s.Finish(2)
	if c, err := s.ChunkAt(0); err != nil || len(c.bytes()) != 2 {
		t.Fatalf("final chunk: %v %v", c, err)
	} else {
		c.release()
	}
	if _, err := s.ChunkAt(2); err != io.EOF {
		t.Fatalf("want EOF at end, got %v", err)
	}
	if end, ok := s.End(); !ok || end != 2 {
		t.Fatalf("End() = %d %v", end, ok)
	}
}

func TestWindowStoreAppendAfterFinishFails(t *testing.T) {
	s := newWindowStore(4, 4, nil)
	s.Finish(0)
	if err := s.AppendBytes([]byte{1}); err == nil {
		t.Fatal("append after finish accepted")
	}
}

// Property: for any chunking of a random payload and any window size, a
// sequential consumer that confirms each chunk reconstructs the payload
// exactly, regardless of producer/consumer interleaving.
func TestWindowStorePipelineIntegrityQuick(t *testing.T) {
	f := func(seed int64, window uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		chunkSize := rnd.Intn(64) + 1
		w := int(window)%14 + 2
		payload := make([]byte, rnd.Intn(4096))
		rnd.Read(payload)
		s := newWindowStore(chunkSize, w, nil)

		go func() {
			for off := 0; off < len(payload); off += chunkSize {
				end := off + chunkSize
				if end > len(payload) {
					end = len(payload)
				}
				if s.AppendBytes(payload[off:end]) != nil {
					return
				}
			}
			s.Finish(uint64(len(payload)))
		}()

		var got []byte
		off := uint64(0)
		for {
			c, err := s.ChunkAt(off)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, c.bytes()...)
			off += uint64(len(c.bytes()))
			c.release()
			s.SetLowWater(off)
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreChunks(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	fs := newFileStore(bytes.NewReader(payload), int64(len(payload)), 256, nil)
	if h := fs.Head(); h != 1000 {
		t.Fatalf("head %d", h)
	}
	if end, ok := fs.End(); !ok || end != 1000 {
		t.Fatalf("end %d %v", end, ok)
	}
	var got []byte
	for off := uint64(0); ; {
		c, err := fs.ChunkAt(off)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c.bytes()...)
		off += uint64(len(c.bytes()))
		c.release()
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file store corrupted payload")
	}
	// Random access at any offset (the PGET property).
	c, err := fs.ChunkAt(512)
	if err != nil || c.bytes()[0] != payload[512] {
		t.Fatalf("random access: %v %v", c, err)
	}
	c.release()
	fs.Abort(ErrQuit)
	if _, err := fs.ChunkAt(0); !errors.Is(err, ErrQuit) {
		t.Fatalf("abort not honoured: %v", err)
	}
}
