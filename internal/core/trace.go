package core

import (
	"fmt"
	"time"
)

// TraceKind enumerates the recovery-path state transitions a node can
// report through its Tracer. The trace seam exists so fault-injection
// harnesses (internal/chaos) can observe detection, rewiring and replay
// without polling or sleeping — the paper's §III-D machinery becomes
// assertable instead of demo-ware.
type TraceKind int

const (
	// TraceChunk fires after a payload chunk was ingested (window append +
	// sink write); Offset is the node's new total of received bytes.
	TraceChunk TraceKind = iota + 1
	// TraceFailureDetected fires when this node records a peer failure;
	// Peer is the victim's pipeline index, Detail the reason.
	TraceFailureDetected
	// TraceUpstreamAccepted fires when a (new or replacement) predecessor
	// connection is adopted and GET was sent; Peer is the predecessor's
	// index, Offset the requested resume offset.
	TraceUpstreamAccepted
	// TraceUpstreamLost fires when the current predecessor connection
	// broke and the node starts waiting for a replacement.
	TraceUpstreamLost
	// TraceGapFetchStart / TraceGapFetchDone bracket a §III-D2 PGET gap
	// fetch from the sender; Offset is the fetch start offset.
	TraceGapFetchStart
	TraceGapFetchDone
	// TraceAbandoned fires when the node gives up after unrecoverable
	// loss; TraceSteppedAside when it was excluded for slowness (§V).
	TraceAbandoned
	TraceSteppedAside
	// TraceFinished fires when the node's Run returns; Detail carries the
	// terminal error, if any.
	TraceFinished
	// TraceReorg fires at node 0 when a re-ranking migration is planned;
	// Peer is the demoted node's index, Offset the new view version.
	TraceReorg
	// TraceJoin fires at node 0 when a late joiner is admitted; Peer is
	// the joiner's new pipeline index, Offset its catch-up boundary.
	TraceJoin
)

func (k TraceKind) String() string {
	switch k {
	case TraceChunk:
		return "chunk"
	case TraceFailureDetected:
		return "failure-detected"
	case TraceUpstreamAccepted:
		return "upstream-accepted"
	case TraceUpstreamLost:
		return "upstream-lost"
	case TraceGapFetchStart:
		return "gap-fetch-start"
	case TraceGapFetchDone:
		return "gap-fetch-done"
	case TraceAbandoned:
		return "abandoned"
	case TraceSteppedAside:
		return "stepped-aside"
	case TraceFinished:
		return "finished"
	case TraceReorg:
		return "reorg"
	case TraceJoin:
		return "join"
	default:
		return "trace(?)"
	}
}

// TraceEvent is one recovery-path observation.
type TraceEvent struct {
	// Node is the pipeline index of the emitting node.
	Node int
	Kind TraceKind
	// Peer is the counterpart pipeline index (victim, predecessor), or -1.
	Peer int
	// Offset is a byte offset or byte total, depending on Kind.
	Offset uint64
	// Detail is a human-readable annotation (failure reason, error).
	Detail string
	// At is the emitting node's clock reading.
	At time.Time
}

// ReorgPartner extracts the promoted node's index from a TraceReorg
// event. The demoted node rides in Peer; the partner that took its
// interior slot only appears in the Detail annotation, which this helper
// parses so fault harnesses can target the re-graft counterpart without
// duplicating the format string.
func (ev TraceEvent) ReorgPartner() (int, bool) {
	if ev.Kind != TraceReorg {
		return 0, false
	}
	var slot, rate, partner, pslot int
	if _, err := fmt.Sscanf(ev.Detail, reorgDetailFormat, &slot, &rate, &partner, &pslot); err != nil {
		return 0, false
	}
	return partner, true
}

// reorgDetailFormat is the TraceReorg Detail layout, shared between the
// reorganizer's emit and ReorgPartner's scan.
const reorgDetailFormat = "demoted to slot %d (%d B/s), promoted node %d to slot %d"

// Tracer receives trace events. It may be called concurrently from several
// of the node's goroutines and must not block: the ingest hot path emits
// TraceChunk inline.
type Tracer func(TraceEvent)

// emit reports a state transition to the configured tracer, if any.
func (n *Node) emit(kind TraceKind, peer int, off uint64, detail string) {
	if n.cfg.Trace == nil {
		return
	}
	n.cfg.Trace(TraceEvent{
		Node:   n.cfg.Index,
		Kind:   kind,
		Peer:   peer,
		Offset: off,
		Detail: detail,
		At:     n.clk.Now(),
	})
}
