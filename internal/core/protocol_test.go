package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kascade/internal/transport"
)

// testOpts returns timeouts scaled down for unit testing.
func testOpts() Options {
	return Options{
		ChunkSize:           4 << 10,
		WindowChunks:        8,
		WriteStallTimeout:   100 * time.Millisecond,
		PingTimeout:         60 * time.Millisecond,
		DialTimeout:         300 * time.Millisecond,
		DialRetries:         2,
		GetTimeout:          time.Second,
		FetchTimeout:        3 * time.Second,
		ReportTimeout:       3 * time.Second,
		UpstreamIdleTimeout: 3 * time.Second,
	}
}

// collectSink gathers everything written, safely readable at any time.
type collectSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *collectSink) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *collectSink) Bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// slowSink throttles writes to a fixed rate, modelling a slow disk.
type slowSink struct {
	collectSink
	bytesPerSec float64
}

func (s *slowSink) Write(p []byte) (int, error) {
	time.Sleep(time.Duration(float64(len(p)) / s.bytesPerSec * float64(time.Second)))
	return s.collectSink.Write(p)
}

func testPayload(n int, seed int64) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// testEnv is a fabric plus peers named n1..nN, each with a collect sink by
// default (replaceable per test).
type testEnv struct {
	fabric *transport.Fabric
	peers  []Peer
	sinks  []io.Writer
}

func newTestEnv(n, bufSize int) *testEnv {
	env := &testEnv{fabric: transport.NewFabric(bufSize)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i+1)
		env.peers = append(env.peers, Peer{Name: name, Addr: name + ":7000"})
		env.sinks = append(env.sinks, &collectSink{})
	}
	return env
}

func (env *testEnv) config(data []byte, stream bool) SessionConfig {
	cfg := SessionConfig{
		Peers:      env.peers,
		Opts:       testOpts(),
		NetworkFor: func(i int) transport.Network { return env.fabric.Host(env.peers[i].Name) },
		SinkFor:    func(i int) io.Writer { return env.sinks[i] },
	}
	if stream {
		cfg.Input = bytes.NewReader(data)
	} else {
		cfg.InputFile = bytes.NewReader(data)
		cfg.InputSize = int64(len(data))
	}
	return cfg
}

func (env *testEnv) sinkBytes(i int) []byte {
	switch s := env.sinks[i].(type) {
	case *collectSink:
		return s.Bytes()
	case *slowSink:
		return s.Bytes()
	default:
		return nil
	}
}

func checkSink(t *testing.T, env *testEnv, i int, want []byte) {
	t.Helper()
	got := env.sinkBytes(i)
	if sha256.Sum256(got) != sha256.Sum256(want) {
		t.Errorf("node %d sink mismatch: got %d bytes, want %d", i, len(got), len(want))
	}
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// --- happy paths -----------------------------------------------------------

func TestBroadcastFileSource(t *testing.T) {
	env := newTestEnv(6, 0)
	data := testPayload(100<<10, 1)
	res, err := RunSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", res.Report)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("total bytes %d, want %d", res.Report.TotalBytes, len(data))
	}
	for i := 1; i < 6; i++ {
		checkSink(t, env, i, data)
		if res.NodeErrs[i] != nil {
			t.Errorf("node %d: %v", i, res.NodeErrs[i])
		}
	}
}

func TestBroadcastStreamSource(t *testing.T) {
	env := newTestEnv(5, 0)
	data := testPayload(64<<10+123, 2) // not chunk-aligned
	res, err := RunSession(context.Background(), env.config(data, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("total bytes %d, want %d", res.Report.TotalBytes, len(data))
	}
	for i := 1; i < 5; i++ {
		checkSink(t, env, i, data)
	}
}

func TestBroadcastTinyAndEmptyPayloads(t *testing.T) {
	for _, size := range []int{0, 1, 100, 4096, 4097} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			env := newTestEnv(3, 0)
			data := testPayload(size, int64(size))
			res, err := RunSession(context.Background(), env.config(data, true))
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.TotalBytes != uint64(size) {
				t.Fatalf("total %d, want %d", res.Report.TotalBytes, size)
			}
			for i := 1; i < 3; i++ {
				checkSink(t, env, i, data)
			}
		})
	}
}

func TestBroadcastSingleReceiver(t *testing.T) {
	env := newTestEnv(2, 0)
	data := testPayload(32<<10, 3)
	res, err := RunSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	checkSink(t, env, 1, data)
	if len(res.Report.Failures) != 0 {
		t.Fatalf("failures: %v", res.Report)
	}
}

func TestBroadcastNoReceivers(t *testing.T) {
	env := newTestEnv(1, 0)
	data := testPayload(8<<10, 4)
	res, err := RunSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("no report")
	}
}

// --- failure handling ------------------------------------------------------

// killWhen kills host once cond holds (polled).
func killWhen(env *testEnv, host string, cond func() bool) {
	go func() {
		for !cond() {
			time.Sleep(time.Millisecond)
		}
		env.fabric.Kill(host)
	}()
}

func TestSingleFailureMidTransferReplay(t *testing.T) {
	env := newTestEnv(5, 8<<10)
	// Pace the sender's links so the kill happens mid-transfer.
	env.fabric.SetDefaultProfile(transport.Profile{Rate: 2 << 20})
	data := testPayload(256<<10, 5)
	sess, err := StartSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	// Kill n3 (index 2) once it is mid-stream.
	killWhen(env, "n3", func() bool { return sess.Nodes[2].BytesReceived() > 64<<10 })
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(2) {
		t.Fatalf("report must list n3: %v", res.Report)
	}
	if len(res.Report.Failures) != 1 {
		t.Fatalf("exactly one failure expected: %v", res.Report)
	}
	// Survivors get the complete, correct payload.
	checkSink(t, env, 1, data)
	checkSink(t, env, 3, data)
	checkSink(t, env, 4, data)
}

func TestAdjacentDoubleFailure(t *testing.T) {
	env := newTestEnv(6, 8<<10)
	env.fabric.SetDefaultProfile(transport.Profile{Rate: 2 << 20})
	data := testPayload(256<<10, 6)
	sess, err := StartSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for sess.Nodes[3].BytesReceived() < 64<<10 {
			time.Sleep(time.Millisecond)
		}
		env.fabric.Kill("n3")
		env.fabric.Kill("n4")
	}()
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(2) || !res.Report.Failed(3) {
		t.Fatalf("report must list n3 and n4: %v", res.Report)
	}
	checkSink(t, env, 1, data)
	checkSink(t, env, 4, data)
	checkSink(t, env, 5, data)
}

func TestLastNodeFailure(t *testing.T) {
	env := newTestEnv(4, 8<<10)
	env.fabric.SetDefaultProfile(transport.Profile{Rate: 2 << 20})
	data := testPayload(128<<10, 7)
	sess, err := StartSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	killWhen(env, "n4", func() bool { return sess.Nodes[3].BytesReceived() > 32<<10 })
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(3) {
		t.Fatalf("report must list n4: %v", res.Report)
	}
	// n3 became the tail and still closed the ring.
	checkSink(t, env, 1, data)
	checkSink(t, env, 2, data)
}

func TestFailureBeforeFirstConnection(t *testing.T) {
	// The paper's deadlock case: a node crashes before its first
	// connection; GET-on-every-connection keeps the pipeline alive.
	env := newTestEnv(5, 0)
	data := testPayload(64<<10, 8)
	sess, err := StartSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	env.fabric.Kill("n3") // dead before it dials anyone
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(2) {
		t.Fatalf("report must list n3: %v", res.Report)
	}
	checkSink(t, env, 1, data)
	checkSink(t, env, 3, data)
	checkSink(t, env, 4, data)
}

func TestAllReceiversFail(t *testing.T) {
	env := newTestEnv(3, 8<<10)
	env.fabric.SetDefaultProfile(transport.Profile{Rate: 2 << 20})
	data := testPayload(128<<10, 9)
	sess, err := StartSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for sess.Nodes[1].BytesReceived() < 16<<10 {
			time.Sleep(time.Millisecond)
		}
		env.fabric.Kill("n2")
		env.fabric.Kill("n3")
	}()
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The sender becomes its own tail and reports both deaths.
	if !res.Report.Failed(1) || !res.Report.Failed(2) {
		t.Fatalf("report: %v", res.Report)
	}
}

func TestFileSourceGapFetchViaPGET(t *testing.T) {
	// Force a recovering successor below its new predecessor's window:
	// n5 drains slowly, building lag across the pipeline; killing n3
	// makes n4 resume from n2, whose window has moved past n4's offset,
	// so n4 must PGET the gap from the sender (file-backed: succeeds).
	env := newTestEnv(6, 4<<10)
	env.sinks[4] = &slowSink{bytesPerSec: 256 << 10}
	data := testPayload(256<<10, 10)
	cfg := env.config(data, false)
	opts := testOpts()
	opts.WindowChunks = 4
	cfg.Opts = opts
	sess, err := StartSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	killWhen(env, "n3", func() bool { return sess.Nodes[4].BytesReceived() > 48<<10 })
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(2) {
		t.Fatalf("report must list n3: %v", res.Report)
	}
	for _, i := range []int{1, 3, 4, 5} {
		checkSink(t, env, i, data)
	}
}

func TestStreamSourceAbandonCascade(t *testing.T) {
	// Same lag construction, but with a streamed source and two adjacent
	// kills: the gap exceeds every window, the sender answers FORGET to
	// the PGET, and everything downstream of the gap abandons (§III-D2).
	env := newTestEnv(6, 4<<10)
	env.sinks[3] = &slowSink{bytesPerSec: 192 << 10}
	data := testPayload(256<<10, 11)
	cfg := env.config(data, true)
	opts := testOpts()
	opts.WindowChunks = 4
	cfg.Opts = opts
	sess, err := StartSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for sess.Nodes[3].BytesReceived() < 48<<10 {
			time.Sleep(time.Millisecond)
		}
		env.fabric.Kill("n2")
		env.fabric.Kill("n3")
	}()
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Failed(1) || !res.Report.Failed(2) {
		t.Fatalf("report must list n2 and n3: %v", res.Report)
	}
	// Nodes past the gap abandoned; the sender still completed.
	if !sess.Nodes[3].Abandoned() {
		t.Error("n4 should have abandoned after FORGET from the streamed sender")
	}
	if !sess.Nodes[4].Abandoned() && !res.Report.Failed(4) {
		t.Error("n5 should have abandoned via the QUIT cascade (or been reported dead)")
	}
}

func TestUserAbortQuitsGracefully(t *testing.T) {
	env := newTestEnv(4, 8<<10)
	env.fabric.SetDefaultProfile(transport.Profile{Rate: 1 << 20})
	data := testPayload(512<<10, 12)
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := StartSession(ctx, env.config(data, true))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 5*time.Second, func() bool { return sess.Nodes[3].BytesReceived() > 32<<10 })
	cancel()
	res, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Aborted {
		t.Fatalf("report must be marked aborted: %v", res.Report)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("an abort is not a failure: %v", res.Report)
	}
	// All sinks hold a consistent prefix of the payload.
	for i := 1; i < 4; i++ {
		got := env.sinkBytes(i)
		if !bytes.Equal(got, data[:len(got)]) {
			t.Errorf("node %d sink is not a prefix (%d bytes)", i, len(got))
		}
	}
}

func TestSlowButAliveIsNotAFailure(t *testing.T) {
	// §III-D1: a stalled write triggers a ping; an answered ping means
	// "keep waiting", so a slow node must never be declared dead.
	env := newTestEnv(4, 4<<10)
	env.sinks[2] = &slowSink{bytesPerSec: 48 << 10} // stalls well past WriteStallTimeout
	data := testPayload(24<<10, 13)
	res, err := RunSession(context.Background(), env.config(data, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("slow node misdeclared dead: %v", res.Report)
	}
	checkSink(t, env, 2, data)
	checkSink(t, env, 3, data)
}

func TestBroadcastOverRealTCP(t *testing.T) {
	peers := make([]Peer, 5)
	sinks := make([]io.Writer, 5)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i+1), Addr: "127.0.0.1:0"}
		sinks[i] = &collectSink{}
	}
	data := testPayload(1<<20, 14)
	cfg := SessionConfig{
		Peers:      peers,
		Opts:       testOpts(),
		NetworkFor: func(int) transport.Network { return transport.TCP{} },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  bytes.NewReader(data),
		InputSize:  int64(len(data)),
	}
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("failures over loopback: %v", res.Report)
	}
	for i := 1; i < 5; i++ {
		got := sinks[i].(*collectSink).Bytes()
		if sha256.Sum256(got) != sha256.Sum256(data) {
			t.Errorf("node %d corrupted payload over TCP", i)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := RunSession(context.Background(), SessionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	env := newTestEnv(2, 0)
	cfg := env.config(nil, false)
	cfg.NetworkFor = nil
	if _, err := RunSession(context.Background(), cfg); err == nil {
		t.Error("missing NetworkFor accepted")
	}
	// Sender without input.
	bad := SessionConfig{
		Peers:      env.peers,
		Opts:       testOpts(),
		NetworkFor: func(i int) transport.Network { return env.fabric.Host(env.peers[i].Name) },
	}
	if _, err := RunSession(context.Background(), bad); err == nil {
		t.Error("sender without input accepted")
	}
}

func TestNewNodeValidation(t *testing.T) {
	env := newTestEnv(2, 0)
	plan := Plan{Peers: env.peers, Opts: testOpts()}
	if _, err := NewNode(NodeConfig{Index: -1, Plan: plan}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := NewNode(NodeConfig{Index: 0, Plan: plan}); err == nil {
		t.Error("missing network/listener accepted")
	}
	net1 := env.fabric.Host("n1")
	l, err := net1.Listen(env.peers[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := NewNode(NodeConfig{Index: 0, Plan: plan, Network: net1, Listener: l}); err == nil {
		t.Error("sender without input accepted")
	}
	if _, err := NewNode(NodeConfig{
		Index: 1, Plan: plan, Network: net1, Listener: l,
		Input: bytes.NewReader(nil),
	}); err == nil {
		t.Error("receiver with input accepted")
	}
}
