package core

import (
	"fmt"
	"time"
)

// Options tunes the protocol engine. The zero value selects production
// defaults via withDefaults; tests use much smaller timeouts.
//
// The paper singles out several of these as the interesting design knobs:
// the chunk size (§III-C: the stream is split into chunks so its total size
// need not be known upfront), the in-memory window kept for replay after a
// failure (§III-D2), and the failure-detection timeout (§IV-G: every
// triggered timeout costs about one second of transfer).
type Options struct {
	// ChunkSize is the DATA chunk granularity in bytes.
	ChunkSize int
	// WindowChunks is how many recent chunks each node retains in memory
	// for replaying to a recovering successor. It also bounds how far a
	// node may run ahead of its successor (back-pressure).
	WindowChunks int

	// MaxBatchBytes caps how many payload bytes the downstream sender
	// coalesces into one vectored DATA write (writev on TCP). The first
	// ready chunk is always sent, so a value below ChunkSize disables
	// batching without stalling. Defaults to 4 MiB.
	MaxBatchBytes int

	// Class names the broadcast's priority class on shared engines: it
	// drives admission-queue ordering and the weighted quanta of the
	// engine's data-plane scheduler (EngineOptions.Classes maps names to
	// weights; see ClassBulk/ClassInteractive). Empty behaves as weight 1.
	// It travels with the plan so every host schedules the session alike.
	Class string `json:"Class,omitempty"`
	// PoolChunks sizes the free list of the per-node chunk buffer pool.
	// Defaults to WindowChunks plus a small slack for frames in flight.
	PoolChunks int

	// WriteStallTimeout is how long a write to the successor may stall
	// before the failure detector probes it with a ping.
	WriteStallTimeout time.Duration
	// PingTimeout bounds the liveness probe (dial + PING + PONG).
	PingTimeout time.Duration
	// DialTimeout bounds each connection attempt; DialRetries attempts
	// are made before a successor is declared dead.
	DialTimeout time.Duration
	DialRetries int

	// GetTimeout is how long the sender side waits for the initial GET
	// on a fresh data connection.
	GetTimeout time.Duration
	// FetchTimeout is how long the sender side waits for a follow-up GET
	// after answering FORGET (the successor is fetching the gap from
	// node 1), and how long a gap fetch itself may take.
	FetchTimeout time.Duration
	// ReportTimeout bounds the report/PASSED exchange at the end.
	ReportTimeout time.Duration
	// UpstreamIdleTimeout is how long a node waits for a (replacement)
	// predecessor connection before giving the transfer up.
	UpstreamIdleTimeout time.Duration

	// Splice lets pure-relay nodes move chunk payloads from the upstream
	// socket to the downstream socket inside the kernel (splice(2) via the
	// runtime's TCP ReadFrom path) instead of staging them in pooled user-
	// space buffers. It only ever engages on Linux, between real TCP
	// connections, on nodes with no local consumer (no Sink) — everywhere
	// else the pooled path runs unchanged, so the flag is safe to set
	// unconditionally. Requires a file-backed source at node 0: a spliced
	// relay retains nothing, so a recovering successor's FORGET resolves
	// against the sender's file store instead of this node's window.
	Splice bool `json:"Splice,omitempty"`

	// DatagramBytes caps the payload carried by one UDP datagram on the
	// "udp" transport (header excluded). Defaults to 1200 bytes, safely
	// under the common 1500-byte path MTU. Only meaningful with
	// Plan.Transport == "udp".
	DatagramBytes int `json:"DatagramBytes,omitempty"`

	// MinThroughput enables the paper's future-work extension (§V): a
	// successor whose drain rate stays below this many bytes/second for
	// longer than SlowNodeGrace is excluded from the transfer exactly
	// like a dead node (it appears in the report with an "excluded"
	// reason). 0 disables exclusion.
	MinThroughput float64
	// SlowNodeGrace is the observation window before a slow successor
	// is excluded (default 10 s when MinThroughput is set).
	SlowNodeGrace time.Duration

	// Rerank enables Snow-style self-reorganization on tree topologies:
	// every node continuously measures its per-link drain rates, reports
	// them to node 0, and node 0 re-ranks the dissemination tree
	// mid-broadcast — slow interiors sink to the leaves, fast nodes rise
	// toward the root. Requires a "tree:<k>" topology. Where §V exclusion
	// is binary (a slow node is cut), demotion is free: the slow node
	// keeps receiving, it just stops throttling a subtree. Re-ranking
	// sessions never splice (rate measurement needs user-space writes,
	// and REORG frames interleave with DATA).
	Rerank bool `json:"Rerank,omitempty"`
	// RerankInterval is the cadence of the rate-report spokes receivers
	// play against node 0 (default 500 ms).
	RerankInterval time.Duration `json:"RerankInterval,omitempty"`
	// RerankBoost is the hysteresis factor: an interior node is only
	// demoted while RerankBoost× its measured bottleneck still trails the
	// fastest link observed anywhere (default 2). Higher values demand
	// stronger evidence before the tree moves.
	RerankBoost float64 `json:"RerankBoost,omitempty"`
	// RerankMinInterval is the minimum spacing between executed
	// migrations (default 2×RerankInterval); per-node cooldowns are twice
	// this again. Together they bound migration churn.
	RerankMinInterval time.Duration `json:"RerankMinInterval,omitempty"`

	// Clock is the node's time source: deadlines, retry pacing and
	// epilogue timers all go through it, so deterministic tests can
	// substitute a fake. Nil selects the system clock. It is local
	// configuration, never serialised in agent start messages.
	Clock Clock `json:"-"`
}

// withDefaults fills in zero fields with production defaults.
func (o Options) withDefaults() Options {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.WindowChunks <= 0 {
		o.WindowChunks = 64
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 4 << 20
	}
	if o.PoolChunks <= 0 {
		o.PoolChunks = o.WindowChunks + poolSlack
	}
	def(&o.WriteStallTimeout, time.Second) // the paper's one-second timer
	def(&o.PingTimeout, 500*time.Millisecond)
	def(&o.DialTimeout, 5*time.Second)
	if o.DialRetries <= 0 {
		o.DialRetries = 2
	}
	def(&o.GetTimeout, 10*time.Second)
	def(&o.FetchTimeout, 2*time.Minute)
	def(&o.ReportTimeout, time.Minute)
	def(&o.UpstreamIdleTimeout, time.Minute)
	if o.MinThroughput > 0 {
		def(&o.SlowNodeGrace, 10*time.Second)
	}
	if o.Rerank {
		def(&o.RerankInterval, 500*time.Millisecond)
		if o.RerankBoost <= 1 {
			o.RerankBoost = 2
		}
		def(&o.RerankMinInterval, 2*o.RerankInterval)
	}
	if o.DatagramBytes <= 0 {
		o.DatagramBytes = 1200
	}
	if o.Clock == nil {
		o.Clock = SystemClock()
	}
	return o
}

// PoolReservation is the pooled-buffer byte budget a session running with
// these options asks its engine for — the admission reservation the control
// plane submits before any data connection is dialed.
func (o Options) PoolReservation() int64 {
	d := o.withDefaults()
	return int64(d.ChunkSize) * int64(d.PoolChunks)
}

// Validate rejects configurations the engine cannot run with.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.ChunkSize > maxFrameData {
		return fmt.Errorf("kascade: chunk size %d exceeds frame limit %d", o.ChunkSize, maxFrameData)
	}
	if o.WindowChunks < 2 {
		return fmt.Errorf("kascade: window of %d chunks is too small to pipeline", o.WindowChunks)
	}
	return nil
}

// pollInterval is the cadence at which blocked frame reads wake up to check
// for replacement connections or cancellation.
func (o Options) pollInterval() time.Duration {
	p := o.WriteStallTimeout / 4
	if p < 5*time.Millisecond {
		p = 5 * time.Millisecond
	}
	if p > 250*time.Millisecond {
		p = 250 * time.Millisecond
	}
	return p
}

// SessionID identifies one broadcast among the many a shared engine (or
// agent process) may carry concurrently. It travels in every HELLO v2
// frame so the accept path can route connections to the right pipeline.
// The zero ID is the v1-compatible default session: nodes running under it
// emit byte-identical v1 frames, and v1 dialers land on it.
type SessionID uint64

// Peer identifies one pipeline member.
type Peer struct {
	// Name is the host name (used in reports and for fabric addressing).
	Name string
	// Addr is the node's listen address, "host:port".
	Addr string
	// PacketAddr is the node's bound datagram address for the "udp"
	// transport; empty on TCP plans.
	PacketAddr string `json:"PacketAddr,omitempty"`
}

// Plan is the shared description of one broadcast: the ordered pipeline
// (element 0 is the sending node), the protocol options, and the broadcast
// session ID. Every node receives the same plan.
type Plan struct {
	Peers []Peer
	Opts  Options
	// Session identifies this broadcast on shared data listeners. 0 keeps
	// the node on the v1 wire format (single-broadcast processes).
	Session SessionID
	// Transport selects the data plane: "" or TransportTCP is the chunked
	// relay pipeline over stream connections; TransportUDP is the batched
	// datagram fan-out (node 0 sends to every receiver directly, losses are
	// repaired with PGET range fetches over TCP). Control traffic — HELLO,
	// PGET repair, the completion ring report — always runs over the stream
	// transport.
	Transport string `json:"Transport,omitempty"`
	// Topology selects the dissemination shape over the ordered peers:
	// "" or TopologyChain is the paper's linear pipeline (§III-A);
	// "tree:<k>" arranges the same order as a BFS k-ary tree (every relay
	// feeds up to k children from one replay window); and
	// TopologyScatterAllgather names the MPI-style composite, which is
	// dispatched outside core.Node (see internal/mpibcast). Like
	// Transport, it travels in PREPARE so every host runs the same shape.
	Topology string `json:"Topology,omitempty"`
}

// Data-plane transports carried in Plan.Transport.
const (
	TransportTCP = "tcp"
	TransportUDP = "udp"
)

// validateShape checks the transport × topology × options combination —
// the shape rules shared by SessionConfig.Validate (before addresses are
// bound) and Plan.Validate (resolved wire plans). Address checks stay
// with the caller: only resolved plans have addresses worth validating.
func validateShape(transport, topology string, opts Options) error {
	switch transport {
	case "", TransportTCP, TransportUDP:
	default:
		return fmt.Errorf("kascade: unknown transport %q", transport)
	}
	if topology != TopologyScatterAllgather {
		k, err := TreeArity(topology)
		if err != nil {
			return err
		}
		if k > 1 && transport == TransportUDP {
			return fmt.Errorf("kascade: udp transport already fans out from the sender; it cannot carry topology %q", topology)
		}
		if opts.Rerank && k <= 1 {
			return fmt.Errorf("kascade: rerank requires a tree topology (tree:<k>, k >= 2), not %q", topology)
		}
	} else if transport == TransportUDP {
		return fmt.Errorf("kascade: udp transport cannot carry topology %q", topology)
	} else if opts.Rerank {
		return fmt.Errorf("kascade: rerank requires a tree topology (tree:<k>, k >= 2), not %q", topology)
	}
	return opts.Validate()
}

// Validate checks the plan is runnable.
func (p *Plan) Validate() error {
	if len(p.Peers) == 0 {
		return fmt.Errorf("kascade: empty plan")
	}
	if err := validateShape(p.Transport, p.Topology, p.Opts); err != nil {
		return err
	}
	if p.Transport == TransportUDP {
		for i, peer := range p.Peers {
			if peer.PacketAddr == "" {
				return fmt.Errorf("kascade: udp transport: peer %d (%s) has no packet address", i, peer.Name)
			}
		}
	}
	seen := make(map[string]bool, len(p.Peers))
	for i, peer := range p.Peers {
		if peer.Addr == "" {
			return fmt.Errorf("kascade: peer %d (%s) has no address", i, peer.Name)
		}
		if seen[peer.Addr] {
			return fmt.Errorf("kascade: duplicate peer address %s", peer.Addr)
		}
		seen[peer.Addr] = true
	}
	return nil
}
