package core

import (
	"context"
	"fmt"
	"time"
)

// This file is the engine's admission policy: the decision, taken before a
// session touches the data plane, of whether its pooled-memory reservation
// fits the process right now. PR 3 left true overload implicit — a session
// whose reservation did not fit was silently granted a floor-sized pool —
// which kept broadcasts correct but slow, invisible to the sender, and
// unbounded in number. Admission makes the three possible answers explicit:
//
//   - Accepted: the reservation is debited from the global budget at once
//     and held (ownerless) until the session's node registers and adopts it.
//   - Queued: the reservation does not fit now but will once running
//     sessions release theirs; the ticket parks until budget frees on a
//     session end (the release hook) or the queue deadline passes.
//   - Refused: the reservation can never fit (larger than the whole
//     budget), the session ID is already taken, the queue is full, or the
//     engine is closed. Refusals carry a reason and surface to senders as
//     a typed *AdmissionError before any data connection is dialed.

// AdmitDecision is the engine's answer to an admission request.
type AdmitDecision int

const (
	// AdmitAccepted means the reservation is granted and debited.
	AdmitAccepted AdmitDecision = iota + 1
	// AdmitQueued means the session is parked until budget frees or the
	// queue deadline passes; wait on the ticket for the final answer.
	AdmitQueued
	// AdmitRefused means the session may not run; the ticket carries the
	// reason.
	AdmitRefused
)

func (d AdmitDecision) String() string {
	switch d {
	case AdmitAccepted:
		return "accepted"
	case AdmitQueued:
		return "queued"
	case AdmitRefused:
		return "refused"
	default:
		return fmt.Sprintf("AdmitDecision(%d)", int(d))
	}
}

// AdmissionError is the typed error a sender receives when the engine
// refuses (or times out queueing) a session, before any data connection for
// it is dialed.
type AdmissionError struct {
	Session SessionID
	Reason  string
	// Queued reports that the session was parked in the admission queue
	// first and the refusal is a queue timeout, not an outright no.
	Queued bool
}

func (e *AdmissionError) Error() string {
	if e.Queued {
		return fmt.Sprintf("kascade: session %d refused after queueing: %s", e.Session, e.Reason)
	}
	return fmt.Sprintf("kascade: session %d refused: %s", e.Session, e.Reason)
}

// Ticket is the result of one Admit call. For AdmitQueued tickets, Wait
// blocks until the queue resolves; Accepted and Refused tickets are final
// immediately.
type Ticket struct {
	Session  SessionID
	Deadline time.Time // queue deadline (zero unless queued)

	e     *Engine
	ready chan struct{} // closed when a queued ticket resolves

	// Final decision + reason. For queued tickets these fields are written
	// (under e.mu) before ready closes; otherwise they are set at creation
	// and never change.
	decision AdmitDecision
	reason   string
	queued   bool // ticket went through the queue (for error typing)
}

// Decision returns the ticket's current decision; AdmitQueued until a
// queued ticket resolves.
func (t *Ticket) Decision() AdmitDecision {
	if t.ready == nil {
		return t.decision
	}
	select {
	case <-t.ready:
		return t.finalDecision()
	default:
		return AdmitQueued
	}
}

func (t *Ticket) finalDecision() AdmitDecision {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	return t.decision
}

// Err converts a refused ticket into its typed error; nil when the ticket
// is (or became) accepted, and nil while still queued.
func (t *Ticket) Err() error {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.decision != AdmitRefused {
		return nil
	}
	return &AdmissionError{Session: t.Session, Reason: t.reason, Queued: t.queued}
}

// Wait blocks until a queued ticket resolves (budget freed, queue deadline
// passed, or engine closed) and returns the final decision. Accepted and
// refused tickets return immediately. Cancelling the context abandons the
// admission request: the ticket is withdrawn from the queue and the wait
// returns AdmitRefused with the context's error.
func (t *Ticket) Wait(ctx context.Context) (AdmitDecision, error) {
	if t.ready == nil {
		return t.decision, t.Err()
	}
	select {
	case <-t.ready:
		return t.finalDecision(), t.Err()
	case <-ctx.Done():
		// Cancel withdraws the ticket whatever its state: even if the
		// pump accepted concurrently, the (still ownerless) grant has
		// just been given back, so the only truthful answer is refusal.
		t.Cancel()
		return AdmitRefused, ctx.Err()
	}
}

// Cancel withdraws a pending admission: a queued ticket leaves the queue,
// and an accepted ticket whose session never registered gives its
// reservation back. Safe to call at any point in the ticket's life; it is
// a no-op once the session's node has registered, and — because grants
// remember the ticket that created them — a stale Cancel can never revoke
// a NEWER admission that reused the same session ID.
func (t *Ticket) Cancel() {
	t.e.cancelAdmission(t)
}

// admitWaiter is one queued admission in Engine.admitQ: FIFO within its
// class, weighted round-robin across classes at the pump.
type admitWaiter struct {
	ticket      *Ticket
	reservation int64
	class       string
	weight      int
	timer       Timer
}

// Admit decides whether a session asking for `reservation` bytes of pooled
// payload buffers may run on this engine, under the default (weight-1)
// class. See AdmitClass.
func (e *Engine) Admit(sid SessionID, reservation int64) *Ticket {
	return e.AdmitClass(sid, reservation, "")
}

// AdmitClass decides whether a session asking for `reservation` bytes of
// pooled payload buffers may run on this engine. Reservation normally
// comes from Options.PoolReservation of the session's protocol options;
// class names the priority class (EngineOptions.Classes) that orders the
// admission queue and later scales the session's data-plane quanta. The
// returned ticket is final for AdmitAccepted and AdmitRefused; for
// AdmitQueued the caller waits on it. An accepted reservation is held
// against the budget (ownerless) until the session's node registers and
// adopts it; callers that accept but never start must Cancel the ticket
// (lease expiry does this in the agent).
func (e *Engine) AdmitClass(sid SessionID, reservation int64, class string) *Ticket {
	class = e.canonicalClass(class)
	e.mu.Lock()
	defer e.mu.Unlock()

	refuse := func(reason string) *Ticket {
		e.refusedTotal++
		e.classCounterLocked(class).refused++
		return &Ticket{Session: sid, e: e, decision: AdmitRefused, reason: reason}
	}
	switch {
	case e.closed:
		return refuse("engine is closed")
	case sid == 0:
		return refuse("the default (v1) session cannot be admitted explicitly")
	case reservation <= 0:
		return refuse(fmt.Sprintf("non-positive reservation %d B", reservation))
	case e.isKnownLocked(sid):
		return refuse("session already registered or queued on this engine")
	case reservation > e.opts.MemBudget:
		return refuse(fmt.Sprintf("reservation of %d B exceeds the engine budget of %d B", reservation, e.opts.MemBudget))
	}

	// No bypass of the pump: while anyone is queued, newcomers queue
	// behind them even if their smaller reservation would fit right now —
	// otherwise a stream of small sessions starves a large queued one
	// forever. (Ordering among the queued is the pump's weighted
	// round-robin, FIFO within a class.)
	if len(e.admitQ) == 0 && e.fitsLocked(reservation) {
		t := &Ticket{Session: sid, e: e, decision: AdmitAccepted}
		e.reserved[sid] = &grant{owner: nil, bytes: reservation, ticket: t, class: class}
		e.used += reservation
		e.admittedTotal++
		e.classCounterLocked(class).admitted++
		return t
	}

	if len(e.admitQ) >= e.opts.MaxAdmitQueue {
		return refuse(fmt.Sprintf("admission queue full (%d waiting)", len(e.admitQ)))
	}
	deadline := e.clk.Now().Add(e.opts.AdmitQueueTimeout)
	t := &Ticket{
		Session:  sid,
		Deadline: deadline,
		e:        e,
		ready:    make(chan struct{}),
		decision: AdmitQueued,
		queued:   true,
	}
	w := &admitWaiter{ticket: t, reservation: reservation, class: class, weight: e.sched.weightFor(class)}
	w.timer = e.clk.NewTimer(e.opts.AdmitQueueTimeout)
	e.admitQ = append(e.admitQ, w)
	e.queuedTotal++
	e.classCounterLocked(class).queued++
	go func() {
		defer w.timer.Stop()
		select {
		case <-w.timer.C():
			e.expireAdmission(w)
		case <-t.ready:
		}
	}()
	return t
}

// fitsLocked reports whether a reservation fits the budget and session cap
// right now. Caller holds e.mu.
func (e *Engine) fitsLocked(reservation int64) bool {
	if e.opts.MaxSessions > 0 && len(e.reserved) >= e.opts.MaxSessions {
		return false
	}
	return e.used+reservation <= e.opts.MemBudget
}

// Serves reports whether the engine currently carries the session —
// reserved (pending or registered) or parked in the admission queue.
// Late-join front ends use it to refuse a join through an agent that is
// already a member of the broadcast, before any wire work happens.
func (e *Engine) Serves(sid SessionID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.isKnownLocked(sid)
}

// isKnownLocked reports whether sid is reserved (pending or registered) or
// queued. Caller holds e.mu.
func (e *Engine) isKnownLocked(sid SessionID) bool {
	if _, ok := e.reserved[sid]; ok {
		return true
	}
	for _, w := range e.admitQ {
		if w.ticket.Session == sid {
			return true
		}
	}
	return false
}

// pumpAdmitQueueLocked re-examines the admission queue after budget freed
// (a session released its reservation — the engine's release hook).
//
// Selection is class-ordered: smooth weighted round-robin across the
// classes present in the queue, FIFO within each class. A high-weight
// class is offered proportionally more admission turns, but every class
// keeps taking turns, so the low-weight one is starvation-free. When a
// chosen head does not fit, it becomes the sticky head-of-line claimant:
// the pump admits NOTHING else until it fits (or leaves the queue), so
// every byte of freed budget accumulates for it — the strict-FIFO
// guarantee that a large reservation cannot be starved by a stream of
// small ones slipping past, carried over across classes. The spent pick
// keeps the round-robin honest (refunding it would let a blocked
// high-weight class outgrow everyone). Caller holds e.mu; resolved
// tickets are returned so their channels can be closed after unlock (Wait
// callers run arbitrary code).
func (e *Engine) pumpAdmitQueueLocked() []*Ticket {
	var resolved []*Ticket
	for len(e.admitQ) > 0 {
		if e.closed {
			w := e.admitQ[0]
			e.admitQ = e.admitQ[1:]
			if e.admitHol == w {
				e.admitHol = nil
			}
			w.ticket.decision = AdmitRefused
			w.ticket.reason = "engine closed while queued"
			e.refusedTotal++
			e.classCounterLocked(w.class).refused++
			resolved = append(resolved, w.ticket)
			continue
		}
		w := e.admitHol
		idx := -1
		if w != nil {
			for i, q := range e.admitQ {
				if q == w {
					idx = i
					break
				}
			}
			if idx < 0 {
				// The claimant expired or was cancelled off-queue.
				e.admitHol = nil
				continue
			}
		} else {
			idx = e.pickAdmitLocked()
			w = e.admitQ[idx]
		}
		if !e.fitsLocked(w.reservation) {
			// Head-block: stop pumping, and let freed budget accumulate
			// for this claimant until it fits.
			e.admitHol = w
			break
		}
		e.admitHol = nil
		e.reserved[w.ticket.Session] = &grant{owner: nil, bytes: w.reservation, ticket: w.ticket, class: w.class}
		e.used += w.reservation
		w.ticket.decision = AdmitAccepted
		e.admittedTotal++
		e.classCounterLocked(w.class).admitted++
		e.admitQ = append(e.admitQ[:idx], e.admitQ[idx+1:]...)
		resolved = append(resolved, w.ticket)
	}
	return resolved
}

// pickAdmitLocked selects the queue index of the next admission candidate
// by smooth weighted round-robin over the classes present: every class
// with waiters earns its weight in credit, the richest class wins the turn
// and pays the total back. FIFO within the winning class: its first waiter
// is the candidate. Caller holds e.mu with len(admitQ) > 0.
func (e *Engine) pickAdmitLocked() int {
	first := make(map[string]int, 4) // class -> earliest queue index
	var order []string               // classes by first appearance (tie-break)
	total := 0
	for i, w := range e.admitQ {
		if _, ok := first[w.class]; !ok {
			first[w.class] = i
			order = append(order, w.class)
			total += w.weight
		}
	}
	if len(order) == 1 {
		return first[order[0]]
	}
	winner := ""
	for _, class := range order {
		e.admitRR[class] += e.admitQ[first[class]].weight
		if winner == "" || e.admitRR[class] > e.admitRR[winner] {
			winner = class
		}
	}
	e.admitRR[winner] -= total
	return first[winner]
}

// closeTickets closes resolved tickets' ready channels (outside e.mu).
func closeTickets(ts []*Ticket) {
	for _, t := range ts {
		close(t.ready)
	}
}

// expireAdmission resolves one queued waiter whose deadline passed. If it
// was the sticky head-of-line claimant, the budget it was accumulating is
// up for grabs again, so the queue pumps.
func (e *Engine) expireAdmission(w *admitWaiter) {
	e.mu.Lock()
	found := false
	for i, q := range e.admitQ {
		if q == w {
			e.admitQ = append(e.admitQ[:i], e.admitQ[i+1:]...)
			found = true
			break
		}
	}
	var resolved []*Ticket
	if found {
		w.ticket.decision = AdmitRefused
		w.ticket.reason = fmt.Sprintf("queued %v without budget freeing (queue deadline)", e.opts.AdmitQueueTimeout)
		e.refusedTotal++
		e.queueTimeouts++
		e.classCounterLocked(w.class).refused++
		if e.admitHol == w {
			e.admitHol = nil
			resolved = e.pumpAdmitQueueLocked()
		}
	}
	e.mu.Unlock()
	if found {
		close(w.ticket.ready)
	}
	closeTickets(resolved)
}

// cancelAdmission withdraws one ticket's pending admission: a queued
// waiter leaves the queue; an accepted-but-unregistered (ownerless)
// reservation created by THIS ticket returns to the budget, which may in
// turn admit queued waiters. Reservations owned by a running node, and
// reservations created by a different (newer) admission of the same
// session ID, are untouched.
func (e *Engine) cancelAdmission(t *Ticket) {
	e.mu.Lock()
	var cancelled *Ticket
	for i, q := range e.admitQ {
		if q.ticket == t {
			e.admitQ = append(e.admitQ[:i], e.admitQ[i+1:]...)
			if e.admitHol == q {
				e.admitHol = nil
			}
			q.ticket.decision = AdmitRefused
			q.ticket.reason = "admission cancelled"
			cancelled = q.ticket
			break
		}
	}
	var resolved []*Ticket
	if r, ok := e.reserved[t.Session]; ok && r.owner == nil && r.ticket == t {
		delete(e.reserved, t.Session)
		e.used -= r.bytes
		resolved = e.pumpAdmitQueueLocked()
	} else if cancelled != nil {
		// A withdrawn waiter (possibly the sticky claimant) may unblock
		// the rest of the queue.
		resolved = e.pumpAdmitQueueLocked()
	}
	e.mu.Unlock()
	if cancelled != nil {
		close(cancelled.ready)
	}
	closeTickets(resolved)
}
