package core

import (
	"sort"
	"sync"
	"time"
)

// Clock is the engine's single source of time: every deadline, retry pause
// and epilogue timer in the protocol goes through it. Production nodes use
// the system clock; deterministic tests inject a FakeClock so recovery
// paths that otherwise wait on wall-clock timers (upstream-idle, report
// delivery, dial retry pacing) run without sleeping.
type Clock interface {
	// Now returns the current time. It feeds both elapsed-time measurement
	// and the absolute deadlines handed to transport connections, so a
	// non-system Clock must only be combined with transports that share
	// its notion of time (or with paths that never hit those deadlines).
	Now() time.Time
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// NewTimer returns a stoppable single-shot timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the stoppable half of Clock.NewTimer.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// SystemClock returns the wall-clock Clock every node uses by default.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (systemClock) NewTimer(d time.Duration) Timer         { return sysTimer{time.NewTimer(d)} }

type sysTimer struct{ t *time.Timer }

func (t sysTimer) C() <-chan time.Time { return t.t.C }
func (t sysTimer) Stop() bool          { return t.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic tests: timers
// fire only when Advance crosses their deadline, so a test drives an
// upstream-idle timeout or a retry backoff in microseconds of real time.
// Do not combine it with real network deadlines (see Clock.Now).
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeTimer
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C()
}

// Sleep blocks until another goroutine advances the clock past d.
func (c *FakeClock) Sleep(d time.Duration) { <-c.After(d) }

func (c *FakeClock) NewTimer(d time.Duration) Timer {
	t := &fakeTimer{ch: make(chan time.Time, 1)}
	c.mu.Lock()
	t.clock = c
	t.at = c.now.Add(d)
	if d <= 0 {
		t.fired = true
		t.ch <- c.now
	} else {
		c.waiters = append(c.waiters, t)
	}
	c.mu.Unlock()
	return t
}

// Advance moves the clock forward, firing every timer whose deadline is
// crossed, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeTimer
	remaining := c.waiters[:0]
	for _, t := range c.waiters {
		if !t.at.After(c.now) {
			due = append(due, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	c.waiters = remaining
	now := c.now
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		if !t.stopped {
			t.fired = true
			t.ch <- now
		}
	}
	c.mu.Unlock()
}

type fakeTimer struct {
	clock   *FakeClock
	at      time.Time
	ch      chan time.Time
	fired   bool
	stopped bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}
