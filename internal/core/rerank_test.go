package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"kascade/internal/transport"
)

// rerankOpts are tree options with re-ranking switched on and the planner
// running fast enough for short test payloads.
func rerankOpts() Options {
	return Options{
		ChunkSize:         8 << 10,
		WindowChunks:      8,
		Rerank:            true,
		RerankInterval:    50 * time.Millisecond,
		RerankMinInterval: 100 * time.Millisecond,
	}
}

// runRerankSession starts a rerank-enabled tree broadcast over an in-memory
// fabric, letting the caller shape links before the first byte flows, and
// returns the result plus node 0's final view state.
func runRerankSession(t *testing.T, n, k, size int, shape func(*transport.Fabric)) (*SessionResult, []byte, [][]byte, uint64, []int, uint64) {
	t.Helper()
	fabric := transport.NewFabric(1 << 22)
	peers := make([]Peer, n)
	sinks := make([]*collectSink, n)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("n%d:7000", i)}
		sinks[i] = &collectSink{}
	}
	if shape != nil {
		shape(fabric)
	}
	payload := testPayload(size, 0x5e0e)

	sess, err := StartSession(context.Background(), SessionConfig{
		Peers:      peers,
		Opts:       rerankOpts(),
		Topology:   TopologyTree(k),
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  bytes.NewReader(payload),
		InputSize:  int64(size),
	})
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	root := sess.Nodes[0]
	res, err := sess.Wait()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	version, occupants, migrations, _ := root.ReorgState()
	outs := make([][]byte, n)
	for i, s := range sinks {
		outs[i] = s.Bytes()
	}
	return res, payload, outs, version, occupants, migrations
}

// TestRerankHomogeneous checks that a rerank-enabled broadcast over uniform
// links is simply a correct tree broadcast: every receiver gets the payload
// bit-perfect and no peer is reported failed.
func TestRerankHomogeneous(t *testing.T) {
	const size = 512 << 10
	res, payload, outs, _, occupants, _ := runRerankSession(t, 8, 2, size, nil)
	if res.Report.TotalBytes != uint64(size) {
		t.Fatalf("TotalBytes = %d, want %d", res.Report.TotalBytes, size)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", res.Report.Failures)
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[i], payload) {
			t.Fatalf("node %d payload mismatch: got %d bytes", i, len(outs[i]))
		}
	}
	if len(occupants) != 8 {
		t.Fatalf("view has %d occupants, want 8", len(occupants))
	}
}

// TestRerankDemotesSlowInterior throttles every link out of an interior node
// and checks the planner demotes it: the broadcast still completes
// bit-perfect everywhere, at least one migration fires, and the slow node
// finishes the run in a leaf slot of the final view.
func TestRerankDemotesSlowInterior(t *testing.T) {
	const (
		n    = 8
		k    = 2
		size = 1 << 20
		slow = 128 << 10 // bytes/s out of the victim: interior duty is ~60x too slow
	)
	victim := 1
	res, payload, outs, version, occupants, migrations := runRerankSession(t, n, k, size, func(f *transport.Fabric) {
		p := transport.Profile{Rate: slow}
		for i := 0; i < n; i++ {
			if i != victim {
				f.SetLinkProfile(fmt.Sprintf("n%d", victim), fmt.Sprintf("n%d", i), p)
			}
		}
	})
	if res.Report.TotalBytes != uint64(size) {
		t.Fatalf("TotalBytes = %d, want %d", res.Report.TotalBytes, size)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", res.Report.Failures)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(outs[i], payload) {
			t.Fatalf("node %d payload mismatch: got %d bytes, want %d", i, len(outs[i]), len(payload))
		}
	}
	if migrations == 0 {
		t.Fatalf("no migrations executed; view version %d, occupants %v", version, occupants)
	}
	slot := -1
	for s, node := range occupants {
		if node == victim {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatalf("victim %d missing from final view %v", victim, occupants)
	}
	if k*slot+1 < n {
		t.Fatalf("victim %d still interior at slot %d of final view %v (version %d, %d migrations)",
			victim, slot, occupants, version, migrations)
	}
}
