package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"kascade/internal/transport"
)

// serveOutcome classifies how one successor-serving attempt ended.
type serveOutcome int

const (
	outcomeOK       serveOutcome = iota // sub-step succeeded, keep going
	outcomeDone                         // full lifecycle completed (PASSED read)
	outcomeRetry                        // transient failure, redial same successor
	outcomeDead                         // successor confirmed dead, advance
	outcomeTerminal                     // node-level failure, stop
	outcomeSuperseded                   // rerank: the target adopted a better parent, release it
)

// maxRetriesPerSuccessor bounds redials of a live-but-flaky successor
// before it is treated as dead.
const maxRetriesPerSuccessor = 5

// maxBatchChunks bounds the entry count of one vectored DATA write
// independently of Options.MaxBatchBytes, so tiny chunk sizes cannot build
// degenerate iovecs.
const maxBatchChunks = 256

// runManager drives the downstream side of the node: it serves the current
// successor from the store, detects successor failures, skips dead nodes
// (§III-D2), and runs the END → REPORT → PASSED epilogue (Fig 5). When no
// alive successor remains, the node is the pipeline tail and closes the
// ring by delivering the report to node 0 (§III-A). Tree plans (treeK > 1)
// serve several children from the same window and dispatch to the tree
// manager (tree.go); the chain below is the k = 1 special case.
func (n *Node) runManager(ctx context.Context) error {
	if n.treeK > 1 {
		return n.runTreeManager(ctx)
	}
	succ := n.cfg.Index + 1
	retries := 0
	cur := &childCursor{st: n.st} // sole consumer: low-water goes straight to the store
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		for succ < len(n.peers()) && n.isFailedPeer(succ) {
			succ++
			retries = 0
		}
		if succ >= len(n.peers()) {
			return n.finishAsTail(ctx)
		}
		outcome, err := n.serveSuccessor(ctx, succ, cur, false)
		switch outcome {
		case outcomeDone:
			n.markPassed()
			return nil
		case outcomeRetry:
			retries++
			if retries >= maxRetriesPerSuccessor {
				n.recordFailure(succ, fmt.Sprintf("gave up after %d reconnects", retries), n.st.Head())
				retries = 0
			}
		case outcomeDead:
			retries = 0
			// recordFailure already happened at the detection site;
			// the skip loop above advances past it.
		case outcomeTerminal:
			return err
		default:
			return fmt.Errorf("kascade: internal: unexpected outcome %d", outcome)
		}
	}
}

// serveSuccessor runs one full attempt against the successor at pipeline
// index succ: dial, handshake, answer its GET, stream DATA, send END/QUIT,
// forward the REPORT, and collect PASSED. cur tracks this successor's
// progress for the replay window's low-water mark — directly on the chain,
// through the node's cursor tracker on trees (where the window must serve
// the slowest of k children). The caller owns the PASSED bookkeeping:
// outcomeDone only means this successor's lifecycle completed.
//
// quiet suppresses failure naming until the successor proves it is in a
// serving relationship with us (its GET arrives): re-ranking managers dial
// adoptively during the report phase, when a target may simply have
// finished its lifecycle and detached — that is not a death.
func (n *Node) serveSuccessor(ctx context.Context, succ int, cur *childCursor, quiet bool) (serveOutcome, error) {
	peer := n.peers()[succ]
	conn, err := n.dialPeer(peer.Addr)
	if err != nil {
		if quiet || n.rerankFinished(succ) {
			// Finished nodes close their listener; a refused dial to one
			// whose ring spoke already landed at node 0 is a completed
			// lifecycle, not a death.
			return outcomeDead, nil
		}
		n.recordFailure(succ, fmt.Sprintf("dial failed: %v", err), n.st.Head())
		return outcomeDead, nil
	}
	w := n.newWire(conn)
	w.out = &stallWriter{
		conn:   conn,
		now:    n.clk.Now,
		stall:  n.opts.WriteStallTimeout,
		budget: n.opts.FetchTimeout,
		probe:  func() bool { return n.probe(peer.Addr) },
	}
	defer w.close()

	if werr := w.writeHelloFor(RoleData, n.cfg.Index, n.sid); werr != nil {
		return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
	}
	var sentView uint64
	if n.rerank {
		// Proof frame: the view that motivated this dial, so the child's
		// acceptReplacement judges us against it instead of a stale one.
		v := n.curView()
		if werr := n.writeView(w, v); werr != nil {
			return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
		}
		sentView = v.version
	}
	off, out, err := n.readGet(ctx, w, succ, peer.Addr, n.opts.GetTimeout, quiet)
	if out != outcomeOK {
		return out, err
	}
	quiet = false // the GET arrived: a real serving relationship from here on
	cur.reset(off)

	// §V extension: measure the successor's drain rate (time actually
	// spent inside writes, so a data-starved pipeline is never mistaken
	// for a slow node) and exclude it when MinThroughput is configured.
	// The same busy-time samples feed the link's EWMA meter (the rerank
	// planner's evidence) and the engine scheduler's adaptive quanta.
	meter := n.rates.meter(succ)
	var window rateWindow

	// scratch backs the direct-path batch; scheduled turns arrive with
	// their own claimed batch. Either way the chunks come back retained
	// and are released right after the vectored write. Sized to the
	// largest batch the byte cap allows so it never regrows per batch.
	batchCap := n.opts.MaxBatchBytes/n.opts.ChunkSize + 1
	if batchCap > maxBatchChunks {
		batchCap = maxBatchChunks
	}
	if batchCap < 1 {
		batchCap = 1
	}
	scratch := make([]*chunk, 0, batchCap)
	release := func(cs []*chunk) {
		for i, c := range cs {
			c.release()
			cs[i] = nil
		}
	}

	// noSplice remembers a permanent splice decline for this connection
	// (incapable transport, broken splice, stream over), so the steady
	// pooled path pays no per-batch rendezvous.
	noSplice := n.splice == nil

streamLoop:
	for {
		if cerr := ctx.Err(); cerr != nil {
			return outcomeTerminal, cerr
		}
		if n.rerank {
			// Piggyback new views on the data stream: children learn the
			// plan from their parent before the batch that follows it.
			if v := n.curView(); v.version > sentView {
				if werr := n.writeView(w, v); werr != nil {
					return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
				}
				sentView = v.version
			}
		}
		if !noSplice && off >= n.st.Head() {
			// Fully caught up: offer the upstream receiver a kernel
			// pass-through span instead of parking in ChunkAt. The offer
			// resolves on the next inbound frame (or terminal condition).
			moved, res, serr := n.offerSplice(ctx, off, conn)
			if moved > 0 {
				off += moved
				cur.advance(off)
			}
			if serr != nil {
				return n.classifyConnErr(ctx, serr, succ, peer.Addr, quiet)
			}
			if cerr := ctx.Err(); cerr != nil {
				return outcomeTerminal, cerr
			}
			if res.noRetry {
				noSplice = true
			}
			if res.engaged {
				continue // re-offer while still caught up
			}
			// Transient decline: drain what the pooled path has.
		}
		batch, batchBytes, cerr := n.nextBatch(off, scratch[:0])
		var fe *ForgetError
		switch {
		case cerr == nil:
			wStart := n.clk.Now()
			werr := w.writeDataBatch(batch)
			busy := n.clk.Now().Sub(wStart)
			release(batch)
			if werr != nil {
				return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
			}
			off += uint64(batchBytes)
			cur.advance(off)
			meter.sample(batchBytes, busy)
			n.sentry.observeRate(meter.rate())
			window.observe(batchBytes, busy, n.opts.SlowNodeGrace)
			if rate, exclude := window.cull(n.opts.SlowNodeGrace, n.opts.MinThroughput); exclude {
				// The paper's §V malfunctioning-node case: tell
				// the slow node to step aside and route around
				// it like a failure.
				_ = w.writeQuit(QuitExcluded)
				n.recordFailure(succ, fmt.Sprintf(
					"excluded: draining %.0f B/s, below the %.0f B/s threshold",
					rate, n.opts.MinThroughput), off)
				return outcomeDead, nil
			}
		case errors.As(cerr, &fe):
			// The successor resumed below our window: answer FORGET
			// and wait for its re-GET once it fetched the gap from
			// node 0 (§III-D2).
			if werr := w.writeForget(fe.Base); werr != nil {
				return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
			}
			newOff, out, gerr := n.readGet(ctx, w, succ, peer.Addr, n.opts.FetchTimeout, quiet)
			if out != outcomeOK {
				return out, gerr
			}
			off = newOff
			cur.reset(off)
		case cerr == io.EOF:
			end, _ := n.st.End()
			if werr := w.writeEnd(end); werr != nil {
				return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
			}
			break streamLoop
		case errors.Is(cerr, ErrQuit):
			// User interruption: anticipated end of stream; the
			// report still follows (§III-C).
			if werr := w.writeQuit(QuitUser); werr != nil {
				return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
			}
			break streamLoop
		case errors.Is(cerr, ErrExcluded):
			// This node was excluded (§V): step aside silently; the
			// excluding predecessor adopts our successor, so no QUIT
			// cascade.
			return outcomeTerminal, cerr
		default:
			// Abandon or internal shutdown: cascade QUIT downstream
			// (best effort) and stop.
			_ = w.writeQuit(QuitAbandon)
			return outcomeTerminal, cerr
		}
	}

	rep, rerr := n.awaitReport(ctx)
	if rerr != nil {
		return outcomeTerminal, rerr
	}
	if werr := w.writeReport(rep); werr != nil {
		return n.classifyConnErr(ctx, werr, succ, peer.Addr, quiet)
	}
	out, err = n.expectType(ctx, w, succ, peer.Addr, MsgPassed, n.opts.ReportTimeout, quiet)
	if out != outcomeOK {
		return out, err
	}
	return outcomeDone, nil
}

// nextBatch produces the next forwardable chunk batch starting at off.
// Engine-attached nodes park here until the engine's weighted scheduler
// hands them a turn — a claimed chunk batch, or the store's terminal
// condition — so a host full of overlapping sessions wakes each forwarder
// once per batch instead of once per chunk. Nodes owning their listener
// (and sessions whose engine shut down mid-stream) block on the store
// directly and coalesce whatever is buffered, exactly the old hot path.
// The returned chunks are retained; the caller releases them after the
// write.
func (n *Node) nextBatch(off uint64, scratch []*chunk) ([]*chunk, int, error) {
	if t := n.sentry.next(off); !t.inline {
		return t.batch, t.n, t.err
	}
	first, err := n.st.ChunkAt(off)
	if err != nil {
		return nil, 0, err
	}
	// Coalesce everything already buffered behind the first chunk, up to
	// the batch budget: one writev instead of 2×k socket writes. Admit
	// another chunk only while a full-size one still fits (chunks are at
	// most ChunkSize), so the batch never overshoots the byte cap.
	batch := append(scratch, first)
	total := len(first.bytes())
	for len(batch) < maxBatchChunks && total+n.opts.ChunkSize <= n.opts.MaxBatchBytes {
		next, ok := n.st.TryChunkAt(off + uint64(total))
		if !ok {
			break
		}
		batch = append(batch, next)
		total += len(next.bytes())
	}
	return batch, total, nil
}

// finishAsTail closes the pipeline ring: the tail delivers the aggregated
// report to node 0 and unblocks the PASSED chain.
func (n *Node) finishAsTail(ctx context.Context) error {
	n.mu.Lock()
	n.tail = true
	n.mu.Unlock()
	// No successor will ever replay from this node's window.
	n.st.ReleaseAll()

	rep, err := n.awaitReport(ctx)
	if err != nil {
		return err
	}
	if n.cfg.Index == 0 {
		// Degenerate ring: every receiver is gone (or there were
		// none); the sender's own view is the final report.
		n.setRingReport(rep)
		n.markPassed()
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < n.opts.DialRetries; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if lastErr = n.deliverRingReport(rep); lastErr == nil {
			n.markPassed()
			return nil
		}
	}
	return fmt.Errorf("kascade: delivering final report to sender: %w", lastErr)
}

func (n *Node) deliverRingReport(rep *Report) error {
	c, err := n.cfg.Network.Dial(n.peers()[0].Addr, n.opts.DialTimeout)
	if err != nil {
		return err
	}
	w := n.newWire(c)
	defer w.close()
	w.setWriteDeadlineIn(n.opts.ReportTimeout)
	if err := w.writeHelloFor(RoleReport, n.cfg.Index, n.sid); err != nil {
		return err
	}
	if err := w.writeReport(rep); err != nil {
		return err
	}
	w.setReadDeadlineIn(n.opts.ReportTimeout)
	typ, err := w.readType()
	if err != nil {
		return err
	}
	if typ != MsgPassed {
		return &errProtocol{want: MsgPassed, got: typ}
	}
	return nil
}

// dialPeer dials with retries; a brief pause between attempts covers
// startup races without masking real deaths.
func (n *Node) dialPeer(addr string) (transport.Conn, error) {
	var lastErr error
	for i := 0; i < n.opts.DialRetries; i++ {
		c, err := n.cfg.Network.Dial(addr, n.opts.DialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
		n.clk.Sleep(n.opts.pollInterval())
	}
	return nil, lastErr
}

// classifyConnErr decides what a failed write/read on the successor
// connection means, using the paper's ping discipline: a ping answered
// means "alive, reconnect and resume via GET"; unanswered means dead.
// quiet withholds the failure record (report-phase adoptive dials).
func (n *Node) classifyConnErr(ctx context.Context, err error, succ int, addr string, quiet bool) (serveOutcome, error) {
	if cerr := ctx.Err(); cerr != nil {
		return outcomeTerminal, cerr
	}
	if n.rerank && !n.rerankServes(succ) {
		// The view moved this child away mid-serve: the broken
		// connection is displacement (or the child finishing under its
		// new parent), not a crash. Naming it a failure here is the
		// re-ranked tree's false-positive mode.
		return outcomeSuperseded, nil
	}
	if n.rerankFinished(succ) {
		// The child's ring spoke already landed: its lifecycle is over
		// and the broken connection is teardown, not a crash.
		return outcomeSuperseded, nil
	}
	var pd *peerDeadError
	if errors.As(err, &pd) {
		if !quiet {
			n.recordFailure(succ, pd.Error(), n.st.Head())
		}
		return outcomeDead, nil
	}
	if n.probe(addr) {
		return outcomeRetry, nil
	}
	if !quiet {
		n.recordFailure(succ, fmt.Sprintf("connection failed: %v", err), n.st.Head())
	}
	return outcomeDead, nil
}

// expectType waits for one frame of the wanted type, probing the peer on
// stalls. budget bounds the total patience with a live-but-silent peer.
func (n *Node) expectType(ctx context.Context, w *wire, succ int, addr string, want MsgType, budget time.Duration, quiet bool) (serveOutcome, error) {
	stall := n.opts.WriteStallTimeout
	remaining := budget
	for {
		if cerr := ctx.Err(); cerr != nil {
			return outcomeTerminal, cerr
		}
		w.setReadDeadlineIn(stall)
		typ, err := w.readType()
		if err == nil {
			if typ == want {
				return outcomeOK, nil
			}
			if typ == MsgQuit {
				// QUIT(excluded) on a dialed data connection means the
				// successor rejected us in favour of a closer
				// predecessor (a rejoin or post-exclusion steal
				// attempt): step aside, the successor is healthy.
				if reason, rerr := w.readQuit(); rerr == nil && reason == QuitExcluded {
					if n.rerank {
						// Under re-ranking this is the planned-migration
						// handoff: the target adopted a better parent and
						// turned our redial away. Release it — nobody is
						// excluded and nobody steps aside.
						return outcomeSuperseded, nil
					}
					n.stepAside("superseded: successor is served by a closer predecessor")
					return outcomeTerminal, ErrExcluded
				}
			}
			if !quiet {
				n.recordFailure(succ, (&errProtocol{want: want, got: typ}).Error(), n.st.Head())
			}
			return outcomeDead, nil
		}
		if transport.IsTimeout(err) {
			remaining -= stall
			if remaining <= 0 {
				if !quiet {
					n.recordFailure(succ, fmt.Sprintf("no %v within %v", want, budget), n.st.Head())
				}
				return outcomeDead, nil
			}
			if n.probe(addr) {
				continue
			}
			if !quiet {
				n.recordFailure(succ, fmt.Sprintf("stalled awaiting %v, ping unanswered", want), n.st.Head())
			}
			return outcomeDead, nil
		}
		return n.classifyConnErr(ctx, err, succ, addr, quiet)
	}
}

// readGet awaits a GET frame and returns its offset.
func (n *Node) readGet(ctx context.Context, w *wire, succ int, addr string, budget time.Duration, quiet bool) (uint64, serveOutcome, error) {
	out, err := n.expectType(ctx, w, succ, addr, MsgGet, budget, quiet)
	if out != outcomeOK {
		return 0, out, err
	}
	w.setReadDeadlineIn(n.opts.GetTimeout)
	off, rerr := w.readUint64()
	if rerr != nil {
		out, err := n.classifyConnErr(ctx, rerr, succ, addr, quiet)
		return 0, out, err
	}
	return off, outcomeOK, nil
}

// stallWriter writes to the successor connection with the paper's failure
// detector built in: a write that stalls past the timeout triggers a PING;
// an answered ping means the successor is alive (e.g. a node further down
// crashed, or the network is congested) so the write resumes where it
// stopped; an unanswered ping confirms death (§III-D1).
type stallWriter struct {
	conn   transport.Conn
	now    func() time.Time
	stall  time.Duration
	budget time.Duration // total patience with a live-but-stuck peer
	probe  func() bool

	vec    [][]byte // scratch copy of WriteBuffers input, consumed on resume
	single [1][]byte
}

func (s *stallWriter) Write(p []byte) (int, error) {
	s.single[0] = p
	n, err := s.WriteBuffers(s.single[:])
	return int(n), err
}

// WriteBuffers runs a vectored write through the same stall detector as
// Write: a timed-out batch is resumed byte-exactly from where it stopped,
// and a stall triggers the ping probe before the successor is declared
// dead. It implements transport.BuffersWriter so wire.writeDataBatch keeps
// the writev path even through the failure detector.
func (s *stallWriter) WriteBuffers(bufs [][]byte) (int64, error) {
	// Work on a scratch copy: the backend consumes entries in place as it
	// writes (the BuffersWriter contract), and a deadline can leave the
	// batch partially sent mid-slice.
	s.vec = append(s.vec[:0], bufs...)
	pending := s.vec
	var total int64
	remaining := s.budget
	for {
		for len(pending) > 0 && len(pending[0]) == 0 {
			pending = pending[1:]
		}
		if len(pending) == 0 {
			return total, nil
		}
		_ = s.conn.SetWriteDeadline(s.now().Add(s.stall))
		nn, err := transport.WriteBuffers(s.conn, pending)
		total += nn
		if err == nil {
			continue
		}
		if transport.IsTimeout(err) {
			if nn > 0 {
				remaining = s.budget // progress resets patience
			}
			remaining -= s.stall
			if remaining <= 0 {
				return total, &peerDeadError{reason: fmt.Sprintf("write made no progress for %v", s.budget)}
			}
			if s.probe() {
				continue
			}
			return total, &peerDeadError{reason: "write stalled and ping unanswered", cause: err}
		}
		return total, err
	}
}
