package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"kascade/internal/transport"
)

// ---------------------------------------------------------------------------
// Gate unit tests.

func TestSpliceGateLifecycle(t *testing.T) {
	g := &spliceGate{}
	o := &spliceOffer{resp: make(chan spliceResult, 1)}
	if ok, _ := g.post(o); !ok {
		t.Fatal("fresh gate rejected an offer")
	}
	// Only one offer may be pending.
	if ok, noRetry := g.post(&spliceOffer{}); ok || noRetry {
		t.Fatal("second offer must bounce transiently")
	}
	if got := g.take(); got != o {
		t.Fatal("take did not claim the pending offer")
	}
	if g.take() != nil {
		t.Fatal("take twice returned an offer")
	}
	// Withdraw only wins while the offer is still pending.
	if ok, _ := g.post(o); !ok {
		t.Fatal("repost rejected")
	}
	if !g.withdraw(o) {
		t.Fatal("withdraw lost with no claimant")
	}
	if g.withdraw(o) {
		t.Fatal("withdraw won twice")
	}
}

func TestSpliceGateSuspendAndClose(t *testing.T) {
	g := &spliceGate{}
	g.suspend()
	if ok, noRetry := g.post(&spliceOffer{}); ok || noRetry {
		t.Fatal("suspended gate must bounce transiently")
	}
	g.resume()
	o := &spliceOffer{resp: make(chan spliceResult, 1)}
	if ok, _ := g.post(o); !ok {
		t.Fatal("resumed gate rejected an offer")
	}
	g.close()
	select {
	case res := <-o.resp:
		if res.engaged || !res.noRetry {
			t.Fatalf("close must decline permanently, got %+v", res)
		}
	default:
		t.Fatal("close left the pending offer unresolved")
	}
	if ok, noRetry := g.post(&spliceOffer{}); ok || !noRetry {
		t.Fatal("closed gate must decline permanently")
	}
}

func TestSpliceGateResolveTransient(t *testing.T) {
	g := &spliceGate{}
	o := &spliceOffer{resp: make(chan spliceResult, 1)}
	if ok, _ := g.post(o); !ok {
		t.Fatal("post rejected")
	}
	g.resolveTransient()
	select {
	case res := <-o.resp:
		if res.engaged || res.noRetry {
			t.Fatalf("transient resolution expected, got %+v", res)
		}
	default:
		t.Fatal("resolveTransient left the offer unresolved")
	}
	if ok, _ := g.post(&spliceOffer{resp: make(chan spliceResult, 1)}); !ok {
		t.Fatal("gate must stay open after a transient resolution")
	}
}

// ---------------------------------------------------------------------------
// spliceFrame unit tests, against fake connections.

// fakeConn is an in-memory transport.Conn: reads from r, writes into w.
type fakeConn struct {
	r io.Reader
	w bytes.Buffer
}

func (c *fakeConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fakeConn) Write(p []byte) (int, error)      { return c.w.Write(p) }
func (c *fakeConn) Close() error                     { return nil }
func (c *fakeConn) SetDeadline(time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }
func (c *fakeConn) LocalAddr() string                { return "fake:0" }
func (c *fakeConn) RemoteAddr() string               { return "fake:0" }

// fakeSplicer is a fakeConn with a splice capability that copies n bytes —
// or fails after failAfter bytes to model a mid-frame kernel error.
type fakeSplicer struct {
	fakeConn
	src       *fakeConn
	failAfter int64 // <0: never fail
}

func (c *fakeSplicer) CanSpliceFrom(src transport.Conn) bool { return true }

func (c *fakeSplicer) SpliceFrom(src transport.Conn, n int64) (int64, error) {
	if c.failAfter >= 0 && n > c.failAfter {
		moved, _ := io.CopyN(&c.w, src, c.failAfter)
		return moved, errors.New("fake splice: kernel error mid-frame")
	}
	return io.CopyN(&c.w, src, n)
}

func newSpliceTestNode(t *testing.T) *Node {
	t.Helper()
	env := newTestEnv(3, 64<<10)
	l, err := env.fabric.Host("n2").Listen("n2:7000")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	n, err := NewNode(NodeConfig{
		Index:    1,
		Plan:     Plan{Peers: env.peers, Opts: udpTestOpts()},
		Network:  env.fabric.Host("n2"),
		Listener: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpliceFrameMovesWholeFrame(t *testing.T) {
	n := newSpliceTestNode(t)
	payload := testPayload(10<<10, 9)
	src := &fakeConn{r: bytes.NewReader(payload)}
	w := n.newWire(src)
	// Force part of the payload through the bufio prefix-drain path.
	if _, err := w.br.Peek(1024); err != nil {
		t.Fatal(err)
	}
	dst := &fakeSplicer{failAfter: -1}
	if err := n.spliceFrame(w, dst, len(payload)); err != nil {
		t.Fatalf("spliceFrame: %v", err)
	}
	out := dst.w.Bytes()
	if len(out) != dataFrameHeader+len(payload) {
		t.Fatalf("moved %d bytes, want %d", len(out), dataFrameHeader+len(payload))
	}
	if MsgType(out[0]) != MsgData {
		t.Fatalf("frame type %v", MsgType(out[0]))
	}
	if !bytes.Equal(out[dataFrameHeader:], payload) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestSpliceFrameMidFrameError(t *testing.T) {
	n := newSpliceTestNode(t)
	payload := testPayload(8<<10, 10)
	src := &fakeConn{r: bytes.NewReader(payload)}
	w := n.newWire(src)
	dst := &fakeSplicer{failAfter: 512}
	if err := n.spliceFrame(w, dst, len(payload)); err == nil {
		t.Fatal("mid-frame splice error not surfaced")
	}
}

// ---------------------------------------------------------------------------
// Fallback matrix: Splice enabled on transports that cannot splice must run
// the pooled path, bit-perfect, with zero engaged spans.

func TestSpliceFallbackOnFabric(t *testing.T) {
	env := newTestEnv(3, 256<<10)
	data := testPayload(300<<10, 11)
	cfg := env.config(data, false)
	cfg.Opts.Splice = true
	cfg.SinkFor = func(i int) io.Writer {
		if i == 1 {
			return nil // pure relay: splice-eligible, but memnet declines
		}
		return env.sinks[i]
	}
	var spliced atomic.Int64
	cfg.Trace = func(ev TraceEvent) {
		if ev.Kind == TraceChunk && ev.Detail == "spliced" {
			spliced.Add(1)
		}
	}
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("total %d, want %d", res.Report.TotalBytes, len(data))
	}
	if spliced.Load() != 0 {
		t.Fatalf("%d frames spliced on the in-memory fabric", spliced.Load())
	}
	checkSink(t, env, 2, data)
}

// TestSpliceEngagesOnLoopback runs a real-TCP 3-node chain with a pure relay
// in the middle: on Linux the relay must move at least part of the stream
// through the kernel, and the tail sink must stay bit-perfect either way.
func TestSpliceEngagesOnLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	peers := []Peer{
		{Name: "s", Addr: "127.0.0.1:0"},
		{Name: "relay", Addr: "127.0.0.1:0"},
		{Name: "tail", Addr: "127.0.0.1:0"},
	}
	data := testPayload(2<<20, 12)
	var tail collectSink
	var spliced atomic.Int64
	opts := testOpts()
	opts.Splice = true
	cfg := SessionConfig{
		Peers:      peers,
		Opts:       opts,
		NetworkFor: func(int) transport.Network { return transport.TCP{} },
		SinkFor: func(i int) io.Writer {
			if i == 2 {
				return &tail
			}
			return nil
		},
		InputFile: bytes.NewReader(data),
		InputSize: int64(len(data)),
		Trace: func(ev TraceEvent) {
			if ev.Node == 1 && ev.Kind == TraceChunk && ev.Detail == "spliced" {
				spliced.Add(1)
			}
		},
	}
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("total %d, want %d", res.Report.TotalBytes, len(data))
	}
	if !bytes.Equal(tail.Bytes(), data) {
		t.Fatalf("tail payload mismatch (%d bytes)", len(tail.Bytes()))
	}
	if transport.CanSplice(&fakeConn{}, &fakeConn{}) {
		t.Fatal("sanity: fake conns must not splice")
	}
	t.Logf("spliced frames: %d", spliced.Load())
}

// TestSpliceEligibility pins the constructor-time gating matrix.
func TestSpliceEligibility(t *testing.T) {
	base := func() (*NodeConfig, *Options) {
		o := testOpts().withDefaults()
		o.Splice = true
		return &NodeConfig{Index: 1}, &o
	}
	if cfg, o := base(); !spliceEligible(cfg, o) {
		t.Fatal("pure relay must be eligible")
	}
	cfg, o := base()
	cfg.Index = 0
	if spliceEligible(cfg, o) {
		t.Fatal("sender must not be eligible")
	}
	cfg, o = base()
	cfg.Sink = &collectSink{}
	if spliceEligible(cfg, o) {
		t.Fatal("node with a local sink must not be eligible")
	}
	cfg, o = base()
	cfg.Sink = io.Discard
	if !spliceEligible(cfg, o) {
		t.Fatal("io.Discard sink must stay eligible")
	}
	cfg, o = base()
	o.MinThroughput = 1
	if spliceEligible(cfg, o) {
		t.Fatal("§V measurement must disable splice")
	}
	cfg, o = base()
	cfg.Plan.Transport = TransportUDP
	if spliceEligible(cfg, o) {
		t.Fatal("udp plans must not splice")
	}
	cfg, o = base()
	o.Splice = false
	if spliceEligible(cfg, o) {
		t.Fatal("opt-out must disable splice")
	}
}
