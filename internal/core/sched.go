package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the engine's data-plane scheduler: a small worker pool that
// pulls ready-session work items off a weighted round-robin run queue and
// turns each into one forwardable chunk batch for that session.
//
// Before it, every engine-attached session drove its downstream sender as
// a free-running goroutine blocked in ChunkAt, woken once per appended
// chunk. With 16 overlapping sessions on a few cores, the host scheduler
// round-robins dozens of runnable forwarders in arbitrary order — a convoy
// that cost ~35% of aggregate throughput at 16 sessions (see the PR 3 mux
// table). The scheduler replaces both properties:
//
//   - The unit of scheduling is a forwardable chunk batch, not a session:
//     a worker claims up to weight×Quantum bytes of consecutive ready
//     chunks from the session's store in one step and hands them over as
//     one vectored-write batch.
//
//   - Wakeups are batched: a session with nothing to forward parks (no
//     goroutine blocked in the store), its store notify is armed
//     edge-triggered, and it re-enters the run queue once per drain cycle
//     — one notify per claimed batch, not one broadcast per chunk.
//
// Turn order is weighted round-robin: ready sessions are served FIFO, and
// class weights (EngineOptions.Classes) scale the per-turn byte budget, so
// an interactive session drains proportionally more per rotation than a
// bulk one without ever starving it. The claim itself is cheap (reference
// moves under the store lock); the actual network write runs on the
// session's own goroutine, so one session's stalled successor never holds
// a worker hostage and cannot convoy its neighbours.

// schedTurn is one granted turn: a claimed batch of retained chunks (the
// receiving session writes and releases them), or the store's terminal
// condition, or the instruction to fall back to the direct blocking path
// because the scheduler is gone (engine closed, session detached).
type schedTurn struct {
	batch  []*chunk
	n      int // total payload bytes across batch
	err    error
	inline bool
}

// Entry states, guarded by scheduler.mu.
const (
	entryIdle    = iota // parked; the store notify re-queues it
	entryReady          // waiting in the run queue
	entryRunning        // being claimed by a worker, or its session holds a turn
)

// schedEntry is one session's seat in the scheduler.
type schedEntry struct {
	s         *scheduler
	st        store
	class     string
	weight    int
	budget    int // byte budget per turn: weight × quantum, capped by the session's batch limit
	chunkSize int // the session's chunk granularity (cap pre-check, as in nextBatch)

	// Guarded by s.mu.
	state    int
	pending  bool // notify fired while running: re-queue instead of idling
	detached bool
	off      uint64 // next claim offset, posted by the session at next()

	// want (guarded by s.mu) is the arm threshold: the byte backlog the
	// next idle arm waits for before waking this session. Sticky binary:
	// the full budget while claims keep filling at least half of it (the
	// pipeline moves in quantum pulses — one wakeup per pulse), the
	// first byte otherwise (minimum latency). A flush timer bounds the
	// staging time of any threshold arm, so a producer pausing
	// mid-stream cannot strand a partial backlog.
	want int
	// flushed (guarded by s.mu) marks a flush wake: if the claim that
	// follows finds nothing at all, the arm drops to first-byte so an
	// idle session is not swept every interval.
	flushed bool
	// armedAt (guarded by s.mu) is when the current threshold arm went
	// idle; the sweeper flushes arms older than schedFlushDelay.
	armedAt time.Time

	turn  chan schedTurn // cap 1; at most one outstanding turn per entry
	batch []*chunk       // claim scratch, reused turn to turn

	// rate is the session's measured downstream drain rate in bytes/s
	// (math.Float64bits), posted lock-free by the serving goroutine after
	// each write. Adaptive quanta read it per claim: the static budget
	// becomes a ceiling, and the effective turn is sized to what the
	// successor drains within the scheduler's target latency — a slow-WAN
	// successor gets small low-latency turns instead of monopolising a
	// quantum it cannot drain.
	rate atomic.Uint64
}

// observeRate posts the session's measured drain rate. Nil-safe: nodes
// off the engine (or tree relays) have no seat and drop the sample.
func (e *schedEntry) observeRate(r float64) {
	if e == nil || r <= 0 {
		return
	}
	e.rate.Store(math.Float64bits(r))
}

// schedClassStats accumulates per-class scheduling counters.
type schedClassStats struct {
	turns uint64
	bytes uint64
}

// schedFlushDelay bounds how long a threshold arm may stage a partial
// backlog: when it fires, whatever is buffered is claimed and delivered,
// and the session's arm threshold adapts down to that amount. It is the
// worst-case latency a pausing producer can add per hop — deliberately
// generous, because the threshold exists to amortise wakeups under load,
// and a tight bound would cut every slower-than-quantum session back to
// per-chunk wakes (the convoy this scheduler removes).
const schedFlushDelay = 500 * time.Millisecond

// scheduler is the engine-owned run queue and worker pool.
type scheduler struct {
	quantum int
	latency time.Duration // target per-turn drain latency for adaptive quanta
	classes map[string]int
	workers int
	clk     Clock

	mu     sync.Mutex
	cond   *sync.Cond // workers wait here for ready entries
	runq   []*schedEntry
	all    map[*schedEntry]struct{}
	closed bool
	done   chan struct{} // closed with the scheduler; stops the sweeper
	stats  map[string]*schedClassStats
}

// newScheduler builds the scheduler and starts its worker pool. The caller
// passes defaulted engine options; clk drives the hot-arm flush timers.
func newScheduler(workers, quantum int, latency time.Duration, classes map[string]int, clk Clock) *scheduler {
	if clk == nil {
		clk = SystemClock()
	}
	s := &scheduler{
		quantum: quantum,
		latency: latency,
		classes: classes,
		workers: workers,
		clk:     clk,
		all:     make(map[*schedEntry]struct{}),
		done:    make(chan struct{}),
		stats:   make(map[string]*schedClassStats),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	go s.sweeper()
	return s
}

// weightFor resolves a class name to its scheduling weight. The empty
// class and unknown names weigh 1 (bulk semantics).
func (s *scheduler) weightFor(class string) int {
	if w, ok := s.classes[class]; ok && w > 0 {
		return w
	}
	return 1
}

// register seats one session: st is the store batches are claimed from,
// class selects the weight, maxBatch caps one turn's bytes (the session's
// MaxBatchBytes — one turn is one vectored write), chunkSize is the
// session's chunk granularity.
func (s *scheduler) register(st store, class string, maxBatch, chunkSize int) *schedEntry {
	if chunkSize < 1 {
		chunkSize = 1
	}
	e := &schedEntry{
		s:         s,
		st:        st,
		class:     class,
		weight:    s.weightFor(class),
		chunkSize: chunkSize,
		turn:      make(chan schedTurn, 1),
		state:     entryRunning, // the session holds its (virtual) first turn
	}
	e.budget = e.weight * s.quantum
	if maxBatch > 0 && e.budget > maxBatch {
		e.budget = maxBatch
	}
	if e.budget < 1 {
		e.budget = 1
	}
	e.want = 1 // first arm wakes on the first byte; full claims raise it
	st.SetNotify(e.notifyReady)
	s.mu.Lock()
	if s.closed {
		e.detached = true
	} else {
		s.all[e] = struct{}{}
	}
	s.mu.Unlock()
	return e
}

// next posts the session's current offset and parks until a worker hands
// over the next turn. Safe on a nil entry (dedicated-listener nodes):
// callers get the inline marker and use the direct blocking path.
func (e *schedEntry) next(off uint64) schedTurn {
	if e == nil {
		return schedTurn{inline: true}
	}
	s := e.s
	s.mu.Lock()
	if s.closed || e.detached {
		s.mu.Unlock()
		return schedTurn{inline: true}
	}
	e.off = off
	e.pending = false
	e.state = entryReady
	s.runq = append(s.runq, e)
	s.cond.Signal()
	s.mu.Unlock()
	return <-e.turn
}

// notifyReady is the store's readiness hook: the armed offset became
// readable (or terminal). It runs under the store mutex — it only flips
// scheduler state (lock order: store.mu → scheduler.mu).
func (e *schedEntry) notifyReady() {
	s := e.s
	s.mu.Lock()
	switch {
	case e.detached || s.closed:
	case e.state == entryIdle:
		e.state = entryReady
		s.runq = append(s.runq, e)
		s.cond.Signal()
	default:
		// Ready or mid-claim: remember the edge so the worker re-queues
		// instead of idling on a stale poll.
		e.pending = true
	}
	s.mu.Unlock()
}

// worker pulls ready entries off the run queue and serves each one turn.
func (s *scheduler) worker() {
	for {
		s.mu.Lock()
		for len(s.runq) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		e := s.runq[0]
		s.runq = s.runq[1:]
		e.state = entryRunning
		off := e.off
		s.mu.Unlock()
		s.serve(e, off)
	}
}

// serve claims one batch for e and delivers it (or the terminal condition)
// to the parked session. With nothing claimable it arms the store notify
// and leaves the session parked — the notify re-queues the entry, which is
// exactly the batched wakeup.
func (s *scheduler) serve(e *schedEntry, off uint64) {
	for {
		t, idle := s.claim(e, off)
		if !idle {
			if t.n > 0 {
				s.mu.Lock()
				cs := s.stats[e.class]
				if cs == nil {
					cs = &schedClassStats{}
					s.stats[e.class] = cs
				}
				cs.turns++
				cs.bytes += uint64(t.n)
				s.mu.Unlock()
			}
			e.turn <- t
			return
		}
		s.mu.Lock()
		if e.detached || s.closed {
			s.mu.Unlock()
			e.turn <- schedTurn{inline: true}
			return
		}
		if e.pending {
			// Data (or a terminal) raced in between the poll and the arm.
			e.pending = false
			s.mu.Unlock()
			continue
		}
		e.state = entryIdle
		e.armedAt = s.clk.Now()
		s.mu.Unlock()
		return
	}
}

// sweeper bounds the staging time of threshold arms: every half interval
// it re-queues (with the flushed mark) entries that have sat idle behind a
// threshold for a full schedFlushDelay, so a producer pausing mid-stream
// cannot strand a sub-threshold backlog behind a line that never crosses.
// One goroutine per scheduler — threshold arms themselves stay timer-free.
func (s *scheduler) sweeper() {
	for {
		t := s.clk.NewTimer(schedFlushDelay / 2)
		select {
		case <-t.C():
		case <-s.done:
			t.Stop()
			return
		}
		now := s.clk.Now()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		for e := range s.all {
			if e.state == entryIdle && e.want > 1 && now.Sub(e.armedAt) >= schedFlushDelay {
				e.flushed = true
				e.state = entryReady
				s.runq = append(s.runq, e)
				s.cond.Signal()
			}
		}
		s.mu.Unlock()
	}
}

// claim builds one forwardable batch from e's store: consecutive ready
// chunks from off, up to the entry's byte budget and the vectored-write
// entry cap. It reports idle=true after arming the store notify when
// nothing is claimable yet; a terminal condition is delivered as the
// turn's error, but never before already-claimed data (the terminal
// resurfaces on the next turn).
func (s *scheduler) claim(e *schedEntry, off uint64) (schedTurn, bool) {
	s.mu.Lock()
	want := e.want
	flushed := e.flushed
	e.flushed = false
	s.mu.Unlock()

	// Adaptive quantum: the registered budget is a ceiling; the effective
	// turn is what the successor's measured drain rate moves within the
	// scheduler's target latency (floored at one chunk so progress never
	// stalls). Unmeasured sessions (rate 0) use the full ceiling.
	budget := e.budget
	if s.latency > 0 {
		if r := math.Float64frombits(e.rate.Load()); r > 0 {
			adaptive := int(r * s.latency.Seconds())
			if adaptive < e.chunkSize {
				adaptive = e.chunkSize
			}
			if adaptive < budget {
				budget = adaptive
			}
		}
	}

	batch := e.batch[:0]
	n := 0
	// Same cap rule as Node.nextBatch on the direct path: the first chunk
	// is always admitted, then only while a full-size one still fits —
	// the budget bounds one vectored write and is never overshot.
	for len(batch) < maxBatchChunks && (len(batch) == 0 || n+e.chunkSize <= budget) {
		c, err := e.st.PollChunkAt(off + uint64(n))
		if err == errNotReady {
			if len(batch) > 0 {
				break
			}
			// Batched wakeup: arm at the session's adaptive threshold —
			// one notify per staged batch, not one broadcast per chunk.
			// A flush wake that found nothing means the producer is
			// idle: drop to first-byte arming (minimum latency, and no
			// timer spinning on a quiet session). The store clamps the
			// threshold to stay crossable under back-pressure and fires
			// immediately on EOF/abort; armFlushLocked bounds the
			// staging time.
			if flushed {
				want = 1
				s.mu.Lock()
				e.want = 1
				s.mu.Unlock()
			}
			if e.st.ArmNotify(off, want) {
				e.batch = batch
				return schedTurn{}, true
			}
			continue // became ready between the poll and the arm
		}
		if err != nil {
			if len(batch) > 0 {
				break
			}
			e.batch = batch
			return schedTurn{err: err}, false
		}
		batch = append(batch, c)
		n += len(c.bytes())
	}
	e.batch = batch

	// Sticky binary threshold with half-budget hysteresis: a claim that
	// filled at least half the budget proves the pipeline is moving in
	// quantum-sized pulses, so the next arm waits for a full quantum (one
	// wakeup per pulse); anything less drops back to first-byte arming
	// for minimum latency. Deliberately not a proportional ramp — one
	// short claim (a worker racing a mid-pulse append) must not collapse
	// the threshold and restart per-chunk wakes.
	next := 1
	if 2*n >= budget {
		next = budget
	}
	s.mu.Lock()
	e.want = next
	s.mu.Unlock()
	return schedTurn{batch: batch, n: n}, false
}

// detach retires one entry: it leaves the run queue, pending notifies are
// ignored, and a parked session is released with the inline marker so it
// can drain its store directly (the store surfaces the abort). Safe to
// call more than once and on a nil entry.
func (s *scheduler) detach(e *schedEntry) {
	if e == nil {
		return
	}
	s.mu.Lock()
	if e.detached {
		s.mu.Unlock()
		return
	}
	e.detached = true
	delete(s.all, e)
	parked := false
	switch e.state {
	case entryReady:
		for i, q := range s.runq {
			if q == e {
				s.runq = append(s.runq[:i], s.runq[i+1:]...)
				break
			}
		}
		parked = true
	case entryIdle:
		parked = true
	}
	e.state = entryRunning
	s.mu.Unlock()
	e.st.SetNotify(nil)
	if parked {
		e.turn <- schedTurn{inline: true}
	}
}

// close shuts the scheduler down: workers exit, every parked session is
// released with the inline marker, later next() calls return it directly.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	var parked []*schedEntry
	for e := range s.all {
		if e.state == entryIdle || e.state == entryReady {
			e.state = entryRunning
			parked = append(parked, e)
		}
		delete(s.all, e)
	}
	s.runq = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, e := range parked {
		e.turn <- schedTurn{inline: true}
	}
}

// classStats snapshots the per-class turn/byte counters.
func (s *scheduler) classStats() map[string]schedClassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]schedClassStats, len(s.stats))
	for class, cs := range s.stats {
		out[class] = *cs
	}
	return out
}
