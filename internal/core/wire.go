package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kascade/internal/transport"
)

// MsgType enumerates the protocol messages of Fig 4 of the paper, plus the
// connection-open (HELLO) and liveness (PING/PONG) frames its §III-D1
// failure detector implies.
type MsgType byte

const (
	MsgHello  MsgType = iota + 1 // role + node index: opens every connection
	MsgGet                       // offset: request stream data from offset
	MsgPGet                      // [from,to): request a byte range (gap fetch)
	MsgForget                    // min offset: requested data not available anymore
	MsgData                      // length + payload: one chunk
	MsgEnd                       // total length: end of stream
	MsgQuit                      // reason: anticipated end of stream
	MsgReport                    // length + JSON report
	MsgPassed                    // report reached node 1; sender may exit
	MsgPing                      // liveness probe
	MsgPong                      // liveness answer
	MsgHello2                    // HELLO v2: role + node index + session ID
	MsgReorg                     // view version + slot assignment: tree re-ranking plan
	MsgRate                      // length + JSON link-rate report (reorg spoke)
	MsgReorg2                    // REORG plus the member table for slots beyond the start plan
	MsgJoin                      // length + JSON join request (late joiner → node 0)
	MsgJoinInfo                  // length + JSON session descriptor (node 0 → joiner, pre-admission)
	MsgJoinGo                    // joiner passed local admission; node 0 may graft
	MsgJoinOK                    // length + JSON join grant (node 0 → joiner)
)

func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "HELLO"
	case MsgGet:
		return "GET"
	case MsgPGet:
		return "PGET"
	case MsgForget:
		return "FORGET"
	case MsgData:
		return "DATA"
	case MsgEnd:
		return "END"
	case MsgQuit:
		return "QUIT"
	case MsgReport:
		return "REPORT"
	case MsgPassed:
		return "PASSED"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgHello2:
		return "HELLO2"
	case MsgReorg:
		return "REORG"
	case MsgRate:
		return "RATE"
	case MsgReorg2:
		return "REORG2"
	case MsgJoin:
		return "JOIN"
	case MsgJoinInfo:
		return "JOININFO"
	case MsgJoinGo:
		return "JOINGO"
	case MsgJoinOK:
		return "JOINOK"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// Role identifies the purpose of a connection, declared by the HELLO frame.
type Role byte

const (
	RoleData   Role = iota + 1 // predecessor streaming the broadcast to a successor
	RolePing                   // liveness probe (§III-D1)
	RoleFetch                  // PGET gap fetch directed at node 1 (§III-D2)
	RoleReport                 // ring-closing report delivery from the last node to node 1
	RoleRate                   // link-rate report spoke to node 0 (self-reorganization)
	RoleJoin                   // late-join admission conversation directed at node 0
)

func (r Role) String() string {
	switch r {
	case RoleData:
		return "data"
	case RolePing:
		return "ping"
	case RoleFetch:
		return "fetch"
	case RoleReport:
		return "report"
	case RoleRate:
		return "rate"
	case RoleJoin:
		return "join"
	default:
		return fmt.Sprintf("Role(%d)", byte(r))
	}
}

// QuitReason distinguishes the two uses of QUIT in the paper: a user
// interruption (a report still follows and the pipeline closes its ring)
// versus the abandon cascade after data was irrecoverably lost on a
// streamed source (the receiving node gives up entirely).
type QuitReason byte

const (
	QuitUser     QuitReason = iota + 1 // anticipated end of stream; report follows
	QuitAbandon                        // unrecoverable loss; receiver must abandon
	QuitExcluded                       // receiver excluded for low throughput (§V); step aside quietly
)

// maxFrameData bounds DATA/REPORT payload lengths accepted from the wire,
// protecting against corrupted length prefixes.
const maxFrameData = 1 << 28

// wire frames messages over a transport connection. Reads are buffered;
// writes go straight to the connection (optionally through a stall-detecting
// writer) so that a partially timed-out write can be resumed byte-exactly.
//
// DATA payloads are never copied inside the wire layer: readData reads
// straight into a pool-owned buffer and hands the caller the reference, and
// writeDataBatch stitches frame headers and payloads together with a single
// vectored write when the underlying writer supports transport.BuffersWriter
// (falling back to sequential writes otherwise).
type wire struct {
	conn transport.Conn
	br   *bufio.Reader
	out  io.Writer        // conn, or a stallWriter wrapping it
	now  func() time.Time // deadline base, injectable via Options.Clock
	hdr  [17]byte         // scratch header buffer

	hdrs []byte   // scratch DATA headers for vectored batches (5 B each)
	vec  [][]byte // scratch iovec: header, payload, header, payload, ...
}

// newWire wraps c with clk as the deadline base. Every constructor must
// state its time source explicitly — a silent time.Now default here is what
// once let wire timeouts escape the injectable clock seam that the chaos
// harness's fake clock depends on.
func newWire(c transport.Conn, clk Clock) *wire {
	return &wire{conn: c, br: bufio.NewReaderSize(c, 4<<10), out: c, now: clk.Now}
}

func (w *wire) close() error { return w.conn.Close() }

// readType reads the next frame's type byte, honouring the deadline set on
// the connection by the caller.
func (w *wire) readType() (MsgType, error) {
	b, err := w.br.ReadByte()
	if err != nil {
		return 0, err
	}
	return MsgType(b), nil
}

func (w *wire) readFull(p []byte) error {
	_, err := io.ReadFull(w.br, p)
	return err
}

func (w *wire) readUint64() (uint64, error) {
	var b [8]byte
	if err := w.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func (w *wire) readUint32() (uint32, error) {
	var b [4]byte
	if err := w.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// readHello parses the payload of a HELLO frame (after its type byte).
func (w *wire) readHello() (Role, int, error) {
	var b [5]byte
	if err := w.readFull(b[:]); err != nil {
		return 0, 0, err
	}
	return Role(b[0]), int(binary.BigEndian.Uint32(b[1:])), nil
}

// readHello2 parses the payload of a HELLO v2 frame (after its type byte):
// role, node index, then the 8-byte broadcast session ID.
func (w *wire) readHello2() (Role, int, SessionID, error) {
	var b [13]byte
	if err := w.readFull(b[:]); err != nil {
		return 0, 0, 0, err
	}
	return Role(b[0]), int(binary.BigEndian.Uint32(b[1:5])), SessionID(binary.BigEndian.Uint64(b[5:])), nil
}

// readHelloAny reads the connection-opening frame, accepting both protocol
// versions: a v1 HELLO (no session ID) maps onto the default session 0,
// a v2 HELLO2 carries its broadcast session ID explicitly. This is the
// backward-detection point: a v2 accept path serves v1 dialers unchanged.
func (w *wire) readHelloAny() (Role, int, SessionID, error) {
	typ, err := w.readType()
	if err != nil {
		return 0, 0, 0, err
	}
	switch typ {
	case MsgHello:
		role, from, err := w.readHello()
		return role, from, 0, err
	case MsgHello2:
		return w.readHello2()
	default:
		return 0, 0, 0, &errProtocol{want: MsgHello, got: typ}
	}
}

// readData reads a DATA payload (after the type byte) straight into a
// buffer owned by pool and returns the chunk with one reference, which the
// caller owns (a nil pool serves one-off buffers). There is no intermediate
// copy: the bytes land in the buffer that the window store will retain.
func (w *wire) readData(pool *chunkPool) (*chunk, error) {
	size, err := w.readDataSize()
	if err != nil {
		return nil, err
	}
	return w.readDataInto(pool, size)
}

// readDataSize reads and bounds-checks a DATA frame's length prefix, leaving
// the payload unread. The splice path uses it to learn the frame size before
// deciding whether the payload crosses through the kernel or lands in a
// pooled buffer via readDataInto.
func (w *wire) readDataSize() (int, error) {
	size, err := w.readUint32()
	if err != nil {
		return 0, err
	}
	if size > maxFrameData {
		return 0, fmt.Errorf("kascade: DATA frame of %d bytes exceeds limit", size)
	}
	return int(size), nil
}

// readDataInto reads a DATA payload of known size into a pool-owned buffer.
func (w *wire) readDataInto(pool *chunkPool, size int) (*chunk, error) {
	c := pool.get(size)
	if err := w.readFull(c.bytes()); err != nil {
		c.release()
		return nil, err
	}
	return c, nil
}

// readQuit parses a QUIT payload (after the type byte).
func (w *wire) readQuit() (QuitReason, error) {
	b, err := w.br.ReadByte()
	if err != nil {
		return 0, err
	}
	return QuitReason(b), nil
}

// readPGet parses a PGET payload.
func (w *wire) readPGet() (from, to uint64, err error) {
	if from, err = w.readUint64(); err != nil {
		return 0, 0, err
	}
	if to, err = w.readUint64(); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

// readReport parses a REPORT payload.
func (w *wire) readReport() (*Report, error) {
	size, err := w.readUint32()
	if err != nil {
		return nil, err
	}
	if size > maxFrameData {
		return nil, fmt.Errorf("kascade: REPORT frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if err := w.readFull(payload); err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("kascade: bad report payload: %w", err)
	}
	return &r, nil
}

// maxReorgSlots bounds the occupant table accepted from the wire.
const maxReorgSlots = 1 << 20

// readReorg parses a REORG payload (after the type byte): the view
// version, then the slot-occupant table — tree slot i is held by the node
// whose original pipeline index is occ[i].
func (w *wire) readReorg() (uint64, []int32, error) {
	version, err := w.readUint64()
	if err != nil {
		return 0, nil, err
	}
	count, err := w.readUint32()
	if err != nil {
		return 0, nil, err
	}
	if count > maxReorgSlots {
		return 0, nil, fmt.Errorf("kascade: REORG frame with %d slots exceeds limit", count)
	}
	buf := make([]byte, 4*count)
	if err := w.readFull(buf); err != nil {
		return 0, nil, err
	}
	occ := make([]int32, count)
	for i := range occ {
		occ[i] = int32(binary.BigEndian.Uint32(buf[4*i:]))
	}
	return version, occ, nil
}

// readRateReport parses a RATE payload (after the type byte).
func (w *wire) readRateReport() (*rateReport, error) {
	size, err := w.readUint32()
	if err != nil {
		return nil, err
	}
	if size > maxFrameData {
		return nil, fmt.Errorf("kascade: RATE frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if err := w.readFull(payload); err != nil {
		return nil, err
	}
	var r rateReport
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("kascade: bad rate report payload: %w", err)
	}
	return &r, nil
}

func (w *wire) writeAll(p []byte) error {
	_, err := w.out.Write(p)
	return err
}

func (w *wire) writeHello(role Role, index int) error {
	w.hdr[0] = byte(MsgHello)
	w.hdr[1] = byte(role)
	binary.BigEndian.PutUint32(w.hdr[2:6], uint32(index))
	return w.writeAll(w.hdr[:6])
}

// writeHelloFor opens a connection for session sid: the default session 0
// emits a byte-identical v1 HELLO (full backward compatibility); any other
// session emits HELLO2 with the ID, so a shared accept path can route it.
func (w *wire) writeHelloFor(role Role, index int, sid SessionID) error {
	if sid == 0 {
		return w.writeHello(role, index)
	}
	w.hdr[0] = byte(MsgHello2)
	w.hdr[1] = byte(role)
	binary.BigEndian.PutUint32(w.hdr[2:6], uint32(index))
	binary.BigEndian.PutUint64(w.hdr[6:14], uint64(sid))
	return w.writeAll(w.hdr[:14])
}

func (w *wire) writeGet(offset uint64) error {
	w.hdr[0] = byte(MsgGet)
	binary.BigEndian.PutUint64(w.hdr[1:9], offset)
	return w.writeAll(w.hdr[:9])
}

func (w *wire) writePGet(from, to uint64) error {
	w.hdr[0] = byte(MsgPGet)
	binary.BigEndian.PutUint64(w.hdr[1:9], from)
	binary.BigEndian.PutUint64(w.hdr[9:17], to)
	return w.writeAll(w.hdr[:17])
}

func (w *wire) writeForget(minOffset uint64) error {
	w.hdr[0] = byte(MsgForget)
	binary.BigEndian.PutUint64(w.hdr[1:9], minOffset)
	return w.writeAll(w.hdr[:9])
}

func (w *wire) writeData(chunk []byte) error {
	w.hdr[0] = byte(MsgData)
	binary.BigEndian.PutUint32(w.hdr[1:5], uint32(len(chunk)))
	if err := w.writeAll(w.hdr[:5]); err != nil {
		return err
	}
	return w.writeAll(chunk)
}

// dataFrameHeader is the DATA frame header size: type byte + length prefix.
const dataFrameHeader = 5

// writeDataBatch frames every chunk in cs and writes the whole batch —
// headers and payloads interleaved — in one vectored write when the
// underlying writer supports it. Scratch buffers are reused across calls,
// so a steady relay emits batches without allocating. The caller keeps its
// chunk references; payload bytes are only read.
func (w *wire) writeDataBatch(cs []*chunk) error {
	if need := dataFrameHeader * len(cs); cap(w.hdrs) < need {
		w.hdrs = make([]byte, need)
	}
	w.vec = w.vec[:0]
	for i, c := range cs {
		h := w.hdrs[i*dataFrameHeader : (i+1)*dataFrameHeader]
		payload := c.bytes()
		h[0] = byte(MsgData)
		binary.BigEndian.PutUint32(h[1:], uint32(len(payload)))
		w.vec = append(w.vec, h, payload)
	}
	// transport.WriteBuffers (and BuffersWriter implementations) may
	// consume w.vec's entries; that is fine, it is scratch.
	_, err := transport.WriteBuffers(w.out, w.vec)
	return err
}

func (w *wire) writeEnd(total uint64) error {
	w.hdr[0] = byte(MsgEnd)
	binary.BigEndian.PutUint64(w.hdr[1:9], total)
	return w.writeAll(w.hdr[:9])
}

func (w *wire) writeQuit(reason QuitReason) error {
	w.hdr[0] = byte(MsgQuit)
	w.hdr[1] = byte(reason)
	return w.writeAll(w.hdr[:2])
}

func (w *wire) writeReport(r *Report) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("kascade: encoding report: %w", err)
	}
	w.hdr[0] = byte(MsgReport)
	binary.BigEndian.PutUint32(w.hdr[1:5], uint32(len(payload)))
	if err := w.writeAll(w.hdr[:5]); err != nil {
		return err
	}
	return w.writeAll(payload)
}

// writeReorg frames a tree re-ranking plan (see readReorg).
func (w *wire) writeReorg(version uint64, occupants []int32) error {
	w.hdr[0] = byte(MsgReorg)
	binary.BigEndian.PutUint64(w.hdr[1:9], version)
	binary.BigEndian.PutUint32(w.hdr[9:13], uint32(len(occupants)))
	if err := w.writeAll(w.hdr[:13]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(occupants))
	for i, o := range occupants {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(o))
	}
	return w.writeAll(buf)
}

// wireMember names a membership slot learned over the wire. Late joiners
// are appended to the broadcast membership after START, so any view that
// references slots beyond the start plan must carry the index→peer mapping
// itself (readers admitted at START only know the original plan).
type wireMember struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Addr  string `json:"addr"`
}

// maxReorgMembers bounds the member table accepted from the wire.
const maxReorgMembers = 1 << 16

// writeReorg2 frames a re-ranking plan together with the member table for
// the slots past the start plan — the dynamic-membership superset of
// writeReorg. Sessions that never admit a joiner never emit this frame,
// keeping their byte stream identical to the pre-JOIN protocol.
func (w *wire) writeReorg2(version uint64, occupants []int32, members []wireMember) error {
	payload, err := json.Marshal(members)
	if err != nil {
		return fmt.Errorf("kascade: encoding member table: %w", err)
	}
	w.hdr[0] = byte(MsgReorg2)
	binary.BigEndian.PutUint64(w.hdr[1:9], version)
	binary.BigEndian.PutUint32(w.hdr[9:13], uint32(len(occupants)))
	if err := w.writeAll(w.hdr[:13]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(occupants))
	for i, o := range occupants {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(o))
	}
	if err := w.writeAll(buf); err != nil {
		return err
	}
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(payload)))
	if err := w.writeAll(lb[:]); err != nil {
		return err
	}
	return w.writeAll(payload)
}

// readReorg2 parses a REORG2 payload (after the type byte): the REORG body
// followed by the member table for slots beyond the reader's start plan.
func (w *wire) readReorg2() (uint64, []int32, []wireMember, error) {
	version, occ, err := w.readReorg()
	if err != nil {
		return 0, nil, nil, err
	}
	size, err := w.readUint32()
	if err != nil {
		return 0, nil, nil, err
	}
	if size > maxFrameData {
		return 0, nil, nil, fmt.Errorf("kascade: REORG2 member table of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if err := w.readFull(payload); err != nil {
		return 0, nil, nil, err
	}
	var members []wireMember
	if err := json.Unmarshal(payload, &members); err != nil {
		return 0, nil, nil, fmt.Errorf("kascade: bad member table payload: %w", err)
	}
	if len(members) > maxReorgMembers {
		return 0, nil, nil, fmt.Errorf("kascade: member table with %d entries exceeds limit", len(members))
	}
	return version, occ, members, nil
}

// writeJSON frames a small JSON payload under the given type byte, in the
// same length-prefixed layout as REPORT and RATE frames.
func (w *wire) writeJSON(t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("kascade: encoding %v payload: %w", t, err)
	}
	w.hdr[0] = byte(t)
	binary.BigEndian.PutUint32(w.hdr[1:5], uint32(len(payload)))
	if err := w.writeAll(w.hdr[:5]); err != nil {
		return err
	}
	return w.writeAll(payload)
}

// readJSON parses a length-prefixed JSON payload (after the type byte).
func (w *wire) readJSON(v any) error {
	size, err := w.readUint32()
	if err != nil {
		return err
	}
	if size > maxFrameData {
		return fmt.Errorf("kascade: JSON frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if err := w.readFull(payload); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("kascade: bad frame payload: %w", err)
	}
	return nil
}

func (w *wire) writeRateReport(r *rateReport) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("kascade: encoding rate report: %w", err)
	}
	w.hdr[0] = byte(MsgRate)
	binary.BigEndian.PutUint32(w.hdr[1:5], uint32(len(payload)))
	if err := w.writeAll(w.hdr[:5]); err != nil {
		return err
	}
	return w.writeAll(payload)
}

func (w *wire) writeType(t MsgType) error {
	w.hdr[0] = byte(t)
	return w.writeAll(w.hdr[:1])
}

func (w *wire) writePassed() error { return w.writeType(MsgPassed) }
func (w *wire) writePing() error   { return w.writeType(MsgPing) }
func (w *wire) writePong() error   { return w.writeType(MsgPong) }

// setReadDeadlineIn sets the connection read deadline d from now
// (zero d clears it).
func (w *wire) setReadDeadlineIn(d time.Duration) {
	if d <= 0 {
		_ = w.conn.SetReadDeadline(time.Time{})
		return
	}
	_ = w.conn.SetReadDeadline(w.now().Add(d))
}

// setWriteDeadlineIn sets the connection write deadline d from now.
func (w *wire) setWriteDeadlineIn(d time.Duration) {
	_ = w.conn.SetWriteDeadline(w.now().Add(d))
}
