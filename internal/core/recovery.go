package core

import (
	"context"
	"errors"
	"fmt"

	"kascade/internal/transport"
)

// This file is the node's recovery plane (§III-D): the upstream rewiring
// loop that survives predecessor replacement, the ping-based liveness
// probe behind the failure detector, PGET gap fetches from node 0, and the
// abandon / step-aside terminal transitions. The data itself flows through
// the data plane (dataplane.go, store.go, downstream.go); this layer only
// decides who feeds it and what happens when they die.

// probe dials addr and plays one PING/PONG exchange; it reports liveness.
func (n *Node) probe(addr string) bool {
	c, err := n.cfg.Network.Dial(addr, n.opts.PingTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	_ = c.SetDeadline(n.clk.Now().Add(n.opts.PingTimeout))
	w := n.newWire(c)
	if err := w.writeHelloFor(RolePing, n.cfg.Index, n.sid); err != nil {
		return false
	}
	if err := w.writePing(); err != nil {
		return false
	}
	typ, err := w.readType()
	return err == nil && typ == MsgPong
}

// ---------------------------------------------------------------------------
// Upstream side (receivers): ingest DATA from the current predecessor,
// whoever that is after failures.

func (n *Node) upstreamLoop(ctx context.Context) error {
	// However this loop ends, no frame will ever claim a splice offer
	// again: shut the gate so a parked downstream sender falls back to the
	// pooled path (and its store's terminal condition) instead of waiting.
	defer n.closeSpliceGate()
	var cur *upstreamConn
	for {
		if cur == nil {
			var err error
			cur, err = n.awaitUpstream(ctx)
			if err != nil {
				return err
			}
		}
		// The paper's deadlock-avoidance rule: GET is sent on every
		// new connection, carrying our current offset.
		cur.w.setWriteDeadlineIn(n.opts.GetTimeout)
		if err := cur.w.writeGet(n.st.Head()); err != nil {
			_ = cur.w.close()
			cur = nil
			continue
		}
		n.emit(TraceUpstreamAccepted, cur.from, n.st.Head(), "")
		repl, err := n.serveUpstream(ctx, cur)
		if err == errUpstreamDone {
			_ = cur.w.close()
			return nil
		}
		if err != nil {
			_ = cur.w.close()
			return err
		}
		_ = cur.w.close()
		if repl == nil {
			n.emit(TraceUpstreamLost, cur.from, n.st.Head(), "")
		}
		cur = repl // replacement conn, or nil to wait for one
	}
}

func (n *Node) awaitUpstream(ctx context.Context) (*upstreamConn, error) {
	timer := n.clk.NewTimer(n.opts.UpstreamIdleTimeout)
	defer timer.Stop()
	select {
	case uc := <-n.upConns:
		return uc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C():
		return nil, fmt.Errorf("kascade: no predecessor connected within %v", n.opts.UpstreamIdleTimeout)
	}
}

// acceptReplacement decides whether a queued predecessor connection should
// supersede the current one: only a predecessor at least as shallow in the
// dissemination tree wins. On the chain the depth IS the pipeline index, so
// this is the paper's "smaller or equal index" rule (equal = the same
// predecessor reconnecting); on trees it admits the dead parent's ancestors
// (strictly shallower) while keeping a node excluded for slowness (§V) —
// or a restarted parent — from stealing its former child back from the
// adopting ancestor.
//
// Re-ranking sessions add the planned-migration case: the dialer proves
// which view motivated the dial (the REORG frame right after its HELLO),
// and the judgement runs against the re-ranked tree — the current view
// parent always wins, a dialer with a stale view never does (a demoted
// ex-parent must not steal its migrated-away child back), and otherwise
// the static depth rule applies on view depths (crash adoption by an
// ancestor).
func (n *Node) acceptReplacement(cur, repl *upstreamConn) bool {
	if !n.rerank {
		return treeDepth(repl.from, n.treeK) <= treeDepth(cur.from, n.treeK)
	}
	proof := n.absorbReorgProof(repl)
	if proof == 0 {
		return false
	}
	v := n.curView()
	if repl.from == v.parentOf(n.cfg.Index, n.treeK) {
		return true
	}
	if proof < v.version {
		return false
	}
	return v.depthOf(repl.from, n.treeK) <= v.depthOf(cur.from, n.treeK)
}

// absorbReorgProof reads the view-proof frame a re-ranking dialer sends
// right after HELLO, installs it if newer, and returns the version it
// carried (0 when the frame is missing or malformed — such a dialer
// cannot be judged and is turned away).
func (n *Node) absorbReorgProof(repl *upstreamConn) uint64 {
	repl.w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := repl.w.readType()
	if err != nil {
		return 0
	}
	var version uint64
	var occ []int32
	switch typ {
	case MsgReorg:
		version, occ, err = repl.w.readReorg()
	case MsgReorg2:
		// Wide proof: the view references slots past the start plan, so
		// the member table rides along and must land first.
		var members []wireMember
		version, occ, members, err = repl.w.readReorg2()
		if err == nil {
			err = n.addMembers(members)
		}
	default:
		return 0
	}
	if err != nil || version == 0 {
		return 0
	}
	n.installWireView(version, occ)
	return version
}

// serveUpstream processes frames from one predecessor connection. It
// returns (replacement, nil) when the connection broke or was superseded,
// or a terminal error (errUpstreamDone on success).
func (n *Node) serveUpstream(ctx context.Context, uc *upstreamConn) (*upstreamConn, error) {
	w := uc.w
	poll := n.opts.pollInterval()
	// engaged is the splice span in progress: this goroutine owns the
	// parked successor's connection and relays DATA frames through the
	// kernel until a non-DATA frame or an error ends the span.
	var engaged *spliceOffer
	finishEngaged := func() {
		if engaged != nil {
			engaged.finish()
			engaged = nil
		}
	}
	defer finishEngaged()
	for {
		// A better predecessor may be waiting even while the current
		// connection keeps delivering (e.g. after it excluded a slow
		// node between us): check between frames, not only on idle.
		select {
		case repl := <-n.upConns:
			if n.acceptReplacement(uc, repl) {
				return repl, nil
			}
			n.rejectReplacement(repl)
		default:
		}
		w.setReadDeadlineIn(poll)
		typ, err := w.readType()
		if err != nil {
			if transport.IsTimeout(err) {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				default:
					continue
				}
			}
			return nil, nil // connection broken; await replacement
		}
		w.setReadDeadlineIn(n.opts.UpstreamIdleTimeout)
		if typ != MsgData {
			// Any non-DATA frame ends a splice span on its boundary: the
			// last frame crossed whole, both streams are clean.
			finishEngaged()
		}
		switch typ {
		case MsgData:
			size, err := w.readDataSize()
			if err != nil {
				return nil, nil
			}
			if engaged == nil && n.splice != nil {
				if o := n.splice.take(); o != nil {
					switch {
					case n.spliceBroken.Load() || !transport.CanSplice(w.conn, o.conn):
						o.resp <- spliceResult{noRetry: true}
					case o.off != n.st.Head():
						o.resp <- spliceResult{}
					default:
						engaged = o
						o.resp <- spliceResult{engaged: true}
					}
				}
			}
			if engaged != nil {
				if serr := n.spliceFrame(w, engaged.conn, size); serr != nil {
					// Mid-frame failure: both byte streams are corrupt.
					// Poison the fast path, surface the error to the
					// parked sender (it kills its connection), and drop
					// ours; the reconnect machinery re-syncs both sides.
					n.spliceBroken.Store(true)
					engaged.err = serr
					finishEngaged()
					return nil, nil
				}
				if aerr := n.ws.AppendVirtual(uint64(size)); aerr != nil {
					finishEngaged()
					return nil, aerr
				}
				engaged.moved += uint64(size)
				n.countSpliced(uint64(size))
				n.emit(TraceChunk, -1, n.bytesIn.Add(uint64(size)), "spliced")
				continue
			}
			c, err := w.readDataInto(n.pool, size)
			if err != nil {
				return nil, nil
			}
			if err := n.ingest(c); err != nil {
				return nil, err
			}
		case MsgEnd:
			total, err := w.readUint64()
			if err != nil {
				return nil, nil
			}
			// No DATA frame will follow: a parked (or future) splice
			// offer must fall back to the pooled path to observe EOF.
			n.closeSpliceGate()
			n.ws.Finish(total)
		case MsgQuit:
			reason, err := w.readQuit()
			if err != nil {
				return nil, nil
			}
			switch reason {
			case QuitUser:
				// Anticipated end of stream: a report follows and
				// the ring still closes (§III-C).
				n.closeSpliceGate()
				n.st.Abort(ErrQuit)
				continue
			case QuitExcluded:
				// The predecessor measured us as too slow (§V)
				// and adopted our successor: step aside without
				// cascading a QUIT.
				n.stepAside("excluded by predecessor for low throughput")
				return nil, ErrExcluded
			default:
				n.abandon("upstream instructed abandon")
				return nil, ErrAbandoned
			}
		case MsgForget:
			base, err := w.readUint64()
			if err != nil {
				return nil, nil
			}
			// The gap fetch ingests through the pooled path while the
			// successor may be parked in an offer; a parked successor
			// never drains, so the window's back-pressure would deadlock
			// against it. Bounce the offer (and any new ones) first.
			if n.splice != nil {
				n.splice.suspend()
				n.splice.resolveTransient()
			}
			ferr := n.fetchGap(ctx, n.st.Head(), base)
			if n.splice != nil {
				n.splice.resume()
			}
			if ferr != nil {
				n.abandon(fmt.Sprintf("gap [%d,%d) unrecoverable: %v", n.st.Head(), base, ferr))
				return nil, ErrAbandoned
			}
			w.setWriteDeadlineIn(n.opts.GetTimeout)
			if err := w.writeGet(n.st.Head()); err != nil {
				return nil, nil
			}
		case MsgReorg, MsgReorg2:
			// A new view, piggybacked on the data stream (or the dial-time
			// proof of a connection accepted without replacement judgement).
			// The wide variant carries the member table for late joiners.
			if err := n.readViewFrame(w, typ); err != nil {
				return nil, nil
			}
		case MsgReport:
			rep, err := w.readReport()
			if err != nil {
				return nil, nil
			}
			n.closeSpliceGate() // report phase: no DATA will follow
			n.setUpReport(rep)
			repl, err := n.awaitPassedPhase(ctx, uc)
			if err != nil {
				return nil, err
			}
			if repl != nil {
				return repl, nil
			}
			w.setWriteDeadlineIn(n.opts.ReportTimeout)
			if err := w.writePassed(); err != nil {
				return nil, nil
			}
			return nil, errUpstreamDone
		default:
			// Unknown frame: treat the connection as corrupt.
			return nil, nil
		}
	}
}

// awaitPassedPhase blocks until this node's own report delivery completed
// (then PASSED can flow upstream), a replacement predecessor appears, or
// the node dies.
func (n *Node) awaitPassedPhase(ctx context.Context, cur *upstreamConn) (*upstreamConn, error) {
	for {
		select {
		case <-n.passedC:
			return nil, nil
		case repl := <-n.upConns:
			if n.acceptReplacement(cur, repl) {
				return repl, nil
			}
			n.rejectReplacement(repl)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// rejectReplacement turns away a would-be predecessor that lost to the
// current one (a farther node trying to steal its former successor back,
// e.g. after an exclusion or a restart). The explicit QUIT(excluded) tells
// the rejected dialer to step aside instead of misreading the closed
// connection as "my successor is dead" — without it, a rejoining node
// would walk the pipeline recording healthy successors as failures.
func (n *Node) rejectReplacement(repl *upstreamConn) {
	repl.w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = repl.w.writeQuit(QuitExcluded)
	_ = repl.w.close()
}

// fetchGap retrieves the byte range [from,to) directly from the sender via
// PGET (§III-D2): the predecessor's replay window no longer holds the data
// this node still needs, so node 0 is the only remaining source. A FORGET
// answer from node 0 means the data is gone for good (streamed input) and
// the caller must abandon.
func (n *Node) fetchGap(ctx context.Context, from, to uint64) error {
	if from >= to {
		return nil
	}
	n.emit(TraceGapFetchStart, 0, from, fmt.Sprintf("to %d", to))
	n.countRepairFetch()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Restart from wherever the previous attempt got to.
		err := n.fetchGapOnce(n.st.Head(), to)
		if err == nil || errors.Is(err, ErrAbandoned) {
			detail := "ok"
			if err != nil {
				detail = err.Error()
			}
			n.emit(TraceGapFetchDone, 0, n.st.Head(), detail)
			return err
		}
		lastErr = err
	}
	n.emit(TraceGapFetchDone, 0, n.st.Head(), lastErr.Error())
	return lastErr
}

func (n *Node) fetchGapOnce(from, to uint64) error {
	if from >= to {
		return nil
	}
	c, err := n.cfg.Network.Dial(n.peers()[0].Addr, n.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("kascade: dialing sender for gap fetch: %w", err)
	}
	w := n.newWire(c)
	defer w.close()
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	if err := w.writeHelloFor(RoleFetch, n.cfg.Index, n.sid); err != nil {
		return err
	}
	if err := w.writePGet(from, to); err != nil {
		return err
	}
	for {
		w.setReadDeadlineIn(n.opts.FetchTimeout)
		typ, err := w.readType()
		if err != nil {
			return err
		}
		switch typ {
		case MsgData:
			c, err := w.readData(n.pool)
			if err != nil {
				return err
			}
			if err := n.ingest(c); err != nil {
				return err
			}
		case MsgEnd:
			if _, err := w.readUint64(); err != nil {
				return err
			}
			if n.st.Head() < to {
				return fmt.Errorf("kascade: gap fetch ended early at %d of %d", n.st.Head(), to)
			}
			return nil
		case MsgForget:
			_, _ = w.readUint64()
			return ErrAbandoned
		default:
			return &errProtocol{want: MsgData, got: typ}
		}
	}
}

// abandon marks the node as failed-by-loss: it stops answering pings
// (detached from its listener or engine) so its predecessor skips it, and
// poisons the store so the downstream manager sends QUIT(abandon) to the
// successor.
func (n *Node) abandon(reason string) {
	n.mu.Lock()
	already := n.abandoned
	n.abandoned = true
	if !already {
		n.abandonReason = reason
	}
	n.mu.Unlock()
	if already {
		return
	}
	n.emit(TraceAbandoned, -1, n.bytesIn.Load(), reason)
	n.detach()
	n.st.Abort(ErrAbandoned)
}

// stepAside retires an excluded node: detached from its accept path (pings
// stop, so the pipeline routes around it), store poisoned with ErrExcluded
// so the downstream manager terminates without cascading a QUIT (its
// former successor now belongs to the excluding predecessor).
func (n *Node) stepAside(reason string) {
	n.mu.Lock()
	already := n.abandoned
	n.abandoned = true
	if !already {
		n.abandonReason = reason
	}
	n.mu.Unlock()
	if already {
		return
	}
	n.emit(TraceSteppedAside, -1, n.bytesIn.Load(), reason)
	n.detach()
	n.st.Abort(ErrExcluded)
}
