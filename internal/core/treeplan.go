package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology names carried in Plan.Topology. The chain is the paper's linear
// pipeline (§III-A); "tree:<k>" (see TopologyTree) arranges the same
// ordered peers as a BFS k-ary tree so every relay feeds up to k children;
// TopologyScatterAllgather names the MPI-style scatter-allgather composite
// implemented in internal/mpibcast — a plan core.Node cannot run itself, so
// callers dispatch it before building nodes.
const (
	TopologyChain            = "chain"
	TopologyScatterAllgather = "scatter-allgather"

	topologyTreePrefix = "tree:"
)

// TopologyTree returns the Plan.Topology value of a k-ary BFS tree.
// TopologyTree(1) is the chain by construction: parent(i) = (i-1)/1 = i-1.
func TopologyTree(k int) string {
	return topologyTreePrefix + strconv.Itoa(k)
}

// TreeArity maps a Plan.Topology value to its per-node fan-out: 1 for the
// chain (and the empty default), k for "tree:<k>". Composite topologies
// (scatter-allgather) have no per-node arity and return an error, as do
// malformed strings — Plan.Validate surfaces these before any node runs.
func TreeArity(topology string) (int, error) {
	switch topology {
	case "", TopologyChain:
		return 1, nil
	case TopologyScatterAllgather:
		return 0, fmt.Errorf("kascade: topology %q is a composite plan, not a per-node pipeline", topology)
	}
	if s, ok := strings.CutPrefix(topology, topologyTreePrefix); ok {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			return 0, fmt.Errorf("kascade: bad tree arity in topology %q", topology)
		}
		return k, nil
	}
	return 0, fmt.Errorf("kascade: unknown topology %q", topology)
}

// treeParent returns the BFS k-ary tree parent of node i (-1 for the root).
// With k = 1 this degenerates to the chain's predecessor i-1.
func treeParent(i, k int) int {
	if i <= 0 {
		return -1
	}
	if k <= 1 {
		return i - 1
	}
	return (i - 1) / k
}

// treeChildren returns the BFS k-ary tree children of node i in an n-node
// plan: indices k·i+1 … k·i+k, clipped to the plan. With k = 1 this is the
// chain's successor {i+1} (or none at the tail).
func treeChildren(i, k, n int) []int {
	if k < 1 {
		k = 1
	}
	first := i*k + 1
	if first >= n {
		return nil
	}
	last := first + k
	if last > n {
		last = n
	}
	children := make([]int, 0, last-first)
	for c := first; c < last; c++ {
		children = append(children, c)
	}
	return children
}

// treeDepth returns node i's distance from the root in the BFS k-ary tree.
// With k = 1 the depth IS the index, which is how the chain's replacement
// rule (accept a predecessor with a smaller index) generalises: a
// replacement predecessor is acceptable iff it sits no deeper than the
// current one.
func treeDepth(i, k int) int {
	if i <= 0 {
		return 0
	}
	if k <= 1 {
		return i
	}
	d := 0
	for i > 0 {
		i = (i - 1) / k
		d++
	}
	return d
}
