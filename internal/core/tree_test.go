package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"kascade/internal/transport"
)

// TestTreeMath pins the BFS k-ary tree arithmetic, including the k = 1
// degeneration to the chain (parent i-1, child {i+1}, depth = index).
func TestTreeMath(t *testing.T) {
	cases := []struct {
		i, k, n  int
		parent   int
		children []int
		depth    int
	}{
		{i: 0, k: 1, n: 4, parent: -1, children: []int{1}, depth: 0},
		{i: 2, k: 1, n: 4, parent: 1, children: []int{3}, depth: 2},
		{i: 3, k: 1, n: 4, parent: 2, children: nil, depth: 3},
		{i: 0, k: 2, n: 7, parent: -1, children: []int{1, 2}, depth: 0},
		{i: 1, k: 2, n: 7, parent: 0, children: []int{3, 4}, depth: 1},
		{i: 2, k: 2, n: 7, parent: 0, children: []int{5, 6}, depth: 1},
		{i: 6, k: 2, n: 7, parent: 2, children: nil, depth: 2},
		{i: 2, k: 2, n: 6, parent: 0, children: []int{5}, depth: 1}, // clipped fan-out
		{i: 15, k: 2, n: 16, parent: 7, children: nil, depth: 4},
		{i: 1, k: 3, n: 13, parent: 0, children: []int{4, 5, 6}, depth: 1},
		{i: 12, k: 3, n: 13, parent: 3, children: nil, depth: 2},
	}
	for _, c := range cases {
		if got := treeParent(c.i, c.k); got != c.parent {
			t.Errorf("treeParent(%d,%d) = %d, want %d", c.i, c.k, got, c.parent)
		}
		got := treeChildren(c.i, c.k, c.n)
		if len(got) != len(c.children) {
			t.Errorf("treeChildren(%d,%d,%d) = %v, want %v", c.i, c.k, c.n, got, c.children)
		} else {
			for j := range got {
				if got[j] != c.children[j] {
					t.Errorf("treeChildren(%d,%d,%d) = %v, want %v", c.i, c.k, c.n, got, c.children)
					break
				}
			}
		}
		if got := treeDepth(c.i, c.k); got != c.depth {
			t.Errorf("treeDepth(%d,%d) = %d, want %d", c.i, c.k, got, c.depth)
		}
		// Consistency: a node is always among its parent's children.
		if c.parent >= 0 {
			found := false
			for _, ch := range treeChildren(c.parent, c.k, c.n) {
				if ch == c.i {
					found = true
				}
			}
			if !found {
				t.Errorf("node %d missing from treeChildren(%d,%d,%d)", c.i, c.parent, c.k, c.n)
			}
		}
	}
}

// TestTreeArity pins the Plan.Topology parser.
func TestTreeArity(t *testing.T) {
	for topo, want := range map[string]int{"": 1, TopologyChain: 1, "tree:1": 1, "tree:2": 2, "tree:16": 16} {
		k, err := TreeArity(topo)
		if err != nil || k != want {
			t.Errorf("TreeArity(%q) = %d, %v, want %d", topo, k, err, want)
		}
	}
	for _, topo := range []string{TopologyScatterAllgather, "tree:0", "tree:-1", "tree:x", "ring", "tree:"} {
		if _, err := TreeArity(topo); err == nil {
			t.Errorf("TreeArity(%q) succeeded, want error", topo)
		}
	}
}

// TestPlanValidateTopology covers the plan-level topology rejections: a
// malformed topology never reaches a node, and the UDP fan-out (which has
// no relay pipeline to shape) cannot carry a tree.
func TestPlanValidateTopology(t *testing.T) {
	base := func() *Plan {
		return &Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: "b:1"}}}
	}
	p := base()
	p.Topology = TopologyTree(2)
	if err := p.Validate(); err != nil {
		t.Fatalf("tcp tree plan rejected: %v", err)
	}
	p = base()
	p.Topology = "ring"
	if err := p.Validate(); err == nil {
		t.Fatal("malformed topology accepted")
	}
	p = base()
	p.Transport = TransportUDP
	p.Topology = TopologyTree(2)
	for i := range p.Peers {
		p.Peers[i].PacketAddr = fmt.Sprintf("p%d:1", i)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("udp plan with tree topology accepted")
	}
	p.Topology = TopologyScatterAllgather
	if err := p.Validate(); err == nil {
		t.Fatal("udp plan with scatter-allgather topology accepted")
	}
	// scatter-allgather validates as a plan (callers dispatch it to
	// internal/mpibcast) but a Node must refuse to run it.
	p = base()
	p.Topology = TopologyScatterAllgather
	if err := p.Validate(); err != nil {
		t.Fatalf("tcp scatter-allgather plan rejected: %v", err)
	}
	_, err := NewNode(NodeConfig{Index: 1, Plan: *p, Network: transport.TCP{}, Listener: nopListener{}})
	if err == nil {
		t.Fatal("NewNode ran a composite topology")
	}
}

// nopListener satisfies transport.Listener for construction-only tests.
type nopListener struct{}

func (nopListener) Accept() (transport.Conn, error) { return nil, io.EOF }
func (nopListener) Close() error                    { return nil }
func (nopListener) Addr() string                    { return "nop:0" }

// runTreeSession runs one n-node tree broadcast over the in-memory fabric
// and verifies bit-perfect delivery at every receiver.
func runTreeSession(t *testing.T, nodes, k, size int) *SessionResult {
	t.Helper()
	fabric := transport.NewFabric(1 << 22)
	peers := make([]Peer, nodes)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("n%d:7000", i)}
	}
	sinks := make([]*collectSink, nodes)
	for i := 1; i < nodes; i++ {
		sinks[i] = &collectSink{}
	}
	payload := testPayload(size, int64(31*nodes+k))
	res, err := RunSession(context.Background(), SessionConfig{
		Peers:    peers,
		Opts:     Options{ChunkSize: 8 << 10, WindowChunks: 8},
		Topology: TopologyTree(k),
		NetworkFor: func(i int) transport.Network { return fabric.Host(peers[i].Name) },
		SinkFor: func(i int) io.Writer {
			if sinks[i] == nil {
				return nil
			}
			return sinks[i]
		},
		InputFile: bytes.NewReader(payload),
		InputSize: int64(size),
	})
	if err != nil {
		t.Fatalf("%d-node tree:%d session: %v", nodes, k, err)
	}
	if res.Report.TotalBytes != uint64(size) {
		t.Fatalf("report total %d, want %d", res.Report.TotalBytes, size)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("failure-free run reported failures: %+v", res.Report.Failures)
	}
	for i := 1; i < nodes; i++ {
		if !bytes.Equal(sinks[i].Bytes(), payload) {
			t.Fatalf("node %d payload mismatch (%d of %d bytes)", i, len(sinks[i].Bytes()), size)
		}
	}
	return res
}

// TestTreeSessionBitPerfect is the tentpole acceptance case: a 16-node
// binary tree delivers bit-perfect with a maximum hop depth of 4 (versus 15
// on the chain).
func TestTreeSessionBitPerfect(t *testing.T) {
	const nodes, k = 16, 2
	maxDepth := 0
	for i := 0; i < nodes; i++ {
		if d := treeDepth(i, k); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 4 {
		t.Fatalf("max hop depth of a %d-node %d-ary tree = %d, want 4", nodes, k, maxDepth)
	}
	runTreeSession(t, nodes, k, 256<<10)
}

// TestTreeSessionShapes sweeps small shapes, including arity larger than
// the node count (a flat star) and a 1-ary tree (the chain expressed as a
// tree, exercising the same worker machinery with a single child).
func TestTreeSessionShapes(t *testing.T) {
	for _, c := range []struct{ nodes, k int }{{3, 2}, {7, 2}, {7, 3}, {5, 8}, {4, 1}, {1, 2}, {2, 2}} {
		c := c
		t.Run(fmt.Sprintf("n%d_k%d", c.nodes, c.k), func(t *testing.T) {
			t.Parallel()
			runTreeSession(t, c.nodes, c.k, 96<<10)
		})
	}
}
