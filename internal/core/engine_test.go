package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"kascade/internal/transport"
)

// fakeHandler records the connections an Engine routes to it.
type fakeHandler struct {
	got   chan Role
	fails chan error
}

func newFakeHandler() *fakeHandler {
	return &fakeHandler{got: make(chan Role, 8), fails: make(chan error, 1)}
}

func (h *fakeHandler) handleWire(w *wire, role Role, from int) {
	h.got <- role
	_ = w.close()
}

func (h *fakeHandler) listenerFailed(err error) {
	select {
	case h.fails <- err:
	default:
	}
}

// dialHello opens a data-plane connection to addr and plays the opening
// HELLO for session sid (v1 when sid == 0).
func dialHello(t *testing.T, net transport.Network, addr string, role Role, from int, sid SessionID) *wire {
	t.Helper()
	c, err := net.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	w := newWire(c, SystemClock())
	if err := w.writeHelloFor(role, from, sid); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return w
}

func awaitRole(t *testing.T, h *fakeHandler, want Role, what string) {
	t.Helper()
	select {
	case role := <-h.got:
		if role != want {
			t.Fatalf("%s: routed role %v, want %v", what, role, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: connection never routed", what)
	}
}

// TestEngineSessionRouting checks that one shared listener routes each
// connection to the session named in its HELLO — v2 frames by their
// session ID, v1 frames to the default session 0.
func TestEngineSessionRouting(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	h0, h1, h2 := newFakeHandler(), newFakeHandler(), newFakeHandler()
	for sid, h := range map[SessionID]*fakeHandler{0: h0, 1: h1, 2: h2} {
		if _, err := e.register(sid, h, 1024, 4, ""); err != nil {
			t.Fatalf("register %d: %v", sid, err)
		}
		e.attach(sid, h)
	}

	client := fabric.Host("cli")
	dialHello(t, client, "srv:7000", RoleData, 3, 1)
	awaitRole(t, h1, RoleData, "session 1")
	dialHello(t, client, "srv:7000", RolePing, 4, 2)
	awaitRole(t, h2, RolePing, "session 2")
	dialHello(t, client, "srv:7000", RoleFetch, 5, 0) // v1 HELLO on the wire
	awaitRole(t, h0, RoleFetch, "v1 default session")

	select {
	case r := <-h1.got:
		t.Fatalf("session 1 got a stray connection (role %v)", r)
	default:
	}
}

// TestEngineParksEarlyConnections checks the prepare/start race cover: a
// connection for a session that has not registered yet is parked and
// flushed to the handler when the registration lands, and one whose
// session never registers is dropped at the park timeout.
func TestEngineParksEarlyConnections(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{ParkTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	client := fabric.Host("cli")

	// Early conn for session 9: parked now, flushed at register.
	dialHello(t, client, "srv:7000", RoleData, 1, 9)
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never parked")
		}
		time.Sleep(time.Millisecond)
	}
	h := newFakeHandler()
	if _, err := e.register(9, h, 1024, 4, ""); err != nil {
		t.Fatal(err)
	}
	// Registered but not yet attached: still parked (the node is mid-
	// prepare; nothing may be routed into it).
	if got := e.Stats().Parked; got != 1 {
		t.Fatalf("%d conns parked after register, want still 1", got)
	}
	e.attach(9, h)
	awaitRole(t, h, RoleData, "flushed parked conn")
	if got := e.Stats().Parked; got != 0 {
		t.Fatalf("%d conns still parked after flush", got)
	}

	// Conn for a session nobody registers: dropped at the park timeout.
	w := dialHello(t, client, "srv:7000", RoleData, 1, 77)
	_ = w.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := w.readType(); err == nil || transport.IsTimeout(err) {
		t.Fatalf("expired parked conn read: %v, want closed/reset", err)
	}
}

// TestEnginePoolBudget checks the per-session accounting: grants come out
// of the shared budget, a reservation that does not fit is refused with a
// typed *AdmissionError (no more silent floor-sized pools), and grants
// return to the budget on unregister.
func TestEnginePoolBudget(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	const chunk = 1 << 10
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{MemBudget: 10 * chunk})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	hA, hB, hC := newFakeHandler(), newFakeHandler(), newFakeHandler()
	if _, err := e.register(1, hA, chunk, 8, ""); err != nil { // fits: granted 8
		t.Fatal(err)
	}
	e.attach(1, hA)
	// 2 chunks left of the budget: an 8-chunk reservation is refused with
	// the typed admission error, not floored.
	var adErr *AdmissionError
	if _, err := e.register(2, hB, chunk, 8, ""); !errors.As(err, &adErr) {
		t.Fatalf("overload register: %v, want *AdmissionError", err)
	} else if adErr.Session != 2 {
		t.Fatalf("admission error names session %d, want 2", adErr.Session)
	}
	// A 2-chunk reservation still fits.
	if _, err := e.register(2, hB, chunk, 2, ""); err != nil {
		t.Fatal(err)
	}
	e.attach(2, hB)
	st := e.Stats()
	if st.PerSession[1] != 8*chunk {
		t.Fatalf("session 1 reserved %d, want %d", st.PerSession[1], 8*chunk)
	}
	if st.PerSession[2] != 2*chunk {
		t.Fatalf("session 2 reserved %d, want %d", st.PerSession[2], 2*chunk)
	}
	if st.PoolReserved != 10*chunk {
		t.Fatalf("total reserved %d, want %d", st.PoolReserved, 10*chunk)
	}
	if st.Refused != 1 {
		t.Fatalf("refused counter %d, want 1", st.Refused)
	}

	// Duplicate session IDs are refused.
	if _, err := e.register(1, hC, chunk, 2, ""); err == nil {
		t.Fatal("duplicate register accepted")
	}
	// A stale unregister (wrong handler) must not evict the owner.
	e.unregister(1, hC)
	if st := e.Stats(); st.Sessions != 2 {
		t.Fatalf("stale unregister removed a session: %d registered", st.Sessions)
	}

	// Releasing session 1 returns its grant; a new session can take it.
	e.unregister(1, hA)
	if st := e.Stats(); st.PoolReserved != 2*chunk {
		t.Fatalf("reserved %d after release, want %d", st.PoolReserved, 2*chunk)
	}
	if _, err := e.register(3, hC, chunk, 6, ""); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PerSession[3] != 6*chunk {
		t.Fatalf("session 3 reserved %d, want %d", st.PerSession[3], 6*chunk)
	}
}

// TestEngineParkReapsRemoteClose is the parked-connection leak fix: a
// parked dialer that gives up and closes its end frees the park slot
// immediately, well before ParkTimeout, and is counted as reaped.
func TestEngineParkReapsRemoteClose(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{ParkTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	client := fabric.Host("cli")

	w := dialHello(t, client, "srv:7000", RoleData, 1, 42) // never registered: parked
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never parked")
		}
		time.Sleep(time.Millisecond)
	}
	_ = w.close() // the dialer gives up long before the 1-minute ParkTimeout

	for e.Stats().Parked != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("parked slot still pinned after remote close: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := e.Stats(); st.ParkReaped != 1 || st.ParkExpired != 0 {
		t.Fatalf("reaped=%d expired=%d, want 1/0", st.ParkReaped, st.ParkExpired)
	}
}

// TestEngineParkedBytesSurviveAdoption: a parked connection that already
// sent protocol bytes (a fetch dialer's early PGET) must hand those bytes
// intact to the adopting session — the remote-close watcher peeks, never
// consumes.
func TestEngineParkedBytesSurviveAdoption(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{ParkTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	client := fabric.Host("cli")

	w := dialHello(t, client, "srv:7000", RoleFetch, 2, 7)
	if err := w.writePGet(123, 456); err != nil { // bytes arrive while parked
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the watcher a moment to observe the pending bytes, then adopt.
	time.Sleep(20 * time.Millisecond)

	type gotFrame struct {
		role     Role
		from     int
		lo, hi   uint64
		frameErr error
	}
	frames := make(chan gotFrame, 1)
	h := &funcHandler{fn: func(w *wire, role Role, from int) {
		g := gotFrame{role: role, from: from}
		w.setReadDeadlineIn(time.Second)
		typ, err := w.readType()
		if err != nil || typ != MsgPGet {
			g.frameErr = fmt.Errorf("first frame %v, err %v", typ, err)
		} else {
			g.lo, g.hi, g.frameErr = w.readPGet()
		}
		frames <- g
		_ = w.close()
	}}
	if _, err := e.register(7, h, 1024, 4, ""); err != nil {
		t.Fatal(err)
	}
	e.attach(7, h)

	select {
	case g := <-frames:
		if g.frameErr != nil {
			t.Fatalf("adopted conn corrupted: %v", g.frameErr)
		}
		if g.role != RoleFetch || g.from != 2 || g.lo != 123 || g.hi != 456 {
			t.Fatalf("got role=%v from=%d pget=[%d,%d)", g.role, g.from, g.lo, g.hi)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked conn never handed to the session")
	}
	if st := e.Stats(); st.ParkReaped != 0 {
		t.Fatalf("adoption counted as reap: %+v", st)
	}
}

// funcHandler adapts a function to connHandler for routing tests.
type funcHandler struct {
	fn func(w *wire, role Role, from int)
}

func (h *funcHandler) handleWire(w *wire, role Role, from int) { h.fn(w, role, from) }
func (h *funcHandler) listenerFailed(err error)                {}

// TestEngineCloseNotifiesSessions checks that closing the engine (the
// shared accept path dying) reaches every registered session.
func TestEngineCloseNotifiesSessions(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := newFakeHandler()
	if _, err := e.register(5, h, 1024, 2, ""); err != nil {
		t.Fatal(err)
	}
	e.attach(5, h)
	e.Close()
	select {
	case <-h.fails:
	case <-time.After(2 * time.Second):
		t.Fatal("registered session never told the listener died")
	}
	if _, err := e.register(6, newFakeHandler(), 1024, 2, ""); err == nil {
		t.Fatal("register on a closed engine accepted")
	}
}

// TestNodeRejectsForeignSession checks session-ID routing on a node that
// owns its listener: a v2 dialer naming another session is dropped, while
// v1 dialers and matching v2 dialers are served.
func TestNodeRejectsForeignSession(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	srvNet := fabric.Host("srv")
	l, err := srvNet.Listen("srv:7000")
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{
		Peers: []Peer{
			{Name: "sender", Addr: "other:7000"},
			{Name: "srv", Addr: "srv:7000"},
		},
		Opts:    Options{ChunkSize: 1 << 10, WindowChunks: 4, PingTimeout: 200 * time.Millisecond},
		Session: 5,
	}
	n, err := NewNode(NodeConfig{Index: 1, Plan: plan, Network: srvNet, Listener: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.prepare(); err != nil {
		t.Fatal(err)
	}
	n.ictx, n.cancel = context.WithCancel(context.Background())
	defer n.cancel()
	go n.acceptLoop()
	defer l.Close()

	client := fabric.Host("cli")
	ping := func(sid SessionID) bool {
		w := dialHello(t, client, "srv:7000", RolePing, 0, sid)
		defer w.close()
		if err := w.writePing(); err != nil {
			return false
		}
		_ = w.conn.SetReadDeadline(time.Now().Add(time.Second))
		typ, err := w.readType()
		return err == nil && typ == MsgPong
	}
	if !ping(5) {
		t.Fatal("matching session ping unanswered")
	}
	if !ping(0) {
		t.Fatal("v1 ping unanswered (backward compatibility broken)")
	}
	if ping(6) {
		t.Fatal("foreign-session ping answered")
	}
}
