package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"kascade/internal/transport"
)

// Dynamic membership (the late-join extension): a session started with N
// peers can admit further receivers while the broadcast is live. Node 0
// is the planner — AdmitJoiner appends the joiner to the member table,
// extends the current treeView by one leaf slot, and hands back a
// JoinGrant. The view (now one slot wider) propagates through the same
// three REORG channels self-reorganization already uses — rate-spoke
// replies, data-plane piggybacks, and dial proofs — upgraded to REORG2
// frames that carry the member table for slots beyond the start plan.
// The joiner's view parent reconciles the new child like any re-ranked
// target and starts serving it live data from the grant's catch-up
// boundary; everything before the boundary the joiner backfills itself
// with windowed PGETs against node 0 (the §III-D2 gap fetch generalized
// to ranges), spilling the live backlog to disk when it outgrows the
// session's memory reservation (joinState below).

// Typed membership errors: the control plane and CLI branch on these
// (via errors.Is/As and the wire status codes) instead of string-matching
// failure reasons.
var (
	// ErrSessionEnded rejects a join aimed at a session whose broadcast
	// already closed its ring (or was aborted).
	ErrSessionEnded = errors.New("kascade: session already ended")
	// ErrCatchUpEvicted aborts a catch-up whose pending range was evicted
	// at the source before the joiner could fetch it.
	ErrCatchUpEvicted = errors.New("kascade: catch-up range evicted at the source")
)

// JoinRefusedError is the planner's typed join refusal.
type JoinRefusedError struct{ Reason string }

func (e *JoinRefusedError) Error() string { return "kascade: join refused: " + e.Reason }

// ErrJoinRefused builds a typed join refusal.
func ErrJoinRefused(reason string) error { return &JoinRefusedError{Reason: reason} }

// Wire status codes for the membership errors, shared verbatim with the
// control plane's frame codes.
const (
	codeSessionEnded   = "session-ended"
	codeJoinRefused    = "join-refused"
	codeCatchUpEvicted = "catch-up-evicted"
)

// MembershipErrorCode classifies err into its wire status code
// ("session-ended", "join-refused", "catch-up-evicted"); empty for
// errors outside the membership family.
func MembershipErrorCode(err error) string {
	var jr *JoinRefusedError
	switch {
	case errors.Is(err, ErrSessionEnded):
		return codeSessionEnded
	case errors.As(err, &jr):
		return codeJoinRefused
	case errors.Is(err, ErrCatchUpEvicted):
		return codeCatchUpEvicted
	}
	return ""
}

// MembershipErrorFromCode reverses MembershipErrorCode: it rebuilds the
// typed error a wire status code stands for. ok is false for codes
// outside the membership family.
func MembershipErrorFromCode(code, msg string) (error, bool) {
	switch code {
	case codeSessionEnded:
		return ErrSessionEnded, true
	case codeJoinRefused:
		if msg == "" {
			msg = "refused by the session"
		}
		return ErrJoinRefused(msg), true
	case codeCatchUpEvicted:
		return ErrCatchUpEvicted, true
	}
	return nil, false
}

// JoinGrant is the planner's admission ticket: the joiner's assigned
// index, the full membership at admission, the size of the start plan
// (the frame-layout baseline every member shares), the catch-up boundary
// (live data flows from Head; [0, Head) is backfilled from node 0), and
// the membership view the graft rode in on.
type JoinGrant struct {
	Index     int     `json:"index"`
	Peers     []Peer  `json:"peers"`
	BasePeers int     `json:"base_peers"`
	Head      uint64  `json:"head"`
	Version   uint64  `json:"version"`
	Occupants []int32 `json:"occupants"`
}

// JoinSessionInfo describes a live session to a prospective joiner before
// it commits: enough to size its admission reservation and build its plan.
type JoinSessionInfo struct {
	Opts      Options `json:"opts"`
	Transport string  `json:"transport"`
	Topology  string  `json:"topology"`
	BasePeers int     `json:"base_peers"`
}

// Wire payloads of the RoleJoin conversation (JSON-framed, like REPORT).
type joinHelloMsg struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

type joinInfoMsg struct {
	Info *JoinSessionInfo `json:"info,omitempty"`
	Err  string           `json:"err,omitempty"`
	Code string           `json:"code,omitempty"`
}

type joinGrantMsg struct {
	Grant *JoinGrant `json:"grant,omitempty"`
	Err   string     `json:"err,omitempty"`
	Code  string     `json:"code,omitempty"`
}

func membershipWireError(err error) (msg, code string) {
	if err == nil {
		return "", ""
	}
	var jr *JoinRefusedError
	if errors.As(err, &jr) {
		// Carry the bare reason: the far end rebuilds the typed error
		// around it, so the prefix must not travel (it would nest).
		return jr.Reason, codeJoinRefused
	}
	return err.Error(), MembershipErrorCode(err)
}

func membershipErrorFromWire(msg, code string) error {
	if err, ok := MembershipErrorFromCode(code, msg); ok {
		return err
	}
	if msg == "" {
		msg = "join failed"
	}
	return fmt.Errorf("kascade: %s", msg)
}

// joinGate rejects joins on a session that is over or winding down.
// Caller holds n.mu.
func (n *Node) joinGateLocked() error {
	if n.closing {
		return ErrSessionEnded
	}
	select {
	case <-n.ringC:
		return ErrSessionEnded
	default:
	}
	if n.st != nil {
		if cause := n.st.AbortCause(); cause != nil {
			return ErrSessionEnded
		}
	}
	return nil
}

// joinPrecheck is the no-mutation half of admission, answered before the
// joiner commits its local resources.
func (n *Node) joinPrecheck() error {
	if n.cfg.Index != 0 {
		return fmt.Errorf("kascade: only node 0 admits joiners")
	}
	if n.reorg == nil {
		return ErrJoinRefused("session does not re-rank; late join requires a tree topology with rerank enabled")
	}
	if n.cfg.InputFile == nil {
		return ErrJoinRefused("late join requires a file-backed source at node 0")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joinGateLocked()
}

// catchUpHeadLocked picks the joiner's catch-up boundary: the laggard's
// reported ingest progress, floored to a chunk — everything below it has
// provably been broadcast and is fetchable from the file store without
// racing the live frontier. Refuses when the broadcast is too close to
// EOF for a graft to complete (mirroring the planner's EOF freeze).
// Caller holds g.mu.
func (g *reorganizer) catchUpHeadLocked() (uint64, error) {
	n := g.n
	for peer, done := range g.spoked {
		if done {
			return 0, ErrJoinRefused(fmt.Sprintf("broadcast is completing (node %d already finished)", peer))
		}
	}
	if len(g.reports) == 0 {
		return 0, nil
	}
	minHave := uint64(math.MaxUint64)
	for _, rep := range g.reports {
		if rep.Have < minHave {
			minHave = rep.Have
		}
	}
	if end, ok := n.st.End(); ok && end-minHave <= end/rerankEndSlack {
		return 0, ErrJoinRefused("broadcast is completing")
	}
	chunk := uint64(n.opts.ChunkSize)
	return minHave - minHave%chunk, nil
}

// AdmitJoiner grafts a late joiner onto the live broadcast: it appends p
// to the member table, extends the current view by one leaf slot (tail of
// the BFS order), and returns the grant the joiner's Node runs from. Node
// 0 only. Typed failures: *JoinRefusedError when the session cannot take
// joiners (or is completing), ErrSessionEnded once the ring is closing.
//
// The view install rides the same versioned-REORG path as re-ranking, so
// the joiner's parent discovers its new child through the next rate-spoke
// reply (or data-plane piggyback) and dials it like any re-graft target.
func (n *Node) AdmitJoiner(p Peer) (*JoinGrant, error) {
	if err := n.joinPrecheck(); err != nil {
		return nil, err
	}
	if p.Name == "" || p.Addr == "" {
		return nil, ErrJoinRefused("joiner needs a name and an address")
	}
	g := n.reorg
	// Lock order g.mu → n.mu matches the planner's fold/replan path. The
	// member append and view install happen under both locks so the
	// manager's settle handshake (rerank.go) can bar the door atomically.
	g.mu.Lock()
	defer g.mu.Unlock()
	head, err := g.catchUpHeadLocked()
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if err := n.joinGateLocked(); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	cur := n.peers()
	for _, q := range cur {
		if q.Addr == p.Addr {
			n.mu.Unlock()
			return nil, ErrJoinRefused(fmt.Sprintf("address %s is already a member", p.Addr))
		}
	}
	idx := len(cur)
	ext := append(append(make([]Peer, 0, len(cur)+1), cur...), p)
	n.members.Store(&ext)
	v := n.curView()
	occ := append(append(make([]int32, 0, len(v.occupant)+1), v.occupant...), int32(idx))
	next := viewFromOccupants(v.version+1, occ)
	n.installView(next)
	n.mu.Unlock()

	n.emit(TraceJoin, idx, head, fmt.Sprintf("admitted %s into slot %d", p.Name, len(occ)-1))
	return &JoinGrant{
		Index:     idx,
		Peers:     ext,
		BasePeers: n.basePeers,
		Head:      head,
		Version:   next.version,
		Occupants: append([]int32(nil), occ...),
	}, nil
}

// serveJoin is node 0's side of a RoleJoin connection: a two-phase
// conversation so the joiner can run its local engine admission between
// learning the session's options (JOININFO) and committing the graft
// (JOINGO → JOINOK). Nothing is mutated until JOINGO arrives, so a
// refused local admission leaves the session untouched.
func (n *Node) serveJoin(w *wire) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgJoin {
		return
	}
	var hello joinHelloMsg
	if err := w.readJSON(&hello); err != nil {
		return
	}
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	if err := n.joinPrecheck(); err != nil {
		msg, code := membershipWireError(err)
		_ = w.writeJSON(MsgJoinInfo, &joinInfoMsg{Err: msg, Code: code})
		return
	}
	info := &JoinSessionInfo{
		Opts:      n.opts,
		Transport: n.cfg.Plan.Transport,
		Topology:  n.cfg.Plan.Topology,
		BasePeers: n.basePeers,
	}
	if err := w.writeJSON(MsgJoinInfo, &joinInfoMsg{Info: info}); err != nil {
		return
	}
	// The joiner is now running its admission; give it the admit-queue
	// budget, not just a frame turnaround.
	w.setReadDeadlineIn(n.opts.FetchTimeout)
	typ, err = w.readType()
	if err != nil || typ != MsgJoinGo {
		return
	}
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	grant, err := n.AdmitJoiner(Peer{Name: hello.Name, Addr: hello.Addr})
	if err != nil {
		msg, code := membershipWireError(err)
		_ = w.writeJSON(MsgJoinOK, &joinGrantMsg{Err: msg, Code: code})
		return
	}
	_ = w.writeJSON(MsgJoinOK, &joinGrantMsg{Grant: grant})
}

// NegotiateJoin plays the joiner's side of the RoleJoin conversation
// against the sender's data address: HELLO+JOIN, read the session
// descriptor, run the caller's admit hook (typically Engine.AdmitClass
// with the descriptor-derived reservation), then commit with JOINGO and
// return the grant. An admit error abandons the negotiation before the
// session is touched.
func NegotiateJoin(network transport.Network, senderAddr string, sid SessionID, clk Clock, peer Peer, admit func(*JoinSessionInfo) error) (*JoinGrant, *JoinSessionInfo, error) {
	o := (Options{Clock: clk}).withDefaults()
	clk = o.Clock
	c, err := network.Dial(senderAddr, o.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("kascade: dialing sender for join: %w", err)
	}
	w := newWire(c, clk)
	defer w.close()
	w.setWriteDeadlineIn(o.GetTimeout)
	if err := w.writeHelloFor(RoleJoin, 0, sid); err != nil {
		return nil, nil, err
	}
	if err := w.writeJSON(MsgJoin, &joinHelloMsg{Name: peer.Name, Addr: peer.Addr}); err != nil {
		return nil, nil, err
	}
	w.setReadDeadlineIn(o.FetchTimeout)
	typ, err := w.readType()
	if err != nil {
		return nil, nil, err
	}
	if typ != MsgJoinInfo {
		return nil, nil, &errProtocol{want: MsgJoinInfo, got: typ}
	}
	var im joinInfoMsg
	if err := w.readJSON(&im); err != nil {
		return nil, nil, err
	}
	if im.Info == nil {
		return nil, nil, membershipErrorFromWire(im.Err, im.Code)
	}
	if admit != nil {
		if err := admit(im.Info); err != nil {
			return nil, im.Info, err
		}
	}
	w.setWriteDeadlineIn(o.GetTimeout)
	if err := w.writeType(MsgJoinGo); err != nil {
		return nil, im.Info, err
	}
	w.setReadDeadlineIn(o.FetchTimeout)
	typ, err = w.readType()
	if err != nil {
		return nil, im.Info, err
	}
	if typ != MsgJoinOK {
		return nil, im.Info, &errProtocol{want: MsgJoinOK, got: typ}
	}
	var gm joinGrantMsg
	if err := w.readJSON(&gm); err != nil {
		return nil, im.Info, err
	}
	if gm.Grant == nil {
		return nil, im.Info, membershipErrorFromWire(gm.Err, gm.Code)
	}
	return gm.Grant, im.Info, nil
}

// joinState serializes a late joiner's sink so it only ever sees a
// contiguous prefix of the broadcast: the backfill (catch-up bytes
// [0, head)) writes through in order while live chunks (≥ head) queue in
// an ordered backlog — arena-recycled buffers up to the session's memory
// reservation, then an unlinked disk spill — and once the backfill
// reaches head the backlog drains and the state flips to write-through.
type joinState struct {
	mu       sync.Mutex
	sink     io.Writer
	head     uint64 // catch-up boundary: live ingest starts here
	written  uint64 // contiguous payload bytes delivered to the sink
	budget   int64  // in-memory backlog bound (the session reservation)
	chunkCap int    // arena buffer size for backlog copies

	mem      [][]byte
	memBytes int64
	spill    *os.File
	spillW   int64

	caught bool
	failed error
	done   chan struct{}
	closed bool // done already closed

	// Buffer recycling seam; tests override to observe arena traffic.
	getBuf func(n int) []byte
	putBuf func(b []byte)
}

func newJoinState(sink io.Writer, head uint64, budget int64, chunkCap int) *joinState {
	if chunkCap < 1 {
		chunkCap = 1
	}
	js := &joinState{
		sink:     sink,
		head:     head,
		budget:   budget,
		chunkCap: chunkCap,
		done:     make(chan struct{}),
		getBuf: func(n int) []byte {
			return arena.get(n)
		},
		putBuf: func(b []byte) {
			arena.put(cap(b), b)
		},
	}
	if head == 0 || sink == nil {
		// Nothing to backfill (or nobody reading): write-through from the
		// first live chunk.
		js.caught = true
	}
	return js
}

// trivial reports whether there is no backfill to run.
func (js *joinState) trivial() bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.caught
}

// progress returns the contiguous bytes already delivered to the sink —
// the catch-up's resume offset.
func (js *joinState) progress() uint64 {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.written
}

// failure returns the recorded terminal error, if any.
func (js *joinState) failure() error {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.failed
}

func (js *joinState) closeDoneLocked() {
	if !js.closed {
		js.closed = true
		close(js.done)
	}
}

// live accepts one in-order live chunk (offset ≥ head): written through
// once caught up, queued in the backlog otherwise. Once the backlog has
// started spilling, every subsequent chunk spills too — order on disk is
// append order, and an in-memory chunk behind a spilled one would drain
// out of sequence.
func (js *joinState) live(b []byte) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.failed != nil {
		return js.failed
	}
	if js.caught {
		if js.sink != nil {
			if _, err := js.sink.Write(b); err != nil {
				return err
			}
		}
		js.written += uint64(len(b))
		return nil
	}
	if js.spill == nil && js.memBytes+int64(len(b)) <= js.budget {
		buf := js.getBuf(js.chunkCap)
		n := copy(buf, b)
		if n < len(b) {
			// Chunk larger than the arena class (should not happen: live
			// chunks are at most ChunkSize): fall back to an exact copy.
			buf = append([]byte(nil), b...)
			n = len(b)
		}
		js.mem = append(js.mem, buf[:n])
		js.memBytes += int64(n)
		return nil
	}
	if js.spill == nil {
		f, err := os.CreateTemp("", "kascade-join-spill-*")
		if err != nil {
			return fmt.Errorf("kascade: creating catch-up spill file: %w", err)
		}
		// Unlink immediately: the fd keeps the file alive, nothing leaks
		// if the process dies mid-catch-up.
		_ = os.Remove(f.Name())
		js.spill = f
	}
	if _, err := js.spill.Write(b); err != nil {
		return fmt.Errorf("kascade: writing catch-up spill: %w", err)
	}
	js.spillW += int64(len(b))
	return nil
}

// backfill accepts one in-order catch-up chunk (offset < head) and writes
// it straight through to the sink.
func (js *joinState) backfill(b []byte) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.failed != nil {
		return js.failed
	}
	if js.caught {
		return fmt.Errorf("kascade: internal: backfill after catch-up completed")
	}
	if js.sink != nil {
		if _, err := js.sink.Write(b); err != nil {
			return err
		}
	}
	js.written += uint64(len(b))
	return nil
}

// finish drains the live backlog into the sink — memory first, spill
// second, both in arrival order — and flips to write-through. The sink is
// then a contiguous prefix again and live chunks flow straight through.
func (js *joinState) finish() error {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.failed != nil {
		return js.failed
	}
	if js.caught {
		js.closeDoneLocked()
		return nil
	}
	for _, buf := range js.mem {
		if js.sink != nil {
			if _, err := js.sink.Write(buf); err != nil {
				return err
			}
		}
		js.written += uint64(len(buf))
		js.putBuf(buf)
	}
	js.mem, js.memBytes = nil, 0
	if js.spill != nil {
		if _, err := js.spill.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("kascade: rewinding catch-up spill: %w", err)
		}
		out := io.Writer(io.Discard)
		if js.sink != nil {
			out = js.sink
		}
		n, err := io.Copy(out, io.LimitReader(js.spill, js.spillW))
		js.written += uint64(n)
		cerr := js.spill.Close()
		js.spill = nil
		if err != nil {
			return fmt.Errorf("kascade: draining catch-up spill: %w", err)
		}
		if cerr != nil {
			return cerr
		}
	}
	js.caught = true
	js.closeDoneLocked()
	return nil
}

// fail records the terminal error, releases the backlog, and unblocks
// everyone waiting for parity.
func (js *joinState) fail(err error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.failed == nil {
		js.failed = err
	}
	for _, buf := range js.mem {
		js.putBuf(buf)
	}
	js.mem, js.memBytes = nil, 0
	if js.spill != nil {
		_ = js.spill.Close()
		js.spill = nil
	}
	js.closeDoneLocked()
}

// awaitCatchUp blocks until the joiner reached parity (or failed); nil
// immediately for everyone else. The re-rank manager gates its report
// epilogue on it so a joiner's ring spoke always certifies a complete
// sink.
func (n *Node) awaitCatchUp(ctx context.Context) error {
	js := n.joinSt
	if js == nil {
		return nil
	}
	select {
	case <-js.done:
		return js.failure()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rangeForgetError is fetchRange's typed FORGET answer: the source's
// retained window starts at Base, past the range we asked for.
type rangeForgetError struct{ Base uint64 }

func (e *rangeForgetError) Error() string {
	return fmt.Sprintf("kascade: catch-up source forgot data below %d", e.Base)
}

// runCatchUp is the joiner's backfill driver: fetch [0, head) from node 0
// in PGET windows, then drain the live backlog to parity. A terminal
// failure abandons the node with the typed cause recorded on joinState.
func (n *Node) runCatchUp(ctx context.Context) {
	js := n.joinSt
	if err := n.catchUp(ctx); err != nil {
		js.fail(err)
		n.abandon(fmt.Sprintf("catch-up failed: %v", err))
		return
	}
	if err := js.finish(); err != nil {
		js.fail(err)
		n.abandon(fmt.Sprintf("catch-up drain failed: %v", err))
	}
}

// catchUp fetches [progress, head) in windows sized like the session's
// replay window, resuming from the contiguous sink progress after any
// broken connection. One FORGET triggers a refetch from the resume
// offset; a second FORGET with no progress in between means the range is
// genuinely gone and the catch-up dies with ErrCatchUpEvicted.
func (n *Node) catchUp(ctx context.Context) error {
	js := n.joinSt
	if js.trivial() {
		return nil
	}
	n.emit(TraceGapFetchStart, 0, js.head, "catch-up")
	window := uint64(n.opts.ChunkSize) * uint64(n.opts.WindowChunks)
	retries, forgot := 0, false
	for {
		from := js.progress()
		if from >= js.head {
			n.emit(TraceGapFetchDone, 0, js.head, "catch-up")
			return nil
		}
		to := from + window
		if to > js.head {
			to = js.head
		}
		err := n.fetchRange(ctx, from, to)
		if err == nil {
			retries, forgot = 0, false
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var fe *rangeForgetError
		if errors.As(err, &fe) {
			if forgot && js.progress() == from {
				return fmt.Errorf("%w: source retains only offsets ≥ %d, need %d", ErrCatchUpEvicted, fe.Base, from)
			}
			forgot = true
			continue
		}
		if js.progress() > from {
			retries = 0
		} else {
			retries++
		}
		if retries > n.opts.DialRetries {
			return fmt.Errorf("kascade: catch-up stalled at %d of %d: %w", js.progress(), js.head, err)
		}
	}
}

// fetchRange plays one PGET window [from, to) against node 0 — exactly
// the §III-D2 gap-fetch conversation, range-sized — writing each chunk
// through the joinState backfill path.
func (n *Node) fetchRange(ctx context.Context, from, to uint64) error {
	c, err := n.cfg.Network.Dial(n.peers()[0].Addr, n.opts.DialTimeout)
	if err != nil {
		return err
	}
	w := n.newWire(c)
	defer w.close()
	n.countRepairFetch()
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	if err := w.writeHelloFor(RoleFetch, n.cfg.Index, n.sid); err != nil {
		return err
	}
	if err := w.writePGet(from, to); err != nil {
		return err
	}
	js := n.joinSt
	off := from
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w.setReadDeadlineIn(n.opts.FetchTimeout)
		typ, err := w.readType()
		if err != nil {
			return err
		}
		switch typ {
		case MsgData:
			ck, err := w.readData(n.pool)
			if err != nil {
				return err
			}
			size := uint64(len(ck.bytes()))
			werr := js.backfill(ck.bytes())
			ck.release()
			if werr != nil {
				return werr
			}
			off += size
			n.emit(TraceChunk, -1, n.bytesIn.Add(size), "")
		case MsgEnd:
			if _, err := w.readUint64(); err != nil {
				return err
			}
			if off < to {
				return fmt.Errorf("kascade: catch-up fetch ended early at %d of %d", off, to)
			}
			return nil
		case MsgForget:
			base, err := w.readUint64()
			if err != nil {
				return err
			}
			return &rangeForgetError{Base: base}
		default:
			return &errProtocol{want: MsgData, got: typ}
		}
	}
}
