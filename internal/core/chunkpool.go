package core

import (
	"sync"
	"sync/atomic"
)

// bufArena recycles chunk backing arrays ACROSS pools: sessions (and their
// pools) come and go — a multiplexed engine churns through dozens per
// second — but the payload buffers stay hot instead of being re-allocated
// (and re-zeroed: a fresh 256 KiB make() is a mallocgcLarge + memclr on
// every miss) for every broadcast. One sync.Pool per buffer size; the GC
// still reclaims idle arenas, so a burst of large-chunk sessions does not
// pin memory forever.
type bufArena struct {
	pools sync.Map // int (buffer size) -> *sync.Pool of *[]byte
}

var arena bufArena

func (a *bufArena) get(size int) []byte {
	if p, ok := a.pools.Load(size); ok {
		if b, _ := p.(*sync.Pool).Get().(*[]byte); b != nil {
			return *b
		}
	}
	return make([]byte, size)
}

func (a *bufArena) put(size int, b []byte) {
	p, ok := a.pools.Load(size)
	if !ok {
		p, _ = a.pools.LoadOrStore(size, &sync.Pool{})
	}
	b = b[:cap(b)]
	p.(*sync.Pool).Put(&b)
}

// chunkPool recycles the fixed-size payload buffers that flow through the
// relay hot path. It is a bounded free list: get reuses a parked chunk when
// one is available and allocates otherwise; release parks the chunk again
// unless the list is full (the buffer is then dropped to the GC). A bounded
// list keeps steady-state allocations at zero while capping the memory the
// pool can pin.
// poolSlack is how many buffers beyond the window capacity a default pool
// parks: enough for the frames in flight outside the window (the read in
// progress, sink writes, replay references) without growing the footprint
// noticeably.
const poolSlack = 8

type chunkPool struct {
	size int         // payload capacity of every pooled buffer
	free chan *chunk // parked, zero-ref chunks
}

func newChunkPool(size, capacity int) *chunkPool {
	if capacity < 1 {
		capacity = 1
	}
	return &chunkPool{size: size, free: make(chan *chunk, capacity)}
}

// get returns a chunk with an n-byte payload and a reference count of one.
// Requests larger than the pool's buffer size are served by a one-off
// allocation that bypasses the free list entirely.
func (p *chunkPool) get(n int) *chunk {
	if p == nil || n > p.size {
		c := &chunk{buf: make([]byte, n), n: n}
		c.refs.Store(1)
		return c
	}
	var c *chunk
	select {
	case c = <-p.free:
	default:
		c = &chunk{pool: p, buf: arena.get(p.size)}
	}
	c.n = n
	c.refs.Store(1)
	return c
}

// drain hands every parked buffer back to the cross-session arena — the
// session is over, its pool is about to die, but the next broadcast with
// the same chunk size should not have to allocate (and zero) fresh
// buffers. Chunks still referenced elsewhere are untouched; whatever they
// park after this point goes to the GC with the pool.
func (p *chunkPool) drain() {
	if p == nil {
		return
	}
	for {
		select {
		case c := <-p.free:
			arena.put(p.size, c.buf)
		default:
			return
		}
	}
}

// chunk is a reference-counted payload buffer. Ownership rules:
//
//   - whoever holds a reference may read c.bytes(); the backing array is
//     guaranteed not to be recycled until every reference is released.
//   - windowStore.Append takes ownership of the caller's reference; callers
//     that still need the payload afterwards (e.g. to write it to a local
//     sink) must retain before appending.
//   - ChunkAt/TryChunkAt return an extra reference the caller must release.
//
// Only the sole owner of a chunk (refs == 1, not yet shared) may mutate its
// payload or call truncate.
type chunk struct {
	pool *chunkPool // nil for oversize one-off buffers
	refs atomic.Int32
	buf  []byte // full backing array
	n    int    // payload length
}

// bytes returns the payload. Valid only while the caller holds a reference.
func (c *chunk) bytes() []byte { return c.buf[:c.n] }

// retain adds a reference and returns c for chaining.
func (c *chunk) retain() *chunk {
	c.refs.Add(1)
	return c
}

// release drops one reference; the last release parks the buffer back in
// its pool (or leaves it to the GC for one-off and overflow chunks).
func (c *chunk) release() {
	if n := c.refs.Add(-1); n > 0 {
		return
	} else if n < 0 {
		panic("kascade: chunk released more times than retained")
	}
	if c.pool == nil {
		return
	}
	select {
	case c.pool.free <- c:
	default:
		// Free list full: recycle the backing array across sessions
		// instead of dropping it to the GC.
		arena.put(c.pool.size, c.buf)
	}
}

// truncate shortens the payload to n bytes (short final read). Only the
// sole owner may call it.
func (c *chunk) truncate(n int) {
	if n < 0 || n > len(c.buf) {
		panic("kascade: chunk truncate out of range")
	}
	c.n = n
}
