package core

import (
	"errors"
	"fmt"

	"kascade/internal/transport"
)

// This file is the node's accept side: connection dispatch for nodes that
// own their listener, and the role-dispatch entry point (handleWire) that
// both that path and the shared Engine route through — ping answering,
// upstream adoption, fetch serving, and ring-report collection.

// acceptLoop serves the node's dedicated listener. Engine-attached nodes
// have no accept loop of their own: the engine parses the HELLO and calls
// handleWire directly.
func (n *Node) acceptLoop() {
	for {
		c, err := n.cfg.Listener.Accept()
		if err != nil {
			// Listener gone: host killed or shutting down. If the
			// node is still mid-transfer this is fatal for it.
			n.listenerFailed(err)
			return
		}
		go n.handleConn(c)
	}
}

// handleConn parses the opening HELLO (v1 or v2) of one inbound connection
// on the node's own listener. A v1 dialer is always accepted (the node is
// the only session behind this listener); a v2 dialer must name this
// node's session — mismatches are routing errors and are dropped.
func (n *Node) handleConn(c transport.Conn) {
	w := n.newWire(c)
	w.setReadDeadlineIn(n.opts.GetTimeout)
	role, from, sid, err := w.readHelloAny()
	if err != nil || (sid != 0 && sid != n.sid) {
		_ = w.close()
		return
	}
	n.handleWire(w, role, from)
}

// handleWire adopts one inbound connection whose HELLO is already parsed.
// It is the connHandler entry point the shared Engine routes through, and
// the tail of handleConn for nodes owning their listener.
func (n *Node) handleWire(w *wire, role Role, from int) {
	w.now = n.clk.Now
	switch role {
	case RolePing:
		// Liveness probe (§III-D1): answer promptly even mid-transfer.
		w.setReadDeadlineIn(n.opts.PingTimeout)
		if typ, err := w.readType(); err == nil && typ == MsgPing {
			w.setWriteDeadlineIn(n.opts.PingTimeout)
			_ = w.writePong()
		}
		_ = w.close()
	case RoleData:
		w.setReadDeadlineIn(0)
		select {
		case n.upConns <- &upstreamConn{w: w, from: from}:
		case <-n.ictx.Done():
			_ = w.close()
		}
	case RoleFetch:
		if n.cfg.Index != 0 {
			_ = w.close()
			return
		}
		n.serveFetch(w, from)
	case RoleReport:
		if n.cfg.Index != 0 {
			_ = w.close()
			return
		}
		n.receiveRingReport(w, from)
	case RoleRate:
		// Re-ranking rate spokes terminate at the planner on node 0.
		if n.cfg.Index != 0 || n.reorg == nil {
			_ = w.close()
			return
		}
		n.serveRateSpoke(w)
	case RoleJoin:
		// Late-join admission terminates at the planner on node 0.
		if n.cfg.Index != 0 {
			_ = w.close()
			return
		}
		n.serveJoin(w)
	default:
		_ = w.close()
	}
}

// serveFetch answers a PGET range request from the sender's store (§III-D2).
func (n *Node) serveFetch(w *wire, from int) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgPGet {
		return
	}
	lo, hi, err := w.readPGet()
	if err != nil {
		return
	}
	for off := lo; off < hi; {
		c, err := n.st.ChunkAt(off)
		var fe *ForgetError
		switch {
		case errors.As(err, &fe):
			// Streamed source recycled its buffer: the requester
			// must abandon. Record it now so the sender's final
			// report accounts for the cascade (§III-D2).
			w.setWriteDeadlineIn(n.opts.GetTimeout)
			_ = w.writeForget(fe.Base)
			n.recordFailure(from, fmt.Sprintf("abandoned: offset %d recycled at sender (min %d)", off, fe.Base), off)
			return
		case err != nil:
			return
		}
		payload := c.bytes()
		if rem := hi - off; uint64(len(payload)) > rem {
			payload = payload[:rem]
		}
		w.setWriteDeadlineIn(n.opts.FetchTimeout)
		werr := w.writeData(payload)
		c.release()
		if werr != nil {
			return
		}
		off += uint64(len(payload))
	}
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = w.writeEnd(hi)
}

// receiveRingReport handles the last node's ring-closing connection.
func (n *Node) receiveRingReport(w *wire, from int) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.ReportTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgReport {
		return
	}
	rep, err := w.readReport()
	if err != nil {
		return
	}
	if n.reorg != nil && from > 0 && from < len(n.peers()) {
		// A spoke proves its sender finished: feed the re-ranking planner
		// so it stops considering the node for migrations (its rate
		// reports have ceased and would otherwise stay mid-stream stale).
		n.reorg.noteSpoke(from)
	}
	if n.cfg.Plan.Transport == TransportUDP {
		// The datagram fan-out has no pipeline: every receiver closes its
		// own ring connection. Acknowledge it immediately and publish the
		// final report once all receivers reported or were recorded dead.
		n.setUpReport(rep)
		n.mu.Lock()
		n.udpReports++
		n.mu.Unlock()
		n.maybeCloseUDPRing()
		w.setWriteDeadlineIn(n.opts.GetTimeout)
		_ = w.writePassed()
		return
	}
	if n.treeK > 1 {
		// Tree fan-out: several leaves (plus interior nodes with late
		// detections) each close their own ring spoke. Acknowledge each
		// immediately and accumulate; the tree manager publishes the
		// merged report once every child subtree completed its PASSED
		// exchange (tree.go), which cannot happen before all spokes land.
		n.setUpReport(rep)
		w.setWriteDeadlineIn(n.opts.GetTimeout)
		_ = w.writePassed()
		return
	}
	// Fold in the sender's own observations (e.g. abandons recorded by
	// the fetch server) before publishing.
	n.mu.Lock()
	rep.Merge(&Report{Failures: append([]Failure(nil), n.detected...)})
	n.mu.Unlock()
	n.setRingReport(rep)
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = w.writePassed()
}
