package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"kascade/internal/transport"
)

// schedTestStore builds a windowStore sized for scheduler tests.
func schedTestStore(chunk, window int) *windowStore {
	return newWindowStore(chunk, window, newChunkPool(chunk, window+poolSlack))
}

// collectTurn runs next() on a background goroutine so tests can assert
// whether (and when) a turn is delivered.
func collectTurn(e *schedEntry, off uint64) chan schedTurn {
	ch := make(chan schedTurn, 1)
	go func() { ch <- e.next(off) }()
	return ch
}

func mustTurn(t *testing.T, ch chan schedTurn, what string) schedTurn {
	t.Helper()
	select {
	case turn := <-ch:
		return turn
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: no turn delivered", what)
		return schedTurn{}
	}
}

func releaseTurn(turn schedTurn) {
	for _, c := range turn.batch {
		c.release()
	}
}

// TestSchedulerWeightedBudgets: one scheduled turn claims weight×quantum
// bytes — an interactive session drains four bulk quanta per rotation.
func TestSchedulerWeightedBudgets(t *testing.T) {
	s := newScheduler(1, 1024, 0, DefaultClasses(), nil)
	defer s.close()

	const chunk = 256
	payload := make([]byte, 64<<10)
	newEntry := func(class string) *schedEntry {
		st := newFileStore(bytes.NewReader(payload), int64(len(payload)), chunk, newChunkPool(chunk, 4))
		return s.register(st, class, 1<<20, 256)
	}

	bulk := newEntry(ClassBulk)
	if turn := mustTurn(t, collectTurn(bulk, 0), "bulk"); turn.n != 1024 || len(turn.batch) != 4 {
		t.Fatalf("bulk turn claimed %d bytes in %d chunks, want 1024 in 4", turn.n, len(turn.batch))
	} else {
		releaseTurn(turn)
	}

	interactive := newEntry(ClassInteractive)
	if turn := mustTurn(t, collectTurn(interactive, 0), "interactive"); turn.n != 4096 || len(turn.batch) != 16 {
		t.Fatalf("interactive turn claimed %d bytes in %d chunks, want 4096 in 16", turn.n, len(turn.batch))
	} else {
		releaseTurn(turn)
	}

	// Unknown class names weigh 1, and the session's MaxBatchBytes caps
	// the budget regardless of weight.
	odd := newEntry("no-such-class")
	if turn := mustTurn(t, collectTurn(odd, 0), "unknown class"); turn.n != 1024 {
		t.Fatalf("unknown-class turn claimed %d bytes, want 1024", turn.n)
	} else {
		releaseTurn(turn)
	}
	st := newFileStore(bytes.NewReader(payload), int64(len(payload)), chunk, newChunkPool(chunk, 4))
	capped := s.register(st, ClassInteractive, 512, 256)
	if turn := mustTurn(t, collectTurn(capped, 0), "capped"); turn.n != 512 {
		t.Fatalf("capped turn claimed %d bytes, want 512", turn.n)
	} else {
		releaseTurn(turn)
	}

	// Per-class accounting reached the stats.
	stats := s.classStats()
	if stats[ClassBulk].turns == 0 || stats[ClassInteractive].bytes < 4096 {
		t.Fatalf("scheduler class stats missing turns: %+v", stats)
	}
}

// TestSchedulerBatchedWakeups: a session whose claims fill its threshold
// is not woken per chunk — the store notify re-queues it only once a full
// quantum is buffered, and EOF flushes whatever remains immediately.
func TestSchedulerBatchedWakeups(t *testing.T) {
	const chunk, window = 64, 32 // ring holds 2 KiB; threshold clamp is 1 KiB
	s := newScheduler(1, 256, 0, map[string]int{ClassBulk: 1}, NewFakeClock(time.Unix(1000, 0)))
	defer s.close()
	ws := schedTestStore(chunk, window)
	e := s.register(ws, ClassBulk, 1<<20, 64)

	appendChunks := func(n int) {
		for i := 0; i < n; i++ {
			if err := ws.AppendBytes(bytes.Repeat([]byte{'x'}, chunk)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}

	// Fill a whole budget (4 chunks) before the first request: the claim
	// comes back full and raises the arm threshold to the full budget.
	appendChunks(4)
	turn := mustTurn(t, collectTurn(e, 0), "first turn")
	if turn.n != 256 {
		t.Fatalf("first turn claimed %d bytes, want 256", turn.n)
	}
	releaseTurn(turn)

	// Hot: the next request parks, and a single sub-quantum chunk must
	// NOT wake it — that is the batched wakeup.
	ch := collectTurn(e, 256)
	time.Sleep(20 * time.Millisecond) // let the worker arm the notify
	appendChunks(1)
	select {
	case turn := <-ch:
		t.Fatalf("sub-quantum append woke a threshold-armed session (turn of %d bytes)", turn.n)
	case <-time.After(100 * time.Millisecond):
	}
	appendChunks(3) // quantum complete: one notify, one turn
	turn = mustTurn(t, ch, "quantum turn")
	if turn.n != 256 || len(turn.batch) != 4 {
		t.Fatalf("quantum turn claimed %d bytes in %d chunks, want 256 in 4", turn.n, len(turn.batch))
	}
	releaseTurn(turn)
	ws.SetLowWater(512)

	// EOF flushes a partial backlog immediately, hot or not.
	ch = collectTurn(e, 512)
	time.Sleep(20 * time.Millisecond)
	appendChunks(1)
	ws.Finish(512 + chunk)
	turn = mustTurn(t, ch, "tail flush")
	if turn.err != nil || turn.n != chunk {
		t.Fatalf("tail turn = %d bytes, err %v; want %d bytes", turn.n, turn.err, chunk)
	}
	releaseTurn(turn)
	if turn := mustTurn(t, collectTurn(e, 512+chunk), "EOF"); turn.err != io.EOF {
		t.Fatalf("post-end turn err = %v, want io.EOF", turn.err)
	}
}

// TestSchedulerAbortWakesParkedSession: poisoning the store must release a
// parked session with the abort cause — no goroutine may hang on a dead
// broadcast.
func TestSchedulerAbortWakesParkedSession(t *testing.T) {
	s := newScheduler(1, 256, 0, nil, nil)
	defer s.close()
	ws := schedTestStore(64, 8)
	e := s.register(ws, ClassBulk, 1<<20, 64)

	ch := collectTurn(e, 0)
	time.Sleep(20 * time.Millisecond)
	cause := errors.New("session killed")
	ws.Abort(cause)
	if turn := mustTurn(t, ch, "abort"); turn.err != cause {
		t.Fatalf("turn err = %v, want the abort cause", turn.err)
	}
}

// TestSchedulerDetachReleasesParkedSession: detaching (session end) and
// closing (engine end) both hand parked sessions the inline marker so they
// fall back to the direct store path instead of hanging.
func TestSchedulerDetachReleasesParkedSession(t *testing.T) {
	s := newScheduler(1, 256, 0, nil, nil)
	ws := schedTestStore(64, 8)
	e := s.register(ws, ClassBulk, 1<<20, 64)
	ch := collectTurn(e, 0)
	time.Sleep(20 * time.Millisecond)
	s.detach(e)
	if turn := mustTurn(t, ch, "detach"); !turn.inline {
		t.Fatalf("detached turn = %+v, want inline fallback", turn)
	}
	// After detach, next() answers inline immediately.
	if turn := e.next(0); !turn.inline {
		t.Fatalf("post-detach next = %+v, want inline", turn)
	}

	ws2 := schedTestStore(64, 8)
	e2 := s.register(ws2, ClassBulk, 1<<20, 64)
	ch2 := collectTurn(e2, 0)
	time.Sleep(20 * time.Millisecond)
	s.close()
	if turn := mustTurn(t, ch2, "close"); !turn.inline {
		t.Fatalf("close turn = %+v, want inline fallback", turn)
	}
}

// TestEngineParkPerSessionCap: a flood of dials naming one bogus session
// may pin at most MaxParkedPerSession park slots — the rest are refused
// and counted — while the global park stays available to other sessions.
func TestEngineParkPerSessionCap(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{
		MaxParkedPerSession: 2,
		ParkTimeout:         5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	client := fabric.Host("cli")

	for i := 0; i < 4; i++ {
		dialHello(t, client, "srv:7000", RoleData, i, 77)
	}
	waitStats(t, e, func(st EngineStats) bool {
		return st.Parked == 2 && st.ParkSessionOverflow == 2
	}, "per-session cap")

	// A different session still parks: the cap is per session, not global.
	dialHello(t, client, "srv:7000", RoleData, 9, 78)
	waitStats(t, e, func(st EngineStats) bool { return st.Parked == 3 }, "sibling session parks")
}

// TestEngineParkPerIPCap: one remote IP may pin at most MaxParkedPerIP
// park slots across however many session IDs it invents; other dialers
// are unaffected.
func TestEngineParkPerIPCap(t *testing.T) {
	fabric := transport.NewFabric(64 << 10)
	e, err := NewEngine(fabric.Host("srv"), "srv:7000", EngineOptions{
		MaxParkedPerIP: 2,
		ParkTimeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	flood := fabric.Host("attacker")
	for i := 0; i < 4; i++ {
		dialHello(t, flood, "srv:7000", RoleData, i, SessionID(100+i))
	}
	waitStats(t, e, func(st EngineStats) bool {
		return st.Parked == 2 && st.ParkIPOverflow == 2
	}, "per-IP cap")

	// An honest dialer from another host still parks.
	dialHello(t, fabric.Host("cli"), "srv:7000", RoleData, 1, 200)
	waitStats(t, e, func(st EngineStats) bool { return st.Parked == 3 }, "other host parks")
}

// waitStats polls the engine stats until cond holds (the accept path is
// asynchronous) or the deadline passes.
func waitStats(t *testing.T, e *Engine, cond func(EngineStats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if cond(e.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats never converged: %+v", what, e.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedulerFlushTimer: a threshold arm must not
// strand a sub-quantum backlog when the producer pauses mid-stream — the
// flush timer demotes the session to cold and delivers what is buffered.
func TestSchedulerFlushTimer(t *testing.T) {
	const chunk = 64
	clk := NewFakeClock(time.Unix(1000, 0))
	s := newScheduler(1, 256, 0, map[string]int{ClassBulk: 1}, clk)
	defer s.close()
	ws := schedTestStore(chunk, 32)
	e := s.register(ws, ClassBulk, 1<<20, 64)

	appendChunks := func(n int) {
		for i := 0; i < n; i++ {
			if err := ws.AppendBytes(bytes.Repeat([]byte{'y'}, chunk)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}

	// A full first claim raises the arm threshold to the full budget.
	appendChunks(4)
	turn := mustTurn(t, collectTurn(e, 0), "first turn")
	if turn.n != 256 {
		t.Fatalf("first turn claimed %d bytes, want 256", turn.n)
	}
	releaseTurn(turn)
	ws.SetLowWater(256)

	// Park at the threshold, then trickle ONE sub-quantum chunk and stop (a paused
	// producer, no EOF): the threshold alone would never fire.
	ch := collectTurn(e, 256)
	time.Sleep(20 * time.Millisecond) // let the worker arm notify + flush timer
	appendChunks(1)
	select {
	case turn := <-ch:
		t.Fatalf("sub-quantum append woke a threshold-armed session early (%d bytes)", turn.n)
	case <-time.After(50 * time.Millisecond):
	}
	clk.Advance(schedFlushDelay + time.Millisecond)
	turn = mustTurn(t, ch, "flush")
	if turn.err != nil || turn.n != chunk {
		t.Fatalf("flushed turn = %d bytes, err %v; want the stranded %d-byte chunk", turn.n, turn.err, chunk)
	}
	releaseTurn(turn)
}
