package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"kascade/internal/transport"
)

// muxTestOptions are engine options scaled for fast in-memory iteration
// with real (small) failure-detection timeouts.
func muxTestOptions(chunk int) Options {
	return Options{
		ChunkSize:           chunk,
		WindowChunks:        8,
		WriteStallTimeout:   100 * time.Millisecond,
		PingTimeout:         60 * time.Millisecond,
		DialTimeout:         250 * time.Millisecond,
		DialRetries:         2,
		GetTimeout:          time.Second,
		FetchTimeout:        3 * time.Second,
		ReportTimeout:       3 * time.Second,
		UpstreamIdleTimeout: 1500 * time.Millisecond,
	}
}

// verifySink checks the received stream against the expected payload as it
// arrives and can be armed to fail after a byte budget (the crash proxy).
type verifySink struct {
	want    []byte
	failAt  int // fail the write that crosses this offset (0 = never)
	mu      sync.Mutex
	off     int
	corrupt bool
}

func (s *verifySink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.off + len(p)
	if end > len(s.want) || !bytes.Equal(p, s.want[s.off:end]) {
		s.corrupt = true
	}
	if s.failAt > 0 && end >= s.failAt {
		return 0, fmt.Errorf("injected sink failure at offset %d", s.off)
	}
	s.off = end
	return len(p), nil
}

func (s *verifySink) state() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off, s.corrupt
}

// muxHarness is a set of shared per-host engines over one fabric, ready to
// carry overlapping broadcast sessions.
type muxHarness struct {
	fabric  *transport.Fabric
	peers   []Peer
	engines []*Engine
}

func newMuxHarness(t *testing.T, hosts int) *muxHarness {
	t.Helper()
	h := &muxHarness{fabric: transport.NewFabric(1 << 20)}
	for i := 0; i < hosts; i++ {
		name := fmt.Sprintf("n%d", i+1)
		h.peers = append(h.peers, Peer{Name: name, Addr: name + ":7000"})
		e, err := NewEngine(h.fabric.Host(name), name+":7000", EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		h.engines = append(h.engines, e)
	}
	return h
}

// session launches one broadcast with the given session ID and per-node
// verifying sinks over the shared engines.
func (h *muxHarness) session(ctx context.Context, sid SessionID, payload []byte, sinks []*verifySink, chunk int) (*SessionResult, error) {
	cfg := SessionConfig{
		Peers:      h.peers,
		Opts:       muxTestOptions(chunk),
		Session:    sid,
		NetworkFor: func(i int) transport.Network { return h.fabric.Host(h.peers[i].Name) },
		EngineFor:  func(i int) *Engine { return h.engines[i] },
		SinkFor:    func(i int) io.Writer { return sinks[i] },
		InputFile:  bytes.NewReader(payload),
		InputSize:  int64(len(payload)),
	}
	return RunSession(ctx, cfg)
}

// patternPayload builds a session-distinct deterministic payload.
func patternPayload(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

// TestEngineMuxConcurrentSessions runs many overlapping broadcasts with
// mixed payload sizes through one engine (single data listener) per host
// and demands bit-perfect delivery on every receiver of every session.
func TestEngineMuxConcurrentSessions(t *testing.T) {
	const sessions, hosts, chunk = 16, 4, 32 << 10
	h := newMuxHarness(t, hosts)

	payloads := make([][]byte, sessions)
	sinks := make([][]*verifySink, sessions)
	results := make([]*SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		// Mixed sizes with ragged tails: every session ends on a
		// different short final chunk.
		payloads[s] = patternPayload((s+1)*192<<10+4097*s+1, byte(s))
		sinks[s] = make([]*verifySink, hosts)
		for i := range sinks[s] {
			sinks[s][i] = &verifySink{want: payloads[s]}
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = h.session(context.Background(), SessionID(s+1), payloads[s], sinks[s], chunk)
		}(s)
	}
	wg.Wait()

	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s+1, errs[s])
		}
		if n := len(results[s].Report.Failures); n != 0 {
			t.Errorf("session %d reported %d failures: %v", s+1, n, results[s].Report)
		}
		if got := results[s].Report.TotalBytes; got != uint64(len(payloads[s])) {
			t.Errorf("session %d reported %d bytes, want %d", s+1, got, len(payloads[s]))
		}
		for i := 1; i < hosts; i++ {
			off, corrupt := sinks[s][i].state()
			if corrupt || off != len(payloads[s]) {
				t.Errorf("session %d node %d: %d/%d bytes, corrupt=%v", s+1, i, off, len(payloads[s]), corrupt)
			}
		}
	}

	// Every session released its registration and pool reservation.
	for i, e := range h.engines {
		if st := e.Stats(); st.Sessions != 0 || st.PoolReserved != 0 {
			t.Errorf("engine %d leaked: %d sessions, %d bytes reserved", i, st.Sessions, st.PoolReserved)
		}
	}
}

// TestEngineMuxCrashIsolation runs overlapping broadcasts and crashes one
// session's middle node mid-flight (sink failure → abandon → detach from
// the shared engine). The crashed session must detect and route around its
// victim without disturbing a single byte of the other sessions sharing
// the same engines and data ports.
func TestEngineMuxCrashIsolation(t *testing.T) {
	const sessions, hosts, chunk = 8, 4, 32 << 10
	const crashed, victim = 2, 2 // session index 2 loses its node 2
	h := newMuxHarness(t, hosts)

	payloads := make([][]byte, sessions)
	sinks := make([][]*verifySink, sessions)
	results := make([]*SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		payloads[s] = patternPayload((s+1)*128<<10+9973*s, byte(s))
		sinks[s] = make([]*verifySink, hosts)
		for i := range sinks[s] {
			sinks[s][i] = &verifySink{want: payloads[s]}
			if s == crashed && i == victim {
				sinks[s][i].failAt = len(payloads[s]) / 2
			}
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = h.session(context.Background(), SessionID(s+1), payloads[s], sinks[s], chunk)
		}(s)
	}
	wg.Wait()

	for s := 0; s < sessions; s++ {
		if s == crashed {
			continue
		}
		if errs[s] != nil {
			t.Fatalf("healthy session %d: %v", s+1, errs[s])
		}
		if n := len(results[s].Report.Failures); n != 0 {
			t.Errorf("healthy session %d reported failures: %v", s+1, results[s].Report)
		}
		for i := 1; i < hosts; i++ {
			off, corrupt := sinks[s][i].state()
			if corrupt || off != len(payloads[s]) {
				t.Errorf("healthy session %d node %d: %d/%d bytes, corrupt=%v", s+1, i, off, len(payloads[s]), corrupt)
			}
		}
	}

	// The crashed session completed (sender-side) and named its victim.
	if errs[crashed] != nil {
		t.Fatalf("crashed session: sender failed: %v", errs[crashed])
	}
	rep := results[crashed].Report
	found := false
	for _, f := range rep.Failures {
		if f.Index == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("crashed session's report does not name node %d: %v", victim, rep)
	}
	// Its sinks upstream of the victim are still bit-perfect prefixes.
	for i := 1; i < hosts; i++ {
		if _, corrupt := sinks[crashed][i].state(); corrupt {
			t.Errorf("crashed session node %d sink corrupted", i)
		}
	}
	off, _ := sinks[crashed][1].state()
	if off != len(payloads[crashed]) {
		t.Errorf("crashed session node 1: %d/%d bytes", off, len(payloads[crashed]))
	}
}

// TestEngineMuxMixedClasses runs 16 overlapping sessions split between the
// bulk and interactive priority classes through shared engines, under the
// race detector in CI. Every session of either class must complete
// bit-perfectly, no session may be catastrophically starved within its
// class (the precise min/mean ≥ 0.8 fairness gate runs in the mux bench,
// where payloads are large enough for per-session timing to mean
// something; here race-detector scheduling skew on small transfers makes
// a tight bound flaky), and the per-class scheduler/admission counters
// must surface in EngineStats.
func TestEngineMuxMixedClasses(t *testing.T) {
	const sessions, hosts, chunk = 16, 4, 32 << 10
	h := newMuxHarness(t, hosts)

	classOf := func(s int) string {
		if s%2 == 1 {
			return ClassInteractive
		}
		return ClassBulk
	}

	payloads := make([][]byte, sessions)
	sinks := make([][]*verifySink, sessions)
	results := make([]*SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		// Identical sizes so per-class throughput is comparable.
		payloads[s] = patternPayload(2<<20+4097, byte(s))
		sinks[s] = make([]*verifySink, hosts)
		for i := range sinks[s] {
			sinks[s][i] = &verifySink{want: payloads[s]}
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cfg := SessionConfig{
				Peers:      h.peers,
				Opts:       muxTestOptions(chunk),
				Session:    SessionID(s + 1),
				NetworkFor: func(i int) transport.Network { return h.fabric.Host(h.peers[i].Name) },
				EngineFor:  func(i int) *Engine { return h.engines[i] },
				SinkFor:    func(i int) io.Writer { return sinks[s][i] },
				InputFile:  bytes.NewReader(payloads[s]),
				InputSize:  int64(len(payloads[s])),
			}
			cfg.Opts.Class = classOf(s)
			results[s], errs[s] = RunSession(context.Background(), cfg)
		}(s)
	}
	wg.Wait()

	perClass := map[string][]float64{}
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d (%s): %v", s+1, classOf(s), errs[s])
		}
		if n := len(results[s].Report.Failures); n != 0 {
			t.Errorf("session %d reported %d failures: %v", s+1, n, results[s].Report)
		}
		for i := 1; i < hosts; i++ {
			off, corrupt := sinks[s][i].state()
			if corrupt || off != len(payloads[s]) {
				t.Errorf("session %d node %d: %d/%d bytes, corrupt=%v", s+1, i, off, len(payloads[s]), corrupt)
			}
		}
		perClass[classOf(s)] = append(perClass[classOf(s)], results[s].Throughput())
	}

	for class, rates := range perClass {
		min, mean := rates[0], 0.0
		for _, r := range rates {
			mean += r / float64(len(rates))
			if r < min {
				min = r
			}
		}
		if mean <= 0 || min/mean < 0.2 {
			t.Errorf("class %s starved within class: min %.1f mean %.1f MB/s (ratio %.2f)", class, min/1e6, mean/1e6, min/mean)
		}
	}

	// The engines saw both classes: admissions and scheduled turns are
	// accounted per class on every host. (The last host runs only tail
	// nodes, which have no successor to forward to — no turns there.)
	for i, e := range h.engines {
		st := e.Stats()
		for _, class := range []string{ClassBulk, ClassInteractive} {
			cs, ok := st.Classes[class]
			if !ok || cs.Admitted != sessions/2 {
				t.Errorf("engine %d class %s admissions incomplete: %+v", i, class, cs)
			}
			if i < hosts-1 && (cs.Turns == 0 || cs.ScheduledBytes == 0) {
				t.Errorf("engine %d class %s scheduled nothing: %+v", i, class, cs)
			}
		}
		if st.Classes[ClassInteractive].Weight != 4 || st.Classes[ClassBulk].Weight != 1 {
			t.Errorf("engine %d class weights wrong: %+v", i, st.Classes)
		}
		if st.Sessions != 0 || st.PoolReserved != 0 {
			t.Errorf("engine %d leaked: %d sessions, %d bytes reserved", i, st.Sessions, st.PoolReserved)
		}
	}
}
