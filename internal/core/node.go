// Package core implements the Kascade protocol (§III of the paper): a
// topology-aware, fault-tolerant pipelined broadcast over reliable byte
// streams.
//
// Every pipeline member runs a Node. Node 0 (the sender) reads the input
// (file or stream), chunks it, and serves its successor; every other node
// answers GET(offset) on each new inbound connection, appends DATA chunks
// to its replay window, writes them to its local sink, and forwards them
// to its own successor. After END (or QUIT), the failure report flows down
// the pipeline, the last node delivers it to node 0 over a ring-closing
// connection, and PASSED acknowledgements flow back up, letting each node
// exit (Fig 5).
//
// The package is layered so one process can carry many broadcasts at once:
//
//   - Engine (engine.go) is the per-process accept layer: one shared data
//     listener, a session registry routing connections by the session ID in
//     their HELLO, and the global memory budget the per-session chunk pools
//     are accounted against.
//   - Node (this file) is the per-session lifecycle: configuration, the
//     Run state machine, and the failure-report bookkeeping.
//   - The data plane (dataplane.go, store.go, chunkpool.go, downstream.go)
//     moves payload: pooled ref-counted chunks, the ring-buffer replay
//     window, and the vectored downstream sender.
//   - The recovery plane (recovery.go) implements §III-D: the upstream
//     rewiring loop, the ping-based failure detector, and PGET gap fetches.
//   - The dispatch layer (dispatch.go) serves the accept side of one node
//     that owns its listener; engine-attached nodes receive connections
//     from the engine instead.
//
// Failures are detected exactly as §III-D1 describes: syscall errors on
// read/write, plus timers on stalled writes resolved by a PING to the
// stalled successor — answered means "alive, keep waiting", unanswered
// means "dead, skip to the next alive successor and replay from its GET
// offset". Recovery data comes from the in-memory window; when the window
// no longer holds the requested offset the sender answers FORGET and the
// successor fetches the gap from node 0 with PGET (file-backed sources) or
// abandons with a QUIT cascade (streamed sources), per §III-D2.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"kascade/internal/transport"
)

// NodeConfig wires one pipeline member to its environment.
type NodeConfig struct {
	// Index is this node's position in Plan.Peers (0 = sender).
	Index int
	// Plan is the shared pipeline description (including the broadcast
	// session ID on multiplexed engines).
	Plan Plan
	// Network is the node's dialing surface (and, with Listener, its
	// listening surface).
	Network transport.Network
	// Listener is the pre-bound listener for Plan.Peers[Index].Addr.
	// Binding happens before nodes start so that no dial races a listen.
	// Exactly one of Listener and Engine must be set.
	Listener transport.Listener
	// Engine attaches the node to a shared per-process accept layer
	// instead of a dedicated listener: the engine routes inbound
	// connections to this node by Plan.Session and accounts its chunk
	// pool against the global memory budget.
	Engine *Engine
	// Packet is the node's bound datagram endpoint, required (and only
	// used) when Plan.Transport is TransportUDP. The node owns it: Run
	// closes it on exit.
	Packet transport.PacketConn
	// Sink receives the broadcast payload locally; nil discards it.
	// Only meaningful for receivers (Index > 0).
	Sink io.Writer

	// Trace observes this node's recovery-path state transitions (failure
	// detection, rewiring, gap fetches). Nil disables tracing. See trace.go.
	Trace Tracer

	// Join marks this node as a late joiner grafted into a live broadcast:
	// the grant (from Node.AdmitJoiner or the wire negotiation) carries the
	// node's assigned index, the full membership at admission, the catch-up
	// boundary, and the membership view the graft rode in on. The caller
	// must set Index = Join.Index and Plan.Peers = Join.Peers. See
	// membership.go.
	Join *JoinGrant

	// Source input (Index 0 only): either a random-access file...
	InputFile io.ReaderAt
	InputSize int64
	// ...or a stream of unknown length (the dd|gzip use case of Fig 2).
	Input io.Reader
}

// Node is one member of a running broadcast pipeline.
type Node struct {
	cfg    NodeConfig
	opts   Options
	clk    Clock
	sid    SessionID
	treeK  int // dissemination fan-out per node: 1 = chain, k = "tree:<k>"
	st     store
	ws     *windowStore // non-nil iff st is a window store
	pool   *chunkPool   // recycled payload buffers for the relay hot path
	sentry *schedEntry  // seat in the engine's data-plane scheduler (nil off-engine)

	ictx   context.Context // internal lifecycle, detached from caller ctx
	cancel context.CancelFunc

	// splice is the kernel pass-through rendezvous gate (splice.go);
	// nil on nodes that can never splice (sender, local sink, §V
	// measurement, or Options.Splice off).
	splice       *spliceGate
	spliceBroken atomic.Bool // a mid-frame splice error poisons the fast path

	upConns chan *upstreamConn

	// Self-reorganization state (rerank.go); active only when
	// Options.Rerank is set on a tree topology.
	rerank   bool
	view     atomic.Pointer[treeView] // current slot-occupant assignment
	viewKick chan struct{}            // nudges the re-graft manager on view changes
	rates    linkRates                // per-downstream-link drain-rate meters
	reorg    *reorganizer             // node 0 only: the planner

	// Dynamic membership (membership.go): members, when non-nil, supersedes
	// Plan.Peers as the peer table — it is only ever extended (under mu),
	// never shrunk or reordered, so a loaded snapshot stays valid forever.
	// basePeers is the size of the start plan: indices below it are the
	// original members every pre-JOIN frame layout assumes.
	members   atomic.Pointer[[]Peer]
	basePeers int
	closing   bool       // node 0: ring is closing, no further joins
	joinSt    *joinState // late joiner only: catch-up / backlog state

	mu            sync.Mutex
	detected      []Failure
	upReport      *Report
	abandoned     bool
	abandonReason string
	tail          bool
	udpReports    int // udp transport, sender only: ring reports received

	detachOnce sync.Once
	reportOnce sync.Once
	reportC    chan struct{} // closed when upReport becomes available
	passedOnce sync.Once
	passedC    chan struct{} // closed when the report reached node 0's side
	ringOnce   sync.Once
	ringC      chan struct{} // source only: final ring report arrived
	ringReport *Report

	bytesIn atomic.Uint64
}

type upstreamConn struct {
	w    *wire
	from int
}

// errUpstreamDone signals the normal end of the upstream lifecycle.
var errUpstreamDone = errors.New("kascade: upstream lifecycle complete")

// errProtocol reports an unexpected frame.
type errProtocol struct {
	want MsgType
	got  MsgType
}

func (e *errProtocol) Error() string {
	return fmt.Sprintf("kascade: protocol error: expected %v, got %v", e.want, e.got)
}

// peerDeadError marks a confirmed successor death (stall + failed ping,
// refused dial, or exhausted patience).
type peerDeadError struct {
	reason string
	cause  error
}

func (e *peerDeadError) Error() string {
	if e.cause != nil {
		return "kascade: peer dead: " + e.reason + ": " + e.cause.Error()
	}
	return "kascade: peer dead: " + e.reason
}

func (e *peerDeadError) Unwrap() error { return e.cause }

// NewNode validates cfg and prepares a Node. Call Run to participate in
// the broadcast. The node's stores and pool are built (and, on an engine,
// the session registered) when Run starts, so inbound connections are only
// routed to a node that is actually running.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= len(cfg.Plan.Peers) {
		return nil, fmt.Errorf("kascade: node index %d out of range", cfg.Index)
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("kascade: node %d needs a network", cfg.Index)
	}
	if (cfg.Listener == nil) == (cfg.Engine == nil) {
		return nil, fmt.Errorf("kascade: node %d needs exactly one of a bound listener or an engine", cfg.Index)
	}
	if cfg.Index == 0 {
		if cfg.InputFile == nil && cfg.Input == nil {
			return nil, fmt.Errorf("kascade: sender has no input")
		}
		if cfg.Plan.Opts.Splice && cfg.InputFile == nil {
			// A spliced relay retains nothing, so FORGET recovery must
			// resolve against the sender's random-access store (§III-D2);
			// a streamed source would turn every recovery into an abandon.
			return nil, fmt.Errorf("kascade: splice requires a file-backed source at node 0")
		}
	} else if cfg.Input != nil || cfg.InputFile != nil {
		return nil, fmt.Errorf("kascade: only the sender (index 0) takes input")
	}
	if cfg.Plan.Transport == TransportUDP {
		if cfg.Packet == nil {
			return nil, fmt.Errorf("kascade: node %d needs a packet connection for the udp transport", cfg.Index)
		}
		if cfg.Index == 0 && cfg.InputFile == nil {
			// Loss repair is a PGET against node 0's random-access store;
			// a streamed source would turn every lost datagram into an
			// unrecoverable abandon.
			return nil, fmt.Errorf("kascade: udp transport requires a file-backed source at node 0")
		}
	}
	treeK, err := TreeArity(cfg.Plan.Topology)
	if err != nil {
		// Plan.Validate admits composite topologies (scatter-allgather)
		// because callers dispatch them outside core.Node; reaching
		// NewNode with one is a caller bug, not a plan error.
		return nil, err
	}
	if cfg.Join != nil {
		if cfg.Index != cfg.Join.Index || cfg.Index == 0 {
			return nil, fmt.Errorf("kascade: joiner index %d does not match grant index %d", cfg.Index, cfg.Join.Index)
		}
		if !cfg.Plan.Opts.Rerank || treeK <= 1 {
			return nil, ErrJoinRefused("late join requires a re-ranking tree topology")
		}
		if len(cfg.Join.Occupants) != len(cfg.Plan.Peers) {
			return nil, fmt.Errorf("kascade: joiner grant view has %d slots for %d peers", len(cfg.Join.Occupants), len(cfg.Plan.Peers))
		}
		if cfg.Join.BasePeers <= 0 || cfg.Join.BasePeers > len(cfg.Plan.Peers) {
			return nil, fmt.Errorf("kascade: joiner grant base plan size %d out of range", cfg.Join.BasePeers)
		}
	}
	opts := cfg.Plan.Opts.withDefaults()
	n := &Node{
		cfg:       cfg,
		opts:      opts,
		clk:       opts.Clock,
		sid:       cfg.Plan.Session,
		treeK:     treeK,
		basePeers: len(cfg.Plan.Peers),
		upConns:   make(chan *upstreamConn, 4),
		reportC:   make(chan struct{}),
		passedC:   make(chan struct{}),
		ringC:     make(chan struct{}),
	}
	if spliceEligible(&cfg, &opts) {
		n.splice = &spliceGate{}
	}
	if opts.Rerank && treeK > 1 {
		n.rerank = true
		n.viewKick = make(chan struct{}, 1)
		n.view.Store(identityView(len(cfg.Plan.Peers)))
		if cfg.Index == 0 {
			n.reorg = newReorganizer(n)
		}
	}
	if g := cfg.Join; g != nil {
		// The joiner starts from the granted membership view, not the
		// identity permutation: prior re-rankings are baked into the
		// occupant table the graft rode in on.
		n.basePeers = g.BasePeers
		occ := append([]int32(nil), g.Occupants...)
		n.view.Store(viewFromOccupants(g.Version, occ))
		n.joinSt = newJoinState(cfg.Sink, g.Head, int64(opts.PoolReservation()), opts.ChunkSize)
	}
	if cfg.Index == 0 {
		// The sender originates the report chain: its own report is
		// available from the start (failures are merged at send time).
		n.upReport = &Report{}
		n.reportOnce.Do(func() { close(n.reportC) })
	}
	return n, nil
}

// prepare builds the node's chunk pool and store and, on an engine,
// registers and then attaches the session. The attach comes strictly
// last: the engine must never route a connection (or report a listener
// death) into a node whose pool or store is still nil.
func (n *Node) prepare() error {
	if n.cfg.Engine != nil {
		pool, err := n.cfg.Engine.register(n.sid, n, n.opts.ChunkSize, n.opts.PoolChunks, n.opts.Class)
		if err != nil {
			return err
		}
		n.pool = pool
	} else {
		n.pool = newChunkPool(n.opts.ChunkSize, n.opts.PoolChunks)
	}
	if n.cfg.Index == 0 && n.cfg.InputFile != nil {
		n.st = newFileStore(n.cfg.InputFile, n.cfg.InputSize, n.opts.ChunkSize, n.pool)
	} else {
		n.ws = newWindowStore(n.opts.ChunkSize, n.opts.WindowChunks, n.pool)
		n.st = n.ws
		if g := n.cfg.Join; g != nil {
			// A late joiner's live window starts at the catch-up boundary:
			// everything before it is backfilled from node 0 instead of
			// flowing through the replay window.
			n.ws.rebase(g.Head)
		}
	}
	if n.cfg.Engine != nil {
		if n.treeK == 1 {
			// Engine-attached nodes forward through the engine's weighted
			// scheduler (sched.go) instead of a free-running goroutine per
			// session: the seat is taken before attach so the first inbound
			// GET finds the scheduling path ready. Tree relays serve several
			// child cursors from one window, which the one-cursor-per-seat
			// scheduler cannot model, so they keep the direct blocking path.
			n.sentry = n.cfg.Engine.attachSched(n.sid, n.st, n.opts.Class, n.opts.MaxBatchBytes, n.opts.ChunkSize)
		}
		n.cfg.Engine.attach(n.sid, n)
	}
	return nil
}

// detach stops the node from receiving new connections: the engine
// unregisters the session (so inbound pings for it go unanswered and the
// pipeline routes around this node), or the owned listener closes.
func (n *Node) detach() {
	n.detachOnce.Do(func() {
		if n.cfg.Engine != nil {
			n.cfg.Engine.unregister(n.sid, n)
			n.cfg.Engine.detachSched(n.sentry)
		} else {
			_ = n.cfg.Listener.Close()
		}
	})
}

// BytesReceived reports how many payload bytes this node has ingested.
func (n *Node) BytesReceived() uint64 { return n.bytesIn.Load() }

// Transport counter hooks: engine-attached nodes feed the per-process
// EngineStats; standalone nodes drop the samples (there is no aggregate to
// report them in).

func (n *Node) countSpliced(bytes uint64) {
	if e := n.cfg.Engine; e != nil {
		e.splicedBytes.Add(bytes)
		e.splicedChunks.Add(1)
	}
}

func (n *Node) countUDPBatchSent() {
	if e := n.cfg.Engine; e != nil {
		e.udpBatchesSent.Add(1)
	}
}

func (n *Node) countUDPBatchRecv() {
	if e := n.cfg.Engine; e != nil {
		e.udpBatchesRecv.Add(1)
	}
}

func (n *Node) countRepairFetch() {
	if e := n.cfg.Engine; e != nil {
		e.repairFetches.Add(1)
	}
}

// Abandoned reports whether this node gave up after unrecoverable loss.
func (n *Node) Abandoned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.abandoned
}

// AbandonReason describes why the node abandoned (empty if it did not).
func (n *Node) AbandonReason() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.abandonReason
}

func (n *Node) me() Peer { return n.cfg.Plan.Peers[n.cfg.Index] }

// peers returns the current membership: the start plan until a late joiner
// is admitted, then the extended member table. The returned slice is an
// immutable snapshot — extension replaces the pointer, never mutates.
func (n *Node) peers() []Peer {
	if m := n.members.Load(); m != nil {
		return *m
	}
	return n.cfg.Plan.Peers
}

// addMembers extends the membership table with peers learned from a grant
// or a REORG2 frame. Entries must be indexed contiguously from the current
// size; stale entries (already known) are ignored, gapped ones rejected.
func (n *Node) addMembers(ms []wireMember) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addMembersLocked(ms)
}

func (n *Node) addMembersLocked(ms []wireMember) error {
	cur := n.peers()
	grown := false
	ext := cur
	for _, m := range ms {
		switch {
		case m.Index < len(ext):
			continue // already known
		case m.Index == len(ext):
			if !grown {
				ext = append(make([]Peer, 0, len(cur)+len(ms)), cur...)
				grown = true
			}
			ext = append(ext, Peer{Name: m.Name, Addr: m.Addr})
		default:
			return fmt.Errorf("kascade: member table gap: entry %d with %d members known", m.Index, len(ext))
		}
	}
	if grown {
		n.members.Store(&ext)
	}
	return nil
}

// newWire wraps a connection with this node's clock as deadline source.
func (n *Node) newWire(c transport.Conn) *wire {
	return newWire(c, n.clk)
}

// Run participates in the broadcast until completion. It returns the final
// report: at the sender this is the ring report aggregating every detected
// failure; at receivers it is the node's merged view. The caller context
// aborts the transfer gracefully (QUIT), giving the pipeline ReportTimeout
// to close its ring before hard shutdown.
func (n *Node) Run(ctx context.Context) (*Report, error) {
	rep, err := n.run(ctx)
	if err != nil && n.joinSt != nil {
		// A failed catch-up surfaces as a generic abandon through the
		// store; prefer the typed membership error recorded at the source.
		if jerr := n.joinSt.failure(); jerr != nil {
			err = jerr
		}
	}
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	n.emit(TraceFinished, -1, n.bytesIn.Load(), detail)
	n.recycle()
	return rep, err
}

// recycle hands the node's payload buffers back to the cross-session
// arena: first the ring slots the replay window still holds, then the
// pool's parked free list. Runs strictly after detach — no new connection
// can be routed here — and the store poisons itself so an in-flight PGET
// server errors out instead of touching recycled memory.
func (n *Node) recycle() {
	if n.ws != nil {
		n.ws.recycle()
	}
	n.pool.drain()
}

func (n *Node) run(ctx context.Context) (*Report, error) {
	ictx, cancel := context.WithCancel(context.Background())
	n.ictx, n.cancel = ictx, cancel
	defer cancel()

	if n.cfg.Packet != nil {
		defer n.cfg.Packet.Close()
	}
	if err := n.prepare(); err != nil {
		return nil, err
	}
	defer n.detach()

	// Bridge the caller's context. At the sender, cancellation turns into
	// a graceful QUIT that propagates in-band down the pipeline; receivers
	// do NOT abort locally (the QUIT frame reaches them through the
	// protocol, keeping every sink a consistent prefix). Either way the
	// node escalates to hard shutdown after ReportTimeout.
	bridgeDone := make(chan struct{})
	defer close(bridgeDone)
	go func() {
		select {
		case <-ctx.Done():
			if n.cfg.Index == 0 {
				n.st.Abort(ErrQuit)
			}
			select {
			case <-n.clk.After(n.opts.ReportTimeout):
				cancel()
			case <-bridgeDone:
			}
		case <-bridgeDone:
		}
	}()

	if n.cfg.Listener != nil {
		go n.acceptLoop()
	}

	if n.cfg.Plan.Transport == TransportUDP {
		return n.runUDP(ictx)
	}

	if n.rerank && n.cfg.Index > 0 {
		go n.runRateSpoke(ictx)
	}

	if n.joinSt != nil {
		go n.runCatchUp(ictx)
	}

	upErrC := make(chan error, 1)
	if n.cfg.Index > 0 {
		go func() {
			err := n.upstreamLoop(ictx)
			upErrC <- err
			if err != nil {
				n.shutdown(err)
			}
		}()
	} else if n.cfg.Input != nil {
		go n.readInput()
	}

	mgrErr := n.runManager(ictx)
	if mgrErr != nil {
		n.shutdown(mgrErr)
		if n.cfg.Index > 0 {
			<-upErrC
		}
		return n.snapshotReport(), mgrErr
	}

	if n.cfg.Index > 0 {
		// The manager finished its lifecycle; the upstream loop still
		// owes PASSED to the predecessor.
		select {
		case err := <-upErrC:
			if err != nil {
				return n.snapshotReport(), err
			}
		case <-n.clk.After(n.opts.ReportTimeout):
			n.shutdown(fmt.Errorf("kascade: timed out relaying PASSED upstream"))
			<-upErrC
			return n.snapshotReport(), fmt.Errorf("kascade: timed out relaying PASSED upstream")
		}
		return n.snapshotReport(), nil
	}

	// Sender: the ring report must have arrived (PASSED only propagates
	// after the last node delivered it), unless the sender was its own
	// tail because every receiver died.
	select {
	case <-n.ringC:
	default:
		if n.isTail() {
			rep, _ := n.mergedReport()
			n.setRingReport(rep)
		}
	}
	select {
	case <-n.ringC:
		n.mu.Lock()
		rep := n.ringReport.Clone()
		n.mu.Unlock()
		return rep, nil
	case <-n.clk.After(n.opts.ReportTimeout):
		return n.snapshotReport(), fmt.Errorf("kascade: final report never arrived")
	}
}

// runUDP is the datagram-plane lifecycle (udp.go): the sender fans out and
// then waits for the ring to close over the stream transport; receivers
// reassemble, repair, and deliver their own ring report.
func (n *Node) runUDP(ictx context.Context) (*Report, error) {
	if n.cfg.Index > 0 {
		if err := n.udpReceiver(ictx); err != nil {
			n.shutdown(err)
			return n.snapshotReport(), err
		}
		return n.snapshotReport(), nil
	}
	if err := n.udpSender(ictx); err != nil {
		n.shutdown(err)
		return n.snapshotReport(), err
	}
	// Every receiver either reported already (dispatch counts them) or was
	// recorded dead by the send loop: re-check so an all-dead (or
	// zero-receiver) fan-out still closes the ring from the sender's view.
	n.maybeCloseUDPRing()
	select {
	case <-n.ringC:
		n.mu.Lock()
		rep := n.ringReport.Clone()
		n.mu.Unlock()
		return rep, nil
	case <-n.clk.After(n.opts.ReportTimeout):
		return n.snapshotReport(), fmt.Errorf("kascade: final report never arrived")
	}
}

// maybeCloseUDPRing publishes the sender's final report once every receiver
// is accounted for — a ring report received over the stream transport, or a
// recorded death. Idempotent; called from the report accept path and after
// the fan-out completes.
func (n *Node) maybeCloseUDPRing() {
	n.mu.Lock()
	accounted := n.udpReports + len(n.detected)
	n.mu.Unlock()
	if accounted >= len(n.peers())-1 {
		rep, _ := n.mergedReport()
		n.setRingReport(rep)
		n.markPassed()
	}
}

// shutdown aborts the node's store and internal context.
func (n *Node) shutdown(cause error) {
	if cause == nil {
		cause = errors.New("kascade: node shutdown")
	}
	n.st.Abort(cause)
	n.cancel()
}

// listenerFailed is the engine's notification that the shared accept path
// died underneath this session: fatal if the node is still mid-transfer,
// exactly like an owned listener failing.
func (n *Node) listenerFailed(err error) {
	select {
	case <-n.ictx.Done():
	default:
		if !n.Abandoned() {
			n.shutdown(fmt.Errorf("kascade: listener failed: %w", err))
		}
	}
}

// snapshotReport returns this node's current merged view.
func (n *Node) snapshotReport() *Report {
	rep := &Report{}
	n.mu.Lock()
	if n.upReport != nil {
		rep = n.upReport.Clone()
	}
	det := append([]Failure(nil), n.detected...)
	n.mu.Unlock()
	rep.Merge(&Report{Failures: det})
	if end, ok := n.st.End(); ok && end > rep.TotalBytes {
		rep.TotalBytes = end
	} else if h := n.st.Head(); h > rep.TotalBytes {
		rep.TotalBytes = h
	}
	if n.st.AbortCause() == ErrQuit {
		rep.Aborted = true
	}
	return rep
}

func (n *Node) setRingReport(rep *Report) {
	n.ringOnce.Do(func() {
		n.mu.Lock()
		n.ringReport = rep
		n.mu.Unlock()
		close(n.ringC)
	})
}

func (n *Node) setUpReport(rep *Report) {
	n.mu.Lock()
	if n.upReport == nil {
		n.upReport = rep.Clone()
	} else {
		n.upReport.Merge(rep)
	}
	n.mu.Unlock()
	n.reportOnce.Do(func() { close(n.reportC) })
}

func (n *Node) markPassed() {
	n.passedOnce.Do(func() { close(n.passedC) })
}

func (n *Node) recordFailure(idx int, reason string, off uint64) {
	if idx <= 0 || idx >= len(n.peers()) {
		return
	}
	n.mu.Lock()
	for _, f := range n.detected {
		if f.Index == idx {
			n.mu.Unlock()
			return
		}
	}
	n.detected = append(n.detected, Failure{
		Index:      idx,
		Name:       n.peers()[idx].Name,
		Reason:     reason,
		Offset:     off,
		DetectedBy: n.me().Name,
	})
	n.mu.Unlock()
	n.emit(TraceFailureDetected, idx, off, reason)
}

func (n *Node) isFailedPeer(idx int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, f := range n.detected {
		if f.Index == idx {
			return true
		}
	}
	return false
}

func (n *Node) isTail() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tail
}

// mergedReport snapshots the report to forward: upstream's view plus this
// node's own detections.
func (n *Node) mergedReport() (*Report, error) {
	n.mu.Lock()
	rep := n.upReport.Clone()
	det := append([]Failure(nil), n.detected...)
	n.mu.Unlock()
	rep.Merge(&Report{Failures: det})
	if end, ok := n.st.End(); ok && end > rep.TotalBytes {
		rep.TotalBytes = end
	} else if h := n.st.Head(); h > rep.TotalBytes {
		rep.TotalBytes = h
	}
	if n.st.AbortCause() == ErrQuit {
		rep.Aborted = true
	}
	return rep, nil
}

// awaitReport blocks until a report is available to forward.
func (n *Node) awaitReport(ctx context.Context) (*Report, error) {
	select {
	case <-n.reportC:
		return n.mergedReport()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
