// Package core implements the Kascade protocol (§III of the paper): a
// topology-aware, fault-tolerant pipelined broadcast over reliable byte
// streams.
//
// Every pipeline member runs a Node. Node 0 (the sender) reads the input
// (file or stream), chunks it, and serves its successor; every other node
// answers GET(offset) on each new inbound connection, appends DATA chunks
// to its replay window, writes them to its local sink, and forwards them
// to its own successor. After END (or QUIT), the failure report flows down
// the pipeline, the last node delivers it to node 0 over a ring-closing
// connection, and PASSED acknowledgements flow back up, letting each node
// exit (Fig 5).
//
// Failures are detected exactly as §III-D1 describes: syscall errors on
// read/write, plus timers on stalled writes resolved by a PING to the
// stalled successor — answered means "alive, keep waiting", unanswered
// means "dead, skip to the next alive successor and replay from its GET
// offset". Recovery data comes from the in-memory window; when the window
// no longer holds the requested offset the sender answers FORGET and the
// successor fetches the gap from node 0 with PGET (file-backed sources) or
// abandons with a QUIT cascade (streamed sources), per §III-D2.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"kascade/internal/transport"
)

// NodeConfig wires one pipeline member to its environment.
type NodeConfig struct {
	// Index is this node's position in Plan.Peers (0 = sender).
	Index int
	// Plan is the shared pipeline description.
	Plan Plan
	// Network is the node's dialing/listening surface.
	Network transport.Network
	// Listener is the pre-bound listener for Plan.Peers[Index].Addr.
	// Binding happens before nodes start so that no dial races a listen.
	Listener transport.Listener
	// Sink receives the broadcast payload locally; nil discards it.
	// Only meaningful for receivers (Index > 0).
	Sink io.Writer

	// Trace observes this node's recovery-path state transitions (failure
	// detection, rewiring, gap fetches). Nil disables tracing. See trace.go.
	Trace Tracer

	// Source input (Index 0 only): either a random-access file...
	InputFile io.ReaderAt
	InputSize int64
	// ...or a stream of unknown length (the dd|gzip use case of Fig 2).
	Input io.Reader
}

// Node is one member of a running broadcast pipeline.
type Node struct {
	cfg  NodeConfig
	opts Options
	clk  Clock
	st   store
	ws   *windowStore // non-nil iff st is a window store
	pool *chunkPool   // recycled payload buffers for the relay hot path

	ictx   context.Context // internal lifecycle, detached from caller ctx
	cancel context.CancelFunc

	upConns chan *upstreamConn

	mu            sync.Mutex
	detected      []Failure
	upReport      *Report
	abandoned     bool
	abandonReason string
	tail          bool

	reportOnce sync.Once
	reportC    chan struct{} // closed when upReport becomes available
	passedOnce sync.Once
	passedC    chan struct{} // closed when the report reached node 0's side
	ringOnce   sync.Once
	ringC      chan struct{} // source only: final ring report arrived
	ringReport *Report

	bytesIn atomic.Uint64
}

type upstreamConn struct {
	w    *wire
	from int
}

// errUpstreamDone signals the normal end of the upstream lifecycle.
var errUpstreamDone = errors.New("kascade: upstream lifecycle complete")

// errProtocol reports an unexpected frame.
type errProtocol struct {
	want MsgType
	got  MsgType
}

func (e *errProtocol) Error() string {
	return fmt.Sprintf("kascade: protocol error: expected %v, got %v", e.want, e.got)
}

// peerDeadError marks a confirmed successor death (stall + failed ping,
// refused dial, or exhausted patience).
type peerDeadError struct {
	reason string
	cause  error
}

func (e *peerDeadError) Error() string {
	if e.cause != nil {
		return "kascade: peer dead: " + e.reason + ": " + e.cause.Error()
	}
	return "kascade: peer dead: " + e.reason
}

func (e *peerDeadError) Unwrap() error { return e.cause }

// NewNode validates cfg and prepares a Node. Call Run to participate in
// the broadcast.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= len(cfg.Plan.Peers) {
		return nil, fmt.Errorf("kascade: node index %d out of range", cfg.Index)
	}
	if cfg.Network == nil || cfg.Listener == nil {
		return nil, fmt.Errorf("kascade: node %d needs a network and a bound listener", cfg.Index)
	}
	opts := cfg.Plan.Opts.withDefaults()
	n := &Node{
		cfg:     cfg,
		opts:    opts,
		clk:     opts.Clock,
		upConns: make(chan *upstreamConn, 4),
		reportC: make(chan struct{}),
		passedC: make(chan struct{}),
		ringC:   make(chan struct{}),
	}
	n.pool = newChunkPool(opts.ChunkSize, opts.PoolChunks)
	if cfg.Index == 0 {
		switch {
		case cfg.InputFile != nil:
			n.st = newFileStore(cfg.InputFile, cfg.InputSize, opts.ChunkSize, n.pool)
		case cfg.Input != nil:
			n.ws = newWindowStore(opts.ChunkSize, opts.WindowChunks, n.pool)
			n.st = n.ws
		default:
			return nil, fmt.Errorf("kascade: sender has no input")
		}
		// The sender originates the report chain: its own report is
		// available from the start (failures are merged at send time).
		n.upReport = &Report{}
		n.reportOnce.Do(func() { close(n.reportC) })
	} else {
		if cfg.Input != nil || cfg.InputFile != nil {
			return nil, fmt.Errorf("kascade: only the sender (index 0) takes input")
		}
		n.ws = newWindowStore(opts.ChunkSize, opts.WindowChunks, n.pool)
		n.st = n.ws
	}
	return n, nil
}

// BytesReceived reports how many payload bytes this node has ingested.
func (n *Node) BytesReceived() uint64 { return n.bytesIn.Load() }

// Abandoned reports whether this node gave up after unrecoverable loss.
func (n *Node) Abandoned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.abandoned
}

func (n *Node) me() Peer { return n.cfg.Plan.Peers[n.cfg.Index] }
func (n *Node) peers() []Peer {
	return n.cfg.Plan.Peers
}

// newWire wraps a connection with this node's clock as deadline source.
func (n *Node) newWire(c transport.Conn) *wire {
	w := newWire(c)
	w.now = n.clk.Now
	return w
}

// Run participates in the broadcast until completion. It returns the final
// report: at the sender this is the ring report aggregating every detected
// failure; at receivers it is the node's merged view. The caller context
// aborts the transfer gracefully (QUIT), giving the pipeline ReportTimeout
// to close its ring before hard shutdown.
func (n *Node) Run(ctx context.Context) (*Report, error) {
	rep, err := n.run(ctx)
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	n.emit(TraceFinished, -1, n.bytesIn.Load(), detail)
	return rep, err
}

func (n *Node) run(ctx context.Context) (*Report, error) {
	ictx, cancel := context.WithCancel(context.Background())
	n.ictx, n.cancel = ictx, cancel
	defer cancel()

	// Bridge the caller's context. At the sender, cancellation turns into
	// a graceful QUIT that propagates in-band down the pipeline; receivers
	// do NOT abort locally (the QUIT frame reaches them through the
	// protocol, keeping every sink a consistent prefix). Either way the
	// node escalates to hard shutdown after ReportTimeout.
	bridgeDone := make(chan struct{})
	defer close(bridgeDone)
	go func() {
		select {
		case <-ctx.Done():
			if n.cfg.Index == 0 {
				n.st.Abort(ErrQuit)
			}
			select {
			case <-n.clk.After(n.opts.ReportTimeout):
				cancel()
			case <-bridgeDone:
			}
		case <-bridgeDone:
		}
	}()

	go n.acceptLoop()
	defer n.cfg.Listener.Close()

	upErrC := make(chan error, 1)
	if n.cfg.Index > 0 {
		go func() {
			err := n.upstreamLoop(ictx)
			upErrC <- err
			if err != nil {
				n.shutdown(err)
			}
		}()
	} else if n.cfg.Input != nil {
		go n.readInput()
	}

	mgrErr := n.runManager(ictx)
	if mgrErr != nil {
		n.shutdown(mgrErr)
		if n.cfg.Index > 0 {
			<-upErrC
		}
		return n.snapshotReport(), mgrErr
	}

	if n.cfg.Index > 0 {
		// The manager finished its lifecycle; the upstream loop still
		// owes PASSED to the predecessor.
		select {
		case err := <-upErrC:
			if err != nil {
				return n.snapshotReport(), err
			}
		case <-n.clk.After(n.opts.ReportTimeout):
			n.shutdown(fmt.Errorf("kascade: timed out relaying PASSED upstream"))
			<-upErrC
			return n.snapshotReport(), fmt.Errorf("kascade: timed out relaying PASSED upstream")
		}
		return n.snapshotReport(), nil
	}

	// Sender: the ring report must have arrived (PASSED only propagates
	// after the last node delivered it), unless the sender was its own
	// tail because every receiver died.
	select {
	case <-n.ringC:
	default:
		if n.isTail() {
			rep, _ := n.mergedReport()
			n.setRingReport(rep)
		}
	}
	select {
	case <-n.ringC:
		n.mu.Lock()
		rep := n.ringReport.Clone()
		n.mu.Unlock()
		return rep, nil
	case <-n.clk.After(n.opts.ReportTimeout):
		return n.snapshotReport(), fmt.Errorf("kascade: final report never arrived")
	}
}

// shutdown aborts the node's store and internal context.
func (n *Node) shutdown(cause error) {
	if cause == nil {
		cause = errors.New("kascade: node shutdown")
	}
	n.st.Abort(cause)
	n.cancel()
}

// snapshotReport returns this node's current merged view.
func (n *Node) snapshotReport() *Report {
	rep := &Report{}
	n.mu.Lock()
	if n.upReport != nil {
		rep = n.upReport.Clone()
	}
	det := append([]Failure(nil), n.detected...)
	n.mu.Unlock()
	rep.Merge(&Report{Failures: det})
	if end, ok := n.st.End(); ok && end > rep.TotalBytes {
		rep.TotalBytes = end
	} else if h := n.st.Head(); h > rep.TotalBytes {
		rep.TotalBytes = h
	}
	if n.st.AbortCause() == ErrQuit {
		rep.Aborted = true
	}
	return rep
}

// readInput chunks the streamed input into the window store, reading each
// chunk straight into a pool-owned buffer that the store then retains — no
// copy between the input and the replay window.
func (n *Node) readInput() {
	var total uint64
	for {
		c := n.pool.get(n.opts.ChunkSize)
		nr, err := io.ReadFull(n.cfg.Input, c.bytes())
		if nr > 0 {
			c.truncate(nr)
			if aerr := n.ws.Append(c); aerr != nil {
				return
			}
			total += uint64(nr)
		} else {
			c.release()
		}
		switch err {
		case nil:
			continue
		case io.EOF, io.ErrUnexpectedEOF:
			n.ws.Finish(total)
			return
		default:
			n.shutdown(fmt.Errorf("kascade: reading input: %w", err))
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Accept side: connection dispatch, ping answering, fetch serving, ring
// report collection.

func (n *Node) acceptLoop() {
	for {
		c, err := n.cfg.Listener.Accept()
		if err != nil {
			// Listener gone: host killed or shutting down. If the
			// node is still mid-transfer this is fatal for it.
			select {
			case <-n.ictx.Done():
			default:
				if !n.Abandoned() {
					n.shutdown(fmt.Errorf("kascade: listener failed: %w", err))
				}
			}
			return
		}
		go n.handleConn(c)
	}
}

func (n *Node) handleConn(c transport.Conn) {
	w := n.newWire(c)
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgHello {
		_ = w.close()
		return
	}
	role, from, err := w.readHello()
	if err != nil {
		_ = w.close()
		return
	}
	switch role {
	case RolePing:
		// Liveness probe (§III-D1): answer promptly even mid-transfer.
		w.setReadDeadlineIn(n.opts.PingTimeout)
		if typ, err := w.readType(); err == nil && typ == MsgPing {
			w.setWriteDeadlineIn(n.opts.PingTimeout)
			_ = w.writePong()
		}
		_ = w.close()
	case RoleData:
		w.setReadDeadlineIn(0)
		select {
		case n.upConns <- &upstreamConn{w: w, from: from}:
		case <-n.ictx.Done():
			_ = w.close()
		}
	case RoleFetch:
		if n.cfg.Index != 0 {
			_ = w.close()
			return
		}
		n.serveFetch(w, from)
	case RoleReport:
		if n.cfg.Index != 0 {
			_ = w.close()
			return
		}
		n.receiveRingReport(w)
	default:
		_ = w.close()
	}
}

// probe dials addr and plays one PING/PONG exchange; it reports liveness.
func (n *Node) probe(addr string) bool {
	c, err := n.cfg.Network.Dial(addr, n.opts.PingTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	_ = c.SetDeadline(n.clk.Now().Add(n.opts.PingTimeout))
	w := n.newWire(c)
	if err := w.writeHello(RolePing, n.cfg.Index); err != nil {
		return false
	}
	if err := w.writePing(); err != nil {
		return false
	}
	typ, err := w.readType()
	return err == nil && typ == MsgPong
}

// serveFetch answers a PGET range request from the sender's store (§III-D2).
func (n *Node) serveFetch(w *wire, from int) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.GetTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgPGet {
		return
	}
	lo, hi, err := w.readPGet()
	if err != nil {
		return
	}
	for off := lo; off < hi; {
		c, err := n.st.ChunkAt(off)
		var fe *ForgetError
		switch {
		case errors.As(err, &fe):
			// Streamed source recycled its buffer: the requester
			// must abandon. Record it now so the sender's final
			// report accounts for the cascade (§III-D2).
			w.setWriteDeadlineIn(n.opts.GetTimeout)
			_ = w.writeForget(fe.Base)
			n.recordFailure(from, fmt.Sprintf("abandoned: offset %d recycled at sender (min %d)", off, fe.Base), off)
			return
		case err != nil:
			return
		}
		payload := c.bytes()
		if rem := hi - off; uint64(len(payload)) > rem {
			payload = payload[:rem]
		}
		w.setWriteDeadlineIn(n.opts.FetchTimeout)
		werr := w.writeData(payload)
		c.release()
		if werr != nil {
			return
		}
		off += uint64(len(payload))
	}
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = w.writeEnd(hi)
}

// receiveRingReport handles the last node's ring-closing connection.
func (n *Node) receiveRingReport(w *wire) {
	defer w.close()
	w.setReadDeadlineIn(n.opts.ReportTimeout)
	typ, err := w.readType()
	if err != nil || typ != MsgReport {
		return
	}
	rep, err := w.readReport()
	if err != nil {
		return
	}
	// Fold in the sender's own observations (e.g. abandons recorded by
	// the fetch server) before publishing.
	n.mu.Lock()
	rep.Merge(&Report{Failures: append([]Failure(nil), n.detected...)})
	n.mu.Unlock()
	n.setRingReport(rep)
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = w.writePassed()
}

func (n *Node) setRingReport(rep *Report) {
	n.ringOnce.Do(func() {
		n.mu.Lock()
		n.ringReport = rep
		n.mu.Unlock()
		close(n.ringC)
	})
}

// ---------------------------------------------------------------------------
// Upstream side (receivers): ingest DATA from the current predecessor,
// whoever that is after failures.

func (n *Node) upstreamLoop(ctx context.Context) error {
	var cur *upstreamConn
	for {
		if cur == nil {
			var err error
			cur, err = n.awaitUpstream(ctx)
			if err != nil {
				return err
			}
		}
		// The paper's deadlock-avoidance rule: GET is sent on every
		// new connection, carrying our current offset.
		cur.w.setWriteDeadlineIn(n.opts.GetTimeout)
		if err := cur.w.writeGet(n.st.Head()); err != nil {
			_ = cur.w.close()
			cur = nil
			continue
		}
		n.emit(TraceUpstreamAccepted, cur.from, n.st.Head(), "")
		repl, err := n.serveUpstream(ctx, cur)
		if err == errUpstreamDone {
			_ = cur.w.close()
			return nil
		}
		if err != nil {
			_ = cur.w.close()
			return err
		}
		_ = cur.w.close()
		if repl == nil {
			n.emit(TraceUpstreamLost, cur.from, n.st.Head(), "")
		}
		cur = repl // replacement conn, or nil to wait for one
	}
}

func (n *Node) awaitUpstream(ctx context.Context) (*upstreamConn, error) {
	timer := n.clk.NewTimer(n.opts.UpstreamIdleTimeout)
	defer timer.Stop()
	select {
	case uc := <-n.upConns:
		return uc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C():
		return nil, fmt.Errorf("kascade: no predecessor connected within %v", n.opts.UpstreamIdleTimeout)
	}
}

// acceptReplacement decides whether a queued predecessor connection should
// supersede the current one: only a predecessor at least as close to the
// sender wins (equal index = the same predecessor reconnecting). This keeps
// a node excluded for slowness (§V) from stealing its former successor back
// from the adopting predecessor.
func acceptReplacement(cur, repl *upstreamConn) bool {
	return repl.from <= cur.from
}

// serveUpstream processes frames from one predecessor connection. It
// returns (replacement, nil) when the connection broke or was superseded,
// or a terminal error (errUpstreamDone on success).
func (n *Node) serveUpstream(ctx context.Context, uc *upstreamConn) (*upstreamConn, error) {
	w := uc.w
	poll := n.opts.pollInterval()
	for {
		// A better predecessor may be waiting even while the current
		// connection keeps delivering (e.g. after it excluded a slow
		// node between us): check between frames, not only on idle.
		select {
		case repl := <-n.upConns:
			if acceptReplacement(uc, repl) {
				return repl, nil
			}
			n.rejectReplacement(repl)
		default:
		}
		w.setReadDeadlineIn(poll)
		typ, err := w.readType()
		if err != nil {
			if transport.IsTimeout(err) {
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				default:
					continue
				}
			}
			return nil, nil // connection broken; await replacement
		}
		w.setReadDeadlineIn(n.opts.UpstreamIdleTimeout)
		switch typ {
		case MsgData:
			c, err := w.readData(n.pool)
			if err != nil {
				return nil, nil
			}
			if err := n.ingest(c); err != nil {
				return nil, err
			}
		case MsgEnd:
			total, err := w.readUint64()
			if err != nil {
				return nil, nil
			}
			n.ws.Finish(total)
		case MsgQuit:
			reason, err := w.readQuit()
			if err != nil {
				return nil, nil
			}
			switch reason {
			case QuitUser:
				// Anticipated end of stream: a report follows and
				// the ring still closes (§III-C).
				n.st.Abort(ErrQuit)
				continue
			case QuitExcluded:
				// The predecessor measured us as too slow (§V)
				// and adopted our successor: step aside without
				// cascading a QUIT.
				n.stepAside("excluded by predecessor for low throughput")
				return nil, ErrExcluded
			default:
				n.abandon("upstream instructed abandon")
				return nil, ErrAbandoned
			}
		case MsgForget:
			base, err := w.readUint64()
			if err != nil {
				return nil, nil
			}
			if ferr := n.fetchGap(ctx, n.st.Head(), base); ferr != nil {
				n.abandon(fmt.Sprintf("gap [%d,%d) unrecoverable: %v", n.st.Head(), base, ferr))
				return nil, ErrAbandoned
			}
			w.setWriteDeadlineIn(n.opts.GetTimeout)
			if err := w.writeGet(n.st.Head()); err != nil {
				return nil, nil
			}
		case MsgReport:
			rep, err := w.readReport()
			if err != nil {
				return nil, nil
			}
			n.setUpReport(rep)
			repl, err := n.awaitPassedPhase(ctx, uc)
			if err != nil {
				return nil, err
			}
			if repl != nil {
				return repl, nil
			}
			w.setWriteDeadlineIn(n.opts.ReportTimeout)
			if err := w.writePassed(); err != nil {
				return nil, nil
			}
			return nil, errUpstreamDone
		default:
			// Unknown frame: treat the connection as corrupt.
			return nil, nil
		}
	}
}

// awaitPassedPhase blocks until this node's own report delivery completed
// (then PASSED can flow upstream), a replacement predecessor appears, or
// the node dies.
func (n *Node) awaitPassedPhase(ctx context.Context, cur *upstreamConn) (*upstreamConn, error) {
	for {
		select {
		case <-n.passedC:
			return nil, nil
		case repl := <-n.upConns:
			if acceptReplacement(cur, repl) {
				return repl, nil
			}
			n.rejectReplacement(repl)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// rejectReplacement turns away a would-be predecessor that lost to the
// current one (a farther node trying to steal its former successor back,
// e.g. after an exclusion or a restart). The explicit QUIT(excluded) tells
// the rejected dialer to step aside instead of misreading the closed
// connection as "my successor is dead" — without it, a rejoining node
// would walk the pipeline recording healthy successors as failures.
func (n *Node) rejectReplacement(repl *upstreamConn) {
	repl.w.setWriteDeadlineIn(n.opts.GetTimeout)
	_ = repl.w.writeQuit(QuitExcluded)
	_ = repl.w.close()
}

// ingest stores and sinks one received chunk, consuming the caller's
// reference. The payload is shared, never copied: the window store takes
// one reference, and a second keeps the bytes alive for the sink write.
func (n *Node) ingest(c *chunk) error {
	size := uint64(len(c.bytes()))
	c.retain() // keep the payload readable for the sink after Append
	if err := n.ws.Append(c); err != nil {
		c.release()
		return err
	}
	var sinkErr error
	if n.cfg.Sink != nil {
		_, sinkErr = n.cfg.Sink.Write(c.bytes())
	}
	c.release()
	if sinkErr != nil {
		n.abandon(fmt.Sprintf("sink write failed: %v", sinkErr))
		return ErrAbandoned
	}
	n.emit(TraceChunk, -1, n.bytesIn.Add(size), "")
	return nil
}

// fetchGap retrieves the byte range [from,to) directly from the sender via
// PGET (§III-D2): the predecessor's replay window no longer holds the data
// this node still needs, so node 0 is the only remaining source. A FORGET
// answer from node 0 means the data is gone for good (streamed input) and
// the caller must abandon.
func (n *Node) fetchGap(ctx context.Context, from, to uint64) error {
	if from >= to {
		return nil
	}
	n.emit(TraceGapFetchStart, 0, from, fmt.Sprintf("to %d", to))
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Restart from wherever the previous attempt got to.
		err := n.fetchGapOnce(n.st.Head(), to)
		if err == nil || errors.Is(err, ErrAbandoned) {
			detail := "ok"
			if err != nil {
				detail = err.Error()
			}
			n.emit(TraceGapFetchDone, 0, n.st.Head(), detail)
			return err
		}
		lastErr = err
	}
	n.emit(TraceGapFetchDone, 0, n.st.Head(), lastErr.Error())
	return lastErr
}

func (n *Node) fetchGapOnce(from, to uint64) error {
	if from >= to {
		return nil
	}
	c, err := n.cfg.Network.Dial(n.peers()[0].Addr, n.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("kascade: dialing sender for gap fetch: %w", err)
	}
	w := n.newWire(c)
	defer w.close()
	w.setWriteDeadlineIn(n.opts.GetTimeout)
	if err := w.writeHello(RoleFetch, n.cfg.Index); err != nil {
		return err
	}
	if err := w.writePGet(from, to); err != nil {
		return err
	}
	for {
		w.setReadDeadlineIn(n.opts.FetchTimeout)
		typ, err := w.readType()
		if err != nil {
			return err
		}
		switch typ {
		case MsgData:
			c, err := w.readData(n.pool)
			if err != nil {
				return err
			}
			if err := n.ingest(c); err != nil {
				return err
			}
		case MsgEnd:
			if _, err := w.readUint64(); err != nil {
				return err
			}
			if n.st.Head() < to {
				return fmt.Errorf("kascade: gap fetch ended early at %d of %d", n.st.Head(), to)
			}
			return nil
		case MsgForget:
			_, _ = w.readUint64()
			return ErrAbandoned
		default:
			return &errProtocol{want: MsgData, got: typ}
		}
	}
}

// abandon marks the node as failed-by-loss: it stops answering pings
// (listener closed) so its predecessor skips it, and poisons the store so
// the downstream manager sends QUIT(abandon) to the successor.
func (n *Node) abandon(reason string) {
	n.mu.Lock()
	already := n.abandoned
	n.abandoned = true
	if !already {
		n.abandonReason = reason
	}
	n.mu.Unlock()
	if already {
		return
	}
	n.emit(TraceAbandoned, -1, n.bytesIn.Load(), reason)
	_ = n.cfg.Listener.Close()
	n.st.Abort(ErrAbandoned)
}

// AbandonReason describes why the node abandoned (empty if it did not).
func (n *Node) AbandonReason() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.abandonReason
}

// stepAside retires an excluded node: listener closed (pings stop, so the
// pipeline routes around it), store poisoned with ErrExcluded so the
// downstream manager terminates without cascading a QUIT (its former
// successor now belongs to the excluding predecessor).
func (n *Node) stepAside(reason string) {
	n.mu.Lock()
	already := n.abandoned
	n.abandoned = true
	if !already {
		n.abandonReason = reason
	}
	n.mu.Unlock()
	if already {
		return
	}
	n.emit(TraceSteppedAside, -1, n.bytesIn.Load(), reason)
	_ = n.cfg.Listener.Close()
	n.st.Abort(ErrExcluded)
}

func (n *Node) setUpReport(rep *Report) {
	n.mu.Lock()
	if n.upReport == nil {
		n.upReport = rep.Clone()
	} else {
		n.upReport.Merge(rep)
	}
	n.mu.Unlock()
	n.reportOnce.Do(func() { close(n.reportC) })
}

func (n *Node) markPassed() {
	n.passedOnce.Do(func() { close(n.passedC) })
}

func (n *Node) recordFailure(idx int, reason string, off uint64) {
	if idx <= 0 || idx >= len(n.peers()) {
		return
	}
	n.mu.Lock()
	for _, f := range n.detected {
		if f.Index == idx {
			n.mu.Unlock()
			return
		}
	}
	n.detected = append(n.detected, Failure{
		Index:      idx,
		Name:       n.peers()[idx].Name,
		Reason:     reason,
		Offset:     off,
		DetectedBy: n.me().Name,
	})
	n.mu.Unlock()
	n.emit(TraceFailureDetected, idx, off, reason)
}

func (n *Node) isFailedPeer(idx int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, f := range n.detected {
		if f.Index == idx {
			return true
		}
	}
	return false
}

func (n *Node) isTail() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tail
}

// mergedReport snapshots the report to forward: upstream's view plus this
// node's own detections.
func (n *Node) mergedReport() (*Report, error) {
	n.mu.Lock()
	rep := n.upReport.Clone()
	det := append([]Failure(nil), n.detected...)
	n.mu.Unlock()
	rep.Merge(&Report{Failures: det})
	if end, ok := n.st.End(); ok && end > rep.TotalBytes {
		rep.TotalBytes = end
	} else if h := n.st.Head(); h > rep.TotalBytes {
		rep.TotalBytes = h
	}
	if n.st.AbortCause() == ErrQuit {
		rep.Aborted = true
	}
	return rep, nil
}

// awaitReport blocks until a report is available to forward.
func (n *Node) awaitReport(ctx context.Context) (*Report, error) {
	select {
	case <-n.reportC:
		return n.mergedReport()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
