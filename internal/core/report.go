package core

import (
	"fmt"
	"sort"
	"strings"
)

// Failure records one node failure detected during a broadcast. Failures
// accumulate in the report that travels down the pipeline after END/QUIT
// and ultimately reach the sending node over the ring-closing connection
// (§III-A, §III-C of the paper).
type Failure struct {
	// Index is the pipeline position of the failed node (0 = sender).
	Index int `json:"index"`
	// Name is the failed node's host name.
	Name string `json:"name"`
	// Reason describes how the failure was detected (write stall with
	// failed ping, refused dial, abandon after FORGET, ...).
	Reason string `json:"reason"`
	// Offset is the stream offset the detecting node had reached.
	Offset uint64 `json:"offset"`
	// DetectedBy is the name of the node that detected the failure.
	DetectedBy string `json:"detected_by,omitempty"`
}

func (f Failure) String() string {
	return fmt.Sprintf("node %s (#%d) at offset %d: %s", f.Name, f.Index, f.Offset, f.Reason)
}

// Report is the final account of a broadcast: which nodes failed, whether
// the transfer was aborted by the user, and how many bytes the stream
// carried. It is JSON-encoded inside REPORT frames.
type Report struct {
	Failures   []Failure `json:"failures,omitempty"`
	Aborted    bool      `json:"aborted,omitempty"`
	TotalBytes uint64    `json:"total_bytes"`
}

// Merge folds other into r, de-duplicating failures by pipeline index
// (the first record for an index wins, since the earliest detector has the
// most precise offset).
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.Aborted = r.Aborted || other.Aborted
	if other.TotalBytes > r.TotalBytes {
		r.TotalBytes = other.TotalBytes
	}
	seen := make(map[int]bool, len(r.Failures))
	for _, f := range r.Failures {
		seen[f.Index] = true
	}
	for _, f := range other.Failures {
		if !seen[f.Index] {
			r.Failures = append(r.Failures, f)
			seen[f.Index] = true
		}
	}
	sort.Slice(r.Failures, func(i, j int) bool { return r.Failures[i].Index < r.Failures[j].Index })
}

// Clone returns a deep copy, so a node can merge and forward a snapshot
// while its own failure list keeps growing.
func (r *Report) Clone() *Report {
	if r == nil {
		return &Report{}
	}
	out := &Report{Aborted: r.Aborted, TotalBytes: r.TotalBytes}
	out.Failures = append(out.Failures, r.Failures...)
	return out
}

// Failed reports whether the node at the given pipeline index appears in
// the failure list.
func (r *Report) Failed(index int) bool {
	for _, f := range r.Failures {
		if f.Index == index {
			return true
		}
	}
	return false
}

func (r *Report) String() string {
	if r == nil {
		return "<nil report>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "broadcast of %d bytes", r.TotalBytes)
	if r.Aborted {
		sb.WriteString(" (aborted)")
	}
	if len(r.Failures) == 0 {
		sb.WriteString(": no failures")
		return sb.String()
	}
	fmt.Fprintf(&sb, ": %d failure(s)", len(r.Failures))
	for _, f := range r.Failures {
		sb.WriteString("\n  - ")
		sb.WriteString(f.String())
	}
	return sb.String()
}
