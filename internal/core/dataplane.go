package core

import (
	"fmt"
	"io"
)

// This file is the ingest half of the node's data plane: chunking the
// source input into the replay window (sender) and storing + sinking
// received chunks (receivers). The companion halves live in store.go /
// chunkpool.go (the window and buffer ownership) and downstream.go (the
// vectored sender that drains the store toward the successor).

// readInput chunks the streamed input into the window store, reading each
// chunk straight into a pool-owned buffer that the store then retains — no
// copy between the input and the replay window.
func (n *Node) readInput() {
	var total uint64
	for {
		c := n.pool.get(n.opts.ChunkSize)
		nr, err := io.ReadFull(n.cfg.Input, c.bytes())
		if nr > 0 {
			c.truncate(nr)
			if aerr := n.ws.Append(c); aerr != nil {
				return
			}
			total += uint64(nr)
		} else {
			c.release()
		}
		switch err {
		case nil:
			continue
		case io.EOF, io.ErrUnexpectedEOF:
			n.ws.Finish(total)
			return
		default:
			n.shutdown(fmt.Errorf("kascade: reading input: %w", err))
			return
		}
	}
}

// ingest stores and sinks one received chunk, consuming the caller's
// reference. The payload is shared, never copied: the window store takes
// one reference, and a second keeps the bytes alive for the sink write.
func (n *Node) ingest(c *chunk) error {
	size := uint64(len(c.bytes()))
	c.retain() // keep the payload readable for the sink after Append
	if err := n.ws.Append(c); err != nil {
		c.release()
		return err
	}
	var sinkErr error
	if n.joinSt != nil {
		// Late joiner: the sink only sees contiguous prefixes, so live
		// chunks route through the catch-up serializer (backlogged until
		// the backfill reaches parity, written through afterwards).
		sinkErr = n.joinSt.live(c.bytes())
	} else if n.cfg.Sink != nil {
		_, sinkErr = n.cfg.Sink.Write(c.bytes())
	}
	c.release()
	if sinkErr != nil {
		n.abandon(fmt.Sprintf("sink write failed: %v", sinkErr))
		return ErrAbandoned
	}
	n.emit(TraceChunk, -1, n.bytesIn.Add(size), "")
	return nil
}
