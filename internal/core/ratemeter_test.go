package core

import (
	"testing"
	"time"
)

func TestRateMeterFoldsEWMA(t *testing.T) {
	m := &rateMeter{}
	if m.rate() != 0 {
		t.Fatalf("fresh meter rate = %v, want 0", m.rate())
	}
	// 1 MiB over 100ms of busy time → 10 MiB/s instantaneous.
	m.sample(1<<20, 100*time.Millisecond)
	if got := m.rate(); got < 10*float64(1<<20)*0.99 || got > 10*float64(1<<20)*1.01 {
		t.Fatalf("first fold rate = %v, want ~%v", got, 10*float64(1<<20))
	}
	// A much slower window folds in smoothed, not replacing outright.
	m.sample(1<<10, 100*time.Millisecond)
	got := m.rate()
	inst := float64(1<<10) / 0.1
	prev := 10 * float64(1<<20)
	want := rateAlpha*inst + (1-rateAlpha)*prev
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("second fold rate = %v, want ~%v", got, want)
	}
}

func TestRateMeterSubWindowSamplesBatch(t *testing.T) {
	m := &rateMeter{}
	// The first sub-window sample publishes a provisional estimate —
	// links faster than payload/foldWindow must not stay invisible.
	m.sample(4096, 10*time.Millisecond)
	want := 4096 / 0.01
	if got := m.rate(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("provisional rate = %v, want ~%v", got, want)
	}
	// Further sub-window samples batch toward the first real fold; the
	// published value holds steady at the provisional estimate.
	for i := 0; i < 3; i++ {
		m.sample(4096, 10*time.Millisecond)
	}
	if got := m.rate(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("rate drifted before the window filled: %v", got)
	}
	// The fifth sample crosses the 50ms window: the accumulator folds
	// as one batch, EWMA-blended with the provisional seed (same value
	// here, so the result is exact).
	m.sample(4096, 10*time.Millisecond)
	if got := m.rate(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("folded rate = %v, want ~%v", got, want)
	}
}

func TestRateMeterNilSafe(t *testing.T) {
	var m *rateMeter
	m.sample(4096, time.Millisecond)
	if m.rate() != 0 {
		t.Fatal("nil meter must read 0")
	}
}

func TestRateWindowExcludesGenuineSlowLink(t *testing.T) {
	var w rateWindow
	grace := 300 * time.Millisecond
	min := float64(64 << 10)
	// One 32 KiB chunk draining at 16 KiB/s: a single 2s write. Real
	// collapse, not a clock artefact — must still be excluded even though
	// the sample alone exceeds the grace window.
	w.observe(32<<10, 2*time.Second, grace)
	rate, exclude := w.cull(grace, min)
	if !exclude {
		t.Fatalf("genuine collapse not excluded (rate %v)", rate)
	}
	if rate < 16000 || rate > 17000 {
		t.Fatalf("measured rate = %v, want ~16 KiB/s", rate)
	}
}

func TestRateWindowHealthySlides(t *testing.T) {
	var w rateWindow
	grace := 300 * time.Millisecond
	min := float64(64 << 10)
	for i := 0; i < 4; i++ {
		w.observe(64<<10, 100*time.Millisecond, grace)
	}
	rate, exclude := w.cull(grace, min)
	if exclude {
		t.Fatalf("healthy link excluded at %v B/s", rate)
	}
	if w.busy != 0 || w.drained != 0 || w.samples != 0 {
		t.Fatal("completed window did not reset")
	}
}

// TestRateWindowClockSeamRegression is the satellite-1 regression: a
// FakeClock stepped mid-write attributes the whole step to one sample,
// which used to divide drained bytes by an absurd elapsed and
// false-trigger §V exclusion. The guarded window discards the outlier.
func TestRateWindowClockSeamRegression(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	grace := 300 * time.Millisecond
	min := float64(64 << 10)

	var w rateWindow
	// One batch write spanning a one-hour clock seam: the measured busy
	// time is Now()-after minus Now()-before, i.e. the whole step.
	before := clk.Now()
	clk.Advance(time.Hour)
	seam := clk.Now().Sub(before)
	w.observe(4096, seam, grace)
	if rate, exclude := w.cull(grace, min); exclude {
		t.Fatalf("clock-seam sample false-triggered exclusion at %v B/s", rate)
	}
	if w.samples != 0 && w.busy > 0 {
		t.Fatal("outlier sample was retained")
	}

	// Subsequent healthy writes on the same window must read healthy.
	for i := 0; i < 4; i++ {
		w.observe(64<<10, 100*time.Millisecond, grace)
	}
	if rate, exclude := w.cull(grace, min); exclude {
		t.Fatalf("healthy follow-up window excluded at %v B/s", rate)
	}
}

// TestRateWindowZeroElapsedNeverDivides covers the degenerate end of the
// same bug: a zero grace (possible when options bypass withDefaults) plus
// a FakeClock that never advances produces a 0-elapsed window; the old
// code divided by zero.
func TestRateWindowZeroElapsedNeverDivides(t *testing.T) {
	var w rateWindow
	w.observe(4096, 0, 0)
	rate, exclude := w.cull(0, float64(64<<10))
	if exclude {
		t.Fatalf("zero-elapsed window excluded at %v B/s", rate)
	}
	if rate != 0 {
		t.Fatalf("zero-elapsed window produced rate %v, want 0", rate)
	}
}
