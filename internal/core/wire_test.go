package core

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

// loopConn is a trivial in-memory Conn for codec tests.
type loopConn struct {
	buf bytes.Buffer
}

func (l *loopConn) Read(p []byte) (int, error) {
	if l.buf.Len() == 0 {
		return 0, io.EOF
	}
	return l.buf.Read(p)
}
func (l *loopConn) Write(p []byte) (int, error)      { return l.buf.Write(p) }
func (l *loopConn) Close() error                     { return nil }
func (l *loopConn) SetDeadline(time.Time) error      { return nil }
func (l *loopConn) SetReadDeadline(time.Time) error  { return nil }
func (l *loopConn) SetWriteDeadline(time.Time) error { return nil }
func (l *loopConn) LocalAddr() string                { return "a:0" }
func (l *loopConn) RemoteAddr() string               { return "b:0" }

func TestWireHelloRoundTrip(t *testing.T) {
	w := newWire(&loopConn{}, SystemClock())
	if err := w.writeHello(RoleData, 42); err != nil {
		t.Fatal(err)
	}
	typ, err := w.readType()
	if err != nil || typ != MsgHello {
		t.Fatalf("type %v err %v", typ, err)
	}
	role, idx, err := w.readHello()
	if err != nil || role != RoleData || idx != 42 {
		t.Fatalf("role %v idx %d err %v", role, idx, err)
	}
}

func TestWireControlFramesRoundTrip(t *testing.T) {
	w := newWire(&loopConn{}, SystemClock())
	if err := w.writeGet(1234567890123); err != nil {
		t.Fatal(err)
	}
	if err := w.writePGet(100, 200); err != nil {
		t.Fatal(err)
	}
	if err := w.writeForget(55); err != nil {
		t.Fatal(err)
	}
	if err := w.writeEnd(987654321); err != nil {
		t.Fatal(err)
	}
	if err := w.writeQuit(QuitAbandon); err != nil {
		t.Fatal(err)
	}
	if err := w.writePassed(); err != nil {
		t.Fatal(err)
	}

	expect := func(want MsgType) {
		t.Helper()
		typ, err := w.readType()
		if err != nil || typ != want {
			t.Fatalf("got %v err %v, want %v", typ, err, want)
		}
	}
	expect(MsgGet)
	if off, _ := w.readUint64(); off != 1234567890123 {
		t.Fatalf("get offset %d", off)
	}
	expect(MsgPGet)
	if lo, hi, _ := w.readPGet(); lo != 100 || hi != 200 {
		t.Fatalf("pget %d %d", lo, hi)
	}
	expect(MsgForget)
	if m, _ := w.readUint64(); m != 55 {
		t.Fatalf("forget %d", m)
	}
	expect(MsgEnd)
	if e, _ := w.readUint64(); e != 987654321 {
		t.Fatalf("end %d", e)
	}
	expect(MsgQuit)
	if r, _ := w.readQuit(); r != QuitAbandon {
		t.Fatalf("quit reason %v", r)
	}
	expect(MsgPassed)
}

func TestWireDataRoundTripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		w := newWire(&loopConn{}, SystemClock())
		if err := w.writeData(payload); err != nil {
			return false
		}
		typ, err := w.readType()
		if err != nil || typ != MsgData {
			return false
		}
		got, err := w.readData(nil)
		if err != nil {
			return false
		}
		equal := bytes.Equal(got.bytes(), payload)
		got.release()
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWireReportRoundTrip(t *testing.T) {
	w := newWire(&loopConn{}, SystemClock())
	in := &Report{
		TotalBytes: 1 << 31,
		Aborted:    true,
		Failures: []Failure{
			{Index: 3, Name: "n4", Reason: "ping unanswered", Offset: 4096, DetectedBy: "n3"},
			{Index: 7, Name: "n8", Reason: "dial failed", Offset: 8192, DetectedBy: "n3"},
		},
	}
	if err := w.writeReport(in); err != nil {
		t.Fatal(err)
	}
	typ, err := w.readType()
	if err != nil || typ != MsgReport {
		t.Fatalf("type %v err %v", typ, err)
	}
	out, err := w.readReport()
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalBytes != in.TotalBytes || !out.Aborted || len(out.Failures) != 2 {
		t.Fatalf("report mismatch: %+v", out)
	}
	if out.Failures[0] != in.Failures[0] || out.Failures[1] != in.Failures[1] {
		t.Fatalf("failures mismatch: %+v", out.Failures)
	}
}

func TestWireRejectsOversizedData(t *testing.T) {
	lc := &loopConn{}
	w := newWire(lc, SystemClock())
	// Forge a DATA header with an absurd length.
	lc.Write([]byte{byte(MsgData), 0xFF, 0xFF, 0xFF, 0xFF})
	if typ, _ := w.readType(); typ != MsgData {
		t.Fatal("setup failed")
	}
	if _, err := w.readData(nil); err == nil {
		t.Fatal("oversized DATA accepted")
	}
}

func TestMsgTypeAndRoleStrings(t *testing.T) {
	for typ, want := range map[MsgType]string{
		MsgGet: "GET", MsgPGet: "PGET", MsgForget: "FORGET", MsgData: "DATA",
		MsgEnd: "END", MsgQuit: "QUIT", MsgReport: "REPORT", MsgPassed: "PASSED",
		MsgPing: "PING", MsgPong: "PONG", MsgHello: "HELLO",
	} {
		if typ.String() != want {
			t.Errorf("MsgType %d = %q, want %q", typ, typ.String(), want)
		}
	}
	if MsgType(99).String() == "" || Role(99).String() == "" {
		t.Error("unknown values must still format")
	}
	for role, want := range map[Role]string{
		RoleData: "data", RolePing: "ping", RoleFetch: "fetch", RoleReport: "report",
	} {
		if role.String() != want {
			t.Errorf("Role %d = %q", role, role.String())
		}
	}
}

func TestReportMerge(t *testing.T) {
	a := &Report{TotalBytes: 100, Failures: []Failure{{Index: 2, Name: "n3"}}}
	b := &Report{TotalBytes: 200, Aborted: true, Failures: []Failure{
		{Index: 2, Name: "n3", Reason: "duplicate, must not double"},
		{Index: 5, Name: "n6"},
	}}
	a.Merge(b)
	if a.TotalBytes != 200 || !a.Aborted {
		t.Fatalf("merge scalar fields: %+v", a)
	}
	if len(a.Failures) != 2 {
		t.Fatalf("dedupe failed: %+v", a.Failures)
	}
	if a.Failures[0].Index != 2 || a.Failures[0].Reason != "" {
		t.Fatalf("first record must win: %+v", a.Failures[0])
	}
	if !a.Failed(5) || a.Failed(7) {
		t.Fatal("Failed() lookup wrong")
	}
}

func TestReportCloneIsDeep(t *testing.T) {
	orig := &Report{Failures: []Failure{{Index: 1, Name: "n2"}}}
	c := orig.Clone()
	c.Failures[0].Name = "mutated"
	c.Failures = append(c.Failures, Failure{Index: 9})
	if orig.Failures[0].Name != "n2" || len(orig.Failures) != 1 {
		t.Fatalf("clone aliased original: %+v", orig)
	}
	var nilRep *Report
	if nilRep.Clone() == nil {
		t.Fatal("nil clone must produce empty report")
	}
}

func TestOptionsDefaultsAndValidation(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ChunkSize != 1<<20 || o.WindowChunks != 64 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.WriteStallTimeout != time.Second {
		t.Fatalf("stall timeout default %v, want the paper's 1s", o.WriteStallTimeout)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Options{ChunkSize: maxFrameData + 1}).Validate(); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	if err := (Options{WindowChunks: 1}).Validate(); err == nil {
		t.Fatal("window of 1 accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (&Plan{}).Validate(); err == nil {
		t.Fatal("empty plan accepted")
	}
	p := &Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: "a:1"}}}
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate address accepted")
	}
	p = &Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: ""}}}
	if err := p.Validate(); err == nil {
		t.Fatal("missing address accepted")
	}
	p = &Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: "b:1"}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
