package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"kascade/internal/transport"
)

// udpTestOpts shrinks the datagram plane's knobs alongside testOpts.
func udpTestOpts() Options {
	o := testOpts()
	o.DatagramBytes = 512
	return o
}

func TestUDPHeaderRoundtrip(t *testing.T) {
	var b [udpHeaderLen]byte
	putUDPHeader(b[:], udpFlagData, 3, 0xdeadbeef, 1<<40+17)
	flags, idx, sid, off, ok := parseUDPHeader(b[:])
	if !ok || flags != udpFlagData || idx != 3 || sid != 0xdeadbeef || off != 1<<40+17 {
		t.Fatalf("roundtrip mismatch: %v %v %v %v %v", flags, idx, sid, off, ok)
	}
	if _, _, _, _, ok := parseUDPHeader(b[:10]); ok {
		t.Fatal("short datagram parsed as a header")
	}
	b[0] = 0x00
	if _, _, _, _, ok := parseUDPHeader(b[:]); ok {
		t.Fatal("foreign magic parsed as a header")
	}
}

// TestUDPBroadcastFabric runs the datagram fan-out over the lossless
// in-memory fabric: every receiver must end up with a bit-perfect copy.
func TestUDPBroadcastFabric(t *testing.T) {
	env := newTestEnv(4, 256<<10)
	data := testPayload(200<<10, 42) // 50 chunks, forces window pacing
	cfg := env.config(data, false)
	cfg.Opts = udpTestOpts()
	cfg.Transport = TransportUDP

	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("udp session: %v", err)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("report total %d, want %d", res.Report.TotalBytes, len(data))
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("unexpected failures: %+v", res.Report.Failures)
	}
	for i := 1; i < 4; i++ {
		checkSink(t, env, i, data)
	}
}

// TestUDPBroadcastLossRepair injects directional datagram loss on two links
// and checks the PGET repair path restores bit-perfect delivery.
func TestUDPBroadcastLossRepair(t *testing.T) {
	env := newTestEnv(4, 256<<10)
	env.fabric.SeedPacketLoss(7)
	env.fabric.SetPacketLoss("n1", "n2", 0.05)
	env.fabric.SetPacketLoss("n1", "n4", 0.20)
	data := testPayload(120<<10, 43)
	cfg := env.config(data, false)
	cfg.Opts = udpTestOpts()
	cfg.Transport = TransportUDP

	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("udp session with loss: %v", err)
	}
	if len(res.Report.Failures) != 0 {
		t.Fatalf("loss must be repaired, not reported: %+v", res.Report.Failures)
	}
	for i := 1; i < 4; i++ {
		checkSink(t, env, i, data)
	}
}

// TestUDPReceiverDeath kills one receiver mid-transfer: the sender must
// record it and the survivors still complete bit-perfect.
func TestUDPReceiverDeath(t *testing.T) {
	env := newTestEnv(3, 256<<10)
	data := testPayload(400<<10, 44)
	cfg := env.config(data, false)
	cfg.Opts = udpTestOpts()
	cfg.Transport = TransportUDP

	killed := make(chan struct{})
	cfg.Trace = func(ev TraceEvent) {
		if ev.Node == 2 && ev.Kind == TraceChunk && ev.Offset >= 32<<10 {
			select {
			case <-killed:
			default:
				close(killed)
			}
		}
	}
	s, err := StartSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	go func() {
		<-killed
		env.fabric.Kill("n3")
	}()
	res, err := s.Wait()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if len(res.Report.Failures) != 1 || res.Report.Failures[0].Index != 2 {
		t.Fatalf("want node 2 recorded dead, got %+v", res.Report.Failures)
	}
	checkSink(t, env, 1, data)
}

// TestUDPLateReceiverRendezvous starts one receiver well after the sender.
// Its datagram endpoint is unbound at that point, and the fabric drops sends
// to unbound addresses silently — so without the opening-PROGRESS rendezvous
// the sender would blast the entire first window into the void, the late
// receiver would have no evidence to repair from, and the broadcast would
// deadlock until UpstreamIdleTimeout. (This is exactly what the CLI path
// does: agents bind their endpoints asynchronously to the START frame.)
func TestUDPLateReceiverRendezvous(t *testing.T) {
	env := newTestEnv(3, 256<<10)
	data := testPayload(100<<10, 46)
	opts := udpTestOpts()

	// Assemble the plan by hand with fixed packet addresses, so the late
	// receiver can bind its endpoint long after the plan is in motion.
	peers := append([]Peer(nil), env.peers...)
	for i := range peers {
		peers[i].PacketAddr = fmt.Sprintf("n%d:7500", i+1)
	}
	plan := Plan{Peers: peers, Opts: opts, Transport: TransportUDP}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	type done struct {
		rep *Report
		err error
	}
	results := make(map[int]chan done)
	start := func(i int, pc transport.PacketConn) {
		host := env.fabric.Host(peers[i].Name)
		l, err := host.Listen(peers[i].Addr)
		if err != nil {
			t.Errorf("node %d listen: %v", i, err)
			return
		}
		nc := NodeConfig{Index: i, Plan: plan, Network: host, Listener: l, Packet: pc}
		if i == 0 {
			nc.InputFile = bytes.NewReader(data)
			nc.InputSize = int64(len(data))
		} else {
			nc.Sink = env.sinks[i]
		}
		node, err := NewNode(nc)
		if err != nil {
			t.Errorf("node %d: %v", i, err)
			return
		}
		ch := make(chan done, 1)
		results[i] = ch
		go func() {
			rep, err := node.Run(ctx)
			ch <- done{rep, err}
		}()
	}
	bindPacket := func(i int) transport.PacketConn {
		pc, err := env.fabric.Host(peers[i].Name).(transport.PacketNetwork).ListenPacket(peers[i].PacketAddr)
		if err != nil {
			t.Fatalf("node %d packet bind: %v", i, err)
		}
		return pc
	}

	start(0, bindPacket(0))
	start(1, bindPacket(1))
	time.Sleep(150 * time.Millisecond) // sender is live, node 2 unbound
	start(2, bindPacket(2))

	senderRes := <-results[0]
	if senderRes.err != nil {
		t.Fatalf("sender: %v", senderRes.err)
	}
	if len(senderRes.rep.Failures) != 0 {
		t.Fatalf("late receiver must rendezvous, not fail: %+v", senderRes.rep.Failures)
	}
	for i := 1; i < 3; i++ {
		if r := <-results[i]; r.err != nil {
			t.Fatalf("receiver %d: %v", i, r.err)
		}
		checkSink(t, env, i, data)
	}
}

// TestUDPBroadcastLoopback runs the fan-out over the real UDP stack (and,
// on Linux, through sendmmsg/recvmmsg): a 3-node loopback broadcast must
// deliver bit-perfect.
func TestUDPBroadcastLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	peers := []Peer{
		{Name: "s", Addr: "127.0.0.1:0"},
		{Name: "r1", Addr: "127.0.0.1:0"},
		{Name: "r2", Addr: "127.0.0.1:0"},
	}
	sinks := []*collectSink{nil, {}, {}}
	data := testPayload(300<<10, 45)
	opts := udpTestOpts()
	opts.DatagramBytes = 1200
	cfg := SessionConfig{
		Peers:      peers,
		Opts:       opts,
		Transport:  TransportUDP,
		NetworkFor: func(int) transport.Network { return transport.TCP{} },
		SinkFor: func(i int) io.Writer {
			if sinks[i] == nil {
				return nil
			}
			return sinks[i]
		},
		InputFile: bytes.NewReader(data),
		InputSize: int64(len(data)),
	}
	res, err := RunSession(context.Background(), cfg)
	if err != nil {
		t.Fatalf("udp loopback session: %v", err)
	}
	if res.Report.TotalBytes != uint64(len(data)) {
		t.Fatalf("report total %d, want %d", res.Report.TotalBytes, len(data))
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(sinks[i].Bytes(), data) {
			t.Fatalf("node %d payload mismatch (%d bytes)", i, len(sinks[i].Bytes()))
		}
	}
}

// TestUDPPlanValidation covers the plan/node-level rejections.
func TestUDPPlanValidation(t *testing.T) {
	p := Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}}, Transport: "carrier-pigeon"}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown transport accepted")
	}
	p = Plan{Peers: []Peer{{Name: "a", Addr: "a:1"}}, Transport: TransportUDP}
	if err := p.Validate(); err == nil {
		t.Fatal("udp plan without packet addresses accepted")
	}
	// A udp sender must be file-backed: stream inputs cannot serve repair.
	env := newTestEnv(2, 64<<10)
	cfg := env.config([]byte("x"), true)
	cfg.Transport = TransportUDP
	if _, err := RunSession(context.Background(), cfg); err == nil {
		t.Fatal("udp transport with a streamed source accepted")
	}
}
