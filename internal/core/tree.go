package core

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Tree dissemination (Plan.Topology "tree:<k>"): the same ordered peers as
// the chain, arranged as a BFS k-ary tree (treeplan.go). Every relay serves
// up to k children from its one replay window, so the window's low-water
// mark must track the slowest child — that is the cursor tracker below.
// Recovery generalises §III-D from predecessor/successor to parent/children:
// when a child is confirmed dead (same stall + ping discipline), its worker
// adopts the dead child's children, re-grafting the whole failed subtree
// onto this node. The report ring becomes a set of spokes: leaves deliver
// their merged reports to node 0 directly (finishAsTail, unchanged), and
// node 0 publishes once every child subtree completed its PASSED exchange.

// childCursor tracks one successor's forward progress against the replay
// window. On the chain there is exactly one consumer, so the cursor talks
// to the store directly (st set, tr nil); tree workers register theirs with
// the node's tracker, which folds all cursors into one low-water mark.
type childCursor struct {
	st  store         // direct mode: the chain's single consumer
	tr  *childCursors // tracker mode: one of k tree children
	off uint64
}

// reset repositions the cursor to a successor-chosen offset (initial GET,
// or the re-GET after a FORGET gap fetch). The offset may move backwards —
// a re-grafted child resumes from wherever its dead parent left it.
func (c *childCursor) reset(off uint64) {
	if c.tr != nil {
		c.tr.update(c, off)
		return
	}
	c.st.ResetLowWater(off)
}

// advance moves the cursor forward past served bytes.
func (c *childCursor) advance(off uint64) {
	if c.tr != nil {
		c.tr.update(c, off)
		return
	}
	c.st.SetLowWater(off)
}

// close deregisters a tracked cursor so a finished (or dead) child stops
// holding the window back. Direct-mode cursors have nothing to release.
func (c *childCursor) close() {
	if c.tr != nil {
		c.tr.drop(c)
	}
}

// childCursors folds the progress of all live child cursors into the
// store's single low-water mark: the window retains everything the slowest
// child still needs, and eviction (hence upstream back-pressure) is paced
// by that child. ResetLowWater is used for every recomputation because the
// minimum can move in either direction (a child re-grafting below the
// others, or the slowest child dying).
type childCursors struct {
	st     store
	mu     sync.Mutex
	active map[*childCursor]struct{}
}

func newChildCursors(st store) *childCursors {
	return &childCursors{st: st, active: make(map[*childCursor]struct{})}
}

// cursor returns a new unregistered cursor. Registration happens on its
// first reset: a cursor registered at offset 0 before its child's GET
// arrived would needlessly pin the whole window.
func (t *childCursors) cursor() *childCursor { return &childCursor{tr: t} }

func (t *childCursors) update(c *childCursor, off uint64) {
	t.mu.Lock()
	c.off = off
	t.active[c] = struct{}{}
	min := t.minLocked()
	t.mu.Unlock()
	t.st.ResetLowWater(min)
}

func (t *childCursors) drop(c *childCursor) {
	t.mu.Lock()
	if _, ok := t.active[c]; !ok {
		t.mu.Unlock()
		return
	}
	delete(t.active, c)
	if len(t.active) == 0 {
		// Nothing to retain for: leave the mark where it is. A worker
		// spawned later (subtree adoption) re-registers, and a child
		// resuming below an evicted base recovers via FORGET → PGET.
		t.mu.Unlock()
		return
	}
	min := t.minLocked()
	t.mu.Unlock()
	t.st.ResetLowWater(min)
}

// idle drops retention while no child cursor is registered: a view leaf
// under re-ranking must not pin a window nobody reads — that would block
// its own ingest once the ring fills. A child adopted after eviction
// recovers via FORGET → PGET, so nothing is lost, only refetched.
func (t *childCursors) idle() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.active) > 0 {
		return
	}
	t.st.ResetLowWater(math.MaxUint64)
}

func (t *childCursors) minLocked() uint64 {
	m := uint64(math.MaxUint64)
	for c := range t.active {
		if c.off < m {
			m = c.off
		}
	}
	return m
}


// runTreeManager is the downstream side of a tree node: one worker per
// child, each running the chain's serveSuccessor lifecycle against its own
// cursor. A worker whose child is confirmed dead adopts the child's
// children (recursively for already-dead descendants), exactly the §III-D
// skip generalised to subtrees. The manager completes when every worker
// does; node 0 then publishes the merged ring report, interior nodes relay
// PASSED upstream (plus a best-effort supplementary spoke when they
// detected failures that no surviving leaf report may carry).
func (n *Node) runTreeManager(ctx context.Context) error {
	if n.rerank {
		// Self-reorganizing sessions run the reconciling manager instead:
		// same worker lifecycle, but the child set follows the live view.
		return n.runRerankManager(ctx)
	}
	children := treeChildren(n.cfg.Index, n.treeK, len(n.peers()))
	if len(children) == 0 {
		return n.finishAsTail(ctx)
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tr := newChildCursors(n.st)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	terminal := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var spawn func(target int)
	spawn = func(target int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := tr.cursor()
			defer cur.close()
			retries := 0
			for {
				if err := tctx.Err(); err != nil {
					terminal(err)
					return
				}
				if n.isFailedPeer(target) {
					// Re-graft the dead child's children onto this node:
					// live ones get their own worker, dead ones recurse so
					// the whole failed subtree is re-served (§III-D).
					for _, g := range treeChildren(target, n.treeK, len(n.peers())) {
						spawn(g)
					}
					return
				}
				outcome, err := n.serveSuccessor(tctx, target, cur, false)
				switch outcome {
				case outcomeDone:
					mu.Lock()
					done++
					mu.Unlock()
					return
				case outcomeRetry:
					retries++
					if retries >= maxRetriesPerSuccessor {
						n.recordFailure(target, fmt.Sprintf("gave up after %d reconnects", retries), n.st.Head())
						retries = 0
					}
				case outcomeDead:
					retries = 0
					// recordFailure already happened at the detection site;
					// the next iteration adopts the subtree.
				case outcomeTerminal:
					terminal(err)
					return
				default:
					terminal(fmt.Errorf("kascade: internal: unexpected outcome %d", outcome))
					return
				}
			}
		}()
	}
	for _, c := range children {
		spawn(c)
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if done == 0 {
		// Every child subtree died before completing: this node is the
		// tail of its branch and closes its own ring spoke.
		return n.finishAsTail(ctx)
	}
	if n.cfg.Index == 0 {
		// All surviving leaves have delivered their spokes: a leaf's report
		// arrives at node 0 before its PASSED flows upward, and PASSED
		// reaching us is what completed the workers above.
		rep, _ := n.mergedReport()
		n.setRingReport(rep)
		n.markPassed()
		return nil
	}
	n.mu.Lock()
	detected := len(n.detected) > 0
	n.mu.Unlock()
	if detected {
		// A child that died after this node's detections were already
		// folded into the childrens' REPORT frames may be missing from
		// every surviving spoke. Send a best-effort supplementary spoke
		// before releasing PASSED upstream — node 0 cannot publish until
		// our PASSED propagates, and Report.Merge collapses duplicates.
		rep, _ := n.mergedReport()
		for attempt := 0; attempt < n.opts.DialRetries; attempt++ {
			if n.deliverRingReport(rep) == nil {
				break
			}
		}
	}
	n.markPassed()
	return nil
}
